(* Callgraph unit suite: binding collection, qualified/unqualified
   resolution (aliases, nested modules, shadowing, [let rec ... and]
   forward references) and reachability over in-memory sources. *)

module Callgraph = Provkit_lint.Callgraph
module Source = Provkit_lint.Source

let parse ~filename src =
  match Source.parse_string ~filename src with
  | Ok structure -> (filename, structure)
  | Error f -> Alcotest.failf "fixture does not parse: %s" (Provkit_lint.Finding.to_string f)

let names fns = List.map (fun f -> f.Callgraph.fn_name) fns

let fixture_alpha =
  {|
let base x = x + 1
let twice x = base (base x)
module Inner = struct
  let hidden y = y * 2
end
|}

let fixture_beta =
  {|
module A = Webmodel.Alpha
let local z = z
let uses_alias z = A.twice (local z)
let f q = q
let caller1 () = f 1
let f q = q + 1
let caller2 () = f 2
let rec even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1)
|}

let graph () =
  Callgraph.build
    [ parse ~filename:"lib/webmodel/alpha.ml" fixture_alpha;
      parse ~filename:"lib/core/beta.ml" fixture_beta ]

let collects_bindings () =
  let g = graph () in
  let alpha = Callgraph.file_fns g "lib/webmodel/alpha.ml" in
  Alcotest.(check (list string)) "alpha bindings in order" [ "base"; "twice"; "hidden" ]
    (names alpha);
  let hidden = List.find (fun f -> f.Callgraph.fn_name = "hidden") alpha in
  Alcotest.(check (list string)) "nested module path" [ "Inner" ] hidden.Callgraph.fn_path

let resolves_qualified_via_alias () =
  let g = graph () in
  let fns =
    Callgraph.resolve g ~file:"lib/core/beta.ml" ~line:4
      (Longident.Ldot (Longident.Lident "A", "twice"))
  in
  Alcotest.(check (list string)) "A.twice -> alpha.ml twice" [ "twice" ] (names fns);
  Alcotest.(check string) "defined in alpha.ml" "lib/webmodel/alpha.ml"
    (List.hd fns).Callgraph.fn_file

let resolves_unqualified_same_file () =
  let g = graph () in
  let fns =
    Callgraph.resolve g ~file:"lib/core/beta.ml" ~line:4 (Longident.Lident "local")
  in
  Alcotest.(check (list string)) "local resolves in-file" [ "local" ] (names fns)

let resolves_shadowing () =
  let g = graph () in
  let at line =
    match Callgraph.resolve g ~file:"lib/core/beta.ml" ~line (Longident.Lident "f") with
    | [ f ] -> f.Callgraph.fn_line
    | other -> Alcotest.failf "expected one candidate, got %d" (List.length other)
  in
  (* caller1 (line 6) sees the f bound on line 5; caller2 (line 8) sees
     the rebinding on line 7. *)
  Alcotest.(check int) "before rebinding" 5 (at 6);
  Alcotest.(check int) "after rebinding" 7 (at 8)

let resolves_forward_reference () =
  let g = graph () in
  (* [even] (line 9) calls [odd] (line 10): no binding precedes the use
     line, so resolution falls back to the earliest one. *)
  let fns = Callgraph.resolve g ~file:"lib/core/beta.ml" ~line:9 (Longident.Lident "odd") in
  Alcotest.(check (list string)) "and-bound forward ref" [ "odd" ] (names fns)

let resolves_nested_module () =
  let g = graph () in
  let fns =
    Callgraph.resolve g ~file:"lib/webmodel/alpha.ml" ~line:7
      (Longident.Ldot (Longident.Lident "Inner", "hidden"))
  in
  Alcotest.(check (list string)) "Inner.hidden resolves" [ "hidden" ] (names fns)

let unresolved_is_empty () =
  let g = graph () in
  Alcotest.(check int) "stdlib modules resolve to nothing" 0
    (List.length
       (Callgraph.resolve g ~file:"lib/core/beta.ml" ~line:4
          (Longident.Ldot (Longident.Lident "List", "map"))))

let reachability_crosses_files_and_recursion () =
  let g = graph () in
  let beta = Callgraph.file_fns g "lib/core/beta.ml" in
  let seed f = List.find (fun fn -> fn.Callgraph.fn_name = f) beta in
  let reach seed_name =
    names (Callgraph.reachable g [ ((seed seed_name).Callgraph.fn_file, (seed seed_name).Callgraph.fn_expr) ])
  in
  let from_alias = reach "uses_alias" in
  Alcotest.(check bool) "reaches twice across the alias" true (List.mem "twice" from_alias);
  Alcotest.(check bool) "reaches base transitively" true (List.mem "base" from_alias);
  Alcotest.(check bool) "reaches the local helper" true (List.mem "local" from_alias);
  let from_even = reach "even" in
  Alcotest.(check bool) "mutual recursion reaches odd" true (List.mem "odd" from_even);
  Alcotest.(check bool) "and back to even without looping" true (List.mem "even" from_even)

let suite =
  [
    Alcotest.test_case "collects bindings incl. nested modules" `Quick collects_bindings;
    Alcotest.test_case "qualified resolution through alias" `Quick resolves_qualified_via_alias;
    Alcotest.test_case "unqualified same-file resolution" `Quick resolves_unqualified_same_file;
    Alcotest.test_case "shadowing picks the latest prior binding" `Quick resolves_shadowing;
    Alcotest.test_case "let rec/and forward reference" `Quick resolves_forward_reference;
    Alcotest.test_case "nested module resolution" `Quick resolves_nested_module;
    Alcotest.test_case "unknown modules resolve to nothing" `Quick unresolved_is_empty;
    Alcotest.test_case "reachability crosses files, handles cycles" `Quick
      reachability_crosses_files_and_recursion;
  ]
