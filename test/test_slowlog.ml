(* Slow-query log tests: fingerprint dedup, capacity eviction, JSONL
   round-trips, and the executor integration that feeds it.  The log is
   process-global, so every test clears it up front and restores the
   threshold/capacity knobs it touches. *)

module R = Relstore
module Slowlog = Relstore.Slowlog
module Metrics = Provkit_obs.Metrics
module Names = Provkit_obs.Names

let with_slowlog ?(threshold = 1_000_000) ?(cap = 128) f =
  let saved_threshold = Slowlog.threshold_ns () in
  let saved_cap = Slowlog.capacity () in
  let saved_enabled = Metrics.enabled () in
  Slowlog.clear ();
  Slowlog.set_threshold_ns threshold;
  Slowlog.set_capacity cap;
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Slowlog.clear ();
      Slowlog.set_threshold_ns saved_threshold;
      Slowlog.set_capacity saved_cap;
      Metrics.set_enabled saved_enabled)
    f

let note_nth ?(elapsed = 2_000_000) n =
  Slowlog.note ~table:"t" ~op:"select"
    ~plan:(Printf.sprintf "plan%d" n)
    ~detail:"d" ~elapsed_ns:elapsed ~rows_scanned:10 ~rows_returned:1

let test_dedup_merges () =
  with_slowlog @@ fun () ->
  let notes_before = Metrics.counter_value Names.slowlog_notes in
  let note elapsed =
    Slowlog.note ~table:"events" ~op:"select" ~plan:"full_scan"
      ~detail:"Eq(kind, 3)" ~elapsed_ns:elapsed ~rows_scanned:100 ~rows_returned:7
  in
  note 2_000_000;
  note 5_000_000;
  note 3_000_000;
  Alcotest.check Alcotest.int "one entry" 1 (Slowlog.length ());
  let e = List.hd (Slowlog.entries ()) in
  Alcotest.check Alcotest.int "count merged" 3 e.Slowlog.e_count;
  Alcotest.check Alcotest.int "total accumulates" 10_000_000 e.Slowlog.e_total_ns;
  Alcotest.check Alcotest.int "max kept" 5_000_000 e.Slowlog.e_max_ns;
  Alcotest.check Alcotest.int "last latency" 3_000_000 e.Slowlog.e_last_ns;
  Alcotest.check Alcotest.int "fingerprint stable"
    (Slowlog.fingerprint ~table:"events" ~op:"select" ~plan:"full_scan"
       ~detail:"Eq(kind, 3)")
    e.Slowlog.e_fingerprint;
  Alcotest.check Alcotest.int "notes counter ticks" (notes_before + 3)
    (Metrics.counter_value Names.slowlog_notes)

let test_distinct_fingerprints () =
  with_slowlog @@ fun () ->
  Slowlog.note ~table:"a" ~op:"select" ~plan:"full_scan" ~detail:"d"
    ~elapsed_ns:1_000_000 ~rows_scanned:1 ~rows_returned:1;
  Slowlog.note ~table:"a" ~op:"count" ~plan:"full_scan" ~detail:"d"
    ~elapsed_ns:9_000_000 ~rows_scanned:1 ~rows_returned:1;
  Slowlog.note ~table:"b" ~op:"select" ~plan:"full_scan" ~detail:"d"
    ~elapsed_ns:4_000_000 ~rows_scanned:1 ~rows_returned:1;
  Alcotest.check Alcotest.int "three entries" 3 (Slowlog.length ());
  (* entries () orders worst-first by accumulated time *)
  let ops = List.map (fun e -> e.Slowlog.e_op) (Slowlog.entries ()) in
  Alcotest.(check (list string)) "worst first" [ "count"; "select"; "select" ] ops

let test_capacity_eviction () =
  with_slowlog ~cap:4 @@ fun () ->
  let evictions_before = Metrics.counter_value Names.slowlog_evictions in
  for i = 1 to 7 do
    note_nth i
  done;
  Alcotest.check Alcotest.int "bounded at capacity" 4 (Slowlog.length ());
  Alcotest.check Alcotest.int "evictions ticked" (evictions_before + 3)
    (Metrics.counter_value Names.slowlog_evictions);
  (* Oldest-last-seen go first: plans 1-3 evicted, 4-7 retained. *)
  let plans =
    List.sort String.compare (List.map (fun e -> e.Slowlog.e_plan) (Slowlog.entries ()))
  in
  Alcotest.(check (list string)) "newest retained"
    [ "plan4"; "plan5"; "plan6"; "plan7" ]
    plans

let test_shrinking_capacity_evicts () =
  with_slowlog ~cap:8 @@ fun () ->
  for i = 1 to 6 do
    note_nth i
  done;
  Slowlog.set_capacity 2;
  Alcotest.check Alcotest.int "shrunk immediately" 2 (Slowlog.length ())

let test_json_round_trip () =
  with_slowlog @@ fun () ->
  Slowlog.note ~table:"events" ~op:"group_count" ~plan:"index_eq"
    ~detail:"And(Eq(kind, 1), Like(url, \"mail\"))" ~elapsed_ns:7_654_321
    ~rows_scanned:4242 ~rows_returned:17;
  Slowlog.note ~table:"events" ~op:"group_count" ~plan:"index_eq"
    ~detail:"And(Eq(kind, 1), Like(url, \"mail\"))" ~elapsed_ns:1_234_567
    ~rows_scanned:4242 ~rows_returned:17;
  let e = List.hd (Slowlog.entries ()) in
  match Slowlog.of_json (Slowlog.to_json e) with
  | None -> Alcotest.fail "round-trip parse failed"
  | Some e' ->
      Alcotest.check Alcotest.int "fingerprint" e.Slowlog.e_fingerprint
        e'.Slowlog.e_fingerprint;
      Alcotest.check Alcotest.string "table" e.Slowlog.e_table e'.Slowlog.e_table;
      Alcotest.check Alcotest.string "op" e.Slowlog.e_op e'.Slowlog.e_op;
      Alcotest.check Alcotest.string "plan" e.Slowlog.e_plan e'.Slowlog.e_plan;
      Alcotest.check Alcotest.string "detail survives escaping" e.Slowlog.e_detail
        e'.Slowlog.e_detail;
      Alcotest.check Alcotest.int "count" e.Slowlog.e_count e'.Slowlog.e_count;
      Alcotest.check Alcotest.int "total_ns" e.Slowlog.e_total_ns e'.Slowlog.e_total_ns;
      Alcotest.check Alcotest.int "max_ns" e.Slowlog.e_max_ns e'.Slowlog.e_max_ns;
      Alcotest.check Alcotest.int "last_ns" e.Slowlog.e_last_ns e'.Slowlog.e_last_ns;
      Alcotest.check Alcotest.int "rows_scanned" e.Slowlog.e_rows_scanned
        e'.Slowlog.e_rows_scanned;
      Alcotest.check Alcotest.int "rows_returned" e.Slowlog.e_rows_returned
        e'.Slowlog.e_rows_returned

let test_jsonl_dump_load () =
  with_slowlog @@ fun () ->
  for i = 1 to 5 do
    note_nth ~elapsed:(i * 1_000_000) i
  done;
  let buf = Buffer.create 256 in
  Slowlog.dump_jsonl buf;
  let loaded = Slowlog.load_jsonl (Buffer.contents buf) in
  Alcotest.check Alcotest.int "all lines parsed" 5 (List.length loaded);
  let originals = Slowlog.entries () in
  List.iter2
    (fun (a : Slowlog.entry) (b : Slowlog.entry) ->
      Alcotest.check Alcotest.int "same order, same entry" a.Slowlog.e_fingerprint
        b.Slowlog.e_fingerprint)
    originals loaded

let test_malformed_json () =
  (match Slowlog.of_json "not json at all" with
  | None -> ()
  | Some _ -> Alcotest.fail "garbage accepted");
  (match Slowlog.of_json "{\"table\":\"t\"}" with
  | None -> ()
  | Some _ -> Alcotest.fail "missing fields accepted");
  let mixed =
    "garbage line\n"
    ^ "{\"half\": }\n"
  in
  Alcotest.check Alcotest.int "malformed lines skipped" 0
    (List.length (Slowlog.load_jsonl mixed))

let test_invalid_knobs () =
  Alcotest.check_raises "negative threshold"
    (Invalid_argument "Slowlog.set_threshold_ns: must be non-negative") (fun () ->
      Slowlog.set_threshold_ns (-1));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Slowlog.set_capacity: must be positive") (fun () ->
      Slowlog.set_capacity 0);
  Alcotest.check_raises "threshold above the 1-hour ceiling"
    (Invalid_argument
       "Slowlog.set_threshold_ns: above the 1-hour ceiling (expected nanoseconds)")
    (fun () -> Slowlog.set_threshold_ns (Slowlog.max_threshold_ns + 1))

let test_threshold_env_parsing () =
  (* The PROV_SLOWLOG_NS parser is lenient by design: a bad value must
     leave the default in place, never take the process down. *)
  let check_parse name input expect =
    Alcotest.(check (option int)) name expect (Slowlog.threshold_of_env_string input)
  in
  check_parse "plain number" "250000" (Some 250_000);
  check_parse "zero allowed (log everything)" "0" (Some 0);
  check_parse "surrounding whitespace trimmed" "  42000\n" (Some 42_000);
  check_parse "ceiling value accepted" (string_of_int Slowlog.max_threshold_ns)
    (Some Slowlog.max_threshold_ns);
  check_parse "negative rejected" "-1" None;
  check_parse "above ceiling rejected" (string_of_int (Slowlog.max_threshold_ns + 1)) None;
  check_parse "garbage rejected" "fast" None;
  check_parse "float rejected" "1.5e6" None;
  check_parse "empty rejected" "" None

let test_executor_feeds_log () =
  with_slowlog ~threshold:0 @@ fun () ->
  let t = R.Table.create (R.Schema.make ~name:"items" [ R.Column.make "qty" R.Value.Tint ]) in
  for i = 1 to 20 do
    ignore (R.Table.insert_fields t [ ("qty", R.Value.Int (i mod 4)) ])
  done;
  let where = R.Predicate.Eq ("qty", R.Value.Int 1) in
  (* *_stats bypasses the result cache, so each run truly executes. *)
  ignore (R.Query_exec.select_stats ~where t);
  ignore (R.Query_exec.select_stats ~where t);
  let e =
    match
      List.find_opt
        (fun e -> String.equal e.Slowlog.e_table "items" && String.equal e.Slowlog.e_op "select")
        (Slowlog.entries ())
    with
    | Some e -> e
    | None -> Alcotest.fail "executor did not note the query"
  in
  Alcotest.check Alcotest.int "identical queries dedup" 2 e.Slowlog.e_count;
  Alcotest.check Alcotest.string "plan recorded" "full_scan" e.Slowlog.e_plan;
  Alcotest.check Alcotest.int "rows returned recorded" 5 e.Slowlog.e_rows_returned;
  (* The predicate shape is part of the fingerprint: a different filter
     lands in a different entry. *)
  ignore (R.Query_exec.select_stats ~where:(R.Predicate.Eq ("qty", R.Value.Int 2)) t);
  let selects =
    List.filter (fun e -> String.equal e.Slowlog.e_table "items") (Slowlog.entries ())
  in
  Alcotest.check Alcotest.int "distinct predicate, distinct entry" 2
    (List.length selects)

let test_threshold_filters () =
  with_slowlog ~threshold:Slowlog.max_threshold_ns @@ fun () ->
  let t = R.Table.create (R.Schema.make ~name:"items" [ R.Column.make "qty" R.Value.Tint ]) in
  ignore (R.Table.insert_fields t [ ("qty", R.Value.Int 1) ]);
  ignore (R.Query_exec.select_stats t);
  Alcotest.check Alcotest.int "fast queries not noted" 0 (Slowlog.length ())

let suite =
  [
    Alcotest.test_case "dedup merges by fingerprint" `Quick test_dedup_merges;
    Alcotest.test_case "distinct fingerprints, worst first" `Quick
      test_distinct_fingerprints;
    Alcotest.test_case "capacity evicts oldest-last-seen" `Quick test_capacity_eviction;
    Alcotest.test_case "shrinking capacity evicts now" `Quick
      test_shrinking_capacity_evicts;
    Alcotest.test_case "to_json/of_json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "dump/load jsonl round-trip" `Quick test_jsonl_dump_load;
    Alcotest.test_case "malformed json rejected" `Quick test_malformed_json;
    Alcotest.test_case "invalid knobs rejected" `Quick test_invalid_knobs;
    Alcotest.test_case "PROV_SLOWLOG_NS parsing" `Quick test_threshold_env_parsing;
    Alcotest.test_case "executor feeds the log" `Quick test_executor_feeds_log;
    Alcotest.test_case "threshold filters fast queries" `Quick test_threshold_filters;
  ]
