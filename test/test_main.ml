(* Aggregated test runner: one suite per module area, run with
   `dune runtest`. *)

let () =
  Alcotest.run "browser_provenance"
    [
      ("util.prng", Test_prng.suite);
      ("util.stats", Test_stats.suite);
      ("util.strutil", Test_strutil.suite);
      ("util.zipf", Test_zipf.suite);
      ("util.table_fmt", Test_table_fmt.suite);
      ("util.crc32", Test_crc32.suite);
      ("obs.metrics", Test_obs.suite);
      ("obs.hyperloglog", Test_hll.suite);
      ("obs.timeseries", Test_timeseries.suite);
      ("obs.alert", Test_alert.suite);
      ("obs.health", Test_health.suite);
      ("obs.telemetry_log", Test_telemetry_log.suite);
      ("obs.integration", Test_obs_integration.suite);
      ("util.faulty_io", Test_faulty_io.suite);
      ("relstore.codec", Test_relstore_codec.suite);
      ("relstore.codec_properties", Test_codec_properties.suite);
      ("relstore.table", Test_relstore_table.suite);
      ("relstore.query", Test_relstore_query.suite);
      ("relstore.query_cache", Test_query_cache.suite);
      ("relstore.model", Test_relstore_model.suite);
      ("relstore.matview", Test_matview.suite);
      ("relstore.sql", Test_relstore_sql.suite);
      ("relstore.query_plan", Test_query_plan.suite);
      ("relstore.planner_regression", Test_planner_regression.suite);
      ("relstore.profile", Test_profile.suite);
      ("relstore.stats_catalog", Test_stats_catalog.suite);
      ("relstore.slowlog", Test_slowlog.suite);
      ("relstore.corruption", Test_corruption.suite);
      ("textindex", Test_textindex.suite);
      ("graph.digraph", Test_digraph.suite);
      ("graph.algorithms", Test_graph_algorithms.suite);
      ("webmodel", Test_webmodel.suite);
      ("browser", Test_browser.suite);
      ("browser.places_queries", Test_places_queries.suite);
      ("browser.event_codec", Test_event_codec.suite);
      ("core.store", Test_core_store.suite);
      ("core.capture", Test_core_capture.suite);
      ("core.schema", Test_core_schema.suite);
      ("core.queries", Test_core_queries.suite);
      ("core.extensions", Test_core_extensions.suite);
      ("core.prov_log", Test_prov_log.suite);
      ("core.wal", Test_wal.suite);
      ("core.suggest", Test_suggest.suite);
      ("core.sessions_dot", Test_sessions_dot.suite);
      ("core.retention", Test_retention.suite);
      ("daemon", Test_daemon.suite);
      ("harness", Test_harness.suite);
      ("lint", Test_provlint.suite);
      ("lint.callgraph", Test_callgraph.suite);
      ("lint.dataflow", Test_dataflow.suite);
    ]
