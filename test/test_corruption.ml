(* The corruption matrix: damage every byte of each binary image and
   demand a disciplined response.  A decoder confronted with a flipped
   byte may raise Errors.Corrupt or produce a well-formed value; it must
   never escape with Invalid_argument, Failure, an out-of-bounds access,
   or a constraint error from deeper layers. *)

module DB = Relstore.Database
module Schema = Relstore.Schema
module Column = Relstore.Column
module Table = Relstore.Table
module Value = Relstore.Value
module PL = Core.Prov_log
module EC = Browser.Event_codec

let flip_patterns = [ 0xFF; 0x01 ]

let damage s k pattern =
  String.mapi (fun i c -> if i = k then Char.chr (Char.code c lxor pattern) else c) s

let sample_database () =
  let db = DB.create ~name:"corruption_fixture" in
  let visits =
    DB.create_table db
      (Schema.make ~name:"visits"
         [
           Column.make "url" Value.Ttext;
           Column.make "day" Value.Tint;
           Column.make ~nullable:true "score" Value.Treal;
           Column.make "pinned" Value.Tbool;
           Column.make ~nullable:true "payload" Value.Tblob;
         ])
  in
  Table.add_index visits ~name:"by_url_day" ~columns:[ "url"; "day" ];
  for i = 1 to 12 do
    ignore
      (Table.insert_fields visits
         [
           ("url", Value.Text (Printf.sprintf "http://site%d.example/a?b=%d" (i mod 3) i));
           ("day", Value.Int (i * 7));
           ("score", if i mod 4 = 0 then Value.Null else Value.Real (0.5 +. float_of_int i));
           ("pinned", Value.Bool (i mod 2 = 0));
           ( "payload",
             if i mod 3 = 0 then Value.Null
             else Value.Blob (Bytes.init (i mod 5) (fun j -> Char.chr (((i * 31) + j) land 0xFF))) );
         ])
  done;
  let tags =
    DB.create_table db
      (Schema.make ~name:"tags" [ Column.make "visit" Value.Tint; Column.make "tag" Value.Ttext ])
  in
  for i = 1 to 8 do
    ignore
      (Table.insert_fields tags
         [ ("visit", Value.Int i); ("tag", Value.Text (String.make (i mod 4) 't')) ])
  done;
  db

(* Satellite (b): flip every byte of a database image.  "Well-formed" is
   checked by re-serializing the accepted result — a decoder that built
   a broken in-memory structure would blow up there. *)
let test_database_flip_matrix () =
  let image = DB.to_bytes (sample_database ()) in
  let detected = ref 0 and accepted = ref 0 in
  List.iter
    (fun pattern ->
      for k = 0 to String.length image - 1 do
        match DB.of_bytes (damage image k pattern) with
        | db ->
          incr accepted;
          ignore (DB.to_bytes db)
        | exception Relstore.Errors.Corrupt _ -> incr detected
        | exception e ->
          Alcotest.failf "byte %d ^ 0x%02X escaped with %s" k pattern (Printexc.to_string e)
      done)
    flip_patterns;
  (* The database image is structure-validated, not checksummed, so some
     flips (e.g. inside string payloads) legitimately decode; the matrix
     only demands that nothing escapes the two sanctioned outcomes. *)
  Alcotest.(check int) "every damaged image was handled"
    (List.length flip_patterns * String.length image)
    (!detected + !accepted);
  Alcotest.(check bool) "structural damage is detected" true (!detected > 0)

let sample_journal () =
  let store, journal = PL.recording_store () in
  for i = 1 to 25 do
    let v =
      Core.Prov_store.add_visit store ~engine_visit:i
        ~url:(Printf.sprintf "http://j%d.example/" i)
        ~title:(Printf.sprintf "title %d" i) ~transition:Browser.Transition.Typed ~tab:(i mod 3)
        ~time:(500 + i)
    in
    if i mod 2 = 0 then
      Core.Prov_store.add_edge store ~src:(max 1 (v - 2)) ~dst:v Core.Prov_edge.Same_time
        ~time:(500 + i)
  done;
  journal

(* Acceptance gate: the v2 journal detects 100% of single-byte flips —
   strict decoding raises, tolerant decoding never returns the full
   sequence. *)
let test_journal_flip_matrix () =
  let journal = sample_journal () in
  let image = PL.to_bytes journal in
  let total = PL.length journal in
  for k = 0 to String.length image - 1 do
    let damaged = damage image k 0xFF in
    (match PL.of_bytes ~tolerate_truncation:false damaged with
    | _ -> Alcotest.failf "strict decode accepted a flip at byte %d" k
    | exception Relstore.Errors.Corrupt _ -> ());
    match PL.of_bytes damaged with
    | recovered ->
      if PL.length recovered >= total then
        Alcotest.failf "tolerant decode kept all %d ops despite a flip at byte %d" total k
    | exception Relstore.Errors.Corrupt _ -> () (* damage inside the magic *)
  done

let test_event_trace_flip_matrix () =
  let events =
    List.init 20 (fun i ->
        if i mod 3 = 0 then
          Browser.Event.Search
            { time = 900 + i; search_id = i; query = Printf.sprintf "query %d" i; serp_visit = i }
        else
          Browser.Event.Close { time = 900 + i; tab = i mod 4; visit_id = i })
  in
  let image = EC.to_bytes events in
  let total = List.length events in
  for k = 0 to String.length image - 1 do
    let damaged = damage image k 0xFF in
    (match EC.of_bytes ~tolerate_truncation:false damaged with
    | _ -> Alcotest.failf "strict decode accepted a flip at byte %d" k
    | exception Relstore.Errors.Corrupt _ -> ());
    match EC.of_bytes damaged with
    | recovered ->
      if List.length recovered >= total then
        Alcotest.failf "tolerant decode kept all %d events despite a flip at byte %d" total k
    | exception Relstore.Errors.Corrupt _ -> ()
  done

(* Random multi-byte damage on top of the exhaustive single-byte pass:
   stomp a short run of bytes at a random offset. *)
let test_database_random_burst_damage () =
  let image = DB.to_bytes (sample_database ()) in
  let rng = Test_seed.prng ~salt:30 in
  for _ = 1 to 400 do
    let start = Provkit_util.Prng.int rng (String.length image) in
    let len = 1 + Provkit_util.Prng.int rng 16 in
    let damaged =
      String.mapi
        (fun i c ->
          if i >= start && i < start + len then Char.chr (Provkit_util.Prng.int rng 256) else c)
        image
    in
    match DB.of_bytes damaged with
    | db -> ignore (DB.to_bytes db)
    | exception Relstore.Errors.Corrupt _ -> ()
    | exception e ->
      Alcotest.failf "burst at %d+%d escaped with %s" start len (Printexc.to_string e)
  done

let suite =
  [
    Alcotest.test_case "database single-byte flip matrix" `Slow test_database_flip_matrix;
    Alcotest.test_case "journal flips: 100% detected" `Slow test_journal_flip_matrix;
    Alcotest.test_case "event trace flips: 100% detected" `Slow test_event_trace_flip_matrix;
    Alcotest.test_case "database burst damage" `Quick test_database_random_burst_damage;
  ]
