(* CRC-32: the canonical check value, incremental updates, the
   little-endian wire form, and sensitivity to single-byte damage. *)

module Crc32 = Provkit_util.Crc32
module Prng = Provkit_util.Prng

let test_check_value () =
  Alcotest.(check int) "digest(\"123456789\")" 0xCBF43926 (Crc32.digest "123456789");
  Alcotest.(check int) "digest of empty string" 0 (Crc32.digest "")

let test_pos_len () =
  let s = "xx123456789yy" in
  Alcotest.(check int) "substring digest" 0xCBF43926 (Crc32.digest ~pos:2 ~len:9 s)

let random_string rng len = String.init len (fun _ -> Char.chr (Prng.int rng 256))

let test_incremental () =
  let rng = Test_seed.prng ~salt:1 in
  for _ = 1 to 200 do
    let a = random_string rng (Prng.int rng 64) in
    let b = random_string rng (Prng.int rng 64) in
    let whole = Crc32.digest (a ^ b) in
    let incremental = Crc32.update (Crc32.digest a) b 0 (String.length b) in
    Alcotest.(check int) "update extends digest" whole incremental
  done

let test_le_bytes_roundtrip () =
  let rng = Test_seed.prng ~salt:2 in
  for _ = 1 to 200 do
    let crc = Crc32.digest (random_string rng 24) in
    let wire = Crc32.to_le_bytes crc in
    Alcotest.(check int) "wire form is 4 bytes" 4 (String.length wire);
    Alcotest.(check int) "LE round trip" crc (Crc32.of_le_bytes wire 0);
    Alcotest.(check int) "LE round trip at offset" crc (Crc32.of_le_bytes ("zz" ^ wire) 2)
  done

let test_flip_sensitivity () =
  (* A single complemented byte must always change the checksum (CRC-32
     detects all burst errors up to 32 bits). *)
  let rng = Test_seed.prng ~salt:3 in
  for _ = 1 to 200 do
    let s = random_string rng (1 + Prng.int rng 100) in
    let k = Prng.int rng (String.length s) in
    let damaged =
      String.mapi (fun i c -> if i = k then Char.chr (Char.code c lxor 0xFF) else c) s
    in
    Alcotest.(check bool) "flip changes digest" true (Crc32.digest s <> Crc32.digest damaged)
  done

let test_range_in_bounds () =
  Alcotest.(check bool) "of_le_bytes past end rejected" true
    (try
       ignore (Crc32.of_le_bytes "abc" 0);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "check value" `Quick test_check_value;
    Alcotest.test_case "pos/len digest" `Quick test_pos_len;
    Alcotest.test_case "incremental update" `Quick test_incremental;
    Alcotest.test_case "LE bytes roundtrip" `Quick test_le_bytes_roundtrip;
    Alcotest.test_case "single-byte flip sensitivity" `Quick test_flip_sensitivity;
    Alcotest.test_case "of_le_bytes bounds" `Quick test_range_in_bounds;
  ]
