(* Regression suite for the two conjunctive_range planner bugs:

   1. strict comparisons (Lt/Gt) used to fall off the range-index path
      entirely — conjunctive_range returned None and plan_for scanned
      the heap even when an ordered index covered the column;
   2. multiple bounds on one column did not merge — "first range found
      wins" kept only the lower bound of [ts >= a AND ts <= b] and
      over-scanned the index tail.

   Each test pins the exact scanned-row count on the 60-row fixture
   (day = i mod 10, six rows per day value), so a regression to the old
   behavior fails on the plan *and* on rows_scanned. *)

module Schema = Relstore.Schema
module Column = Relstore.Column
module Table = Relstore.Table
module Value = Relstore.Value
module P = Relstore.Predicate
module Q = Relstore.Query_exec

let fixture () =
  let t =
    Table.create
      (Schema.make ~name:"visits"
         [
           Column.make "url" Value.Ttext;
           Column.make "day" Value.Tint;
           Column.make "tab" Value.Tint;
         ])
  in
  Table.add_index t ~name:"by_day" ~columns:[ "day" ];
  for i = 1 to 60 do
    ignore
      (Table.insert_fields t
         [
           ("url", Value.Text (Printf.sprintf "http://site%d.example/" (i mod 5)));
           ("day", Value.Int (i mod 10));
           ("tab", Value.Int (i mod 3));
         ])
  done;
  t

let plan_t =
  Alcotest.testable
    (fun fmt -> function
      | Q.Full_scan -> Format.fprintf fmt "Full_scan"
      | Q.Index_eq n -> Format.fprintf fmt "Index_eq %s" n
      | Q.Index_range n -> Format.fprintf fmt "Index_range %s" n)
    ( = )

(* Assert plan, exact candidate count, and row parity with a naive
   filter in one go. *)
let check t msg ~plan ~scanned where =
  let rows, stats = Q.select_stats ~where t in
  Alcotest.check plan_t (msg ^ ": plan") plan stats.Q.plan;
  Alcotest.(check int) (msg ^ ": rows_scanned") scanned stats.Q.rows_scanned;
  let naive =
    List.filter (fun (_, row) -> P.eval where (Table.schema t) row) (Table.rows t)
  in
  Alcotest.(check int) (msg ^ ": row parity") (List.length naive) (List.length rows)

let test_strict_upper_bound () =
  let t = fixture () in
  (* Bug 1 (failing before): Cmp (Lt, ...) planned as Full_scan with all
     60 rows scanned.  Now: index range over days 0..5 = 36 candidates. *)
  check t "day < 6" ~plan:(Q.Index_range "by_day") ~scanned:36
    (P.Cmp (P.Lt, "day", Value.Int 6));
  Alcotest.(check bool) "rows_scanned dropped below the table size" true (36 < Table.row_count t)

let test_strict_lower_bound () =
  let t = fixture () in
  (* Days 7..9 = 18 candidates; the boundary day 6 is skipped inside the
     fold, not post-filtered, so it never counts as scanned. *)
  check t "day > 6" ~plan:(Q.Index_range "by_day") ~scanned:18
    (P.Cmp (P.Gt, "day", Value.Int 6))

let test_merged_closed_window () =
  let t = fixture () in
  (* Bug 2 (failing before): only Ge survived, scanning days 3..9 = 42
     candidates.  Merged: days 3..5 = 18. *)
  check t "day >= 3 AND day <= 5" ~plan:(Q.Index_range "by_day") ~scanned:18
    (P.And [ P.Cmp (P.Ge, "day", Value.Int 3); P.Cmp (P.Le, "day", Value.Int 5) ])

let test_merged_strict_window () =
  let t = fixture () in
  (* Both bounds strict: days 4..5 = 12 candidates. *)
  check t "day > 3 AND day < 6" ~plan:(Q.Index_range "by_day") ~scanned:12
    (P.And [ P.Cmp (P.Gt, "day", Value.Int 3); P.Cmp (P.Lt, "day", Value.Int 6) ])

let test_between_tightened_by_cmp () =
  let t = fixture () in
  (* A Between and a stray upper bound on the same column intersect:
     [2,8] ∩ (-inf,4] = days 2..4 = 18 candidates. *)
  check t "day BETWEEN 2 AND 8 AND day <= 4" ~plan:(Q.Index_range "by_day") ~scanned:18
    (P.And [ P.Between ("day", Value.Int 2, Value.Int 8); P.Cmp (P.Le, "day", Value.Int 4) ]);
  (* Exclusive beats inclusive on a boundary tie: days 2..3 = 12. *)
  check t "day BETWEEN 2 AND 4 AND day < 4" ~plan:(Q.Index_range "by_day") ~scanned:12
    (P.And [ P.Between ("day", Value.Int 2, Value.Int 4); P.Cmp (P.Lt, "day", Value.Int 4) ])

let test_contradictory_bounds_scan_nothing () =
  let t = fixture () in
  (* An empty interval is still a valid index range: zero candidates,
     zero results, no fallback to a scan. *)
  check t "day > 5 AND day < 5" ~plan:(Q.Index_range "by_day") ~scanned:0
    (P.And [ P.Cmp (P.Gt, "day", Value.Int 5); P.Cmp (P.Lt, "day", Value.Int 5) ])

let test_plan_detail_counts_strict_range () =
  let t = fixture () in
  (* The pre-catalog heuristic probes the index with the same exclusive
     semantics the executor uses. *)
  let d = Q.plan_detail_heuristic t (P.Cmp (P.Lt, "day", Value.Int 6)) in
  Alcotest.check plan_t "heuristic plan" (Q.Index_range "by_day") d.Q.chosen;
  Alcotest.(check int) "heuristic estimate" 36 d.Q.estimated_rows

let suite =
  [
    Alcotest.test_case "strict upper bound" `Quick test_strict_upper_bound;
    Alcotest.test_case "strict lower bound" `Quick test_strict_lower_bound;
    Alcotest.test_case "merged closed window" `Quick test_merged_closed_window;
    Alcotest.test_case "merged strict window" `Quick test_merged_strict_window;
    Alcotest.test_case "between tightened by cmp" `Quick test_between_tightened_by_cmp;
    Alcotest.test_case "contradictory bounds" `Quick test_contradictory_bounds_scan_nothing;
    Alcotest.test_case "plan detail heuristic" `Quick test_plan_detail_counts_strict_range;
  ]
