(* Schema validation, row helpers, indexes and table mutation. *)

module R = Relstore

let people_schema () =
  R.Schema.make ~name:"people"
    [
      R.Column.make "name" R.Value.Ttext;
      R.Column.make "age" R.Value.Tint;
      R.Column.make ~nullable:true "email" R.Value.Ttext;
    ]

let person ?email name age =
  [
    ("name", R.Value.Text name);
    ("age", R.Value.Int age);
    ("email", match email with None -> R.Value.Null | Some e -> R.Value.Text e);
  ]

(* --- schema --- *)

let test_schema_basics () =
  let s = people_schema () in
  Alcotest.(check string) "name" "people" (R.Schema.name s);
  Alcotest.(check int) "arity" 3 (R.Schema.arity s);
  Alcotest.(check int) "column_index" 1 (R.Schema.column_index s "age");
  Alcotest.(check bool) "has_column" true (R.Schema.has_column s "email");
  Alcotest.(check bool) "missing column" false (R.Schema.has_column s "phone")

let test_schema_duplicate_column () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate column x")
    (fun () ->
      ignore
        (R.Schema.make ~name:"t" [ R.Column.make "x" R.Value.Tint; R.Column.make "x" R.Value.Tint ]))

let test_schema_no_such_column () =
  let s = people_schema () in
  try
    ignore (R.Schema.column_index s "ghost");
    Alcotest.fail "expected No_such_column"
  with R.Errors.No_such_column _ -> ()

let test_validate_row () =
  let s = people_schema () in
  R.Schema.validate_row s [| R.Value.Text "ann"; R.Value.Int 30; R.Value.Null |];
  (try
     R.Schema.validate_row s [| R.Value.Text "ann"; R.Value.Null; R.Value.Null |];
     Alcotest.fail "NOT NULL should be enforced"
   with R.Errors.Constraint_violation _ -> ());
  (try
     R.Schema.validate_row s [| R.Value.Int 1; R.Value.Int 2; R.Value.Null |];
     Alcotest.fail "type should be enforced"
   with R.Errors.Type_mismatch _ -> ());
  try
    R.Schema.validate_row s [| R.Value.Text "short" |];
    Alcotest.fail "arity should be enforced"
  with R.Errors.Type_mismatch _ -> ()

let test_schema_serialize_roundtrip () =
  let s = people_schema () in
  let buf = Buffer.create 64 in
  R.Schema.serialize buf s;
  let pos = ref 0 in
  let s' = R.Schema.deserialize (Buffer.contents buf) pos in
  Alcotest.(check string) "name" (R.Schema.name s) (R.Schema.name s');
  Alcotest.(check int) "arity" (R.Schema.arity s) (R.Schema.arity s');
  Array.iter2
    (fun (a : R.Column.t) (b : R.Column.t) ->
      Alcotest.(check string) "col name" a.R.Column.name b.R.Column.name;
      Alcotest.(check bool) "nullable" a.R.Column.nullable b.R.Column.nullable)
    (R.Schema.columns s) (R.Schema.columns s')

(* --- row helpers --- *)

let test_row_of_alist () =
  let s = people_schema () in
  let row = R.Row.of_alist s (person "bob" 44) in
  Alcotest.(check string) "get name" "bob" (R.Row.text s row "name");
  Alcotest.(check int) "get age" 44 (R.Row.int s row "age");
  Alcotest.(check (option string)) "null email" None (R.Row.text_opt s row "email")

let test_row_missing_defaults_null () =
  let s = people_schema () in
  let row = R.Row.of_alist s [ ("name", R.Value.Text "x"); ("age", R.Value.Int 1) ] in
  Alcotest.(check bool) "missing is null" true (R.Value.is_null (R.Row.get s row "email"))

let test_row_duplicate_field () =
  let s = people_schema () in
  Alcotest.check_raises "dup" (Invalid_argument "Row.of_alist: duplicate field age")
    (fun () ->
      ignore (R.Row.of_alist s [ ("age", R.Value.Int 1); ("age", R.Value.Int 2) ]))

let test_row_set_functional () =
  let s = people_schema () in
  let row = R.Row.of_alist s (person "carol" 22) in
  let row' = R.Row.set s row "age" (R.Value.Int 23) in
  Alcotest.(check int) "updated" 23 (R.Row.int s row' "age");
  Alcotest.(check int) "original untouched" 22 (R.Row.int s row "age")

(* --- index --- *)

let test_index_add_find_remove () =
  let s = people_schema () in
  let idx = R.Index.create ~name:"by_age" ~columns:[ "age" ] s in
  let r30 = R.Row.of_alist s (person "a" 30) in
  let r30b = R.Row.of_alist s (person "b" 30) in
  let r40 = R.Row.of_alist s (person "c" 40) in
  R.Index.add idx 1 r30;
  R.Index.add idx 2 r30b;
  R.Index.add idx 3 r40;
  Alcotest.(check (list int)) "find 30" [ 1; 2 ] (R.Index.find idx [ R.Value.Int 30 ]);
  Alcotest.(check (list int)) "find 40" [ 3 ] (R.Index.find idx [ R.Value.Int 40 ]);
  Alcotest.(check (list int)) "find none" [] (R.Index.find idx [ R.Value.Int 99 ]);
  Alcotest.(check int) "cardinal" 3 (R.Index.cardinal idx);
  R.Index.remove idx 1 r30;
  Alcotest.(check (list int)) "after remove" [ 2 ] (R.Index.find idx [ R.Value.Int 30 ]);
  Alcotest.(check int) "cardinal after" 2 (R.Index.cardinal idx)

let test_index_unique () =
  let s = people_schema () in
  let idx = R.Index.create ~unique:true ~name:"u" ~columns:[ "name" ] s in
  R.Index.add idx 1 (R.Row.of_alist s (person "dup" 1));
  try
    R.Index.add idx 2 (R.Row.of_alist s (person "dup" 2));
    Alcotest.fail "unique violated silently"
  with R.Errors.Constraint_violation _ -> ()

let test_index_range () =
  let s = people_schema () in
  let idx = R.Index.create ~name:"by_age" ~columns:[ "age" ] s in
  List.iteri (fun i age -> R.Index.add idx (i + 1) (R.Row.of_alist s (person "p" age)))
    [ 10; 20; 30; 40; 50 ];
  let in_range =
    R.Index.fold_range ~lo:[ R.Value.Int 20 ] ~hi:[ R.Value.Int 40 ] idx ~init:[]
      ~f:(fun acc _key rowid -> rowid :: acc)
  in
  Alcotest.(check (list int)) "range inclusive" [ 2; 3; 4 ] (List.rev in_range);
  let unbounded =
    R.Index.fold_range idx ~init:0 ~f:(fun acc _ _ -> acc + 1)
  in
  Alcotest.(check int) "full range" 5 unbounded

(* --- table --- *)

let test_table_crud () =
  let t = R.Table.create (people_schema ()) in
  let id1 = R.Table.insert_fields t (person "ann" 30) in
  let id2 = R.Table.insert_fields t (person "bob" 40 ~email:"b@x") in
  Alcotest.(check int) "ids sequential" (id1 + 1) id2;
  Alcotest.(check int) "count" 2 (R.Table.row_count t);
  Alcotest.(check string) "get" "ann" (R.Row.text (R.Table.schema t) (R.Table.get t id1) "name");
  R.Table.update_field t id1 "age" (R.Value.Int 31);
  Alcotest.(check int) "updated" 31 (R.Row.int (R.Table.schema t) (R.Table.get t id1) "age");
  R.Table.delete t id1;
  Alcotest.(check bool) "deleted" false (R.Table.mem t id1);
  Alcotest.(check int) "count after delete" 1 (R.Table.row_count t);
  (try
     ignore (R.Table.get t id1);
     Alcotest.fail "expected No_such_row"
   with R.Errors.No_such_row _ -> ());
  (* Row ids are never reused. *)
  let id3 = R.Table.insert_fields t (person "eve" 25) in
  Alcotest.(check bool) "no id reuse" true (id3 > id2)

let test_table_indexes_maintained () =
  let t = R.Table.create (people_schema ()) in
  R.Table.add_index t ~name:"by_age" ~columns:[ "age" ];
  let id1 = R.Table.insert_fields t (person "ann" 30) in
  let _id2 = R.Table.insert_fields t (person "bob" 30) in
  Alcotest.(check int) "two at 30" 2
    (List.length (R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 30 ]));
  R.Table.update_field t id1 "age" (R.Value.Int 99);
  Alcotest.(check int) "one at 30 after update" 1
    (List.length (R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 30 ]));
  Alcotest.(check int) "one at 99" 1
    (List.length (R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 99 ]));
  R.Table.delete t id1;
  Alcotest.(check int) "none at 99 after delete" 0
    (List.length (R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 99 ]))

let test_table_index_built_over_existing () =
  let t = R.Table.create (people_schema ()) in
  let _ = R.Table.insert_fields t (person "x" 1) in
  let _ = R.Table.insert_fields t (person "y" 1) in
  R.Table.add_index t ~name:"late" ~columns:[ "age" ];
  Alcotest.(check int) "backfilled" 2
    (List.length (R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 1 ]))

let test_table_unique_insert_rejected_atomically () =
  let t = R.Table.create (people_schema ()) in
  R.Table.add_index ~unique:true t ~name:"u_name" ~columns:[ "name" ];
  let _ = R.Table.insert_fields t (person "solo" 1) in
  (try
     ignore (R.Table.insert_fields t (person "solo" 2));
     Alcotest.fail "unique violated"
   with R.Errors.Constraint_violation _ -> ());
  Alcotest.(check int) "failed insert left no row" 1 (R.Table.row_count t)

let test_table_find_without_index_scans () =
  let t = R.Table.create (people_schema ()) in
  let _ = R.Table.insert_fields t (person "a" 1) in
  let _ = R.Table.insert_fields t (person "b" 2) in
  Alcotest.(check int) "scan fallback" 1
    (List.length (R.Table.find_by t ~columns:[ "name" ] [ R.Value.Text "b" ]))

let test_table_serialize_roundtrip () =
  let t = R.Table.create (people_schema ()) in
  R.Table.add_index t ~name:"by_age" ~columns:[ "age" ];
  let id1 = R.Table.insert_fields t (person "ann" 30 ~email:"a@x") in
  let _ = R.Table.insert_fields t (person "bob" 40) in
  R.Table.delete t id1;
  let _ = R.Table.insert_fields t (person "carol" 50) in
  let buf = Buffer.create 256 in
  R.Table.serialize buf t;
  let pos = ref 0 in
  let t' = R.Table.deserialize (Buffer.contents buf) pos in
  Alcotest.(check int) "rows preserved" (R.Table.row_count t) (R.Table.row_count t');
  Alcotest.(check int) "next id preserved"
    (R.Table.insert_fields t (person "z" 1))
    (R.Table.insert_fields t' (person "z" 1));
  Alcotest.(check int) "index rebuilt" 1
    (List.length (R.Table.find_by t' ~columns:[ "age" ] [ R.Value.Int 40 ]))

(* Regression: find_by used to answer a column/key arity mismatch with
   [] on the indexed path and a bare Invalid_argument (from List.map2
   inside the scan) on the unindexed one.  Both paths must now raise the
   typed arity error. *)
let test_find_by_arity_mismatch () =
  let t = R.Table.create (people_schema ()) in
  R.Table.add_index t ~name:"by_age" ~columns:[ "age" ];
  let _ = R.Table.insert_fields t (person "a" 1) in
  let expect_arity path f =
    try
      ignore (f ());
      Alcotest.failf "%s path: expected Arity_mismatch" path
    with R.Errors.Arity_mismatch _ -> ()
  in
  expect_arity "indexed" (fun () ->
      R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 1; R.Value.Int 2 ]);
  expect_arity "scan" (fun () ->
      R.Table.find_by t ~columns:[ "name"; "age" ] [ R.Value.Text "a" ]);
  (* Matching arity still answers on both paths. *)
  Alcotest.(check int) "indexed path still works" 1
    (List.length (R.Table.find_by t ~columns:[ "age" ] [ R.Value.Int 1 ]));
  Alcotest.(check int) "scan path still works" 1
    (List.length (R.Table.find_by t ~columns:[ "name" ] [ R.Value.Text "a" ]))

(* Regression (found by provlint's epoch-discipline check): deserialize
   rebuilt rows and indexes without moving the modification epoch, so a
   query-cache or matview stamp taken before a snapshot load stayed
   "fresh" against the reloaded table and served the old rows.  The load
   must land on a bumped epoch. *)
let test_deserialize_bumps_epoch () =
  let t = R.Table.create (people_schema ()) in
  let _ = R.Table.insert_fields t (person "ann" 30) in
  let buf = Buffer.create 256 in
  R.Table.serialize buf t;
  let t' = R.Table.deserialize (Buffer.contents buf) (ref 0) in
  Alcotest.(check bool) "fresh load is never at the epoch a cache stamps at create" true
    (R.Table.epoch t' > 0)

(* Regression: deserialize used to trust the stored next_id verbatim, so
   a corrupt (too small) counter made later inserts collide with live
   rowids.  The counter is clamped to max rowid + 1 on load. *)
let test_deserialize_clamps_corrupt_next_id () =
  let t = R.Table.create (people_schema ()) in
  let id1 = R.Table.insert_fields t (person "ann" 30) in
  let _ = R.Table.insert_fields t (person "bob" 40) in
  let id3 = R.Table.insert_fields t (person "carol" 50) in
  let buf = Buffer.create 256 in
  R.Table.serialize buf t;
  let image = Bytes.of_string (Buffer.contents buf) in
  (* next_id is the varint immediately after the schema; with three rows
     it is a single byte, which we smash down to claim "1". *)
  let schema_len =
    let sbuf = Buffer.create 64 in
    R.Schema.serialize sbuf (R.Table.schema t);
    Buffer.length sbuf
  in
  Alcotest.(check int) "stored counter is where we think it is" (id3 + 1)
    (Char.code (Bytes.get image schema_len));
  Bytes.set image schema_len '\001';
  let pos = ref 0 in
  let t' = R.Table.deserialize (Bytes.to_string image) pos in
  Alcotest.(check int) "rows all load" 3 (R.Table.row_count t');
  let fresh = R.Table.insert_fields t' (person "dave" 60) in
  Alcotest.(check int) "clamped counter skips live rowids" (id3 + 1) fresh;
  Alcotest.(check int) "no row was overwritten" 4 (R.Table.row_count t');
  Alcotest.(check string) "first row survives the insert" "ann"
    (R.Row.text (R.Table.schema t') (R.Table.get t' id1) "name")

(* A duplicate rowid in the image is unrecoverable and must be refused,
   not silently last-writer-wins. *)
let test_deserialize_rejects_duplicate_rowid () =
  let t = R.Table.create (people_schema ()) in
  let id1 = R.Table.insert_fields t (person "ann" 30) in
  let buf = Buffer.create 256 in
  R.Schema.serialize buf (R.Table.schema t);
  R.Varint.write_unsigned buf (id1 + 1);
  R.Varint.write_unsigned buf 2;
  (* two rows, same rowid *)
  let row = R.Table.get t id1 in
  R.Varint.write_unsigned buf id1;
  R.Codec.write_row buf row;
  R.Varint.write_unsigned buf id1;
  R.Codec.write_row buf row;
  R.Varint.write_unsigned buf 0 (* no indexes *);
  try
    ignore (R.Table.deserialize (Buffer.contents buf) (ref 0));
    Alcotest.fail "duplicate rowid must be rejected"
  with R.Errors.Corrupt _ -> ()

let test_size_accounting_consistency () =
  let t = R.Table.create (people_schema ()) in
  let empty_data = R.Table.data_size t in
  let _ = R.Table.insert_fields t (person "ann" 30) in
  Alcotest.(check bool) "data grows" true (R.Table.data_size t > empty_data);
  R.Table.add_index t ~name:"by_age" ~columns:[ "age" ];
  Alcotest.(check bool) "index accounted" true (R.Table.index_size t > 0);
  Alcotest.(check int) "total = data + index" (R.Table.total_size t)
    (R.Table.data_size t + R.Table.index_size t)

let suite =
  [
    Alcotest.test_case "schema basics" `Quick test_schema_basics;
    Alcotest.test_case "schema duplicate column" `Quick test_schema_duplicate_column;
    Alcotest.test_case "schema no such column" `Quick test_schema_no_such_column;
    Alcotest.test_case "validate row" `Quick test_validate_row;
    Alcotest.test_case "schema serialize roundtrip" `Quick test_schema_serialize_roundtrip;
    Alcotest.test_case "row of_alist" `Quick test_row_of_alist;
    Alcotest.test_case "row missing defaults null" `Quick test_row_missing_defaults_null;
    Alcotest.test_case "row duplicate field" `Quick test_row_duplicate_field;
    Alcotest.test_case "row set functional" `Quick test_row_set_functional;
    Alcotest.test_case "index add/find/remove" `Quick test_index_add_find_remove;
    Alcotest.test_case "index unique" `Quick test_index_unique;
    Alcotest.test_case "index range" `Quick test_index_range;
    Alcotest.test_case "table crud" `Quick test_table_crud;
    Alcotest.test_case "table indexes maintained" `Quick test_table_indexes_maintained;
    Alcotest.test_case "index backfill" `Quick test_table_index_built_over_existing;
    Alcotest.test_case "unique insert atomic" `Quick test_table_unique_insert_rejected_atomically;
    Alcotest.test_case "find without index" `Quick test_table_find_without_index_scans;
    Alcotest.test_case "table serialize roundtrip" `Quick test_table_serialize_roundtrip;
    Alcotest.test_case "find_by arity mismatch" `Quick test_find_by_arity_mismatch;
    Alcotest.test_case "deserialize bumps the epoch" `Quick test_deserialize_bumps_epoch;
    Alcotest.test_case "deserialize clamps corrupt next_id" `Quick
      test_deserialize_clamps_corrupt_next_id;
    Alcotest.test_case "deserialize rejects duplicate rowid" `Quick
      test_deserialize_rejects_duplicate_rowid;
    Alcotest.test_case "size accounting" `Quick test_size_accounting_consistency;
  ]
