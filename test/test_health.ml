(* Health-aggregator tests.  The check registry is process-global, so
   every scratch check registered here is unregistered in a teardown;
   the built-in alerts check (registered when Provkit_obs.Health loads)
   is left in place and driven through the alert engine. *)

module Health = Provkit_obs.Health
module Alert = Provkit_obs.Alert
module Names = Provkit_obs.Names

let verdict =
  Alcotest.testable (fun fmt v -> Format.pp_print_string fmt (Health.verdict_name v)) ( = )

let with_checks names f =
  Fun.protect ~finally:(fun () -> List.iter Health.unregister names) f

let find_check report name =
  match List.find_opt (fun cr -> cr.Health.cr_name = name) report.Health.h_checks with
  | Some cr -> cr
  | None -> Alcotest.fail ("check missing from report: " ^ name)

let test_worst () =
  Alcotest.check verdict "ok+ok" Health.Ok (Health.worst Health.Ok Health.Ok);
  Alcotest.check verdict "ok+degraded" Health.Degraded (Health.worst Health.Ok Health.Degraded);
  Alcotest.check verdict "degraded+failing" Health.Failing
    (Health.worst Health.Degraded Health.Failing);
  Alcotest.check verdict "failing+ok" Health.Failing (Health.worst Health.Failing Health.Ok)

let test_composition_and_order () =
  with_checks [ "health.test.a"; "health.test.b"; "health.test.c" ] @@ fun () ->
  Health.register "health.test.a" (fun () -> (Health.Ok, "fine"));
  Health.register "health.test.b" (fun () -> (Health.Degraded, "wobbly"));
  Health.register "health.test.c" (fun () -> (Health.Ok, "also fine"));
  let report = Health.run () in
  Alcotest.check verdict "overall is the worst check" Health.Degraded report.Health.h_verdict;
  let ours =
    List.filter
      (fun cr -> String.length cr.Health.cr_name >= 12
                 && String.sub cr.Health.cr_name 0 12 = "health.test.")
      report.Health.h_checks
  in
  Alcotest.(check (list string)) "registration order preserved"
    [ "health.test.a"; "health.test.b"; "health.test.c" ]
    (List.map (fun cr -> cr.Health.cr_name) ours);
  Alcotest.(check int) "exit 0 while not failing" 0 (Health.exit_code report);
  (* Replace b in place: same slot, new verdict. *)
  Health.register "health.test.b" (fun () -> (Health.Failing, "broken"));
  let report = Health.run () in
  Alcotest.check verdict "replacement verdict" Health.Failing
    (find_check report "health.test.b").Health.cr_verdict;
  Alcotest.check verdict "overall failing" Health.Failing report.Health.h_verdict;
  Alcotest.(check int) "exit 1 on failing" 1 (Health.exit_code report)

let test_raising_check_reads_failing () =
  with_checks [ "health.test.raises" ] @@ fun () ->
  Health.register "health.test.raises" (fun () -> failwith "probe exploded");
  let cr = find_check (Health.run ()) "health.test.raises" in
  Alcotest.check verdict "exception = failing" Health.Failing cr.Health.cr_verdict;
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "detail carries the exception" true
    (contains cr.Health.cr_detail "probe exploded")

let test_alerts_check_tracks_engine () =
  Alert.reset ();
  Fun.protect ~finally:Alert.reset @@ fun () ->
  let fire ~id ~severity =
    Alert.register
      {
        Alert.r_id = id;
        r_signal = Alert.Gauge_value "test.health.signal";
        r_condition = Alert.Above 1.0;
        r_for_ns = 0L;
        r_severity = severity;
        r_describe = "health-check driver";
      };
    let pt v ns =
      {
        Provkit_obs.Timeseries.pt_ns = ns;
        pt_snap =
          { Provkit_obs.Metrics.snap_counters = [];
            snap_gauges = [ ("test.health.signal", v) ]; snap_histograms = [] };
      }
    in
    Alert.feed (pt 0.0 100L);
    Alert.feed (pt 5.0 200L)
  in
  (* Nothing firing: ok. *)
  let cr = find_check (Health.run ()) Names.health_alerts_clear in
  Alcotest.check verdict "quiet engine = ok" Health.Ok cr.Health.cr_verdict;
  (* A warning firing: degraded, never failing. *)
  fire ~id:"alert.test.warn" ~severity:Alert.Warning;
  let cr = find_check (Health.run ()) Names.health_alerts_clear in
  Alcotest.check verdict "warning = degraded" Health.Degraded cr.Health.cr_verdict;
  (* A critical firing: failing, and the overall verdict follows. *)
  fire ~id:"alert.test.crit" ~severity:Alert.Critical;
  let report = Health.run () in
  let cr = find_check report Names.health_alerts_clear in
  Alcotest.check verdict "critical = failing" Health.Failing cr.Health.cr_verdict;
  Alcotest.check verdict "overall follows" Health.Failing report.Health.h_verdict;
  Alcotest.(check int) "provctl health would exit 1" 1 (Health.exit_code report);
  (* Clearing the engine clears the check. *)
  Alert.reset ();
  let cr = find_check (Health.run ()) Names.health_alerts_clear in
  Alcotest.check verdict "reset engine = ok again" Health.Ok cr.Health.cr_verdict

let test_render_and_json () =
  with_checks [ "health.test.render" ] @@ fun () ->
  Health.register "health.test.render" (fun () -> (Health.Degraded, "wob\"bly"));
  let report = Health.run () in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
    go 0
  in
  let text = Health.render report in
  Alcotest.(check bool) "table row" true (contains text "health.test.render");
  Alcotest.(check bool) "overall line" true (contains text "overall:");
  let json = Health.to_json report in
  Alcotest.(check bool) "json name" true (contains json "\"health.test.render\"");
  Alcotest.(check bool) "json verdict" true (contains json "\"degraded\"");
  Alcotest.(check bool) "json escapes detail" true (contains json "wob\\\"bly")

let test_wal_manifest_check () =
  let module Seg = Core.Prov_log.Segmented in
  Test_wal.with_temp_dir @@ fun parent ->
  (* Not created yet: degraded (nothing durable), not failing. *)
  let missing = Filename.concat parent "never-created" in
  let v, _ = Seg.manifest_check ~dir:missing () in
  Alcotest.check verdict "missing dir = degraded" Health.Degraded v;
  (* Directory exists but holds no manifest yet: still degraded. *)
  let empty = Filename.concat parent "empty" in
  Sys.mkdir empty 0o700;
  let v, _ = Seg.manifest_check ~dir:empty () in
  Alcotest.check verdict "no manifest yet = degraded" Health.Degraded v;
  let dir = Filename.concat parent "wal" in
  let wal = Seg.open_ dir in
  Seg.append wal (Core.Prov_log.Close_node { id = 1; time = 5 });
  Seg.close wal;
  let v, detail = Seg.manifest_check ~dir () in
  Alcotest.check verdict "healthy wal = ok" Health.Ok v;
  (* Deleting a manifest-named segment must read as failing. *)
  let seg =
    match
      List.find_opt
        (fun f -> Filename.check_suffix f ".log")
        (List.sort compare (Array.to_list (Sys.readdir dir)))
    with
    | Some f -> Filename.concat dir f
    | None -> Alcotest.fail ("no segment found in " ^ dir ^ " (" ^ detail ^ ")")
  in
  Sys.remove seg;
  let v, _ = Seg.manifest_check ~dir () in
  Alcotest.check verdict "manifest names missing file = failing" Health.Failing v

let suite =
  [
    Alcotest.test_case "worst-verdict lattice" `Quick test_worst;
    Alcotest.test_case "composition, order, replace, exit code" `Quick
      test_composition_and_order;
    Alcotest.test_case "raising check reads as failing" `Quick
      test_raising_check_reads_failing;
    Alcotest.test_case "built-in alerts check tracks the engine" `Quick
      test_alerts_check_tracks_engine;
    Alcotest.test_case "render and json" `Quick test_render_and_json;
    Alcotest.test_case "wal manifest check verdicts" `Quick test_wal_manifest_check;
  ]
