(* The epoch-validated query-result cache: the LRU container itself,
   its Query_exec integration (hit/miss/invalidation counters against
   ground truth), and a seeded property sweep asserting the cached
   entry points answer identically to cold execution across randomized
   interleavings of queries and table mutations. *)

module R = Relstore
module QC = Relstore.Query_cache
module QE = Relstore.Query_exec
module Prng = Provkit_util.Prng

let kv_schema () =
  R.Schema.make ~name:"kv"
    [ R.Column.make "k" R.Value.Tint; R.Column.make "v" R.Value.Ttext ]

let kv_table ?(index = false) () =
  let t = R.Table.create (kv_schema ()) in
  if index then R.Table.add_index t ~name:"by_k" ~columns:[ "k" ];
  t

let kv k v = [ ("k", R.Value.Int k); ("v", R.Value.Text v) ]

(* The Query_exec cache is process-wide state: every test restores the
   defaults so suites stay order-independent. *)
let with_clean_cache f =
  let reset () =
    QE.set_cache_enabled true;
    QE.set_cache_capacity 512;
    QE.clear_cache ()
  in
  reset ();
  Fun.protect ~finally:reset f

let with_metrics_on f =
  let was = Provkit_obs.Metrics.enabled () in
  Provkit_obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Provkit_obs.Metrics.set_enabled was) f

(* --- the LRU container --- *)

let test_lru_hit_stale_absent () =
  let c = QC.create ~capacity:4 () in
  ignore (QC.put c ~key:"a" ~epoch:7 (QC.Count 3));
  (match QC.find c ~key:"a" ~epoch:7 with
  | QC.Hit (QC.Count 3) -> ()
  | _ -> Alcotest.fail "expected a hit at the stored epoch");
  (match QC.find c ~key:"a" ~epoch:8 with
  | QC.Stale -> ()
  | _ -> Alcotest.fail "a moved epoch must report stale");
  (match QC.find c ~key:"a" ~epoch:8 with
  | QC.Absent -> ()
  | _ -> Alcotest.fail "a stale entry must have been dropped");
  Alcotest.(check int) "cache empty again" 0 (QC.length c)

let test_lru_eviction_order () =
  let c = QC.create ~capacity:2 () in
  ignore (QC.put c ~key:"a" ~epoch:0 (QC.Count 1));
  ignore (QC.put c ~key:"b" ~epoch:0 (QC.Count 2));
  (* Touch [a]: it becomes most-recent, so [b] is the LRU victim. *)
  (match QC.find c ~key:"a" ~epoch:0 with
  | QC.Hit _ -> ()
  | _ -> Alcotest.fail "a expected");
  Alcotest.(check int) "put over capacity evicts one" 1
    (QC.put c ~key:"c" ~epoch:0 (QC.Count 3));
  (match QC.find c ~key:"b" ~epoch:0 with
  | QC.Absent -> ()
  | _ -> Alcotest.fail "the untouched entry must be the victim");
  (match (QC.find c ~key:"a" ~epoch:0, QC.find c ~key:"c" ~epoch:0) with
  | QC.Hit _, QC.Hit _ -> ()
  | _ -> Alcotest.fail "touched and fresh entries survive")

let test_lru_capacity () =
  let c = QC.create ~capacity:3 () in
  for i = 1 to 10 do
    ignore (QC.put c ~key:(string_of_int i) ~epoch:0 (QC.Count i))
  done;
  Alcotest.(check int) "bounded at capacity" 3 (QC.length c);
  QC.set_capacity c 1;
  Alcotest.(check int) "shrinking evicts immediately" 1 (QC.length c);
  (match QC.find c ~key:"10" ~epoch:0 with
  | QC.Hit _ -> ()
  | _ -> Alcotest.fail "the hottest entry survives the shrink");
  QC.set_capacity c 0;
  ignore (QC.put c ~key:"x" ~epoch:0 (QC.Count 0));
  Alcotest.(check int) "capacity 0 stores nothing" 0 (QC.length c)

(* --- Query_exec integration --- *)

let counter name () = Provkit_obs.Metrics.counter_value name

let test_select_hit_miss_invalidate_counters () =
  with_clean_cache @@ fun () ->
  with_metrics_on @@ fun () ->
  let t = kv_table () in
  for i = 0 to 9 do
    ignore (R.Table.insert_fields t (kv (i mod 3) (Printf.sprintf "row%d" i)))
  done;
  let hits = counter Provkit_obs.Names.query_cache_hits in
  let misses = counter Provkit_obs.Names.query_cache_misses in
  let invalidations = counter Provkit_obs.Names.query_cache_invalidations in
  let h0, m0, i0 = (hits (), misses (), invalidations ()) in
  let p = R.Predicate.Eq ("k", R.Value.Int 1) in
  let cold = QE.select ~where:p t in
  Alcotest.(check int) "first run misses" (m0 + 1) (misses ());
  let warm = QE.select ~where:p t in
  Alcotest.(check int) "second run hits" (h0 + 1) (hits ());
  Alcotest.(check bool) "hit returns the identical result" true (warm = cold);
  (* Any table mutation makes the entry stale on its next lookup. *)
  ignore (R.Table.insert_fields t (kv 1 "fresh"));
  let after = QE.select ~where:p t in
  Alcotest.(check int) "mutation invalidates" (i0 + 1) (invalidations ());
  Alcotest.(check int) "stale lookup re-runs cold" (m0 + 2) (misses ());
  Alcotest.(check int) "the new row is visible" (List.length cold + 1) (List.length after);
  let again = QE.select ~where:p t in
  Alcotest.(check int) "refreshed entry hits again" (h0 + 2) (hits ());
  Alcotest.(check bool) "and agrees with the cold rerun" true (again = after)

let test_custom_predicate_never_cached () =
  with_clean_cache @@ fun () ->
  let t = kv_table () in
  for i = 0 to 5 do
    ignore (R.Table.insert_fields t (kv i "x"))
  done;
  let p =
    R.Predicate.Custom ("odd_k", fun schema row -> R.Row.int schema row "k" mod 2 = 1)
  in
  let r1 = QE.select ~where:p t in
  Alcotest.(check int) "closure predicates store nothing" 0 (QE.cache_length ());
  let r2 = QE.select ~where:p t in
  Alcotest.(check bool) "cold reruns agree" true (r1 = r2);
  Alcotest.(check int) "three odd keys" 3 (List.length r1)

let test_cache_disabled_bypasses () =
  with_clean_cache @@ fun () ->
  let t = kv_table () in
  ignore (R.Table.insert_fields t (kv 1 "a"));
  QE.set_cache_enabled false;
  ignore (QE.select t);
  Alcotest.(check int) "disabled cache stores nothing" 0 (QE.cache_length ());
  QE.set_cache_enabled true;
  ignore (QE.select t);
  Alcotest.(check int) "re-enabled cache stores again" 1 (QE.cache_length ())

let test_eviction_bound_via_query_exec () =
  with_clean_cache @@ fun () ->
  with_metrics_on @@ fun () ->
  QE.set_cache_capacity 4;
  let t = kv_table () in
  for i = 0 to 29 do
    ignore (R.Table.insert_fields t (kv i "x"))
  done;
  let evictions = counter Provkit_obs.Names.query_cache_evictions in
  let e0 = evictions () in
  (* 20 distinct keys (by limit) through a 4-entry cache. *)
  for lim = 1 to 20 do
    ignore (QE.select ~limit:lim t)
  done;
  Alcotest.(check int) "live entries bounded by capacity" 4 (QE.cache_length ());
  Alcotest.(check int) "the overflow was evicted, and counted" (e0 + 16) (evictions ())

(* --- the property sweep: cached ≡ cold --- *)

let test_property_cached_equals_cold () =
  with_clean_cache @@ fun () ->
  let rng = Test_seed.prng ~salt:91 in
  let t = kv_table ~index:true () in
  let live = ref [] in
  let vals = [| "ant"; "bee"; "cat"; "dog"; "eel" |] in
  let random_pred () =
    match Prng.int rng 6 with
    | 0 -> R.Predicate.True
    | 1 -> R.Predicate.Eq ("k", R.Value.Int (Prng.int rng 8))
    | 2 -> R.Predicate.Cmp (R.Predicate.Ge, "k", R.Value.Int (Prng.int rng 8))
    | 3 ->
      R.Predicate.Between
        ("k", R.Value.Int (Prng.int rng 4), R.Value.Int (4 + Prng.int rng 4))
    | 4 -> R.Predicate.Like ("v", String.sub (Prng.pick rng vals) 0 2)
    | _ ->
      R.Predicate.Or
        [
          R.Predicate.Eq ("k", R.Value.Int (Prng.int rng 8));
          R.Predicate.Eq ("v", R.Value.Text (Prng.pick rng vals));
        ]
  in
  let random_order () =
    match Prng.int rng 3 with
    | 0 -> None
    | 1 -> Some [ QE.Asc "k" ]
    | _ -> Some [ QE.Desc "v"; QE.Asc "k" ]
  in
  let pick_live () = List.nth !live (Prng.int rng (List.length !live)) in
  let queries = ref 0 in
  for step = 1 to 600 do
    match Prng.int rng 10 with
    | 0 | 1 ->
      let id = R.Table.insert_fields t (kv (Prng.int rng 8) (Prng.pick rng vals)) in
      live := id :: !live
    | 2 when !live <> [] ->
      R.Table.update_field t (pick_live ()) "k" (R.Value.Int (Prng.int rng 8))
    | 3 when !live <> [] ->
      let id = pick_live () in
      R.Table.delete t id;
      live := List.filter (fun x -> x <> id) !live
    | _ -> begin
      incr queries;
      let where = random_pred () in
      match Prng.int rng 3 with
      | 0 ->
        let order_by = random_order () in
        let limit = if Prng.int rng 2 = 0 then None else Some (Prng.int rng 6) in
        let cached = QE.select ?order_by ~where ?limit t in
        let cold, _ = QE.select_stats ?order_by ~where ?limit t in
        if cached <> cold then Alcotest.failf "select diverged at step %d" step
      | 1 ->
        let cached = QE.count ~where t in
        let cold, _ = QE.count_stats ~where t in
        if cached <> cold then Alcotest.failf "count diverged at step %d" step
      | _ ->
        let by = if Prng.int rng 2 = 0 then "k" else "v" in
        let cached = QE.group_count ~by ~where t in
        let cold, _ = QE.group_count_stats ~by ~where t in
        if cached <> cold then Alcotest.failf "group_count diverged at step %d" step
    end
  done;
  Alcotest.(check bool) "sweep ran a meaningful number of queries" true (!queries > 300);
  Alcotest.(check bool) "the cache was actually exercised" true (QE.cache_length () > 0)

let suite =
  [
    Alcotest.test_case "lru hit/stale/absent" `Quick test_lru_hit_stale_absent;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru capacity" `Quick test_lru_capacity;
    Alcotest.test_case "hit/miss/invalidation counters" `Quick
      test_select_hit_miss_invalidate_counters;
    Alcotest.test_case "custom predicates never cached" `Quick
      test_custom_predicate_never_cached;
    Alcotest.test_case "disabled cache bypasses" `Quick test_cache_disabled_bypasses;
    Alcotest.test_case "eviction bound via Query_exec" `Quick
      test_eviction_bound_via_query_exec;
    Alcotest.test_case "property: cached = cold under interleaved mutation" `Quick
      test_property_cached_equals_cold;
  ]
