(* The fault-injecting sink: each fault shapes the byte image exactly as
   documented, honest sinks are transparent, and the command-line fault
   specs round trip. *)

module F = Provkit_util.Faulty_io

let buffer_sink ?faults () =
  let buf = Buffer.create 64 in
  (F.to_buffer ?faults buf, buf)

let test_honest_sink () =
  let sink, buf = buffer_sink () in
  F.write sink "hello ";
  F.write sink "world";
  Alcotest.(check int) "bytes_written counts offered bytes" 11 (F.bytes_written sink);
  Alcotest.(check string) "nothing persisted before flush" "" (Buffer.contents buf);
  F.flush sink;
  Alcotest.(check string) "flush persists" "hello world" (Buffer.contents buf);
  F.write sink "!";
  F.close sink;
  Alcotest.(check string) "close persists the rest" "hello world!" (Buffer.contents buf);
  Alcotest.(check string) "contents matches" "hello world!" (F.contents sink);
  F.close sink (* idempotent *)

let test_crash_after_bytes () =
  let sink, buf = buffer_sink ~faults:[ F.Crash_after_bytes 7 ] () in
  F.write sink "hello ";
  F.write sink "world";
  F.close sink;
  Alcotest.(check string) "bytes past the crash point are lost" "hello w" (Buffer.contents buf);
  Alcotest.(check int) "bytes_written still counts offered bytes" 11 (F.bytes_written sink)

let test_torn_final_write () =
  let sink, buf = buffer_sink ~faults:[ F.Torn_final_write 2 ] () in
  F.write sink "aaaa";
  F.flush sink;
  Alcotest.(check string) "mid-stream flush is honest" "aaaa" (Buffer.contents buf);
  F.write sink "bbbb";
  F.close sink;
  Alcotest.(check string) "final write torn to 2 bytes" "aaaabb" (Buffer.contents buf)

let test_flip_byte () =
  let sink, buf = buffer_sink ~faults:[ F.Flip_byte 1 ] () in
  F.write sink "abc";
  F.close sink;
  let got = Buffer.contents buf in
  Alcotest.(check int) "length unchanged" 3 (String.length got);
  Alcotest.(check char) "first byte intact" 'a' got.[0];
  Alcotest.(check int) "byte 1 complemented" (Char.code 'b' lxor 0xFF) (Char.code got.[1]);
  Alcotest.(check char) "last byte intact" 'c' got.[2]

let test_flip_out_of_range () =
  let sink, buf = buffer_sink ~faults:[ F.Flip_byte 99 ] () in
  F.write sink "abc";
  F.close sink;
  Alcotest.(check string) "out-of-range flip is a no-op" "abc" (Buffer.contents buf)

let test_duplicate_flush () =
  let sink, buf = buffer_sink ~faults:[ F.Duplicate_flush ] () in
  F.write sink "syncd.";
  F.flush sink;
  F.write sink "tail";
  F.close sink;
  Alcotest.(check string) "unsynced tail replayed once more" "syncd.tailtail"
    (Buffer.contents buf)

let test_arm_after_writing () =
  let sink, buf = buffer_sink () in
  F.write sink "abcdef";
  F.arm sink [ F.Crash_after_bytes 3 ];
  F.close sink;
  Alcotest.(check string) "armed fault applies at close" "abc" (Buffer.contents buf)

let test_to_file () =
  let path = Filename.temp_file "faulty_io" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let sink = F.to_file ~faults:[ F.Torn_final_write 1 ] path in
      F.write sink "xy";
      F.close sink;
      let ic = open_in_bin path in
      let got =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "file holds the faulted image" "x" got)

let test_write_after_close_rejected () =
  let sink, _ = buffer_sink () in
  F.close sink;
  Alcotest.(check bool) "write after close rejected" true
    (try
       F.write sink "x";
       false
     with Invalid_argument _ -> true)

let test_parse_fault () =
  let roundtrip f = F.parse_fault (F.fault_to_string f) = Some f in
  Alcotest.(check bool) "crash@N round trips" true (roundtrip (F.Crash_after_bytes 12));
  Alcotest.(check bool) "tear@N round trips" true (roundtrip (F.Torn_final_write 3));
  Alcotest.(check bool) "flip@N round trips" true (roundtrip (F.Flip_byte 7));
  Alcotest.(check bool) "dup-flush round trips" true (roundtrip F.Duplicate_flush);
  Alcotest.(check bool) "garbage rejected" true (F.parse_fault "explode@9" = None);
  Alcotest.(check bool) "missing count rejected" true (F.parse_fault "crash@" = None)

let suite =
  [
    Alcotest.test_case "honest sink" `Quick test_honest_sink;
    Alcotest.test_case "crash after bytes" `Quick test_crash_after_bytes;
    Alcotest.test_case "torn final write" `Quick test_torn_final_write;
    Alcotest.test_case "flip byte" `Quick test_flip_byte;
    Alcotest.test_case "flip out of range" `Quick test_flip_out_of_range;
    Alcotest.test_case "duplicate flush" `Quick test_duplicate_flush;
    Alcotest.test_case "arm after writing" `Quick test_arm_after_writing;
    Alcotest.test_case "file destination" `Quick test_to_file;
    Alcotest.test_case "write after close" `Quick test_write_after_close_rejected;
    Alcotest.test_case "parse/print fault specs" `Quick test_parse_fault;
  ]
