(* Query_exec.plan_for across predicate shapes: which access path the
   executor chooses, and that every path returns the same rows a naive
   scan would. *)

module Schema = Relstore.Schema
module Column = Relstore.Column
module Table = Relstore.Table
module Value = Relstore.Value
module P = Relstore.Predicate
module Q = Relstore.Query_exec

let fixture () =
  let t =
    Table.create
      (Schema.make ~name:"visits"
         [
           Column.make "url" Value.Ttext;
           Column.make "day" Value.Tint;
           Column.make "tab" Value.Tint;
         ])
  in
  Table.add_index t ~name:"by_url_day" ~columns:[ "url"; "day" ];
  Table.add_index t ~name:"by_day" ~columns:[ "day" ];
  for i = 1 to 60 do
    ignore
      (Table.insert_fields t
         [
           ("url", Value.Text (Printf.sprintf "http://site%d.example/" (i mod 5)));
           ("day", Value.Int (i mod 10));
           ("tab", Value.Int (i mod 3));
         ])
  done;
  t

let plan_t =
  Alcotest.testable
    (fun fmt -> function
      | Q.Full_scan -> Format.fprintf fmt "Full_scan"
      | Q.Index_eq n -> Format.fprintf fmt "Index_eq %s" n
      | Q.Index_range n -> Format.fprintf fmt "Index_range %s" n)
    ( = )

let check_plan t msg expected where =
  Alcotest.check plan_t msg expected (Q.plan_for t where);
  (* Whatever the plan, the rows must match a naive filter. *)
  let naive =
    List.filter (fun (_, row) -> P.eval where (Table.schema t) row) (Table.rows t)
  in
  Alcotest.(check int) (msg ^ ": row parity") (List.length naive)
    (List.length (Q.select ~where t))

let test_equality_prefix () =
  let t = fixture () in
  check_plan t "both indexed columns pinned"
    (Q.Index_eq "by_url_day")
    (P.And [ P.Eq ("url", Value.Text "http://site2.example/"); P.Eq ("day", Value.Int 7) ]);
  check_plan t "single-column index pinned" (Q.Index_eq "by_day") (P.Eq ("day", Value.Int 3));
  check_plan t "extra conjuncts do not block the index"
    (Q.Index_eq "by_day")
    (P.And [ P.Eq ("day", Value.Int 3); P.Cmp (P.Ge, "tab", Value.Int 1) ])

let test_partial_prefix_is_not_enough () =
  let t = fixture () in
  (* url alone pins only half of by_url_day, and no range is implied:
     the planner must fall back to a scan rather than misuse the
     composite index. *)
  check_plan t "half-pinned composite index" Q.Full_scan
    (P.Eq ("url", Value.Text "http://site1.example/"))

let test_range_shapes () =
  let t = fixture () in
  check_plan t "between uses the range index"
    (Q.Index_range "by_day")
    (P.Between ("day", Value.Int 2, Value.Int 5));
  check_plan t "inclusive comparison widens to a range"
    (Q.Index_range "by_day")
    (P.Cmp (P.Ge, "day", Value.Int 6));
  (* Strict bounds carry an exclusive flag down to the executor, which
     skips the boundary key inside the index fold. *)
  check_plan t "strict comparison uses the range index"
    (Q.Index_range "by_day")
    (P.Cmp (P.Lt, "day", Value.Int 6));
  check_plan t "strict lower bound uses the range index"
    (Q.Index_range "by_day")
    (P.Cmp (P.Gt, "day", Value.Int 6))

let test_mixed_shapes () =
  let t = fixture () in
  (* Equality on an unindexed column + range on an indexed one: the
     range index carries the query. *)
  check_plan t "mixed equality and range"
    (Q.Index_range "by_day")
    (P.And [ P.Eq ("tab", Value.Int 1); P.Between ("day", Value.Int 1, Value.Int 4) ]);
  (* Full equality coverage beats the range. *)
  check_plan t "equality wins over range"
    (Q.Index_eq "by_url_day")
    (P.And
       [
         P.Eq ("url", Value.Text "http://site0.example/");
         P.Eq ("day", Value.Int 5);
         P.Between ("day", Value.Int 0, Value.Int 9);
       ])

let test_no_index_applies () =
  let t = fixture () in
  check_plan t "unindexed equality" Q.Full_scan (P.Eq ("tab", Value.Int 2));
  check_plan t "trivial predicate" Q.Full_scan P.True;
  check_plan t "disjunction defeats the planner" Q.Full_scan
    (P.Or [ P.Eq ("day", Value.Int 1); P.Eq ("day", Value.Int 2) ]);
  check_plan t "negation defeats the planner" Q.Full_scan (P.Not (P.Eq ("day", Value.Int 1)))

let suite =
  [
    Alcotest.test_case "equality prefixes" `Quick test_equality_prefix;
    Alcotest.test_case "partial composite prefix" `Quick test_partial_prefix_is_not_enough;
    Alcotest.test_case "range shapes" `Quick test_range_shapes;
    Alcotest.test_case "mixed shapes" `Quick test_mixed_shapes;
    Alcotest.test_case "no applicable index" `Quick test_no_index_applies;
  ]
