(* Alert-engine tests.  The engine's registry, transition log and
   previous-point cursor are process-global (shared with the CLI), so
   every test starts from [Alert.reset] and asserts on deltas of the
   global flight/metric counters, never absolutes.

   The headline properties are the hysteresis contract from the rule
   catalog's docs: a signal oscillating across the threshold faster
   than [r_for_ns] never fires; a sustained breach fires exactly once
   and, once sustainedly clear, resolves exactly once. *)

module Alert = Provkit_obs.Alert
module Ts = Provkit_obs.Timeseries
module Metrics = Provkit_obs.Metrics
module Flight = Provkit_obs.Flight

let sig_gauge = "test.alert.signal"

(* One synthetic point: a single gauge carrying the signal value. *)
let point ~ns v =
  {
    Ts.pt_ns = Int64.of_int ns;
    pt_snap =
      { Metrics.snap_counters = []; snap_gauges = [ (sig_gauge, v) ]; snap_histograms = [] };
  }

let counter_point ~ns v =
  {
    Ts.pt_ns = Int64.of_int ns;
    pt_snap =
      { Metrics.snap_counters = [ ("test.alert.ticks", v) ]; snap_gauges = [];
        snap_histograms = [] };
  }

let gauge_rule ?(id = "alert.test.gauge") ?(for_ns = 0L) ?(severity = Alert.Warning)
    ?(condition = Alert.Above 10.0) () =
  {
    Alert.r_id = id;
    r_signal = Alert.Gauge_value sig_gauge;
    r_condition = condition;
    r_for_ns = for_ns;
    r_severity = severity;
    r_describe = "test gauge rule";
  }

let with_engine f =
  Alert.reset ();
  Fun.protect ~finally:(fun () -> Alert.reset ()) f

(* Feed a value sequence at a fixed step; the first point only primes. *)
let feed_values ~step values =
  List.iteri (fun i v -> Alert.feed (point ~ns:((i + 1) * step) v)) values

let state id =
  match Alert.find id with Some st -> st | None -> Alcotest.fail ("rule missing: " ^ id)

(* --- signal algebra -------------------------------------------------- *)

let test_signal_algebra () =
  let snap counters gauges hists =
    { Metrics.snap_counters = counters; snap_gauges = gauges; snap_histograms = hists }
  in
  let hs count p99 =
    { Metrics.hs_count = count; hs_sum = 0.0; hs_min = 0; hs_max = 0; hs_p50 = 0.0;
      hs_p95 = 0.0; hs_p99 = p99 }
  in
  let older = { Ts.pt_ns = 0L; pt_snap = snap [ ("c", 100) ] [ ("g", 1.0) ] [] } in
  let newer =
    {
      Ts.pt_ns = 2_000_000_000L;
      pt_snap = snap [ ("c", 160) ] [ ("g", 4.0) ] [ ("h", hs 10 250.0) ];
    }
  in
  let eval s = Alert.eval_signal ~older ~newer s in
  let check_some name expect s =
    match eval s with
    | Some v -> Alcotest.(check (float 1e-9)) name expect v
    | None -> Alcotest.fail (name ^ ": expected a value")
  in
  check_some "counter delta" 60.0 (Alert.Counter_delta "c");
  check_some "counter rate" 30.0 (Alert.Counter_rate "c");
  check_some "gauge" 4.0 (Alert.Gauge_value "g");
  check_some "p99" 250.0 (Alert.Hist_p99 "h");
  check_some "hist count rate" 5.0 (Alert.Hist_count_rate "h");
  check_some "ratio" 15.0 (Alert.Ratio (Alert.Counter_delta "c", Alert.Gauge_value "g"));
  check_some "sum" 64.0 (Alert.Sum (Alert.Counter_delta "c", Alert.Gauge_value "g"));
  (* Missing counters read as zero (delta clamps); a counter that went
     backwards also clamps. *)
  check_some "absent counter delta" 0.0 (Alert.Counter_delta "nope");
  let reset_newer = { newer with Ts.pt_snap = snap [ ("c", 5) ] [] [] } in
  (match Alert.eval_signal ~older ~newer:reset_newer (Alert.Counter_delta "c") with
  | Some v -> Alcotest.(check (float 1e-9)) "reset clamps" 0.0 v
  | None -> Alcotest.fail "reset clamp: expected a value");
  (* No data: empty histogram, zero-denominator ratio. *)
  (match eval (Alert.Hist_p99 "absent") with
  | None -> ()
  | Some _ -> Alcotest.fail "p99 of an absent histogram should be no-data");
  match eval (Alert.Ratio (Alert.Gauge_value "g", Alert.Counter_delta "nope")) with
  | None -> ()
  | Some _ -> Alcotest.fail "ratio with zero denominator should be no-data"

(* --- hysteresis: deterministic cases --------------------------------- *)

let test_oscillation_never_fires () =
  with_engine @@ fun () ->
  (* for_ns = 300: at step 100 a breach must survive 4 consecutive
     samples to fire.  Alternating 2-breach / 1-clear runs never get
     there. *)
  Alert.register (gauge_rule ~for_ns:300L ());
  feed_values ~step:100
    [ 20.0; 20.0; 5.0; 20.0; 20.0; 5.0; 20.0; 20.0; 5.0; 20.0; 20.0; 5.0 ];
  let st = state "alert.test.gauge" in
  Alcotest.(check int) "never fired" 0 st.Alert.st_fires;
  Alcotest.(check bool) "not firing" false st.Alert.st_firing;
  Alcotest.(check int) "no transitions" 0 (List.length (Alert.transitions ()))

let test_sustained_fires_once_resolves_once () =
  with_engine @@ fun () ->
  Alert.register (gauge_rule ~for_ns:300L ());
  (* 8 breach samples: fire exactly once (at the 4th), stay firing. *)
  feed_values ~step:100 [ 20.0; 20.0; 20.0; 20.0; 20.0; 20.0; 20.0; 20.0 ];
  let st = state "alert.test.gauge" in
  Alcotest.(check int) "fired once" 1 st.Alert.st_fires;
  Alcotest.(check bool) "firing" true st.Alert.st_firing;
  (* 8 clear samples continuing the clock: resolve exactly once. *)
  List.iteri (fun i v -> Alert.feed (point ~ns:((9 + i) * 100) v)) [ 5.0; 5.0; 5.0; 5.0; 5.0; 5.0; 5.0; 5.0 ];
  let st = state "alert.test.gauge" in
  Alcotest.(check int) "still one fire" 1 st.Alert.st_fires;
  Alcotest.(check int) "resolved once" 1 st.Alert.st_resolves;
  Alcotest.(check bool) "clear" false st.Alert.st_firing;
  match List.map (fun tr -> tr.Alert.tr_kind) (Alert.transitions ()) with
  | [ Alert.Fire; Alert.Resolve ] -> ()
  | _ -> Alcotest.fail "expected exactly [Fire; Resolve]"

let test_brief_dip_does_not_resolve () =
  with_engine @@ fun () ->
  Alert.register (gauge_rule ~for_ns:300L ());
  (* First point only primes; the breach window opens at ns=200 and the
     rule fires at ns=500. *)
  feed_values ~step:100 [ 20.0; 20.0; 20.0; 20.0; 20.0 ];
  Alcotest.(check bool) "firing" true (state "alert.test.gauge").Alert.st_firing;
  (* A 2-sample dip is shorter than for_ns: hysteresis holds the alert
     open, and the resumed breach must not fire a second time. *)
  List.iteri
    (fun i v -> Alert.feed (point ~ns:((6 + i) * 100) v))
    [ 5.0; 5.0; 20.0; 20.0; 20.0; 20.0 ];
  let st = state "alert.test.gauge" in
  Alcotest.(check bool) "still firing" true st.Alert.st_firing;
  Alcotest.(check int) "no second fire" 1 st.Alert.st_fires;
  Alcotest.(check int) "no resolve" 0 st.Alert.st_resolves

let test_absent_condition () =
  with_engine @@ fun () ->
  Alert.register
    {
      Alert.r_id = "alert.test.absent";
      r_signal = Alert.Counter_delta "test.alert.ticks";
      r_condition = Alert.Absent;
      r_for_ns = 0L;
      r_severity = Alert.Info;
      r_describe = "stall detector";
    };
  (* Counter moving: clear.  Counter flat: breach (immediately, for_=0). *)
  Alert.feed (counter_point ~ns:100 10);
  Alert.feed (counter_point ~ns:200 20);
  Alcotest.(check bool) "moving = clear" false (state "alert.test.absent").Alert.st_firing;
  Alert.feed (counter_point ~ns:300 20);
  Alcotest.(check bool) "stalled = firing" true (state "alert.test.absent").Alert.st_firing;
  Alert.feed (counter_point ~ns:400 30);
  Alcotest.(check bool) "moving again = clear" false
    (state "alert.test.absent").Alert.st_firing

(* --- hysteresis: seeded QCheck properties ---------------------------- *)

(* Run-length encoded oscillation: a starting polarity and a list of
   run lengths, polarity strictly alternating run to run (so no two
   generated runs can merge into one longer breach).  [k_steps] is the
   number of extra samples a breach must survive: for_ns = k * step, so
   a breach run needs k + 1 consecutive samples to fire. *)
let k_steps = 3
let step_ns = 100

let runs_gen ~max_run =
  QCheck.Gen.(pair bool (list_size (int_range 0 20) (int_range 1 max_run)))

let values_of_runs (start, lens) =
  let _, rev =
    List.fold_left
      (fun (breach, acc) len ->
        (not breach, List.init len (fun _ -> if breach then 20.0 else 5.0) :: acc))
      (start, []) lens
  in
  List.concat (List.rev rev)

let print_runs (start, lens) =
  Printf.sprintf "start=%c;%s"
    (if start then 'B' else 'c')
    (String.concat "," (List.map string_of_int lens))

let with_rule_fires values =
  Alert.reset ();
  Alert.register (gauge_rule ~for_ns:(Int64.of_int (k_steps * step_ns)) ());
  feed_values ~step:step_ns values;
  let st = state "alert.test.gauge" in
  let fires = st.Alert.st_fires and resolves = st.Alert.st_resolves in
  Alert.reset ();
  (fires, resolves)

let prop_oscillation_never_fires =
  QCheck.Test.make ~name:"oscillation faster than for_ never fires" ~count:200
    (QCheck.make ~print:print_runs (runs_gen ~max_run:k_steps))
    (fun runs ->
      (* Every breach run is at most k samples: too short to fire. *)
      let fires, _ = with_rule_fires (values_of_runs runs) in
      fires = 0)

let prop_sustained_fires_exactly_once =
  QCheck.Test.make ~name:"sustained breach fires once, sustained clear resolves once"
    ~count:200
    (QCheck.make ~print:print_runs (runs_gen ~max_run:k_steps))
    (fun prefix ->
      (* Any too-fast-to-fire oscillation prefix, then one long breach
         and one long clear.  Exactly one fire, exactly one resolve —
         even if the prefix happens to end mid-breach, that just extends
         the single sustained run. *)
      let tail = [ 20.0; 20.0; 20.0; 20.0; 20.0; 20.0; 5.0; 5.0; 5.0; 5.0; 5.0; 5.0 ] in
      let fires, resolves = with_rule_fires (values_of_runs prefix @ tail) in
      fires = 1 && resolves = 1)

(* --- transitions, log bounds, flight dedup --------------------------- *)

let test_transition_log_bounded () =
  with_engine @@ fun () ->
  Alert.register (gauge_rule ());
  (* for_ns = 0: every alternation is a transition. *)
  feed_values ~step:100 (List.concat (List.init 100 (fun _ -> [ 20.0; 5.0 ])));
  Alcotest.(check bool) "log bounded at 64" true (List.length (Alert.transitions ()) <= 64);
  Alcotest.(check bool) "total keeps counting" true (Alert.transitions_recorded () > 64);
  let seqs = List.map (fun tr -> tr.Alert.tr_seq) (Alert.transitions ()) in
  Alcotest.(check (list int)) "oldest-first, contiguous" (List.sort compare seqs) seqs

let test_fire_dedups_flight_incidents () =
  with_engine @@ fun () ->
  Flight.clear ();
  Alert.register (gauge_rule ~id:"alert.test.flappy" ());
  let recorded0 = Flight.recorded () in
  (* Prime below threshold, then 20 fire/resolve cycles: 20 flight
     occurrences, ONE ring slot. *)
  Alert.feed (point ~ns:10 5.0);
  feed_values ~step:100 (List.concat (List.init 20 (fun _ -> [ 20.0; 5.0 ])));
  let ours =
    List.filter (fun (i : Flight.incident) -> i.Flight.dedup = Some "alert.test.flappy")
      (Flight.incidents ())
  in
  (match ours with
  | [ i ] ->
    Alcotest.(check int) "19 repeats folded into the slot" 19 i.Flight.repeats;
    Alcotest.(check string) "reason" "alert.fired" i.Flight.reason
  | l -> Alcotest.failf "expected exactly 1 deduped incident, got %d" (List.length l));
  Alcotest.(check int) "every occurrence counted" 20 (Flight.recorded () - recorded0);
  (* The other 15 ring slots survive for other incidents. *)
  Flight.record "test.alert.other";
  Alcotest.(check bool) "ring keeps unrelated incidents" true
    (List.exists (fun (i : Flight.incident) -> i.Flight.reason = "test.alert.other")
       (Flight.incidents ()))

let test_defaults_registered () =
  with_engine @@ fun () ->
  List.iter Alert.register Alert.defaults;
  Alcotest.(check int) "six default rules" 6 (List.length (Alert.states ()));
  List.iter
    (fun r ->
      if not (Provkit_obs.Names.alert_registered r.Alert.r_id) then
        Alcotest.failf "default rule id %s not in Names.alert_ids" r.Alert.r_id)
    Alert.defaults;
  (* And the reverse: every registered id has a default rule. *)
  List.iter
    (fun id ->
      if not (List.exists (fun r -> r.Alert.r_id = id) Alert.defaults) then
        Alcotest.failf "Names.alert_ids entry %s has no default rule" id)
    Provkit_obs.Names.alert_ids

let test_prometheus_states () =
  with_engine @@ fun () ->
  let text0 = Alert.prometheus_states () in
  Alcotest.(check string) "no rules, no exposition" "" text0;
  Alert.register (gauge_rule ~id:"alert.test.promgauge" ());
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
    go 0
  in
  let text = Alert.prometheus_states () in
  Alcotest.(check bool) "typed" true (contains text "# TYPE prov_alert_state gauge");
  Alcotest.(check bool) "state 0" true
    (contains text "prov_alert_state{rule=\"alert.test.promgauge\"} 0");
  feed_values ~step:100 [ 20.0; 20.0 ];
  Alcotest.(check bool) "state 1 after fire" true
    (contains (Alert.prometheus_states ())
       "prov_alert_state{rule=\"alert.test.promgauge\"} 1")

let test_replay_history_is_quiet () =
  with_engine @@ fun () ->
  Flight.clear ();
  Alert.register (gauge_rule ~id:"alert.test.replayed" ());
  let hook_calls = ref 0 in
  Alert.add_transition_hook (fun _ -> incr hook_calls);
  Fun.protect ~finally:Alert.clear_transition_hooks @@ fun () ->
  let recorded0 = Flight.recorded () in
  let fires0 = Metrics.counter_value Provkit_obs.Names.alert_fires in
  Alert.replay_history [ point ~ns:100 20.0; point ~ns:200 20.0; point ~ns:300 5.0 ];
  let st = state "alert.test.replayed" in
  Alcotest.(check int) "state replayed" 1 st.Alert.st_fires;
  Alcotest.(check int) "transitions logged" 2 (List.length (Alert.transitions ()));
  Alcotest.(check int) "no hooks during replay" 0 !hook_calls;
  Alcotest.(check int) "no flight incidents" 0 (Flight.recorded () - recorded0);
  Alcotest.(check int) "no metric ticks" fires0
    (Metrics.counter_value Provkit_obs.Names.alert_fires);
  (* Live feeding continues from the replayed cursor and is loud again. *)
  Alert.feed (point ~ns:400 20.0);
  Alert.feed (point ~ns:500 20.0);
  Alcotest.(check int) "live refire" 2 (state "alert.test.replayed").Alert.st_fires;
  Alcotest.(check int) "live hook ran" 1 !hook_calls

let test_observer_wiring () =
  with_engine @@ fun () ->
  let saved = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Ts.clear_observers ();
      Metrics.set_enabled saved)
  @@ fun () ->
  Ts.add_observer Alert.feed;
  Alert.register
    {
      (gauge_rule ~id:"alert.test.observed" ()) with
      Alert.r_signal = Alert.Counter_rate Provkit_obs.Names.timeseries_points;
      r_condition = Alert.Above (-1.0);
    };
  let ring = Ts.create ~capacity:4 () in
  ignore (Ts.record ~now_ns:1_000_000_000L ring);
  ignore (Ts.record ~now_ns:2_000_000_000L ring);
  (* Two recorded points = one evaluated pair; the always-true condition
     proves evaluation actually ran off the observer. *)
  Alcotest.(check bool) "observer drove evaluation" true
    (state "alert.test.observed").Alert.st_firing

let suite =
  [
    Alcotest.test_case "signal algebra over a point pair" `Quick test_signal_algebra;
    Alcotest.test_case "oscillation never fires (deterministic)" `Quick
      test_oscillation_never_fires;
    Alcotest.test_case "sustained breach fires once, resolves once" `Quick
      test_sustained_fires_once_resolves_once;
    Alcotest.test_case "brief dip does not resolve" `Quick test_brief_dip_does_not_resolve;
    Alcotest.test_case "absent-signal condition" `Quick test_absent_condition;
    QCheck_alcotest.to_alcotest prop_oscillation_never_fires;
    QCheck_alcotest.to_alcotest prop_sustained_fires_exactly_once;
    Alcotest.test_case "transition log bounded, total monotonic" `Quick
      test_transition_log_bounded;
    Alcotest.test_case "repeated fires dedup into one flight slot" `Quick
      test_fire_dedups_flight_incidents;
    Alcotest.test_case "default catalog ids all registered" `Quick test_defaults_registered;
    Alcotest.test_case "prometheus state gauges" `Quick test_prometheus_states;
    Alcotest.test_case "replay_history suppresses side effects" `Quick
      test_replay_history_is_quiet;
    Alcotest.test_case "timeseries observer drives evaluation" `Quick test_observer_wiring;
  ]
