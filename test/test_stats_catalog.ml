(* Statistics catalog tests: histogram invariants, NDV accuracy,
   estimate quality on uniform and Zipf-skewed tables, freshness under
   mutation, and the misestimate detector.  The headline acceptance
   check compares the stats-guided estimator against the pre-catalog
   heuristic on a skewed table and requires it to win outright. *)

module R = Relstore
module U = Provkit_util
module Stats = Relstore.Stats
module Metrics = Provkit_obs.Metrics
module Names = Provkit_obs.Names
module Flight = Provkit_obs.Flight

let with_metrics_enabled f =
  let saved = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) f

(* --- fixture tables --- *)

let uniform_table ?(n = 3_000) () =
  let rng = Test_seed.prng ~salt:41 in
  let t =
    R.Table.create
      (R.Schema.make ~name:"uniformly"
         [
           R.Column.make "k" R.Value.Tint;
           R.Column.make "u" R.Value.Tint;
           R.Column.make ~nullable:true "note" R.Value.Ttext;
         ])
  in
  R.Table.add_index t ~name:"by_k" ~columns:[ "k" ];
  for i = 1 to n do
    ignore
      (R.Table.insert_fields t
         [
           ("k", R.Value.Int (U.Prng.int rng 30));
           ("u", R.Value.Int (U.Prng.int rng 16));
           ("note", if i mod 2 = 0 then R.Value.Null else R.Value.Text "x");
         ])
  done;
  t

(* A heavy-tailed table: [rank] is indexed and Zipf-distributed (rank 0
   holds ~22 % of the rows at s = 1.1), [shard] is uniform over 16
   values with no index, [zip2] copies the Zipf draw with no index —
   the worst case for an NDV-only equality estimate. *)
let zipf_table ?(n = 4_000) () =
  let rng = Test_seed.prng ~salt:72 in
  let z = U.Zipf.create ~n:200 ~s:1.1 in
  let t =
    R.Table.create
      (R.Schema.make ~name:"zipfy"
         [
           R.Column.make "rank" R.Value.Tint;
           R.Column.make "shard" R.Value.Tint;
           R.Column.make "zip2" R.Value.Tint;
         ])
  in
  R.Table.add_index t ~name:"by_rank" ~columns:[ "rank" ];
  for _ = 1 to n do
    let r = U.Zipf.sample z rng in
    ignore
      (R.Table.insert_fields t
         [
           ("rank", R.Value.Int r);
           ("shard", R.Value.Int (U.Prng.int rng 16));
           ("zip2", R.Value.Int r);
         ])
  done;
  t

let actual_rows t p =
  let schema = R.Table.schema t in
  List.length (List.filter (fun (_, row) -> R.Predicate.eval p schema row) (R.Table.rows t))

let col_stats ts name =
  match List.assoc_opt name ts.Stats.ts_columns with
  | Some cs -> cs
  | None -> Alcotest.failf "no stats for column %s" name

(* Mismatch factor >= 1.0 between an estimate and the truth. *)
let ratio ~est ~actual =
  let e = Float.max 1.0 est and a = float_of_int (max 1 actual) in
  Float.max (e /. a) (a /. e)

(* --- histogram and NDV properties --- *)

let test_histogram_invariants () =
  let t = zipf_table () in
  let ts = Stats.analyze t in
  let cs = col_stats ts "rank" in
  let h =
    match cs.Stats.cs_histogram with
    | Some h -> h
    | None -> Alcotest.fail "indexed column must get a histogram"
  in
  Alcotest.check Alcotest.int "summarizes every non-null row" 4_000 h.Stats.hb_rows;
  let b = Array.length h.Stats.hb_bounds in
  if b = 0 || b > 32 then Alcotest.failf "bucket count %d out of range" b;
  if R.Value.compare h.Stats.hb_min h.Stats.hb_bounds.(0) > 0 then
    Alcotest.fail "min exceeds first bound";
  for i = 1 to b - 1 do
    if R.Value.compare h.Stats.hb_bounds.(i - 1) h.Stats.hb_bounds.(i) > 0 then
      Alcotest.failf "bounds decrease at bucket %d" i
  done;
  (* Rank 0 holds far more than two buckets' depth of rows, so it must
     repeat across adjacent bounds — the skew signal the equality
     estimator reads. *)
  if not (R.Value.equal h.Stats.hb_bounds.(0) h.Stats.hb_bounds.(1)) then
    Alcotest.fail "heavy hitter does not span adjacent buckets";
  (* Non-indexed columns carry no histogram. *)
  (match (col_stats ts "shard").Stats.cs_histogram with
  | None -> ()
  | Some _ -> Alcotest.fail "unexpected histogram on non-indexed column");
  Stats.invalidate t

let test_ndv_and_null_stats () =
  let t = uniform_table () in
  let ts = Stats.analyze t in
  Alcotest.check Alcotest.int "rows" 3_000 ts.Stats.ts_rows;
  Alcotest.check Alcotest.int "full scan examined all" 3_000 ts.Stats.ts_sampled;
  let cs_u = col_stats ts "u" in
  if cs_u.Stats.cs_ndv < 14.0 || cs_u.Stats.cs_ndv > 18.0 then
    Alcotest.failf "ndv(u)=%.1f, want ~16" cs_u.Stats.cs_ndv;
  let cs_note = col_stats ts "note" in
  Alcotest.check Alcotest.int "nulls counted" 1_500 cs_note.Stats.cs_nulls;
  Alcotest.check (Alcotest.float 1e-9) "null fraction" 0.5 cs_note.Stats.cs_null_frac;
  let cs_k = col_stats ts "k" in
  let truth = Hashtbl.create 64 in
  List.iter
    (fun (_, row) -> Hashtbl.replace truth (R.Value.to_string row.(0)) ())
    (R.Table.rows t);
  let true_ndv = float_of_int (Hashtbl.length truth) in
  if Float.abs (cs_k.Stats.cs_ndv -. true_ndv) > 0.1 *. true_ndv then
    Alcotest.failf "ndv(k)=%.1f, true %.0f" cs_k.Stats.cs_ndv true_ndv;
  Stats.invalidate t

let test_all_null_column () =
  let t =
    R.Table.create
      (R.Schema.make ~name:"voidish" [ R.Column.make ~nullable:true "v" R.Value.Tint ])
  in
  for _ = 1 to 10 do
    ignore (R.Table.insert_fields t [ ("v", R.Value.Null) ])
  done;
  let ts = Stats.analyze t in
  let cs = col_stats ts "v" in
  Alcotest.check (Alcotest.float 1e-9) "all null" 1.0 cs.Stats.cs_null_frac;
  Alcotest.check (Alcotest.float 1e-9) "ndv 0" 0.0 cs.Stats.cs_ndv;
  if not (R.Value.is_null cs.Stats.cs_min) then Alcotest.fail "min should be Null";
  Alcotest.check (Alcotest.float 1e-6) "eq estimate 0" 0.0
    (Stats.estimate_eq ts "v" (R.Value.Int 1));
  Stats.invalidate t

(* --- estimate quality --- *)

let check_ratio_below ~limit ~est ~actual msg =
  let r = ratio ~est ~actual in
  if r > limit then Alcotest.failf "%s: est %.1f vs actual %d (off %.2fx)" msg est actual r

let test_uniform_estimates () =
  let t = uniform_table () in
  let ts = Stats.analyze t in
  let eq = R.Predicate.Eq ("k", R.Value.Int 7) in
  check_ratio_below ~limit:2.0 ~est:(Stats.estimate_rows ts eq) ~actual:(actual_rows t eq)
    "uniform equality";
  let btw = R.Predicate.Between ("k", R.Value.Int 5, R.Value.Int 14) in
  check_ratio_below ~limit:2.0
    ~est:(Stats.estimate_rows ts btw)
    ~actual:(actual_rows t btw) "uniform range";
  let nn = R.Predicate.Not_null "note" in
  check_ratio_below ~limit:1.2 ~est:(Stats.estimate_rows ts nn)
    ~actual:(actual_rows t nn) "not-null";
  Stats.invalidate t

let test_zipf_estimates () =
  let t = zipf_table () in
  let ts = Stats.analyze t in
  (* The heavy hitter: 1/ndv would be off ~40x; the histogram's spanned
     buckets must bring it within a factor 2. *)
  let hot = R.Predicate.Eq ("rank", R.Value.Int 0) in
  check_ratio_below ~limit:2.0 ~est:(Stats.estimate_rows ts hot)
    ~actual:(actual_rows t hot) "zipf heavy hitter";
  let head = R.Predicate.Between ("rank", R.Value.Int 0, R.Value.Int 5) in
  check_ratio_below ~limit:2.0 ~est:(Stats.estimate_rows ts head)
    ~actual:(actual_rows t head) "zipf head range";
  Stats.invalidate t

let test_selectivity_combinators () =
  let t = uniform_table ~n:500 () in
  let ts = Stats.analyze t in
  let feq = Alcotest.float 1e-9 in
  Alcotest.check feq "true" 1.0 (Stats.selectivity ts R.Predicate.True);
  let p = R.Predicate.Eq ("u", R.Value.Int 3) in
  let sp = Stats.selectivity ts p in
  Alcotest.check feq "not" (1.0 -. sp) (Stats.selectivity ts (R.Predicate.Not p));
  let q = R.Predicate.Eq ("k", R.Value.Int 3) in
  let sq = Stats.selectivity ts q in
  Alcotest.check feq "and multiplies" (sp *. sq)
    (Stats.selectivity ts (R.Predicate.And [ p; q ]));
  Alcotest.check feq "or combines independently"
    (1.0 -. ((1.0 -. sp) *. (1.0 -. sq)))
    (Stats.selectivity ts (R.Predicate.Or [ p; q ]));
  Alcotest.check feq "custom default" (1.0 /. 3.0)
    (Stats.selectivity ts (R.Predicate.Custom ("any", fun _ _ -> true)));
  Stats.invalidate t

(* --- the acceptance bar: stats beat the heuristic on skew --- *)

let test_stats_beat_heuristic_on_zipf () =
  let t = zipf_table () in
  ignore (Stats.analyze t);
  let queries =
    [
      (* index_eq on the hitter: the heuristic's exact probe is fine here *)
      ("eq rank 0", R.Predicate.Eq ("rank", R.Value.Int 0));
      (* full scan: the heuristic answers with the table cardinality *)
      ("eq shard 3", R.Predicate.Eq ("shard", R.Value.Int 3));
      (* index_eq plus residual: the heuristic ignores the residual *)
      ( "rank 0 and shard 3",
        R.Predicate.And
          [ R.Predicate.Eq ("rank", R.Value.Int 0); R.Predicate.Eq ("shard", R.Value.Int 3) ] );
      (* index_range: exact probe again *)
      ("rank 0..5", R.Predicate.Between ("rank", R.Value.Int 0, R.Value.Int 5));
    ]
  in
  let worst f =
    List.fold_left
      (fun acc (_, p) ->
        let d = f t p in
        let actual = actual_rows t p in
        Float.max acc (ratio ~est:(float_of_int d.R.Query_exec.estimated_rows) ~actual))
      1.0 queries
  in
  let heuristic_worst = worst R.Query_exec.plan_detail_heuristic in
  let stats_worst = worst R.Query_exec.plan_detail in
  (* Sanity on the sources. *)
  List.iter
    (fun (name, p) ->
      let d = R.Query_exec.plan_detail t p in
      if not d.R.Query_exec.est_from_stats then
        Alcotest.failf "%s: estimate did not come from the catalog" name)
    queries;
  if stats_worst >= heuristic_worst then
    Alcotest.failf "stats max error %.2fx must beat heuristic %.2fx" stats_worst
      heuristic_worst;
  (* The heuristic must actually be bad on this workload (scan and
     residual cases are ~16x off) and the catalog must stay tight. *)
  if heuristic_worst < 4.0 then
    Alcotest.failf "workload too easy: heuristic only %.2fx off" heuristic_worst;
  if stats_worst > 4.0 then Alcotest.failf "stats estimator %.2fx off" stats_worst;
  Stats.invalidate t

(* --- freshness and the planner seam --- *)

let test_freshness_and_fallback () =
  with_metrics_enabled @@ fun () ->
  let t = uniform_table ~n:300 () in
  (match Stats.fresh t with
  | None -> ()
  | Some _ -> Alcotest.fail "fresh before any analyze");
  ignore (Stats.analyze t);
  let estimates_before = Metrics.counter_value Names.stats_estimates in
  let p = R.Predicate.Eq ("k", R.Value.Int 1) in
  let d = R.Query_exec.plan_detail t p in
  if not d.R.Query_exec.est_from_stats then Alcotest.fail "fresh stats unused";
  if Metrics.counter_value Names.stats_estimates <= estimates_before then
    Alcotest.fail "stats estimate did not tick the counter";
  (* Any mutation bumps the epoch: the entry goes stale but stays
     inspectable, and the planner falls back to the heuristic. *)
  ignore (R.Table.insert_fields t [ ("k", R.Value.Int 1); ("u", R.Value.Int 1); ("note", R.Value.Null) ]);
  (match Stats.fresh t with
  | None -> ()
  | Some _ -> Alcotest.fail "stale entry claimed fresh");
  (match Stats.lookup t with
  | Some _ -> ()
  | None -> Alcotest.fail "stale entry vanished from lookup");
  let d' = R.Query_exec.plan_detail t p in
  if d'.R.Query_exec.est_from_stats then Alcotest.fail "stale stats used";
  let h = R.Query_exec.plan_detail_heuristic t p in
  Alcotest.check Alcotest.int "fallback equals heuristic" h.R.Query_exec.estimated_rows
    d'.R.Query_exec.estimated_rows;
  ignore (Stats.analyze t);
  (match Stats.fresh t with
  | Some _ -> ()
  | None -> Alcotest.fail "re-analyze did not refresh");
  Stats.invalidate t;
  match Stats.lookup t with
  | None -> ()
  | Some _ -> Alcotest.fail "invalidate left the entry"

let test_sampled_analyze () =
  let t = zipf_table () in
  let ts = Stats.analyze ~sample:500 ~seed:(Test_seed.value + 5) t in
  Alcotest.check Alcotest.int "rows is the full cardinality" 4_000 ts.Stats.ts_rows;
  Alcotest.check Alcotest.int "sampled what was asked" 500 ts.Stats.ts_sampled;
  (* Sampled fractions extrapolate to full-table row counts. *)
  let p = R.Predicate.Eq ("shard", R.Value.Int 3) in
  check_ratio_below ~limit:2.5 ~est:(Stats.estimate_rows ts p) ~actual:(actual_rows t p)
    "sampled uniform equality";
  let hot = R.Predicate.Eq ("rank", R.Value.Int 0) in
  check_ratio_below ~limit:2.5 ~est:(Stats.estimate_rows ts hot)
    ~actual:(actual_rows t hot) "sampled heavy hitter";
  Stats.invalidate t

(* --- the misestimate detector --- *)

let test_misestimate_detector () =
  with_metrics_enabled @@ fun () ->
  let t = zipf_table () in
  ignore (Stats.analyze t);
  (* zip2 copies the Zipf column but has no index, so the estimator
     only has 1/ndv ~ 20 rows — the true hitter count is ~40x that,
     far beyond the 10x default threshold. *)
  let where = R.Predicate.Eq ("zip2", R.Value.Int 0) in
  let mis_before = Metrics.counter_value Names.stats_misestimates in
  let incidents_before = Flight.recorded () in
  let rows, _, profile = R.Query_exec.select_profiled ~where t in
  Alcotest.check Alcotest.int "hitter rows returned"
    (actual_rows t where) (List.length rows);
  if Metrics.counter_value Names.stats_misestimates <= mis_before then
    Alcotest.fail "misestimate counter did not tick";
  if Flight.recorded () <= incidents_before then
    Alcotest.fail "no flight-recorder incident";
  (* The profile carries the bad estimate for EXPLAIN ANALYZE. *)
  (match profile.R.Query_exec.est_rows with
  | Some est ->
      if est >= List.length rows then
        Alcotest.failf "expected an underestimate, got %d for %d rows" est
          (List.length rows)
  | None -> Alcotest.fail "profiled run with fresh stats lost est_rows");
  (* A well-estimated query must not trip the detector. *)
  let mis_mid = Metrics.counter_value Names.stats_misestimates in
  ignore (R.Query_exec.select_profiled ~where:(R.Predicate.Eq ("rank", R.Value.Int 0)) t);
  Alcotest.check Alcotest.int "accurate estimate stays quiet" mis_mid
    (Metrics.counter_value Names.stats_misestimates);
  Stats.invalidate t

let test_misestimate_threshold_validation () =
  Alcotest.check_raises "below 1.0 rejected"
    (Invalid_argument "Query_exec.set_misestimate_threshold: must be >= 1.0") (fun () ->
      R.Query_exec.set_misestimate_threshold 0.5)

(* --- rendering --- *)

let test_json_and_render () =
  let t = uniform_table ~n:100 () in
  let ts = Stats.analyze t in
  let js = Stats.to_json ts in
  let occurs needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
    go 0
  in
  if not (occurs "\"table\":\"uniformly\"" js) then Alcotest.fail "json lacks table name";
  if not (occurs "\"histogram\"" js) then Alcotest.fail "json lacks histogram";
  if not (occurs "uniformly" (Stats.render ts)) then Alcotest.fail "render lacks title";
  Stats.invalidate t

let suite =
  [
    Alcotest.test_case "histogram invariants on skew" `Quick test_histogram_invariants;
    Alcotest.test_case "ndv and null accounting" `Quick test_ndv_and_null_stats;
    Alcotest.test_case "all-null column" `Quick test_all_null_column;
    Alcotest.test_case "uniform estimates within tolerance" `Quick test_uniform_estimates;
    Alcotest.test_case "zipf estimates within tolerance" `Quick test_zipf_estimates;
    Alcotest.test_case "selectivity combinators" `Quick test_selectivity_combinators;
    Alcotest.test_case "stats beat heuristic on zipf" `Quick
      test_stats_beat_heuristic_on_zipf;
    Alcotest.test_case "freshness, fallback, invalidation" `Quick
      test_freshness_and_fallback;
    Alcotest.test_case "sampled analyze extrapolates" `Quick test_sampled_analyze;
    Alcotest.test_case "misestimate detector" `Quick test_misestimate_detector;
    Alcotest.test_case "misestimate threshold validation" `Quick
      test_misestimate_threshold_validation;
    Alcotest.test_case "json and render" `Quick test_json_and_render;
  ]
