(* EXPLAIN ANALYZE: the per-operator profile trees returned by the
   [*_profiled] executor entry points.  The contract under test is that
   the children tile the root — leaf durations share boundary
   timestamps, so their sum matches the root's latency (the acceptance
   bar is 5%; shared boundaries make it exact up to clock granularity) —
   and that rows in/out describe what each operator actually did, for
   every access path the planner can choose. *)

module Schema = Relstore.Schema
module Column = Relstore.Column
module Table = Relstore.Table
module Value = Relstore.Value
module P = Relstore.Predicate
module Q = Relstore.Query_exec
module Sql = Relstore.Sql
module Database = Relstore.Database

let visits_schema () =
  Schema.make ~name:"visits"
    [
      Column.make "url" Value.Ttext;
      Column.make "day" Value.Tint;
      Column.make "tab" Value.Tint;
    ]

let populate t =
  Table.add_index t ~name:"by_day" ~columns:[ "day" ];
  for i = 1 to 90 do
    ignore
      (Table.insert_fields t
         [
           ("url", Value.Text (Printf.sprintf "http://site%d.example/" (i mod 6)));
           ("day", Value.Int (i mod 9));
           ("tab", Value.Int (i mod 4));
         ])
  done

let fixture () =
  let t = Table.create (visits_schema ()) in
  populate t;
  t

let ops p = List.map (fun c -> c.Q.op) p.Q.children

(* The tiling invariant: every inner node's children partition its
   interval, so summed child durations match the parent within [pct]. *)
let rec check_tiling ~pct path p =
  if p.Q.children <> [] then begin
    let child_sum = List.fold_left (fun acc c -> acc + c.Q.dur_ns) 0 p.Q.children in
    let slack = max 1_000 (p.Q.dur_ns * pct / 100) in
    if abs (p.Q.dur_ns - child_sum) > slack then
      Alcotest.failf "%s: children sum %d ns vs node %d ns (> %d%% apart)" path child_sum
        p.Q.dur_ns pct;
    List.iter (fun c -> check_tiling ~pct (path ^ ";" ^ c.Q.op) c) p.Q.children
  end

let check_rows_flow path p =
  List.iter
    (fun c ->
      if c.Q.rows_in < 0 || c.Q.rows_out < 0 then
        Alcotest.failf "%s;%s: negative row count" path c.Q.op)
    p.Q.children

(* --- one plan kind per test: scan, index eq, index range ---------------- *)

(* Every select profile has the full five-operator spine; absent phases
   appear as ~zero-duration nodes (sort "rowid_order", limit "none") so
   the leaves always tile the root. *)
let select_spine = [ "probe"; "fetch"; "filter"; "sort"; "limit" ]

let profiled_select t where =
  let rows, stats, profile = Q.select_profiled ~where t in
  check_tiling ~pct:5 profile.Q.op profile;
  check_rows_flow profile.Q.op profile;
  (rows, stats, profile)

let test_full_scan_profile () =
  let t = fixture () in
  (* tab is unindexed, so even a range shape cannot avoid the scan. *)
  let where = P.Cmp (P.Lt, "tab", Value.Int 2) in
  Alcotest.(check bool) "precondition: planner scans" true (Q.plan_for t where = Q.Full_scan);
  let rows, stats, profile = profiled_select t where in
  Alcotest.(check (list string)) "operator spine" select_spine (ops profile);
  let probe = List.nth profile.Q.children 0 in
  let filter = List.nth profile.Q.children 2 in
  Alcotest.(check string) "probe names the scan" "heap_scan" probe.Q.detail;
  Alcotest.(check int) "probe emits every row" stats.Q.rows_scanned probe.Q.rows_out;
  Alcotest.(check int) "filter emits the result" (List.length rows) filter.Q.rows_out

let test_index_eq_profile () =
  let t = fixture () in
  let where = P.Eq ("day", Value.Int 4) in
  Alcotest.(check bool) "precondition: planner probes the index" true
    (Q.plan_for t where = Q.Index_eq "by_day");
  let rows, stats, profile = profiled_select t where in
  Alcotest.(check (list string)) "operator spine" select_spine (ops profile);
  let probe = List.nth profile.Q.children 0 in
  Alcotest.(check string) "probe names the index" "index_eq(by_day)" probe.Q.detail;
  Alcotest.(check int) "probe narrows to the matching rowids" stats.Q.rows_scanned
    probe.Q.rows_out;
  Alcotest.(check int) "10 of 90 rows match day=4" 10 (List.length rows)

let test_index_range_profile () =
  let t = fixture () in
  let where = P.Between ("day", Value.Int 2, Value.Int 5) in
  Alcotest.(check bool) "precondition: planner walks the range" true
    (Q.plan_for t where = Q.Index_range "by_day");
  let _, _, profile =
    profiled_select t where |> fun (r, s, p) ->
    Alcotest.(check string) "probe names the range" "index_range(by_day)"
      (List.hd p.Q.children).Q.detail;
    (r, s, p)
  in
  ignore profile

let test_sort_limit_profile () =
  let t = fixture () in
  let rows, _, profile =
    Q.select_profiled
      ~where:(P.Cmp (P.Ge, "day", Value.Int 0))
      ~order_by:[ Q.Desc "day" ]
      ~limit:7 t
  in
  check_tiling ~pct:5 profile.Q.op profile;
  Alcotest.(check (list string)) "sort and limit on the spine" select_spine (ops profile);
  let limit = List.nth profile.Q.children 4 in
  Alcotest.(check int) "limit truncates" 7 limit.Q.rows_out;
  Alcotest.(check int) "result honors the limit node" 7 (List.length rows)

let test_count_group_profiles () =
  let t = fixture () in
  let n, _, cp = Q.count_profiled ~where:(P.Eq ("day", Value.Int 4)) t in
  check_tiling ~pct:5 cp.Q.op cp;
  Alcotest.(check (list string)) "count spine" [ "probe"; "fetch"; "filter" ] (ops cp);
  Alcotest.(check int) "count matches" 10 n;
  let groups, _, gp = Q.group_count_profiled ~by:"tab" t in
  check_tiling ~pct:5 gp.Q.op gp;
  Alcotest.(check (list string)) "group spine" [ "probe"; "fetch"; "aggregate"; "sort" ]
    (ops gp);
  Alcotest.(check int) "4 tab groups" 4 (List.length groups)

let test_join_profile () =
  let left = fixture () in
  let right = fixture () in
  let _, _, jp = Q.join_profiled ~on:[ ("day", "day") ] left right in
  check_tiling ~pct:5 jp.Q.op jp;
  let spine = ops jp in
  Alcotest.(check bool) "join spine starts with the left input" true
    (match spine with "left_input" :: _ -> true | _ -> false);
  Alcotest.(check bool) "join probes via index or hash" true
    (List.mem "probe" spine)

(* --- the SQL surface: analyze_query on all three plan kinds ------------- *)

let db_fixture () =
  let db = Database.create ~name:"profile_fixture" in
  populate (Database.create_table db (visits_schema ()));
  db

let analyze db sql expected_plan =
  let r = Sql.analyze_query db sql in
  Alcotest.(check bool)
    (Printf.sprintf "plan for %S" sql)
    true
    (r.Sql.a_plan = expected_plan);
  check_tiling ~pct:5 r.Sql.a_profile.Q.op r.Sql.a_profile;
  let rendered = Sql.render_analyze r in
  let has needle = Provkit_util.Strutil.contains_substring ~needle rendered in
  Alcotest.(check bool) "rendering shows the operator tree" true (has "probe");
  Alcotest.(check bool) "rendering shows percentages" true (has "%");
  let json = Sql.analyze_to_json r in
  Alcotest.(check bool) "json carries the profile" true
    (Provkit_util.Strutil.contains_substring ~needle:"\"profile\"" json)

let test_analyze_all_plan_kinds () =
  let db = db_fixture () in
  analyze db "SELECT * FROM visits WHERE tab = 2" Q.Full_scan;
  analyze db "SELECT * FROM visits WHERE day = 4" (Q.Index_eq "by_day");
  analyze db "SELECT * FROM visits WHERE day BETWEEN 2 AND 5 ORDER BY day DESC LIMIT 5"
    (Q.Index_range "by_day")

let test_profile_render_and_fold () =
  let t = fixture () in
  let _, _, profile = Q.select_profiled ~where:(P.Eq ("day", Value.Int 4)) t in
  let folded = Q.fold_profile profile in
  Alcotest.(check bool) "fold is pre-order from the root" true
    (match folded with (root, _) :: _ -> root = profile.Q.op | [] -> false);
  Alcotest.(check bool) "fold reaches the probe" true
    (List.exists (fun (path, _) -> path = profile.Q.op ^ ";probe") folded);
  List.iter
    (fun (path, self) ->
      if self < 0 then Alcotest.failf "%s: negative self time %d" path self)
    folded;
  let json = Q.profile_to_json profile in
  Alcotest.(check bool) "json nests children" true
    (Provkit_util.Strutil.contains_substring ~needle:"\"children\":[" json)

let suite =
  [
    Alcotest.test_case "full scan profile" `Quick test_full_scan_profile;
    Alcotest.test_case "index eq profile" `Quick test_index_eq_profile;
    Alcotest.test_case "index range profile" `Quick test_index_range_profile;
    Alcotest.test_case "sort + limit profile" `Quick test_sort_limit_profile;
    Alcotest.test_case "count + group profiles" `Quick test_count_group_profiles;
    Alcotest.test_case "join profile" `Quick test_join_profile;
    Alcotest.test_case "analyze across plan kinds" `Quick test_analyze_all_plan_kinds;
    Alcotest.test_case "profile render + fold" `Quick test_profile_render_and_fold;
  ]
