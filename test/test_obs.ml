(* The observability registry: histogram quantile error bounds across
   distribution shapes, counter monotonicity/saturation, the global off
   switch, snapshot determinism, and the trace ring's bounded-memory
   contract. *)

module M = Provkit_obs.Metrics
module T = Provkit_obs.Trace
module Names = Provkit_obs.Names

(* Metric names used only by this suite; the @obs-check lint covers
   lib/ and bin/, so test-local names need not be in [Names.all]. *)
let h_name = "test.obs.latency"

let with_enabled f =
  let was = M.enabled () in
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled was) f

(* --- quantile error bounds ------------------------------------------- *)

(* The documented contract: [quantile h q] returns the inclusive upper
   bound of the bucket holding the rank-ceil(q*n) order statistic, so
   for true order statistic [x]:  x <= estimate <= x * (1 + 1/16) + 1. *)
let check_quantile_brackets name samples =
  with_enabled @@ fun () ->
  M.reset ();
  let h = M.histogram h_name in
  Array.iter (M.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  (* observe clamps negatives to zero; mirror that in the oracle *)
  let sorted = Array.map (fun v -> max 0 v) sorted in
  let n = Array.length sorted in
  List.iter
    (fun q ->
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let true_q = sorted.(min (n - 1) (rank - 1)) in
      let est = M.quantile h q in
      let lo = float_of_int true_q in
      let hi = (lo *. (1.0 +. (1.0 /. 16.0))) +. 1.0 in
      if not (est >= lo && est <= hi) then
        Alcotest.failf "%s: q=%.2f estimate %.1f outside [%.1f, %.1f] (n=%d)" name q
          est lo hi n)
    [ 0.5; 0.9; 0.95; 0.99; 1.0 ]

let test_quantiles_constant () =
  check_quantile_brackets "constant" (Array.make 500 1_000);
  check_quantile_brackets "constant-zero" (Array.make 100 0);
  check_quantile_brackets "constant-one" (Array.make 100 1)

let test_quantiles_bimodal () =
  let rng = Test_seed.prng ~salt:71 in
  let samples =
    Array.init 2_000 (fun _ ->
        if Provkit_util.Prng.bool rng then 800 + Provkit_util.Prng.int rng 100
        else 1_000_000 + Provkit_util.Prng.int rng 50_000)
  in
  check_quantile_brackets "bimodal" samples

let test_quantiles_zipf () =
  let rng = Test_seed.prng ~salt:72 in
  let z = Provkit_util.Zipf.create ~n:10_000 ~s:1.1 in
  let samples =
    Array.init 3_000 (fun _ -> 100 * Provkit_util.Zipf.sample z rng)
  in
  check_quantile_brackets "zipf" samples

let test_bucket_roundtrip () =
  let rng = Test_seed.prng ~salt:73 in
  for _ = 1 to 10_000 do
    let v =
      let magnitude = Provkit_util.Prng.int rng 40 in
      Provkit_util.Prng.int rng (max 2 (1 lsl (min 60 magnitude)))
    in
    let lo, hi = M.bucket_bounds (M.bucket_of_value v) in
    if not (lo <= v && v <= hi) then
      Alcotest.failf "value %d outside its bucket bounds [%d, %d]" v lo hi;
    (* log-linear width bound: buckets past the linear region are never
       wider than lo/16 + 1 *)
    if lo >= 16 && hi - lo > (lo / 16) + 1 then
      Alcotest.failf "bucket [%d, %d] wider than the 1/16 contract" lo hi
  done

(* --- counters --------------------------------------------------------- *)

let test_counter_saturation () =
  with_enabled @@ fun () ->
  M.reset ();
  let c = M.counter "test.obs.saturating" in
  M.add c max_int;
  Alcotest.(check int) "reaches max_int" max_int (M.value c);
  M.add c max_int;
  Alcotest.(check int) "saturates instead of wrapping" max_int (M.value c);
  M.incr c;
  Alcotest.(check int) "incr at ceiling stays put" max_int (M.value c)

let test_counter_monotonic () =
  with_enabled @@ fun () ->
  M.reset ();
  let c = M.counter "test.obs.monotonic" in
  M.add c 5;
  M.add c (-3);
  M.add c 0;
  Alcotest.(check int) "non-positive deltas ignored" 5 (M.value c)

let test_off_switch () =
  let was = M.enabled () in
  Fun.protect ~finally:(fun () -> M.set_enabled was) @@ fun () ->
  M.set_enabled true;
  M.reset ();
  let c = M.counter "test.obs.switch" in
  let h = M.histogram "test.obs.switch.hist" in
  M.set_enabled false;
  M.incr c;
  M.add c 10;
  M.observe h 42;
  T.record "test.span" ~start_ns:0L ~dur_ns:1L;
  let spans_before = M.counter_value Names.trace_spans in
  M.set_enabled true;
  Alcotest.(check int) "counter untouched while off" 0 (M.value c);
  Alcotest.(check int) "histogram untouched while off" 0 (M.hist_count h);
  M.set_enabled false;
  T.record "test.span" ~start_ns:0L ~dur_ns:1L;
  M.set_enabled true;
  Alcotest.(check int) "tracer obeys the switch" spans_before
    (M.counter_value Names.trace_spans)

(* --- snapshots --------------------------------------------------------- *)

let seeded_workload salt =
  let rng = Test_seed.prng ~salt in
  let c = M.counter "test.obs.snap.counter" in
  let g = M.gauge "test.obs.snap.gauge" in
  let h = M.histogram "test.obs.snap.hist" in
  for _ = 1 to 500 do
    M.add c (Provkit_util.Prng.int rng 10);
    M.observe h (Provkit_util.Prng.int rng 1_000_000)
  done;
  M.set_gauge g (Provkit_util.Prng.float rng 100.0)

let filter_test snap =
  let mine (name, _) = String.length name >= 4 && String.sub name 0 4 = "test" in
  ( List.filter mine snap.M.snap_counters,
    List.filter mine snap.M.snap_gauges,
    List.filter mine snap.M.snap_histograms )

let test_snapshot_determinism () =
  with_enabled @@ fun () ->
  M.reset ();
  seeded_workload 74;
  let first = filter_test (M.snapshot ()) in
  Alcotest.(check bool) "snapshot is pure" true (first = filter_test (M.snapshot ()));
  M.reset ();
  seeded_workload 74;
  let second = filter_test (M.snapshot ()) in
  Alcotest.(check bool) "same seeded workload, same snapshot" true (first = second)

let test_snapshot_sorted_and_json () =
  with_enabled @@ fun () ->
  M.reset ();
  seeded_workload 75;
  let snap = M.snapshot () in
  let sorted l = List.sort compare l = l in
  Alcotest.(check bool) "counters sorted" true (sorted (List.map fst snap.M.snap_counters));
  Alcotest.(check bool) "histograms sorted" true
    (sorted (List.map fst snap.M.snap_histograms));
  let json = M.to_json snap in
  Alcotest.(check bool) "json names its sections" true
    (let has needle =
       let n = String.length needle in
       let rec go i =
         i + n <= String.length json && (String.sub json i n = needle || go (i + 1))
       in
       go 0
     in
     has "\"counters\"" && has "\"gauges\"" && has "\"histograms\"")

let test_reset_keeps_handles () =
  with_enabled @@ fun () ->
  M.reset ();
  let c = M.counter "test.obs.reset" in
  M.add c 9;
  M.reset ();
  Alcotest.(check int) "zeroed in place" 0 (M.value c);
  M.incr c;
  Alcotest.(check int) "handle still live after reset" 1 (M.value c)

(* --- names registry ---------------------------------------------------- *)

let test_names_registered () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is registered") true (Names.registered n);
      (* the lint keys on this shape: a "prov." prefix and >= 2 dots *)
      let dots = String.fold_left (fun acc ch -> if ch = '.' then acc + 1 else acc) 0 n in
      Alcotest.(check bool) (n ^ " has lintable shape") true
        (String.length n > 5 && String.sub n 0 5 = "prov." && dots >= 2))
    Names.all;
  Alcotest.(check bool) "unknown name rejected" false (Names.registered "prov.not.a.metric")

(* --- trace ring --------------------------------------------------------- *)

let test_trace_ring () =
  with_enabled @@ fun () ->
  M.reset ();
  T.clear ();
  let original = T.capacity () in
  Fun.protect ~finally:(fun () ->
      T.set_capacity original;
      T.clear ())
  @@ fun () ->
  T.set_capacity 8;
  for i = 1 to 20 do
    T.record "test.span"
      ~attrs:[ ("i", string_of_int i) ]
      ~start_ns:(Int64.of_int i) ~dur_ns:1L
  done;
  let spans = T.recent () in
  Alcotest.(check int) "ring keeps only the newest capacity spans" 8 (List.length spans);
  Alcotest.(check bool) "oldest-first order" true
    (let starts = List.map (fun s -> s.T.start_ns) spans in
     List.sort compare starts = starts);
  Alcotest.(check string) "newest span survives" "20"
    (match List.rev spans with s :: _ -> List.assoc "i" s.T.attrs | [] -> "");
  Alcotest.(check int) "drops counted" 12 (M.counter_value Names.trace_dropped);
  Alcotest.(check int) "recorded counts every span" 20 (M.counter_value Names.trace_spans)

let test_trace_sink_and_json () =
  with_enabled @@ fun () ->
  T.clear ();
  let seen = ref [] in
  T.set_sink (Some (fun s -> seen := s :: !seen));
  Fun.protect ~finally:(fun () -> T.set_sink None) @@ fun () ->
  T.with_span "test.sink" ~attrs:[ ("k", "v\"quoted\"") ] (fun () -> ()) |> ignore;
  Alcotest.(check int) "sink saw the span" 1 (List.length !seen);
  let json = T.span_to_json (List.hd !seen) in
  Alcotest.(check bool) "json escapes attribute values" true
    (let has needle =
       let n = String.length needle in
       let rec go i =
         i + n <= String.length json && (String.sub json i n = needle || go (i + 1))
       in
       go 0
     in
     has "\\\"quoted\\\"" && has "\"name\":\"test.sink\"")

let suite =
  [
    Alcotest.test_case "quantiles: constant" `Quick test_quantiles_constant;
    Alcotest.test_case "quantiles: bimodal" `Quick test_quantiles_bimodal;
    Alcotest.test_case "quantiles: zipf" `Quick test_quantiles_zipf;
    Alcotest.test_case "bucket bounds roundtrip" `Quick test_bucket_roundtrip;
    Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
    Alcotest.test_case "global off switch" `Quick test_off_switch;
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "snapshot order + json" `Quick test_snapshot_sorted_and_json;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
    Alcotest.test_case "names registry" `Quick test_names_registered;
    Alcotest.test_case "trace ring bounds" `Quick test_trace_ring;
    Alcotest.test_case "trace sink + json" `Quick test_trace_sink_and_json;
  ]
