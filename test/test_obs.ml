(* The observability registry: histogram quantile error bounds across
   distribution shapes, counter monotonicity/saturation, the global off
   switch, snapshot determinism, and the trace ring's bounded-memory
   contract. *)

module M = Provkit_obs.Metrics
module T = Provkit_obs.Trace
module Names = Provkit_obs.Names

(* Metric names used only by this suite; the @obs-check lint covers
   lib/ and bin/, so test-local names need not be in [Names.all]. *)
let h_name = "test.obs.latency"

let with_enabled f =
  let was = M.enabled () in
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled was) f

(* --- quantile error bounds ------------------------------------------- *)

(* The documented contract: [quantile h q] returns the inclusive upper
   bound of the bucket holding the rank-ceil(q*n) order statistic, so
   for true order statistic [x]:  x <= estimate <= x * (1 + 1/16) + 1. *)
let check_quantile_brackets name samples =
  with_enabled @@ fun () ->
  M.reset ();
  let h = M.histogram h_name in
  Array.iter (M.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  (* observe clamps negatives to zero; mirror that in the oracle *)
  let sorted = Array.map (fun v -> max 0 v) sorted in
  let n = Array.length sorted in
  List.iter
    (fun q ->
      let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
      let true_q = sorted.(min (n - 1) (rank - 1)) in
      let est = M.quantile h q in
      let lo = float_of_int true_q in
      let hi = (lo *. (1.0 +. (1.0 /. 16.0))) +. 1.0 in
      if not (est >= lo && est <= hi) then
        Alcotest.failf "%s: q=%.2f estimate %.1f outside [%.1f, %.1f] (n=%d)" name q
          est lo hi n)
    [ 0.5; 0.9; 0.95; 0.99; 1.0 ]

let test_quantiles_constant () =
  check_quantile_brackets "constant" (Array.make 500 1_000);
  check_quantile_brackets "constant-zero" (Array.make 100 0);
  check_quantile_brackets "constant-one" (Array.make 100 1)

let test_quantiles_bimodal () =
  let rng = Test_seed.prng ~salt:71 in
  let samples =
    Array.init 2_000 (fun _ ->
        if Provkit_util.Prng.bool rng then 800 + Provkit_util.Prng.int rng 100
        else 1_000_000 + Provkit_util.Prng.int rng 50_000)
  in
  check_quantile_brackets "bimodal" samples

let test_quantiles_zipf () =
  let rng = Test_seed.prng ~salt:72 in
  let z = Provkit_util.Zipf.create ~n:10_000 ~s:1.1 in
  let samples =
    Array.init 3_000 (fun _ -> 100 * Provkit_util.Zipf.sample z rng)
  in
  check_quantile_brackets "zipf" samples

let test_bucket_roundtrip () =
  let rng = Test_seed.prng ~salt:73 in
  for _ = 1 to 10_000 do
    let v =
      let magnitude = Provkit_util.Prng.int rng 40 in
      Provkit_util.Prng.int rng (max 2 (1 lsl (min 60 magnitude)))
    in
    let lo, hi = M.bucket_bounds (M.bucket_of_value v) in
    if not (lo <= v && v <= hi) then
      Alcotest.failf "value %d outside its bucket bounds [%d, %d]" v lo hi;
    (* log-linear width bound: buckets past the linear region are never
       wider than lo/16 + 1 *)
    if lo >= 16 && hi - lo > (lo / 16) + 1 then
      Alcotest.failf "bucket [%d, %d] wider than the 1/16 contract" lo hi
  done

(* --- counters --------------------------------------------------------- *)

let test_counter_saturation () =
  with_enabled @@ fun () ->
  M.reset ();
  let c = M.counter "test.obs.saturating" in
  M.add c max_int;
  Alcotest.(check int) "reaches max_int" max_int (M.value c);
  M.add c max_int;
  Alcotest.(check int) "saturates instead of wrapping" max_int (M.value c);
  M.incr c;
  Alcotest.(check int) "incr at ceiling stays put" max_int (M.value c)

let test_counter_monotonic () =
  with_enabled @@ fun () ->
  M.reset ();
  let c = M.counter "test.obs.monotonic" in
  M.add c 5;
  M.add c (-3);
  M.add c 0;
  Alcotest.(check int) "non-positive deltas ignored" 5 (M.value c)

let test_off_switch () =
  let was = M.enabled () in
  Fun.protect ~finally:(fun () -> M.set_enabled was) @@ fun () ->
  M.set_enabled true;
  M.reset ();
  let c = M.counter "test.obs.switch" in
  let h = M.histogram "test.obs.switch.hist" in
  M.set_enabled false;
  M.incr c;
  M.add c 10;
  M.observe h 42;
  T.record "test.span" ~start_ns:0L ~dur_ns:1L;
  let spans_before = M.counter_value Names.trace_spans in
  M.set_enabled true;
  Alcotest.(check int) "counter untouched while off" 0 (M.value c);
  Alcotest.(check int) "histogram untouched while off" 0 (M.hist_count h);
  M.set_enabled false;
  T.record "test.span" ~start_ns:0L ~dur_ns:1L;
  M.set_enabled true;
  Alcotest.(check int) "tracer obeys the switch" spans_before
    (M.counter_value Names.trace_spans)

(* --- snapshots --------------------------------------------------------- *)

let seeded_workload salt =
  let rng = Test_seed.prng ~salt in
  let c = M.counter "test.obs.snap.counter" in
  let g = M.gauge "test.obs.snap.gauge" in
  let h = M.histogram "test.obs.snap.hist" in
  for _ = 1 to 500 do
    M.add c (Provkit_util.Prng.int rng 10);
    M.observe h (Provkit_util.Prng.int rng 1_000_000)
  done;
  M.set_gauge g (Provkit_util.Prng.float rng 100.0)

let filter_test snap =
  let mine (name, _) = String.length name >= 4 && String.sub name 0 4 = "test" in
  ( List.filter mine snap.M.snap_counters,
    List.filter mine snap.M.snap_gauges,
    List.filter mine snap.M.snap_histograms )

let test_snapshot_determinism () =
  with_enabled @@ fun () ->
  M.reset ();
  seeded_workload 74;
  let first = filter_test (M.snapshot ()) in
  Alcotest.(check bool) "snapshot is pure" true (first = filter_test (M.snapshot ()));
  M.reset ();
  seeded_workload 74;
  let second = filter_test (M.snapshot ()) in
  Alcotest.(check bool) "same seeded workload, same snapshot" true (first = second)

let test_snapshot_sorted_and_json () =
  with_enabled @@ fun () ->
  M.reset ();
  seeded_workload 75;
  let snap = M.snapshot () in
  let sorted l = List.sort compare l = l in
  Alcotest.(check bool) "counters sorted" true (sorted (List.map fst snap.M.snap_counters));
  Alcotest.(check bool) "histograms sorted" true
    (sorted (List.map fst snap.M.snap_histograms));
  let json = M.to_json snap in
  Alcotest.(check bool) "json names its sections" true
    (let has needle =
       let n = String.length needle in
       let rec go i =
         i + n <= String.length json && (String.sub json i n = needle || go (i + 1))
       in
       go 0
     in
     has "\"counters\"" && has "\"gauges\"" && has "\"histograms\"")

let test_reset_keeps_handles () =
  with_enabled @@ fun () ->
  M.reset ();
  let c = M.counter "test.obs.reset" in
  M.add c 9;
  M.reset ();
  Alcotest.(check int) "zeroed in place" 0 (M.value c);
  M.incr c;
  Alcotest.(check int) "handle still live after reset" 1 (M.value c)

(* --- names registry ---------------------------------------------------- *)

let test_names_registered () =
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " is registered") true (Names.registered n);
      (* the lint keys on this shape: a "prov." prefix and >= 2 dots *)
      let dots = String.fold_left (fun acc ch -> if ch = '.' then acc + 1 else acc) 0 n in
      Alcotest.(check bool) (n ^ " has lintable shape") true
        (String.length n > 5 && String.sub n 0 5 = "prov." && dots >= 2))
    Names.all;
  Alcotest.(check bool) "unknown name rejected" false (Names.registered "prov.not.a.metric")

(* --- trace ring --------------------------------------------------------- *)

let test_trace_ring () =
  with_enabled @@ fun () ->
  M.reset ();
  T.clear ();
  let original = T.capacity () in
  Fun.protect ~finally:(fun () ->
      T.set_capacity original;
      T.clear ())
  @@ fun () ->
  T.set_capacity 8;
  for i = 1 to 20 do
    T.record "test.span"
      ~attrs:[ ("i", string_of_int i) ]
      ~start_ns:(Int64.of_int i) ~dur_ns:1L
  done;
  let spans = T.recent () in
  Alcotest.(check int) "ring keeps only the newest capacity spans" 8 (List.length spans);
  Alcotest.(check bool) "oldest-first order" true
    (let starts = List.map (fun s -> s.T.start_ns) spans in
     List.sort compare starts = starts);
  Alcotest.(check string) "newest span survives" "20"
    (match List.rev spans with s :: _ -> List.assoc "i" s.T.attrs | [] -> "");
  Alcotest.(check int) "drops counted" 12 (M.counter_value Names.trace_dropped);
  Alcotest.(check int) "recorded counts every span" 20 (M.counter_value Names.trace_spans)

let test_trace_sink_and_json () =
  with_enabled @@ fun () ->
  T.clear ();
  let seen = ref [] in
  T.set_sink (Some (fun s -> seen := s :: !seen));
  Fun.protect ~finally:(fun () -> T.set_sink None) @@ fun () ->
  T.with_span "test.sink" ~attrs:[ ("k", "v\"quoted\"") ] (fun () -> ()) |> ignore;
  Alcotest.(check int) "sink saw the span" 1 (List.length !seen);
  let json = T.span_to_json (List.hd !seen) in
  Alcotest.(check bool) "json escapes attribute values" true
    (let has needle =
       let n = String.length needle in
       let rec go i =
         i + n <= String.length json && (String.sub json i n = needle || go (i + 1))
       in
       go 0
     in
     has "\\\"quoted\\\"" && has "\"name\":\"test.sink\"")

(* --- trace trees -------------------------------------------------------- *)

(* One fixed nested workload: with_span a > with_span b > record c. *)
let nested_workload () =
  T.with_span "test.tree.a" ~attrs:[ ("k", "a") ] (fun () ->
      T.with_span "test.tree.b" (fun () ->
          T.record "test.tree.c" ~start_ns:1L ~dur_ns:1L))

let test_trace_tree_links () =
  with_enabled @@ fun () ->
  T.clear ();
  T.seed_ids 99;
  nested_workload ();
  match T.recent () with
  | [ c; b; a ] ->
    (* children close (and therefore record) before their parents *)
    Alcotest.(check string) "inner-first order" "test.tree.c" c.T.name;
    Alcotest.(check string) "root last" "test.tree.a" a.T.name;
    Alcotest.(check bool) "one trace id" true
      (a.T.trace_id = b.T.trace_id && b.T.trace_id = c.T.trace_id);
    Alcotest.(check bool) "span ids unique and non-zero" true
      (a.T.span_id <> 0L && b.T.span_id <> 0L && c.T.span_id <> 0L
      && a.T.span_id <> b.T.span_id && b.T.span_id <> c.T.span_id
      && a.T.span_id <> c.T.span_id);
    Alcotest.(check bool) "root has no parent" true (a.T.parent_id = None);
    Alcotest.(check bool) "b under a" true (b.T.parent_id = Some a.T.span_id);
    Alcotest.(check bool) "c under b" true (c.T.parent_id = Some b.T.span_id)
  | spans -> Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_trace_assemble () =
  with_enabled @@ fun () ->
  T.clear ();
  T.seed_ids 100;
  nested_workload ();
  let spans = T.recent () in
  Alcotest.(check (list string)) "enclosure invariant holds" []
    (T.enclosure_violations spans);
  match T.assemble spans with
  | [ { T.node = a; children = [ { T.node = b; children = [ { T.node = c; _ } ] } ] } ] ->
    Alcotest.(check string) "root" "test.tree.a" a.T.name;
    Alcotest.(check string) "child" "test.tree.b" b.T.name;
    Alcotest.(check string) "leaf" "test.tree.c" c.T.name;
    let rendered = T.render_trees (T.assemble spans) in
    Alcotest.(check bool) "render indents the leaf" true
      (Provkit_util.Strutil.contains_substring ~needle:"    test.tree.c" rendered)
  | trees -> Alcotest.failf "expected one 3-level tree, got %d roots" (List.length trees)

let test_trace_seeded_determinism () =
  with_enabled @@ fun () ->
  let run () =
    T.clear ();
    T.seed_ids 7;
    nested_workload ();
    List.map (fun s -> (s.T.trace_id, s.T.span_id, s.T.parent_id)) (T.recent ())
  in
  Alcotest.(check bool) "same seed, same ids" true (run () = run ())

let test_trace_record_clamped () =
  with_enabled @@ fun () ->
  T.clear ();
  let frame_start = ref 0L in
  T.with_span "test.tree.outer" (fun () ->
      (match T.open_spans () with
      | f :: _ -> frame_start := f.T.o_start_ns
      | [] -> Alcotest.fail "no open frame inside with_span");
      (* a start before the enclosing frame would break enclosure *)
      T.record "test.tree.early" ~start_ns:0L ~dur_ns:1L);
  let early = List.find (fun s -> s.T.name = "test.tree.early") (T.recent ()) in
  Alcotest.(check bool) "start clamped to the frame start" true
    (early.T.start_ns >= !frame_start)

(* Hand-built spans give exact durations, so folded self-times are exact:
   a [0,100) with child b [10,40) with child c [12,17). *)
let test_trace_folded () =
  let mk name span_id parent_id start_ns dur_ns =
    {
      T.name;
      attrs = [];
      start_ns;
      dur_ns;
      trace_id = 1L;
      span_id;
      parent_id;
    }
  in
  let spans =
    [
      mk "a" 10L None 0L 100L;
      mk "b" 11L (Some 10L) 10L 30L;
      mk "c" 12L (Some 11L) 12L 5L;
    ]
  in
  Alcotest.(check (list (pair string int64)))
    "self times tile the root"
    [ ("a", 70L); ("a;b", 25L); ("a;b;c", 5L) ]
    (T.folded spans)

let test_trace_jsonl_versions () =
  with_enabled @@ fun () ->
  T.clear ();
  T.seed_ids 13;
  nested_workload ();
  (* v2 roundtrip: every field survives *)
  List.iter
    (fun s ->
      let line = T.span_to_json s in
      Alcotest.(check bool) "line carries the v2 marker" true
        (Provkit_util.Strutil.contains_substring ~needle:"\"v\":2" line);
      match T.span_of_json line with
      | None -> Alcotest.failf "v2 line failed to parse: %s" line
      | Some s' ->
        Alcotest.(check string) "name" s.T.name s'.T.name;
        Alcotest.(check bool) "ids roundtrip" true
          (s.T.trace_id = s'.T.trace_id && s.T.span_id = s'.T.span_id
          && s.T.parent_id = s'.T.parent_id);
        Alcotest.(check bool) "times roundtrip" true
          (s.T.start_ns = s'.T.start_ns && s.T.dur_ns = s'.T.dur_ns))
    (T.recent ());
  (* v1 lines (pre-tree format) must keep parsing *)
  let v1 =
    {|{"name":"wal.compact","start_ns":123,"dur_ns":456,"attrs":{"dir":"wal.d"}}|}
  in
  (match T.span_of_json v1 with
  | None -> Alcotest.fail "v1 line no longer parses"
  | Some s ->
    Alcotest.(check string) "v1 name" "wal.compact" s.T.name;
    Alcotest.(check bool) "v1 times" true (s.T.start_ns = 123L && s.T.dur_ns = 456L);
    Alcotest.(check bool) "v1 ids default" true
      (s.T.trace_id = 0L && s.T.span_id = 0L && s.T.parent_id = None);
    Alcotest.(check string) "v1 attrs survive" "wal.d" (List.assoc "dir" s.T.attrs));
  Alcotest.(check bool) "garbage rejected" true (T.span_of_json "not json" = None)

(* --- flight recorder ---------------------------------------------------- *)

module F = Provkit_obs.Flight

let test_flight_ring_bounds () =
  F.clear ();
  let before = F.recorded () in
  for i = 1 to 20 do
    F.record "test.flight.flood" ~attrs:[ ("i", string_of_int i) ]
  done;
  Alcotest.(check int) "recorded counts past the ring" 20 (F.recorded () - before);
  let kept = F.incidents () in
  Alcotest.(check int) "ring keeps 16" 16 (List.length kept);
  Alcotest.(check bool) "oldest first" true
    (let seqs = List.map (fun i -> i.F.seq) kept in
     List.sort compare seqs = seqs);
  Alcotest.(check string) "newest survives" "20"
    (match F.latest () with Some i -> List.assoc "i" i.F.attrs | None -> "");
  F.clear ();
  Alcotest.(check int) "clear drops kept incidents" 0 (List.length (F.incidents ()));
  Alcotest.(check int) "recorded keeps counting" 20 (F.recorded () - before)

(* The acceptance-path postmortem: a fault fires inside an open span and
   the incident captures the failing span's ancestry plus metrics. *)
let test_flight_fault_postmortem () =
  with_enabled @@ fun () ->
  F.clear ();
  T.clear ();
  F.install_fault_hook ();
  Fun.protect ~finally:F.uninstall_fault_hook @@ fun () ->
  F.set_context [ ("test_ctx", "stale"); ("suite", "obs") ];
  F.set_context [ ("test_ctx", "fresh") ];
  let before = F.recorded () in
  T.with_span "test.flight.outer" (fun () ->
      let buf = Buffer.create 64 in
      let sink =
        Provkit_util.Faulty_io.to_buffer ~faults:[ Provkit_util.Faulty_io.Torn_final_write 1 ] buf
      in
      Provkit_util.Faulty_io.write sink "doomed bytes";
      Provkit_util.Faulty_io.close sink);
  Alcotest.(check int) "one incident per armed fault" 1 (F.recorded () - before);
  match F.latest () with
  | None -> Alcotest.fail "no incident captured"
  | Some i ->
    Alcotest.(check string) "reason" "io.fault.injected" i.F.reason;
    Alcotest.(check string) "fault spec attr" "tear@1" (List.assoc "fault" i.F.attrs);
    Alcotest.(check bool) "ancestry holds the open span" true
      (List.exists (fun o -> o.T.o_name = "test.flight.outer") i.F.ancestry);
    Alcotest.(check string) "later context wins" "fresh" (List.assoc "test_ctx" i.F.context);
    Alcotest.(check string) "merged context kept" "obs" (List.assoc "suite" i.F.context);
    let json = F.to_json i in
    let has needle = Provkit_util.Strutil.contains_substring ~needle json in
    Alcotest.(check bool) "json is a postmortem" true (has "\"postmortem\":1");
    Alcotest.(check bool) "json names the open span" true (has "test.flight.outer");
    Alcotest.(check bool) "json embeds metrics" true (has "\"metrics\"")

let suite =
  [
    Alcotest.test_case "quantiles: constant" `Quick test_quantiles_constant;
    Alcotest.test_case "quantiles: bimodal" `Quick test_quantiles_bimodal;
    Alcotest.test_case "quantiles: zipf" `Quick test_quantiles_zipf;
    Alcotest.test_case "bucket bounds roundtrip" `Quick test_bucket_roundtrip;
    Alcotest.test_case "counter saturation" `Quick test_counter_saturation;
    Alcotest.test_case "counter monotonicity" `Quick test_counter_monotonic;
    Alcotest.test_case "global off switch" `Quick test_off_switch;
    Alcotest.test_case "snapshot determinism" `Quick test_snapshot_determinism;
    Alcotest.test_case "snapshot order + json" `Quick test_snapshot_sorted_and_json;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
    Alcotest.test_case "names registry" `Quick test_names_registered;
    Alcotest.test_case "trace ring bounds" `Quick test_trace_ring;
    Alcotest.test_case "trace sink + json" `Quick test_trace_sink_and_json;
    Alcotest.test_case "trace tree links" `Quick test_trace_tree_links;
    Alcotest.test_case "trace assemble + render" `Quick test_trace_assemble;
    Alcotest.test_case "trace seeded ids" `Quick test_trace_seeded_determinism;
    Alcotest.test_case "trace record clamping" `Quick test_trace_record_clamped;
    Alcotest.test_case "trace folded stacks" `Quick test_trace_folded;
    Alcotest.test_case "trace jsonl v1/v2" `Quick test_trace_jsonl_versions;
    Alcotest.test_case "flight ring bounds" `Quick test_flight_ring_bounds;
    Alcotest.test_case "flight fault postmortem" `Quick test_flight_fault_postmortem;
  ]
