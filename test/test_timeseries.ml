(* Telemetry ring tests.  Metrics live in process-global registries
   shared with every other suite, so each assertion here works on
   deltas between two points taken inside the test (never on absolute
   counter values), and every global knob touched is restored. *)

module Metrics = Provkit_obs.Metrics
module Ts = Provkit_obs.Timeseries

let with_metrics_enabled f =
  let saved = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) f

let find_series name series =
  List.find_opt (fun (s : Ts.series) -> String.equal s.Ts.s_name name) series

let feq = Alcotest.float 1e-9

let test_deltas_and_rates () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create ~capacity:8 () in
  let c = Metrics.counter "test.timeseries.alpha" in
  let g = Metrics.gauge "test.timeseries.beta" in
  let h = Metrics.histogram "test.timeseries.gamma" in
  Metrics.incr c;
  Metrics.set_gauge g 10.0;
  let p0 = Ts.record ~now_ns:1_000_000_000L ring in
  Metrics.add c 5;
  Metrics.set_gauge g 4.0;
  Metrics.observe h 123;
  Metrics.observe h 456;
  let p1 = Ts.record ~now_ns:3_000_000_000L ring in
  let series = Ts.deltas_between p0 p1 in
  (match find_series "test.timeseries.alpha" series with
  | None -> Alcotest.fail "counter series missing"
  | Some s ->
      Alcotest.check feq "counter delta" 5.0 s.Ts.s_delta;
      (* 5 increments over exactly 2 s of synthetic time. *)
      Alcotest.check feq "counter rate" 2.5 s.Ts.s_rate);
  (match find_series "test.timeseries.beta" series with
  | None -> Alcotest.fail "gauge series missing"
  | Some s ->
      Alcotest.check feq "gauge prev" 10.0 s.Ts.s_prev;
      Alcotest.check feq "gauge cur" 4.0 s.Ts.s_cur;
      (* Gauges are levels, not monotone counters: deltas may go negative. *)
      Alcotest.check feq "gauge delta" (-6.0) s.Ts.s_delta);
  match find_series "test.timeseries.gamma" series with
  | None -> Alcotest.fail "histogram series missing"
  | Some s ->
      Alcotest.check feq "histogram count delta" 2.0 s.Ts.s_delta;
      Alcotest.check feq "histogram count rate" 1.0 s.Ts.s_rate

let test_counter_reset_clamps () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create () in
  let c = Metrics.counter "test.timeseries.clamp" in
  Metrics.add c 100;
  let p0 = Ts.record ~now_ns:1_000_000_000L ring in
  Metrics.reset ();
  Metrics.incr (Metrics.counter "test.timeseries.clamp");
  let p1 = Ts.record ~now_ns:2_000_000_000L ring in
  match find_series "test.timeseries.clamp" (Ts.deltas_between p0 p1) with
  | None -> Alcotest.fail "series missing"
  | Some s ->
      Alcotest.check feq "reset clamps to 0" 0.0 s.Ts.s_delta;
      Alcotest.check feq "rate clamps too" 0.0 s.Ts.s_rate

let test_capacity_eviction () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create ~capacity:3 () in
  for i = 1 to 5 do
    ignore (Ts.record ~now_ns:(Int64.of_int (i * 1_000_000)) ring)
  done;
  Alcotest.check Alcotest.int "bounded" 3 (Ts.length ring);
  let stamps = List.map (fun (p : Ts.point) -> p.Ts.pt_ns) (Ts.points ring) in
  Alcotest.(check (list int64)) "oldest evicted, order kept"
    [ 3_000_000L; 4_000_000L; 5_000_000L ]
    stamps;
  Ts.clear ring;
  Alcotest.check Alcotest.int "cleared" 0 (Ts.length ring);
  match Ts.last_deltas ring with
  | None -> ()
  | Some _ -> Alcotest.fail "last_deltas on an empty ring"

let test_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Timeseries.create: capacity must be positive") (fun () ->
      ignore (Ts.create ~capacity:0 ()))

let test_pulse_interval () =
  with_metrics_enabled @@ fun () ->
  let saved = Ts.pulse_interval () in
  Fun.protect ~finally:(fun () -> Ts.set_pulse_interval saved) @@ fun () ->
  Ts.set_pulse_interval 5;
  let before = Ts.length Ts.default in
  let pulses_before = Ts.pulses () in
  for _ = 1 to 12 do
    Ts.pulse ()
  done;
  Alcotest.check Alcotest.int "pulses counted" (pulses_before + 12) (Ts.pulses ());
  let recorded = Ts.length Ts.default - before in
  (* 12 pulses at interval 5 cross the boundary 2 or 3 times depending on
     the global counter's residue coming into the test. *)
  if recorded < 2 || recorded > 3 then
    Alcotest.failf "expected 2-3 recorded points, got %d" recorded

let test_pulse_disabled_is_silent () =
  let saved = Metrics.enabled () in
  Metrics.set_enabled false;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) @@ fun () ->
  let before = Ts.length Ts.default in
  let pulses_before = Ts.pulses () in
  for _ = 1 to 50 do
    Ts.pulse ()
  done;
  Alcotest.check Alcotest.int "no points recorded" before (Ts.length Ts.default);
  Alcotest.check Alcotest.int "no pulses counted" pulses_before (Ts.pulses ())

let test_prometheus_exposition () =
  with_metrics_enabled @@ fun () ->
  let c = Metrics.counter "test.timeseries.promc" in
  let g = Metrics.gauge "test.timeseries.promg" in
  let h = Metrics.histogram "test.timeseries.promh" in
  Metrics.add c 7;
  Metrics.set_gauge g 42.0;
  Metrics.observe h 1000;
  let text = Ts.prometheus (Metrics.snapshot ()) in
  let occurs needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.equal (String.sub text i nl) needle || go (i + 1)) in
    go 0
  in
  let contains needle =
    if not (occurs needle) then Alcotest.failf "exposition missing %S" needle
  in
  contains "# TYPE test_timeseries_promc counter";
  contains "test_timeseries_promc 7";
  contains "# TYPE test_timeseries_promg gauge";
  contains "test_timeseries_promg 42";
  contains "# TYPE test_timeseries_promh summary";
  contains "test_timeseries_promh{quantile=\"0.5\"}";
  contains "test_timeseries_promh_count 1";
  (* Dots must be mangled: no raw dotted metric name survives. *)
  if occurs "test.timeseries." then Alcotest.fail "unmangled metric name in exposition"

let test_render_has_all_series () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create () in
  let c = Metrics.counter "test.timeseries.render" in
  Metrics.incr c;
  let p0 = Ts.record ~now_ns:1_000_000_000L ring in
  Metrics.add c 3;
  let p1 = Ts.record ~now_ns:2_000_000_000L ring in
  let out = Ts.render (Ts.deltas_between p0 p1) in
  if String.length out = 0 then Alcotest.fail "empty render";
  match Ts.last_deltas ring with
  | None -> Alcotest.fail "two points should yield deltas"
  | Some series -> (
      match find_series "test.timeseries.render" series with
      | Some s -> Alcotest.check feq "last_deltas agrees" 3.0 s.Ts.s_delta
      | None -> Alcotest.fail "series missing from last_deltas")

let suite =
  [
    Alcotest.test_case "deltas and rates, hand-computed" `Quick test_deltas_and_rates;
    Alcotest.test_case "counter reset clamps to zero" `Quick test_counter_reset_clamps;
    Alcotest.test_case "capacity eviction keeps newest" `Quick test_capacity_eviction;
    Alcotest.test_case "invalid capacity rejected" `Quick test_invalid_capacity;
    Alcotest.test_case "pulse interval records points" `Quick test_pulse_interval;
    Alcotest.test_case "pulse is silent when disabled" `Quick
      test_pulse_disabled_is_silent;
    Alcotest.test_case "prometheus exposition format" `Quick test_prometheus_exposition;
    Alcotest.test_case "render and last_deltas" `Quick test_render_has_all_series;
  ]
