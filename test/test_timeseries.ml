(* Telemetry ring tests.  Metrics live in process-global registries
   shared with every other suite, so each assertion here works on
   deltas between two points taken inside the test (never on absolute
   counter values), and every global knob touched is restored. *)

module Metrics = Provkit_obs.Metrics
module Ts = Provkit_obs.Timeseries

let with_metrics_enabled f =
  let saved = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) f

let find_series name series =
  List.find_opt (fun (s : Ts.series) -> String.equal s.Ts.s_name name) series

let feq = Alcotest.float 1e-9

let test_deltas_and_rates () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create ~capacity:8 () in
  let c = Metrics.counter "test.timeseries.alpha" in
  let g = Metrics.gauge "test.timeseries.beta" in
  let h = Metrics.histogram "test.timeseries.gamma" in
  Metrics.incr c;
  Metrics.set_gauge g 10.0;
  let p0 = Ts.record ~now_ns:1_000_000_000L ring in
  Metrics.add c 5;
  Metrics.set_gauge g 4.0;
  Metrics.observe h 123;
  Metrics.observe h 456;
  let p1 = Ts.record ~now_ns:3_000_000_000L ring in
  let series = Ts.deltas_between p0 p1 in
  (match find_series "test.timeseries.alpha" series with
  | None -> Alcotest.fail "counter series missing"
  | Some s ->
      Alcotest.check feq "counter delta" 5.0 s.Ts.s_delta;
      (* 5 increments over exactly 2 s of synthetic time. *)
      Alcotest.check feq "counter rate" 2.5 s.Ts.s_rate);
  (match find_series "test.timeseries.beta" series with
  | None -> Alcotest.fail "gauge series missing"
  | Some s ->
      Alcotest.check feq "gauge prev" 10.0 s.Ts.s_prev;
      Alcotest.check feq "gauge cur" 4.0 s.Ts.s_cur;
      (* Gauges are levels, not monotone counters: deltas may go negative. *)
      Alcotest.check feq "gauge delta" (-6.0) s.Ts.s_delta);
  match find_series "test.timeseries.gamma" series with
  | None -> Alcotest.fail "histogram series missing"
  | Some s ->
      Alcotest.check feq "histogram count delta" 2.0 s.Ts.s_delta;
      Alcotest.check feq "histogram count rate" 1.0 s.Ts.s_rate

let test_counter_reset_clamps () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create () in
  let c = Metrics.counter "test.timeseries.clamp" in
  Metrics.add c 100;
  let p0 = Ts.record ~now_ns:1_000_000_000L ring in
  Metrics.reset ();
  Metrics.incr (Metrics.counter "test.timeseries.clamp");
  let p1 = Ts.record ~now_ns:2_000_000_000L ring in
  match find_series "test.timeseries.clamp" (Ts.deltas_between p0 p1) with
  | None -> Alcotest.fail "series missing"
  | Some s ->
      Alcotest.check feq "reset clamps to 0" 0.0 s.Ts.s_delta;
      Alcotest.check feq "rate clamps too" 0.0 s.Ts.s_rate

let test_capacity_eviction () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create ~capacity:3 () in
  for i = 1 to 5 do
    ignore (Ts.record ~now_ns:(Int64.of_int (i * 1_000_000)) ring)
  done;
  Alcotest.check Alcotest.int "bounded" 3 (Ts.length ring);
  let stamps = List.map (fun (p : Ts.point) -> p.Ts.pt_ns) (Ts.points ring) in
  Alcotest.(check (list int64)) "oldest evicted, order kept"
    [ 3_000_000L; 4_000_000L; 5_000_000L ]
    stamps;
  Ts.clear ring;
  Alcotest.check Alcotest.int "cleared" 0 (Ts.length ring);
  match Ts.last_deltas ring with
  | None -> ()
  | Some _ -> Alcotest.fail "last_deltas on an empty ring"

let test_invalid_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Timeseries.create: capacity must be positive") (fun () ->
      ignore (Ts.create ~capacity:0 ()))

let test_pulse_interval () =
  with_metrics_enabled @@ fun () ->
  let saved = Ts.pulse_interval () in
  Fun.protect ~finally:(fun () -> Ts.set_pulse_interval saved) @@ fun () ->
  Ts.set_pulse_interval 5;
  let before = Ts.length Ts.default in
  let pulses_before = Ts.pulses () in
  for _ = 1 to 12 do
    Ts.pulse ()
  done;
  Alcotest.check Alcotest.int "pulses counted" (pulses_before + 12) (Ts.pulses ());
  let recorded = Ts.length Ts.default - before in
  (* 12 pulses at interval 5 cross the boundary 2 or 3 times depending on
     the global counter's residue coming into the test. *)
  if recorded < 2 || recorded > 3 then
    Alcotest.failf "expected 2-3 recorded points, got %d" recorded

let test_pulse_disabled_is_silent () =
  let saved = Metrics.enabled () in
  Metrics.set_enabled false;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled saved) @@ fun () ->
  let before = Ts.length Ts.default in
  let pulses_before = Ts.pulses () in
  for _ = 1 to 50 do
    Ts.pulse ()
  done;
  Alcotest.check Alcotest.int "no points recorded" before (Ts.length Ts.default);
  Alcotest.check Alcotest.int "no pulses counted" pulses_before (Ts.pulses ())

let test_prometheus_exposition () =
  with_metrics_enabled @@ fun () ->
  let c = Metrics.counter "test.timeseries.promc" in
  let g = Metrics.gauge "test.timeseries.promg" in
  let h = Metrics.histogram "test.timeseries.promh" in
  Metrics.add c 7;
  Metrics.set_gauge g 42.0;
  Metrics.observe h 1000;
  let text = Ts.prometheus (Metrics.snapshot ()) in
  let occurs needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i = i + nl <= hl && (String.equal (String.sub text i nl) needle || go (i + 1)) in
    go 0
  in
  let contains needle =
    if not (occurs needle) then Alcotest.failf "exposition missing %S" needle
  in
  contains "# TYPE test_timeseries_promc counter";
  contains "test_timeseries_promc 7";
  contains "# TYPE test_timeseries_promg gauge";
  contains "test_timeseries_promg 42";
  contains "# TYPE test_timeseries_promh summary";
  contains "test_timeseries_promh{quantile=\"0.5\"}";
  contains "test_timeseries_promh_count 1";
  (* Dots must be mangled: no raw dotted metric name survives. *)
  if occurs "test.timeseries." then Alcotest.fail "unmangled metric name in exposition"

let test_render_has_all_series () =
  with_metrics_enabled @@ fun () ->
  let ring = Ts.create () in
  let c = Metrics.counter "test.timeseries.render" in
  Metrics.incr c;
  let p0 = Ts.record ~now_ns:1_000_000_000L ring in
  Metrics.add c 3;
  let p1 = Ts.record ~now_ns:2_000_000_000L ring in
  let out = Ts.render (Ts.deltas_between p0 p1) in
  if String.length out = 0 then Alcotest.fail "empty render";
  match Ts.last_deltas ring with
  | None -> Alcotest.fail "two points should yield deltas"
  | Some series -> (
      match find_series "test.timeseries.render" series with
      | Some s -> Alcotest.check feq "last_deltas agrees" 3.0 s.Ts.s_delta
      | None -> Alcotest.fail "series missing from last_deltas")

(* --- exposition edge cases ------------------------------------------- *)

let occurs_in text needle =
  let nl = String.length needle and hl = String.length text in
  let rec go i = i + nl <= hl && (String.equal (String.sub text i nl) needle || go (i + 1)) in
  go 0

let test_prometheus_nonfinite_gauges () =
  (* Prometheus text exposition spells non-finite samples "NaN", "+Inf"
     and "-Inf" — %g's "nan"/"inf" would be rejected by scrapers.  Built
     from a synthetic snapshot so no real gauge has to go non-finite. *)
  let snap =
    {
      Metrics.snap_counters = [];
      snap_gauges =
        [
          ("test.timeseries.g_nan", Float.nan);
          ("test.timeseries.g_pinf", Float.infinity);
          ("test.timeseries.g_ninf", Float.neg_infinity);
        ];
      snap_histograms = [];
    }
  in
  let text = Ts.prometheus snap in
  let contains needle =
    if not (occurs_in text needle) then Alcotest.failf "exposition missing %S" needle
  in
  contains "test_timeseries_g_nan NaN";
  contains "test_timeseries_g_pinf +Inf";
  contains "test_timeseries_g_ninf -Inf";
  if occurs_in text " nan" || occurs_in text " inf" then
    Alcotest.fail "lowercase non-finite token leaked into exposition"

let test_prometheus_empty_snapshot () =
  let empty = { Metrics.snap_counters = []; snap_gauges = []; snap_histograms = [] } in
  Alcotest.(check string) "empty snapshot, empty exposition" "" (Ts.prometheus empty)

let test_rate_guards () =
  (* Zero-width interval and non-finite gauge deltas must both read as
     rate 0, not NaN/Inf rows. *)
  let pt ns g =
    {
      Ts.pt_ns = ns;
      pt_snap =
        { Metrics.snap_counters = [ ("test.timeseries.guard_c", 5) ];
          snap_gauges = [ ("test.timeseries.guard_g", g) ]; snap_histograms = [] };
    }
  in
  (* dt = 0: every rate is 0 even with a real delta. *)
  (match find_series "test.timeseries.guard_c" (Ts.deltas_between (pt 7L 1.0) (pt 7L 1.0)) with
  | Some s -> Alcotest.check feq "zero-dt rate" 0.0 s.Ts.s_rate
  | None -> Alcotest.fail "counter series missing");
  (* NaN gauge: the delta is NaN but the rate column stays finite. *)
  (match
     find_series "test.timeseries.guard_g"
       (Ts.deltas_between (pt 1_000_000_000L 1.0) (pt 2_000_000_000L Float.nan))
   with
  | Some s ->
    Alcotest.(check bool) "rate guarded against NaN" true (Float.is_finite s.Ts.s_rate);
    Alcotest.check feq "guarded rate is 0" 0.0 s.Ts.s_rate
  | None -> Alcotest.fail "gauge series missing");
  (* Infinite gauge jump: same guard. *)
  match
    find_series "test.timeseries.guard_g"
      (Ts.deltas_between (pt 1_000_000_000L 1.0) (pt 2_000_000_000L Float.infinity))
  with
  | Some s -> Alcotest.check feq "rate guarded against Inf" 0.0 s.Ts.s_rate
  | None -> Alcotest.fail "gauge series missing"

let test_counter_reset_clamp_renders () =
  (* A clamped reset must render as an idle row (delta 0, rate 0.0) —
     not as a negative delta. *)
  let pt ns v =
    {
      Ts.pt_ns = ns;
      pt_snap =
        { Metrics.snap_counters = [ ("test.timeseries.reset_render", v) ];
          snap_gauges = []; snap_histograms = [] };
    }
  in
  let series = Ts.deltas_between (pt 1_000_000_000L 100) (pt 2_000_000_000L 1) in
  let out = Ts.render series in
  if not (occurs_in out "test.timeseries.reset_render") then
    Alcotest.fail "clamped series missing from render";
  if occurs_in out "-99" then Alcotest.fail "negative delta rendered after a counter reset";
  match find_series "test.timeseries.reset_render" series with
  | Some s ->
    Alcotest.check feq "clamped delta" 0.0 s.Ts.s_delta;
    Alcotest.check feq "clamped rate" 0.0 s.Ts.s_rate
  | None -> Alcotest.fail "series missing"

let test_alert_state_gauge_roundtrip () =
  (* The alert-state exposition must agree with the engine's state both
     ways: parse every sample line back and compare with st_firing. *)
  let module Alert = Provkit_obs.Alert in
  Alert.reset ();
  Fun.protect ~finally:Alert.reset @@ fun () ->
  let rule id =
    {
      Alert.r_id = id;
      r_signal = Alert.Gauge_value "test.timeseries.alert_sig";
      r_condition = Alert.Above 1.0;
      r_for_ns = 0L;
      r_severity = Alert.Info;
      r_describe = "exposition round-trip";
    }
  in
  Alert.register (rule "alert.test.ts_quiet");
  Alert.register (rule "alert.test.ts_loud");
  (* Fire only the second rule by swapping its condition. *)
  Alert.register { (rule "alert.test.ts_loud") with Alert.r_condition = Alert.Below 1.0 };
  let pt ns =
    {
      Ts.pt_ns = ns;
      pt_snap =
        { Metrics.snap_counters = [];
          snap_gauges = [ ("test.timeseries.alert_sig", 0.5) ]; snap_histograms = [] };
    }
  in
  Alert.feed (pt 100L);
  Alert.feed (pt 200L);
  let text = Alert.prometheus_states () in
  let parsed =
    List.filter_map
      (fun line ->
        match String.index_opt line '{' with
        | Some _ when String.length line > 0 && line.[0] <> '#' -> (
          match String.split_on_char '"' line with
          | [ _; rule_id; rest ] when String.length rest > 1 ->
            (* [rest] is ["} <value>"]: drop the brace, keep the sample. *)
            Some (rule_id, String.trim (String.sub rest 1 (String.length rest - 1)))
          | _ -> None)
        | _ -> None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "one sample per rule" 2 (List.length parsed);
  List.iter
    (fun st ->
      let id = st.Alert.st_rule.Alert.r_id in
      match List.assoc_opt id parsed with
      | Some v ->
        Alcotest.(check string)
          (id ^ " state matches")
          (if st.Alert.st_firing then "1" else "0")
          v
      | None -> Alcotest.failf "rule %s missing from exposition" id)
    (Alert.states ());
  Alcotest.(check bool) "the loud rule is firing" true
    (match Alert.find "alert.test.ts_loud" with Some st -> st.Alert.st_firing | None -> false)

let suite =
  [
    Alcotest.test_case "deltas and rates, hand-computed" `Quick test_deltas_and_rates;
    Alcotest.test_case "counter reset clamps to zero" `Quick test_counter_reset_clamps;
    Alcotest.test_case "capacity eviction keeps newest" `Quick test_capacity_eviction;
    Alcotest.test_case "invalid capacity rejected" `Quick test_invalid_capacity;
    Alcotest.test_case "pulse interval records points" `Quick test_pulse_interval;
    Alcotest.test_case "pulse is silent when disabled" `Quick
      test_pulse_disabled_is_silent;
    Alcotest.test_case "prometheus exposition format" `Quick test_prometheus_exposition;
    Alcotest.test_case "render and last_deltas" `Quick test_render_has_all_series;
    Alcotest.test_case "non-finite gauges in exposition" `Quick
      test_prometheus_nonfinite_gauges;
    Alcotest.test_case "empty snapshot exposition" `Quick test_prometheus_empty_snapshot;
    Alcotest.test_case "rate guards: zero dt, NaN, Inf" `Quick test_rate_guards;
    Alcotest.test_case "counter reset renders as idle" `Quick
      test_counter_reset_clamp_renders;
    Alcotest.test_case "alert-state gauge round-trip" `Quick
      test_alert_state_gauge_roundtrip;
  ]
