(* The segmented write-ahead log: rotation, compaction, manifest-driven
   recovery, fault injection on the active segment, the v1 compatibility
   path, and the exhaustive crash-point sweep (every byte offset of a
   >= 1000-op journal must recover an op-sequence prefix). *)

module PL = Core.Prov_log
module Seg = Core.Prov_log.Segmented
module Store = Core.Prov_store
module PE = Core.Prov_edge
module F = Provkit_util.Faulty_io
module Prng = Provkit_util.Prng
module Transition = Browser.Transition

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "wal_test" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

(* Deterministic store workload: visits (which auto-create pages and
   Instance edges), link-traversal edges, and close stamps. *)
let drive store rng rounds =
  let prev = ref None in
  for i = 1 to rounds do
    let url = Printf.sprintf "http://w%d.example/p%d" (Prng.int rng 7) (Prng.int rng 200) in
    let v =
      Store.add_visit store ~engine_visit:i ~url ~title:"page" ~transition:Transition.Link
        ~tab:(Prng.int rng 4) ~time:(1000 + i)
    in
    (match !prev with
    | Some p when Prng.int rng 3 > 0 ->
      Store.add_edge store ~src:p ~dst:v PE.Link_traversal ~time:(1000 + i)
    | _ -> ());
    prev := Some v;
    if Prng.int rng 4 = 0 then Store.close_visit store ~engine_visit:i ~time:(1001 + i)
  done

(* Give the active segment a known layout for the offset-based fault
   tests: rotate to a fresh segment, then append exactly one wide page
   node, so the segment is the 8-byte magic followed by one > 90-byte
   frame no matter what the workload seed did before. *)
let ensure_active_frame handle store =
  Seg.rotate handle;
  ignore
    (Store.add_page store
       ~url:("http://pad.example/" ^ String.make 80 'x')
       ~title:"padding" ~time:999000)

let check_parity ~msg live recovered =
  Alcotest.(check int) (msg ^ ": node parity") (Store.node_count live)
    (Store.node_count recovered);
  Alcotest.(check int) (msg ^ ": edge parity") (Store.edge_count live)
    (Store.edge_count recovered)

let test_segmented_roundtrip () =
  with_temp_dir (fun dir ->
      let rng = Test_seed.prng ~salt:10 in
      let handle = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 2048 } dir in
      let store = Store.create () in
      Seg.attach handle store;
      drive store rng 120;
      Seg.close handle;
      Alcotest.(check bool) "rotation produced several segments" true
        (List.length (Seg.segments handle) > 2);
      let r = Seg.recover ~dir () in
      Alcotest.(check bool) "clean shutdown recovers untruncated" false r.Seg.truncated;
      Alcotest.(check int) "every appended op replays" (Seg.appended handle) r.Seg.ops_applied;
      check_parity ~msg:"clean recovery" store r.Seg.store)

let test_compaction () =
  (* Snapshot restore re-derives the session-only Same_time edges from
     visit stamps, so compaction must be exercised with a store built by
     the real capture pipeline — there the derived set equals the live
     set.  The synthetic [drive] workload would not round trip. *)
  with_temp_dir (fun dir ->
      let handle = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 1024 } dir in
      let capture, feed = Core.Capture.observer () in
      let store = Core.Capture.store capture in
      Seg.attach handle store;
      let _web, engine, _api, _trace = Core_fixtures.simulated ~seed:17 ~days:1 () in
      let events = Browser.Engine.event_log engine in
      let half = List.length events / 2 in
      List.iteri
        (fun i event ->
          feed event;
          if i = half then begin
            let before = List.length (Seg.segments handle) in
            Seg.compact handle store;
            Alcotest.(check int) "compaction bumps the generation" 1 (Seg.generation handle);
            Alcotest.(check bool) "compaction drops old segments" true
              (List.length (Seg.segments handle) < before)
          end)
        events;
      Seg.close handle;
      let r = Seg.recover ~dir () in
      Alcotest.(check bool) "recovery after compaction is clean" false r.Seg.truncated;
      check_parity ~msg:"snapshot + tail" store r.Seg.store;
      Alcotest.(check bool) "tail is only the post-compaction ops" true
        (r.Seg.ops_applied < Seg.appended handle))

let test_crash_fault_on_active_segment () =
  with_temp_dir (fun dir ->
      let rng = Test_seed.prng ~salt:12 in
      let handle = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 1024 } dir in
      let store = Store.create () in
      Seg.attach handle store;
      drive store rng 100;
      ensure_active_frame handle store;
      (* Lose most of the active segment, as if the machine died. *)
      F.arm (Seg.active_sink handle) [ F.Crash_after_bytes 20 ];
      Seg.close handle;
      let r = Seg.recover ~dir () in
      Alcotest.(check bool) "crash recovery reports truncation" true r.Seg.truncated;
      Alcotest.(check bool) "a strict prefix of the ops survives" true
        (r.Seg.ops_applied < Seg.appended handle);
      Alcotest.(check bool) "recovered store is a prefix of the live one" true
        (Store.node_count r.Seg.store <= Store.node_count store
        && Store.edge_count r.Seg.store <= Store.edge_count store))

let test_flip_fault_detected () =
  with_temp_dir (fun dir ->
      let rng = Test_seed.prng ~salt:13 in
      let handle = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 1024 } dir in
      let store = Store.create () in
      Seg.attach handle store;
      drive store rng 100;
      ensure_active_frame handle store;
      (* Complement one byte inside the active segment's first frame:
         the checksum must catch it even though nothing is truncated. *)
      F.arm (Seg.active_sink handle) [ F.Flip_byte 12 ];
      Seg.close handle;
      let r = Seg.recover ~dir () in
      Alcotest.(check bool) "flipped byte ends the readable prefix" true r.Seg.truncated;
      Alcotest.(check bool) "ops stop before the damaged frame" true
        (r.Seg.ops_applied < Seg.appended handle))

let test_no_append_after_torn_tail () =
  with_temp_dir (fun dir ->
      let rng = Test_seed.prng ~salt:14 in
      let h1 = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 512 } dir in
      let store = Store.create () in
      Seg.attach h1 store;
      drive store rng 60;
      F.arm (Seg.active_sink h1) [ F.Torn_final_write 3 ];
      Seg.close h1;
      let after_crash = Seg.recover ~dir () in
      (* Reopen and append more: the new ops must land in a fresh
         segment, never after the torn frame. *)
      let h2 = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 512 } dir in
      let store2 = Store.create () in
      Seg.attach h2 store2;
      drive store2 (Prng.create 99) 10;
      Seg.close h2;
      let r = Seg.recover ~dir () in
      (* The torn segment still ends recovery where it did: the global
       prefix invariant holds even with younger healthy segments. *)
      Alcotest.(check int) "torn frame still bounds recovery"
        after_crash.Seg.ops_applied r.Seg.ops_applied;
      Alcotest.(check bool) "still reported as truncated" true r.Seg.truncated)

let test_recover_missing_dir_and_empty () =
  with_temp_dir (fun dir ->
      let handle = Seg.open_ dir in
      Seg.close handle;
      let r = Seg.recover ~dir () in
      Alcotest.(check int) "empty WAL recovers an empty store" 0
        (Store.node_count r.Seg.store);
      Alcotest.(check bool) "empty WAL is clean" false r.Seg.truncated)

let test_v1_journal_still_loads () =
  let store, journal = PL.recording_store () in
  drive store (Test_seed.prng ~salt:15) 40;
  let v1 = PL.to_bytes_v1 journal in
  let v2 = PL.to_bytes journal in
  Alcotest.(check (option int)) "v1 magic" (Some 1) (PL.format_version v1);
  Alcotest.(check (option int)) "v2 magic" (Some 2) (PL.format_version v2);
  Alcotest.(check bool) "v2 image costs more than v1" true
    (String.length v2 > String.length v1);
  Alcotest.(check bool) "v1 journal loads identically" true
    (PL.ops (PL.of_bytes v1) = PL.ops journal);
  Alcotest.(check bool) "v2 journal loads identically" true
    (PL.ops (PL.of_bytes v2) = PL.ops journal)

let test_v1_event_trace_still_loads () =
  let events =
    List.init 30 (fun i ->
        Browser.Event.Visit
          {
            Browser.Event.visit_id = i;
            time = 100 + i;
            tab = i mod 3;
            page = (if i mod 2 = 0 then Some i else None);
            url = Webmodel.Url.of_string (Printf.sprintf "http://site%d.example/" i);
            title = Printf.sprintf "page %d" i;
            transition = Browser.Transition.Link;
            referrer = (if i > 0 then Some (i - 1) else None);
            via_bookmark = None;
          })
  in
  let v1 = Browser.Event_codec.to_bytes_v1 events in
  let v2 = Browser.Event_codec.to_bytes events in
  Alcotest.(check (option int)) "v1 magic" (Some 1) (Browser.Event_codec.format_version v1);
  Alcotest.(check (option int)) "v2 magic" (Some 2) (Browser.Event_codec.format_version v2);
  Alcotest.(check bool) "v1 trace loads identically" true
    (Browser.Event_codec.of_bytes v1 = events);
  Alcotest.(check bool) "v2 trace loads identically" true
    (Browser.Event_codec.of_bytes v2 = events)

(* The satellite sweep: cut a >= 1000-op journal at EVERY byte offset and
   demand that recovery yields an op-sequence prefix. *)
let test_crash_point_sweep () =
  let store, journal = PL.recording_store () in
  drive store (Test_seed.prng ~salt:16) 450;
  let full = Array.of_list (PL.ops journal) in
  Alcotest.(check bool) "journal is big enough to mean something" true
    (Array.length full >= 1000);
  let bytes = PL.to_bytes journal in
  let is_prefix ops =
    let rec go i = function
      | [] -> true
      | op :: rest -> i < Array.length full && full.(i) = op && go (i + 1) rest
    in
    go 0 ops
  in
  (* Loading a journal appends each decoded op, so the journal-append
     counter must advance by exactly the recovered-op count at every
     cut — the metric is checked against ground truth across the whole
     sweep. *)
  let was_enabled = Provkit_obs.Metrics.enabled () in
  Provkit_obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Provkit_obs.Metrics.set_enabled was_enabled)
  @@ fun () ->
  for cut = 0 to String.length bytes do
    let appends_before =
      Provkit_obs.Metrics.counter_value Provkit_obs.Names.journal_appends
    in
    let incidents_before = Provkit_obs.Flight.recorded () in
    let loaded =
      try Some (PL.of_bytes (String.sub bytes 0 cut)) with
      | Relstore.Errors.Corrupt _ -> None (* a cut inside the magic recovers nothing *)
    in
    let recovered = match loaded with Some log -> PL.ops log | None -> [] in
    if not (is_prefix recovered) then
      Alcotest.failf "cut at byte %d/%d recovered a non-prefix (%d ops)" cut
        (String.length bytes) (List.length recovered);
    let appends_delta =
      Provkit_obs.Metrics.counter_value Provkit_obs.Names.journal_appends
      - appends_before
    in
    if appends_delta <> List.length recovered then
      Alcotest.failf "cut at byte %d: append counter moved by %d for %d recovered ops"
        cut appends_delta (List.length recovered);
    (* The flight recorder must log exactly one postmortem incident per
       truncated load and none for clean ones.  A load is truncated iff
       it salvaged fewer bytes than it was offered (a cut on a record
       boundary re-encodes to exactly [cut] bytes); cuts inside the
       magic raise before any salvage and must stay silent too. *)
    let expected_incidents =
      match loaded with
      | None -> 0
      | Some log -> if PL.byte_size log < cut then 1 else 0
    in
    let incident_delta = Provkit_obs.Flight.recorded () - incidents_before in
    if incident_delta <> expected_incidents then
      Alcotest.failf "cut at byte %d: %d flight incident(s) recorded, expected %d" cut
        incident_delta expected_incidents
  done

(* ---- group commit ------------------------------------------------- *)

(* A deterministic op list for the group-commit tests: recorded once
   through the journaling store, then replayed into WAL handles by hand
   so the tests control exactly when each append happens. *)
let make_ops ~salt rounds =
  let store, journal = PL.recording_store () in
  drive store (Test_seed.prng ~salt) rounds;
  PL.ops journal

let take n l = List.filteri (fun i _ -> i < n) l

let with_metrics_on f =
  let was = Provkit_obs.Metrics.enabled () in
  Provkit_obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Provkit_obs.Metrics.set_enabled was) f

(* One fsync per [group_commit_ops] appends, counted against the obs
   counter (the acceptance criterion's ground truth), plus the explicit
   [durable] barrier for the tail. *)
let test_group_commit_fsync_count () =
  with_temp_dir (fun dir ->
      with_metrics_on (fun () ->
          let ops = take 20 (make_ops ~salt:21 30) in
          Alcotest.(check int) "test needs exactly 20 ops" 20 (List.length ops);
          let config =
            {
              Seg.max_segment_bytes = 1 lsl 20;
              (* never rotate *)
              Seg.group_commit_ops = 8;
              Seg.group_commit_bytes = 1 lsl 20;
            }
          in
          let h = Seg.open_ ~config dir in
          let fsyncs () = Provkit_obs.Metrics.counter_value Provkit_obs.Names.wal_fsyncs in
          let c0 = fsyncs () in
          List.iter (Seg.append h) ops;
          Alcotest.(check int) "20 appends at G=8 cost 2 fsyncs" 2 (fsyncs () - c0);
          Alcotest.(check int) "the tail of the third batch is pending" 4 (Seg.pending h);
          Seg.durable h;
          Alcotest.(check int) "durable flushes the pending tail" 0 (Seg.pending h);
          Alcotest.(check int) "durable cost exactly one more fsync" 3 (fsyncs () - c0);
          Alcotest.(check (float 1e-9)) "fsyncs-per-append gauge is batch/append truth"
            (3.0 /. 20.0)
            (Provkit_obs.Metrics.gauge_value Provkit_obs.Names.wal_fsyncs_per_append);
          Seg.durable h;
          Alcotest.(check int) "durable with nothing pending is free" 3 (fsyncs () - c0);
          Seg.close h;
          let r = Seg.recover ~dir () in
          Alcotest.(check bool) "clean recovery" false r.Seg.truncated;
          Alcotest.(check int) "every op recovered" 20 r.Seg.ops_applied))

(* Crash (no close, no flush): what's on disk is exactly the flushed
   batches — recovery loses the undurable tail of at most one batch and
   nothing else, and the surviving image is frame-clean (no incident). *)
let test_group_commit_crash_loses_only_pending_tail () =
  with_temp_dir (fun dir ->
      let ops = take 20 (make_ops ~salt:22 30) in
      let config =
        {
          Seg.max_segment_bytes = 1 lsl 20;
          Seg.group_commit_ops = 8;
          Seg.group_commit_bytes = 1 lsl 20;
        }
      in
      let h = Seg.open_ ~config dir in
      List.iter (Seg.append h) ops;
      Alcotest.(check int) "4 ops are undurable" 4 (Seg.pending h);
      (* No close: the pending tail never reaches the file, exactly a
         machine-off crash under Faulty_io's buffering model. *)
      let r = Seg.recover ~dir () in
      Alcotest.(check int) "recovery = appends minus the pending tail" 16 r.Seg.ops_applied;
      Alcotest.(check bool) "flushed image is frame-clean" false r.Seg.truncated;
      (* After the barrier the same crash loses nothing. *)
      Seg.durable h;
      let r2 = Seg.recover ~dir () in
      Alcotest.(check int) "durable makes the whole log survive" 20 r2.Seg.ops_applied;
      Seg.close h)

(* A batch torn mid-frame by the crash: recovery keeps a frame-aligned
   prefix of the batch and files exactly one flight incident for the
   truncated segment. *)
let test_group_commit_torn_batch () =
  with_temp_dir (fun dir ->
      with_metrics_on (fun () ->
          let ops = take 20 (make_ops ~salt:23 30) in
          let config =
            {
              Seg.max_segment_bytes = 1 lsl 20;
              Seg.group_commit_ops = 64;
              Seg.group_commit_bytes = 1 lsl 20;
            }
          in
          let h = Seg.open_ ~config dir in
          Seg.append_batch h ops;
          Alcotest.(check int) "whole batch pending below the trigger" 20 (Seg.pending h);
          (* Tear the batch's single sink write a few bytes in, then
             crash-close: only a mid-frame fragment reaches the disk. *)
          F.arm (Seg.active_sink h) [ F.Torn_final_write 3 ];
          Seg.close h;
          let incidents_before = Provkit_obs.Flight.recorded () in
          let r = Seg.recover ~dir () in
          Alcotest.(check bool) "torn batch reports truncation" true r.Seg.truncated;
          Alcotest.(check bool) "a strict prefix of the batch survives" true
            (r.Seg.ops_applied < 20);
          Alcotest.(check int) "exactly one incident for the truncated load" 1
            (Provkit_obs.Flight.recorded () - incidents_before)))

(* append_batch at the default (per-append durability) config still
   costs exactly one fsync for the whole batch: the trigger fires once,
   after the single sink write. *)
let test_append_batch_default_config () =
  with_temp_dir (fun dir ->
      with_metrics_on (fun () ->
          let ops = take 20 (make_ops ~salt:24 30) in
          let h = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 1 lsl 20 } dir in
          let fsyncs () = Provkit_obs.Metrics.counter_value Provkit_obs.Names.wal_fsyncs in
          let c0 = fsyncs () in
          Seg.append_batch h ops;
          Alcotest.(check int) "one fsync for the whole batch" 1 (fsyncs () - c0);
          Alcotest.(check int) "nothing left pending" 0 (Seg.pending h);
          Seg.append_batch h [];
          Alcotest.(check int) "empty batch is free" 1 (fsyncs () - c0);
          Seg.close h;
          let r = Seg.recover ~dir () in
          Alcotest.(check bool) "clean recovery" false r.Seg.truncated;
          Alcotest.(check int) "batch recovers op-for-op" 20 r.Seg.ops_applied;
          (* Parity with the per-append path: same ops, same store. *)
          let store = Store.create () in
          List.iter (PL.apply_op store) ops;
          check_parity ~msg:"batch ingest" store r.Seg.store))

let suite =
  [
    Alcotest.test_case "segmented roundtrip" `Quick test_segmented_roundtrip;
    Alcotest.test_case "compaction" `Quick test_compaction;
    Alcotest.test_case "crash fault on active segment" `Quick test_crash_fault_on_active_segment;
    Alcotest.test_case "flip fault detected" `Quick test_flip_fault_detected;
    Alcotest.test_case "no append after torn tail" `Quick test_no_append_after_torn_tail;
    Alcotest.test_case "empty WAL" `Quick test_recover_missing_dir_and_empty;
    Alcotest.test_case "v1 journal compatibility" `Quick test_v1_journal_still_loads;
    Alcotest.test_case "v1 event trace compatibility" `Quick test_v1_event_trace_still_loads;
    Alcotest.test_case "crash-point sweep (every byte offset)" `Slow test_crash_point_sweep;
    Alcotest.test_case "group commit: fsync counting" `Quick test_group_commit_fsync_count;
    Alcotest.test_case "group commit: crash loses only pending tail" `Quick
      test_group_commit_crash_loses_only_pending_tail;
    Alcotest.test_case "group commit: torn batch" `Quick test_group_commit_torn_batch;
    Alcotest.test_case "append_batch at default config" `Quick test_append_batch_default_config;
  ]
