(* The matview differential gate: after EVERY prefix of a generated
   event stream, each incremental view must equal its cold
   recomputation over the tables that prefix produced.  Streams come
   from a small command language (visits across all ten transitions,
   redirect chains, typed-URL breaks, downloads, closes, clock skew,
   multi-day jumps) concretized so engine invariants hold — visit and
   download ids contiguous from 1 — which keeps QCheck's list
   shrinking valid on any sub-stream.

   Also here: the bloom filter's no-false-negative and bounded
   false-positive guarantees, torn-WAL recovery refolding the op-stream
   views, sliding-window boundary regressions, the Query_exec
   matview-source fast path, and Capture.attach_views wiring. *)

module R = Relstore
module E = Browser.Event
module PDB = Browser.Places_db
module PV = Browser.Places_views
module Transition = Browser.Transition
module Url = Webmodel.Url
module Prng = Provkit_util.Prng
module PL = Core.Prov_log
module Seg = Core.Prov_log.Segmented
module SV = Core.Store_views
module F = Provkit_util.Faulty_io

let top_n = 10

(* Matview sources live in a process-global Query_exec registry; keep
   each test's registrations from leaking into the next (the closures
   would also pin dead databases). *)
let with_clean_sources f =
  R.Query_exec.clear_matview_sources ();
  Fun.protect ~finally:R.Query_exec.clear_matview_sources f

let with_metrics_on f =
  let was = Provkit_obs.Metrics.enabled () in
  Provkit_obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Provkit_obs.Metrics.set_enabled was) f

(* ---- the command language ----------------------------------------- *)

(* Commands are abstract; ids and times are assigned at concretization,
   so every sub-list of commands is itself a valid stream (shrinking
   never produces an id gap Places_db would assert on). *)
type cmd =
  | CVisit of { url_ix : int; trans_ix : int; ref_back : int; dt : int }
  | CBookmark of { url_ix : int; dt : int }
  | CDownload of { url_ix : int; ref_back : int; dt : int }
  | CSearch of { dt : int }
  | CClose of { dt : int }
  | CTab of { dt : int }
  | CForm of { dt : int }

(* A deliberately small pool so streams revisit URLs constantly: that
   is what exercises find-or-create, unhiding, frecency resorting and
   the revisit bloom filter. *)
let url_pool =
  Array.init 36 (fun i ->
      Url.make
        ~path:[ Printf.sprintf "p%d" (i mod 6) ]
        (Printf.sprintf "site%d.example" (i / 6)))

let url_at ix = url_pool.(abs ix mod Array.length url_pool)
let transitions = Array.of_list Transition.all

let events_of_cmds cmds =
  let time = ref (20 * 86_400) in
  let nv = ref 0 and nd = ref 0 and nb = ref 0 and ns = ref 0 and nf = ref 0 in
  (* dt < 0 is deliberate clock skew: the stream's times are not
     monotonic, only the watermark is. *)
  let advance dt = time := max 0 (!time + dt) in
  let pick_ref back = if back < 0 || !nv = 0 then None else Some (1 + (back mod !nv)) in
  let visit ?referrer ~transition url_ix =
    incr nv;
    E.Visit
      {
        visit_id = !nv;
        time = !time;
        tab = 1;
        page = None;
        url = url_at url_ix;
        title = "t";
        transition;
        referrer;
        via_bookmark = None;
      }
  in
  List.concat_map
    (fun cmd ->
      match cmd with
      | CVisit { url_ix; trans_ix; ref_back; dt } ->
        advance dt;
        let referrer = pick_ref ref_back in
        [ visit ?referrer ~transition:transitions.(abs trans_ix mod Array.length transitions) url_ix ]
      | CBookmark { url_ix; dt } ->
        if !nv = 0 then []
        else begin
          advance dt;
          incr nb;
          [
            E.Bookmark_added
              { time = !time; bookmark_id = !nb; visit_id = !nv; url = url_at url_ix; title = "b" };
          ]
        end
      | CDownload { url_ix; ref_back; dt } ->
        advance dt;
        let referrer = pick_ref ref_back in
        let v = visit ?referrer ~transition:Transition.Download url_ix in
        incr nd;
        [
          v;
          E.Download_started
            {
              time = !time;
              download_id = !nd;
              visit_id = !nv;
              source_visit = Option.value ~default:!nv referrer;
              url = url_at url_ix;
              target_path = Printf.sprintf "/dl/f%d" !nd;
            };
        ]
      | CSearch { dt } ->
        if !nv = 0 then []
        else begin
          advance dt;
          incr ns;
          [ E.Search { time = !time; search_id = !ns; query = "q"; serp_visit = !nv } ]
        end
      | CClose { dt } ->
        if !nv = 0 then []
        else begin
          advance dt;
          [ E.Close { time = !time; tab = 1; visit_id = !nv } ]
        end
      | CTab { dt } ->
        advance dt;
        [ E.Tab_opened { time = !time; tab = 2; opener_tab = None } ]
      | CForm { dt } ->
        if !nv = 0 then []
        else begin
          advance dt;
          incr nf;
          [
            E.Form_submitted
              { time = !time; form_id = !nf; source_visit = 1; result_visit = !nv; fields = [ ("q", "x") ] };
          ]
        end)
    cmds

let cmd_str = function
  | CVisit { url_ix; trans_ix; ref_back; dt } ->
    Printf.sprintf "V(u%d,t%d,r%d,%+d)" url_ix trans_ix ref_back dt
  | CBookmark { url_ix; dt } -> Printf.sprintf "B(u%d,%+d)" url_ix dt
  | CDownload { url_ix; ref_back; dt } -> Printf.sprintf "D(u%d,r%d,%+d)" url_ix ref_back dt
  | CSearch { dt } -> Printf.sprintf "S(%+d)" dt
  | CClose { dt } -> Printf.sprintf "C(%+d)" dt
  | CTab { dt } -> Printf.sprintf "T(%+d)" dt
  | CForm { dt } -> Printf.sprintf "F(%+d)" dt

(* ---- the per-prefix differential check ----------------------------- *)

let fr_str l =
  "["
  ^ String.concat "; " (List.map (fun (id, url, f) -> Printf.sprintf "(%d,%s,%h)" id url f) l)
  ^ "]"

let hv_str l =
  "[" ^ String.concat "; " (List.map (fun (h, n) -> Printf.sprintf "(%s,%d)" h n) l) ^ "]"

let pv_str (total, groups) =
  Printf.sprintf "%d:[%s]" total
    (String.concat "; "
       (List.map (fun (k, n) -> Printf.sprintf "(%s,%d)" (R.Value.to_string k) n) groups))

exception Diverged of string

let check_view ~ctx name show inc cold =
  if inc <> cold then
    raise
      (Diverged
         (Printf.sprintf "%s: %s diverged\n  incremental: %s\n  cold:        %s" ctx name
            (show inc) (show cold)))

(* One prefix's worth of assertions: all five views against their cold
   baselines (frecency compared exactly — the incremental fold must be
   bit-for-bit the stored float), plus zero staleness. *)
let check_step ~ctx mv places =
  check_view ~ctx "awesomebar_frecency" fr_str (PV.frecency_top mv)
    (PV.cold_frecency_top ~top_n places);
  check_view ~ctx "host_visits" hv_str (PV.host_visits mv) (PV.cold_host_visits places);
  check_view ~ctx "download_referrers" hv_str (PV.download_referrers mv)
    (PV.cold_download_referrers places);
  check_view ~ctx "recent_visits_7d" string_of_int (PV.recent_visits mv)
    (PV.cold_recent_visits ~now:(PV.now mv) places);
  check_view ~ctx "place_visits" pv_str (PV.place_visit_groups mv) (PV.cold_place_visits places);
  if R.Matview.max_staleness (PV.registry mv) <> 0 then
    raise (Diverged (ctx ^ ": nonzero staleness right after ingest"))

let run_differential events =
  with_clean_sources @@ fun () ->
  let places = PDB.create () in
  let mv = PV.create ~top_n places in
  let total = List.length events in
  List.iteri
    (fun i ev ->
      PV.ingest mv ev;
      let ctx = Printf.sprintf "after event %d/%d (%s)" (i + 1) total (E.describe ev) in
      check_step ~ctx mv places)
    events

(* ---- QCheck: random streams, every prefix, with shrinking ---------- *)

let dt_gen =
  QCheck.Gen.frequency
    [
      (6, QCheck.Gen.int_range 0 21_600);
      (2, QCheck.Gen.int_range (-7_200) 0);
      (1, QCheck.Gen.int_range 86_400 600_000);
      (* Multi-day backward jumps: later events land far behind the
         watermark, right around the 7-day window's trailing edge. *)
      (1, QCheck.Gen.int_range (-700_000) (-86_400));
    ]

let cmd_gen =
  let open QCheck.Gen in
  let ref_gen = int_range (-2) 40 in
  frequency
    [
      ( 8,
        map2
          (fun (url_ix, trans_ix) (ref_back, dt) -> CVisit { url_ix; trans_ix; ref_back; dt })
          (pair (int_bound 35) (int_bound 9))
          (pair ref_gen dt_gen) );
      (2, map2 (fun url_ix dt -> CBookmark { url_ix; dt }) (int_bound 35) dt_gen);
      ( 2,
        map2
          (fun (url_ix, ref_back) dt -> CDownload { url_ix; ref_back; dt })
          (pair (int_bound 35) ref_gen)
          dt_gen );
      (1, map (fun dt -> CSearch { dt }) dt_gen);
      (1, map (fun dt -> CClose { dt }) dt_gen);
      (1, map (fun dt -> CTab { dt }) dt_gen);
      (1, map (fun dt -> CForm { dt }) dt_gen);
    ]

let prop_incremental_equals_cold =
  QCheck.Test.make ~name:"random stream: incremental = cold after every prefix" ~count:30
    (QCheck.make
       ~print:(fun cmds -> String.concat ";" (List.map cmd_str cmds))
       ~shrink:QCheck.Shrink.list
       (QCheck.Gen.list_size (QCheck.Gen.int_bound 70) cmd_gen))
    (fun cmds ->
      run_differential (events_of_cmds cmds);
      true)

(* ---- the seeded >= 1k-event gate ----------------------------------- *)

let random_cmd rng =
  let dt =
    match Prng.int rng 10 with
    | 0 | 1 -> -Prng.int rng 7_200
    | 8 -> 86_400 + Prng.int rng 500_000
    | 9 -> -(86_400 + Prng.int rng 500_000)
    | _ -> Prng.int rng 21_600
  in
  match Prng.int rng 16 with
  | 0 | 1 -> CBookmark { url_ix = Prng.int rng 36; dt }
  | 2 | 3 -> CDownload { url_ix = Prng.int rng 36; ref_back = Prng.int rng 42 - 2; dt }
  | 4 -> CSearch { dt }
  | 5 -> CClose { dt }
  | 6 -> CTab { dt }
  | 7 -> CForm { dt }
  | _ -> CVisit { url_ix = Prng.int rng 36; trans_ix = Prng.int rng 10; ref_back = Prng.int rng 42 - 2; dt }

(* The acceptance gate: a deterministic PROV_TEST_SEED stream of at
   least 1000 mixed events, checked after every single prefix.  The
   bloom filter's no-false-negative contract is asserted step by step
   against an exact seen-set, and a final [refresh] must refold to the
   same values (and tick the refresh counters). *)
let test_seeded_stream_every_prefix () =
  let rng = Test_seed.prng ~salt:71 in
  let cmds = List.init 1_024 (fun _ -> random_cmd rng) in
  let events = events_of_cmds cmds in
  Alcotest.(check bool)
    (Printf.sprintf "stream has >= 1000 events (got %d)" (List.length events))
    true
    (List.length events >= 1_000);
  with_clean_sources @@ fun () ->
  let places = PDB.create () in
  let mv = PV.create ~top_n places in
  let seen = Hashtbl.create 1_024 in
  let total_visits = ref 0 in
  List.iteri
    (fun i ev ->
      let revisit_expected =
        match ev with
        | E.Visit v -> Some (Hashtbl.mem seen (Url.to_string v.E.url))
        | _ -> None
      in
      let _, revisits_before = PV.revisit_stats mv in
      PV.ingest mv ev;
      let ctx = Printf.sprintf "after event %d (%s)" (i + 1) (E.describe ev) in
      (try check_step ~ctx mv places with Diverged msg -> Alcotest.fail msg);
      match (revisit_expected, ev) with
      | Some was_seen, E.Visit v ->
        incr total_visits;
        Hashtbl.replace seen (Url.to_string v.E.url) ();
        let _, revisits_after = PV.revisit_stats mv in
        (* A false positive may flag a first visit as a revisit; a
           revisit silently missed would be a false negative — the one
           thing a bloom filter must never do. *)
        if was_seen && revisits_after <> revisits_before + 1 then
          Alcotest.failf "%s: bloom false negative on %s" ctx (Url.to_string v.E.url)
      | _ -> ())
    events;
  let first, revisits = PV.revisit_stats mv in
  Alcotest.(check int) "every visit was classified exactly once" !total_visits (first + revisits);
  Alcotest.(check int) "registry saw the whole stream" (List.length events)
    (PV.events_ingested mv);
  PV.refresh mv;
  (try check_step ~ctx:"after refresh" mv places with Diverged msg -> Alcotest.fail msg);
  List.iter
    (fun s ->
      Alcotest.(check int)
        (s.R.Matview.st_name ^ ": refresh ticked the counter")
        1 s.R.Matview.st_refreshes;
      Alcotest.(check int)
        (s.R.Matview.st_name ^ ": refolded the full stream")
        (List.length events) s.R.Matview.st_folded)
    (PV.status mv)

(* ---- window boundary regressions ----------------------------------- *)

let mk_visit ~id ~day ?(sec = 0) ?(transition = Transition.Link) ?referrer url_ix =
  E.Visit
    {
      visit_id = id;
      time = (day * 86_400) + sec;
      tab = 1;
      page = None;
      url = url_at url_ix;
      title = "";
      transition;
      referrer;
      via_bookmark = None;
    }

let mk_tick ~day = E.Tab_opened { time = day * 86_400; tab = 9; opener_tab = None }

let fresh_views () =
  let places = PDB.create () in
  (places, PV.create ~top_n places)

let check_recent ~msg mv places expected =
  Alcotest.(check int) msg expected (PV.recent_visits mv);
  Alcotest.(check int) (msg ^ " (cold agrees)")
    (PV.cold_recent_visits ~now:(PV.now mv) places)
    (PV.recent_visits mv)

(* A visit exactly 6 days behind the watermark is the oldest day still
   inside the 7-day window; one more day expires it. *)
let test_window_edge () =
  with_clean_sources @@ fun () ->
  let places, mv = fresh_views () in
  PV.ingest mv (mk_visit ~id:1 ~day:100 0);
  PV.ingest mv (mk_visit ~id:2 ~day:106 1);
  check_recent ~msg:"day 100 at watermark 106 is still in-window" mv places 2;
  PV.ingest mv (mk_tick ~day:107);
  check_recent ~msg:"watermark 107 expires exactly the edge day" mv places 1

(* Out-of-order (clock-skewed) events: a late arrival inside the window
   still counts, one older than the window is dropped, and neither
   moves the watermark backwards. *)
let test_window_clock_skew () =
  with_clean_sources @@ fun () ->
  let places, mv = fresh_views () in
  PV.ingest mv (mk_visit ~id:1 ~day:120 0);
  PV.ingest mv (mk_visit ~id:2 ~day:116 1);
  check_recent ~msg:"late in-window arrival counts" mv places 2;
  PV.ingest mv (mk_visit ~id:3 ~day:114 2);
  check_recent ~msg:"late arrival on the exact trailing edge counts" mv places 3;
  PV.ingest mv (mk_visit ~id:4 ~day:113 3);
  check_recent ~msg:"arrival older than the window is dropped" mv places 3;
  Alcotest.(check int) "skew never lowers the watermark" (120 * 86_400) (PV.now mv)

(* A gap longer than the window empties it wholesale (the ring buffer
   must clear every slot, not just the entered one), then refills. *)
let test_window_empty_expiry () =
  with_clean_sources @@ fun () ->
  let places, mv = fresh_views () in
  PV.ingest mv (mk_visit ~id:1 ~day:1 0);
  PV.ingest mv (mk_visit ~id:2 ~day:2 1);
  check_recent ~msg:"both visits inside the initial window" mv places 2;
  PV.ingest mv (mk_tick ~day:40);
  check_recent ~msg:"a multi-week gap empties the window" mv places 0;
  PV.ingest mv (mk_visit ~id:3 ~day:40 2);
  check_recent ~msg:"the window refills after the gap" mv places 1

(* ---- bloom filter guarantees ---------------------------------------- *)

let test_bloom_no_false_negatives () =
  List.iter
    (fun salt ->
      let rng = Test_seed.prng ~salt in
      let b = R.Remember.create ~expected:2_000 () in
      let keys = List.init 2_000 (fun i -> Printf.sprintf "k%d-%d-%d" salt i (Prng.int rng 1_000_000)) in
      List.iter (R.Remember.add b) keys;
      List.iter
        (fun k ->
          if not (R.Remember.mem b k) then Alcotest.failf "false negative for %S (salt %d)" k salt)
        keys;
      Alcotest.(check int)
        (Printf.sprintf "salt %d: inserted counts every add" salt)
        2_000 (R.Remember.inserted b))
    [ 31; 32; 33 ]

(* The measured false-positive rate on 20k never-inserted keys must stay
   within 2x the configured target (expected ~1x; 2x leaves ~14 sigma of
   sampling headroom at this query count). *)
let test_bloom_fp_rate_bounded () =
  List.iter
    (fun salt ->
      let rng = Test_seed.prng ~salt in
      let b = R.Remember.create ~false_positive_rate:0.01 ~expected:4_096 () in
      for _ = 1 to 4_096 do
        R.Remember.add b (Printf.sprintf "in-%d-%d" salt (Prng.int rng 1_000_000_000))
      done;
      let queries = 20_000 in
      let hits = ref 0 in
      for i = 1 to queries do
        if R.Remember.mem b (Printf.sprintf "out-%d-%d" salt i) then incr hits
      done;
      let rate = float_of_int !hits /. float_of_int queries in
      let target = R.Remember.false_positive_rate b in
      if rate > 2.0 *. target then
        Alcotest.failf "salt %d: measured FP rate %.4f exceeds 2x target %.4f" salt rate target;
      Alcotest.(check bool)
        (Printf.sprintf "salt %d: filter is not saturated" salt)
        true
        (R.Remember.fill_ratio b < 0.6))
    [ 41; 42; 43 ]

let test_bloom_remember () =
  let b = R.Remember.create ~expected:16 () in
  Alcotest.(check bool) "a fresh key is not remembered" false (R.Remember.remember b "u1");
  Alcotest.(check bool) "the second sighting is" true (R.Remember.remember b "u1");
  Alcotest.(check int) "inserted counts duplicates" 2 (R.Remember.inserted b);
  Alcotest.(check bool) "at least one probe" true (R.Remember.hash_count b >= 1);
  Alcotest.(check bool) "bit array is sized" true (R.Remember.bit_size b >= 64)

(* ---- the Query_exec fast path --------------------------------------- *)

let test_query_fastpath () =
  with_clean_sources @@ fun () ->
  with_metrics_on @@ fun () ->
  let places = PDB.create () in
  let mv = PV.create ~top_n places in
  let evs =
    events_of_cmds
      (List.init 40 (fun i -> CVisit { url_ix = i; trans_ix = 0; ref_back = -1; dt = 60 }))
  in
  PV.ingest_batch mv evs;
  Alcotest.(check int) "both sources registered" 2 (R.Query_exec.matview_source_count ());
  let visits = R.Database.table (PDB.database places) "moz_historyvisits" in
  let serves () = Provkit_obs.Metrics.counter_value Provkit_obs.Names.matview_serves in
  let s0 = serves () in
  Alcotest.(check int) "count served from the view" 40 (R.Query_exec.count visits);
  Alcotest.(check bool) "group_count served from the view" true
    (R.Query_exec.group_count ~by:"place_id" visits = snd (PV.place_visit_groups mv));
  Alcotest.(check int) "both reads hit the matview source" 2 (serves () - s0);
  (* A shaped query (non-trivial predicate) must bypass the source. *)
  let all_rows = R.Query_exec.count ~where:R.Predicate.True visits in
  Alcotest.(check int) "trivial predicate still matches the source" 40 all_rows;
  (* Mutate the table behind the view's back: the stamped epoch no
     longer matches, so reads must fall back to the cold path. *)
  PDB.apply_event places (mk_visit ~id:41 ~day:30 0);
  let s1 = serves () in
  Alcotest.(check int) "stale source falls back to a cold count" 41 (R.Query_exec.count visits);
  Alcotest.(check int) "the stale read did not serve" 0 (serves () - s1)

(* ---- Capture wiring -------------------------------------------------- *)

let test_capture_attach_views () =
  let capture, feed = Core.Capture.observer () in
  let registry = R.Matview.create () in
  let visits_view : (E.t, int, int) R.Matview.spec =
    {
      R.Matview.name = "capture_visits";
      init = (fun () -> 0);
      fold = (fun n ev -> match ev with E.Visit _ -> n + 1 | _ -> n);
      finalize = Fun.id;
    }
  in
  let h = R.Matview.register registry visits_view in
  Core.Capture.attach_views capture [ registry ];
  let _web, engine, _api, _trace = Core_fixtures.simulated ~seed:19 ~days:1 () in
  let events = Browser.Engine.event_log engine in
  List.iter feed events;
  Alcotest.(check int) "capture feeds every event through the registry" (List.length events)
    (R.Matview.events_seen registry);
  Alcotest.(check int) "the attached view counted the visits"
    (List.length (List.filter (function E.Visit _ -> true | _ -> false) events))
    (R.Matview.value h)

(* ---- crash recovery rebuilds the op-stream views --------------------- *)

let test_recovery_rebuilds_views () =
  Test_wal.with_temp_dir (fun dir ->
      with_metrics_on (fun () ->
          (* A huge group-commit trigger keeps the post-barrier tail
             buffered until close, so the armed tear hits exactly one
             flush: the durable prefix survives, the tail is torn. *)
          let config =
            {
              Seg.max_segment_bytes = 1 lsl 20;
              Seg.group_commit_ops = 1_024;
              Seg.group_commit_bytes = 1 lsl 20;
            }
          in
          let h = Seg.open_ ~config dir in
          let store = Core.Prov_store.create () in
          Seg.attach h store;
          let rng = Test_seed.prng ~salt:67 in
          Test_wal.drive store rng 60;
          Seg.durable h;
          Test_wal.drive store rng 30;
          Alcotest.(check bool) "the tail is pending at the crash point" true (Seg.pending h > 0);
          F.arm (Seg.active_sink h) [ F.Torn_final_write 3 ];
          Seg.close h;
          let incidents_before = Provkit_obs.Flight.recorded () in
          let registry, nodes, edges = SV.standard () in
          let r = Seg.recover ~views:registry ~dir () in
          Alcotest.(check bool) "the torn tail truncates recovery" true r.Seg.truncated;
          Alcotest.(check bool) "a strict prefix of the log survives" true
            (r.Seg.ops_applied < Seg.appended h);
          Alcotest.(check int) "exactly one flight incident for the torn tail" 1
            (Provkit_obs.Flight.recorded () - incidents_before);
          Alcotest.(check int) "views were refolded from the recovered image"
            (List.length (PL.ops_of_store r.Seg.store))
            (R.Matview.events_seen registry);
          Alcotest.(check int) "no view lags the registry" 0 (R.Matview.max_staleness registry);
          Alcotest.(check bool) "node kinds equal the cold relational group-count" true
            (R.Matview.value nodes = SV.cold_node_kinds r.Seg.store);
          Alcotest.(check bool) "edge kinds equal the cold relational group-count" true
            (R.Matview.value edges = SV.cold_edge_kinds r.Seg.store)))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_incremental_equals_cold;
    ("seeded >=1k-event stream: every prefix differential", `Quick, test_seeded_stream_every_prefix);
    ("window: edge-day inclusion and expiry", `Quick, test_window_edge);
    ("window: clock-skewed arrivals", `Quick, test_window_clock_skew);
    ("window: multi-week gap empties the ring", `Quick, test_window_empty_expiry);
    ("bloom: no false negatives across seeds", `Quick, test_bloom_no_false_negatives);
    ("bloom: FP rate bounded at 2x target", `Quick, test_bloom_fp_rate_bounded);
    ("bloom: remember = mem then add", `Quick, test_bloom_remember);
    ("query_exec: matview source serves and goes stale", `Quick, test_query_fastpath);
    ("capture: attach_views feeds registries", `Quick, test_capture_attach_views);
    ("wal: torn-tail recovery refolds the views", `Quick, test_recovery_rebuilds_views);
  ]
