(* Dataflow unit suite: must-reach over single function bodies — early
   raise exemption, if/match path splits, loops, and call-through
   descent into wrapper lambdas. *)

module Dataflow = Provkit_lint.Dataflow
module Source = Provkit_lint.Source

(* Parse [src], take the body of its sole toplevel [let], and ask
   whether every terminating path evaluates a call to [bump]. *)
let body_of src =
  match Source.parse_string ~filename:"test/dataflow_fixture.ml" src with
  | Error f -> Alcotest.failf "fixture does not parse: %s" (Provkit_lint.Finding.to_string f)
  | Ok structure -> (
    match List.rev structure with
    | { Parsetree.pstr_desc = Pstr_value (_, [ vb ]); _ } :: _ ->
      Dataflow.strip_params vb.Parsetree.pvb_expr
    | _ -> Alcotest.fail "fixture is not a single let binding")

let is_bump (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    Dataflow.last_component txt = "bump"
  | _ -> false

let must_reach src = Dataflow.must_reach ~matches:is_bump (body_of src)

let check msg expected src = Alcotest.(check bool) msg expected (must_reach src)

let straight_line () =
  check "sequencing reaches the call" true {|let f t = prepare t; bump t; done_ t|};
  check "no call at all" false {|let f t = prepare t; done_ t|}

let early_raise_exempt () =
  check "failwith branch owes nothing" true
    {|let f t = if broken t then failwith "corrupt" else (fix t; bump t)|};
  check "raise branch owes nothing" true
    {|let f t = match probe t with
      | Error e -> raise (Failure e)
      | Ok v -> consume v; bump t|};
  check "invalid_arg counts as raising" true
    {|let f t = if t < 0 then invalid_arg "f" else bump t|};
  check "domain raising helpers count" true
    {|let f t = if t < 0 then Errors.corrupt "neg" else bump t|}

let if_path_splits () =
  check "both branches bump" true {|let f t = if hot t then bump t else (log t; bump t)|};
  check "one branch misses" false {|let f t = if hot t then bump t else log t|};
  check "if without else misses" false {|let f t = if hot t then bump t|};
  check "bump in the condition still counts" true {|let f t = if bump t then go t else stop t|}

let match_path_splits () =
  check "all cases bump" true
    {|let f t = match t with Some x -> bump x | None -> (init (); bump t)|};
  check "one case misses" false {|let f t = match t with Some x -> bump x | None -> ()|};
  check "bump on the scrutinee counts" true {|let f t = match bump t with _ -> ()|}

let loops_are_may () =
  check "while body may not run" false {|let f t = while pending t do bump t done|};
  check "for body may not run" false {|let f t = for i = 0 to n t do bump t done|};
  check "bump after the loop counts" true
    {|let f t = (while pending t do drain t done); bump t|}

let lambdas () =
  check "plain lambda is deferred, not a path" false
    {|let f t = register (fun () -> bump t)|};
  check "with_span descends into its fun literal" true
    {|let f t = with_span "t" (fun () -> load t; bump t)|};
  check "protect descends too" true {|let f t = protect (fun () -> bump t) cleanup|};
  check "call-through with no bump stays false" false
    {|let f t = with_span "t" (fun () -> load t)|}

let try_uses_body_only () =
  check "bump in the try body counts" true {|let f t = try bump t with Not_found -> ()|};
  check "bump only in the handler does not" false
    {|let f t = try load t with Not_found -> bump t|}

let always_raises_detection () =
  let ar src = Dataflow.always_raises (body_of src) in
  Alcotest.(check bool) "failwith body" true (ar {|let f () = failwith "no"|});
  Alcotest.(check bool) "assert false body" true (ar {|let f () = assert false|});
  Alcotest.(check bool) "seq ending in raise" true (ar {|let f t = log t; raise Exit|});
  Alcotest.(check bool) "match with all-raising cases" true
    (ar {|let f t = match t with A -> failwith "a" | B -> invalid_arg "b"|});
  Alcotest.(check bool) "one returning case" false
    (ar {|let f t = match t with A -> failwith "a" | B -> ()|});
  Alcotest.(check bool) "plain body" false (ar {|let f t = t + 1|})

let suite =
  [
    Alcotest.test_case "straight-line sequencing" `Quick straight_line;
    Alcotest.test_case "raising paths are exempt" `Quick early_raise_exempt;
    Alcotest.test_case "if splits paths" `Quick if_path_splits;
    Alcotest.test_case "match splits paths" `Quick match_path_splits;
    Alcotest.test_case "loop bodies are may, not must" `Quick loops_are_may;
    Alcotest.test_case "lambdas: deferred unless called through" `Quick lambdas;
    Alcotest.test_case "try counts the body only" `Quick try_uses_body_only;
    Alcotest.test_case "always_raises classification" `Quick always_raises_detection;
  ]
