(* provd: the concurrent serving front-end.

   The property suite runs real multi-domain daemons (seeded via
   PROV_TEST_SEED) and pins the three contracts the design note makes:

   - snapshot isolation: every snapshot a reader can observe was built
     at a batch boundary, and equals — bit for bit — a serial replay of
     exactly the first [seq] events the daemon applied (no torn
     mid-batch state, ever);
   - serial equivalence: the final database and matview values are
     identical to applying the daemon's own ingest order on a single
     domain;
   - clean shutdown: closing the queue drains it completely (pushed =
     popped = ingested) and the WAL recovers to the same database. *)

module D = Daemon.Provd
module EQ = Daemon.Event_queue
module PL = Core.Prov_log
module Seg = Core.Prov_log.Segmented
module Database = Relstore.Database
module Matview = Relstore.Matview

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "provd_test" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

let cfg ?(wal_dir = None) ?(compact_every = 0) ?(events = 150) () =
  Test_seed.announce ();
  {
    D.sessions = 4;
    events_per_session = events;
    queue_capacity = 64;
    batch_size = 16;
    snapshot_every = 2;
    read_workers = 2;
    read_mix = 0.2;
    analyze_every = 4;
    compact_every;
    seed = Test_seed.value;
    wal_dir;
  }

(* Serial ground truth: apply [events] on this single domain through a
   fresh capture, exactly as the ingest loop does. *)
let serial_replay events =
  let capture, _feed = Core.Capture.observer () in
  let views, v_nodes, v_edges = Core.Store_views.standard () in
  let pending = ref [] in
  Core.Prov_store.set_observer (Core.Capture.store capture) (fun m ->
      pending := PL.op_of_mutation m :: !pending);
  Core.Capture.handle_batch capture events;
  Matview.feed_batch views (List.rev !pending);
  let db = Core.Prov_schema.to_database (Core.Capture.store capture) in
  (db, Matview.value v_nodes, Matview.value v_edges)

let db_bytes = Database.to_bytes

(* --- the queue ------------------------------------------------------- *)

let test_queue_fifo_and_close () =
  let q = EQ.create ~capacity:8 in
  List.iter (EQ.push q) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "fifo drain" [ 1; 2; 3 ] (EQ.pop_batch q ~max:3);
  Alcotest.(check int) "depth after partial drain" 2 (EQ.depth q);
  EQ.close q;
  Alcotest.(check (list int)) "drains the backlog after close" [ 4; 5 ]
    (EQ.pop_batch q ~max:10);
  Alcotest.(check (list int)) "closed and drained returns []" [] (EQ.pop_batch q ~max:10);
  Alcotest.check_raises "push after close" EQ.Closed (fun () -> EQ.push q 6);
  let s = EQ.stats q in
  Alcotest.(check int) "pushed" 5 s.EQ.pushed;
  Alcotest.(check int) "popped" 5 s.EQ.popped;
  Alcotest.(check int) "max depth" 5 s.EQ.max_depth

let test_queue_backpressure () =
  (* A producer domain pushing 100 items through a capacity-4 queue
     must block rather than overflow: the consumer sees every item, in
     order, and the high-water mark never exceeds the capacity. *)
  let q = EQ.create ~capacity:4 in
  let producer = Domain.spawn (fun () -> for i = 1 to 100 do EQ.push q i done) in
  let got = ref [] in
  let n = ref 0 in
  while !n < 100 do
    let batch = EQ.pop_batch q ~max:7 in
    got := List.rev_append batch !got;
    n := !n + List.length batch
  done;
  Domain.join producer;
  Alcotest.(check (list int)) "every item, in order" (List.init 100 (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check bool) "bounded backlog" true ((EQ.stats q).EQ.max_depth <= 4)

(* --- snapshot isolation ---------------------------------------------- *)

let test_snapshot_isolation () =
  let c = cfg () in
  let t = D.start c in
  (* Sample published snapshots from this (fifth) domain while the
     fleet runs; each retains its immutable database. *)
  let sampled = ref [] in
  let last_gen = ref 0 in
  for _ = 1 to 2_000_000 do
    match D.current_snapshot t with
    | Some s when s.D.generation <> !last_gen ->
      last_gen := s.D.generation;
      sampled := s :: !sampled
    | _ -> Domain.cpu_relax ()
  done;
  let report = D.wait t in
  let applied = Array.of_list report.D.r_applied in
  Alcotest.(check bool) "sampled at least one mid-run snapshot" true
    (List.length !sampled >= 1);
  List.iter
    (fun (s : D.snapshot) ->
      Alcotest.(check bool)
        (Printf.sprintf "snapshot seq %d is a batch boundary" s.D.seq)
        true
        (s.D.seq = 0 || List.mem s.D.seq report.D.r_batch_seqs);
      let prefix = Array.to_list (Array.sub applied 0 s.D.seq) in
      let serial_db, _, _ = serial_replay prefix in
      Alcotest.(check bool)
        (Printf.sprintf "snapshot seq %d equals serial replay bit-for-bit" s.D.seq)
        true
        (String.equal (db_bytes serial_db) (db_bytes s.D.db)))
    !sampled

(* --- serial equivalence ---------------------------------------------- *)

let test_serial_equivalence () =
  let c = cfg () in
  let report = D.run c in
  let expected =
    Daemon.Loadgen.total_events ~sessions:c.D.sessions ~events:c.D.events_per_session
  in
  Alcotest.(check int) "every generated event was ingested" expected report.D.r_events;
  Alcotest.(check int) "applied order has them all" expected
    (List.length report.D.r_applied);
  let serial_db, serial_nodes, serial_edges = serial_replay report.D.r_applied in
  (* Incremental views maintained batch-by-batch across domains equal
     the single-domain fold... *)
  Alcotest.(check bool) "matview node counts match serial" true
    (report.D.r_node_kinds = serial_nodes);
  Alcotest.(check bool) "matview edge counts match serial" true
    (report.D.r_edge_kinds = serial_edges);
  (* ... and the cold relational baseline agrees with both. *)
  Alcotest.(check bool) "serial db kind counts agree with the views" true
    (let nodes = Database.table serial_db Core.Prov_schema.node_table in
     let counts =
       Relstore.Query_exec.group_count ~by:"kind" nodes
       |> List.filter_map (fun (v, n) ->
              match v with Relstore.Value.Int k -> Some (k, n) | _ -> None)
       |> List.sort compare
     in
     counts = List.sort compare serial_nodes);
  Alcotest.(check bool) "final batch boundary covers everything" true
    (match List.rev report.D.r_batch_seqs with
    | last :: _ -> last = report.D.r_events
    | [] -> report.D.r_events = 0)

let test_final_snapshot_bitwise () =
  let c = cfg () in
  let t = D.start c in
  let report = D.wait t in
  match D.current_snapshot t with
  | None -> Alcotest.fail "daemon never published a snapshot"
  | Some s ->
    Alcotest.(check int) "final snapshot covers every event" report.D.r_events s.D.seq;
    let serial_db, _, _ = serial_replay report.D.r_applied in
    Alcotest.(check bool) "final snapshot equals serial replay bit-for-bit" true
      (String.equal (db_bytes serial_db) (db_bytes s.D.db))

(* --- clean shutdown and WAL parity ----------------------------------- *)

let test_shutdown_drains_and_wal_recovers () =
  with_temp_dir @@ fun dir ->
  let c = cfg ~wal_dir:(Some dir) () in
  let t = D.start c in
  D.register_health_check t;
  let report = D.wait t in
  let q = report.D.r_queue in
  Alcotest.(check int) "nothing left queued" 0 q.EQ.depth;
  Alcotest.(check int) "popped everything pushed" q.EQ.pushed q.EQ.popped;
  Alcotest.(check int) "ingested everything pushed" q.EQ.pushed report.D.r_events;
  Alcotest.(check bool) "WAL saw the op stream" true (report.D.r_wal_appended > 0);
  (* Recovery from the WAL directory must rebuild the exact store the
     final snapshot was taken from. *)
  let r = Seg.recover ~dir () in
  Alcotest.(check bool) "recovery read cleanly" false r.Seg.truncated;
  let recovered_db = Core.Prov_schema.to_database r.Seg.store in
  (match D.current_snapshot t with
  | None -> Alcotest.fail "no final snapshot"
  | Some s ->
    Alcotest.(check bool) "recovered database equals final snapshot" true
      (String.equal (db_bytes s.D.db) (db_bytes recovered_db)));
  (* The queue health check reads Ok once the daemon drained cleanly. *)
  let h = Provkit_obs.Health.run () in
  let cr =
    List.find
      (fun (c : Provkit_obs.Health.check_result) ->
        c.Provkit_obs.Health.cr_name = Provkit_obs.Names.health_daemon_queue)
      h.Provkit_obs.Health.h_checks
  in
  Alcotest.(check bool) "queue check is Ok" true
    (cr.Provkit_obs.Health.cr_verdict = Provkit_obs.Health.Ok);
  Provkit_obs.Health.unregister Provkit_obs.Names.health_daemon_queue

(* Compaction replaces the WAL prefix with a relational snapshot, and
   restoring that snapshot re-derives Instance/Same_time edges rather
   than replaying them, so edge rowids are assigned in a different
   order than a pure serial build.  Parity across compaction is
   therefore the row *multiset* per table, not the byte image — same
   standard the WAL suite's own compaction test applies, tightened
   from counts to full row contents. *)
let sorted_rows db =
  List.map
    (fun t ->
      let rows = ref [] in
      Relstore.Table.iter t (fun _id row -> rows := Array.to_list row :: !rows);
      (Relstore.Table.name t, List.sort compare !rows))
    (Database.tables db)

let test_background_compaction_parity () =
  with_temp_dir @@ fun dir ->
  let c = cfg ~wal_dir:(Some dir) ~compact_every:3 ~events:120 () in
  let report = D.run c in
  Alcotest.(check bool) "background jobs ran" true (report.D.r_jobs > 0);
  let r = Seg.recover ~dir () in
  let recovered_db = Core.Prov_schema.to_database r.Seg.store in
  let serial_db, _, _ = serial_replay report.D.r_applied in
  Alcotest.(check bool) "compacted WAL still replays to the serial rows" true
    (sorted_rows serial_db = sorted_rows recovered_db)

let test_reads_served () =
  let c = cfg () in
  let report = D.run c in
  Alcotest.(check bool) "read workers served queries" true (report.D.r_reads > 0);
  Alcotest.(check bool) "p99 is measured" true (report.D.r_read_p99_ns > 0);
  Alcotest.(check bool) "snapshots were published" true (report.D.r_snapshots > 0)

let suite =
  [
    Alcotest.test_case "queue fifo + close" `Quick test_queue_fifo_and_close;
    Alcotest.test_case "queue backpressure" `Quick test_queue_backpressure;
    Alcotest.test_case "snapshot isolation" `Slow test_snapshot_isolation;
    Alcotest.test_case "serial equivalence" `Quick test_serial_equivalence;
    Alcotest.test_case "final snapshot bitwise" `Quick test_final_snapshot_bitwise;
    Alcotest.test_case "shutdown drains + WAL parity" `Quick
      test_shutdown_drains_and_wal_recovers;
    Alcotest.test_case "background compaction parity" `Quick
      test_background_compaction_parity;
    Alcotest.test_case "reads served" `Quick test_reads_served;
  ]
