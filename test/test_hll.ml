(* HyperLogLog property suite: the NDV estimate must stay within the
   sketch's advertised error bound (1.04/sqrt m, here checked at three
   standard deviations) across seeds, the small range must degrade into
   near-exact linear counting, and merge must behave like set union. *)

module H = Provkit_obs.Hyperloglog
module Prng = Provkit_util.Prng

let check_within ~bound ~actual est msg =
  let err = Float.abs (est -. float_of_int actual) /. float_of_int actual in
  if err > bound then
    Alcotest.failf "%s: estimate %.1f vs true %d (rel err %.4f > %.4f)" msg est actual err
      bound

let seeds () =
  let base = Test_seed.value in
  Test_seed.announce ();
  [ base; base + 1; base + 2 ]

let test_ndv_within_bounds () =
  List.iter
    (fun seed ->
      let h = H.create () in
      let n = 20_000 in
      for i = 0 to n - 1 do
        H.add_string h (Printf.sprintf "s%d-item-%d" seed i)
      done;
      (* 3 sigma: a per-seed failure probability well under 1%. *)
      check_within
        ~bound:(3.0 *. H.error_bound h)
        ~actual:n (H.estimate h)
        (Printf.sprintf "seed %d" seed))
    (seeds ())

let test_duplicates_do_not_inflate () =
  let h = H.create () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    H.add_string h (Printf.sprintf "dup-%d" i)
  done;
  let first = H.estimate h in
  for _ = 1 to 3 do
    for i = 0 to n - 1 do
      H.add_string h (Printf.sprintf "dup-%d" i)
    done
  done;
  Alcotest.check (Alcotest.float 1e-9) "re-adding is a no-op" first (H.estimate h)

let test_small_range_linear_counting () =
  List.iter
    (fun seed ->
      let h = H.create () in
      let n = 200 in
      for i = 0 to n - 1 do
        H.add_string h (Printf.sprintf "small-%d-%d" seed i)
      done;
      (* Far below 2.5m the zero-register count is nearly exact. *)
      check_within ~bound:0.03 ~actual:n (H.estimate h)
        (Printf.sprintf "linear counting, seed %d" seed))
    (seeds ())

let test_merge_is_union () =
  let a = H.create () and b = H.create () in
  for i = 0 to 9_999 do
    H.add_string a (Printf.sprintf "u-%d" i)
  done;
  for i = 5_000 to 14_999 do
    H.add_string b (Printf.sprintf "u-%d" i)
  done;
  H.merge a b;
  check_within ~bound:(3.0 *. H.error_bound a) ~actual:15_000 (H.estimate a) "merged union"

let test_merge_precision_mismatch () =
  let a = H.create ~precision:10 () and b = H.create ~precision:12 () in
  Alcotest.check_raises "mismatch rejected"
    (Invalid_argument "Hyperloglog.merge: precision mismatch") (fun () -> H.merge a b)

let test_precision_validation () =
  List.iter
    (fun p ->
      match H.create ~precision:p () with
      | _ -> Alcotest.failf "precision %d accepted" p
      | exception Invalid_argument _ -> ())
    [ 3; 19; 0; -1 ];
  Alcotest.check Alcotest.int "default precision" 12 (H.precision (H.create ()));
  Alcotest.check Alcotest.int "register count" 4096 (H.registers (H.create ()))

let test_error_bound_scaling () =
  let coarse = H.create ~precision:4 () and fine = H.create ~precision:14 () in
  if H.error_bound fine >= H.error_bound coarse then
    Alcotest.fail "higher precision must tighten the bound";
  Alcotest.check (Alcotest.float 1e-9) "p=14 bound"
    (1.04 /. sqrt 16384.0) (H.error_bound fine)

let test_reset_and_serialized () =
  let h = H.create ~precision:8 () in
  for i = 0 to 999 do
    H.add_string h (string_of_int i)
  done;
  let s = H.serialized h in
  Alcotest.check Alcotest.int "serialized length" (256 + 1) (String.length s);
  Alcotest.check Alcotest.int "precision byte" 8 (Char.code s.[0]);
  H.reset h;
  Alcotest.check (Alcotest.float 1e-9) "empty after reset" 0.0 (H.estimate h);
  (* All-zero registers serialize as zero bytes after the header. *)
  let s0 = H.serialized h in
  String.iteri (fun i c -> if i > 0 && c <> '\000' then Alcotest.fail "dirty register") s0

let test_add_hash_uniform_stream () =
  (* Feeding raw splitmix output through add_hash directly exercises the
     register indexing without the string hash. *)
  let h = H.create () in
  let rng = Prng.create (Test_seed.value + 9) in
  let n = 30_000 in
  let distinct = Hashtbl.create n in
  while Hashtbl.length distinct < n do
    Hashtbl.replace distinct (Prng.bits64 rng) ()
  done;
  Hashtbl.iter (fun k () -> H.add_hash h k) distinct;
  check_within ~bound:(3.0 *. H.error_bound h) ~actual:n (H.estimate h) "raw hashes"

let suite =
  [
    Alcotest.test_case "ndv within 3-sigma bounds over 3 seeds" `Quick
      test_ndv_within_bounds;
    Alcotest.test_case "duplicates do not inflate" `Quick test_duplicates_do_not_inflate;
    Alcotest.test_case "small range linear counting" `Quick
      test_small_range_linear_counting;
    Alcotest.test_case "merge estimates the union" `Quick test_merge_is_union;
    Alcotest.test_case "merge rejects precision mismatch" `Quick
      test_merge_precision_mismatch;
    Alcotest.test_case "precision validation" `Quick test_precision_validation;
    Alcotest.test_case "error bound scaling" `Quick test_error_bound_scaling;
    Alcotest.test_case "reset and serialization" `Quick test_reset_and_serialized;
    Alcotest.test_case "raw 64-bit hash stream" `Quick test_add_hash_uniform_stream;
  ]
