(* Durable telemetry journal: encode/replay round trips, torn-tail
   recovery (any byte-level truncation yields a clean prefix, exactly
   one deduplicated flight incident per damaged file), and the wiring
   into the timeseries observer / alert transition hook. *)

module TL = Provkit_obs.Telemetry_log
module Ts = Provkit_obs.Timeseries
module Alert = Provkit_obs.Alert
module Metrics = Provkit_obs.Metrics
module Flight = Provkit_obs.Flight

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () -> output_string oc s

let sample_point i =
  {
    Ts.pt_ns = Int64.of_int (1_000_000 * (i + 1));
    pt_snap =
      {
        Metrics.snap_counters = [ ("test.journal.events", 100 * i); ("test.journal.ops", i) ];
        snap_gauges = [ ("test.journal.level", 0.5 +. float_of_int i); ("test.journal.inf", infinity) ];
        snap_histograms =
          [
            ( "test.journal.lat",
              {
                Metrics.hs_count = 10 + i;
                hs_sum = 12345.5;
                hs_min = 17;
                hs_max = 9_000_000;
                hs_p50 = 100.0;
                hs_p95 = 5_000.0;
                hs_p99 = 90_000.0 +. float_of_int i;
              } );
          ];
      };
  }

let sample_transition i =
  {
    Alert.tr_seq = i + 1;
    tr_rule = "alert.test.journal";
    tr_kind = (if i mod 2 = 0 then Alert.Fire else Alert.Resolve);
    tr_ns = Int64.of_int (2_000_000 * (i + 1));
    tr_value = 3.25 +. float_of_int i;
    tr_severity = Alert.Warning;
  }

(* Write a journal of [n_points] points and [n_trs] transitions and
   return its path (inside [dir]). *)
let write_journal dir ?(n_points = 4) ?(n_trs = 3) () =
  let path = Filename.concat dir "telemetry.ptj" in
  let t = TL.open_ ~path in
  for i = 0 to n_points - 1 do
    TL.append_point t (sample_point i)
  done;
  for i = 0 to n_trs - 1 do
    TL.append_transition t (sample_transition i)
  done;
  TL.close t;
  path

let rec is_prefix prefix l =
  match (prefix, l) with
  | [], _ -> true
  | x :: ps, y :: ys -> x = y && is_prefix ps ys
  | _ :: _, [] -> false

let test_roundtrip () =
  Test_wal.with_temp_dir @@ fun dir ->
  let path = write_journal dir () in
  let rp = TL.replay ~path in
  Alcotest.(check bool) "not truncated" false rp.TL.rp_truncated;
  Alcotest.(check int) "all frames decoded" 7 rp.TL.rp_records;
  Alcotest.(check int) "clean prefix is the whole file" (String.length (read_file path))
    rp.TL.rp_clean_bytes;
  Alcotest.(check bool) "points round-trip" true
    (rp.TL.rp_points = List.init 4 sample_point);
  Alcotest.(check bool) "transitions round-trip" true
    (rp.TL.rp_transitions = List.init 3 sample_transition);
  (* Reopening appends after the existing clean frames. *)
  let t = TL.open_ ~path in
  TL.append_point t (sample_point 9);
  TL.close t;
  let rp = TL.replay ~path in
  Alcotest.(check int) "appended frame visible" 8 rp.TL.rp_records;
  Alcotest.(check bool) "appended point last" true
    (List.nth rp.TL.rp_points 4 = sample_point 9)

let test_missing_file_reads_empty () =
  Test_wal.with_temp_dir @@ fun dir ->
  let rp = TL.replay ~path:(Filename.concat dir "nope.ptj") in
  Alcotest.(check int) "no records" 0 rp.TL.rp_records;
  Alcotest.(check bool) "not truncated" false rp.TL.rp_truncated

let prop_any_truncation_recovers_prefix =
  QCheck.Test.make ~name:"any journal truncation yields a clean prefix" ~count:80
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 10_000))
    (fun cut_seed ->
      Test_wal.with_temp_dir @@ fun dir ->
      let path = write_journal dir () in
      let raw = read_file path in
      let full = TL.replay ~path in
      let cut = cut_seed mod (String.length raw + 1) in
      let torn = Filename.concat dir "torn.ptj" in
      write_file torn (String.sub raw 0 cut);
      let rp = TL.replay ~path:torn in
      (* The clean prefix never exceeds the cut, the recovered records
         are a prefix of the full journal's, and the torn flag is set
         exactly when bytes beyond the clean prefix were dropped. *)
      rp.TL.rp_clean_bytes <= cut
      && rp.TL.rp_truncated = (cut > rp.TL.rp_clean_bytes)
      && is_prefix rp.TL.rp_points full.TL.rp_points
      && is_prefix rp.TL.rp_transitions full.TL.rp_transitions
      && rp.TL.rp_records
         = List.length rp.TL.rp_points + List.length rp.TL.rp_transitions)

let test_torn_tail_flight_dedup () =
  Test_wal.with_temp_dir @@ fun dir ->
  Flight.clear ();
  let path = write_journal dir () in
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw - 3));
  let recorded0 = Flight.recorded () in
  let truncations0 =
    Metrics.counter_value Provkit_obs.Names.telemetry_journal_truncations
  in
  let rp1 = TL.replay ~path in
  Alcotest.(check bool) "tail detected" true rp1.TL.rp_truncated;
  (* Replaying the same damaged file again must not consume another
     flight ring slot — same dedup key (the path), repeats counted. *)
  let rp2 = TL.replay ~path in
  Alcotest.(check bool) "still torn" true rp2.TL.rp_truncated;
  let key = "telemetry.journal.truncated:" ^ path in
  (match
     List.filter (fun (i : Flight.incident) -> i.Flight.dedup = Some key)
       (Flight.incidents ())
   with
  | [ i ] -> Alcotest.(check int) "second replay folded in" 1 i.Flight.repeats
  | l -> Alcotest.failf "expected 1 deduped incident, got %d" (List.length l));
  Alcotest.(check int) "both occurrences counted" 2 (Flight.recorded () - recorded0);
  Alcotest.(check int) "truncation metric ticked twice" 2
    (Metrics.counter_value Provkit_obs.Names.telemetry_journal_truncations - truncations0)

let test_open_recovers_then_appends () =
  Test_wal.with_temp_dir @@ fun dir ->
  let path = write_journal dir () in
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw - 3));
  let before = TL.replay ~path in
  (* open_ cuts the torn tail: the file on disk is the clean prefix
     again, and appends land after it. *)
  let t = TL.open_ ~path in
  Alcotest.(check int) "tail cut on open" before.TL.rp_clean_bytes
    (String.length (read_file path));
  TL.append_point t (sample_point 7);
  TL.close t;
  let rp = TL.replay ~path in
  Alcotest.(check bool) "clean after recovery" false rp.TL.rp_truncated;
  Alcotest.(check int) "prefix plus the new frame" (before.TL.rp_records + 1)
    rp.TL.rp_records;
  Alcotest.(check bool) "recovered points kept" true
    (is_prefix before.TL.rp_points rp.TL.rp_points)

let test_replay_into_uses_push () =
  Test_wal.with_temp_dir @@ fun dir ->
  let path = write_journal dir ~n_points:5 ~n_trs:0 () in
  let notified = ref 0 in
  Ts.add_observer (fun _ -> incr notified);
  Fun.protect ~finally:Ts.clear_observers @@ fun () ->
  let ring = Ts.create ~capacity:3 () in
  let rp = TL.replay_into ring ~path in
  Alcotest.(check int) "five points decoded" 5 (List.length rp.TL.rp_points);
  Alcotest.(check int) "ring keeps the newest up to capacity" 3 (Ts.length ring);
  Alcotest.(check bool) "newest three in order" true
    (Ts.points ring = [ sample_point 2; sample_point 3; sample_point 4 ]);
  Alcotest.(check int) "observers never re-triggered" 0 !notified

let test_attach_wires_stream_and_transitions () =
  Test_wal.with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "live.ptj" in
  let saved = Metrics.enabled () in
  Metrics.set_enabled true;
  Alert.reset ();
  Fun.protect
    ~finally:(fun () ->
      Ts.clear_observers ();
      Alert.clear_transition_hooks ();
      Alert.reset ();
      Metrics.set_enabled saved)
  @@ fun () ->
  let t = TL.open_ ~path in
  TL.attach t;
  Alert.register
    {
      Alert.r_id = "alert.test.journal";
      r_signal = Alert.Gauge_value "test.journal.live";
      r_condition = Alert.Above 1.0;
      r_for_ns = 0L;
      r_severity = Alert.Info;
      r_describe = "journal wiring";
    };
  let ring = Ts.create ~capacity:8 () in
  ignore (Ts.record ~now_ns:1_000L ring);
  ignore (Ts.record ~now_ns:2_000L ring);
  (* Drive one live fire through the engine's own feed. *)
  let pt v ns =
    {
      Ts.pt_ns = ns;
      pt_snap =
        { Metrics.snap_counters = []; snap_gauges = [ ("test.journal.live", v) ];
          snap_histograms = [] };
    }
  in
  Alert.feed (pt 0.0 3_000L);
  Alert.feed (pt 9.0 4_000L);
  TL.close t;
  let rp = TL.replay ~path in
  Alcotest.(check int) "both recorded points journaled" 2 (List.length rp.TL.rp_points);
  (match rp.TL.rp_transitions with
  | [ tr ] ->
    Alcotest.(check string) "fire journaled" "alert.test.journal" tr.Alert.tr_rule;
    Alcotest.(check bool) "kind fire" true (tr.Alert.tr_kind = Alert.Fire)
  | l -> Alcotest.failf "expected 1 journaled transition, got %d" (List.length l));
  (* And the journaled history replays into the engine quietly. *)
  Alert.reset ();
  Alert.register
    {
      Alert.r_id = "alert.test.journal";
      r_signal = Alert.Gauge_value "test.journal.live";
      r_condition = Alert.Above 1.0;
      r_for_ns = 0L;
      r_severity = Alert.Info;
      r_describe = "journal wiring";
    };
  Alert.replay_history rp.TL.rp_points;
  Alcotest.(check int) "history primed the engine" 2
    (match Alert.find "alert.test.journal" with
    | Some st -> if Int64.equal st.Alert.st_last_ns 0L then 0 else 2
    | None -> 0)

let suite =
  [
    Alcotest.test_case "round trip through a file" `Quick test_roundtrip;
    Alcotest.test_case "missing file reads empty" `Quick test_missing_file_reads_empty;
    QCheck_alcotest.to_alcotest prop_any_truncation_recovers_prefix;
    Alcotest.test_case "torn tail dedups to one flight slot" `Quick
      test_torn_tail_flight_dedup;
    Alcotest.test_case "open recovers the tail then appends" `Quick
      test_open_recovers_then_appends;
    Alcotest.test_case "replay_into pushes without re-notifying" `Quick
      test_replay_into_uses_push;
    Alcotest.test_case "attach journals points and transitions" `Quick
      test_attach_wires_stream_and_transitions;
  ]
