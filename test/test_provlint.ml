(* provlint: per-check fixtures (one flagging, one suppressed), the
   obs-names cross-file checks on a scratch tree, grep parity with the
   retired tools/obs_lint.sh, and the integration guarantee that the
   real tree is clean. *)

module Driver = Provkit_lint.Driver
module Finding = Provkit_lint.Finding
module Registry = Provkit_lint.Registry

let lint ?checks ~filename source = Driver.lint_source ?checks ~filename source

let count check findings =
  List.length (List.filter (fun f -> f.Finding.check = check) findings)

let check_count msg check expected findings =
  Alcotest.(check int) msg expected (count check findings)

(* --- codec-symmetry -------------------------------------------------- *)

let codec_flagging () =
  let src =
    {|
let encode_foo buf = Buffer.add_char buf '\001'
let decode_foo s = match s.[0] with '\002' -> 2 | _ -> 0
let write_orphan buf = Buffer.add_char buf '\002'
|}
  in
  let fs = lint ~filename:"lib/relstore/codec.ml" src in
  check_count "skewed tag + missing reader" "codec-symmetry" 2 fs;
  Alcotest.(check bool)
    "mentions the skewed tag" true
    (List.exists
       (fun f -> Provkit_util.Strutil.contains_substring ~needle:"'\\001'" f.Finding.message)
       fs)

let codec_suppressed () =
  let src =
    {|
let encode_foo buf = Buffer.add_char buf '\001' [@@provlint.allow "codec-symmetry"]
let decode_foo s = match s.[0] with '\002' -> 2 | _ -> 0
let write_orphan buf = Buffer.add_char buf '\002' [@@provlint.allow "codec-symmetry"]
|}
  in
  check_count "suppressed" "codec-symmetry" 0 (lint ~filename:"lib/relstore/codec.ml" src)

let codec_only_in_codec_files () =
  let src = {|let encode_foo buf = Buffer.add_char buf '\001'|} in
  check_count "non-codec file exempt" "codec-symmetry" 0 (lint ~filename:"lib/foo.ml" src)

(* --- no-wildcard-match ----------------------------------------------- *)

let match_flagging () =
  let src =
    {|
let f e = match e with Browser.Event.Visit _ -> 1 | _ -> 0
let g t = match t with Browser.Transition.Link -> 1 | _ -> 0
let h k = match k with Prov_edge.Redirect -> 1 | _ -> 0
|}
  in
  check_count "three wildcards over critical variants" "no-wildcard-match" 3
    (lint ~filename:"lib/foo.ml" src)

let match_suppressed () =
  let src =
    {|
let f e = (match e with Browser.Event.Visit _ -> 1 | _ -> 0) [@provlint.allow "no-wildcard-match"]
|}
  in
  check_count "suppressed" "no-wildcard-match" 0 (lint ~filename:"lib/foo.ml" src)

let match_other_variants_free () =
  let src = {|let f o = match o with Some x -> x | _ -> 0|} in
  check_count "non-critical variants exempt" "no-wildcard-match" 0
    (lint ~filename:"lib/foo.ml" src)

(* --- io-discipline --------------------------------------------------- *)

let io_flagging () =
  let src = {|let now () = Unix.gettimeofday ()|} in
  check_count "Unix in lib/" "io-discipline" 1 (lint ~filename:"lib/core/foo.ml" src)

let io_suppressed () =
  let src = {|let now () = Unix.gettimeofday () [@@provlint.allow "io-discipline"]|} in
  check_count "suppressed" "io-discipline" 0 (lint ~filename:"lib/core/foo.ml" src)

let io_sanctioned_layers () =
  let src = {|let now () = Unix.gettimeofday ()|} in
  check_count "bin/ exempt" "io-discipline" 0 (lint ~filename:"bin/tool.ml" src);
  check_count "Timing exempt" "io-discipline" 0 (lint ~filename:"lib/util/timing.ml" src);
  check_count "Faulty_io exempt" "io-discipline" 0
    (lint ~filename:"lib/util/faulty_io.ml" src)

(* --- banned-constructs ----------------------------------------------- *)

let banned_flagging () =
  let src =
    {|
let f x = Obj.magic x
let g h = try h () with _ -> 0
let p () = Printf.printf "hi"
let eq a = a = Value.Null
|}
  in
  check_count "magic + catch-all + printf + poly =" "banned-constructs" 4
    (lint ~filename:"lib/foo.ml" src)

let banned_suppressed () =
  let src =
    {|
let f x = (Obj.magic x [@provlint.allow "banned-constructs"])
let g h = (try h () with _ -> 0) [@provlint.allow "banned-constructs"]
|}
  in
  check_count "suppressed" "banned-constructs" 0 (lint ~filename:"lib/foo.ml" src)

let banned_bin_printf_ok () =
  let src = {|let p () = Printf.printf "hi"|} in
  check_count "printf fine in bin/" "banned-constructs" 0 (lint ~filename:"bin/tool.ml" src)

(* --- obs-names (cross-file, on a scratch tree) ----------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let ensure_dir path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

(* Scratch trees live under one temp directory, removed at exit — the
   fixtures are build artifacts of the test run, never committed. *)
let scratch_root =
  lazy
    (let root = Filename.temp_file "provlint_fixture" "" in
     Sys.remove root;
     Sys.mkdir root 0o700;
     at_exit (fun () ->
         let rec rm path =
           if Sys.is_directory path then begin
             Array.iter (fun entry -> rm (Filename.concat path entry)) (Sys.readdir path);
             Sys.rmdir path
           end
           else Sys.remove path
         in
         try rm root with Sys_error _ -> ());
     root)

let scratch_tree tag files =
  let root = Filename.concat (Lazy.force scratch_root) ("provlint_fixture_" ^ tag) in
  ensure_dir root;
  List.iter
    (fun (rel, contents) ->
      let rec mkdirs dir =
        if dir <> root && dir <> "." && dir <> "/" then begin
          mkdirs (Filename.dirname dir);
          ensure_dir dir
        end
      in
      let path = Filename.concat root rel in
      mkdirs (Filename.dirname path);
      write_file path contents)
    files;
  root

let names_fixture =
  {|
let used = "prov.fixture.used"
let unused = "prov.fixture.unused"
let span_used = "fixture.span.used"
let span_unused = "fixture.span.unused"
|}

let obs_flagging () =
  let root =
    scratch_tree "obs_flag"
      [
        ("lib/obs/names.ml", names_fixture);
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let stray = "prov.fixture.stray"
let f body = Obs.Trace.with_span "fixture.span.stray" body
let g () = Obs.Trace.record Obs.Names.span_used 1
|} );
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root [ "lib/obs/names.ml"; "lib/user.ml" ]
  in
  check_count "stray metric + unused metric + stray span + unused span" "obs-names" 4 fs;
  let has needle =
    List.exists (fun f -> Provkit_util.Strutil.contains_substring ~needle f.Finding.message) fs
  in
  Alcotest.(check bool) "flags the stray literal" true (has "prov.fixture.stray");
  Alcotest.(check bool) "flags the unused registration" true (has "prov.fixture.unused");
  Alcotest.(check bool) "flags the stray span name" true (has "fixture.span.stray");
  Alcotest.(check bool) "flags the unused span" true (has "fixture.span.unused")

let obs_suppressed () =
  let root =
    scratch_tree "obs_ok"
      [
        ("lib/obs/names.ml", names_fixture);
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let stray = "prov.fixture.stray" [@@provlint.allow "obs-names"]
let f body = Obs.Trace.with_span "fixture.span.used" body
let g () = Obs.Trace.record Obs.Names.span_unused 1
|} );
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root [ "lib/obs/names.ml"; "lib/user.ml" ]
  in
  check_count "suppressed + all registered names used" "obs-names" 0 fs

(* bin/ keeps the freedom to improvise span names: CLI phase spans like
   "workload.simulate" are not library API, so only lib/ sites must use
   registered constants. *)
let obs_span_bin_exempt () =
  let root =
    scratch_tree "obs_span_bin"
      [
        ("lib/obs/names.ml", names_fixture);
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let f body = Obs.Trace.with_span "fixture.span.used" body
let g () = Obs.Trace.record Obs.Names.span_unused 1
|} );
        ("bin/tool.ml", {|let f body = Obs.Trace.with_span "cli.adhoc.phase" body|});
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root
      [ "lib/obs/names.ml"; "lib/user.ml"; "bin/tool.ml" ]
  in
  check_count "ad-hoc span literal in bin/ is fine" "obs-names" 0 fs

(* --- grep parity with the retired tools/obs_lint.sh ------------------ *)

(* The old gate grepped lib/ and bin/ for string literals shaped like
   metric names and required each to be declared in lib/obs/names.ml.
   Reproduce that textual scan here and assert every name it finds
   undeclared is also reported by the AST check — provlint must be a
   superset of the grep before the grep can be deleted. *)

let quoted_literals text =
  let out = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && text.[!j] <> '"' do
        if text.[!j] = '\\' then incr j;
        incr j
      done;
      if !j <= n then out := String.sub text start (min !j n - start) :: !out;
      i := !j + 1
    end
    else incr i
  done;
  List.rev !out

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let grep_style_undeclared ~root files =
  let metric_literals rel =
    List.filter Registry.is_metric_literal (quoted_literals (read_whole (Filename.concat root rel)))
  in
  let declared = metric_literals "lib/obs/names.ml" in
  List.concat_map
    (fun rel ->
      if Registry.is_metric_names_file rel then []
      else List.filter (fun s -> not (List.mem s declared)) (metric_literals rel))
    files

let grep_parity () =
  let files =
    [
      ("lib/obs/names.ml", names_fixture);
      ( "lib/user.ml",
        {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let a = "prov.fixture.stray"
let b = "prov.fixture.also_stray"
|} );
    ]
  in
  let root = scratch_tree "obs_parity" files in
  let rels = List.map fst files in
  let grep_found = grep_style_undeclared ~root rels in
  Alcotest.(check int) "grep finds both strays" 2 (List.length grep_found);
  let provlint_found = Driver.lint_files ~checks:[ "obs-names" ] ~root rels in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "provlint also reports %s" name)
        true
        (List.exists
           (fun f -> Provkit_util.Strutil.contains_substring ~needle:name f.Finding.message)
           provlint_found))
    grep_found

(* --- rendering ------------------------------------------------------- *)

let json_rendering () =
  let fs = lint ~filename:"lib/foo.ml" {|let f x = Obj.magic x|} in
  let json = Driver.render_json fs in
  Alcotest.(check bool) "names the check" true
    (Provkit_util.Strutil.contains_substring ~needle:{|"check":"banned-constructs"|} json);
  Alcotest.(check bool) "one object line per finding" true
    (Provkit_util.Strutil.contains_substring ~needle:"{\"check\"" json);
  Alcotest.(check string) "empty list renders as []" "[]" (Driver.render_json [])

let parse_error_reported () =
  let fs = lint ~filename:"lib/foo.ml" "let f = (" in
  check_count "unparseable file is itself a finding" "parse-error" 1 fs

(* --- integration: the real tree is clean ----------------------------- *)

let rec find_repo_root dir depth =
  if depth > 6 then None
  else if Sys.file_exists (Filename.concat dir "lib/obs/names.ml") then Some dir
  else find_repo_root (Filename.dirname dir) (depth + 1)

let repo_clean () =
  match find_repo_root (Sys.getcwd ()) 0 with
  | None -> Alcotest.fail "could not locate the source tree from the test cwd"
  | Some root ->
    let files = Driver.tree_files ~root in
    Alcotest.(check bool) "scans a real tree" true (List.length files > 50);
    Alcotest.(check bool) "sees bin/provctl.ml" true (List.mem "bin/provctl.ml" files);
    let findings = Driver.lint_tree ~root () in
    Alcotest.(check string) "zero findings on the shipped tree" ""
      (Driver.render_text findings)

let suite =
  [
    Alcotest.test_case "codec-symmetry flags" `Quick codec_flagging;
    Alcotest.test_case "codec-symmetry suppressed" `Quick codec_suppressed;
    Alcotest.test_case "codec-symmetry scoped to codecs" `Quick codec_only_in_codec_files;
    Alcotest.test_case "no-wildcard-match flags" `Quick match_flagging;
    Alcotest.test_case "no-wildcard-match suppressed" `Quick match_suppressed;
    Alcotest.test_case "no-wildcard-match scoped" `Quick match_other_variants_free;
    Alcotest.test_case "io-discipline flags" `Quick io_flagging;
    Alcotest.test_case "io-discipline suppressed" `Quick io_suppressed;
    Alcotest.test_case "io-discipline sanctioned layers" `Quick io_sanctioned_layers;
    Alcotest.test_case "banned-constructs flags" `Quick banned_flagging;
    Alcotest.test_case "banned-constructs suppressed" `Quick banned_suppressed;
    Alcotest.test_case "banned-constructs bin printf" `Quick banned_bin_printf_ok;
    Alcotest.test_case "obs-names flags" `Quick obs_flagging;
    Alcotest.test_case "obs-names suppressed" `Quick obs_suppressed;
    Alcotest.test_case "obs-names span bin exempt" `Quick obs_span_bin_exempt;
    Alcotest.test_case "obs-names grep parity" `Quick grep_parity;
    Alcotest.test_case "json rendering" `Quick json_rendering;
    Alcotest.test_case "parse errors surface" `Quick parse_error_reported;
    Alcotest.test_case "repository is clean" `Quick repo_clean;
  ]
