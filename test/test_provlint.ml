(* provlint: per-check fixtures (one flagging, one suppressed), the
   obs-names cross-file checks on a scratch tree, grep parity with the
   retired tools/obs_lint.sh, and the integration guarantee that the
   real tree is clean. *)

module Driver = Provkit_lint.Driver
module Finding = Provkit_lint.Finding
module Registry = Provkit_lint.Registry

let lint ?checks ~filename source = Driver.lint_source ?checks ~filename source

let count check findings =
  List.length (List.filter (fun f -> f.Finding.check = check) findings)

let check_count msg check expected findings =
  Alcotest.(check int) msg expected (count check findings)

(* --- codec-symmetry -------------------------------------------------- *)

let codec_flagging () =
  let src =
    {|
let encode_foo buf = Buffer.add_char buf '\001'
let decode_foo s = match s.[0] with '\002' -> 2 | _ -> 0
let write_orphan buf = Buffer.add_char buf '\002'
|}
  in
  let fs = lint ~filename:"lib/relstore/codec.ml" src in
  check_count "skewed tag + missing reader" "codec-symmetry" 2 fs;
  Alcotest.(check bool)
    "mentions the skewed tag" true
    (List.exists
       (fun f -> Provkit_util.Strutil.contains_substring ~needle:"'\\001'" f.Finding.message)
       fs)

let codec_suppressed () =
  let src =
    {|
let encode_foo buf = Buffer.add_char buf '\001' [@@provlint.allow "codec-symmetry"]
let decode_foo s = match s.[0] with '\002' -> 2 | _ -> 0
let write_orphan buf = Buffer.add_char buf '\002' [@@provlint.allow "codec-symmetry"]
|}
  in
  check_count "suppressed" "codec-symmetry" 0 (lint ~filename:"lib/relstore/codec.ml" src)

let codec_only_in_codec_files () =
  let src = {|let encode_foo buf = Buffer.add_char buf '\001'|} in
  check_count "non-codec file exempt" "codec-symmetry" 0 (lint ~filename:"lib/foo.ml" src)

(* --- no-wildcard-match ----------------------------------------------- *)

let match_flagging () =
  let src =
    {|
let f e = match e with Browser.Event.Visit _ -> 1 | _ -> 0
let g t = match t with Browser.Transition.Link -> 1 | _ -> 0
let h k = match k with Prov_edge.Redirect -> 1 | _ -> 0
|}
  in
  check_count "three wildcards over critical variants" "no-wildcard-match" 3
    (lint ~filename:"lib/foo.ml" src)

let match_suppressed () =
  let src =
    {|
let f e = (match e with Browser.Event.Visit _ -> 1 | _ -> 0) [@provlint.allow "no-wildcard-match"]
|}
  in
  check_count "suppressed" "no-wildcard-match" 0 (lint ~filename:"lib/foo.ml" src)

let match_other_variants_free () =
  let src = {|let f o = match o with Some x -> x | _ -> 0|} in
  check_count "non-critical variants exempt" "no-wildcard-match" 0
    (lint ~filename:"lib/foo.ml" src)

(* --- io-discipline --------------------------------------------------- *)

let io_flagging () =
  let src = {|let now () = Unix.gettimeofday ()|} in
  check_count "Unix in lib/" "io-discipline" 1 (lint ~filename:"lib/core/foo.ml" src)

let io_suppressed () =
  let src = {|let now () = Unix.gettimeofday () [@@provlint.allow "io-discipline"]|} in
  check_count "suppressed" "io-discipline" 0 (lint ~filename:"lib/core/foo.ml" src)

let io_sanctioned_layers () =
  let src = {|let now () = Unix.gettimeofday ()|} in
  check_count "bin/ exempt" "io-discipline" 0 (lint ~filename:"bin/tool.ml" src);
  check_count "Timing exempt" "io-discipline" 0 (lint ~filename:"lib/util/timing.ml" src);
  check_count "Faulty_io exempt" "io-discipline" 0
    (lint ~filename:"lib/util/faulty_io.ml" src)

(* --- banned-constructs ----------------------------------------------- *)

let banned_flagging () =
  let src =
    {|
let f x = Obj.magic x
let g h = try h () with _ -> 0
let p () = Printf.printf "hi"
let eq a = a = Value.Null
|}
  in
  check_count "magic + catch-all + printf + poly =" "banned-constructs" 4
    (lint ~filename:"lib/foo.ml" src)

let banned_suppressed () =
  let src =
    {|
let f x = (Obj.magic x [@provlint.allow "banned-constructs"])
let g h = (try h () with _ -> 0) [@provlint.allow "banned-constructs"]
|}
  in
  check_count "suppressed" "banned-constructs" 0 (lint ~filename:"lib/foo.ml" src)

let banned_bin_printf_ok () =
  let src = {|let p () = Printf.printf "hi"|} in
  check_count "printf fine in bin/" "banned-constructs" 0 (lint ~filename:"bin/tool.ml" src)

(* --- obs-names (cross-file, on a scratch tree) ----------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let ensure_dir path = if not (Sys.file_exists path) then Sys.mkdir path 0o755

(* Scratch trees live under one temp directory, removed at exit — the
   fixtures are build artifacts of the test run, never committed. *)
let scratch_root =
  lazy
    (let root = Filename.temp_file "provlint_fixture" "" in
     Sys.remove root;
     Sys.mkdir root 0o700;
     at_exit (fun () ->
         let rec rm path =
           if Sys.is_directory path then begin
             Array.iter (fun entry -> rm (Filename.concat path entry)) (Sys.readdir path);
             Sys.rmdir path
           end
           else Sys.remove path
         in
         try rm root with Sys_error _ -> ());
     root)

let scratch_tree tag files =
  let root = Filename.concat (Lazy.force scratch_root) ("provlint_fixture_" ^ tag) in
  ensure_dir root;
  List.iter
    (fun (rel, contents) ->
      let rec mkdirs dir =
        if dir <> root && dir <> "." && dir <> "/" then begin
          mkdirs (Filename.dirname dir);
          ensure_dir dir
        end
      in
      let path = Filename.concat root rel in
      mkdirs (Filename.dirname path);
      write_file path contents)
    files;
  root

let names_fixture =
  {|
let used = "prov.fixture.used"
let unused = "prov.fixture.unused"
let span_used = "fixture.span.used"
let span_unused = "fixture.span.unused"
|}

let obs_flagging () =
  let root =
    scratch_tree "obs_flag"
      [
        ("lib/obs/names.ml", names_fixture);
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let stray = "prov.fixture.stray"
let f body = Obs.Trace.with_span "fixture.span.stray" body
let g () = Obs.Trace.record Obs.Names.span_used 1
|} );
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root [ "lib/obs/names.ml"; "lib/user.ml" ]
  in
  check_count "stray metric + unused metric + stray span + unused span" "obs-names" 4 fs;
  let has needle =
    List.exists (fun f -> Provkit_util.Strutil.contains_substring ~needle f.Finding.message) fs
  in
  Alcotest.(check bool) "flags the stray literal" true (has "prov.fixture.stray");
  Alcotest.(check bool) "flags the unused registration" true (has "prov.fixture.unused");
  Alcotest.(check bool) "flags the stray span name" true (has "fixture.span.stray");
  Alcotest.(check bool) "flags the unused span" true (has "fixture.span.unused")

let obs_suppressed () =
  let root =
    scratch_tree "obs_ok"
      [
        ("lib/obs/names.ml", names_fixture);
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let stray = "prov.fixture.stray" [@@provlint.allow "obs-names"]
let f body = Obs.Trace.with_span "fixture.span.used" body
let g () = Obs.Trace.record Obs.Names.span_unused 1
|} );
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root [ "lib/obs/names.ml"; "lib/user.ml" ]
  in
  check_count "suppressed + all registered names used" "obs-names" 0 fs

(* bin/ keeps the freedom to improvise span names: CLI phase spans like
   "workload.simulate" are not library API, so only lib/ sites must use
   registered constants. *)
let obs_span_bin_exempt () =
  let root =
    scratch_tree "obs_span_bin"
      [
        ("lib/obs/names.ml", names_fixture);
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let f body = Obs.Trace.with_span "fixture.span.used" body
let g () = Obs.Trace.record Obs.Names.span_unused 1
|} );
        ("bin/tool.ml", {|let f body = Obs.Trace.with_span "cli.adhoc.phase" body|});
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root
      [ "lib/obs/names.ml"; "lib/user.ml"; "bin/tool.ml" ]
  in
  check_count "ad-hoc span literal in bin/ is fine" "obs-names" 0 fs

(* Alert rule ids and health check names ride the same two-way contract
   as metrics: a shaped literal in lib/ or bin/ must be registered in
   names.ml, and a registered constant must be used somewhere.  Reason
   strings with fewer than three dotted segments ("alert.fired") have
   no id shape and stay exempt. *)
let obs_alert_health_flagging () =
  let root =
    scratch_tree "obs_alert_flag"
      [
        ( "lib/obs/names.ml",
          {|
let used = "prov.fixture.used"
let alert_ok = "alert.fixture.ok"
let alert_unused = "alert.fixture.unused"
let health_ok = "health.fixture.ok"
let health_unused = "health.fixture.unused"
|}
        );
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.alert_ok
let () = ignore Obs.Names.health_ok
let stray_rule = "alert.fixture.stray"
let stray_check = "health.fixture.stray"
let reason = "alert.fired"
|} );
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root [ "lib/obs/names.ml"; "lib/user.ml" ]
  in
  check_count "stray alert + unused alert + stray health + unused health" "obs-names" 4 fs;
  let has needle =
    List.exists (fun f -> Provkit_util.Strutil.contains_substring ~needle f.Finding.message) fs
  in
  Alcotest.(check bool) "flags the unregistered rule id" true (has "alert.fixture.stray");
  Alcotest.(check bool) "flags the unused rule id" true (has "alert.fixture.unused");
  Alcotest.(check bool) "flags the unregistered check name" true (has "health.fixture.stray");
  Alcotest.(check bool) "flags the unused check name" true (has "health.fixture.unused");
  Alcotest.(check bool) "short reason strings stay exempt" false (has "alert.fired")

let obs_alert_health_clean () =
  let root =
    scratch_tree "obs_alert_ok"
      [
        ( "lib/obs/names.ml",
          {|
let used = "prov.fixture.used"
let alert_ok = "alert.fixture.ok"
let health_ok = "health.fixture.ok"
|}
        );
        (* One id referenced through Names, the other by its literal —
           both count as used; the literal is registered so not stray. *)
        ( "lib/user.ml",
          {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.alert_ok
let check = "health.fixture.ok"
|} );
      ]
  in
  let fs =
    Driver.lint_files ~checks:[ "obs-names" ] ~root [ "lib/obs/names.ml"; "lib/user.ml" ]
  in
  check_count "registered + used alert/health names are clean" "obs-names" 0 fs

(* --- grep parity with the retired tools/obs_lint.sh ------------------ *)

(* The old gate grepped lib/ and bin/ for string literals shaped like
   metric names and required each to be declared in lib/obs/names.ml.
   Reproduce that textual scan here and assert every name it finds
   undeclared is also reported by the AST check — provlint must be a
   superset of the grep before the grep can be deleted. *)

let quoted_literals text =
  let out = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && text.[!j] <> '"' do
        if text.[!j] = '\\' then incr j;
        incr j
      done;
      if !j <= n then out := String.sub text start (min !j n - start) :: !out;
      i := !j + 1
    end
    else incr i
  done;
  List.rev !out

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let grep_style_undeclared ~root files =
  let metric_literals rel =
    List.filter Registry.is_metric_literal (quoted_literals (read_whole (Filename.concat root rel)))
  in
  let declared = metric_literals "lib/obs/names.ml" in
  List.concat_map
    (fun rel ->
      if Registry.is_metric_names_file rel then []
      else List.filter (fun s -> not (List.mem s declared)) (metric_literals rel))
    files

let grep_parity () =
  let files =
    [
      ("lib/obs/names.ml", names_fixture);
      ( "lib/user.ml",
        {|
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let a = "prov.fixture.stray"
let b = "prov.fixture.also_stray"
|} );
    ]
  in
  let root = scratch_tree "obs_parity" files in
  let rels = List.map fst files in
  let grep_found = grep_style_undeclared ~root rels in
  Alcotest.(check int) "grep finds both strays" 2 (List.length grep_found);
  let provlint_found = Driver.lint_files ~checks:[ "obs-names" ] ~root rels in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "provlint also reports %s" name)
        true
        (List.exists
           (fun f -> Provkit_util.Strutil.contains_substring ~needle:name f.Finding.message)
           provlint_found))
    grep_found

(* --- epoch-discipline ------------------------------------------------ *)

let epoch_fixture =
  {|
let bump t = t.epoch <- t.epoch + 1
let good t k v = Hashtbl.replace t.rows k v; bump t
let bad t k = Hashtbl.remove t.rows k
let branchy t k v = if Hashtbl.mem t.rows k then Hashtbl.replace t.rows k v else bump t
let loopy t ks = List.iter (fun k -> Hashtbl.remove t.rows k; bump t) ks
let guarded t k v =
  if k < 0 then invalid_arg "guarded"
  else begin Hashtbl.replace t.rows k v; t.epoch <- t.epoch + 1 end
|}

let epoch_flagging () =
  let fs = lint ~filename:"lib/relstore/table.ml" epoch_fixture in
  (* [bad] never bumps; [branchy]'s then-branch mutates without bumping;
     [loopy]'s bump sits in a may-run-zero-times loop body.  [good]
     bumps through a callee and [guarded]'s raising path is exempt. *)
  check_count "bad + branchy + loopy" "epoch-discipline" 3 fs;
  let flags name =
    List.exists
      (fun f -> Provkit_util.Strutil.contains_substring ~needle:(name ^ " mutates") f.Finding.message)
      fs
  in
  Alcotest.(check bool) "flags bad" true (flags "bad");
  Alcotest.(check bool) "flags branchy" true (flags "branchy");
  Alcotest.(check bool) "flags loopy" true (flags "loopy");
  Alcotest.(check bool) "good (bumps via callee) is clean" false (flags "good");
  Alcotest.(check bool) "guarded (raising path) is clean" false (flags "guarded")

let epoch_suppressed () =
  let src =
    {|
let bump t = t.epoch <- t.epoch + 1
let good t k v = Hashtbl.replace t.rows k v; bump t
let bad t k = Hashtbl.remove t.rows k [@@provlint.allow "epoch-discipline"]
|}
  in
  check_count "suppressed" "epoch-discipline" 0 (lint ~filename:"lib/relstore/table.ml" src)

let epoch_scoped_to_table () =
  check_count "only lib/relstore/table.ml is in scope" "epoch-discipline" 0
    (lint ~filename:"lib/relstore/other.ml" epoch_fixture)

(* --- wal-durability -------------------------------------------------- *)

let wal_fixture =
  {|
module Segmented = struct
  module Fio = Provkit_util.Faulty_io
  let flush_pending h =
    if h.pending_ops > 0 then begin
      Fio.flush h.active;
      h.pending_ops <- 0;
      h.pending_bytes <- 0
    end
  let maybe_commit h = if h.pending_ops > 64 then flush_pending h
  let start_segment h = h.active <- Fio.open_out "seg"
  let good_append h n =
    Fio.write h.active "x";
    h.pending_ops <- h.pending_ops + 1;
    h.pending_bytes <- h.pending_bytes + n;
    maybe_commit h
  let bad_append h n =
    Fio.write h.active "x";
    h.pending_ops <- h.pending_ops + 1;
    h.pending_bytes <- h.pending_bytes + n
  let good_close h = flush_pending h; Fio.close h.active
  let bad_close h = Fio.close h.active
  let good_rotate h =
    flush_pending h;
    Fio.close h.active;
    start_segment h;
    Fio.write h.active "hdr"
  let bad_reuse h =
    flush_pending h;
    Fio.close h.active;
    Fio.write h.active "trailer"
end
let loose h = Fio.close h.active
|}

let wal_flagging () =
  let fs = lint ~filename:"lib/core/prov_log.ml" wal_fixture in
  check_count "bad_append + bad_close + bad_reuse" "wal-durability" 3 fs;
  let flags name needle =
    List.exists
      (fun f ->
        Provkit_util.Strutil.contains_substring ~needle:name f.Finding.message
        && Provkit_util.Strutil.contains_substring ~needle f.Finding.message)
      fs
  in
  Alcotest.(check bool) "bad_append misses a commit point" true
    (flags "bad_append" "commit point");
  Alcotest.(check bool) "bad_close skips the flush" true
    (flags "bad_close" "without flushing");
  Alcotest.(check bool) "bad_reuse writes after close" true
    (flags "bad_reuse" "after closing");
  (* [good_rotate] reopens between close and write; [loose] sits outside
     [Segmented] and shares a name with nothing the rules own. *)
  Alcotest.(check bool) "good_rotate is clean" false (flags "good_rotate" "");
  Alcotest.(check bool) "loose close outside Segmented is out of scope" false
    (flags "loose" "")

let wal_suppressed () =
  let src =
    {|
module Segmented = struct
  module Fio = Provkit_util.Faulty_io
  let bad_append h =
    Fio.write h.active "x";
    h.pending_ops <- h.pending_ops + 1
    [@@provlint.allow "wal-durability"]
  let bad_close h = Fio.close h.active [@@provlint.allow "wal-durability"]
end
|}
  in
  check_count "suppressed" "wal-durability" 0 (lint ~filename:"lib/core/prov_log.ml" src)

let wal_scoped_to_prov_log () =
  check_count "only lib/core/prov_log.ml is in scope" "wal-durability" 0
    (lint ~filename:"lib/core/other.ml" wal_fixture)

(* --- matview-purity (cross-file, on a scratch tree) ------------------- *)

let matview_flagging () =
  let root =
    scratch_tree "matview_flag"
      [
        ( "lib/views.ml",
          {|
let tick = ref 0
let helper ev = Printf.printf "ev %d" ev; ev
let impure =
  { init = 0;
    fold = (fun acc ev -> incr tick; acc + helper ev + Random.int 3);
    finalize = (fun acc -> acc) }
|} );
      ]
  in
  let fs = Driver.lint_files ~checks:[ "matview-purity" ] ~root [ "lib/views.ml" ] in
  check_count "global incr + transitive printf + Random" "matview-purity" 3 fs;
  let has needle =
    List.exists (fun f -> Provkit_util.Strutil.contains_substring ~needle f.Finding.message) fs
  in
  Alcotest.(check bool) "flags the toplevel-ref mutation" true (has "tick");
  Alcotest.(check bool) "flags the print reached through helper" true (has "prints");
  Alcotest.(check bool) "flags Random" true (has "Random.int")

let matview_accumulator_ok () =
  let root =
    scratch_tree "matview_ok"
      [
        ( "lib/views.ml",
          {|
let spec =
  { init = Hashtbl.create 8;
    fold = (fun acc ev -> Hashtbl.replace acc ev true; acc);
    finalize = Hashtbl.length }
|} );
      ]
  in
  check_count "mutating the fold's own accumulator is fine" "matview-purity" 0
    (Driver.lint_files ~checks:[ "matview-purity" ] ~root [ "lib/views.ml" ])

let matview_suppressed () =
  let root =
    scratch_tree "matview_supp"
      [
        ( "lib/views.ml",
          {|
let tick = ref 0
let helper ev = Printf.printf "ev %d" ev; ev [@@provlint.allow "matview-purity"]
let impure =
  { init = 0;
    fold = (fun acc ev -> incr tick; acc + helper ev + Random.int 3);
    finalize = (fun acc -> acc) }
  [@@provlint.allow "matview-purity"]
|} );
      ]
  in
  check_count "suppressed" "matview-purity" 0
    (Driver.lint_files ~checks:[ "matview-purity" ] ~root [ "lib/views.ml" ])

(* --- shared-state-registry (cross-file, on a scratch tree) ------------ *)

let shared_state_src =
  {|
let table = Hashtbl.create 16
let counter = ref 0
type slot = { mutable occupied : bool }
let global_slot = { occupied = false }
module Inner = struct
  let buf = Buffer.create 64
end
let pure = 42
let compute () = let local = ref 0 in incr local; !local
|}

let shared_state_flagging () =
  let root = scratch_tree "ss_flag" [ ("lib/state.ml", shared_state_src) ] in
  let fs = Driver.lint_files ~checks:[ "shared-state-registry" ] ~root [ "lib/state.ml" ] in
  (* [pure] and the function-local ref are not global mutable state. *)
  check_count "table + counter + global_slot + Inner.buf" "shared-state-registry" 4 fs;
  let has needle =
    List.exists (fun f -> Provkit_util.Strutil.contains_substring ~needle f.Finding.message) fs
  in
  Alcotest.(check bool) "flags the Hashtbl" true (has "table");
  Alcotest.(check bool) "flags the ref" true (has "counter");
  Alcotest.(check bool) "flags the mutable-record literal" true (has "global_slot");
  Alcotest.(check bool) "dots nested modules into the name" true (has "Inner.buf")

let shared_state_suppressed () =
  let root =
    scratch_tree "ss_supp"
      [
        ( "lib/state.ml",
          {|
let table = Hashtbl.create 16 [@@provlint.allow "shared-state-registry"]
let counter = ref 0 [@@provlint.allow "shared-state-registry"]
|} );
      ]
  in
  check_count "suppressed" "shared-state-registry" 0
    (Driver.lint_files ~checks:[ "shared-state-registry" ] ~root [ "lib/state.ml" ])

let shared_state_stale_entry () =
  (* A manifest entry whose binding no longer exists must fail once its
     file is part of the linted set — the inventory cannot rot. *)
  let structure =
    match
      Provkit_lint.Source.parse_string ~filename:"lib/state.ml" {|let pure = 42|}
    with
    | Ok s -> s
    | Error _ -> Alcotest.fail "fixture does not parse"
  in
  let manifest =
    [
      Provkit_lint.Shared_state.e "lib/state.ml" "gone"
        Provkit_lint.Shared_state.Needs_lock "used to exist";
      Provkit_lint.Shared_state.e "lib/other.ml" "unlinted"
        Provkit_lint.Shared_state.Needs_lock "file not in this run";
    ]
  in
  let fs =
    Provkit_lint.Check_shared_state.run ~manifest [ ("lib/state.ml", structure) ]
  in
  check_count "only the linted file's dead entry is stale" "shared-state-registry" 1 fs;
  Alcotest.(check bool) "names the dead entry" true
    (List.exists
       (fun f -> Provkit_util.Strutil.contains_substring ~needle:"gone" f.Finding.message)
       fs)

(* --- rendering ------------------------------------------------------- *)

let json_rendering () =
  let fs = lint ~filename:"lib/foo.ml" {|let f x = Obj.magic x|} in
  let json = Driver.render_json fs in
  Alcotest.(check bool) "names the check" true
    (Provkit_util.Strutil.contains_substring ~needle:{|"check":"banned-constructs"|} json);
  Alcotest.(check bool) "one object line per finding" true
    (Provkit_util.Strutil.contains_substring ~needle:"{\"check\"" json);
  Alcotest.(check string) "empty list renders as []" "[]" (Driver.render_json [])

let parse_error_reported () =
  let fs = lint ~filename:"lib/foo.ml" "let f = (" in
  check_count "unparseable file is itself a finding" "parse-error" 1 fs

let sarif_rendering () =
  let has needle s = Provkit_util.Strutil.contains_substring ~needle s in
  let fs = lint ~filename:"lib/foo.ml" {|let f x = Obj.magic x|} in
  let sarif = Driver.render_sarif fs in
  Alcotest.(check bool) "declares SARIF 2.1.0" true (has {|"version":"2.1.0"|} sarif);
  Alcotest.(check bool) "result carries the ruleId" true
    (has {|"ruleId":"banned-constructs"|} sarif);
  Alcotest.(check bool) "location is present" true (has {|"startLine":1|} sarif);
  Alcotest.(check bool) "rules catalogue lists every check" true
    (List.for_all (fun (id, _) -> has (Printf.sprintf {|{"id":"%s"|} id) sarif)
       Driver.all_checks);
  Alcotest.(check bool) "empty run renders empty results" true
    (has {|"results":[]|} (Driver.render_sarif []))

let timing_reported () =
  let root =
    scratch_tree "timing" [ ("lib/tiny.ml", {|let id x = x|}) ]
  in
  let _, timings = Driver.lint_files_timed ~root [ "lib/tiny.ml" ] in
  Alcotest.(check string) "parse is timed first" "parse" (fst (List.hd timings));
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "check %s is timed" id) true
        (List.mem_assoc id timings))
    Driver.check_ids;
  Alcotest.(check int) "one row per check plus parse"
    (1 + List.length Driver.check_ids)
    (List.length timings)

(* --- integration: the real tree is clean ----------------------------- *)

let rec find_repo_root dir depth =
  if depth > 6 then None
  else if Sys.file_exists (Filename.concat dir "lib/obs/names.ml") then Some dir
  else find_repo_root (Filename.dirname dir) (depth + 1)

let repo_clean () =
  match find_repo_root (Sys.getcwd ()) 0 with
  | None -> Alcotest.fail "could not locate the source tree from the test cwd"
  | Some root ->
    let files = Driver.tree_files ~root in
    Alcotest.(check bool) "scans a real tree" true (List.length files > 50);
    Alcotest.(check bool) "sees bin/provctl.ml" true (List.mem "bin/provctl.ml" files);
    let findings = Driver.lint_tree ~root () in
    Alcotest.(check string) "zero findings on the shipped tree" ""
      (Driver.render_text findings)

let suite =
  [
    Alcotest.test_case "codec-symmetry flags" `Quick codec_flagging;
    Alcotest.test_case "codec-symmetry suppressed" `Quick codec_suppressed;
    Alcotest.test_case "codec-symmetry scoped to codecs" `Quick codec_only_in_codec_files;
    Alcotest.test_case "no-wildcard-match flags" `Quick match_flagging;
    Alcotest.test_case "no-wildcard-match suppressed" `Quick match_suppressed;
    Alcotest.test_case "no-wildcard-match scoped" `Quick match_other_variants_free;
    Alcotest.test_case "io-discipline flags" `Quick io_flagging;
    Alcotest.test_case "io-discipline suppressed" `Quick io_suppressed;
    Alcotest.test_case "io-discipline sanctioned layers" `Quick io_sanctioned_layers;
    Alcotest.test_case "banned-constructs flags" `Quick banned_flagging;
    Alcotest.test_case "banned-constructs suppressed" `Quick banned_suppressed;
    Alcotest.test_case "banned-constructs bin printf" `Quick banned_bin_printf_ok;
    Alcotest.test_case "obs-names flags" `Quick obs_flagging;
    Alcotest.test_case "obs-names suppressed" `Quick obs_suppressed;
    Alcotest.test_case "obs-names span bin exempt" `Quick obs_span_bin_exempt;
    Alcotest.test_case "obs-names alert/health flags" `Quick obs_alert_health_flagging;
    Alcotest.test_case "obs-names alert/health clean" `Quick obs_alert_health_clean;
    Alcotest.test_case "obs-names grep parity" `Quick grep_parity;
    Alcotest.test_case "epoch-discipline flags" `Quick epoch_flagging;
    Alcotest.test_case "epoch-discipline suppressed" `Quick epoch_suppressed;
    Alcotest.test_case "epoch-discipline scoped" `Quick epoch_scoped_to_table;
    Alcotest.test_case "wal-durability flags" `Quick wal_flagging;
    Alcotest.test_case "wal-durability suppressed" `Quick wal_suppressed;
    Alcotest.test_case "wal-durability scoped" `Quick wal_scoped_to_prov_log;
    Alcotest.test_case "matview-purity flags" `Quick matview_flagging;
    Alcotest.test_case "matview-purity accumulator ok" `Quick matview_accumulator_ok;
    Alcotest.test_case "matview-purity suppressed" `Quick matview_suppressed;
    Alcotest.test_case "shared-state-registry flags" `Quick shared_state_flagging;
    Alcotest.test_case "shared-state-registry suppressed" `Quick shared_state_suppressed;
    Alcotest.test_case "shared-state-registry stale entry" `Quick shared_state_stale_entry;
    Alcotest.test_case "json rendering" `Quick json_rendering;
    Alcotest.test_case "sarif rendering" `Quick sarif_rendering;
    Alcotest.test_case "timing rows" `Quick timing_reported;
    Alcotest.test_case "parse errors surface" `Quick parse_error_reported;
    Alcotest.test_case "repository is clean" `Quick repo_clean;
  ]
