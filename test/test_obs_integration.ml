(* Instrumentation against ground truth: the EXPLAIN surface must agree
   with [Query_exec.plan_for], and the WAL / capture counters must match
   independently-measurable facts about the workload that produced them.

   Metrics are process-global, so every assertion here is a delta
   (value-after minus value-before) — other suites running first cannot
   disturb them. *)

module M = Provkit_obs.Metrics
module Names = Provkit_obs.Names
module R = Relstore
module Q = Relstore.Query_exec
module PL = Core.Prov_log
module Seg = Core.Prov_log.Segmented
module Store = Core.Prov_store
module PE = Core.Prov_edge
module Prng = Provkit_util.Prng

let with_enabled f =
  let was = M.enabled () in
  M.set_enabled true;
  Fun.protect ~finally:(fun () -> M.set_enabled was) f

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun entry -> rm_rf (Filename.concat path entry)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let path = Filename.temp_file "obs_test" ".d" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  Fun.protect ~finally:(fun () -> rm_rf path) (fun () -> f path)

(* --- EXPLAIN vs the planner -------------------------------------------- *)

let fixture_db () =
  let db = R.Database.create ~name:"explain_fixture" in
  let t =
    R.Database.create_table db
      (R.Schema.make ~name:"visits"
         [
           R.Column.make "url" R.Value.Ttext;
           R.Column.make "day" R.Value.Tint;
           R.Column.make "tab" R.Value.Tint;
         ])
  in
  R.Table.add_index t ~name:"by_url_day" ~columns:[ "url"; "day" ];
  R.Table.add_index t ~name:"by_day" ~columns:[ "day" ];
  for i = 1 to 60 do
    ignore
      (R.Table.insert_fields t
         [
           ("url", R.Value.Text (Printf.sprintf "http://site%d.example/" (i mod 5)));
           ("day", R.Value.Int (i mod 10));
           ("tab", R.Value.Int (i mod 3));
         ])
  done;
  db

let test_explain_matches_plan_for () =
  with_enabled @@ fun () ->
  let db = fixture_db () in
  let table = R.Database.table db "visits" in
  let queries =
    [
      (* (sql, expected plan) — one of each access-path kind *)
      ( "SELECT * FROM visits WHERE url = 'http://site2.example/' AND day = 7",
        Q.Index_eq "by_url_day" );
      ("SELECT * FROM visits WHERE day = 3", Q.Index_eq "by_day");
      ("SELECT * FROM visits WHERE tab = 1", Q.Full_scan);
      ("SELECT * FROM visits WHERE day BETWEEN 2 AND 5", Q.Index_range "by_day");
      ("SELECT * FROM visits WHERE day >= 6", Q.Index_range "by_day");
      ("SELECT COUNT(*) FROM visits WHERE day = 4", Q.Index_eq "by_day");
    ]
  in
  List.iter
    (fun (sql, expected) ->
      let ast = R.Sql.parse sql in
      let report = R.Sql.explain_query db sql in
      if report.R.Sql.plan <> expected then
        Alcotest.failf "%s: expected %s, explain said %s" sql
          (R.Sql.plan_to_string expected)
          (R.Sql.plan_to_string report.R.Sql.plan);
      (* the report's plan is the planner's, not a re-derivation *)
      if report.R.Sql.plan <> Q.plan_for table ast.R.Sql.where then
        Alcotest.failf "%s: explain disagrees with plan_for" sql;
      if report.R.Sql.stats.Q.plan <> report.R.Sql.plan then
        Alcotest.failf "%s: executor used a different plan than reported" sql;
      (* estimated rows = candidate rows the access path yields, which is
         exactly what the executor then scans *)
      Alcotest.(check int)
        (sql ^ ": estimate matches scan")
        report.R.Sql.estimated_rows report.R.Sql.stats.Q.rows_scanned;
      let naive =
        List.filter
          (fun (_, row) -> R.Predicate.eval ast.R.Sql.where (R.Table.schema table) row)
          (R.Table.rows table)
      in
      (* an aggregate collapses its matches into a single result row *)
      let expected_returned =
        match ast.R.Sql.projection with
        | `Aggregate _ -> 1
        | `All | `Columns _ -> List.length naive
      in
      Alcotest.(check int)
        (sql ^ ": rows returned match a naive filter")
        expected_returned report.R.Sql.stats.Q.rows_returned)
    queries

let test_query_counters_tick () =
  with_enabled @@ fun () ->
  let db = fixture_db () in
  let count name = M.counter_value name in
  let queries0 = count Names.query_count in
  let eq0 = count Names.query_full_scan + count Names.query_index_eq in
  let range0 = count Names.query_index_range in
  let h = M.histogram Names.query_latency_ns in
  let hist0 = M.hist_count h in
  ignore (R.Sql.query db "SELECT * FROM visits WHERE day = 3");
  ignore (R.Sql.query db "SELECT * FROM visits WHERE tab = 1");
  ignore (R.Sql.query db "SELECT * FROM visits WHERE day BETWEEN 2 AND 5");
  Alcotest.(check int) "three queries counted" 3 (count Names.query_count - queries0);
  Alcotest.(check int) "eq + scan plans counted" 2
    (count Names.query_full_scan + count Names.query_index_eq - eq0);
  Alcotest.(check int) "range plan counted" 1 (count Names.query_index_range - range0);
  Alcotest.(check int) "each query left a latency sample" 3 (M.hist_count h - hist0)

(* --- WAL counters vs ground truth -------------------------------------- *)

let drive store rng rounds =
  let prev = ref None in
  for i = 1 to rounds do
    let url = Printf.sprintf "http://w%d.example/p%d" (Prng.int rng 7) (Prng.int rng 200) in
    let v =
      Store.add_visit store ~engine_visit:i ~url ~title:"page"
        ~transition:Browser.Transition.Link ~tab:(Prng.int rng 4) ~time:(1000 + i)
    in
    (match !prev with
    | Some p when Prng.int rng 3 > 0 ->
      Store.add_edge store ~src:p ~dst:v PE.Link_traversal ~time:(1000 + i)
    | _ -> ());
    prev := Some v;
    if Prng.int rng 4 = 0 then Store.close_visit store ~engine_visit:i ~time:(1001 + i)
  done

let test_wal_counters_ground_truth () =
  with_enabled @@ fun () ->
  with_temp_dir @@ fun dir ->
  let count name = M.counter_value name in
  let appends0 = count Names.wal_appends in
  let fsyncs0 = count Names.wal_fsyncs in
  let rotations0 = count Names.wal_rotations in
  let bytes0 = count Names.wal_bytes_written in
  let recoveries0 = count Names.wal_recoveries in
  let rec_ops0 = count Names.wal_recovered_ops in
  let rec_segs0 = count Names.wal_recovered_segments in
  let truncated0 = count Names.wal_recoveries_truncated in
  let handle = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 2048 } dir in
  let store = Store.create () in
  Seg.attach handle store;
  let rng = Test_seed.prng ~salt:81 in
  drive store rng 150;
  Seg.close handle;
  let appended = Seg.appended handle in
  let live_segments = List.length (Seg.segments handle) in
  Alcotest.(check int) "append counter = ops the WAL accepted" appended
    (count Names.wal_appends - appends0);
  Alcotest.(check int) "one rotation per segment after the first"
    (live_segments - 1)
    (count Names.wal_rotations - rotations0);
  Alcotest.(check bool) "an fsync for every append (plus headers)" true
    (count Names.wal_fsyncs - fsyncs0 >= appended);
  let on_disk =
    List.fold_left
      (fun acc entry ->
        let p = Filename.concat dir entry in
        if Sys.is_directory p then acc
        else acc + (let ic = open_in_bin p in
                    let n = in_channel_length ic in
                    close_in ic;
                    n))
      0
      (Array.to_list (Sys.readdir dir))
  in
  Alcotest.(check bool) "bytes counter accounts for the files on disk" true
    (count Names.wal_bytes_written - bytes0 >= on_disk - 512
    && count Names.wal_bytes_written - bytes0 > 0);
  let r = Seg.recover ~dir () in
  Alcotest.(check int) "one recovery" 1 (count Names.wal_recoveries - recoveries0);
  Alcotest.(check int) "recovered-op counter = recover's own report"
    r.Seg.ops_applied
    (count Names.wal_recovered_ops - rec_ops0);
  Alcotest.(check int) "recovered ops = every appended op" appended r.Seg.ops_applied;
  Alcotest.(check int) "recovered-segment counter = recover's own report"
    r.Seg.segments_read
    (count Names.wal_recovered_segments - rec_segs0);
  Alcotest.(check int) "clean shutdown: no truncation recorded" 0
    (count Names.wal_recoveries_truncated - truncated0)

let test_wal_truncation_counter () =
  with_enabled @@ fun () ->
  with_temp_dir @@ fun dir ->
  let truncated0 = M.counter_value Names.wal_recoveries_truncated in
  let handle = Seg.open_ ~config:{ Seg.default_config with Seg.max_segment_bytes = 1_000_000 } dir in
  let store = Store.create () in
  Seg.attach handle store;
  let rng = Test_seed.prng ~salt:82 in
  drive store rng 40;
  Provkit_util.Faulty_io.arm (Seg.active_sink handle)
    [ Provkit_util.Faulty_io.Torn_final_write 3 ];
  Seg.close handle;
  let r = Seg.recover ~dir () in
  Alcotest.(check bool) "the tear truncated recovery" true r.Seg.truncated;
  Alcotest.(check int) "truncated recovery counted" 1
    (M.counter_value Names.wal_recoveries_truncated - truncated0)

(* --- capture counters --------------------------------------------------- *)

let test_capture_counters () =
  with_enabled @@ fun () ->
  let count name = M.counter_value name in
  let total0 = count Names.capture_events in
  let visits0 = count Names.capture_visit in
  let closes0 = count Names.capture_close in
  let searches0 = count Names.capture_search in
  let capture, feed = Core.Capture.observer () in
  let events =
    List.concat_map
      (fun i ->
        [
          Browser.Event.Visit
            {
              Browser.Event.visit_id = i;
              time = 100 + i;
              tab = 0;
              page = Some i;
              url = Webmodel.Url.of_string (Printf.sprintf "http://s%d.example/" i);
              title = "page";
              transition = Browser.Transition.Link;
              referrer = None;
              via_bookmark = None;
            };
          Browser.Event.Close { time = 200 + i; tab = 0; visit_id = i };
        ])
      (List.init 25 (fun i -> i + 1))
    @ [
        Browser.Event.Search
          { time = 999; search_id = 1; query = "q"; serp_visit = 1 };
      ]
  in
  List.iter feed events;
  ignore (Core.Capture.store capture);
  Alcotest.(check int) "every event counted" (List.length events)
    (count Names.capture_events - total0);
  Alcotest.(check int) "visits counted by kind" 25 (count Names.capture_visit - visits0);
  Alcotest.(check int) "closes counted by kind" 25 (count Names.capture_close - closes0);
  Alcotest.(check int) "searches counted by kind" 1
    (count Names.capture_search - searches0)

let suite =
  [
    Alcotest.test_case "explain matches plan_for" `Quick test_explain_matches_plan_for;
    Alcotest.test_case "query counters tick" `Quick test_query_counters_tick;
    Alcotest.test_case "WAL counters vs ground truth" `Quick test_wal_counters_ground_truth;
    Alcotest.test_case "WAL truncation counter" `Quick test_wal_truncation_counter;
    Alcotest.test_case "capture counters by kind" `Quick test_capture_counters;
  ]
