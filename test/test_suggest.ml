(* The smart location bar: the Places-faithful baseline (adaptive +
   frecency) and the provenance context-aware variant. *)

module F = Core_fixtures
module Engine = Browser.Engine
module AB = Browser.Awesomebar
module Suggest = Core.Suggest
module Store = Core.Prov_store
module Web = Webmodel.Web_graph

(* Two senses of an ambiguous term; the film sense is visited more, the
   gardening sense is what the current session is about. *)
let ambiguous_history () =
  let web, engine, api = F.make ~seed:51 () in
  let ambiguity = List.hd (Web.ambiguities web) in
  let sense_a = List.hd ambiguity.Web.pages_a in
  let sense_b = List.hd ambiguity.Web.pages_b in
  let tab = Engine.open_tab engine ~time:100 () in
  let clock = ref 100 in
  let visit p =
    clock := !clock + 30;
    ignore (Engine.visit_typed engine ~time:!clock ~tab p)
  in
  (* Sense A is globally popular: five visits. *)
  for _ = 1 to 5 do
    visit sense_a
  done;
  (* Sense B visited once, from within its topic's pages. *)
  List.iter visit (Web.hubs_of_topic web ambiguity.Web.topic_b);
  visit sense_b;
  (* Current context: a page of topic B is on screen. *)
  let context_page = List.hd (Web.hubs_of_topic web ambiguity.Web.topic_b) in
  let ctx_visit = Engine.visit_typed engine ~time:(!clock + 30) ~tab context_page in
  (web, engine, api, ambiguity, sense_a, sense_b, ctx_visit)

let page_url web p = Webmodel.Url.to_string (Web.page web p).Webmodel.Page_content.url

(* --- baseline awesomebar --- *)

let test_awesomebar_matches_and_ranks_by_frecency () =
  let web, engine, _api, ambiguity, sense_a, _sense_b, _ctx = ambiguous_history () in
  let bar = AB.build (Engine.places engine) in
  match AB.suggest bar ambiguity.Web.term with
  | top :: _ ->
    Alcotest.(check string) "most-visited sense wins on frecency" (page_url web sense_a) top.AB.url;
    Alcotest.(check bool) "not adaptive yet" false top.AB.adaptive
  | [] -> Alcotest.fail "no suggestions"

let test_awesomebar_empty_and_nonsense () =
  let _web, engine, _api, _ambiguity, _a, _b, _ctx = ambiguous_history () in
  let bar = AB.build (Engine.places engine) in
  Alcotest.(check (list unit)) "empty input" [] (List.map (fun _ -> ()) (AB.suggest bar "  "));
  Alcotest.(check (list unit)) "nonsense input" []
    (List.map (fun _ -> ()) (AB.suggest bar "zzzzqqqq"))

let test_awesomebar_adaptive_learning () =
  let web, engine, _api, ambiguity, _sense_a, sense_b, _ctx = ambiguous_history () in
  let places = Engine.places engine in
  let bar = AB.build places in
  let sense_b_place =
    match Browser.Places_db.place_by_url places (page_url web sense_b) with
    | Some p -> p.Browser.Places_db.place_id
    | None -> Alcotest.fail "place missing"
  in
  (* The user picks the gardening sense once; it now dominates for the
     same typed input, and for extensions of it. *)
  AB.accept bar ~input:ambiguity.Web.term ~place_id:sense_b_place;
  (match AB.suggest bar ambiguity.Web.term with
  | top :: _ ->
    Alcotest.(check int) "adaptive override" sense_b_place top.AB.place_id;
    Alcotest.(check bool) "flagged adaptive" true top.AB.adaptive
  | [] -> Alcotest.fail "no suggestions");
  let prefix = String.sub ambiguity.Web.term 0 3 in
  match AB.suggest bar prefix with
  | top :: _ -> Alcotest.(check int) "prefix inherits the choice" sense_b_place top.AB.place_id
  | [] -> Alcotest.fail "no prefix suggestions"

let test_awesomebar_limit () =
  let _web, engine, _api, _ambiguity, _a, _b, _ctx = ambiguous_history () in
  let bar = AB.build (Engine.places engine) in
  Alcotest.(check bool) "limit respected" true
    (List.length (AB.suggest ~limit:2 bar "example") <= 2)

(* Regression: the bar's place snapshot was built once and never
   revalidated, so anything visited after [build] was invisible until a
   manual [refresh].  The snapshot is now validated against the
   moz_places epoch on every [suggest]. *)
let test_awesomebar_snapshot_never_stale () =
  let web, engine, _api, ambiguity, _a, _b, _ctx = ambiguous_history () in
  let places = Engine.places engine in
  let bar = AB.build places in
  (* Warm the snapshot, then visit a page the store has never seen. *)
  ignore (AB.suggest bar ambiguity.Web.term);
  let fresh =
    Array.to_list (Web.pages web)
    |> List.find (fun (p : Webmodel.Page_content.t) ->
           Browser.Places_db.place_by_url places
             (Webmodel.Url.to_string p.Webmodel.Page_content.url)
           = None)
  in
  let fresh_url = Webmodel.Url.to_string fresh.Webmodel.Page_content.url in
  Alcotest.(check (list unit)) "unknown page suggests nothing" []
    (List.map (fun _ -> ()) (AB.suggest bar fresh_url));
  let tab = Engine.open_tab engine ~time:9000 () in
  ignore (Engine.visit_typed engine ~time:9010 ~tab fresh.Webmodel.Page_content.id);
  (* No AB.refresh here: suggest itself must notice the epoch moved. *)
  Alcotest.(check bool) "new visit is suggested without a manual refresh" true
    (List.exists (fun s -> s.AB.url = fresh_url) (AB.suggest bar fresh_url))

(* --- provenance suggestions --- *)

let test_suggest_without_context_follows_popularity () =
  let web, _engine, api, ambiguity, sense_a, _sense_b, _ctx = ambiguous_history () in
  let store = Core.Api.store api in
  match Suggest.suggest store ambiguity.Web.term with
  | top :: _ ->
    Alcotest.(check string) "baseline = popularity" (page_url web sense_a) top.Suggest.url;
    Alcotest.(check (float 1e-9)) "no context mass" 0.0 top.Suggest.context_score
  | [] -> Alcotest.fail "no suggestions"

let test_suggest_with_context_flips_the_sense () =
  let web, _engine, api, ambiguity, sense_a, sense_b, ctx_visit = ambiguous_history () in
  let store = Core.Api.store api in
  let ctx_node = Option.get (Store.visit_node store ctx_visit.Engine.visit_id) in
  match Suggest.suggest ~context:[ ctx_node ] store ambiguity.Web.term with
  | top :: _ ->
    Alcotest.(check string) "context wins over popularity" (page_url web sense_b)
      top.Suggest.url;
    Alcotest.(check bool) "context mass present" true (top.Suggest.context_score > 0.0);
    ignore sense_a
  | [] -> Alcotest.fail "no suggestions"

let test_suggest_hidden_pages_excluded () =
  let web, engine, api = F.make ~seed:52 () in
  (* Visit a page with embeds; its images are history entries but must
     never be suggested. *)
  let article =
    Array.to_list (Web.pages web)
    |> List.find_opt (fun (p : Webmodel.Page_content.t) ->
           p.Webmodel.Page_content.kind = Webmodel.Page_content.Article
           && Array.length p.Webmodel.Page_content.embeds > 0)
  in
  match article with
  | None -> ()
  | Some p ->
    let tab = Engine.open_tab engine ~time:10 () in
    let _ = Engine.visit_typed engine ~time:20 ~tab p.Webmodel.Page_content.id in
    let store = Core.Api.store api in
    List.iter
      (fun s ->
        Alcotest.(check bool) "no image suggestions" false
          (Provkit_util.Strutil.contains_substring ~needle:"/img/" s.Suggest.url))
      (Suggest.suggest store "image")

let test_suggest_empty_input () =
  let _web, _engine, api, _ambiguity, _a, _b, _ctx = ambiguous_history () in
  Alcotest.(check (list unit)) "empty typed" []
    (List.map (fun _ -> ()) (Suggest.suggest (Core.Api.store api) ""))

let suite =
  [
    Alcotest.test_case "awesomebar frecency ranking" `Quick test_awesomebar_matches_and_ranks_by_frecency;
    Alcotest.test_case "awesomebar empty/nonsense" `Quick test_awesomebar_empty_and_nonsense;
    Alcotest.test_case "awesomebar adaptive" `Quick test_awesomebar_adaptive_learning;
    Alcotest.test_case "awesomebar limit" `Quick test_awesomebar_limit;
    Alcotest.test_case "awesomebar snapshot never stale" `Quick
      test_awesomebar_snapshot_never_stale;
    Alcotest.test_case "suggest baseline popularity" `Quick test_suggest_without_context_follows_popularity;
    Alcotest.test_case "suggest context flips sense" `Quick test_suggest_with_context_flips_the_sense;
    Alcotest.test_case "suggest hides embeds" `Quick test_suggest_hidden_pages_excluded;
    Alcotest.test_case "suggest empty input" `Quick test_suggest_empty_input;
  ]
