(** Incremental provenance persistence.

    A browser cannot rewrite its whole provenance database on every
    click; Places persists incrementally and so must a provenance store
    (§4 implements the schema in SQLite precisely because it gives
    cheap incremental writes).  This module is that path for our store:
    an append-only binary log of provenance operations.

    - {!recording_store} mirrors every store mutation into the log as it
      happens;
    - {!replay} rebuilds a store from a log, tolerating a damaged tail
      (the crash case: recovery stops at the last verified record);
    - {!compact} rewrites the log as a relational snapshot plus an empty
      tail, bounding log growth;
    - {!Segmented} is the durable on-disk form: rotating checksummed
      segments under a manifest, with compaction and crash recovery.

    Storage format v2 frames every record with a length prefix and a
    CRC-32 ({!Relstore.Codec.write_frame}), so corruption anywhere in
    the file — a flipped byte, a torn write mid-file, not merely a
    truncated tail — is detected and recovery keeps exactly the longest
    verified prefix.  v1 journals (bare op encodings behind a
    [PROVLOG1] magic) still load; new journals are always v2.

    Experiments E14/E16 measure the per-event cost of this path and its
    behaviour across a sweep of injected crash points. *)

type op =
  | Add_node of Prov_node.t
  | Add_edge of { src : int; dst : int; edge : Prov_edge.t }
  | Close_node of { id : int; time : int }

val encode_op : Buffer.t -> op -> unit
val decode_op : string -> int ref -> op
(** Raises {!Relstore.Errors.Corrupt} on malformed (non-truncated)
    input. *)

val op_of_mutation : Prov_store.mutation -> op
(** The journal record for a store mutation (what {!recording_store}
    and {!Segmented.attach} append). *)

val apply_op : Prov_store.t -> op -> unit
(** Apply one recorded operation through the restore path (no observer
    callbacks fire). *)

val format_version : string -> int option
(** [Some 1] / [Some 2] from a journal image's magic, [None] if it is
    not a journal. *)

(** {2 In-memory journal} *)

type t

val create : unit -> t
(** An empty journal. *)

val append : t -> op -> unit
val length : t -> int
(** Operations appended so far. *)

val byte_size : t -> int
(** Exact encoded size of the journal. *)

val to_bytes : t -> string
(** The v2 (framed, checksummed) image. *)

val to_bytes_v1 : t -> string
(** The legacy unframed image — kept for the framing-overhead
    measurement (E16) and for exercising the v1 load path. *)

val of_bytes : ?tolerate_truncation:bool -> string -> t
(** Accepts v1 and v2 images (probed by magic).
    [tolerate_truncation] (default true) stops cleanly at the last
    verified record instead of raising — the crash-recovery behaviour.
    Under v2 this also covers mid-file corruption: the first record
    whose checksum fails ends the readable prefix. *)

val ops : t -> op list

(** {2 Wiring} *)

val recording_store : unit -> Prov_store.t * t
(** A fresh store whose every mutation is mirrored into the returned
    journal.  Use the store exactly as usual (including through
    {!Capture}). *)

val replay : t -> Prov_store.t
(** Rebuild a store by applying the journal in order. *)

val ops_of_store : Prov_store.t -> op list
(** A canonical op stream equivalent to the store's current contents:
    every node (close time baked in) in id order, then every edge.
    Replaying it into an empty store reproduces the source; refolding
    it into a matview registry leaves the views snapshot-consistent
    with the store. *)

val save : t -> path:string -> unit
val load : path:string -> t

(** {2 Compaction} *)

val compact : Prov_store.t -> Relstore.Database.t * t
(** Snapshot the store relationally and return the empty journal that
    replaces the log — [of_database snapshot] + replaying the (empty)
    tail equals the original store. *)

(** {2 Segmented write-ahead log}

    The durable form of the journal: a directory holding an atomically
    replaced [MANIFEST] (a checksummed frame naming the live files), an
    optional compacted snapshot, and a list of v2 segment files.  The
    active segment rotates once it exceeds a configurable byte budget;
    {!Segmented.compact} replaces history with a fresh snapshot and
    truncates the tail.  All writes go through {!Provkit_util.Faulty_io}
    sinks, so tests (and [provctl wal --inject-fault]) can crash, tear,
    or flip the stream and measure what {!Segmented.recover}
    salvages. *)

module Segmented : sig
  type config = {
    max_segment_bytes : int;  (** rotate beyond this size *)
    group_commit_ops : int;
        (** flush once at least this many appends are pending; [1]
            (the default) keeps every append individually durable *)
    group_commit_bytes : int;
        (** ... or once this many pending bytes accumulate, whichever
            trigger fires first *)
  }

  val default_config : config
  (** 256 KiB segments, group-commit off ([group_commit_ops = 1],
      [group_commit_bytes = 64] KiB). *)

  type handle

  val open_ :
    ?config:config -> ?make_sink:(string -> Provkit_util.Faulty_io.sink) -> string -> handle
  (** Open (creating if needed) a WAL directory for appending.  A fresh
      active segment is always started: recovered segments may end in a
      torn frame, and nothing may be appended after unverifiable
      bytes.  [make_sink] lets callers interpose fault injection on the
      files being written. *)

  val append : handle -> op -> unit
  (** Frame, checksum, and write one operation; flushed according to the
      group-commit triggers ([group_commit_ops = 1] flushes before
      returning, the historical behaviour).  Rotates the active segment
      when the size budget is exceeded (pending appends are flushed
      first: a rotation never strands undurable ops in a closed
      segment). *)

  val append_batch : handle -> op list -> unit
  (** Append a whole list with one sink write and at most one flush —
      the amortized ingest path.  A crash mid-batch can tear the batch;
      recovery keeps a frame-aligned prefix of it. *)

  val durable : handle -> unit
  (** Barrier: flush any pending appends now.  After [durable] returns,
      every append made so far survives a crash (modulo injected
      faults).  A no-op when nothing is pending. *)

  val pending : handle -> int
  (** Appends written to the active sink but not yet flushed — what a
      crash right now would lose. *)

  val attach : handle -> Prov_store.t -> unit
  (** Mirror every subsequent mutation of the store into the WAL. *)

  val rotate : handle -> unit
  (** Force a segment boundary (normally automatic). *)

  val compact : handle -> Prov_store.t -> unit
  (** Write a checksummed snapshot of [store], point the manifest at it,
      drop all previous segments and snapshot, and continue appending
      into an empty segment. *)

  val close : handle -> unit
  (** Flushes pending appends, then closes the active sink. *)

  val segments : handle -> string list
  (** Live segment file names, oldest first. *)

  val generation : handle -> int
  (** Bumped by every {!compact}. *)

  val appended : handle -> int
  (** Operations appended through this handle. *)

  val active_sink : handle -> Provkit_util.Faulty_io.sink
  (** The sink of the active segment — exposed so a caller can arm
      faults on exactly the file a simulated crash should hit. *)

  type recovery = {
    store : Prov_store.t;
    ops_applied : int;  (** tail operations replayed over the snapshot *)
    segments_read : int;
    truncated : bool;  (** recovery stopped at an unverifiable frame *)
  }

  val recover : ?views:op Relstore.Matview.t -> dir:string -> unit -> recovery
  (** Rebuild a store from the manifest: load the snapshot (if any),
      then replay segments in order, stopping at the first frame that
      fails verification — the recovered store is always an op-sequence
      prefix of what was logged.  When [views] is given, the registry
      is rebuilt from {!ops_of_store} of the recovered store, so its
      views come back snapshot-consistent with the tables even after a
      torn tail. *)

  val manifest_check : dir:string -> unit -> Provkit_obs.Health.verdict * string
  (** The manifest-sanity judgment: decodes the manifest and verifies
      every file it names exists.  Missing directory/manifest reads as
      [Degraded] (nothing durable yet); an undecodable manifest or one
      naming absent files reads as [Failing]. *)

  val register_manifest_check : dir:string -> unit
  (** Register {!manifest_check} with {!Provkit_obs.Health} under
      {!Provkit_obs.Names.health_wal_manifest}. *)
end
