module V = Relstore.Varint
module C = Relstore.Codec
module Obs = Provkit_obs

type op =
  | Add_node of Prov_node.t
  | Add_edge of { src : int; dst : int; edge : Prov_edge.t }
  | Close_node of { id : int; time : int }

(* --- op codec --- *)

let write_opt_int buf = function
  | None -> Buffer.add_char buf '\000'
  | Some n ->
    Buffer.add_char buf '\001';
    V.write_signed buf n

let read_opt_int s pos =
  if !pos >= String.length s then Relstore.Errors.corrupt "prov_log: truncated option"
  else begin
    let c = s.[!pos] in
    incr pos;
    match c with
    | '\000' -> None
    | '\001' -> Some (V.read_signed s pos)
    | _ -> Relstore.Errors.corrupt "prov_log: bad option tag"
  end

let write_kind buf (kind : Prov_node.kind) =
  V.write_unsigned buf (Prov_node.kind_code kind);
  match kind with
  | Prov_node.Page { url; title } ->
    C.write_string buf url;
    C.write_string buf title
  | Prov_node.Visit { url; title; transition; tab } ->
    C.write_string buf url;
    C.write_string buf title;
    V.write_unsigned buf (Browser.Transition.to_code transition);
    V.write_unsigned buf tab
  | Prov_node.Bookmark { title; url } ->
    C.write_string buf title;
    C.write_string buf url
  | Prov_node.Download { source_url; target_path } ->
    C.write_string buf source_url;
    C.write_string buf target_path
  | Prov_node.Search_term { query } -> C.write_string buf query
  | Prov_node.Form_submission { fields } ->
    V.write_unsigned buf (List.length fields);
    List.iter
      (fun (k, v) ->
        C.write_string buf k;
        C.write_string buf v)
      fields

let read_kind s pos : Prov_node.kind =
  match V.read_unsigned s pos with
  | 0 ->
    let url = C.read_string s pos in
    let title = C.read_string s pos in
    Prov_node.Page { url; title }
  | 1 ->
    let url = C.read_string s pos in
    let title = C.read_string s pos in
    let transition = Browser.Transition.of_code (V.read_unsigned s pos) in
    let tab = V.read_unsigned s pos in
    Prov_node.Visit { url; title; transition; tab }
  | 2 ->
    let title = C.read_string s pos in
    let url = C.read_string s pos in
    Prov_node.Bookmark { title; url }
  | 3 ->
    let source_url = C.read_string s pos in
    let target_path = C.read_string s pos in
    Prov_node.Download { source_url; target_path }
  | 4 -> Prov_node.Search_term { query = C.read_string s pos }
  | 5 ->
    let n = V.read_unsigned s pos in
    let fields =
      List.init n (fun _ ->
          let k = C.read_string s pos in
          let v = C.read_string s pos in
          (k, v))
    in
    Prov_node.Form_submission { fields }
  | k -> Relstore.Errors.corrupt "prov_log: unknown node kind %d" k

let encode_op buf = function
  | Add_node n ->
    Buffer.add_char buf '\000';
    V.write_unsigned buf n.Prov_node.id;
    write_kind buf n.Prov_node.kind;
    write_opt_int buf n.Prov_node.time;
    write_opt_int buf n.Prov_node.close_time
  | Add_edge { src; dst; edge } ->
    Buffer.add_char buf '\001';
    V.write_unsigned buf src;
    V.write_unsigned buf dst;
    V.write_unsigned buf (Prov_edge.kind_code edge.Prov_edge.kind);
    V.write_signed buf edge.Prov_edge.time
  | Close_node { id; time } ->
    Buffer.add_char buf '\002';
    V.write_unsigned buf id;
    V.write_signed buf time

let decode_op s pos =
  if !pos >= String.length s then Relstore.Errors.corrupt "prov_log: truncated op tag"
  else begin
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | '\000' ->
      let id = V.read_unsigned s pos in
      let kind = read_kind s pos in
      let time = read_opt_int s pos in
      let close_time = read_opt_int s pos in
      Add_node { Prov_node.id; kind; time; close_time }
    | '\001' ->
      let src = V.read_unsigned s pos in
      let dst = V.read_unsigned s pos in
      let kind = Prov_edge.kind_of_code (V.read_unsigned s pos) in
      let time = V.read_signed s pos in
      Add_edge { src; dst; edge = { Prov_edge.kind; time } }
    | '\002' ->
      let id = V.read_unsigned s pos in
      let time = V.read_signed s pos in
      Close_node { id; time }
    | c -> Relstore.Errors.corrupt "prov_log: unknown op tag %d" (Char.code c)
  end

(* --- journal --- *)

(* Format v1 (legacy): magic followed by bare op encodings.  A bit flip
   mid-file silently garbles every later record; only a truncated tail
   is detectable.  Format v2 frames each record as
   [varint length][CRC-32][payload] so corruption *anywhere* is caught
   and recovery stops at the last verified prefix. *)
let magic_v1 = "PROVLOG1"
let magic_v2 = "PROVLOG2"

let format_version s =
  let probe m = String.length s >= String.length m && String.sub s 0 (String.length m) = m in
  if probe magic_v2 then Some 2 else if probe magic_v1 then Some 1 else None

type t = { buf : Buffer.t; scratch : Buffer.t; mutable count : int }

let create () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v2;
  { buf; scratch = Buffer.create 128; count = 0 }

let encode_framed_op scratch op =
  Buffer.clear scratch;
  encode_op scratch op;
  Buffer.contents scratch

let decode_framed_op s pos =
  let payload = C.read_frame s pos in
  let p = ref 0 in
  let op = decode_op payload p in
  if !p <> String.length payload then
    Relstore.Errors.corrupt "prov_log: %d trailing bytes inside frame"
      (String.length payload - !p);
  op

let m_journal_appends = Obs.Metrics.counter Obs.Names.journal_appends

let append t op =
  C.write_frame t.buf (encode_framed_op t.scratch op);
  t.count <- t.count + 1;
  Obs.Metrics.incr m_journal_appends

let length t = t.count
let byte_size t = Buffer.length t.buf
let to_bytes t = Buffer.contents t.buf

(* Decode every record of a journal image (either format).  Returns the
   ops and whether the whole image was consumed cleanly; in tolerant
   mode a bad record ends the scan (the crash-recovery prefix), in
   strict mode it raises. *)
let decode_prefix ~tolerate_truncation s =
  let decode_one =
    match format_version s with
    | Some 2 -> decode_framed_op
    | Some 1 -> decode_op
    | _ -> Relstore.Errors.corrupt "prov_log: bad magic"
  in
  let pos = ref 8 (* both magics are 8 bytes *) in
  let ops = ref [] in
  let clean = ref true in
  (try
     while !pos < String.length s do
       (* Remember where this record started: a damaged record decodes
          partially and must be discarded wholesale. *)
       let start = !pos in
       match decode_one s pos with
       | op -> ops := op :: !ops
       | exception Relstore.Errors.Corrupt _ when tolerate_truncation ->
         pos := start;
         clean := false;
         raise Exit
     done
   with Exit -> ());
  (List.rev !ops, !clean)

let decode_all ~tolerate_truncation s = fst (decode_prefix ~tolerate_truncation s)

let of_bytes ?(tolerate_truncation = true) s =
  let ops, clean = decode_prefix ~tolerate_truncation s in
  if not clean then
    Obs.Flight.record "journal.load.truncated"
      ~attrs:
        [
          ("ops_salvaged", string_of_int (List.length ops));
          ("bytes", string_of_int (String.length s));
        ];
  let t = create () in
  List.iter (append t) ops;
  t

let ops t = decode_all ~tolerate_truncation:false (to_bytes t)

let to_bytes_v1 t =
  let buf = Buffer.create (byte_size t) in
  Buffer.add_string buf magic_v1;
  List.iter (encode_op buf) (ops t);
  Buffer.contents buf

let op_of_mutation = function
  | Prov_store.M_node n -> Add_node n
  | Prov_store.M_edge (src, dst, edge) -> Add_edge { src; dst; edge }
  | Prov_store.M_close (id, time) -> Close_node { id; time }

let apply_op store op =
  match op with
  | Add_node n -> Prov_store.restore_node store n
  | Add_edge { src; dst; edge } -> Prov_store.restore_edge store ~src ~dst edge
  | Close_node { id; time } -> begin
    match Prov_store.node_opt store id with
    | Some n -> Prov_store.restore_node store { n with Prov_node.close_time = Some time }
    | None -> ()
  end

(* A canonical op stream equivalent to a store's current contents:
   every node (close time already baked in) in id order, then every
   edge.  Replaying it into an empty store reproduces the source, and
   refolding it into matview registries leaves them snapshot-consistent
   with the store — the WAL recovery path hands exactly this stream to
   [Segmented.recover]'s [?views]. *)
let ops_of_store store =
  let g = Prov_store.graph store in
  let nodes =
    List.map
      (fun id -> Add_node (Prov_store.node store id))
      (List.sort Int.compare (Provgraph.Digraph.nodes g))
  in
  let edges =
    List.rev
      (Provgraph.Digraph.fold_edges g ~init:[] ~f:(fun acc src dst edge ->
           Add_edge { src; dst; edge } :: acc))
  in
  nodes @ edges

let recording_store () =
  let store = Prov_store.create () in
  let journal = create () in
  Prov_store.set_observer store (fun m -> append journal (op_of_mutation m));
  (store, journal)

let replay t =
  let store = Prov_store.create () in
  List.iter (apply_op store) (ops t);
  store

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_bytes t))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_bytes (really_input_string ic len))

let compact store = (Prov_schema.to_database store, create ())

(* --- segmented write-ahead log --- *)

module Segmented = struct
  module Fio = Provkit_util.Faulty_io

  (* WAL health metrics: every durability-relevant action ticks a
     counter, so `provctl stats` can report appends/fsyncs/rotations/
     compactions and recovery outcomes without bespoke accounting. *)
  let m_appends = Obs.Metrics.counter Obs.Names.wal_appends
  let m_fsyncs = Obs.Metrics.counter Obs.Names.wal_fsyncs
  let m_rotations = Obs.Metrics.counter Obs.Names.wal_rotations
  let m_compactions = Obs.Metrics.counter Obs.Names.wal_compactions
  let m_snapshots = Obs.Metrics.counter Obs.Names.wal_snapshots
  let m_bytes = Obs.Metrics.counter Obs.Names.wal_bytes_written
  let m_recoveries = Obs.Metrics.counter Obs.Names.wal_recoveries
  let m_recovered_ops = Obs.Metrics.counter Obs.Names.wal_recovered_ops
  let m_recovered_segments = Obs.Metrics.counter Obs.Names.wal_recovered_segments
  let m_recoveries_truncated = Obs.Metrics.counter Obs.Names.wal_recoveries_truncated
  let h_batch_ops = Obs.Metrics.histogram Obs.Names.wal_batch_ops
  let g_fsyncs_per_append = Obs.Metrics.gauge Obs.Names.wal_fsyncs_per_append

  type config = {
    max_segment_bytes : int;
    group_commit_ops : int;
    group_commit_bytes : int;
  }

  (* group_commit_ops = 1 keeps the historical contract: every append
     is durable before [append] returns. *)
  let default_config =
    { max_segment_bytes = 256 * 1024; group_commit_ops = 1; group_commit_bytes = 64 * 1024 }

  let manifest_magic = "PROVMAN1"
  let snapshot_magic = "PROVSNP1"
  let manifest_file = "MANIFEST"

  type manifest = {
    generation : int;
    snapshot : string option;  (* file holding the compacted base image *)
    segments : string list;  (* live tail segments, oldest first *)
  }

  let encode_manifest m =
    let buf = Buffer.create 128 in
    V.write_unsigned buf m.generation;
    (match m.snapshot with
    | None -> Buffer.add_char buf '\000'
    | Some f ->
      Buffer.add_char buf '\001';
      C.write_string buf f);
    V.write_unsigned buf (List.length m.segments);
    List.iter (C.write_string buf) m.segments;
    Buffer.contents buf

  let decode_manifest s =
    let lm = String.length manifest_magic in
    if String.length s < lm || String.sub s 0 lm <> manifest_magic then
      Relstore.Errors.corrupt "wal: bad manifest magic";
    let pos = ref lm in
    let payload = C.read_frame s pos in
    let p = ref 0 in
    let generation = V.read_unsigned payload p in
    let snapshot =
      if !p >= String.length payload then Relstore.Errors.corrupt "wal: truncated manifest"
      else begin
        let tag = payload.[!p] in
        incr p;
        match tag with
        | '\000' -> None
        | '\001' -> Some (C.read_string payload p)
        | _ -> Relstore.Errors.corrupt "wal: bad manifest snapshot tag"
      end
    in
    let n = C.read_count payload p in
    let segments = List.init n (fun _ -> C.read_string payload p) in
    { generation; snapshot; segments }

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  (* The manifest is tiny and names the live files, so it is replaced
     atomically (write-then-rename): a crash leaves either the old or
     the new manifest, never a torn one. *)
  let write_manifest ~dir m =
    let buf = Buffer.create 160 in
    Buffer.add_string buf manifest_magic;
    C.write_frame buf (encode_manifest m);
    let tmp = Filename.concat dir (manifest_file ^ ".tmp") in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents buf));
    Sys.rename tmp (Filename.concat dir manifest_file)

  type handle = {
    dir : string;
    config : config;
    make_sink : string -> Fio.sink;
    mutable manifest : manifest;
    mutable active : Fio.sink;
    mutable active_bytes : int;
    mutable next_index : int;
    mutable appended : int;
    mutable pending_ops : int;  (* appends written but not yet flushed *)
    mutable pending_bytes : int;
    mutable batch_fsyncs : int;  (* append-driven fsyncs (headers excluded) *)
    scratch : Buffer.t;
  }

  let segment_file i = Printf.sprintf "segment-%06d.log" i
  let snapshot_file gen = Printf.sprintf "snapshot-%06d.db" gen

  let start_segment h =
    let name = segment_file h.next_index in
    h.next_index <- h.next_index + 1;
    let sink = h.make_sink (Filename.concat h.dir name) in
    Fio.write sink magic_v2;
    Fio.flush sink;
    Obs.Metrics.incr m_fsyncs;
    Obs.Metrics.add m_bytes (String.length magic_v2);
    h.active <- sink;
    h.active_bytes <- String.length magic_v2;
    (* Segment file exists before the manifest names it. *)
    h.manifest <- { h.manifest with segments = h.manifest.segments @ [ name ] };
    write_manifest ~dir:h.dir h.manifest

  let read_manifest dir =
    let path = Filename.concat dir manifest_file in
    if Sys.file_exists path then decode_manifest (read_file path)
    else { generation = 0; snapshot = None; segments = [] }

  let next_index_of manifest =
    (* Segment names are zero-padded, so the successor of the last name
       is recoverable by parsing its digits. *)
    List.fold_left
      (fun acc name ->
        match Scanf.sscanf_opt name "segment-%d.log" (fun i -> i) with
        | Some i -> max acc (i + 1)
        | None -> acc)
      0 manifest.segments

  let open_ ?(config = default_config) ?(make_sink = fun path -> Fio.to_file path) dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let manifest = read_manifest dir in
    let h =
      {
        dir;
        config;
        make_sink;
        manifest;
        active = Fio.to_buffer (Buffer.create 1);
        active_bytes = 0;
        next_index = next_index_of manifest;
        appended = 0;
        pending_ops = 0;
        pending_bytes = 0;
        batch_fsyncs = 0;
        scratch = Buffer.create 128;
      }
    in
    (* Never append to a recovered segment: its tail may be torn, and
       bytes after a torn frame are unreachable to recovery.  A fresh
       segment keeps every new record behind a verified prefix. *)
    start_segment h;
    h

  let active_sink h = h.active
  let segments h = h.manifest.segments
  let generation h = h.manifest.generation
  let appended h = h.appended
  let pending h = h.pending_ops

  (* Group commit: persist every written-but-unflushed append with one
     sink flush.  The batch-size histogram and the fsyncs-per-append
     gauge are the ground truth the bench rows and provctl stats report
     — a flush of k ops is one fsync amortized over k appends. *)
  let flush_pending h =
    if h.pending_ops > 0 then begin
      let ops = h.pending_ops in
      if ops > 1 then
        Obs.Trace.with_span Obs.Names.span_wal_flush
          ~attrs:[ ("ops", string_of_int ops); ("bytes", string_of_int h.pending_bytes) ]
          (fun () -> Fio.flush h.active)
      else Fio.flush h.active;
      h.pending_ops <- 0;
      h.pending_bytes <- 0;
      h.batch_fsyncs <- h.batch_fsyncs + 1;
      Obs.Metrics.incr m_fsyncs;
      Obs.Metrics.observe h_batch_ops ops;
      if h.appended > 0 then
        Obs.Metrics.set_gauge g_fsyncs_per_append
          (float_of_int h.batch_fsyncs /. float_of_int h.appended)
    end

  let durable h = flush_pending h

  let rotate h =
    flush_pending h;
    Fio.close h.active;
    Obs.Metrics.incr m_rotations;
    start_segment h

  let maybe_commit h =
    if
      h.pending_ops >= h.config.group_commit_ops
      || h.pending_bytes >= h.config.group_commit_bytes
    then flush_pending h;
    if h.active_bytes >= h.config.max_segment_bytes then rotate h

  let append h op =
    let frame = Buffer.create 160 in
    C.write_frame frame (encode_framed_op h.scratch op);
    Fio.write h.active (Buffer.contents frame);
    h.active_bytes <- h.active_bytes + Buffer.length frame;
    h.appended <- h.appended + 1;
    h.pending_ops <- h.pending_ops + 1;
    h.pending_bytes <- h.pending_bytes + Buffer.length frame;
    Obs.Metrics.incr m_appends;
    Obs.Metrics.add m_bytes (Buffer.length frame);
    Obs.Timeseries.pulse ();
    maybe_commit h

  (* One sink write and (at most) one flush for the whole list: the
     batch ingest path.  A crash mid-batch tears within that single
     write, so recovery keeps a frame-aligned prefix of it. *)
  let append_batch h ops =
    match ops with
    | [] -> ()
    | _ :: _ ->
      let buf = Buffer.create 1024 in
      List.iter (fun op -> C.write_frame buf (encode_framed_op h.scratch op)) ops;
      let n = List.length ops in
      Fio.write h.active (Buffer.contents buf);
      h.active_bytes <- h.active_bytes + Buffer.length buf;
      h.appended <- h.appended + n;
      h.pending_ops <- h.pending_ops + n;
      h.pending_bytes <- h.pending_bytes + Buffer.length buf;
      Obs.Metrics.add m_appends n;
      Obs.Metrics.add m_bytes (Buffer.length buf);
      maybe_commit h

  let attach h store = Prov_store.set_observer store (fun m -> append h (op_of_mutation m))

  let write_snapshot h store =
    let name = snapshot_file (h.manifest.generation + 1) in
    let sink = h.make_sink (Filename.concat h.dir name) in
    Fio.write sink snapshot_magic;
    let buf = Buffer.create 4096 in
    C.write_frame buf (Relstore.Database.to_bytes (Prov_schema.to_database store));
    Fio.write sink (Buffer.contents buf);
    Fio.close sink;
    Obs.Metrics.incr m_snapshots;
    Obs.Metrics.add m_bytes (String.length snapshot_magic + Buffer.length buf);
    name

  (* Compaction: persist the live store as a checksummed snapshot, then
     truncate the tail — old segments (and the previous snapshot) are
     dropped and appending continues into a fresh, empty segment. *)
  let compact h store =
    Obs.Trace.with_span Obs.Names.span_wal_compact ~attrs:[ ("dir", h.dir) ] (fun () ->
        let old = h.manifest in
        flush_pending h;
        let snap = write_snapshot h store in
        Fio.close h.active;
        h.manifest <-
          { generation = old.generation + 1; snapshot = Some snap; segments = [] };
        start_segment h;
        let remove name =
          let path = Filename.concat h.dir name in
          if Sys.file_exists path then Sys.remove path
        in
        List.iter remove old.segments;
        Option.iter remove old.snapshot;
        Obs.Metrics.incr m_compactions)

  let close h =
    flush_pending h;
    Fio.close h.active

  type recovery = {
    store : Prov_store.t;
    ops_applied : int;
    segments_read : int;
    truncated : bool;
  }

  let read_snapshot path =
    let s = read_file path in
    let lm = String.length snapshot_magic in
    if String.length s < lm || String.sub s 0 lm <> snapshot_magic then
      Relstore.Errors.corrupt "wal: bad snapshot magic";
    let pos = ref lm in
    Prov_schema.of_database (Relstore.Database.of_bytes (C.read_frame s pos))

  let recover ?views ~dir () =
    Obs.Trace.with_span Obs.Names.span_wal_recover ~attrs:[ ("dir", dir) ] (fun () ->
    let manifest = read_manifest dir in
    let store =
      match manifest.snapshot with
      | None -> Prov_store.create ()
      | Some f -> read_snapshot (Filename.concat dir f)
    in
    let ops_applied = ref 0 in
    let segments_read = ref 0 in
    let truncated = ref false in
    (* Replay stops at the first unverifiable frame — even in an early
       segment — so the recovered store is always an op-sequence prefix
       of what was logged; nothing after a damaged record is trusted. *)
    (try
       List.iter
         (fun name ->
           let path = Filename.concat dir name in
           if not (Sys.file_exists path) then begin
             truncated := true;
             raise Exit
           end;
           let ops, clean =
             (* A segment whose header itself is damaged contributes
                nothing; recovery ends at the previous segment. *)
             try decode_prefix ~tolerate_truncation:true (read_file path)
             with Relstore.Errors.Corrupt _ -> ([], false)
           in
           incr segments_read;
           List.iter
             (fun op ->
               apply_op store op;
               incr ops_applied)
             ops;
           if not clean then begin
             truncated := true;
             raise Exit
           end)
         manifest.segments
     with Exit -> ());
    Obs.Metrics.incr m_recoveries;
    Obs.Metrics.add m_recovered_ops !ops_applied;
    Obs.Metrics.add m_recovered_segments !segments_read;
    if !truncated then begin
      Obs.Metrics.incr m_recoveries_truncated;
      Obs.Flight.record "wal.recovery.truncated"
        ~attrs:
          [
            ("dir", dir);
            ("ops_applied", string_of_int !ops_applied);
            ("segments_read", string_of_int !segments_read);
          ]
    end;
    (* Views rebuild from the recovered store itself, not the raw
       segment bytes, so they are snapshot-consistent with the tables
       even when replay stopped at a torn frame. *)
    (match views with
    | None -> ()
    | Some registry -> Relstore.Matview.rebuild registry (ops_of_store store));
    { store; ops_applied = !ops_applied; segments_read = !segments_read; truncated = !truncated })

  (* The manifest-sanity health check: the manifest must decode and
     every file it names (snapshot + live segments) must exist.  A
     missing directory or manifest reads as Degraded (nothing durable
     yet, but nothing lost); a manifest that names absent files means
     recovery would truncate — Failing. *)
  let manifest_check ~dir () =
    if not (Sys.file_exists dir) then
      (Obs.Health.Degraded, Printf.sprintf "wal directory %s missing (nothing durable yet)" dir)
    else if not (Sys.file_exists (Filename.concat dir manifest_file)) then
      (Obs.Health.Degraded, "no manifest yet")
    else
      match read_manifest dir with
      | exception Relstore.Errors.Corrupt msg ->
        (Obs.Health.Failing, Printf.sprintf "manifest corrupt: %s" msg)
      | m ->
        let named = (match m.snapshot with None -> [] | Some f -> [ f ]) @ m.segments in
        let missing =
          List.filter (fun f -> not (Sys.file_exists (Filename.concat dir f))) named
        in
        if missing <> [] then
          ( Obs.Health.Failing,
            Printf.sprintf "manifest names missing files: %s" (String.concat ", " missing) )
        else
          ( Obs.Health.Ok,
            Printf.sprintf "generation %d, %d segment(s)%s" m.generation
              (List.length m.segments)
              (match m.snapshot with None -> "" | Some f -> ", snapshot " ^ f) )

  let register_manifest_check ~dir =
    Obs.Health.register Obs.Names.health_wal_manifest (manifest_check ~dir)
end
