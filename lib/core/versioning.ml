module Digraph = Provgraph.Digraph
module Cycle = Provgraph.Cycle
module R = Relstore

let causal_projection store =
  let g = Prov_store.graph store in
  let out = Digraph.create ~initial_capacity:(Digraph.node_count g) () in
  Digraph.iter_nodes g (fun id n -> Digraph.add_node out id n);
  Digraph.iter_edges g (fun src dst (e : Prov_edge.t) ->
      if Prov_edge.is_causal e.Prov_edge.kind then Digraph.add_edge out ~src ~dst e);
  out

let is_acyclic store = not (Cycle.has_cycle (causal_projection store))
let find_causal_cycle store = Cycle.find_cycle (causal_projection store)

type page_graph = {
  graph : (string, Prov_edge.t) Digraph.t;
  page_of_store_node : int -> int option;
}

let page_projection store =
  let g = Prov_store.graph store in
  let out = Digraph.create () in
  let to_page id =
    match Prov_store.node_opt store id with
    | None -> None
    | Some n ->
      if Prov_node.is_page n then Some id
      else if Prov_node.is_visit n then Prov_store.page_of_visit store id
      else None
  in
  Digraph.iter_nodes g (fun id n ->
      if Prov_node.is_page n then begin
        let url = Option.value ~default:"" (Prov_node.url_of n) in
        Digraph.add_node out id url
      end);
  Digraph.iter_edges g (fun src dst (e : Prov_edge.t) ->
      if Prov_edge.is_traversal e.Prov_edge.kind then begin
        match (to_page src, to_page dst) with
        | Some ps, Some pd when ps <> pd -> Digraph.add_edge out ~src:ps ~dst:pd e
        | _ -> ()
      end);
  { graph = out; page_of_store_node = to_page }

let projection_database pg =
  let db = R.Database.create ~name:"page_projection" in
  let node_schema =
    R.Schema.make ~name:"pp_node"
      [ R.Column.make "id" R.Value.Tint; R.Column.make "url" R.Value.Ttext ]
  in
  let edge_schema =
    R.Schema.make ~name:"pp_edge"
      [
        R.Column.make "src" R.Value.Tint;
        R.Column.make "dst" R.Value.Tint;
        R.Column.make "kind" R.Value.Tint;
        R.Column.make "time" R.Value.Tint;
      ]
  in
  let nodes = R.Database.create_table db node_schema in
  R.Table.add_index ~unique:true nodes ~name:"pp_node_id" ~columns:[ "id" ];
  let edges = R.Database.create_table db edge_schema in
  R.Table.add_index edges ~name:"pp_edge_src" ~columns:[ "src" ];
  R.Table.add_index edges ~name:"pp_edge_dst" ~columns:[ "dst" ];
  Digraph.iter_nodes pg.graph (fun id url ->
      ignore
        (R.Table.insert_fields nodes [ ("id", R.Value.Int id); ("url", R.Value.Text url) ]));
  Digraph.iter_edges pg.graph (fun src dst (e : Prov_edge.t) ->
      ignore
        (R.Table.insert_fields edges
           [
             ("src", R.Value.Int src);
             ("dst", R.Value.Int dst);
             ("kind", R.Value.Int (Prov_edge.kind_code e.Prov_edge.kind));
             ("time", R.Value.Int e.Prov_edge.time);
           ]));
  db

type comparison = {
  versioned_nodes : int;
  versioned_edges : int;
  versioned_acyclic : bool;
  versioned_bytes : int;
  projected_nodes : int;
  projected_edges : int;
  projected_acyclic : bool;
  projected_bytes : int;
}

let compare_strategies store =
  let versioned_db = Prov_schema.to_database store in
  let pg = page_projection store in
  let projected_db = projection_database pg in
  {
    versioned_nodes = Prov_store.node_count store;
    versioned_edges = Prov_store.edge_count store;
    versioned_acyclic = is_acyclic store;
    versioned_bytes = R.Database.total_size versioned_db;
    projected_nodes = Digraph.node_count pg.graph;
    projected_edges = Digraph.edge_count pg.graph;
    projected_acyclic = not (Cycle.has_cycle pg.graph);
    projected_bytes = R.Database.total_size projected_db;
  }
