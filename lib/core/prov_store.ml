module Digraph = Provgraph.Digraph

type mutation =
  | M_node of Prov_node.t
  | M_edge of int * int * Prov_edge.t
  | M_close of int * int

type t = {
  graph : (Prov_node.t, Prov_edge.t) Digraph.t;
  mutable next_id : int;
  page_by_url : (string, int) Hashtbl.t;
  visit_by_engine : (int, int) Hashtbl.t;
  bookmark_by_engine : (int, int) Hashtbl.t;
  download_by_engine : (int, int) Hashtbl.t;
  form_by_engine : (int, int) Hashtbl.t;
  term_by_query : (string, int) Hashtbl.t;
  mutable observer : (mutation -> unit) option;
}

let create () =
  {
    graph = Digraph.create ~initial_capacity:4096 ();
    next_id = 1;
    page_by_url = Hashtbl.create 1024;
    visit_by_engine = Hashtbl.create 4096;
    bookmark_by_engine = Hashtbl.create 64;
    download_by_engine = Hashtbl.create 64;
    form_by_engine = Hashtbl.create 64;
    term_by_query = Hashtbl.create 256;
    observer = None;
  }

let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None
let notify t m = match t.observer with None -> () | Some f -> f m

let graph t = t.graph

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let insert t kind ~time =
  let id = fresh t in
  let node = { Prov_node.id; kind; time = Some time; close_time = None } in
  Digraph.add_node t.graph id node;
  notify t (M_node node);
  id

let add_page t ~url ~title ~time =
  match Hashtbl.find_opt t.page_by_url url with
  | Some id ->
    (* Keep the freshest non-empty title on the page object. *)
    let n = Digraph.node t.graph id in
    (match n.Prov_node.kind with
    | Prov_node.Page { url = u; title = old } when title <> "" && title <> old ->
      let updated = { n with Prov_node.kind = Prov_node.Page { url = u; title } } in
      Digraph.add_node t.graph id updated;
      notify t (M_node updated)
    | _ -> ());
    id
  | None ->
    let id = insert t (Prov_node.Page { url; title }) ~time in
    Hashtbl.replace t.page_by_url url id;
    id

let add_edge t ~src ~dst kind ~time =
  let edge = { Prov_edge.kind; time } in
  Digraph.add_edge t.graph ~src ~dst edge;
  notify t (M_edge (src, dst, edge))

let add_visit t ~engine_visit ~url ~title ~transition ~tab ~time =
  let page = add_page t ~url ~title ~time in
  let id = insert t (Prov_node.Visit { url; title; transition; tab }) ~time in
  Hashtbl.replace t.visit_by_engine engine_visit id;
  add_edge t ~src:page ~dst:id Prov_edge.Instance ~time;
  id

let close_visit t ~engine_visit ~time =
  match Hashtbl.find_opt t.visit_by_engine engine_visit with
  | None -> ()
  | Some id ->
    let n = Digraph.node t.graph id in
    Digraph.add_node t.graph id { n with Prov_node.close_time = Some time };
    notify t (M_close (id, time))

let add_bookmark t ~engine_bookmark ~url ~title ~time =
  let id = insert t (Prov_node.Bookmark { title; url }) ~time in
  Hashtbl.replace t.bookmark_by_engine engine_bookmark id;
  id

let add_download t ~engine_download ~source_url ~target_path ~time =
  let id = insert t (Prov_node.Download { source_url; target_path }) ~time in
  Hashtbl.replace t.download_by_engine engine_download id;
  id

let add_search_term t ~query ~time =
  let key = String.lowercase_ascii (String.trim query) in
  match Hashtbl.find_opt t.term_by_query key with
  | Some id -> id
  | None ->
    let id = insert t (Prov_node.Search_term { query = key }) ~time in
    Hashtbl.replace t.term_by_query key id;
    id

let add_form t ~engine_form ~fields ~time =
  let id = insert t (Prov_node.Form_submission { fields }) ~time in
  Hashtbl.replace t.form_by_engine engine_form id;
  id

let restore_node t (n : Prov_node.t) =
  Digraph.add_node t.graph n.Prov_node.id n;
  t.next_id <- max t.next_id (n.Prov_node.id + 1);
  match n.Prov_node.kind with
  | Prov_node.Page { url; _ } -> Hashtbl.replace t.page_by_url url n.Prov_node.id
  | Prov_node.Search_term { query } -> Hashtbl.replace t.term_by_query query n.Prov_node.id
  | Prov_node.Visit _ | Prov_node.Bookmark _ | Prov_node.Download _
  | Prov_node.Form_submission _ -> ()

let restore_edge t ~src ~dst (e : Prov_edge.t) = Digraph.add_edge t.graph ~src ~dst e

let node t id = Digraph.node t.graph id
let node_opt t id = Digraph.node_opt t.graph id
let page_of_url t url = Hashtbl.find_opt t.page_by_url url
let visit_node t engine_id = Hashtbl.find_opt t.visit_by_engine engine_id
let bookmark_node t engine_id = Hashtbl.find_opt t.bookmark_by_engine engine_id
let download_node t engine_id = Hashtbl.find_opt t.download_by_engine engine_id
let term_node t query = Hashtbl.find_opt t.term_by_query (String.lowercase_ascii (String.trim query))
let form_node t engine_id = Hashtbl.find_opt t.form_by_engine engine_id

let page_of_visit t visit =
  List.find_map
    (fun (src, (e : Prov_edge.t)) ->
      if e.Prov_edge.kind = Prov_edge.Instance then Some src else None)
    (Digraph.in_edges t.graph visit)

let visits_of_page t page =
  List.sort Int.compare
    (List.filter_map
       (fun (dst, (e : Prov_edge.t)) ->
         if e.Prov_edge.kind = Prov_edge.Instance then Some dst else None)
       (Digraph.out_edges t.graph page))

let page_visit_count t page = List.length (visits_of_page t page)

let page_hidden t page =
  match node_opt t page with
  | Some n when Prov_node.is_page n ->
    let hop_only visit =
      match (Digraph.node t.graph visit).Prov_node.kind with
      | Prov_node.Visit { transition; _ } -> begin
        match transition with
        | Browser.Transition.Embed | Browser.Transition.Redirect_permanent
        | Browser.Transition.Redirect_temporary -> true
        | Browser.Transition.Link | Browser.Transition.Typed | Browser.Transition.Bookmark
        | Browser.Transition.Download | Browser.Transition.Framed_link
        | Browser.Transition.Form_submit | Browser.Transition.Reload -> false
      end
      | _ -> false
    in
    let visits = visits_of_page t page in
    visits <> [] && List.for_all hop_only visits
  | _ -> false

let nodes_of_kind t pred = Digraph.filter_nodes t.graph (fun _ n -> pred n)
let node_count t = Digraph.node_count t.graph
let edge_count t = Digraph.edge_count t.graph

type stats = {
  nodes_total : int;
  edges_total : int;
  nodes_by_kind : (string * int) list;
  edges_by_kind : (string * int) list;
}

let stats t =
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let nk = Hashtbl.create 8 and ek = Hashtbl.create 16 in
  Digraph.iter_nodes t.graph (fun _ n -> bump nk (Prov_node.kind_label n.Prov_node.kind));
  Digraph.iter_edges t.graph (fun _ _ e -> bump ek (Prov_edge.kind_name e.Prov_edge.kind));
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    nodes_total = node_count t;
    edges_total = edge_count t;
    nodes_by_kind = sorted nk;
    edges_by_kind = sorted ek;
  }

let pp_stats ppf t =
  let s = stats t in
  Format.fprintf ppf "provenance store: %d nodes, %d edges@." s.nodes_total s.edges_total;
  List.iter (fun (k, n) -> Format.fprintf ppf "  node %-12s %6d@." k n) s.nodes_by_kind;
  List.iter (fun (k, n) -> Format.fprintf ppf "  edge %-18s %6d@." k n) s.edges_by_kind
