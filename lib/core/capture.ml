module Event = Browser.Event
module Transition = Browser.Transition
module Obs = Provkit_obs

(* Events ingested, total and per kind — the capture half of the
   paper's recording-overhead story. *)
let m_events = Obs.Metrics.counter Obs.Names.capture_events
let m_visit = Obs.Metrics.counter Obs.Names.capture_visit
let m_close = Obs.Metrics.counter Obs.Names.capture_close
let m_tab_opened = Obs.Metrics.counter Obs.Names.capture_tab_opened
let m_tab_closed = Obs.Metrics.counter Obs.Names.capture_tab_closed
let m_bookmark = Obs.Metrics.counter Obs.Names.capture_bookmark
let m_search = Obs.Metrics.counter Obs.Names.capture_search
let m_download = Obs.Metrics.counter Obs.Names.capture_download
let m_form = Obs.Metrics.counter Obs.Names.capture_form

let count_event event =
  Obs.Metrics.incr m_events;
  Obs.Metrics.incr
    (match (event : Event.t) with
    | Event.Visit _ -> m_visit
    | Event.Close _ -> m_close
    | Event.Tab_opened _ -> m_tab_opened
    | Event.Tab_closed _ -> m_tab_closed
    | Event.Bookmark_added _ -> m_bookmark
    | Event.Search _ -> m_search
    | Event.Download_started _ -> m_download
    | Event.Form_submitted _ -> m_form);
  (* Each ingested event advances the telemetry clock: every
     pulse_interval-th event snapshots the registry into the default
     time-series ring. *)
  Obs.Timeseries.pulse ()

type config = {
  record_typed_edges : bool;
  record_bookmark_nodes : bool;
  record_search_nodes : bool;
  record_form_nodes : bool;
  record_download_nodes : bool;
  record_close_times : bool;
  record_time_edges : bool;
  time_edge_fanout : int;
  record_tab_spawn : bool;
}

let full =
  {
    record_typed_edges = true;
    record_bookmark_nodes = true;
    record_search_nodes = true;
    record_form_nodes = true;
    record_download_nodes = true;
    record_close_times = true;
    record_time_edges = true;
    time_edge_fanout = 4;
    record_tab_spawn = true;
  }

let firefox_like =
  {
    record_typed_edges = false;
    record_bookmark_nodes = false;
    record_search_nodes = false;
    record_form_nodes = false;
    record_download_nodes = true;
    record_close_times = false;
    record_time_edges = false;
    time_edge_fanout = 0;
    record_tab_spawn = false;
  }

type t = {
  config : config;
  store : Prov_store.t;
  time_index : Time_index.t;
  referrer_of : (int, int) Hashtbl.t;  (* engine visit -> engine referrer *)
  tab_current : (int, int) Hashtbl.t;  (* tab -> displayed engine visit *)
  pending_spawn : (int, int) Hashtbl.t;  (* fresh tab -> opener's engine visit *)
  open_order : (int, int) Hashtbl.t;  (* engine visit -> open sequence no. *)
  mutable open_seq : int;
  (* Matview registries fed after each event's store mutations, so
     incremental views stay in lockstep with the capture stream no
     matter which entry point (engine subscription, [handle_batch],
     WAL replay through an observer) delivered it. *)
  mutable views : Event.t Relstore.Matview.t list;
}

(* Is this visit the page a tab displays (as opposed to a background
   fetch)?  Embeds render inside their parent; downloads never render. *)
let displayed transition =
  match (transition : Transition.t) with
  | Transition.Embed | Transition.Download -> false
  | Transition.Link | Transition.Typed | Transition.Bookmark | Transition.Redirect_permanent
  | Transition.Redirect_temporary | Transition.Framed_link | Transition.Form_submit
  | Transition.Reload -> true

let edge_kind_for config (transition : Transition.t) =
  match transition with
  | Transition.Link | Transition.Framed_link -> Some Prov_edge.Link_traversal
  | Transition.Typed ->
    if config.record_typed_edges then Some Prov_edge.Typed_traversal else None
  | Transition.Redirect_permanent | Transition.Redirect_temporary -> Some Prov_edge.Redirect
  | Transition.Embed -> Some Prov_edge.Embed
  | Transition.Download -> Some Prov_edge.Link_traversal
  | Transition.Bookmark ->
    (* The bookmark node itself carries the causality when bookmark
       nodes are on; otherwise Firefox-style: no relationship at all. *)
    None
  | Transition.Form_submit ->
    if config.record_form_nodes then None (* the form node will connect *)
    else Some Prov_edge.Link_traversal
  | Transition.Reload -> Some Prov_edge.Reload

let handle_visit t (v : Event.visit) =
  let cfg = t.config in
  let node =
    Prov_store.add_visit t.store ~engine_visit:v.Event.visit_id
      ~url:(Webmodel.Url.to_string v.Event.url)
      ~title:v.Event.title ~transition:v.Event.transition ~tab:v.Event.tab
      ~time:v.Event.time
  in
  (match v.Event.referrer with
  | None -> ()
  | Some r -> begin
    Hashtbl.replace t.referrer_of v.Event.visit_id r;
    match (edge_kind_for cfg v.Event.transition, Prov_store.visit_node t.store r) with
    | Some kind, Some rnode ->
      Prov_store.add_edge t.store ~src:rnode ~dst:node kind ~time:v.Event.time
    | _ -> ()
  end);
  (* Bookmark traversal edge. *)
  (match v.Event.via_bookmark with
  | Some b when cfg.record_bookmark_nodes -> begin
    match Prov_store.bookmark_node t.store b with
    | Some bnode ->
      Prov_store.add_edge t.store ~src:bnode ~dst:node Prov_edge.Bookmark_traversal
        ~time:v.Event.time
    | None -> ()
  end
  | _ -> ());
  if displayed v.Event.transition then begin
    (* Tab spawn: the first page of a tab descends from the opener's page. *)
    (match Hashtbl.find_opt t.pending_spawn v.Event.tab with
    | Some opener_visit when cfg.record_tab_spawn -> begin
      Hashtbl.remove t.pending_spawn v.Event.tab;
      match Prov_store.visit_node t.store opener_visit with
      | Some onode ->
        Prov_store.add_edge t.store ~src:onode ~dst:node Prov_edge.Tab_spawn
          ~time:v.Event.time
      | None -> ()
    end
    | Some _ -> Hashtbl.remove t.pending_spawn v.Event.tab
    | None -> ());
    Hashtbl.replace t.tab_current v.Event.tab v.Event.visit_id;
    (* Time relationships with currently displayed visits in other tabs. *)
    if cfg.record_time_edges then begin
      let partners =
        Hashtbl.fold
          (fun tab visit acc ->
            if tab <> v.Event.tab then
              match Prov_store.visit_node t.store visit with
              | Some vnode -> (Option.value ~default:0 (Hashtbl.find_opt t.open_order visit), vnode) :: acc
              | None -> acc
            else acc)
          t.tab_current []
      in
      let recent =
        List.filteri
          (fun i _ -> i < cfg.time_edge_fanout)
          (List.sort (fun (a, _) (b, _) -> Int.compare b a) partners)
      in
      (* Partners were opened earlier, so by the paper's rule they point
         at the newcomer. *)
      List.iter
        (fun (_, pnode) ->
          Prov_store.add_edge t.store ~src:pnode ~dst:node Prov_edge.Same_time
            ~time:v.Event.time)
        recent
    end;
    t.open_seq <- t.open_seq + 1;
    Hashtbl.replace t.open_order v.Event.visit_id t.open_seq;
    Time_index.add t.time_index ~node ~opened:v.Event.time
  end

let handle_event t event =
  let cfg = t.config in
  match (event : Event.t) with
  | Event.Visit v -> handle_visit t v
  | Event.Close { time; tab; visit_id } -> begin
    (match Hashtbl.find_opt t.tab_current tab with
    | Some current when current = visit_id -> Hashtbl.remove t.tab_current tab
    | _ -> ());
    match Prov_store.visit_node t.store visit_id with
    | Some node ->
      Time_index.close t.time_index ~node ~closed:time;
      if cfg.record_close_times then
        Prov_store.close_visit t.store ~engine_visit:visit_id ~time
    | None -> ()
  end
  | Event.Tab_opened { time = _; tab; opener_tab } -> begin
    match opener_tab with
    | None -> ()
    | Some opener -> begin
      match Hashtbl.find_opt t.tab_current opener with
      | Some opener_visit -> Hashtbl.replace t.pending_spawn tab opener_visit
      | None -> ()
    end
  end
  | Event.Tab_closed { time = _; tab } ->
    Hashtbl.remove t.tab_current tab;
    Hashtbl.remove t.pending_spawn tab
  | Event.Bookmark_added { time; bookmark_id; visit_id; url; title } ->
    if cfg.record_bookmark_nodes then begin
      let bnode =
        Prov_store.add_bookmark t.store ~engine_bookmark:bookmark_id
          ~url:(Webmodel.Url.to_string url) ~title ~time
      in
      match Prov_store.visit_node t.store visit_id with
      | Some vnode ->
        Prov_store.add_edge t.store ~src:vnode ~dst:bnode Prov_edge.Bookmarked_from ~time
      | None -> ()
    end
  | Event.Search { time; search_id = _; query; serp_visit } ->
    if cfg.record_search_nodes then begin
      let fresh_term = Prov_store.term_node t.store query = None in
      let term = Prov_store.add_search_term t.store ~query ~time in
      (match Prov_store.visit_node t.store serp_visit with
      | Some snode ->
        Prov_store.add_edge t.store ~src:term ~dst:snode Prov_edge.Search_query ~time
      | None -> ());
      (* The searched-from edge may only be added when the term node is
         freshly minted: a later visit pointing into an old term node
         would close a cycle — the §3.1 versioning problem.  Repeat
         searches keep their lineage through the SERP visit's own
         referrer edge instead. *)
      if fresh_term then begin
        match Hashtbl.find_opt t.referrer_of serp_visit with
        | Some r -> begin
          match Prov_store.visit_node t.store r with
          | Some rnode ->
            Prov_store.add_edge t.store ~src:rnode ~dst:term Prov_edge.Searched_from ~time
          | None -> ()
        end
        | None -> ()
      end
    end
  | Event.Download_started { time; download_id; visit_id; source_visit; url; target_path } ->
    if cfg.record_download_nodes then begin
      let dnode =
        Prov_store.add_download t.store ~engine_download:download_id
          ~source_url:(Webmodel.Url.to_string url) ~target_path ~time
      in
      (match Prov_store.visit_node t.store source_visit with
      | Some snode ->
        Prov_store.add_edge t.store ~src:snode ~dst:dnode Prov_edge.Download_source ~time
      | None -> ());
      match Prov_store.visit_node t.store visit_id with
      | Some fnode ->
        Prov_store.add_edge t.store ~src:fnode ~dst:dnode Prov_edge.Download_fetch ~time
      | None -> ()
    end
  | Event.Form_submitted { time; form_id; source_visit; result_visit; fields } ->
    if cfg.record_form_nodes then begin
      let fnode = Prov_store.add_form t.store ~engine_form:form_id ~fields ~time in
      (match Prov_store.visit_node t.store source_visit with
      | Some snode ->
        Prov_store.add_edge t.store ~src:snode ~dst:fnode Prov_edge.Form_source ~time
      | None -> ());
      match Prov_store.visit_node t.store result_visit with
      | Some rnode ->
        Prov_store.add_edge t.store ~src:fnode ~dst:rnode Prov_edge.Form_result ~time
      | None -> ()
    end

let handle t event =
  count_event event;
  handle_event t event;
  List.iter (fun registry -> Relstore.Matview.feed registry event) t.views

(* Batch ingest: feed a recorded stream in one call.  The mutations
   still flow through the store observer one by one (ordering and
   per-event semantics are untouched); when the observer is a
   group-commit WAL, the amortization happens there — this entry point
   exists so replay-style callers have a single seam to hand a whole
   batch to. *)
let handle_batch t events = List.iter (handle t) events

let make config =
  {
    config;
    store = Prov_store.create ();
    time_index = Time_index.create ();
    referrer_of = Hashtbl.create 4096;
    tab_current = Hashtbl.create 16;
    pending_spawn = Hashtbl.create 16;
    open_order = Hashtbl.create 4096;
    open_seq = 0;
    views = [];
  }

let attach_views t registries = t.views <- t.views @ registries

let attach ?(config = full) engine =
  let t = make config in
  Browser.Engine.subscribe engine (handle t);
  t

let observer ?(config = full) () =
  let t = make config in
  (t, handle t)

let config t = t.config
let store t = t.store
let time_index t = t.time_index
let visit_node t engine_id = Prov_store.visit_node t.store engine_id
