let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let short s = Provkit_util.Strutil.truncate 32 s

let node_attributes (n : Prov_node.t) =
  let label, shape, extra =
    match n.Prov_node.kind with
    | Prov_node.Page { title; url } ->
      ((if title = "" then url else title), "box", [ ("style", "filled"); ("fillcolor", "lightyellow") ])
    | Prov_node.Visit { title; transition; _ } ->
      ( Printf.sprintf "%s\n(%s)" (short title) (Browser.Transition.name transition),
        "ellipse", [] )
    | Prov_node.Bookmark { title; _ } ->
      ("bookmark: " ^ short title, "house", [ ("style", "filled"); ("fillcolor", "lightblue") ])
    | Prov_node.Download { target_path; _ } ->
      ("download: " ^ short target_path, "note", [ ("style", "filled"); ("fillcolor", "lightpink") ])
    | Prov_node.Search_term { query } ->
      ("search: " ^ short query, "diamond", [ ("style", "filled"); ("fillcolor", "lightgreen") ])
    | Prov_node.Form_submission _ -> ("form", "trapezium", [])
  in
  [ ("label", short label); ("shape", shape) ] @ extra

let edge_attributes (e : Prov_edge.t) =
  let style =
    match e.Prov_edge.kind with
    | Prov_edge.Redirect | Prov_edge.Embed -> [ ("style", "dashed") ]
    | Prov_edge.Same_time -> [ ("style", "dotted"); ("dir", "none") ]
    | Prov_edge.Instance -> [ ("style", "solid"); ("color", "gray") ]
    | Prov_edge.Link_traversal | Prov_edge.Typed_traversal | Prov_edge.Bookmark_traversal
    | Prov_edge.Bookmarked_from | Prov_edge.Form_source | Prov_edge.Form_result
    | Prov_edge.Download_source | Prov_edge.Download_fetch | Prov_edge.Search_query
    | Prov_edge.Searched_from | Prov_edge.Tab_spawn | Prov_edge.Reload -> []
  in
  ("label", Prov_edge.kind_name e.Prov_edge.kind) :: style

let attr_string attrs =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)

let header = "digraph provenance {\n  rankdir=LR;\n  node [fontsize=9];\n  edge [fontsize=8];\n"

let export ?(max_nodes = 150) ?(include_time_edges = false) store ~roots =
  let graph = Prov_store.graph store in
  let follow ~src:_ ~dst:_ (e : Prov_edge.t) = Prov_edge.is_causal e.Prov_edge.kind in
  let outcome =
    Provgraph.Traversal.bfs ~direction:Provgraph.Traversal.Both ~budget:max_nodes ~follow
      graph ~roots
  in
  let members = Hashtbl.create 64 in
  List.iteri
    (fun i (node, _) -> if i < max_nodes then Hashtbl.replace members node ())
    outcome.Provgraph.Traversal.visited;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Hashtbl.iter
    (fun id () ->
      match Prov_store.node_opt store id with
      | Some n ->
        Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" id (attr_string (node_attributes n)))
      | None -> ())
    members;
  Provgraph.Digraph.iter_edges graph (fun src dst e ->
      if Hashtbl.mem members src && Hashtbl.mem members dst then begin
        let keep =
          if e.Prov_edge.kind = Prov_edge.Same_time then include_time_edges else true
        in
        if keep then
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [%s];\n" src dst (attr_string (edge_attributes e)))
      end);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let export_lineage store (origin : Lineage.origin) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf header;
  List.iter
    (fun id ->
      match Prov_store.node_opt store id with
      | Some n ->
        Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" id (attr_string (node_attributes n)))
      | None -> ())
    origin.Lineage.path;
  let rec chain = function
    | a :: (b :: _ as rest) ->
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" b a);
      chain rest
    | _ -> ()
  in
  chain origin.Lineage.path;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ~path dot =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc dot)
