(** Incremental views over the provenance op stream — the
    [Prov_log.op] instantiation of {!Relstore.Matview}.

    Feed them from a store observer (via {!Prov_log.op_of_mutation}) or
    let {!Prov_log.Segmented.recover} rebuild them after a crash; their
    values match [Query_exec.group_count ~by:"kind"] over the
    relational export at every prefix. *)

val node_kind_counts : (Prov_log.op, (int, int) Hashtbl.t, (int * int) list) Relstore.Matview.spec
(** [(kind_code, nodes)], count descending, code ascending on ties.
    Re-adding a node id replaces its kind, like [Digraph.add_node]. *)

val edge_kind_counts : (Prov_log.op, (int, int) Hashtbl.t, (int * int) list) Relstore.Matview.spec
(** [(kind_code, edges)], same ordering.  [Same_time] and [Instance]
    edges are excluded — the relational export does not persist them. *)

val standard :
  unit ->
  Prov_log.op Relstore.Matview.t
  * (Prov_log.op, (int, int) Hashtbl.t, (int * int) list) Relstore.Matview.handle
  * (Prov_log.op, (int, int) Hashtbl.t, (int * int) list) Relstore.Matview.handle
(** A registry with both views registered: [(registry, nodes, edges)]. *)

(** {2 Cold baselines} *)

val cold_node_kinds : Prov_store.t -> (int * int) list
(** [group_count ~by:"kind"] over the [prov_node] table of
    {!Prov_schema.to_database}. *)

val cold_edge_kinds : Prov_store.t -> (int * int) list
