module R = Relstore

(* Incremental views over the provenance op stream itself — the
   [Prov_log.op] instantiation of the matview machinery.  They mirror
   what [Query_exec.group_count ~by:"kind"] reports over the relational
   export ([Prov_schema.to_database]), so the differential contract is
   checked against the store's own query path:

   - node kinds: one row per node, last [Add_node] wins per id (a
     re-add replaces the payload, exactly like [Digraph.add_node]);
   - edge kinds: every [Add_edge] counts (the graph keeps multi-edges),
     except [Same_time] and [Instance], which the relational export
     deliberately does not persist. *)

let rank (ka, na) (kb, nb) =
  let c = Int.compare nb na in
  if c <> 0 then c else Int.compare ka kb

let counts_of tbl =
  List.sort rank (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])

type node_kind_state = (int, int) Hashtbl.t (* node id -> kind code *)

let node_kind_fold (st : node_kind_state) (op : Prov_log.op) =
  (match op with
  | Prov_log.Add_node n ->
    Hashtbl.replace st n.Prov_node.id (Prov_node.kind_code n.Prov_node.kind)
  | Prov_log.Add_edge _ | Prov_log.Close_node _ -> ());
  st

let node_kind_finalize (st : node_kind_state) =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ code ->
      Hashtbl.replace counts code (1 + Option.value ~default:0 (Hashtbl.find_opt counts code)))
    st;
  counts_of counts

let node_kind_counts : (Prov_log.op, node_kind_state, (int * int) list) R.Matview.spec =
  {
    R.Matview.name = "node_kind_counts";
    init = (fun () -> Hashtbl.create 1024);
    fold = node_kind_fold;
    finalize = node_kind_finalize;
  }

let persisted_edge kind =
  kind <> Prov_edge.Same_time && kind <> Prov_edge.Instance

type edge_kind_state = (int, int) Hashtbl.t (* kind code -> count *)

let edge_kind_fold (st : edge_kind_state) (op : Prov_log.op) =
  (match op with
  | Prov_log.Add_edge { edge; src = _; dst = _ } ->
    if persisted_edge edge.Prov_edge.kind then begin
      let code = Prov_edge.kind_code edge.Prov_edge.kind in
      Hashtbl.replace st code (1 + Option.value ~default:0 (Hashtbl.find_opt st code))
    end
  | Prov_log.Add_node _ | Prov_log.Close_node _ -> ());
  st

let edge_kind_counts : (Prov_log.op, edge_kind_state, (int * int) list) R.Matview.spec =
  {
    R.Matview.name = "edge_kind_counts";
    init = (fun () -> Hashtbl.create 16);
    fold = edge_kind_fold;
    finalize = (fun st -> counts_of st);
  }

let standard () =
  let registry = R.Matview.create () in
  let nodes = R.Matview.register registry node_kind_counts in
  let edges = R.Matview.register registry edge_kind_counts in
  (registry, nodes, edges)

(* --- cold baselines over the relational export ---------------------- *)

let int_of_value = function
  | R.Value.Int n -> n
  | R.Value.Null | R.Value.Real _ | R.Value.Text _ | R.Value.Blob _ | R.Value.Bool _ -> 0

let cold_group_kinds table =
  (* group_count orders by count desc then Value.compare — for Int keys
     that is exactly [rank]'s order, so no re-sort is needed. *)
  List.map (fun (k, n) -> (int_of_value k, n)) (R.Query_exec.group_count ~by:"kind" table)

let cold_node_kinds store =
  cold_group_kinds (R.Database.table (Prov_schema.to_database store) Prov_schema.node_table)

let cold_edge_kinds store =
  cold_group_kinds (R.Database.table (Prov_schema.to_database store) Prov_schema.edge_table)
