type kind =
  | Link_traversal
  | Typed_traversal
  | Bookmark_traversal
  | Bookmarked_from
  | Redirect
  | Embed
  | Form_source
  | Form_result
  | Download_source
  | Download_fetch
  | Search_query
  | Searched_from
  | Instance
  | Tab_spawn
  | Reload
  | Same_time

type t = { kind : kind; time : int }

let kind_code = function
  | Link_traversal -> 0
  | Typed_traversal -> 1
  | Bookmark_traversal -> 2
  | Bookmarked_from -> 3
  | Redirect -> 4
  | Embed -> 5
  | Form_source -> 6
  | Form_result -> 7
  | Download_source -> 8
  | Download_fetch -> 9
  | Search_query -> 10
  | Searched_from -> 11
  | Instance -> 12
  | Tab_spawn -> 13
  | Same_time -> 14
  | Reload -> 15

let all_kinds =
  [
    Link_traversal; Typed_traversal; Bookmark_traversal; Bookmarked_from; Redirect;
    Embed; Form_source; Form_result; Download_source; Download_fetch; Search_query;
    Searched_from; Instance; Tab_spawn; Same_time; Reload;
  ]

let kind_of_code c =
  match List.find_opt (fun k -> kind_code k = c) all_kinds with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Prov_edge.kind_of_code: %d" c)

let kind_name = function
  | Link_traversal -> "link"
  | Typed_traversal -> "typed"
  | Bookmark_traversal -> "bookmark-traversal"
  | Bookmarked_from -> "bookmarked-from"
  | Redirect -> "redirect"
  | Embed -> "embed"
  | Form_source -> "form-source"
  | Form_result -> "form-result"
  | Download_source -> "download-source"
  | Download_fetch -> "download-fetch"
  | Search_query -> "search-query"
  | Searched_from -> "searched-from"
  | Instance -> "instance"
  | Tab_spawn -> "tab-spawn"
  | Same_time -> "same-time"
  | Reload -> "reload"

let is_causal = function
  | Same_time -> false
  | Link_traversal | Typed_traversal | Bookmark_traversal | Bookmarked_from | Redirect
  | Embed | Form_source | Form_result | Download_source | Download_fetch | Search_query
  | Searched_from | Instance | Tab_spawn | Reload -> true

let is_traversal = function
  | Instance | Same_time -> false
  | Link_traversal | Typed_traversal | Bookmark_traversal | Bookmarked_from | Redirect
  | Embed | Form_source | Form_result | Download_source | Download_fetch | Search_query
  | Searched_from | Tab_spawn | Reload -> true

let is_user_action = function
  | Link_traversal | Typed_traversal | Bookmark_traversal | Bookmarked_from
  | Form_source | Form_result | Download_source | Download_fetch | Search_query
  | Searched_from | Tab_spawn | Reload -> true
  | Redirect | Embed | Instance | Same_time -> false

let pp ppf t = Format.fprintf ppf "%s@%d" (kind_name t.kind) t.time
