let displayed_visit (n : Prov_node.t) =
  match n.Prov_node.kind with
  | Prov_node.Visit { transition; _ } -> begin
    match transition with
    | Browser.Transition.Embed | Browser.Transition.Download -> false
    | Browser.Transition.Link | Browser.Transition.Typed | Browser.Transition.Bookmark
    | Browser.Transition.Redirect_permanent | Browser.Transition.Redirect_temporary
    | Browser.Transition.Framed_link | Browser.Transition.Form_submit
    | Browser.Transition.Reload -> true
  end
  | _ -> false

let visit_intervals store =
  Provgraph.Digraph.fold_nodes (Prov_store.graph store) ~init:[] ~f:(fun acc id n ->
      if displayed_visit n then
        match n.Prov_node.time with
        | Some opened -> (opened, id, n) :: acc
        | None -> acc
      else acc)

let rebuild_time_index store =
  let index = Time_index.create () in
  List.iter
    (fun (opened, id, (n : Prov_node.t)) ->
      Time_index.add index ~node:id ~opened;
      match n.Prov_node.close_time with
      | Some closed -> Time_index.close index ~node:id ~closed
      | None -> ())
    (visit_intervals store);
  index

let derive ?(fanout = 4) store =
  let visits =
    (* Open order; node id breaks time ties the same way the online
       capture's sequence numbers do. *)
    List.sort compare (visit_intervals store)
  in
  let tab_of (n : Prov_node.t) =
    match n.Prov_node.kind with Prov_node.Visit { tab; _ } -> tab | _ -> -1
  in
  (* Currently-displayed visit per tab, replaced as later opens arrive. *)
  let current : (int, int * int * int option) Hashtbl.t = Hashtbl.create 16 in
  (* tab -> (open_seq, node, close) *)
  let seq = ref 0 in
  let added = ref 0 in
  List.iter
    (fun (opened, id, (n : Prov_node.t)) ->
      incr seq;
      let tab = tab_of n in
      (* Expire partners whose interval ended before this open. *)
      let partners =
        Hashtbl.fold
          (fun other_tab (order, node, close) acc ->
            if other_tab = tab then acc
            else
              let still_open = match close with None -> true | Some c -> c >= opened in
              if still_open then (order, node) :: acc else acc)
          current []
      in
      let recent =
        List.filteri
          (fun i _ -> i < fanout)
          (List.sort (fun (a, _) (b, _) -> Int.compare b a) partners)
      in
      List.iter
        (fun (_, partner) ->
          Prov_store.add_edge store ~src:partner ~dst:id Prov_edge.Same_time ~time:opened;
          incr added)
        recent;
      Hashtbl.replace current tab (!seq, id, n.Prov_node.close_time))
    visits;
  !added
