module Neighborhood = Provgraph.Neighborhood

type config = {
  seed_count : int;
  max_hops : int;
  decay : float;
  text_weight : float;
  graph_weight : float;
  follow_non_user_edges : bool;
  follow_time_edges : bool;
  degree_normalize : bool;
}

let default_config =
  {
    seed_count = 8;
    max_hops = 3;
    decay = 0.5;
    text_weight = 1.0;
    graph_weight = 1.0;
    follow_non_user_edges = true;
    follow_time_edges = false;
    degree_normalize = false;
  }

type result = { page : int; score : float; text_score : float; graph_score : float }

type response = { results : result list; truncated : bool; elapsed_ms : float }

(* Map any scored node onto the page it speaks about.  Pages that were
   only ever embedded content or redirect hops are hidden from results,
   exactly as Places hides them from history search. *)
let page_target store id (n : Prov_node.t) =
  let visible page = if Prov_store.page_hidden store page then None else Some page in
  match n.Prov_node.kind with
  | Prov_node.Page _ -> visible id
  | Prov_node.Visit _ -> Option.bind (Prov_store.page_of_visit store id) visible
  | Prov_node.Bookmark { url; _ } -> Option.bind (Prov_store.page_of_url store url) visible
  | Prov_node.Search_term _ | Prov_node.Download _ | Prov_node.Form_submission _ -> None

let rank_results ?(limit = 10) scored =
  let all = Hashtbl.fold (fun page r acc -> (page, r) :: acc) scored [] in
  let sorted =
    List.sort
      (fun (pa, (sa, _, _)) (pb, (sb, _, _)) ->
        let c = Float.compare sb sa in
        if c <> 0 then c else Int.compare pa pb)
      all
  in
  List.filteri (fun i _ -> i < limit)
    (List.map
       (fun (page, (score, text_score, graph_score)) -> { page; score; text_score; graph_score })
       sorted)

let textual_only ?(limit = 10) index query =
  let store = Prov_text_index.store index in
  let scored = Hashtbl.create 32 in
  List.iter
    (fun (node, s) ->
      match page_target store node (Prov_store.node store node) with
      | Some page ->
        let prev, pt, _ =
          Option.value ~default:(0.0, 0.0, 0.0) (Hashtbl.find_opt scored page)
        in
        Hashtbl.replace scored page (prev +. s, pt +. s, 0.0)
      | None -> ())
    (Prov_text_index.search ~limit:(limit * 4) index query);
  rank_results ~limit scored

(* The Kleinberg-style focused subgraph: the seeds plus everything
   within [max_hops], with only the edges the config permits. *)
let focused_subgraph config ~budget_nodes store seeds =
  let graph = Prov_store.graph store in
  let follow ~src:_ ~dst:_ (e : Prov_edge.t) =
    match e.Prov_edge.kind with
    | Prov_edge.Same_time -> config.follow_time_edges
    | Prov_edge.Redirect | Prov_edge.Embed -> config.follow_non_user_edges
    | Prov_edge.Link_traversal | Prov_edge.Typed_traversal | Prov_edge.Bookmark_traversal
    | Prov_edge.Bookmarked_from | Prov_edge.Form_source | Prov_edge.Form_result
    | Prov_edge.Download_source | Prov_edge.Download_fetch | Prov_edge.Search_query
    | Prov_edge.Searched_from | Prov_edge.Instance | Prov_edge.Tab_spawn
    | Prov_edge.Reload -> true
  in
  let outcome =
    Provgraph.Traversal.bfs ~direction:Provgraph.Traversal.Both
      ~max_depth:config.max_hops ?budget:budget_nodes ~follow graph
      ~roots:(List.map fst seeds)
  in
  let members = List.map fst outcome.Provgraph.Traversal.visited in
  let sub = Provgraph.Digraph.create ~initial_capacity:(List.length members) () in
  List.iter (fun id -> Provgraph.Digraph.add_node sub id (Prov_store.node store id)) members;
  Provgraph.Digraph.iter_edges graph (fun src dst e ->
      if
        Provgraph.Digraph.mem_node sub src
        && Provgraph.Digraph.mem_node sub dst
        && follow ~src ~dst e
      then Provgraph.Digraph.add_edge sub ~src ~dst e);
  (sub, outcome.Provgraph.Traversal.truncated)

(* Shared post-processing for the alternative algorithms: combine text
   scores and a graph score table onto visible pages. *)
let respond config ~limit ~running ~truncated store hits graph_scores =
  let scored = Hashtbl.create 64 in
  let bump page ~text ~graph_mass =
    let s, ts, gs = Option.value ~default:(0.0, 0.0, 0.0) (Hashtbl.find_opt scored page) in
    Hashtbl.replace scored page
      ( s +. (config.text_weight *. text) +. (config.graph_weight *. graph_mass),
        ts +. text,
        gs +. graph_mass )
  in
  List.iter
    (fun (node, s) ->
      match page_target store node (Prov_store.node store node) with
      | Some page -> bump page ~text:s ~graph_mass:0.0
      | None -> ())
    hits;
  Hashtbl.iter
    (fun node mass ->
      match Prov_store.node_opt store node with
      | None -> ()
      | Some n -> begin
        match page_target store node n with
        | Some page -> bump page ~text:0.0 ~graph_mass:mass
        | None -> ()
      end)
    graph_scores;
  {
    results = rank_results ~limit scored;
    truncated = Query_budget.was_truncated running truncated;
    elapsed_ms = Query_budget.elapsed_ms running;
  }

let seeds_of config hits = List.filteri (fun i _ -> i < config.seed_count) hits

let search_pagerank ?(config = default_config) ?(budget = Query_budget.unlimited)
    ?(limit = 10) ?(damping = 0.85) index query =
  let running = Query_budget.start budget in
  let store = Prov_text_index.store index in
  let hits = Prov_text_index.search ~limit:(max (limit * 4) (config.seed_count * 4)) index query in
  let seeds = seeds_of config hits in
  let sub, truncated =
    focused_subgraph config ~budget_nodes:(Query_budget.remaining_nodes running) store seeds
  in
  Query_budget.consume_nodes running (Provgraph.Digraph.node_count sub);
  let pr = Provgraph.Pagerank.run ~damping ~personalization:seeds sub in
  (* Scale the rank mass so its magnitude is comparable to text scores. *)
  let graph_scores = Hashtbl.create (Hashtbl.length pr) in
  let scale = float_of_int (max 1 (Provgraph.Digraph.node_count sub)) in
  Hashtbl.iter (fun id v -> Hashtbl.replace graph_scores id (v *. scale /. 10.0)) pr;
  respond config ~limit ~running ~truncated store hits graph_scores

let search_hits ?(config = default_config) ?(budget = Query_budget.unlimited) ?(limit = 10)
    index query =
  let running = Query_budget.start budget in
  let store = Prov_text_index.store index in
  let hits = Prov_text_index.search ~limit:(max (limit * 4) (config.seed_count * 4)) index query in
  let seeds = seeds_of config hits in
  let sub, truncated =
    focused_subgraph config ~budget_nodes:(Query_budget.remaining_nodes running) store seeds
  in
  Query_budget.consume_nodes running (Provgraph.Digraph.node_count sub);
  let scores = Provgraph.Hits.run sub in
  let graph_scores = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id authority ->
      let hub = Option.value ~default:0.0 (Hashtbl.find_opt scores.Provgraph.Hits.hub id) in
      Hashtbl.replace graph_scores id (authority +. (0.5 *. hub)))
    scores.Provgraph.Hits.authority;
  respond config ~limit ~running ~truncated store hits graph_scores

let search ?(config = default_config) ?(budget = Query_budget.unlimited) ?(limit = 10)
    index query =
  let running = Query_budget.start budget in
  let store = Prov_text_index.store index in
  let graph = Prov_store.graph store in
  let hits = Prov_text_index.search ~limit:(max (limit * 4) (config.seed_count * 4)) index query in
  let seeds = List.filteri (fun i _ -> i < config.seed_count) hits in
  let follow ~src:_ ~dst:_ (e : Prov_edge.t) =
    match e.Prov_edge.kind with
    | Prov_edge.Same_time -> config.follow_time_edges
    | Prov_edge.Redirect | Prov_edge.Embed -> config.follow_non_user_edges
    | Prov_edge.Link_traversal | Prov_edge.Typed_traversal | Prov_edge.Bookmark_traversal
    | Prov_edge.Bookmarked_from | Prov_edge.Form_source | Prov_edge.Form_result
    | Prov_edge.Download_source | Prov_edge.Download_fetch | Prov_edge.Search_query
    | Prov_edge.Searched_from | Prov_edge.Instance | Prov_edge.Tab_spawn
    | Prov_edge.Reload -> true
  in
  let expansion, expansion_truncated =
    if Query_budget.out_of_time running then (Hashtbl.create 1, true)
    else begin
      let nconfig =
        {
          Neighborhood.default_config with
          Neighborhood.decay = config.decay;
          max_hops = config.max_hops;
          node_budget = Query_budget.remaining_nodes running;
          degree_normalize = config.degree_normalize;
        }
      in
      let scores, truncated = Neighborhood.expand ~config:nconfig ~follow graph ~seeds in
      Query_budget.consume_nodes running (Hashtbl.length scores);
      (scores, truncated)
    end
  in
  (* Fold both signals onto page nodes. *)
  let scored = Hashtbl.create 64 in
  let bump page ~text ~graph_mass =
    let s, ts, gs = Option.value ~default:(0.0, 0.0, 0.0) (Hashtbl.find_opt scored page) in
    Hashtbl.replace scored page
      ( s +. (config.text_weight *. text) +. (config.graph_weight *. graph_mass),
        ts +. text,
        gs +. graph_mass )
  in
  List.iter
    (fun (node, s) ->
      match page_target store node (Prov_store.node store node) with
      | Some page -> bump page ~text:s ~graph_mass:0.0
      | None -> ())
    hits;
  Hashtbl.iter
    (fun node mass ->
      match Prov_store.node_opt store node with
      | None -> ()
      | Some n -> begin
        match page_target store node n with
        | Some page -> bump page ~text:0.0 ~graph_mass:mass
        | None -> ()
      end)
    expansion;
  {
    results = rank_results ~limit scored;
    truncated = Query_budget.was_truncated running expansion_truncated;
    elapsed_ms = Query_budget.elapsed_ms running;
  }
