(** The capture layer: turns the browser's event stream into provenance.

    Attach to an engine and every subsequent event becomes nodes and
    edges in a {!Prov_store} plus intervals in a {!Time_index}.  The
    configuration controls exactly which §3.2/§3.3 relationships are
    captured, which is what experiment E11 ablates: [firefox_like]
    records only what Firefox 3 Places keeps, [full] records everything
    the paper argues a provenance-aware browser should. *)

type config = {
  record_typed_edges : bool;
      (** keep the previous-page relationship for location-bar
          navigation (Firefox drops it) *)
  record_bookmark_nodes : bool;
  record_search_nodes : bool;
  record_form_nodes : bool;
  record_download_nodes : bool;
  record_close_times : bool;
  record_time_edges : bool;  (** materialize capped [Same_time] edges *)
  time_edge_fanout : int;
      (** at most this many co-open partners per opening visit *)
  record_tab_spawn : bool;
}

val full : config
val firefox_like : config
(** What FF3 actually keeps: link/redirect/embed/form-referrer chains
    and downloads; no typed edges, no search/bookmark/form nodes, no
    close times, no time or tab edges. *)

type t

val attach : ?config:config -> Browser.Engine.t -> t
(** Subscribe to the engine.  Only events emitted after attachment are
    captured. *)

val observer : ?config:config -> unit -> t * (Browser.Event.t -> unit)
(** A detached capture for replaying recorded event logs. *)

val handle_batch : t -> Browser.Event.t list -> unit
(** Ingest a whole recorded event stream in order — the batch entry
    point.  Semantically identical to feeding the events one at a time;
    pair the capture's store with a group-commit
    {!Prov_log.Segmented} WAL to amortize the fsync cost across the
    batch. *)

val attach_views : t -> Browser.Event.t Relstore.Matview.t list -> unit
(** Register matview registries to be fed after each event's store
    mutations — every entry point ([attach] subscription, direct
    [handle], [handle_batch]) flows through them, so incremental views
    stay in lockstep with the capture stream. *)

val config : t -> config
val store : t -> Prov_store.t
val time_index : t -> Time_index.t

val visit_node : t -> int -> int option
(** Provenance node for an engine visit id (convenience re-export). *)
