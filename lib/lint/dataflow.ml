(* Intraprocedural "must-reach" dataflow: does every terminating path
   through an expression evaluate a subexpression the matcher accepts?
   Paths that provably raise are exempt — an insert that bails out with
   [Errors.constraint_violation] before touching the table owes nobody
   an epoch bump.  The analysis is deliberately conservative in the
   other direction: loop bodies and closures *may* run, so nothing
   inside them satisfies a must-obligation — except the function
   literals handed to a registered call-through combinator
   ([with_span], [protect], [time]), which execute synchronously. *)

open Parsetree

let last_component lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

(* Strip the parameter prefix of a binding's right-hand side down to the
   body the function actually runs. *)
let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | Pexp_constraint (body, _) -> strip_params body
  | _ -> e

let is_raising_name name = List.mem name Registry.raising_names

(* Does evaluating [e] always end in an exception? *)
let rec always_raises e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    is_raising_name (last_component txt)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ }
    ->
    true
  | Pexp_sequence (a, b) -> always_raises a || always_raises b
  | Pexp_let (_, vbs, body) ->
    List.exists (fun vb -> always_raises vb.pvb_expr) vbs || always_raises body
  | Pexp_ifthenelse (c, t, Some f) ->
    always_raises c || (always_raises t && always_raises f)
  | Pexp_ifthenelse (c, _, None) -> always_raises c
  | Pexp_match (scrut, cases) ->
    always_raises scrut || List.for_all (fun c -> always_raises c.pc_rhs) cases
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> always_raises e
  | _ -> false

let is_call_through head =
  match head.pexp_desc with
  | Pexp_ident { txt; _ } -> List.mem (last_component txt) Registry.call_through_names
  | _ -> false

let rec is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) -> is_fun_literal e
  | _ -> false

let must_reach ~matches expr =
  let rec mr e =
    if matches e then true
    else begin
      match e.pexp_desc with
      | Pexp_sequence (a, b) -> mr a || mr b
      | Pexp_let (_, vbs, body) -> List.exists (fun vb -> mr vb.pvb_expr) vbs || mr body
      | Pexp_ifthenelse (c, t, Some f) ->
        mr c || ((always_raises t || mr t) && (always_raises f || mr f))
      | Pexp_ifthenelse (c, _, None) -> mr c
      | Pexp_match (scrut, cases) ->
        mr scrut || List.for_all (fun c -> always_raises c.pc_rhs || mr c.pc_rhs) cases
      | Pexp_try (body, _) ->
        (* The non-exceptional path runs [body] to completion; matches on
           the exceptional path prove nothing, so handlers are ignored. *)
        mr body
      | Pexp_apply (head, args) ->
        List.exists (fun (_, a) -> mr a) args
        || mr head
        || (is_call_through head
           && List.exists (fun (_, a) -> is_fun_literal a && mr (strip_params a)) args)
      | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ ->
        false (* may never run; only call-through descends *)
      | Pexp_while (c, _) -> mr c (* body may run zero times *)
      | Pexp_for (_, lo, hi, _, _) -> mr lo || mr hi
      | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> mr e
      | Pexp_tuple es | Pexp_array es -> List.exists mr es
      | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> mr e
      | Pexp_record (fields, base) ->
        List.exists (fun (_, e) -> mr e) fields
        || (match base with Some b -> mr b | None -> false)
      | Pexp_field (e, _) -> mr e
      | Pexp_setfield (a, _, b) -> mr a || mr b
      | Pexp_assert e -> mr e
      | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) -> mr e
      | _ -> false
    end
  in
  mr expr
