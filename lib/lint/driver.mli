(** The provlint driver: parse sources with the compiler's own parser,
    run the registered checks, honor [@provlint.allow] suppressions.
    See LINTING.md for the check catalogue. *)

val all_checks : (string * string) list
(** [(check id, one-line description)] for every registered check. *)

val check_ids : string list

val tree_files : root:string -> string list
(** Every [.ml] file under [root/lib] and [root/bin], as sorted
    root-relative paths. *)

val lint_files : ?checks:string list -> root:string -> string list -> Finding.t list
(** Lint the given root-relative files.  Cross-file checks (obs-names)
    see exactly this file set. *)

val lint_tree : ?checks:string list -> root:string -> unit -> Finding.t list
(** [lint_files] over [tree_files]. *)

val lint_source : ?checks:string list -> filename:string -> string -> Finding.t list
(** Lint one in-memory source.  [filename] drives file classification
    (lib/ vs bin/, codec module, sanctioned I/O layer); cross-file
    checks do not run.  Used by the fixture tests. *)

val render_text : Finding.t list -> string

val render_json : Finding.t list -> string
(** A JSON array with one finding object per line — the stable format
    tools/lint_gate.sh diffs against the committed baseline. *)
