(** The provlint driver: parse sources with the compiler's own parser,
    run the registered checks, honor [@provlint.allow] suppressions.
    See LINTING.md for the check catalogue. *)

val all_checks : (string * string) list
(** [(check id, one-line description)] for every registered check. *)

val check_ids : string list

val tree_files : root:string -> string list
(** Every [.ml] file under [root/lib] and [root/bin], as sorted
    root-relative paths. *)

val lint_files : ?checks:string list -> root:string -> string list -> Finding.t list
(** Lint the given root-relative files.  Cross-file checks (obs-names,
    matview-purity, shared-state-registry) see exactly this file set. *)

val lint_files_timed :
  ?checks:string list -> root:string -> string list -> Finding.t list * (string * float) list
(** [lint_files] plus per-stage wall time in seconds: one ["parse"]
    entry for the (cached) parsing front end, then one entry per
    selected check, in run order.  Backs [provlint --timing] and the
    [lint-full-tree] bench row. *)

val lint_tree : ?checks:string list -> root:string -> unit -> Finding.t list
(** [lint_files] over [tree_files]. *)

val lint_tree_timed :
  ?checks:string list -> root:string -> unit -> Finding.t list * (string * float) list

val lint_source : ?checks:string list -> filename:string -> string -> Finding.t list
(** Lint one in-memory source.  [filename] drives file classification
    (lib/ vs bin/, codec module, the epoch/WAL dataflow scopes); only
    per-file checks run.  Used by the fixture tests. *)

val render_text : Finding.t list -> string

val render_json : Finding.t list -> string
(** A JSON array with one finding object per line — the stable format
    tools/lint_gate.sh diffs against the committed baseline. *)

val render_sarif : Finding.t list -> string
(** A minimal SARIF 2.1.0 log: one run, the check catalogue as rules,
    one result object per line so the gate can diff this format too. *)

val render_timings : (string * float) list -> string
(** Human-readable per-check wall time (ms), for [provlint --timing]. *)
