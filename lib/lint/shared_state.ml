(* The shared-mutable-state manifest: every toplevel [ref], [Hashtbl],
   array or mutable-record binding under lib/, with the guarding
   strategy a future concurrent [provd] must apply before threads touch
   it.  The shared-state-registry check fails the build when a global
   mutable binding is missing from this list (and when a listed entry no
   longer exists), so the inventory ROADMAP item 3 needs cannot rot.

   Guards:
   - [Read_only_after_init]: written once during module initialization
     or explicit setup, then only read — safe to share unguarded once
     published.
   - [Single_writer]: mutated, but only ever from the single control
     thread (CLI command loop, test harness); concurrent readers would
     need a publication barrier but no lock.
   - [Needs_lock]: mutated on hot paths that any thread may execute;
     provd must wrap access in a mutex (or make it thread-local). *)

type guard = Read_only_after_init | Single_writer | Needs_lock

type entry = {
  ss_file : string;  (* root-relative defining file *)
  ss_name : string;  (* binding name, nested-module path dotted in *)
  ss_guard : guard;
  ss_why : string;  (* one-line justification of the guard choice *)
}

let guard_name = function
  | Read_only_after_init -> "ReadOnlyAfterInit"
  | Single_writer -> "SingleWriter"
  | Needs_lock -> "NeedsLock"

let e ss_file ss_name ss_guard ss_why = { ss_file; ss_name; ss_guard; ss_why }

let manifest =
  [
    (* util *)
    e "lib/util/timing.ml" "gtod_last" Needs_lock
      "monotonic-clamp fallback state; any thread reading the clock races the clamp";
    e "lib/util/faulty_io.ml" "fault_hook" Single_writer
      "installed once by the test harness / flight recorder before I/O starts";
    (* webmodel — constant palettes; arrays are mutable-typed, so they
       belong in the audit even though nothing ever writes them *)
    e "lib/webmodel/topic.ml" "onsets" Read_only_after_init "constant syllable palette";
    e "lib/webmodel/topic.ml" "nuclei" Read_only_after_init "constant syllable palette";
    e "lib/webmodel/topic.ml" "codas" Read_only_after_init "constant syllable palette";
    e "lib/webmodel/topic.ml" "default_names" Read_only_after_init "constant topic-name palette";
    e "lib/webmodel/web_graph.ml" "ambiguous_palette" Read_only_after_init
      "constant ambiguous-word palette";
    (* obs *)
    e "lib/obs/metrics.ml" "on" Single_writer
      "PROV_OBS on/off switch: initialized from the environment, flipped only by tests";
    e "lib/obs/metrics.ml" "counters" Needs_lock
      "hot-path increments from every instrumented subsystem";
    e "lib/obs/metrics.ml" "gauges" Needs_lock "hot-path sets from every instrumented subsystem";
    e "lib/obs/metrics.ml" "histograms" Needs_lock
      "hot-path observations from every instrumented subsystem";
    e "lib/obs/trace.ml" "ring" Needs_lock
      "span ring buffer written on every span end; guarded by Trace.lock";
    e "lib/obs/trace.ml" "sink" Single_writer "JSONL sink installed by the CLI before tracing";
    e "lib/obs/trace.ml" "id_rng" Needs_lock
      "id stream advanced on every span start; guarded by Trace.lock";
    e "lib/obs/flight.ml" "ring" Needs_lock
      "incident ring written from crash paths anywhere; guarded by Flight.lock";
    e "lib/obs/flight.ml" "total" Needs_lock
      "incident counter paired with the ring; guarded by Flight.lock";
    e "lib/obs/flight.ml" "context" Single_writer
      "ambient context set by the CLI entry point before work starts";
    e "lib/obs/timeseries.ml" "interval" Single_writer "snapshot cadence config knob";
    e "lib/obs/timeseries.ml" "pulse_count" Needs_lock
      "ticked by capture and WAL ingest on every event; guarded by Timeseries.pulse_lock";
    e "lib/obs/timeseries.ml" "observers" Single_writer
      "point observers (alert engine, telemetry journal) installed at startup, then only read";
    e "lib/obs/alert.ml" "rules" Single_writer
      "rule registry built by the CLI / tests before points flow";
    e "lib/obs/alert.ml" "log" Needs_lock
      "bounded transition log appended from the pulse path (any ingesting thread)";
    e "lib/obs/alert.ml" "log_total" Needs_lock "transition counter paired with the log";
    e "lib/obs/alert.ml" "prev_point" Needs_lock
      "previous-point cursor advanced on every recorded point";
    e "lib/obs/alert.ml" "installed" Single_writer "observer-attached latch, set once";
    e "lib/obs/alert.ml" "replaying" Single_writer
      "journal-replay quiet flag, toggled only around replay_history";
    e "lib/obs/alert.ml" "transition_hooks" Single_writer
      "transition hooks (telemetry journal) installed at startup, then only read";
    e "lib/obs/health.ml" "checks" Single_writer
      "check registry built by subsystem wiring before health runs";
    (* relstore *)
    e "lib/relstore/table.ml" "next_uid" Needs_lock
      "process-unique table ids; tables may be created from any domain, so the counter is an Atomic";
    e "lib/relstore/stats.ml" "catalog" Needs_lock
      "analyze writes and planner reads race under concurrent queries; guarded by Stats.catalog_lock";
    e "lib/relstore/slowlog.ml" "threshold" Single_writer "config knob set by the CLI";
    e "lib/relstore/slowlog.ml" "cap" Single_writer "config knob set by the CLI";
    e "lib/relstore/slowlog.ml" "ring" Needs_lock
      "deduplicated slow-query ring fed by the executor funnel; guarded by Slowlog.lock";
    e "lib/relstore/query_exec.ml" "cache_enabled" Single_writer
      "cache on/off knob set by the CLI before queries run";
    e "lib/relstore/query_exec.ml" "matview_sources" Single_writer
      "view registrations happen during setup, reads on the query path";
    e "lib/relstore/query_exec.ml" "misestimate_threshold" Read_only_after_init
      "tuning constant, never reassigned outside tests";
    e "lib/relstore/query_exec.ml" "query_span_threshold_ns" Read_only_after_init
      "tuning constant, never reassigned outside tests";
    (* lint *)
    e "lib/lint/source.ml" "parse_cache" Single_writer
      "parse-once memo; provlint is a single-threaded batch tool";
  ]

let find ~file ~name =
  List.find_opt (fun en -> en.ss_file = file && en.ss_name = name) manifest
