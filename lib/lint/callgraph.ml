(* Cross-module call graph over Parsetree: every top-level (and
   nested-module) value binding in the linted file set becomes a node,
   and identifier references resolve to candidate definitions.  The
   resolver is deliberately an over-approximation — an ambiguous name
   resolves to every candidate — because the dataflow checks built on
   top only ever use it to *exonerate* code (a call that might bump the
   epoch counts as bumping), never to convict it.

   Resolution rules, in order:
   - unqualified [f] resolves within the referencing file: the latest
     binding of that name at or before the use line wins (shadowing);
     if none precedes, the earliest later one does ([let rec ... and]
     forward references);
   - qualified [M.f] first tries a module [M] nested in the same file,
     then the file whose capitalized basename is [M]; a leading alias
     ([module U = Webmodel.Url]) is expanded first. *)

open Parsetree

type fn = {
  fn_file : string;  (* root-relative path of the defining file *)
  fn_path : string list;  (* enclosing module path inside the file *)
  fn_name : string;
  fn_line : int;
  fn_expr : expression;  (* the binding's right-hand side, params included *)
}

type t = {
  fns : fn list;
  by_file : (string, fn list) Hashtbl.t;
  by_module : (string, string list) Hashtbl.t;  (* Module -> defining files *)
  aliases : (string, (string * string) list) Hashtbl.t;
      (* file -> [alias, last component of the aliased path] *)
}

let module_of_file rel =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename rel))

let rec binding_name pat =
  match pat.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

let collect_file file structure =
  let fns = ref [] in
  let aliases = ref [] in
  let rec items path its = List.iter (item path) its
  and item path it =
    match it.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match binding_name vb.pvb_pat with
          | Some name ->
            fns :=
              {
                fn_file = file;
                fn_path = path;
                fn_name = name;
                fn_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
                fn_expr = vb.pvb_expr;
              }
              :: !fns
          | None -> ())
        vbs
    | Pstr_module mb -> module_binding path mb
    | Pstr_recmodule mbs -> List.iter (module_binding path) mbs
    | _ -> ()
  and module_binding path mb =
    let name = match mb.pmb_name.Location.txt with Some n -> n | None -> "_" in
    mod_expr path name mb.pmb_expr
  and mod_expr path name me =
    match me.pmod_desc with
    | Pmod_structure s -> items (path @ [ name ]) s
    | Pmod_ident { txt = lid; _ } -> begin
      match List.rev (Longident.flatten lid) with
      | last :: _ -> aliases := (name, last) :: !aliases
      | [] -> ()
    end
    | Pmod_constraint (me, _) -> mod_expr path name me
    | _ -> ()
  in
  items [] structure;
  (List.rev !fns, List.rev !aliases)

let build parsed =
  let by_file = Hashtbl.create 64 in
  let by_module = Hashtbl.create 64 in
  let aliases = Hashtbl.create 64 in
  let fns =
    List.concat_map
      (fun (file, structure) ->
        let fs, als = collect_file file structure in
        Hashtbl.replace by_file file fs;
        Hashtbl.replace aliases file als;
        let m = module_of_file file in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_module m) in
        Hashtbl.replace by_module m (prev @ [ file ]);
        fs)
      parsed
  in
  { fns; by_file; by_module; aliases }

let file_fns t file = Option.value ~default:[] (Hashtbl.find_opt t.by_file file)

let alias_target t file name =
  List.assoc_opt name (Option.value ~default:[] (Hashtbl.find_opt t.aliases file))

let resolve t ~file ~line lid =
  match List.rev (Longident.flatten lid) with
  | [] -> []
  | [ name ] ->
    let same = List.filter (fun f -> f.fn_name = name) (file_fns t file) in
    let before = List.filter (fun f -> f.fn_line <= line) same in
    (match List.rev before with
    | latest :: _ -> [ latest ]
    | [] -> ( match same with first :: _ -> [ first ] | [] -> []))
  | name :: rev_mods ->
    let mods =
      match List.rev rev_mods with
      | head :: tl -> begin
        match alias_target t file head with Some tgt -> tgt :: tl | None -> head :: tl
      end
      | [] -> []
    in
    let last_mod = match List.rev mods with m :: _ -> m | [] -> "" in
    let nested =
      List.filter
        (fun f -> f.fn_name = name && f.fn_path <> [] && List.mem last_mod f.fn_path)
        (file_fns t file)
    in
    if nested <> [] then nested
    else
      List.concat_map
        (fun tgt ->
          List.filter (fun f -> f.fn_name = name && f.fn_path = []) (file_fns t tgt))
        (Option.value ~default:[] (Hashtbl.find_opt t.by_module last_mod))

(* --- reference extraction --- *)

let idents expr =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> acc := (txt, loc) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  List.rev !acc

let calls expr =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
            acc := (txt, loc) :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  List.rev !acc

(* --- reachability --- *)

let fn_key f =
  f.fn_file ^ ":" ^ String.concat "." f.fn_path ^ ":" ^ f.fn_name ^ ":"
  ^ string_of_int f.fn_line

(* Every definition reachable from the seed expressions, following every
   identifier reference (not just applied heads): a function passed as a
   value to a combinator still runs. *)
let reachable t seeds =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec visit_fn f =
    let k = fn_key f in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      out := f :: !out;
      visit_expr f.fn_file f.fn_expr
    end
  and visit_expr file e =
    List.iter
      (fun (lid, (loc : Location.t)) ->
        List.iter visit_fn (resolve t ~file ~line:loc.loc_start.Lexing.pos_lnum lid))
      (idents e)
  in
  List.iter (fun (file, e) -> visit_expr file e) seeds;
  List.rev !out
