(* matview-purity: recovery refolds every registered view over the
   replayed op stream, and the differential tests compare that rebuild
   against a cold recomputation — both only work if folds are
   deterministic functions of (state, event).  So no function reachable
   from a view's [fold] may call [Faulty_io] / [Timing] / [Random],
   print (the impure printing entry points — [sprintf] stays legal), or
   assign toplevel mutable state outside the view's own accumulator.

   View specs are found syntactically: any record literal whose labels
   include [init], [fold] and [finalize] (the [Relstore.Matview.spec]
   shape).  The fold's expression seeds a reachability walk over the
   cross-module call graph; every reachable definition is scanned.
   Accumulator mutation is distinguished from global mutation by the
   root identifier of the assignment target: a root that resolves to a
   toplevel binding (or is module-qualified) is global state, a
   parameter or local is the accumulator. *)

open Parsetree

let id = "matview-purity"

let last lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

let flatten_last2 lid =
  match List.rev (Longident.flatten lid) with
  | name :: m :: _ -> (m, name)
  | [ name ] -> ("", name)
  | [] -> ("", "")

let spec_labels = [ "init"; "fold"; "finalize" ]

(* Collect (file, view-name-hint, fold expression) for every spec
   record literal in the structure. *)
let spec_folds file structure =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_record (fields, _) ->
            let labels = List.map (fun ({ Location.txt; _ }, _) -> last txt) fields in
            if List.for_all (fun l -> List.mem l labels) spec_labels then begin
              match
                List.find_opt (fun ({ Location.txt; _ }, _) -> last txt = "fold") fields
              with
              | Some (_, fold_expr) -> acc := (file, fold_expr) :: !acc
              | None -> ()
            end
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  List.rev !acc

(* The root identifier of an assignment target: [st.h.tbl] roots at
   [st]; anything that is not an identifier chain has no root. *)
let rec root_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_field (e, _) -> root_ident e
  | Pexp_constraint (e, _) -> root_ident e
  | _ -> None

let run parsed =
  let lib_parsed = List.filter (fun (file, _) -> Registry.in_lib file) parsed in
  let graph = Callgraph.build parsed in
  let seeds = List.concat_map (fun (file, st) -> spec_folds file st) lib_parsed in
  if seeds = [] then []
  else begin
    let findings = ref [] in
    let reached = Callgraph.reachable graph seeds in
    (* Is this (possibly qualified) mutation-target root global state? *)
    let is_global_root file (loc : Location.t) lid =
      match lid with
      | Longident.Lident name ->
        Callgraph.resolve graph ~file ~line:loc.loc_start.Lexing.pos_lnum
          (Longident.Lident name)
        <> []
      | _ -> true (* module-qualified targets are toplevel by construction *)
    in
    let scan ~file expr =
      let emit loc msg = findings := Source.finding ~check:id ~file loc msg :: !findings in
      let check_target loc target what =
        match root_ident target with
        | Some lid when is_global_root file loc lid ->
          emit loc
            (Printf.sprintf
               "view fold %s toplevel mutable state (%s): recovery refolds must be \
                deterministic functions of the accumulator"
               what
               (String.concat "." (Longident.flatten lid)))
        | _ -> ()
      in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt; loc } ->
                let parts = Longident.flatten txt in
                let mods = match List.rev parts with _ :: rev_mods -> List.rev rev_mods | [] -> [] in
                let mods =
                  match mods with
                  | head :: tl -> begin
                    match Callgraph.alias_target graph file head with
                    | Some tgt -> tgt :: tl
                    | None -> mods
                  end
                  | [] -> []
                in
                if List.exists (fun m -> List.mem m Registry.matview_banned_modules) mods
                then
                  emit loc
                    (Printf.sprintf
                       "view fold reaches %s: nondeterministic/effectful calls break \
                        recovery refolds"
                       (String.concat "." parts))
                else if
                  List.mem (last txt) Registry.matview_banned_prints
                  && (mods = [] || List.mem (List.hd (List.rev mods)) [ "Printf"; "Format" ])
                then
                  emit loc
                    (Printf.sprintf "view fold prints (%s): folds must be side-effect free"
                       (String.concat "." parts))
              | Pexp_setfield (target, _, _) -> check_target e.pexp_loc target "assigns"
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, arg0) :: _) -> begin
                match flatten_last2 txt with
                | "", ":=" -> check_target e.pexp_loc arg0 "assigns"
                | "", ("incr" | "decr") -> check_target e.pexp_loc arg0 "mutates"
                | m, name when Registry.is_mutating_op ~module_:m ~name ->
                  check_target e.pexp_loc arg0 "mutates"
                | _ -> ()
              end
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.expr it expr
    in
    List.iter (fun (file, e) -> scan ~file e) seeds;
    List.iter
      (fun (f : Callgraph.fn) ->
        if Registry.in_lib f.Callgraph.fn_file then scan ~file:f.Callgraph.fn_file f.Callgraph.fn_expr)
      reached;
    List.sort_uniq Finding.compare !findings
  end
