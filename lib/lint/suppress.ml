(* Per-site suppression: [@provlint.allow "check-id"] on an expression,
   pattern or let binding silences that check inside the annotated node;
   with no payload it silences every check there.  A floating
   [@@@provlint.allow "check-id"] silences the whole file.  Suppressions
   are collected as line spans and applied after the checks run, so
   checks stay oblivious to them. *)

open Parsetree

type span = { check : string option; start_line : int; end_line : int }

let attr_name = "provlint.allow"

let payload_checks = function
  | PStr [] -> [ None ]
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> begin
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> [ Some s ]
    | Pexp_tuple parts ->
      List.filter_map
        (fun p ->
          match p.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) -> Some (Some s)
          | _ -> None)
        parts
    | _ -> []
  end
  | _ -> []

let spans_of_attrs attrs (loc : Location.t) acc =
  List.fold_left
    (fun acc attr ->
      if attr.attr_name.txt <> attr_name then acc
      else
        List.fold_left
          (fun acc check ->
            { check; start_line = loc.loc_start.pos_lnum; end_line = loc.loc_end.pos_lnum }
            :: acc)
          acc
          (payload_checks attr.attr_payload))
    acc attrs

let collect structure =
  let spans = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          spans := spans_of_attrs e.pexp_attributes e.pexp_loc !spans;
          Ast_iterator.default_iterator.expr it e);
      pat =
        (fun it p ->
          spans := spans_of_attrs p.ppat_attributes p.ppat_loc !spans;
          Ast_iterator.default_iterator.pat it p);
      value_binding =
        (fun it vb ->
          spans := spans_of_attrs vb.pvb_attributes vb.pvb_loc !spans;
          Ast_iterator.default_iterator.value_binding it vb);
      structure_item =
        (fun it item ->
          (match item.pstr_desc with
          | Pstr_attribute attr when attr.attr_name.txt = attr_name ->
            spans :=
              List.fold_left
                (fun acc check -> { check; start_line = 1; end_line = max_int } :: acc)
                !spans
                (payload_checks attr.attr_payload)
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it item);
    }
  in
  it.structure it structure;
  !spans

let suppressed spans (f : Finding.t) =
  List.exists
    (fun s ->
      f.Finding.line >= s.start_line
      && f.Finding.line <= s.end_line
      && match s.check with None -> true | Some c -> c = f.Finding.check)
    spans
