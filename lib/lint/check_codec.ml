(* codec-symmetry: in the registered codec modules every encoder must
   have a decoder, and the tag constants the encode side emits must be
   matched on the decode side.

   Pairing is by name: [encode_X] pairs with [decode_X], [write_X] with
   [read_X].  Read-side helpers without a writer (e.g. [read_count]) are
   legitimate — only the encode->decode direction is enforced.

   Tag symmetry, per pair:
   - every character literal in the encoder body (codec tags are emitted
     with [Buffer.add_char buf '\NNN']) must appear in the decoder body,
     as a match-case pattern or a compared literal;
   - every integer literal passed to a [write_*]/[add_*] call in the
     encoder must appear as an integer literal in the decoder;
   - every reference to a top-level [tag_*] integer constant in the
     encoder must also be referenced by the decoder (the named-constant
     style of relstore/codec.ml).

   This is the static half of what PR 1's corruption tests probe
   dynamically: a skewed tag produces bytes the decoder can never
   accept, silently corrupting lineage instead of failing the build. *)

open Parsetree

let id = "codec-symmetry"

(* Top-level (and nested-module) value bindings, as (name, binding). *)
let rec bindings_of_structure structure acc =
  List.fold_left
    (fun acc item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.fold_left
          (fun acc vb ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var name -> (name.txt, vb) :: acc
            | _ -> acc)
          acc vbs
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        bindings_of_structure s acc
      | Pstr_recmodule mbs ->
        List.fold_left
          (fun acc mb ->
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure s -> bindings_of_structure s acc
            | _ -> acc)
          acc mbs
      | _ -> acc)
    acc structure

let int_const_of_binding vb =
  match vb.pvb_expr.pexp_desc with
  | Pexp_constant (Pconst_integer (s, None)) -> int_of_string_opt s
  | _ -> None

let last_of lid = Longident.last lid

module SSet = Set.Make (String)
module CSet = Set.Make (Char)
module ISet = Set.Make (Int)

type tags = {
  mutable chars : CSet.t;  (* char literals anywhere in the body *)
  mutable emitted_ints : ISet.t;  (* int literals passed to write_*/add_* *)
  mutable ints : ISet.t;  (* int literals anywhere in the body *)
  mutable tag_refs : SSet.t;  (* referenced tag_* constants *)
}

let scan_body expr =
  let t =
    { chars = CSet.empty; emitted_ints = ISet.empty; ints = ISet.empty; tag_refs = SSet.empty }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_constant (Pconst_char c) -> t.chars <- CSet.add c t.chars
          | Pexp_constant (Pconst_integer (s, None)) ->
            Option.iter (fun n -> t.ints <- ISet.add n t.ints) (int_of_string_opt s)
          | Pexp_ident { txt = lid; _ } ->
            let name = last_of lid in
            if Registry.has_prefix ~prefix:"tag" name then
              t.tag_refs <- SSet.add name t.tag_refs
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = f; _ }; _ }, args) ->
            let fname = last_of f in
            if
              Registry.has_prefix ~prefix:"write_" fname
              || Registry.has_prefix ~prefix:"add_" fname
            then
              List.iter
                (fun (_, arg) ->
                  match arg.pexp_desc with
                  | Pexp_constant (Pconst_integer (s, None)) ->
                    Option.iter
                      (fun n -> t.emitted_ints <- ISet.add n t.emitted_ints)
                      (int_of_string_opt s)
                  | _ -> ())
                args
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_constant (Pconst_char c) -> t.chars <- CSet.add c t.chars
          | Ppat_constant (Pconst_integer (s, None)) ->
            Option.iter (fun n -> t.ints <- ISet.add n t.ints) (int_of_string_opt s)
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.expr it expr;
  t

let decoder_name encoder =
  if Registry.has_prefix ~prefix:"encode_" encoder then
    Some ("decode_" ^ String.sub encoder 7 (String.length encoder - 7))
  else if Registry.has_prefix ~prefix:"write_" encoder then
    Some ("read_" ^ String.sub encoder 6 (String.length encoder - 6))
  else None

let run ~file structure =
  if not (List.mem (Filename.basename file) Registry.codec_basenames) then []
  else begin
    let bindings = bindings_of_structure structure [] in
    (* Named integer constants participate in tag symmetry only when
       they follow the tag_* convention, so sizes and versions don't. *)
    let tag_consts =
      List.filter_map
        (fun (name, vb) ->
          if Registry.has_prefix ~prefix:"tag" name && int_const_of_binding vb <> None then
            Some name
          else None)
        bindings
    in
    let findings = ref [] in
    let emit loc message =
      findings := Source.finding ~check:id ~file loc message :: !findings
    in
    List.iter
      (fun (name, vb) ->
        match decoder_name name with
        | None -> ()
        | Some decoder -> begin
          match List.assoc_opt decoder bindings with
          | None ->
            emit vb.pvb_loc
              (Printf.sprintf "%s has no matching %s in this codec module" name decoder)
          | Some dvb ->
            let enc = scan_body vb.pvb_expr in
            let dec = scan_body dvb.pvb_expr in
            CSet.iter
              (fun c ->
                if not (CSet.mem c dec.chars) then
                  emit vb.pvb_loc
                    (Printf.sprintf "%s emits tag '\\%03d' that %s never matches" name
                       (Char.code c) decoder))
              enc.chars;
            ISet.iter
              (fun n ->
                if not (ISet.mem n dec.ints) then
                  emit vb.pvb_loc
                    (Printf.sprintf "%s emits tag %d that %s never matches" name n decoder))
              enc.emitted_ints;
            SSet.iter
              (fun tag ->
                if List.mem tag tag_consts && not (SSet.mem tag dec.tag_refs) then
                  emit vb.pvb_loc
                    (Printf.sprintf "%s references tag constant %s that %s never checks" name
                       tag decoder))
              enc.tag_refs
        end)
      bindings;
    !findings
  end
