type severity = Error | Warning

type t = {
  check : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  message : string;
}

let v ~check ?(severity = Error) ~file ~line ~col message =
  { check; file; line; col; severity; message }

let severity_name = function Error -> "error" | Warning -> "warning"

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.check b.check in
        if c <> 0 then c else String.compare a.message b.message

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col f.check
    (severity_name f.severity) f.message

(* Hand-rolled JSON escaping: the gate script diffs findings line by
   line, so the encoding must be deterministic and dependency-free. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"check":"%s","file":"%s","line":%d,"col":%d,"severity":"%s","message":"%s"}|}
    (json_escape f.check) (json_escape f.file) f.line f.col
    (severity_name f.severity) (json_escape f.message)

(* One SARIF result object, kept to a single line for the same reason
   [to_json] is: the baseline gate diffs output textually.  Columns are
   1-based in SARIF, 0-based here. *)
let to_sarif f =
  Printf.sprintf
    {|{"ruleId":"%s","level":"%s","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (json_escape f.check) (severity_name f.severity) (json_escape f.message)
    (json_escape f.file) f.line (f.col + 1)
