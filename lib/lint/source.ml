(* Parsing front end: turn a source file into a Parsetree.structure
   using the compiler's own parser, so every check sees exactly what the
   compiler sees (comments and formatting invisible, attributes kept). *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let col_of (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

let finding ~check ?severity ~file (loc : Location.t) message =
  Finding.v ~check ?severity ~file ~line:(line_of loc) ~col:(col_of loc) message

let parse_uncached ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error _ ->
    let p = lexbuf.Lexing.lex_curr_p in
    Error
      (Finding.v ~check:"parse-error" ~file:filename ~line:p.Lexing.pos_lnum
         ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
         "syntax error")
  | exception Lexer.Error (_, loc) ->
    Error (finding ~check:"parse-error" ~file:filename loc "lexical error")

(* Parse-once cache: one Parsetree.structure per (filename, contents),
   shared by every check in a run — and across runs inside one process
   (the fixture tests and the bench loop re-lint the same sources).  The
   stored source string guards against a file changing between runs. *)
let parse_cache : (string, string * (Parsetree.structure, Finding.t) result) Hashtbl.t =
  Hashtbl.create 64

let parse_string ~filename source =
  match Hashtbl.find_opt parse_cache filename with
  | Some (cached_src, res) when String.equal cached_src source -> res
  | _ ->
    let res = parse_uncached ~filename source in
    Hashtbl.replace parse_cache filename (source, res);
    res
