(** One static-analysis finding: which check fired, where, and why. *)

type severity = Error | Warning

type t = {
  check : string;  (** check id, e.g. ["codec-symmetry"] *)
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as compilers print them *)
  severity : severity;
  message : string;
}

val v :
  check:string -> ?severity:severity -> file:string -> line:int -> col:int -> string -> t

val severity_name : severity -> string

val compare : t -> t -> int
(** Orders by file, line, column, check, message — the stable order the
    baseline gate relies on. *)

val to_string : t -> string
(** [file:line:col: [check] severity: message], clickable in editors. *)

val to_json : t -> string
(** A single-line JSON object; one finding per line so the baseline
    gate can diff output textually. *)
