(** One static-analysis finding: which check fired, where, and why. *)

type severity = Error | Warning

type t = {
  check : string;  (** check id, e.g. ["codec-symmetry"] *)
  file : string;  (** path relative to the lint root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as compilers print them *)
  severity : severity;
  message : string;
}

val v :
  check:string -> ?severity:severity -> file:string -> line:int -> col:int -> string -> t

val severity_name : severity -> string

val compare : t -> t -> int
(** Orders by file, line, column, check, message — the stable order the
    baseline gate relies on. *)

val to_string : t -> string
(** [file:line:col: [check] severity: message], clickable in editors. *)

val to_json : t -> string
(** A single-line JSON object; one finding per line so the baseline
    gate can diff output textually. *)

val to_sarif : t -> string
(** A single-line SARIF 2.1.0 result object (1-based columns), embedded
    by {!Driver.render_sarif} — one result per line for the same
    textual-diff reason as {!to_json}. *)

val json_escape : string -> string
(** The deterministic, dependency-free JSON string escaping shared by
    every renderer. *)
