(* wal-durability: the segmented WAL's group-commit contract, checked
   statically over [Prov_log.Segmented] (lib/core/prov_log.ml):

   1. every path that records an append (increments the pending-ops /
      pending-bytes counters) must also reach a commit point — a direct
      sink flush, or a call that (transitively) flushes, like
      [maybe_commit] / [flush_pending];
   2. any function that closes the active sink (rotate / compact /
      close) must flush pending appends first — otherwise buffered
      group-commit records die with the file descriptor;
   3. no sink write or flush on the active segment after it was closed,
      unless a fresh segment was started in between.

   Scoped to functions inside the [Segmented] module so the in-memory
   journal helpers at the top of the file (which share names like
   [compact]) are not conscripted into WAL rules.  Rules 1–2 use
   must-reach (order-insensitive, raising paths exempt); rule 3 is a
   branch-sensitive linear scan in evaluation order. *)

open Parsetree

let id = "wal-durability"

let applies ~file = file = Registry.wal_file

let last lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

let flatten_last2 lid =
  match List.rev (Longident.flatten lid) with
  | name :: m :: _ -> (m, name)
  | [ name ] -> ("", name)
  | [] -> ("", "")

let is_sink_op names lid =
  let m, name = flatten_last2 lid in
  List.mem m Registry.wal_sink_modules && List.mem name names

let rec unconstrain e =
  match e.pexp_desc with Pexp_constraint (e, _) -> unconstrain e | _ -> e

(* Is this argument the handle's active sink ([h.active])? *)
let is_active_arg arg =
  match (unconstrain arg).pexp_desc with
  | Pexp_field (_, { txt; _ }) -> last txt = Registry.wal_active_field
  | _ -> false

(* may-reach: does [expr] contain a subexpression the predicate accepts
   anywhere (closures included)? *)
let contains pred expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if pred e then found := true;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !found

let is_zero e =
  match (unconstrain e).pexp_desc with
  | Pexp_constant (Pconst_integer ("0", _)) -> true
  | _ -> false

(* A pending-counter increment (resets to literal 0 are the commit side
   of the protocol, not new debt). *)
let is_pending_increment e =
  match e.pexp_desc with
  | Pexp_setfield (_, { txt; _ }, rhs) ->
    List.mem (last txt) Registry.wal_pending_fields && not (is_zero rhs)
  | _ -> false

let is_active_assign e =
  match e.pexp_desc with
  | Pexp_setfield (_, { txt; _ }, _) -> last txt = Registry.wal_active_field
  | _ -> false

let run ~file structure =
  if not (applies ~file) then []
  else begin
    let graph = Callgraph.build [ (file, structure) ] in
    let seg_fns =
      List.filter
        (fun (f : Callgraph.fn) -> List.mem Registry.wal_module f.Callgraph.fn_path)
        (Callgraph.file_fns graph file)
    in
    let findings = ref [] in
    let emit (f : Callgraph.fn) msg =
      findings :=
        Finding.v ~check:id ~file ~line:f.Callgraph.fn_line ~col:0
          (Printf.sprintf "%s %s" f.Callgraph.fn_name msg)
        :: !findings
    in
    (* Fixpoint of a "contains a member call" closure over [seed]. *)
    let closure seed =
      let set : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun (f : Callgraph.fn) ->
          if seed f then Hashtbl.replace set (Callgraph.fn_key f) ())
        seg_fns;
      let calls_member (f : Callgraph.fn) e =
        match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
          List.exists
            (fun g -> Hashtbl.mem set (Callgraph.fn_key g))
            (Callgraph.resolve graph ~file:f.Callgraph.fn_file
               ~line:loc.Location.loc_start.Lexing.pos_lnum txt)
        | _ -> false
      in
      let pass () =
        List.fold_left
          (fun changed f ->
            let key = Callgraph.fn_key f in
            if Hashtbl.mem set key then changed
            else if contains (calls_member f) f.Callgraph.fn_expr then begin
              Hashtbl.replace set key ();
              true
            end
            else changed)
          false seg_fns
      in
      while pass () do
        ()
      done;
      calls_member
    in
    (* Commit-capable: flushes the sink, directly or transitively. *)
    let calls_commit =
      closure (fun f ->
          contains
            (fun e ->
              match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
                is_sink_op Registry.wal_flush_names txt
              | _ -> false)
            f.Callgraph.fn_expr)
    in
    (* Reopen-capable: assigns a fresh active sink, directly or
       transitively (start_segment and its callers). *)
    let calls_reopen = closure (fun f -> contains is_active_assign f.Callgraph.fn_expr) in
    let commit_matcher f e =
      (match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
        is_sink_op Registry.wal_flush_names txt
      | _ -> false)
      || calls_commit f e
    in
    let must_commit f body = Dataflow.must_reach ~matches:(commit_matcher f) body in
    List.iter
      (fun (f : Callgraph.fn) ->
        let body = Dataflow.strip_params f.Callgraph.fn_expr in
        (* Rule 1, decomposed per match case so a [[] -> ()] arm that
           appends nothing owes nothing. *)
        let rule1_cases =
          match body.pexp_desc with
          | Pexp_match (_, cases) | Pexp_function cases ->
            List.map (fun c -> c.pc_rhs) cases
          | _ -> [ body ]
        in
        List.iter
          (fun case_body ->
            if contains is_pending_increment case_body && not (must_commit f case_body) then
              emit f
                "records a pending append on a path that never reaches a commit point \
                 (sink flush / flush_pending / maybe_commit)")
          rule1_cases;
        (* Rule 2: closing the active sink requires flushing pending
           appends on every path. *)
        let closes_active e =
          match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            is_sink_op Registry.wal_close_names txt
            && List.exists (fun (_, a) -> is_active_arg a) args
          | _ -> false
        in
        if contains closes_active body && not (must_commit f body) then
          emit f
            "closes the active sink without flushing pending group-commit appends first";
        (* Rule 3: linear scan — no active-sink write/flush between a
           close and the next fresh segment. *)
        let reopens f e =
          is_active_assign e
          ||
          match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident _; _ }, _) -> calls_reopen f e
          | _ -> false
        in
        let rec scan closed e =
          if reopens f e then false
          else begin
            match e.pexp_desc with
            | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as head), args) ->
              let closed = List.fold_left (fun c (_, a) -> scan c a) closed args in
              let on_active = List.exists (fun (_, a) -> is_active_arg a) args in
              if is_sink_op Registry.wal_close_names txt && on_active then true
              else begin
                if
                  closed && on_active
                  && is_sink_op (Registry.wal_write_names @ Registry.wal_flush_names) txt
                then
                  emit f "writes to the WAL sink after closing it (lost record)";
                if Dataflow.is_call_through head then
                  List.fold_left
                    (fun c (_, a) ->
                      if Dataflow.is_fun_literal a then scan c (Dataflow.strip_params a)
                      else c)
                    closed args
                else closed
              end
            | Pexp_sequence (a, b) -> scan (scan closed a) b
            | Pexp_let (_, vbs, b) ->
              scan (List.fold_left (fun c vb -> scan c vb.pvb_expr) closed vbs) b
            | Pexp_ifthenelse (c, t, fo) ->
              let closed = scan closed c in
              let ct = scan closed t in
              let cf = match fo with Some fe -> scan closed fe | None -> closed in
              ct || cf
            | Pexp_match (scrut, cases) ->
              let closed = scan closed scrut in
              List.fold_left (fun acc c -> scan closed c.pc_rhs || acc) false cases
            | Pexp_try (b, _) -> scan closed b
            | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> closed
            | Pexp_setfield (a, _, b) -> scan (scan closed a) b
            | Pexp_constraint (e, _) | Pexp_open (_, e) -> scan closed e
            | Pexp_tuple es | Pexp_array es -> List.fold_left scan closed es
            | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> scan closed e
            | Pexp_record (fields, base) ->
              let closed = List.fold_left (fun c (_, e) -> scan c e) closed fields in
              (match base with Some b -> scan closed b | None -> closed)
            | Pexp_field (e, _) -> scan closed e
            | Pexp_while (c, b) -> scan (scan closed c) b
            | Pexp_for (_, lo, hi, _, b) -> scan (scan (scan closed lo) hi) b
            | _ -> closed
          end
        in
        ignore (scan false body))
      seg_fns;
    List.rev !findings
  end
