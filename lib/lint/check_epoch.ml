(* epoch-discipline: every function in lib/relstore/table.ml that
   mutates table state (a Hashtbl operation on the row store / indexes,
   or a mutable-field assignment) must bump the modification epoch on
   every terminating path — directly, or through a callee that does.
   The epoch validates the query cache, the matview freshness check and
   the statistics catalog; a mutation path that skips the bump serves
   stale answers with no error anywhere.

   The "bumping" set is a fixpoint: seed with functions that must-reach
   [t.epoch <- ...], then add functions that must-reach a call into the
   set, until stable.  Raising paths are exempt (Dataflow.must_reach);
   loop bodies never satisfy the obligation — a bump inside [List.iter]
   runs zero times on the empty list. *)

open Parsetree

let id = "epoch-discipline"

let applies ~file = file = Registry.epoch_file

let last lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

let flatten_last2 lid =
  match List.rev (Longident.flatten lid) with
  | name :: m :: _ -> (m, name)
  | [ name ] -> ("", name)
  | [] -> ("", "")

(* Evidence that an expression mutates table state somewhere. *)
let mutates expr =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
            let m, name = flatten_last2 txt in
            if m = "Hashtbl" && Registry.is_mutating_op ~module_:"Hashtbl" ~name then
              found := true
          | Pexp_setfield (_, { txt; _ }, _) when last txt <> Registry.epoch_field ->
            found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  !found

let run ~file structure =
  if not (applies ~file) then []
  else begin
    let graph = Callgraph.build [ (file, structure) ] in
    let fns = Callgraph.file_fns graph file in
    let bumping : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let bumps_directly e =
      match e.pexp_desc with
      | Pexp_setfield (_, { txt; _ }, _) -> last txt = Registry.epoch_field
      | _ -> false
    in
    let calls_bumping (f : Callgraph.fn) e =
      match e.pexp_desc with
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
        List.exists
          (fun g -> Hashtbl.mem bumping (Callgraph.fn_key g))
          (Callgraph.resolve graph ~file:f.Callgraph.fn_file
             ~line:loc.Location.loc_start.Lexing.pos_lnum txt)
      | _ -> false
    in
    let pass () =
      List.fold_left
        (fun changed f ->
          let key = Callgraph.fn_key f in
          if Hashtbl.mem bumping key then changed
          else begin
            let body = Dataflow.strip_params f.Callgraph.fn_expr in
            if Dataflow.must_reach ~matches:(fun e -> bumps_directly e || calls_bumping f e) body
            then begin
              Hashtbl.replace bumping key ();
              true
            end
            else changed
          end)
        false fns
    in
    while pass () do
      ()
    done;
    List.filter_map
      (fun (f : Callgraph.fn) ->
        if mutates f.Callgraph.fn_expr && not (Hashtbl.mem bumping (Callgraph.fn_key f)) then
          Some
            (Finding.v ~check:id ~file ~line:f.Callgraph.fn_line ~col:0
               (Printf.sprintf
                  "%s mutates table rows/indexes without bumping the modification epoch on \
                   every path; stale cache/matview/stats reads follow"
                  f.Callgraph.fn_name))
        else None)
      fns
  end
