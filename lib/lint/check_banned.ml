(* banned-constructs: constructs that undermine the storage and query
   invariants the rest of the tree works to uphold.

   - [Obj.magic] anywhere: defeats the type system the codecs rely on.
   - [Printf.printf] under lib/: library code reports through values
     (or Harness.Report); stdout belongs to the binaries.
   - polymorphic [=]/[<>]/[compare] against a [Value.t]/[Row.t]:
     [Value.Real nan] and cross-constructor comparisons have surprising
     polymorphic semantics — use [Value.compare]/[Value.equal].
   - [try ... with _ ->]: a catch-all swallows Corrupt, Out_of_memory
     and programming errors alike; match the exception you mean. *)

open Parsetree

let id = "banned-constructs"

let flatten_last2 lid =
  match List.rev (Longident.flatten lid) with
  | last :: prev :: _ -> (prev, last)
  | [ last ] -> ("", last)
  | [] -> ("", "")

let is_obj_magic lid =
  match flatten_last2 lid with "Obj", "magic" -> true | _ -> false

let is_printf lid =
  match flatten_last2 lid with "Printf", "printf" -> true | _ -> false

let poly_compare_ops = [ "="; "<>"; "=="; "!="; "compare" ]

let value_constructors = [ "Null"; "Int"; "Real"; "Text"; "Blob"; "Bool" ]

(* Syntactic evidence that an expression is a Value.t or Row.t: a
   Value-qualified constructor, or an explicit type constraint. *)
let value_typed e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = lid; _ }, _) -> begin
    match flatten_last2 lid with
    | "Value", c -> List.mem c value_constructors
    | _ -> false
  end
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = lid; _ }, _); _ }) -> begin
    match flatten_last2 lid with ("Value" | "Row"), "t" -> true | _ -> false
  end
  | _ -> false

let rec is_wild pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_wild p
  | Ppat_or (a, b) -> is_wild a || is_wild b
  | _ -> false

let run ~file structure =
  let in_lib = Registry.in_lib file in
  let findings = ref [] in
  let emit loc message = findings := Source.finding ~check:id ~file loc message :: !findings in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = lid; _ } when is_obj_magic lid ->
            emit e.pexp_loc "Obj.magic defeats the type safety the codecs depend on"
          | Pexp_ident { txt = lid; _ } when in_lib && is_printf lid ->
            emit e.pexp_loc
              "Printf.printf in lib/: return values (or use Harness.Report); stdout belongs \
               to the binaries"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = op; _ }; _ }, args) ->
            let _, op_name = flatten_last2 op in
            if
              List.mem op_name poly_compare_ops
              && List.exists (fun (_, arg) -> value_typed arg) args
            then
              emit e.pexp_loc
                (Printf.sprintf
                   "polymorphic %s on Value.t/Row.t: use Value.compare or Value.equal"
                   op_name)
          | Pexp_try (_, cases) ->
            List.iter
              (fun case ->
                match case.pc_lhs.ppat_desc with
                | Ppat_exception _ -> ()
                | _ ->
                  if is_wild case.pc_lhs then
                    emit case.pc_lhs.ppat_loc
                      "catch-all exception handler swallows corruption and programming \
                       errors alike: match the exceptions you expect")
              cases
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  !findings
