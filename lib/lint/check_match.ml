(* no-wildcard-match: a match over a provenance-critical variant
   (Registry.critical_variants) must enumerate constructors instead of
   ending in a wildcard.  With a wildcard, adding an event kind, a
   transition, or an edge kind compiles cleanly while the new case is
   silently dropped at capture/query sites — the exact
   capture-completeness failure the paper warns about.

   A match is "over" a registered variant when any top-level case
   pattern (looking through or-patterns, aliases, constraints and tuple
   components, but not into constructor arguments) names one of its
   constructors, qualified with the registered module name — or
   unqualified inside the variant's own defining file.  Nested uses like
   [Some Prov_edge.Redirect] are deliberately out of scope: only direct
   enumerations of the scrutinee are enforced. *)

open Parsetree

let id = "no-wildcard-match"

let rec heads pat =
  match pat.ppat_desc with
  | Ppat_or (a, b) -> heads a @ heads b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) -> heads p
  | Ppat_tuple ps -> List.concat_map heads ps
  | Ppat_construct (lid, _) -> [ lid.txt ]
  | _ -> []

let rec is_wild pat =
  match pat.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) -> is_wild p
  | Ppat_or (a, b) -> is_wild a || is_wild b
  | Ppat_tuple ps -> List.for_all is_wild ps
  | _ -> false

let variant_of ~base lid =
  let find pred = List.find_opt pred Registry.critical_variants in
  match lid with
  | Longident.Ldot (path, c) ->
    let path_last =
      match List.rev (Longident.flatten path) with last :: _ -> last | [] -> ""
    in
    find (fun v -> v.Registry.module_name = path_last && List.mem c v.Registry.constructors)
  | Longident.Lident c ->
    find (fun v -> v.Registry.defining_file = base && List.mem c v.Registry.constructors)
  | Longident.Lapply _ -> None

let check_cases ~file ~base cases acc =
  let variants =
    List.concat_map
      (fun case -> List.filter_map (variant_of ~base) (heads case.pc_lhs))
      cases
  in
  match variants with
  | [] -> acc
  | v :: _ ->
    List.fold_left
      (fun acc case ->
        if is_wild case.pc_lhs then
          Source.finding ~check:id ~file case.pc_lhs.ppat_loc
            (Printf.sprintf
               "wildcard case in a match over %s: enumerate its constructors so a new one \
                cannot be silently dropped"
               v.Registry.type_name)
          :: acc
        else acc)
      acc cases

let run ~file structure =
  let base = Filename.basename file in
  let findings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_match (_, cases) | Pexp_function cases ->
            findings := check_cases ~file ~base cases !findings
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  !findings
