(* io-discipline: library code must not reach for Unix directly.  File
   writes go through Provkit_util.Faulty_io (so the fault-injection
   crash tests exercise the same code paths production uses) and clocks
   go through Provkit_util.Timing (so latencies come from the monotonic
   source, not a wall clock an NTP step can run backwards).  Only those
   two modules may touch Unix; everything else under lib/ is flagged. *)

open Parsetree

let id = "io-discipline"

let is_unix lid =
  match Longident.flatten lid with
  | ("Unix" | "UnixLabels") :: _ -> true
  | _ -> false

let message what =
  Printf.sprintf
    "direct Unix access (%s) in lib/: route file I/O through Provkit_util.Faulty_io and \
     clocks through Provkit_util.Timing"
    what

let applies ~file =
  Registry.in_lib file
  && not (List.mem (Filename.basename file) Registry.io_exempt_basenames)

let run ~file structure =
  if not (applies ~file) then []
  else begin
    let findings = ref [] in
    let emit loc what = findings := Source.finding ~check:id ~file loc (message what) :: !findings in
    let check_module_expr (me : module_expr) =
      match me.pmod_desc with
      | Pmod_ident { txt = lid; _ } when is_unix lid ->
        emit me.pmod_loc (String.concat "." (Longident.flatten lid))
      | _ -> ()
    in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident { txt = lid; _ } when is_unix lid ->
              emit e.pexp_loc (String.concat "." (Longident.flatten lid))
            | Pexp_open (od, _) -> check_module_expr od.popen_expr
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
        structure_item =
          (fun it item ->
            (match item.pstr_desc with
            | Pstr_open od -> check_module_expr od.popen_expr
            | Pstr_module { pmb_expr; _ } -> check_module_expr pmb_expr
            | _ -> ());
            Ast_iterator.default_iterator.structure_item it item);
      }
    in
    it.structure it structure;
    !findings
  end
