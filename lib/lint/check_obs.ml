(* obs-names: AST-accurate metric-name hygiene, replacing the old
   grep-based tools/obs_lint.sh.

   lib/obs/names.ml is the single source of truth for metric names.
   Two directions are enforced:

   - every string literal shaped like a metric name ("prov." plus at
     least two more dotted segments) appearing in lib/ or bin/ must be
     declared there — a typo at an instrumentation site fails the build
     instead of silently creating a parallel metric;
   - every declared name must actually be recorded somewhere in lib/ or
     bin/ (referenced as [Names.x] / [Obs.Names.x], or as the literal
     itself) — the inverse check grep could not express: a registered
     but never-recorded metric is a dashboard lying about coverage.

   Unlike the grep, literals in comments are invisible here, and test
   code remains exempt (suites may invent scratch names).

   The same file also registers trace span names, as [span_*] string
   bindings.  For those the contract is:

   - the name argument of [Trace.record] / [Trace.with_span] in lib/
     must not be a string literal unless that literal is a registered
     span constant — ad-hoc span names in the library would fragment
     the profile trees that provctl renders (bin/ may still improvise:
     CLI phase spans are not library API);
   - every registered [span_*] binding must be referenced somewhere in
     lib/ or bin/.

   Alert rule ids ("alert." + two more dotted segments, digits allowed)
   and health check names ("health." + two more segments) get the same
   two-way treatment: a shaped literal in lib/ or bin/ must be a
   registered names.ml constant, and every registered constant must be
   used.  One-segment reason strings like "alert.fired" are not ids and
   stay exempt. *)

open Parsetree

let id = "obs-names"

module SSet = Set.Make (String)

(* Top-level [let name = "prov.x.y"] bindings of the names module. *)
let registry_of structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.filter_map
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | Ppat_var name, Pexp_constant (Pconst_string (s, _, _))
              when Registry.is_metric_literal s -> Some (name.txt, s, vb.pvb_loc)
            | _ -> None)
          vbs
      | _ -> [])
    structure

(* Top-level bindings of the names module whose literal has a given
   dotted-id shape — the alert-rule-id and health-check-name
   registries.  Shape of the literal, not of the binding name, decides:
   [alert_fires = "prov.alert.fires.total"] is a metric, not a rule. *)
let shaped_registry_of ~shaped structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.filter_map
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | Ppat_var name, Pexp_constant (Pconst_string (s, _, _)) when shaped s ->
              Some (name.txt, s, vb.pvb_loc)
            | _ -> None)
          vbs
      | _ -> [])
    structure

(* Top-level [let span_x = "..."] bindings of the names module. *)
let span_registry_of structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.filter_map
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | Ppat_var name, Pexp_constant (Pconst_string (s, _, _))
              when Registry.has_prefix ~prefix:"span_" name.txt -> Some (name.txt, s, vb.pvb_loc)
            | _ -> None)
          vbs
      | _ -> [])
    structure

type uses = { mutable idents : SSet.t; mutable literals : SSet.t }

let scan_uses structure uses =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Ldot (path, x); _ } -> begin
            match List.rev (Longident.flatten path) with
            | "Names" :: _ -> uses.idents <- SSet.add x uses.idents
            | _ -> ()
          end
          | Pexp_constant (Pconst_string (s, _, _)) ->
            (* All literals, not just metric-shaped ones: span constants
               are matched by their literal value too. *)
            uses.literals <- SSet.add s uses.literals
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

let literal_findings ~file structure ~registered ~alert_registered ~health_registered =
  let findings = ref [] in
  let flag loc fmt s =
    findings := Source.finding ~check:id ~file loc (Printf.sprintf fmt s) :: !findings
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _)) ->
            if Registry.is_metric_literal s && not (SSet.mem s registered) then
              flag e.pexp_loc "unregistered metric name %S: add it to lib/obs/names.ml" s
            else if Registry.is_alert_literal s && not (SSet.mem s alert_registered) then
              flag e.pexp_loc
                "unregistered alert rule id %S: add an alert_* constant to lib/obs/names.ml \
                 (and Names.alert_ids)"
                s
            else if Registry.is_health_literal s && not (SSet.mem s health_registered) then
              flag e.pexp_loc
                "unregistered health check name %S: add a health_* constant to \
                 lib/obs/names.ml (and Names.health_names)"
                s
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  !findings

(* Literal span names at lib/ [Trace.record] / [Trace.with_span] sites
   that are not registered constants. *)
let span_site_findings ~file structure span_registered =
  let is_trace_fn path fn =
    (fn = "record" || fn = "with_span")
    &&
    match List.rev (Longident.flatten path) with
    | "Trace" :: _ -> true
    | _ -> false
  in
  let findings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt = Longident.Ldot (path, fn); _ }; _ }, args)
            when is_trace_fn path fn -> begin
            match List.find_opt (fun (lbl, _) -> lbl = Asttypes.Nolabel) args with
            | Some (_, { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); pexp_loc; _ })
              when not (SSet.mem s span_registered) ->
              findings :=
                Source.finding ~check:id ~file pexp_loc
                  (Printf.sprintf
                     "unregistered span name %S: add a span_* constant to lib/obs/names.ml" s)
                :: !findings
            | _ -> ()
          end
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  !findings

(* [files] are (relative path, parsed structure) pairs for the tree. *)
let run files =
  match List.find_opt (fun (rel, _) -> Registry.is_metric_names_file rel) files with
  | None -> []
  | Some (names_rel, names_structure) ->
    let registry = registry_of names_structure in
    let registered = SSet.of_list (List.map (fun (_, s, _) -> s) registry) in
    let others =
      List.filter
        (fun (rel, _) ->
          rel <> names_rel && (Registry.in_lib rel || Registry.in_bin rel))
        files
    in
    let uses = { idents = SSet.empty; literals = SSet.empty } in
    List.iter (fun (_, structure) -> scan_uses structure uses) others;
    let span_registry = span_registry_of names_structure in
    let span_registered = SSet.of_list (List.map (fun (_, s, _) -> s) span_registry) in
    let alert_registry = shaped_registry_of ~shaped:Registry.is_alert_literal names_structure in
    let alert_registered = SSet.of_list (List.map (fun (_, s, _) -> s) alert_registry) in
    let health_registry =
      shaped_registry_of ~shaped:Registry.is_health_literal names_structure
    in
    let health_registered = SSet.of_list (List.map (fun (_, s, _) -> s) health_registry) in
    let unregistered =
      List.concat_map
        (fun (rel, structure) ->
          literal_findings ~file:rel structure ~registered ~alert_registered
            ~health_registered)
        others
    in
    let span_sites =
      List.concat_map
        (fun (rel, structure) ->
          if Registry.in_lib rel then span_site_findings ~file:rel structure span_registered
          else [])
        others
    in
    let span_unused =
      List.filter_map
        (fun (name, literal, loc) ->
          if SSet.mem name uses.idents || SSet.mem literal uses.literals then None
          else
            Some
              (Source.finding ~check:id ~file:names_rel loc
                 (Printf.sprintf
                    "span %s (%S) is registered but never recorded in lib/ or bin/" name
                    literal)))
        span_registry
    in
    let unused =
      List.filter_map
        (fun (name, literal, loc) ->
          if SSet.mem name uses.idents || SSet.mem literal uses.literals then None
          else
            Some
              (Source.finding ~check:id ~file:names_rel loc
                 (Printf.sprintf
                    "metric %s (%S) is registered but never recorded in lib/ or bin/" name
                    literal)))
        registry
    in
    let unused_shaped what reg =
      List.filter_map
        (fun (name, literal, loc) ->
          if SSet.mem name uses.idents || SSet.mem literal uses.literals then None
          else
            Some
              (Source.finding ~check:id ~file:names_rel loc
                 (Printf.sprintf "%s %s (%S) is registered but never used in lib/ or bin/"
                    what name literal)))
        reg
    in
    unregistered @ span_sites @ unused @ span_unused
    @ unused_shaped "alert rule" alert_registry
    @ unused_shaped "health check" health_registry
