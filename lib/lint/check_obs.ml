(* obs-names: AST-accurate metric-name hygiene, replacing the old
   grep-based tools/obs_lint.sh.

   lib/obs/names.ml is the single source of truth for metric names.
   Two directions are enforced:

   - every string literal shaped like a metric name ("prov." plus at
     least two more dotted segments) appearing in lib/ or bin/ must be
     declared there — a typo at an instrumentation site fails the build
     instead of silently creating a parallel metric;
   - every declared name must actually be recorded somewhere in lib/ or
     bin/ (referenced as [Names.x] / [Obs.Names.x], or as the literal
     itself) — the inverse check grep could not express: a registered
     but never-recorded metric is a dashboard lying about coverage.

   Unlike the grep, literals in comments are invisible here, and test
   code remains exempt (suites may invent scratch names). *)

open Parsetree

let id = "obs-names"

module SSet = Set.Make (String)

(* Top-level [let name = "prov.x.y"] bindings of the names module. *)
let registry_of structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.filter_map
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
            | Ppat_var name, Pexp_constant (Pconst_string (s, _, _))
              when Registry.is_metric_literal s -> Some (name.txt, s, vb.pvb_loc)
            | _ -> None)
          vbs
      | _ -> [])
    structure

type uses = { mutable idents : SSet.t; mutable literals : SSet.t }

let scan_uses structure uses =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Ldot (path, x); _ } -> begin
            match List.rev (Longident.flatten path) with
            | "Names" :: _ -> uses.idents <- SSet.add x uses.idents
            | _ -> ()
          end
          | Pexp_constant (Pconst_string (s, _, _)) when Registry.is_metric_literal s ->
            uses.literals <- SSet.add s uses.literals
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

let literal_findings ~file structure registered =
  let findings = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_constant (Pconst_string (s, _, _))
            when Registry.is_metric_literal s && not (SSet.mem s registered) ->
            findings :=
              Source.finding ~check:id ~file e.pexp_loc
                (Printf.sprintf "unregistered metric name %S: add it to lib/obs/names.ml" s)
              :: !findings
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  !findings

(* [files] are (relative path, parsed structure) pairs for the tree. *)
let run files =
  match List.find_opt (fun (rel, _) -> Registry.is_metric_names_file rel) files with
  | None -> []
  | Some (names_rel, names_structure) ->
    let registry = registry_of names_structure in
    let registered = SSet.of_list (List.map (fun (_, s, _) -> s) registry) in
    let others =
      List.filter
        (fun (rel, _) ->
          rel <> names_rel && (Registry.in_lib rel || Registry.in_bin rel))
        files
    in
    let uses = { idents = SSet.empty; literals = SSet.empty } in
    List.iter (fun (_, structure) -> scan_uses structure uses) others;
    let unregistered =
      List.concat_map (fun (rel, structure) -> literal_findings ~file:rel structure registered) others
    in
    let unused =
      List.filter_map
        (fun (name, literal, loc) ->
          if SSet.mem name uses.idents || SSet.mem literal uses.literals then None
          else
            Some
              (Source.finding ~check:id ~file:names_rel loc
                 (Printf.sprintf
                    "metric %s (%S) is registered but never recorded in lib/ or bin/" name
                    literal)))
        registry
    in
    unregistered @ unused
