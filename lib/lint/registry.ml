(* The lint registry: which types, files and names the checks treat as
   provenance-critical.  Kept as data so adding a variant or a codec
   module is a one-line change (see LINTING.md). *)

(* --- provenance-critical variants (no-wildcard-match) --- *)

type variant = {
  type_name : string;  (* how the finding names the type *)
  module_name : string;  (* last path component qualifying its constructors *)
  defining_file : string;  (* basename whose unqualified constructors count *)
  constructors : string list;
}

let critical_variants =
  [
    {
      type_name = "Browser.Event.t";
      module_name = "Event";
      defining_file = "event.ml";
      constructors =
        [
          "Visit"; "Close"; "Tab_opened"; "Tab_closed"; "Bookmark_added"; "Search";
          "Download_started"; "Form_submitted";
        ];
    };
    {
      type_name = "Browser.Transition.t";
      module_name = "Transition";
      defining_file = "transition.ml";
      constructors =
        [
          "Link"; "Typed"; "Bookmark"; "Embed"; "Redirect_permanent"; "Redirect_temporary";
          "Download"; "Framed_link"; "Form_submit"; "Reload";
        ];
    };
    {
      type_name = "Core.Prov_edge.kind";
      module_name = "Prov_edge";
      defining_file = "prov_edge.ml";
      constructors =
        [
          "Link_traversal"; "Typed_traversal"; "Bookmark_traversal"; "Bookmarked_from";
          "Redirect"; "Embed"; "Form_source"; "Form_result"; "Download_source";
          "Download_fetch"; "Search_query"; "Searched_from"; "Instance"; "Tab_spawn";
          "Same_time"; "Reload";
        ];
    };
  ]

(* --- codec modules (codec-symmetry) --- *)

let codec_basenames = [ "codec.ml"; "event_codec.ml"; "prov_log.ml" ]

(* --- sanctioned I/O layers (io-discipline) --- *)

let io_exempt_basenames = [ "faulty_io.ml"; "timing.ml" ]

(* --- paths --- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let has_suffix ~suffix s =
  String.length s >= String.length suffix
  && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix

let in_lib rel = has_prefix ~prefix:"lib/" rel
let in_bin rel = has_prefix ~prefix:"bin/" rel
let is_metric_names_file rel = has_suffix ~suffix:"obs/names.ml" rel

(* --- dataflow checks (epoch-discipline / wal-durability /
       matview-purity / shared-state-registry) --- *)

(* Functions that always raise: paths ending in one of these are exempt
   from must-reach obligations (an insert that bails out with a
   constraint violation owes nobody an epoch bump). *)
let raising_names =
  [
    "raise"; "raise_notrace"; "failwith"; "invalid_arg";
    (* Relstore.Errors — kasprintf-wrapped raises *)
    "corrupt"; "constraint_violation"; "arity_mismatch"; "type_mismatch";
  ]

(* Combinators whose function-literal argument runs synchronously, so
   must-reach descends into it: [Obs.Trace.with_span name (fun () ->
   flush ...)] still flushes on the way through. *)
let call_through_names = [ "with_span"; "protect"; "time" ]

(* epoch-discipline: the one file whose mutations must bump the
   modification epoch that validates the query cache / matviews /
   statistics catalog. *)
let epoch_file = "lib/relstore/table.ml"
let epoch_field = "epoch"

(* Hashtbl operations that mutate (state-changing evidence for the
   epoch check and for matview-purity's toplevel-state rule). *)
let mutating_table_ops =
  [
    ("Hashtbl", [ "replace"; "remove"; "add"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Array", [ "set"; "fill"; "blit" ]);
    ("Bytes", [ "set"; "fill"; "blit" ]);
    ("Queue", [ "push"; "add"; "pop"; "take"; "clear" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ("Buffer", [ "add_string"; "add_char"; "add_bytes"; "clear"; "reset" ]);
  ]

let is_mutating_op ~module_ ~name =
  match List.assoc_opt module_ mutating_table_ops with
  | Some ops -> List.mem name ops
  | None -> false

(* wal-durability: scope and vocabulary of the segmented WAL. *)
let wal_file = "lib/core/prov_log.ml"
let wal_module = "Segmented"
let wal_sink_modules = [ "Fio"; "Faulty_io" ]
let wal_flush_names = [ "flush" ]
let wal_close_names = [ "close" ]
let wal_write_names = [ "write" ]
let wal_pending_fields = [ "pending_ops"; "pending_bytes" ]
let wal_active_field = "active"

(* matview-purity: modules a view fold may never reach (recovery refolds
   the stream — nondeterminism or fault injection would make the rebuilt
   view diverge from the cold recomputation) and the impure subset of
   the printing API (sprintf/asprintf build strings and stay legal). *)
let matview_banned_modules = [ "Faulty_io"; "Timing"; "Random" ]

let matview_banned_prints =
  [ "printf"; "eprintf"; "fprintf"; "print_endline"; "print_string"; "print_newline";
    "prerr_endline" ]

(* --- metric-name shape (obs-names) --- *)

(* A registered metric name is "prov." followed by at least two more
   dot-separated [a-z_]+ segments — the same shape the old grep-based
   @obs-check enforced, so short literals like "prov.db" never collide. *)
let is_metric_literal s =
  let seg_ok seg = seg <> "" && String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') seg in
  match String.split_on_char '.' s with
  | "prov" :: (_ :: _ :: _ as rest) -> List.for_all seg_ok rest
  | _ -> false

(* Alert rule ids and health check names follow the same dotted-id
   discipline under their own heads ("alert." / "health." plus at least
   two more segments), but their segments may carry digits —
   "alert.query.p99_latency" is a rule id, while short reason literals
   like "alert.fired" (one segment after the head) stay exempt. *)
let is_dotted_id ~head s =
  let seg_ok seg =
    seg <> ""
    && String.for_all
         (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
         seg
  in
  match String.split_on_char '.' s with
  | h :: (_ :: _ :: _ as rest) when h = head -> List.for_all seg_ok rest
  | _ -> false

let is_alert_literal s = is_dotted_id ~head:"alert" s
let is_health_literal s = is_dotted_id ~head:"health" s
