(* The provlint driver: discover sources under a root, parse them once,
   run the selected checks, apply [@provlint.allow] suppressions, and
   return findings in a stable order. *)

let all_checks =
  [
    (Check_codec.id, "every encoder has a decoder and their tag constants agree");
    (Check_match.id, "no wildcard case in matches over provenance-critical variants");
    (Check_io.id, "lib/ reaches Unix only through Faulty_io and Timing");
    (Check_banned.id, "no Obj.magic, lib/ printf, polymorphic Value compare, catch-all handler");
    (Check_obs.id, "metric-name literals and the lib/obs/names.ml registry agree both ways");
  ]

let check_ids = List.map fst all_checks

let per_file_checks ~file structure =
  Check_codec.run ~file structure
  @ Check_match.run ~file structure
  @ Check_io.run ~file structure
  @ Check_banned.run ~file structure

(* --- tree walking --- *)

let rec walk root rel acc =
  let dir = Filename.concat root rel in
  Array.fold_left
    (fun acc entry ->
      if entry = "" || entry.[0] = '.' || entry = "_build" then acc
      else begin
        let rel = rel ^ "/" ^ entry in
        let path = Filename.concat root rel in
        if Sys.is_directory path then walk root rel acc
        else if Filename.check_suffix entry ".ml" then rel :: acc
        else acc
      end)
    acc
    (let entries = Sys.readdir dir in
     Array.sort String.compare entries;
     entries)

let tree_files ~root =
  List.sort String.compare
    (List.fold_left
       (fun acc top ->
         if Sys.file_exists (Filename.concat root top) then walk root top acc else acc)
       [] [ "lib"; "bin" ])

(* --- linting --- *)

let selected checks (f : Finding.t) =
  f.Finding.check = "parse-error" || List.mem f.Finding.check checks

let finish ~checks per_file_findings parsed =
  let spans = List.map (fun (rel, structure) -> (rel, Suppress.collect structure)) parsed in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        selected checks f
        &&
        match List.assoc_opt f.Finding.file spans with
        | Some s -> not (Suppress.suppressed s f)
        | None -> true)
      per_file_findings
  in
  List.sort_uniq Finding.compare kept

let lint_files ?(checks = check_ids) ~root rels =
  let parsed, parse_findings =
    List.fold_left
      (fun (parsed, errs) rel ->
        match Source.parse_string ~filename:rel (Source.read_file (Filename.concat root rel)) with
        | Ok structure -> ((rel, structure) :: parsed, errs)
        | Error f -> (parsed, f :: errs))
      ([], []) rels
  in
  let parsed = List.rev parsed in
  let findings =
    List.concat_map (fun (rel, structure) -> per_file_checks ~file:rel structure) parsed
    @ (if List.mem Check_obs.id checks then Check_obs.run parsed else [])
    @ parse_findings
  in
  finish ~checks findings parsed

let lint_tree ?checks ~root () = lint_files ?checks ~root (tree_files ~root)

let lint_source ?(checks = check_ids) ~filename source =
  match Source.parse_string ~filename source with
  | Error f -> [ f ]
  | Ok structure ->
    finish ~checks (per_file_checks ~file:filename structure) [ (filename, structure) ]

(* --- rendering --- *)

let render_text findings = String.concat "\n" (List.map Finding.to_string findings)

let render_json findings =
  match findings with
  | [] -> "[]"
  | fs -> "[\n" ^ String.concat ",\n" (List.map Finding.to_json fs) ^ "\n]"
