(* The provlint driver: discover sources under a root, parse them once,
   run the selected checks, apply [@provlint.allow] suppressions, and
   return findings in a stable order. *)

let all_checks =
  [
    (Check_codec.id, "every encoder has a decoder and their tag constants agree");
    (Check_match.id, "no wildcard case in matches over provenance-critical variants");
    (Check_io.id, "lib/ reaches Unix only through Faulty_io and Timing");
    (Check_banned.id, "no Obj.magic, lib/ printf, polymorphic Value compare, catch-all handler");
    (Check_obs.id, "metric-name literals and the lib/obs/names.ml registry agree both ways");
    (Check_epoch.id, "every table mutation bumps the modification epoch on every path");
    (Check_wal.id, "WAL appends reach a commit point; close/rotate/compact flush pending first");
    (Check_matview.id, "view folds stay deterministic: no Faulty_io/Timing/Random/printing/globals");
    (Check_shared_state.id, "toplevel mutable state in lib/ is declared in the shared-state manifest");
  ]

let check_ids = List.map fst all_checks

(* Per-file checks see one structure at a time (and power lint_source);
   cross-file checks see the whole parsed set. *)
let per_file_runners =
  [
    (Check_codec.id, Check_codec.run);
    (Check_match.id, Check_match.run);
    (Check_io.id, Check_io.run);
    (Check_banned.id, Check_banned.run);
    (Check_epoch.id, Check_epoch.run);
    (Check_wal.id, Check_wal.run);
  ]

let cross_file_runners =
  [
    (Check_obs.id, Check_obs.run);
    (Check_matview.id, Check_matview.run);
    (Check_shared_state.id, fun parsed -> Check_shared_state.run parsed);
  ]

(* --- tree walking --- *)

let rec walk root rel acc =
  let dir = Filename.concat root rel in
  Array.fold_left
    (fun acc entry ->
      if entry = "" || entry.[0] = '.' || entry = "_build" then acc
      else begin
        let rel = rel ^ "/" ^ entry in
        let path = Filename.concat root rel in
        if Sys.is_directory path then walk root rel acc
        else if Filename.check_suffix entry ".ml" then rel :: acc
        else acc
      end)
    acc
    (let entries = Sys.readdir dir in
     Array.sort String.compare entries;
     entries)

let tree_files ~root =
  List.sort String.compare
    (List.fold_left
       (fun acc top ->
         if Sys.file_exists (Filename.concat root top) then walk root top acc else acc)
       [] [ "lib"; "bin" ])

(* --- linting --- *)

let selected checks (f : Finding.t) =
  f.Finding.check = "parse-error" || List.mem f.Finding.check checks

let finish ~checks per_file_findings parsed =
  let spans = List.map (fun (rel, structure) -> (rel, Suppress.collect structure)) parsed in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        selected checks f
        &&
        match List.assoc_opt f.Finding.file spans with
        | Some s -> not (Suppress.suppressed s f)
        | None -> true)
      per_file_findings
  in
  List.sort_uniq Finding.compare kept

let lint_files_timed ?(checks = check_ids) ~root rels =
  let timings = ref [] in
  let timed id f =
    let t0 = Sys.time () in
    let r = f () in
    timings := (id, Sys.time () -. t0) :: !timings;
    r
  in
  let parsed, parse_findings =
    timed "parse" (fun () ->
        List.fold_left
          (fun (parsed, errs) rel ->
            match
              Source.parse_string ~filename:rel (Source.read_file (Filename.concat root rel))
            with
            | Ok structure -> ((rel, structure) :: parsed, errs)
            | Error f -> (parsed, f :: errs))
          ([], []) rels)
  in
  let parsed = List.rev parsed in
  let per_file_findings =
    List.concat_map
      (fun (id, run) ->
        if List.mem id checks then
          timed id (fun () ->
              List.concat_map (fun (rel, structure) -> run ~file:rel structure) parsed)
        else [])
      per_file_runners
  in
  let cross_file_findings =
    List.concat_map
      (fun (id, run) -> if List.mem id checks then timed id (fun () -> run parsed) else [])
      cross_file_runners
  in
  let findings = per_file_findings @ cross_file_findings @ parse_findings in
  (finish ~checks findings parsed, List.rev !timings)

let lint_files ?checks ~root rels = fst (lint_files_timed ?checks ~root rels)
let lint_tree_timed ?checks ~root () = lint_files_timed ?checks ~root (tree_files ~root)
let lint_tree ?checks ~root () = fst (lint_tree_timed ?checks ~root ())

let lint_source ?(checks = check_ids) ~filename source =
  match Source.parse_string ~filename source with
  | Error f -> [ f ]
  | Ok structure ->
    let findings =
      List.concat_map
        (fun (id, run) -> if List.mem id checks then run ~file:filename structure else [])
        per_file_runners
    in
    finish ~checks findings [ (filename, structure) ]

(* --- rendering --- *)

let render_text findings = String.concat "\n" (List.map Finding.to_string findings)

let render_json findings =
  match findings with
  | [] -> "[]"
  | fs -> "[\n" ^ String.concat ",\n" (List.map Finding.to_json fs) ^ "\n]"

(* Minimal SARIF 2.1.0: one run, the check catalogue as rules, one
   result object per line (the gate greps result lines textually, like
   the JSON format). *)
let render_sarif findings =
  let rules =
    String.concat ","
      (List.map
         (fun (id, desc) ->
           Printf.sprintf {|{"id":"%s","shortDescription":{"text":"%s"}}|}
             (Finding.json_escape id) (Finding.json_escape desc))
         all_checks)
  in
  let results = List.map Finding.to_sarif findings in
  Printf.sprintf
    "{\"version\":\"2.1.0\",\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{\"tool\":{\"driver\":{\"name\":\"provlint\",\"rules\":[%s]}},\"results\":[%s]}]}"
    rules
    (match results with [] -> "" | rs -> "\n" ^ String.concat ",\n" rs ^ "\n")

let render_timings timings =
  String.concat "\n"
    (List.map (fun (id, s) -> Printf.sprintf "%-22s %8.1f ms" id (s *. 1000.)) timings)
