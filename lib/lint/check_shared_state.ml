(* shared-state-registry: every toplevel mutable binding under lib/ —
   [ref], [Hashtbl.create], arrays, buffers, mutable-record literals —
   must be declared in the [Shared_state] manifest with a guarding
   strategy, so the concurrent provd planned in ROADMAP item 3 starts
   from a complete audited inventory instead of a grep.  Unregistered
   global mutable state fails the build; so does a manifest entry whose
   binding no longer exists (when its file is part of the linted set),
   so the inventory can neither lag nor rot.

   Detection is syntactic over structure items (locals inside function
   bodies are not global state): the binding's right-hand side must
   *itself* construct the mutable value.  A binding that receives a
   mutable value from a function call is invisible to this check — keep
   constructing global state literally at the binding. *)

open Parsetree

let id = "shared-state-registry"

let last lid =
  match List.rev (Longident.flatten lid) with x :: _ -> x | [] -> ""

let flatten_last2 lid =
  match List.rev (Longident.flatten lid) with
  | name :: m :: _ -> (m, name)
  | [ name ] -> ("", name)
  | [] -> ("", "")

let constructor_calls =
  [
    ("Hashtbl", [ "create" ]);
    ("Buffer", [ "create" ]);
    ("Queue", [ "create" ]);
    ("Stack", [ "create" ]);
    ("Atomic", [ "make" ]);
    ("Array", [ "make"; "init"; "create_float"; "make_matrix" ]);
    ("Bytes", [ "create"; "make" ]);
  ]

let rec unconstrain e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> unconstrain e
  | _ -> e

(* Labels declared [mutable] anywhere in the file's type declarations
   (nested modules included) — a record literal using one is mutable
   state even without a [ref] in sight. *)
let mutable_labels structure =
  let labels = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
            List.iter
              (fun ld ->
                if ld.pld_mutable = Mutable then labels := ld.pld_name.Location.txt :: !labels)
              lds
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  !labels

let is_mutable_rhs ~mutable_labels e =
  match (unconstrain e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> begin
    match flatten_last2 txt with
    | "", "ref" -> true
    | m, name -> begin
      match List.assoc_opt m constructor_calls with
      | Some ops -> List.mem name ops
      | None -> false
    end
  end
  | Pexp_array _ -> true
  | Pexp_record (fields, _) ->
    List.exists (fun ({ Location.txt; _ }, _) -> List.mem (last txt) mutable_labels) fields
  | _ -> false

type binding = { b_file : string; b_name : string; b_line : int }

(* Toplevel mutable bindings of one file, nested modules dotted into the
   name ([Segmented.foo]). *)
let file_bindings file structure =
  let muts = mutable_labels structure in
  let acc = ref [] in
  let rec items path its = List.iter (item path) its
  and item path it =
    match it.pstr_desc with
    | Pstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match Callgraph.binding_name vb.pvb_pat with
          | Some name when is_mutable_rhs ~mutable_labels:muts vb.pvb_expr ->
            acc :=
              {
                b_file = file;
                b_name = String.concat "." (path @ [ name ]);
                b_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
              }
              :: !acc
          | _ -> ())
        vbs
    | Pstr_module mb -> begin
      let name = match mb.pmb_name.Location.txt with Some n -> n | None -> "_" in
      match mb.pmb_expr.pmod_desc with
      | Pmod_structure s -> items (path @ [ name ]) s
      | _ -> ()
    end
    | Pstr_recmodule mbs ->
      List.iter
        (fun mb ->
          let name = match mb.pmb_name.Location.txt with Some n -> n | None -> "_" in
          match mb.pmb_expr.pmod_desc with
          | Pmod_structure s -> items (path @ [ name ]) s
          | _ -> ())
        mbs
    | _ -> ()
  in
  items [] structure;
  List.rev !acc

let run ?(manifest = Shared_state.manifest) parsed =
  let lib_parsed = List.filter (fun (file, _) -> Registry.in_lib file) parsed in
  let detected =
    List.concat_map (fun (file, structure) -> file_bindings file structure) lib_parsed
  in
  let linted_files = List.map fst lib_parsed in
  let unregistered =
    List.filter_map
      (fun b ->
        match
          List.find_opt
            (fun (en : Shared_state.entry) ->
              en.Shared_state.ss_file = b.b_file && en.Shared_state.ss_name = b.b_name)
            manifest
        with
        | Some _ -> None
        | None ->
          Some
            (Finding.v ~check:id ~file:b.b_file ~line:b.b_line ~col:0
               (Printf.sprintf
                  "toplevel mutable binding %s is not declared in the shared-state \
                   manifest (lib/lint/shared_state.ml): provd's audit needs its guard \
                   strategy"
                  b.b_name)))
      detected
  in
  let stale =
    List.filter_map
      (fun (en : Shared_state.entry) ->
        if
          List.mem en.Shared_state.ss_file linted_files
          && not
               (List.exists
                  (fun b ->
                    b.b_file = en.Shared_state.ss_file && b.b_name = en.Shared_state.ss_name)
                  detected)
        then
          Some
            (Finding.v ~check:id ~file:en.Shared_state.ss_file ~line:1 ~col:0
               (Printf.sprintf
                  "stale shared-state manifest entry %s (%s): the binding no longer \
                   exists — prune it from lib/lint/shared_state.ml"
                  en.Shared_state.ss_name
                  (Shared_state.guard_name en.Shared_state.ss_guard)))
        else None)
      manifest
  in
  unregistered @ stale
