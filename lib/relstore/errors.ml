exception Type_mismatch of string
exception Constraint_violation of string
exception No_such_table of string
exception No_such_column of string
exception No_such_row of int
exception Arity_mismatch of string
exception Corrupt of string

let type_mismatch fmt = Format.kasprintf (fun s -> raise (Type_mismatch s)) fmt
let constraint_violation fmt = Format.kasprintf (fun s -> raise (Constraint_violation s)) fmt
let arity_mismatch fmt = Format.kasprintf (fun s -> raise (Arity_mismatch s)) fmt
let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt
