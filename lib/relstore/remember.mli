(** A string-keyed bloom filter: O(1) membership with no false
    negatives and a tunable false-positive rate.  Backs the capture
    layer's "have I seen this URL before" revisit detection. *)

type t

val create : ?false_positive_rate:float -> expected:int -> unit -> t
(** Sized for [expected] insertions at the target rate (default 0.01).
    Exceeding [expected] degrades the rate gracefully; it never loses
    an insertion. *)

val add : t -> string -> unit

val mem : t -> string -> bool
(** Never a false negative for an added key; false positives at roughly
    the configured rate while under the expected load. *)

val remember : t -> string -> bool
(** [mem] then [add] in one step: returns whether the key was (probably)
    already present, and records it either way. *)

val inserted : t -> int
(** Number of [add]/[remember] calls made, duplicates included. *)

val bit_size : t -> int
val hash_count : t -> int
val false_positive_rate : t -> float
(** The configured target rate, not a measurement. *)

val fill_ratio : t -> float
(** Fraction of bits set — a saturation diagnostic. *)
