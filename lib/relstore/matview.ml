module Obs = Provkit_obs

(* Incremental materialized views: a registry of folds maintained as
   events arrive, instead of rescanning tables on every read.  The
   machinery is generic over the event type — the browser layer
   instantiates it with [Browser.Event.t] streams, the WAL layer with
   [Prov_log.op] replay — and each view is the ramen-style triple
   {init; fold; finalize} plus a modification epoch.

   The correctness contract (enforced by test/test_matview.ml) is
   differential: for every registered view, [finalize state] after
   folding a stream prefix must equal the cold recomputation of the
   same query over the tables that prefix produced. *)

let m_updates = Obs.Metrics.counter Obs.Names.matview_updates
let m_refreshes = Obs.Metrics.counter Obs.Names.matview_refreshes
let g_staleness = Obs.Metrics.gauge Obs.Names.matview_staleness
let h_update_ns = Obs.Metrics.histogram Obs.Names.matview_update_ns

type ('ev, 'st, 'out) spec = {
  name : string;
  init : unit -> 'st;
  fold : 'st -> 'ev -> 'st;
  finalize : 'st -> 'out;
}

(* One registered view, with its state hidden behind closures so the
   registry can hold heterogeneous views of one event type. *)
type 'ev slot = {
  s_name : string;
  s_feed : 'ev -> unit;
  s_reset : unit -> unit;
  (* Events folded since registration/reset — the view's modification
     epoch.  A view registered mid-stream lags [events_seen] until the
     next rebuild; that gap is its staleness. *)
  mutable s_folded : int;
  mutable s_updates : int;
  mutable s_refreshes : int;
}

type 'ev t = { mutable slots : 'ev slot list; mutable events_seen : int }

type ('ev, 'st, 'out) handle = {
  h_spec : ('ev, 'st, 'out) spec;
  h_state : 'st ref;
  h_slot : 'ev slot;
}

let create () = { slots = []; events_seen = 0 }

let register t spec =
  let state = ref (spec.init ()) in
  let slot =
    {
      s_name = spec.name;
      s_feed = (fun ev -> state := spec.fold !state ev);
      s_reset = (fun () -> state := spec.init ());
      s_folded = 0;
      s_updates = 0;
      s_refreshes = 0;
    }
  in
  t.slots <- t.slots @ [ slot ];
  { h_spec = spec; h_state = state; h_slot = slot }

let value h = h.h_spec.finalize !(h.h_state)
let view_name h = h.h_slot.s_name
let folded h = h.h_slot.s_folded
let events_seen t = t.events_seen
let view_count t = List.length t.slots

let max_staleness t =
  List.fold_left (fun acc s -> max acc (t.events_seen - s.s_folded)) 0 t.slots

let feed t ev =
  t.events_seen <- t.events_seen + 1;
  List.iter
    (fun s ->
      Obs.Metrics.time h_update_ns (fun () -> s.s_feed ev);
      s.s_folded <- s.s_folded + 1;
      s.s_updates <- s.s_updates + 1;
      Obs.Metrics.incr m_updates)
    t.slots;
  Obs.Metrics.set_gauge g_staleness (float_of_int (max_staleness t))

let feed_batch t evs = List.iter (feed t) evs

(* Full refresh: drop every view's running state and refold the stream
   from scratch.  This is the recovery path (WAL replay rebuilds views
   snapshot-consistently with the tables) and the [provctl matview
   refresh] escape hatch; per-view folds during the refold still count
   as updates, the refresh counter records the rebuild itself. *)
let rebuild t evs =
  List.iter
    (fun s ->
      s.s_reset ();
      s.s_folded <- 0;
      s.s_refreshes <- s.s_refreshes + 1;
      Obs.Metrics.incr m_refreshes)
    t.slots;
  t.events_seen <- 0;
  feed_batch t evs

type status = {
  st_name : string;
  st_folded : int;
  st_updates : int;
  st_refreshes : int;
  st_staleness : int;
}

let status t =
  List.map
    (fun s ->
      {
        st_name = s.s_name;
        st_folded = s.s_folded;
        st_updates = s.s_updates;
        st_refreshes = s.s_refreshes;
        st_staleness = t.events_seen - s.s_folded;
      })
    t.slots
