(** The statistics catalog: per-table, per-column summaries collected by
    an [analyze] pass and consumed by the planner's row-count estimator.

    Statistics are keyed by {!Table.uid} and stamped with the table's
    {!Table.epoch} at collection time, so staleness is a single integer
    comparison — the same validity rule the query cache and matview
    layers already use.  A stale entry is still {!lookup}-able (for
    inspection) but {!fresh} returns [None] and the planner falls back
    to its pre-catalog heuristics.

    Column summaries carry row/null counts, min/max, a HyperLogLog
    distinct-count estimate, and — for indexed columns — an equi-depth
    value histogram whose bucket boundaries capture skew (a heavy
    hitter spans several buckets; the estimator notices). *)

type histogram = {
  hb_min : Value.t;  (** smallest non-null value summarized *)
  hb_bounds : Value.t array;
      (** per-bucket inclusive upper bounds, non-decreasing; each bucket
          holds ≈ [hb_rows / Array.length hb_bounds] values *)
  hb_rows : int;  (** non-null values the histogram summarizes *)
}

type col_stats = {
  cs_column : string;
  cs_nulls : int;  (** null cells among the examined rows *)
  cs_null_frac : float;
  cs_min : Value.t;  (** [Null] when every examined cell was null *)
  cs_max : Value.t;
  cs_ndv : float;  (** HyperLogLog estimate of distinct non-null values *)
  cs_histogram : histogram option;  (** present for indexed columns *)
}

type table_stats = {
  ts_table : string;
  ts_uid : int;
  ts_epoch : int;  (** table epoch at collection; the staleness stamp *)
  ts_rows : int;  (** table row count at collection *)
  ts_sampled : int;  (** rows actually examined ([= ts_rows] when full) *)
  ts_columns : (string * col_stats) list;  (** schema order *)
}

(** {2 Collection} *)

val analyze : ?sample:int -> ?buckets:int -> ?seed:int -> Table.t -> table_stats
(** Scan the table (or a uniform sample of [sample] rows, drawn
    deterministically from [seed], default 42), summarize every column,
    store the result in the process-wide catalog and return it.
    [buckets] (default 32) sizes the equi-depth histograms built for
    indexed columns.  Ticks {!Provkit_obs.Names.stats_analyzes},
    observes {!Provkit_obs.Names.stats_analyze_ns} and runs under a
    {!Provkit_obs.Names.span_stats_analyze} span. *)

val analyze_database :
  ?sample:int -> ?buckets:int -> ?seed:int -> Database.t -> table_stats list
(** {!analyze} every table, in {!Database.tables} order. *)

(** {2 The catalog} *)

val lookup : Table.t -> table_stats option
(** Whatever the catalog holds for this table, fresh or stale. *)

val fresh : Table.t -> table_stats option
(** The stored entry only when its epoch matches the table's current
    epoch — i.e. no mutation has happened since collection. *)

val invalidate : Table.t -> unit
val clear : unit -> unit

val freshness_check : Database.t -> unit -> Provkit_obs.Health.verdict * string
(** The catalog-freshness judgment over every table of the database:
    all entries present and epoch-fresh reads as [Ok]; any table never
    analyzed or analyzed before its last mutation reads as [Degraded]
    (the planner falls back to heuristics — degraded, not broken). *)

val register_health_check : Database.t -> unit
(** Register {!freshness_check} with {!Provkit_obs.Health} under
    {!Provkit_obs.Names.health_stats_fresh}. *)

(** {2 Estimation}

    All estimates are row counts against the analyzed table (scale by
    [ts_rows]); selectivities are fractions in [0, 1].  Sampled
    statistics extrapolate: fractions observed in the sample are taken
    as representative of the table. *)

val selectivity : table_stats -> Predicate.t -> float
(** Estimated fraction of the table's rows satisfying the predicate.
    Equality uses the histogram (heavy hitters spanning whole buckets
    are estimated at their spanned depth) or falls back to [1/ndv];
    ranges interpolate histogram bucket positions (numeric bounds
    interpolate within a bucket, other types split it); conjunctions
    multiply, disjunctions combine independently, [Custom] and [Like]
    get fixed defaults. *)

val estimate_rows : table_stats -> Predicate.t -> float
(** [ts_rows *. selectivity]. *)

val estimate_eq : table_stats -> string -> Value.t -> float
(** Estimated rows with [column = value]. *)

val estimate_range : table_stats -> string -> Value.t option -> Value.t option -> float
(** Estimated rows with [column] in the inclusive range ([None] =
    unbounded on that side). *)

(** {2 Rendering} *)

val to_json : table_stats -> string
(** One JSON object: table identity, staleness stamp, and per-column
    summaries (histogram bounds rendered with {!Value.to_string}). *)

val render : table_stats -> string
(** Aligned per-column table for terminal display. *)
