type t = {
  name : string;
  columns : Column.t array;
  by_name : (string, int) Hashtbl.t;
}

let make ~name columns =
  if columns = [] then invalid_arg "Schema.make: no columns";
  let arr = Array.of_list columns in
  let by_name = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i (c : Column.t) ->
      if Hashtbl.mem by_name c.name then
        invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add by_name c.name i)
    arr;
  { name; columns = arr; by_name }

let name t = t.name
let columns t = t.columns
let arity t = Array.length t.columns

let column_index t cname =
  match Hashtbl.find_opt t.by_name cname with
  | Some i -> i
  | None -> raise (Errors.No_such_column (t.name ^ "." ^ cname))

let column t cname = t.columns.(column_index t cname)
let has_column t cname = Hashtbl.mem t.by_name cname

let validate_row t row =
  if Array.length row <> arity t then
    Errors.type_mismatch "table %s: row arity %d, expected %d" t.name
      (Array.length row) (arity t);
  Array.iteri
    (fun i v ->
      let c = t.columns.(i) in
      if not (Column.accepts c v) then
        if Value.is_null v then
          Errors.constraint_violation "table %s: column %s is NOT NULL" t.name c.name
        else
          Errors.type_mismatch "table %s: column %s expects %s, got %a" t.name
            c.name (Value.ty_name c.ty) Value.pp v)
    row

let ty_code = function
  | Value.Tint -> 0
  | Value.Treal -> 1
  | Value.Ttext -> 2
  | Value.Tblob -> 3
  | Value.Tbool -> 4

let ty_of_code = function
  | 0 -> Value.Tint
  | 1 -> Value.Treal
  | 2 -> Value.Ttext
  | 3 -> Value.Tblob
  | 4 -> Value.Tbool
  | c -> Errors.corrupt "schema: unknown type code %d" c

let serialize buf t =
  Codec.write_string buf t.name;
  Varint.write_unsigned buf (arity t);
  Array.iter
    (fun (c : Column.t) ->
      Codec.write_string buf c.name;
      Varint.write_unsigned buf (ty_code c.ty);
      Buffer.add_char buf (if c.nullable then '\001' else '\000'))
    t.columns

let deserialize s pos =
  let name = Codec.read_string s pos in
  let n = Codec.read_count s pos in
  let cols =
    List.init n (fun _ ->
        let cname = Codec.read_string s pos in
        let ty = ty_of_code (Varint.read_unsigned s pos) in
        let nullable =
          if !pos >= String.length s then Errors.corrupt "schema: truncated"
          else begin
            let c = s.[!pos] in
            incr pos;
            c = '\001'
          end
        in
        Column.make ~nullable cname ty)
  in
  make ~name cols

let serialized_size t =
  let buf = Buffer.create 64 in
  serialize buf t;
  Buffer.length buf

let pp ppf t =
  Format.fprintf ppf "TABLE %s (%a)" t.name
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Column.pp)
    t.columns
