(** The slow-query log: a bounded, fingerprint-deduplicated ring of the
    worst queries the executor has run.

    {!Query_exec} notes every query whose elapsed time reaches the
    threshold.  Notes with the same fingerprint — table, operation,
    chosen plan and predicate shape — merge into one entry that
    accumulates occurrence count and latency totals, so a hot bad query
    costs one slot however often it fires.  When the ring is full, the
    entry with the oldest last occurrence is evicted (ticking
    {!Provkit_obs.Names.slowlog_evictions}).

    Entries serialize one-per-line as JSON ({!to_json}/{!of_json}
    round-trip), the format [provctl slowlog --json] emits. *)

type entry = {
  e_fingerprint : int;  (** dedup key: CRC-32 of table/op/plan/detail *)
  e_table : string;
  e_op : string;  (** [select]/[count]/[join]/[group_count] *)
  e_plan : string;  (** {!Query_exec.plan_name} of the chosen path *)
  e_detail : string;  (** rendered predicate shape *)
  mutable e_count : int;  (** occurrences merged into this entry *)
  mutable e_total_ns : int;
  mutable e_max_ns : int;
  mutable e_last_ns : int;  (** latency of the latest occurrence *)
  mutable e_rows_scanned : int;  (** latest occurrence *)
  mutable e_rows_returned : int;
  mutable e_first_ns : int64;  (** monotonic clock at first occurrence *)
  mutable e_last_ns_seen : int64;
}

val threshold_ns : unit -> int
val set_threshold_ns : int -> unit
(** Queries at least this slow are noted.  Default 1 ms; [0] notes
    every query.  Raises [Invalid_argument] when negative or above
    {!max_threshold_ns} (one hour — beyond that the value is almost
    certainly ms or s pasted where ns belong). *)

val max_threshold_ns : int
(** 3_600_000_000_000 (one hour). *)

val threshold_of_env_string : string -> int option
(** Parse a [PROV_SLOWLOG_NS] value: a trimmed decimal int within
    [0, {!max_threshold_ns}], anything else [None].  Applied to the
    environment variable once at module load; exposed pure so tests
    cover the guard without touching the process environment. *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Distinct fingerprints retained (default 128).  Shrinking evicts
    oldest-last-seen immediately.  Raises [Invalid_argument] when
    non-positive. *)

val note :
  table:string ->
  op:string ->
  plan:string ->
  detail:string ->
  elapsed_ns:int ->
  rows_scanned:int ->
  rows_returned:int ->
  unit
(** Record one slow occurrence (the caller applies the threshold).
    Ticks {!Provkit_obs.Names.slowlog_notes}. *)

val fingerprint : table:string -> op:string -> plan:string -> detail:string -> int
(** The dedup key {!note} computes for these coordinates. *)

val entries : unit -> entry list
(** Current entries, worst first (descending total time). *)

val length : unit -> int
val clear : unit -> unit

(** {2 Serialization} *)

val to_json : entry -> string
(** One flat JSON object on one line. *)

val of_json : string -> entry option
(** Inverse of {!to_json}; [None] on malformed input. *)

val dump_jsonl : Buffer.t -> unit
(** Append every entry (worst first), one JSON object per line. *)

val load_jsonl : string -> entry list
(** Parse a {!dump_jsonl}-formatted string, skipping malformed lines. *)

val render : entry list -> string
(** Aligned table for terminal display. *)
