(** Query execution over tables: selection with index acceleration,
    ordering, limits, and equi-joins.

    Every operation is instrumented through {!Provkit_obs}: the chosen
    plan, rows scanned vs. returned, and a latency histogram are
    recorded per query (one branch of overhead when observability is
    off).  The [*_stats] variants additionally return that information
    to the caller — the [EXPLAIN] surface builds on them. *)

type order = Asc of string | Desc of string

type plan =
  | Full_scan
  | Index_eq of string  (** index name used for an equality probe *)
  | Index_range of string

val plan_for : Table.t -> Predicate.t -> plan
(** The access path {!select} will use for this predicate: an exact-match
    index over a prefix of the predicate's conjunctive equalities, else a
    range index, else a scan. *)

val plan_name : plan -> string
(** ["full_scan"], ["index_eq"] or ["index_range"] — the label used in
    metric names and trace attributes. *)

type plan_detail = {
  chosen : plan;
  estimated_rows : int;
      (** with fresh catalog statistics ([est_from_stats = true]): the
          estimated rows the query will {e return}, from
          {!Stats.selectivity}; without: the pre-catalog heuristic — an
          exact candidate count from an index probe for the index paths
          (residual predicates ignored), the table cardinality for a
          scan *)
  table_rows : int;  (** the table's total cardinality, for context *)
  est_from_stats : bool;  (** the estimate came from a fresh catalog entry *)
}

val plan_detail : Table.t -> Predicate.t -> plan_detail
(** {!plan_for} plus estimated rows.  Uses the statistics catalog when
    {!Stats.fresh} has an entry for the table (ticking
    [prov.stats.estimates.total]), else falls back to
    {!plan_detail_heuristic}.  Never executes the query. *)

val plan_detail_heuristic : Table.t -> Predicate.t -> plan_detail
(** The pre-catalog estimator, kept callable so estimate quality can be
    compared against the stats-guided path.  Probes indexes (without
    touching the row heap) but never executes the query. *)

val set_misestimate_threshold : float -> unit
(** Ratio (either direction, default 10.0) between actual and
    stats-estimated row counts beyond which a profiled query ticks
    [prov.stats.misestimates.total] and records a [stats.misestimate]
    flight-recorder incident.  Raises [Invalid_argument] below 1.0. *)

type exec_stats = {
  plan : plan;  (** the access path actually used *)
  rows_scanned : int;  (** candidate rows the access path examined *)
  rows_returned : int;
  elapsed_ns : int;  (** [0] when observability is disabled *)
}

val select :
  ?where:Predicate.t ->
  ?order_by:order list ->
  ?limit:int ->
  Table.t ->
  (int * Row.t) list
(** Rows satisfying [where] (default all), ordered by [order_by] (default
    row id), truncated to [limit].

    Served from the epoch-validated result cache when possible (see
    {!set_cache_enabled}): a repeat of a query against an unmodified
    table returns the stored result without touching the heap, and is
    observationally identical to a cold run.  Predicates containing
    [Predicate.Custom] always run cold.  Cached rows alias the rows a
    cold run would have returned — treat them as read-only, exactly as
    rows fetched from the table itself. *)

val select_stats :
  ?where:Predicate.t ->
  ?order_by:order list ->
  ?limit:int ->
  Table.t ->
  (int * Row.t) list * exec_stats
(** {!select} plus the execution statistics for this query. *)

val count : ?where:Predicate.t -> Table.t -> int

val count_stats : ?where:Predicate.t -> Table.t -> int * exec_stats

val join :
  ?where_left:Predicate.t ->
  ?where_right:Predicate.t ->
  on:(string * string) list ->
  Table.t ->
  Table.t ->
  ((int * Row.t) * (int * Row.t)) list
(** Equi-join: pairs where each [on] column of the left row equals the
    matching column of the right row.  Probes a right-table index when
    one covers the join columns, else builds a hash table on the fly. *)

val join_stats :
  ?where_left:Predicate.t ->
  ?where_right:Predicate.t ->
  on:(string * string) list ->
  Table.t ->
  Table.t ->
  ((int * Row.t) * (int * Row.t)) list * exec_stats
(** {!join} plus statistics.  The reported plan is the right side's
    probe path ([Index_eq] when an index covers the join columns, else
    [Full_scan] for the hash build); [rows_scanned] counts the right
    rows probed or hashed. *)

val group_count : by:string -> ?where:Predicate.t -> Table.t -> (Value.t * int) list
(** Row counts grouped by a column's value, sorted descending by count.
    Goes through the same plan selection as {!select}: an index
    satisfying [where] narrows the scanned candidates. *)

val group_count_stats :
  by:string -> ?where:Predicate.t -> Table.t -> (Value.t * int) list * exec_stats

(** {2 Profiling (EXPLAIN ANALYZE)}

    The [*_profiled] variants run the same operator sequence with a
    clock read at every phase boundary and return a per-operator
    {!profile} tree alongside the result.  Consecutive phases share
    boundary timestamps, so the sum of leaf [dur_ns] values tiles the
    root's interval exactly.  Unlike [exec_stats.elapsed_ns], profile
    timing does not depend on the observability switch — calling a
    profiled entry point is the opt-in. *)

type profile = {
  op : string;  (** operator: [select]/[probe]/[fetch]/[filter]/[sort]/[limit]/… *)
  detail : string;  (** e.g. [index_eq(node_url)], [residual_predicate] *)
  rows_in : int;
  rows_out : int;
  est_rows : int option;
      (** the catalog's estimate of [rows_out], present on the probe,
          filter and aggregate phases (and the select root) when the
          table had fresh statistics at execution — the
          estimated-vs-actual column EXPLAIN ANALYZE prints *)
  dur_ns : int;
  children : profile list;
}

val select_profiled :
  ?where:Predicate.t ->
  ?order_by:order list ->
  ?limit:int ->
  Table.t ->
  (int * Row.t) list * exec_stats * profile
(** {!select_stats} plus an operator profile with children
    [probe; fetch; filter; sort; limit]. *)

val count_profiled : ?where:Predicate.t -> Table.t -> int * exec_stats * profile
(** Children: [probe; fetch; filter]. *)

val group_count_profiled :
  by:string -> ?where:Predicate.t -> Table.t -> (Value.t * int) list * exec_stats * profile
(** Children: [probe; fetch; aggregate; sort]. *)

val join_profiled :
  ?where_left:Predicate.t ->
  ?where_right:Predicate.t ->
  on:(string * string) list ->
  Table.t ->
  Table.t ->
  ((int * Row.t) * (int * Row.t)) list * exec_stats * profile
(** Children: [left_input; probe] on the index path,
    [left_input; build; probe] on the hash path. *)

val profile_to_json : profile -> string
(** One nested JSON object
    [{"op":..,"detail":..,"rows_in":..,"rows_out":..,"dur_ns":..,
      "children":[..]}]. *)

val render_profile : profile -> string
(** Indented operator tree: one line per node with rows in/out, percent
    of the root's duration, and milliseconds. *)

val fold_profile : profile -> (string * int) list
(** Folded-stack lines [("select;probe", self_ns); ..] — self time is a
    node's duration minus its children's, clamped at zero — in the
    format flamegraph tooling consumes (pre-order). *)

val set_query_span_threshold_ns : int -> unit
(** Adjust the slow-query span threshold (default 100 µs): queries at
    least this slow record a trace span; all queries still feed the
    counters and latency histogram.  [0] traces every query. *)

(** {2 Result cache}

    The plain {!select}, {!count} and {!group_count} entry points
    consult a process-wide bounded LRU keyed by (table uid, operation,
    predicate, order, limit) and validated against {!Table.epoch}: any
    mutation of the table invalidates its cached results on the next
    lookup.  The [*_stats] and [*_profiled] variants never consult the
    cache — their callers asked to observe the execution.  Hits,
    misses, evictions and invalidations tick the
    [prov.query.cache.*] metrics. *)

val set_cache_enabled : bool -> unit
(** Default enabled.  Disabling does not clear stored entries (they are
    epoch-checked on any later lookup anyway); use {!clear_cache} to
    also drop them. *)

val set_cache_capacity : int -> unit
(** Default 512 entries; shrinking evicts immediately; [0] caches
    nothing. *)

val cache_capacity : unit -> int

val cache_length : unit -> int
(** Entries currently stored. *)

val clear_cache : unit -> unit

(** {2 Materialized-view sources}

    A registered matview source answers a whole query shape — currently
    [count] (op ["count"], aux [""]) and [group_count ~by] (op
    ["group_count"], aux [by]) — straight from incrementally maintained
    state, before the LRU cache is even consulted.  Only the trivial
    shape matches (predicate {!Predicate.True}, no ordering, no limit);
    anything else, and any source whose [fresh] check fails, falls
    through to the normal cold path.  Serves tick
    [prov.matview.serves.total]. *)

val register_matview_source :
  table:Table.t ->
  op:string ->
  aux:string ->
  fresh:(unit -> bool) ->
  payload:(unit -> Query_cache.payload) ->
  unit
(** Registering again for the same (table, op, aux) replaces the
    previous source.  [fresh] should compare a stamped {!Table.epoch}
    against the current one so direct table mutations that bypassed the
    view's feed path disqualify it. *)

val clear_matview_sources : unit -> unit

val matview_source_count : unit -> int
