(* Value tags.  Bool is encoded in the tag itself to save a byte. *)
let tag_null = 0
let tag_int = 1
let tag_real = 2
let tag_text = 3
let tag_blob = 4
let tag_false = 5
let tag_true = 6

let write_value buf v =
  let tag t = Buffer.add_char buf (Char.chr t) in
  match (v : Value.t) with
  | Null -> tag tag_null
  | Int n ->
    tag tag_int;
    Varint.write_signed buf n
  | Real f ->
    tag tag_real;
    Buffer.add_int64_le buf (Int64.bits_of_float f)
  | Text s ->
    tag tag_text;
    Varint.write_unsigned buf (String.length s);
    Buffer.add_string buf s
  | Blob b ->
    tag tag_blob;
    Varint.write_unsigned buf (Bytes.length b);
    Buffer.add_bytes buf b
  | Bool false -> tag tag_false
  | Bool true -> tag tag_true

let read_bytes s pos n =
  if n < 0 || !pos + n > String.length s then
    Errors.corrupt "codec: truncated payload at %d" !pos
  else begin
    let out = String.sub s !pos n in
    pos := !pos + n;
    out
  end

let read_value s pos : Value.t =
  if !pos >= String.length s then Errors.corrupt "codec: truncated tag at %d" !pos
  else begin
    let tag = Char.code s.[!pos] in
    incr pos;
    if tag = tag_null then Null
    else if tag = tag_int then Int (Varint.read_signed s pos)
    else if tag = tag_real then begin
      let raw = read_bytes s pos 8 in
      Real (Int64.float_of_bits (String.get_int64_le raw 0))
    end
    else if tag = tag_text then begin
      let n = Varint.read_unsigned s pos in
      Text (read_bytes s pos n)
    end
    else if tag = tag_blob then begin
      let n = Varint.read_unsigned s pos in
      Blob (Bytes.of_string (read_bytes s pos n))
    end
    else if tag = tag_false then Bool false
    else if tag = tag_true then Bool true
    else Errors.corrupt "codec: unknown tag %d at %d" tag (!pos - 1)
  end

let write_string buf s =
  Varint.write_unsigned buf (String.length s);
  Buffer.add_string buf s

let read_string s pos =
  let n = Varint.read_unsigned s pos in
  read_bytes s pos n

(* An element count must be plausible before it sizes an allocation:
   every encoded element takes at least one byte, so a count beyond the
   remaining bytes (or negative, from a hostile varint) is corruption. *)
let read_count s pos =
  let n = Varint.read_unsigned s pos in
  if n < 0 || n > String.length s - !pos then
    Errors.corrupt "codec: implausible count %d at %d" n !pos
  else n

let write_row buf row =
  Varint.write_unsigned buf (Array.length row);
  Array.iter (write_value buf) row

let read_row s pos =
  let n = read_count s pos in
  Array.init n (fun _ -> read_value s pos)

(* --- checksummed frames (storage format v2) --- *)

module Crc32 = Provkit_util.Crc32

let write_frame buf payload =
  Varint.write_unsigned buf (String.length payload);
  Buffer.add_string buf (Crc32.to_le_bytes (Crc32.digest payload));
  Buffer.add_string buf payload

let read_frame s pos =
  let n = read_count s pos in
  if String.length s - !pos < 4 + n then Errors.corrupt "frame: truncated at %d" !pos
  else begin
    let stored = Crc32.of_le_bytes s !pos in
    pos := !pos + 4;
    let payload_pos = !pos in
    pos := !pos + n;
    if Crc32.digest ~pos:payload_pos ~len:n s <> stored then
      Errors.corrupt "frame: checksum mismatch at %d" payload_pos
    else String.sub s payload_pos n
  end

let frame_size n = Varint.size_unsigned n + 4 + n

let row_size row =
  Array.fold_left
    (fun acc v -> acc + Value.serialized_size v)
    (Varint.size_unsigned (Array.length row))
    row
