(** Incremental materialized views.

    A view is a streaming fold [{init; fold; finalize}] maintained by a
    registry as events arrive — ramen-style, instead of rescanning base
    tables on every read.  The registry is polymorphic in the event
    type: the browser layer folds [Browser.Event.t] streams, the WAL
    layer refolds [Prov_log.op] replay.

    Correctness contract (the differential gate in test_matview.ml):
    after folding any prefix of an event stream, [value] of every view
    must equal the cold recomputation of the same query over the tables
    that prefix produced. *)

type ('ev, 'st, 'out) spec = {
  name : string;
  init : unit -> 'st;
  fold : 'st -> 'ev -> 'st;
  finalize : 'st -> 'out;
}

type 'ev t
(** A registry of views over one event type. *)

type ('ev, 'st, 'out) handle
(** A registered view; reads its current state via {!value}. *)

val create : unit -> 'ev t

val register : 'ev t -> ('ev, 'st, 'out) spec -> ('ev, 'st, 'out) handle
(** Add a view.  A view registered mid-stream starts from [init] and
    lags behind [events_seen] until the next {!rebuild}; the gap shows
    up as its staleness. *)

val feed : 'ev t -> 'ev -> unit
(** Fold one event into every registered view (the incremental path).
    Bumps the update counter and latency histogram per view, then
    refreshes the staleness gauge. *)

val feed_batch : 'ev t -> 'ev list -> unit

val rebuild : 'ev t -> 'ev list -> unit
(** Full refresh: reset every view and refold the given stream from
    scratch.  The recovery path — WAL replay hands the recovered op
    stream here so views end up snapshot-consistent with the tables. *)

val value : ('ev, 'st, 'out) handle -> 'out
(** [finalize] applied to the view's current state. *)

val view_name : ('ev, 'st, 'out) handle -> string

val folded : ('ev, 'st, 'out) handle -> int
(** The view's modification epoch: events folded since registration or
    the last rebuild. *)

val events_seen : 'ev t -> int
val view_count : 'ev t -> int

val max_staleness : 'ev t -> int
(** [events_seen] minus the laggiest view's fold count. *)

type status = {
  st_name : string;
  st_folded : int;
  st_updates : int;
  st_refreshes : int;
  st_staleness : int;
}

val status : 'ev t -> status list
(** One row per view, in registration order. *)
