exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                                *)
(* ------------------------------------------------------------------ *)

type token =
  | Tident of string  (* identifier or keyword, original case preserved *)
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tsym of string  (* punctuation and operators *)
  | Teof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then parse_error "unterminated string literal";
      emit (Tstring (Buffer.contents buf))
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      if c = '-' then incr i;
      let is_float = ref false in
      while
        !i < n
        && ((input.[!i] >= '0' && input.[!i] <= '9')
           || input.[!i] = '.'
           || input.[!i] = 'e' || input.[!i] = 'E'
           || ((input.[!i] = '-' || input.[!i] = '+') && (input.[!i - 1] = 'e' || input.[!i - 1] = 'E')))
      do
        if input.[!i] = '.' || input.[!i] = 'e' || input.[!i] = 'E' then is_float := true;
        incr i
      done;
      let text = String.sub input start (!i - start) in
      if !is_float then
        emit
          (Tfloat
             (match float_of_string_opt text with
             | Some f -> f
             | None -> parse_error "bad number %S" text))
      else
        emit
          (Tint
             (match int_of_string_opt text with
             | Some n -> n
             | None -> parse_error "bad number %S" text))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Tident (String.sub input start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" | ">=" | "<>" | "!=" ->
        emit (Tsym two);
        i := !i + 2
      | _ -> begin
        match c with
        | '=' | '<' | '>' | '(' | ')' | ',' | '*' ->
          emit (Tsym (String.make 1 c));
          incr i
        | _ -> parse_error "unexpected character %C" c
      end
    end
  done;
  List.rev (Teof :: !tokens)

(* ------------------------------------------------------------------ *)
(* Parser                                                               *)
(* ------------------------------------------------------------------ *)

type aggregate = Count_star | Sum of string | Avg of string | Min of string | Max of string

type ast = {
  projection : [ `All | `Aggregate of aggregate | `Columns of string list ];
  table : string;
  where : Predicate.t;
  group_by : string option;
  order_by : Query_exec.order list;
  limit : int option;
}

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let keyword_is t kw =
  match t with Tident s -> String.uppercase_ascii s = kw | _ -> false

let expect_keyword st kw =
  if keyword_is (peek st) kw then advance st
  else parse_error "expected %s" kw

let expect_sym st sym =
  match peek st with
  | Tsym s when s = sym -> advance st
  | _ -> parse_error "expected %S" sym

let parse_ident st =
  match peek st with
  | Tident s -> begin
    advance st;
    s
  end
  | _ -> parse_error "expected identifier"

let parse_literal st : Value.t =
  match peek st with
  | Tint n ->
    advance st;
    Value.Int n
  | Tfloat f ->
    advance st;
    Value.Real f
  | Tstring s ->
    advance st;
    Value.Text s
  | Tident s when String.uppercase_ascii s = "TRUE" ->
    advance st;
    Value.Bool true
  | Tident s when String.uppercase_ascii s = "FALSE" ->
    advance st;
    Value.Bool false
  | Tident s when String.uppercase_ascii s = "NULL" ->
    advance st;
    Value.Null
  | _ -> parse_error "expected a literal"

(* atom := col op lit | col IS [NOT] NULL | col LIKE 'x' | col BETWEEN a AND b *)
let rec parse_atom st =
  match peek st with
  | Tsym "(" ->
    advance st;
    let p = parse_or st in
    expect_sym st ")";
    p
  | Tident s when String.uppercase_ascii s = "NOT" ->
    advance st;
    Predicate.Not (parse_atom st)
  | _ -> begin
    let col = parse_ident st in
    match peek st with
    | Tsym "=" ->
      advance st;
      Predicate.Eq (col, parse_literal st)
    | Tsym ("<>" | "!=") ->
      advance st;
      Predicate.Cmp (Predicate.Ne, col, parse_literal st)
    | Tsym "<" ->
      advance st;
      Predicate.Cmp (Predicate.Lt, col, parse_literal st)
    | Tsym "<=" ->
      advance st;
      Predicate.Cmp (Predicate.Le, col, parse_literal st)
    | Tsym ">" ->
      advance st;
      Predicate.Cmp (Predicate.Gt, col, parse_literal st)
    | Tsym ">=" ->
      advance st;
      Predicate.Cmp (Predicate.Ge, col, parse_literal st)
    | t when keyword_is t "IS" -> begin
      advance st;
      if keyword_is (peek st) "NOT" then begin
        advance st;
        expect_keyword st "NULL";
        Predicate.Not_null col
      end
      else begin
        expect_keyword st "NULL";
        Predicate.Is_null col
      end
    end
    | t when keyword_is t "LIKE" -> begin
      advance st;
      match peek st with
      | Tstring s ->
        advance st;
        Predicate.Like (col, s)
      | _ -> parse_error "LIKE expects a string literal"
    end
    | t when keyword_is t "BETWEEN" ->
      advance st;
      let lo = parse_literal st in
      expect_keyword st "AND";
      let hi = parse_literal st in
      Predicate.Between (col, lo, hi)
    | _ -> parse_error "expected an operator after column %s" col
  end

and parse_and st =
  let left = parse_atom st in
  if keyword_is (peek st) "AND" then begin
    advance st;
    match parse_and st with
    | Predicate.And ps -> Predicate.And (left :: ps)
    | right -> Predicate.And [ left; right ]
  end
  else left

and parse_or st =
  let left = parse_and st in
  if keyword_is (peek st) "OR" then begin
    advance st;
    match parse_or st with
    | Predicate.Or ps -> Predicate.Or (left :: ps)
    | right -> Predicate.Or [ left; right ]
  end
  else left

(* One projection item: '*', an aggregate call, or a column. *)
let parse_projection_item st =
  match peek st with
  | Tsym "*" ->
    advance st;
    `Star
  | Tident s when List.mem (String.uppercase_ascii s) [ "COUNT"; "SUM"; "AVG"; "MIN"; "MAX" ]
    -> begin
    let fn = String.uppercase_ascii s in
    advance st;
    expect_sym st "(";
    let agg =
      if fn = "COUNT" then begin
        expect_sym st "*";
        Count_star
      end
      else begin
        let col = parse_ident st in
        match fn with
        | "SUM" -> Sum col
        | "AVG" -> Avg col
        | "MIN" -> Min col
        | _ -> Max col
      end
    in
    expect_sym st ")";
    `Agg agg
  end
  | _ -> `Col (parse_ident st)

let parse_projection_items st =
  let rec items acc =
    let item = parse_projection_item st in
    match peek st with
    | Tsym "," ->
      advance st;
      items (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  items []

let parse_order_by st =
  let rec specs acc =
    let col = parse_ident st in
    let spec =
      if keyword_is (peek st) "DESC" then begin
        advance st;
        Query_exec.Desc col
      end
      else begin
        if keyword_is (peek st) "ASC" then advance st;
        Query_exec.Asc col
      end
    in
    match peek st with
    | Tsym "," ->
      advance st;
      specs (spec :: acc)
    | _ -> List.rev (spec :: acc)
  in
  specs []

let parse input =
  let st = { toks = lex input } in
  expect_keyword st "SELECT";
  let items = parse_projection_items st in
  expect_keyword st "FROM";
  let table = parse_ident st in
  let where =
    if keyword_is (peek st) "WHERE" then begin
      advance st;
      parse_or st
    end
    else Predicate.True
  in
  let group_by =
    if keyword_is (peek st) "GROUP" then begin
      advance st;
      expect_keyword st "BY";
      Some (parse_ident st)
    end
    else None
  in
  let order_by =
    if keyword_is (peek st) "ORDER" then begin
      advance st;
      expect_keyword st "BY";
      parse_order_by st
    end
    else []
  in
  let limit =
    if keyword_is (peek st) "LIMIT" then begin
      advance st;
      match peek st with
      | Tint n ->
        advance st;
        Some n
      | _ -> parse_error "LIMIT expects an integer"
    end
    else None
  in
  (match peek st with
  | Teof -> ()
  | _ -> parse_error "trailing input after query");
  (* Normalize the projection items against the grammar. *)
  let projection =
    match (items, group_by) with
    | [ `Star ], None -> `All
    | [ `Agg a ], None -> `Aggregate a
    | [ `Col g; `Agg Count_star ], Some group when g = group -> `Columns [ g ]
    | items, None
      when List.for_all (function `Col _ -> true | _ -> false) items ->
      `Columns (List.map (function `Col c -> c | _ -> assert false) items)
    | _, Some _ ->
      parse_error "GROUP BY requires: SELECT <group-col>, COUNT( * ) ... GROUP BY <group-col>"
    | _, None -> parse_error "aggregates cannot be mixed with plain columns"
  in
  if group_by <> None && order_by <> [] then
    parse_error "ORDER BY is not supported with GROUP BY (groups sort by count)";
  { projection; table; where; group_by; order_by; limit }

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

type result = { columns : string list; rows : Value.t list list }

(* Validate referenced columns up front for decent error messages. *)
let validate db ast =
  let table = Database.table db ast.table in
  let schema = Table.schema table in
  let check col = ignore (Schema.column_index schema col) in
  let rec check_pred = function
    | Predicate.True -> ()
    | Predicate.Eq (c, _)
    | Predicate.Cmp (_, c, _)
    | Predicate.Between (c, _, _)
    | Predicate.Is_null c
    | Predicate.Not_null c
    | Predicate.Like (c, _) -> check c
    | Predicate.And ps | Predicate.Or ps -> List.iter check_pred ps
    | Predicate.Not p -> check_pred p
    | Predicate.Custom _ -> ()
  in
  check_pred ast.where;
  List.iter
    (fun spec ->
      match spec with Query_exec.Asc c | Query_exec.Desc c -> check c)
    ast.order_by;
  (match ast.group_by with None -> () | Some g -> check g);
  (match ast.projection with
  | `All -> ()
  | `Columns cols -> List.iter check cols
  | `Aggregate (Sum c | Avg c | Min c | Max c) -> check c
  | `Aggregate Count_star -> ())

let execute_stats db ast =
  let table = Database.table db ast.table in
  let schema = Table.schema table in
  validate db ast;
  match (ast.group_by, ast.projection) with
  | Some group, _ ->
    let groups, stats = Query_exec.group_count_stats ~by:group ~where:ast.where table in
    let groups =
      match ast.limit with
      | None -> groups
      | Some n -> List.filteri (fun i _ -> i < n) groups
    in
    ( {
        columns = [ group; "count" ];
        rows = List.map (fun (v, n) -> [ v; Value.Int n ]) groups;
      },
      stats )
  | None, `Aggregate Count_star ->
    let n, stats = Query_exec.count_stats ~where:ast.where table in
    ({ columns = [ "count" ]; rows = [ [ Value.Int n ] ] }, stats)
  | None, `Aggregate agg ->
    let col =
      match agg with
      | Sum c | Avg c | Min c | Max c -> c
      | Count_star -> assert false
    in
    let hits, stats = Query_exec.select_stats ~where:ast.where table in
    let cells =
      List.filter_map
        (fun (_, row) ->
          let v = Row.get schema row col in
          if Value.is_null v then None else Some v)
        hits
    in
    let name, value =
      match agg with
      | Sum _ ->
        ("sum", Value.Real (List.fold_left (fun acc v -> acc +. Value.to_real v) 0.0 cells))
      | Avg _ ->
        ( "avg",
          if cells = [] then Value.Null
          else
            Value.Real
              (List.fold_left (fun acc v -> acc +. Value.to_real v) 0.0 cells
              /. float_of_int (List.length cells)) )
      | Min _ ->
        ("min", match cells with [] -> Value.Null | v :: r -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v r)
      | Max _ ->
        ("max", match cells with [] -> Value.Null | v :: r -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v r)
      | Count_star -> assert false
    in
    ({ columns = [ name ]; rows = [ [ value ] ] }, stats)
  | None, ((`All | `Columns _) as projection) ->
    let hits, stats =
      Query_exec.select_stats ~where:ast.where ~order_by:ast.order_by ?limit:ast.limit table
    in
    let columns =
      match projection with
      | `All ->
        "rowid" :: Array.to_list (Array.map (fun (c : Column.t) -> c.Column.name) (Schema.columns schema))
      | `Columns cols -> cols
    in
    let project (rowid, row) =
      match projection with
      | `All -> Value.Int rowid :: Array.to_list row
      | `Columns cols -> List.map (fun c -> Row.get schema row c) cols
    in
    ({ columns; rows = List.map project hits }, stats)

(* EXPLAIN ANALYZE: the same dispatch as [execute_stats], but through
   the executor's profiled entry points, so the caller additionally
   gets the per-operator profile tree.  The result-shaping code
   (projection, aggregate folds) runs outside the profile; the profile
   root covers the executor work, which is what the rendered latency
   reports. *)
let execute_profiled db ast =
  let table = Database.table db ast.table in
  let schema = Table.schema table in
  validate db ast;
  match (ast.group_by, ast.projection) with
  | Some group, _ ->
    let groups, stats, profile =
      Query_exec.group_count_profiled ~by:group ~where:ast.where table
    in
    let groups =
      match ast.limit with
      | None -> groups
      | Some n -> List.filteri (fun i _ -> i < n) groups
    in
    ( {
        columns = [ group; "count" ];
        rows = List.map (fun (v, n) -> [ v; Value.Int n ]) groups;
      },
      stats,
      profile )
  | None, `Aggregate Count_star ->
    let n, stats, profile = Query_exec.count_profiled ~where:ast.where table in
    ({ columns = [ "count" ]; rows = [ [ Value.Int n ] ] }, stats, profile)
  | None, `Aggregate agg ->
    let col =
      match agg with
      | Sum c | Avg c | Min c | Max c -> c
      | Count_star -> assert false
    in
    let hits, stats, profile = Query_exec.select_profiled ~where:ast.where table in
    let cells =
      List.filter_map
        (fun (_, row) ->
          let v = Row.get schema row col in
          if Value.is_null v then None else Some v)
        hits
    in
    let name, value =
      match agg with
      | Sum _ ->
        ("sum", Value.Real (List.fold_left (fun acc v -> acc +. Value.to_real v) 0.0 cells))
      | Avg _ ->
        ( "avg",
          if cells = [] then Value.Null
          else
            Value.Real
              (List.fold_left (fun acc v -> acc +. Value.to_real v) 0.0 cells
              /. float_of_int (List.length cells)) )
      | Min _ ->
        ("min", match cells with [] -> Value.Null | v :: r -> List.fold_left (fun a b -> if Value.compare b a < 0 then b else a) v r)
      | Max _ ->
        ("max", match cells with [] -> Value.Null | v :: r -> List.fold_left (fun a b -> if Value.compare b a > 0 then b else a) v r)
      | Count_star -> assert false
    in
    ({ columns = [ name ]; rows = [ [ value ] ] }, stats, profile)
  | None, ((`All | `Columns _) as projection) ->
    let hits, stats, profile =
      Query_exec.select_profiled ~where:ast.where ~order_by:ast.order_by ?limit:ast.limit table
    in
    let columns =
      match projection with
      | `All ->
        "rowid" :: Array.to_list (Array.map (fun (c : Column.t) -> c.Column.name) (Schema.columns schema))
      | `Columns cols -> cols
    in
    let project (rowid, row) =
      match projection with
      | `All -> Value.Int rowid :: Array.to_list row
      | `Columns cols -> List.map (fun c -> Row.get schema row c) cols
    in
    ({ columns; rows = List.map project hits }, stats, profile)

let execute db ast = fst (execute_stats db ast)
let query db input = execute db (parse input)

let render result =
  let cell = function
    | Value.Text s -> s
    | v -> Value.to_string v
  in
  Provkit_util.Table_fmt.render ~header:result.columns
    (List.map (fun row -> List.map cell row) result.rows)

let plan_to_string = function
  | Query_exec.Full_scan -> "full scan"
  | Query_exec.Index_eq name -> Printf.sprintf "index %s (eq)" name
  | Query_exec.Index_range name -> Printf.sprintf "index %s (range)" name

let explain db input =
  let ast = parse input in
  let table = Database.table db ast.table in
  plan_to_string (Query_exec.plan_for table ast.where)

type explain_report = {
  table : string;
  plan : Query_exec.plan;
  estimated_rows : int;
  est_from_stats : bool;
  stats : Query_exec.exec_stats;
}

let explain_query db input =
  let ast = parse input in
  let table = Database.table db ast.table in
  let detail = Query_exec.plan_detail table ast.where in
  let _, stats = execute_stats db ast in
  { table = ast.table; plan = stats.Query_exec.plan;
    estimated_rows = detail.Query_exec.estimated_rows;
    est_from_stats = detail.Query_exec.est_from_stats; stats }

let est_source from_stats = if from_stats then "statistics catalog" else "heuristic"

let render_explain r =
  let s = r.stats in
  String.concat "\n"
    [
      Printf.sprintf "table:          %s" r.table;
      Printf.sprintf "plan:           %s" (plan_to_string r.plan);
      Printf.sprintf "estimated rows: %d (%s)" r.estimated_rows (est_source r.est_from_stats);
      Printf.sprintf "rows scanned:   %d" s.Query_exec.rows_scanned;
      Printf.sprintf "rows returned:  %d" s.Query_exec.rows_returned;
      Printf.sprintf "latency:        %.3f ms"
        (float_of_int s.Query_exec.elapsed_ns /. 1e6);
    ]

(* --- EXPLAIN ANALYZE ------------------------------------------------ *)

type analyze_report = {
  a_table : string;
  a_plan : Query_exec.plan;
  a_estimated_rows : int;
  a_est_from_stats : bool;
  a_stats : Query_exec.exec_stats;
  a_profile : Query_exec.profile;
}

let analyze_query db input =
  let ast = parse input in
  let table = Database.table db ast.table in
  (* EXPLAIN ANALYZE is the opt-in to estimated-vs-actual reporting:
     make sure the catalog can actually estimate by analyzing the table
     when its entry is missing or stale. *)
  if Option.is_none (Stats.fresh table) then ignore (Stats.analyze table);
  let detail = Query_exec.plan_detail table ast.where in
  let _, stats, profile = execute_profiled db ast in
  {
    a_table = ast.table;
    a_plan = stats.Query_exec.plan;
    a_estimated_rows = detail.Query_exec.estimated_rows;
    a_est_from_stats = detail.Query_exec.est_from_stats;
    a_stats = stats;
    a_profile = profile;
  }

(* actual/estimated mismatch factor, >= 1, on the returned-row count. *)
let estimate_error r =
  let est = Float.max 1.0 (float_of_int r.a_estimated_rows) in
  let act = Float.max 1.0 (float_of_int r.a_stats.Query_exec.rows_returned) in
  Float.max (act /. est) (est /. act)

let render_analyze r =
  (* The reported latency is the profile root's interval — the same
     clock the per-operator rows tile — so the column of percentages is
     exact against the line above it. *)
  String.concat "\n"
    [
      Printf.sprintf "table:          %s" r.a_table;
      Printf.sprintf "plan:           %s" (plan_to_string r.a_plan);
      Printf.sprintf "estimated rows: %d (%s)" r.a_estimated_rows
        (est_source r.a_est_from_stats);
      Printf.sprintf "rows scanned:   %d" r.a_stats.Query_exec.rows_scanned;
      Printf.sprintf "rows returned:  %d (estimate off by %.1fx)"
        r.a_stats.Query_exec.rows_returned (estimate_error r);
      Printf.sprintf "latency:        %.3f ms"
        (float_of_int r.a_profile.Query_exec.dur_ns /. 1e6);
      "";
      Query_exec.render_profile r.a_profile;
    ]

let analyze_to_json r =
  Printf.sprintf
    "{\"table\":\"%s\",\"plan\":\"%s\",\"estimated_rows\":%d,\"est_from_stats\":%b,\"rows_scanned\":%d,\"rows_returned\":%d,\"profile\":%s}"
    (Provkit_obs.Metrics.json_escape r.a_table)
    (Provkit_obs.Metrics.json_escape (plan_to_string r.a_plan))
    r.a_estimated_rows r.a_est_from_stats r.a_stats.Query_exec.rows_scanned
    r.a_stats.Query_exec.rows_returned
    (Query_exec.profile_to_json r.a_profile)
