(** Tables: a heap of rows addressed by integer row id, plus secondary
    indexes kept in sync on every mutation. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t
val name : t -> string
val row_count : t -> int

val uid : t -> int
(** Process-unique table identity (never reused), for keying caches. *)

val epoch : t -> int
(** Modification epoch: bumped by every {!insert}, {!update},
    {!delete} and {!add_index}.  A cached query result tagged with the
    epoch it was computed at is valid exactly while the epoch is
    unchanged. *)

val insert : t -> Row.t -> int
(** Validates against the schema, assigns a fresh row id, updates all
    indexes, returns the row id.  Raises {!Errors.Corrupt} if the fresh
    row id is already occupied (a corrupt id counter — see
    {!deserialize}). *)

val insert_fields : t -> (string * Value.t) list -> int
(** {!Row.of_alist} followed by {!insert}. *)

val get : t -> int -> Row.t
(** Raises {!Errors.No_such_row}. *)

val get_opt : t -> int -> Row.t option
val mem : t -> int -> bool

val update : t -> int -> Row.t -> unit
(** Replace a row wholesale; indexes are maintained.  Raises
    {!Errors.No_such_row}. *)

val update_field : t -> int -> string -> Value.t -> unit
(** Point update of one column. *)

val delete : t -> int -> unit
(** Raises {!Errors.No_such_row}. *)

val iter : t -> (int -> Row.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> Row.t -> 'a) -> 'a
val rows : t -> (int * Row.t) list
(** All rows, ascending row id. *)

(** {2 Indexes} *)

val add_index : ?unique:bool -> t -> name:string -> columns:string list -> unit
(** Builds the index over existing rows.  Raises [Invalid_argument] on a
    duplicate index name. *)

val index : t -> string -> Index.t
(** Raises [Not_found]. *)

val indexes : t -> Index.t list

val find_index_on : t -> string list -> Index.t option
(** An index whose columns are exactly this list, if any. *)

val find_by : t -> columns:string list -> Value.t list -> (int * Row.t) list
(** Equality lookup.  Uses an index when one covers [columns] exactly;
    otherwise falls back to a scan.  Raises {!Errors.Arity_mismatch}
    when the key's length differs from [columns] — on both paths. *)

val find_one_by : t -> columns:string list -> Value.t list -> (int * Row.t) option

(** {2 Persistence and size accounting} *)

val serialize : Buffer.t -> t -> unit

val deserialize : string -> int ref -> t
(** Raises {!Errors.Corrupt} on duplicate rowids; a stored id counter
    at or below the maximum loaded rowid is clamped to [max_rowid + 1]
    so corrupt images cannot make {!insert} overwrite live rows. *)

val data_size : t -> int
(** Exact encoded byte size of {!serialize}'s output: schema, rows and
    index definitions (not materialized index entries). *)

val index_size : t -> int
(** Total {!Index.serialized_size} across this table's indexes. *)

val total_size : t -> int
(** [data_size + index_size]. *)
