(** Bounded LRU cache for query results, validated by table epoch.

    Entries are keyed by an opaque string (built by {!Query_exec} from
    the table's uid, the operation, the resolved plan, and the encoded
    predicate/order/limit) and tagged with the {!Table.epoch} they were
    computed at.  A lookup whose epoch no longer matches is reported
    {!Stale} and dropped immediately: a table that has moved on can
    never make an old result valid again.

    The cache itself ticks no metrics — the caller maps
    hit/stale/absent/evicted onto the obs counters it owns. *)

type payload =
  | Rows of (int * Row.t) list  (** a [select] result *)
  | Count of int
  | Groups of (Value.t * int) list  (** a [group_count] result *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 512 entries.  Capacity 0 stores nothing. *)

val capacity : t -> int

val set_capacity : t -> int -> unit
(** Shrinking evicts cold entries immediately. *)

val length : t -> int
(** Live entries (including ones whose epoch is already stale). *)

val clear : t -> unit

type lookup =
  | Hit of payload  (** valid at this epoch; entry refreshed to most-recent *)
  | Stale  (** present but from an older epoch; entry has been removed *)
  | Absent

val find : t -> key:string -> epoch:int -> lookup

val put : t -> key:string -> epoch:int -> payload -> int
(** Insert (or refresh) an entry; returns how many cold entries were
    evicted to stay within capacity. *)
