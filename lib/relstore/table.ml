type t = {
  schema : Schema.t;
  rows : (int, Row.t) Hashtbl.t;
  mutable next_id : int;
  mutable indexes : Index.t list;
  uid : int;
  mutable epoch : int;
}

(* Process-unique table identity, so caches keyed by table survive a
   table being garbage-collected and another allocated at the same
   address: a uid is never reused.  Atomic because provd snapshot
   rebuilds create tables on more than one domain. *)
let next_uid = Atomic.make 0

let create schema =
  let uid = Atomic.fetch_and_add next_uid 1 + 1 in
  { schema; rows = Hashtbl.create 64; next_id = 1; indexes = []; uid; epoch = 0 }

let schema t = t.schema
let name t = Schema.name t.schema
let row_count t = Hashtbl.length t.rows
let uid t = t.uid
let epoch t = t.epoch
let bump t = t.epoch <- t.epoch + 1

let insert t row =
  Schema.validate_row t.schema row;
  let rowid = t.next_id in
  (* A live row at next_id means the id counter is corrupt (e.g. a
     doctored serialized image): overwriting would silently destroy
     data, so refuse. *)
  if Hashtbl.mem t.rows rowid then
    Errors.corrupt "table %s: fresh rowid %d already occupied (corrupt next_id)"
      (name t) rowid;
  (* Check unique indexes before mutating anything so a violation leaves
     the table untouched. *)
  List.iter
    (fun idx ->
      if Index.is_unique idx then begin
        let key = Index.key_of_row idx row in
        if Index.mem idx key then
          Errors.constraint_violation "table %s: unique index %s violated"
            (name t) (Index.name idx)
      end)
    t.indexes;
  Hashtbl.replace t.rows rowid row;
  List.iter (fun idx -> Index.add idx rowid row) t.indexes;
  t.next_id <- rowid + 1;
  bump t;
  rowid

let insert_fields t fields = insert t (Row.of_alist t.schema fields)

let get_opt t rowid = Hashtbl.find_opt t.rows rowid

let get t rowid =
  match get_opt t rowid with
  | Some row -> row
  | None -> raise (Errors.No_such_row rowid)

let mem t rowid = Hashtbl.mem t.rows rowid

let update t rowid row =
  let old_row = get t rowid in
  Schema.validate_row t.schema row;
  List.iter
    (fun idx ->
      if Index.is_unique idx then begin
        let key = Index.key_of_row idx row in
        match Index.find_one idx key with
        | Some other when other <> rowid ->
          Errors.constraint_violation "table %s: unique index %s violated"
            (name t) (Index.name idx)
        | _ -> ()
      end)
    t.indexes;
  List.iter (fun idx -> Index.remove idx rowid old_row) t.indexes;
  Hashtbl.replace t.rows rowid row;
  List.iter (fun idx -> Index.add idx rowid row) t.indexes;
  bump t

let update_field t rowid column v =
  let row = get t rowid in
  update t rowid (Row.set t.schema row column v)

let delete t rowid =
  let row = get t rowid in
  List.iter (fun idx -> Index.remove idx rowid row) t.indexes;
  Hashtbl.remove t.rows rowid;
  bump t

let iter t f = Hashtbl.iter f t.rows

let fold t ~init ~f =
  Hashtbl.fold (fun rowid row acc -> f acc rowid row) t.rows init

let rows t =
  let all = fold t ~init:[] ~f:(fun acc rowid row -> (rowid, row) :: acc) in
  List.sort (fun (a, _) (b, _) -> Int.compare a b) all

let add_index ?unique t ~name:iname ~columns =
  if List.exists (fun idx -> Index.name idx = iname) t.indexes then
    invalid_arg ("Table.add_index: duplicate index " ^ iname);
  let idx = Index.create ?unique ~name:iname ~columns t.schema in
  iter t (fun rowid row -> Index.add idx rowid row);
  t.indexes <- t.indexes @ [ idx ];
  (* A new index changes the plans (and thus the scan counts) cached
     results were computed under. *)
  bump t

let index t iname = List.find (fun idx -> Index.name idx = iname) t.indexes
let indexes t = t.indexes

let find_index_on t columns =
  List.find_opt (fun idx -> Index.column_names idx = columns) t.indexes

let find_by t ~columns key =
  (* Checked up front so the indexed and scan paths agree: the indexed
     path used to return [] on a short key while the scan path raised a
     bare Invalid_argument from List.for_all2. *)
  if List.length columns <> List.length key then
    Errors.arity_mismatch "table %s: find_by got %d columns but %d key values"
      (name t) (List.length columns) (List.length key);
  match find_index_on t columns with
  | Some idx ->
    List.map (fun rowid -> (rowid, get t rowid)) (Index.find idx key)
  | None ->
    let positions = List.map (Schema.column_index t.schema) columns in
    let matches row =
      List.for_all2 (fun pos v -> Value.equal row.(pos) v) positions key
    in
    List.filter (fun (_, row) -> matches row) (rows t)

let find_one_by t ~columns key =
  match find_by t ~columns key with [] -> None | hit :: _ -> Some hit

let serialize buf t =
  Schema.serialize buf t.schema;
  Varint.write_unsigned buf t.next_id;
  Varint.write_unsigned buf (row_count t);
  List.iter
    (fun (rowid, row) ->
      Varint.write_unsigned buf rowid;
      Codec.write_row buf row)
    (rows t);
  (* Index definitions travel with the table; entries are rebuilt. *)
  Varint.write_unsigned buf (List.length t.indexes);
  List.iter
    (fun idx ->
      Codec.write_string buf (Index.name idx);
      Buffer.add_char buf (if Index.is_unique idx then '\001' else '\000');
      Varint.write_unsigned buf (List.length (Index.column_names idx));
      List.iter (Codec.write_string buf) (Index.column_names idx))
    t.indexes

let deserialize s pos =
  let schema = Schema.deserialize s pos in
  let next_id = Varint.read_unsigned s pos in
  let n = Codec.read_count s pos in
  let t = create schema in
  let max_rowid = ref 0 in
  for _ = 1 to n do
    let rowid = Varint.read_unsigned s pos in
    let row = Codec.read_row s pos in
    Schema.validate_row schema row;
    if Hashtbl.mem t.rows rowid then
      Errors.corrupt "table %s: duplicate rowid %d" (Schema.name schema) rowid;
    Hashtbl.replace t.rows rowid row;
    if rowid > !max_rowid then max_rowid := rowid
  done;
  (* Never trust the stored counter below the loaded rows: a corrupt or
     hand-edited image would otherwise make later inserts land on live
     rowids.  Values above max+1 are kept — deletes legitimately leave
     the counter past the surviving rows. *)
  t.next_id <- max next_id (!max_rowid + 1);
  let nidx = Codec.read_count s pos in
  for _ = 1 to nidx do
    let iname = Codec.read_string s pos in
    let unique =
      if !pos >= String.length s then Errors.corrupt "table: truncated index flag"
      else begin
        let c = s.[!pos] in
        incr pos;
        c = '\001'
      end
    in
    let ncols = Codec.read_count s pos in
    let columns = List.init ncols (fun _ -> Codec.read_string s pos) in
    add_index ~unique t ~name:iname ~columns
  done;
  (* The loads above replaced rows and rewrote next_id without going
     through insert, so the epoch never moved: a cache or view keyed to
     (uid, 0) would treat the freshly loaded table as unchanged.  The
     uid being fresh makes that unlikely today, but nothing type-checks
     that assumption — bump unconditionally. *)
  bump t;
  t

(* Exact byte length of [serialize]'s output; the buffer round trip
   keeps this impossible to get out of sync with the format. *)
let data_size t =
  let buf = Buffer.create 4096 in
  serialize buf t;
  Buffer.length buf

let index_size t =
  List.fold_left (fun acc idx -> acc + Index.serialized_size idx) 0 t.indexes

let total_size t = data_size t + index_size t
