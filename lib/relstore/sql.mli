(** A small SQL-ish query language over the storage engine.

    Grammar (case-insensitive keywords):

    {v
    query   := SELECT cols FROM table [WHERE cond] [GROUP BY col]
               [ORDER BY col [ASC|DESC] {, col [ASC|DESC]}] [LIMIT n]
    cols    := '*' | agg | col ',' COUNT( '*' )   (with GROUP BY)
             | col {',' col}
    agg     := COUNT( '*' ) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
    cond    := or-expr;  OR < AND < NOT in binding strength; parentheses ok
    atom    := col op literal
             | col IS [NOT] NULL
             | col LIKE 'substring'        (case-insensitive contains)
             | col BETWEEN literal AND literal
    op      := = | <> | != | < | <= | > | >=
    literal := integer | float | 'string' | TRUE | FALSE | NULL
    v}

    Queries compile to {!Predicate} trees and run through {!Query_exec},
    so the index planner applies exactly as for programmatic queries. *)

type aggregate = Count_star | Sum of string | Avg of string | Min of string | Max of string

type ast = {
  projection : [ `All | `Aggregate of aggregate | `Columns of string list ];
  table : string;
  where : Predicate.t;
  group_by : string option;
      (** with GROUP BY, the projection must be [`Columns [group_col]]
          plus an implicit count — i.e. [SELECT col, COUNT( '*' ) FROM t
          GROUP BY col] *)
  order_by : Query_exec.order list;
  limit : int option;
}

exception Parse_error of string

val parse : string -> ast
(** Raises {!Parse_error} with a human-readable message. *)

type result = { columns : string list; rows : Value.t list list }

val execute : Database.t -> ast -> result
(** Raises {!Errors.No_such_table} / {!Errors.No_such_column} for
    references the schema cannot satisfy. *)

val execute_stats : Database.t -> ast -> result * Query_exec.exec_stats
(** {!execute} plus the executor's statistics (plan used, rows scanned
    vs. returned, latency) for the query's table access. *)

val query : Database.t -> string -> result
(** [parse] + [execute]. *)

val render : result -> string
(** Aligned table with a header, for CLI display. *)

val plan_to_string : Query_exec.plan -> string
(** ["full scan"] or ["index <name> (eq|range)"]. *)

val explain : Database.t -> string -> string
(** The access path the planner chose, without executing:
    [plan_to_string (Query_exec.plan_for ...)] on the parsed query. *)

type explain_report = {
  table : string;
  plan : Query_exec.plan;  (** always equals [Query_exec.plan_for] on the query *)
  estimated_rows : int;  (** {!Query_exec.plan_detail}'s estimate *)
  est_from_stats : bool;  (** the estimate used a fresh catalog entry *)
  stats : Query_exec.exec_stats;
}

val explain_query : Database.t -> string -> explain_report
(** Parse, plan, and {e execute} the query, returning the planner's
    choice alongside measured rows scanned / returned and latency —
    the [provctl sql --explain] surface. *)

val render_explain : explain_report -> string
(** Multi-line human-readable rendering of a report. *)

val execute_profiled : Database.t -> ast -> result * Query_exec.exec_stats * Query_exec.profile
(** {!execute_stats} through the executor's profiled entry points: the
    same result, plus the per-operator profile tree.  The profile root
    covers the executor work (result shaping — projection, aggregate
    folds — happens outside it). *)

type analyze_report = {
  a_table : string;
  a_plan : Query_exec.plan;
  a_estimated_rows : int;
  a_est_from_stats : bool;
  a_stats : Query_exec.exec_stats;
  a_profile : Query_exec.profile;
}

val analyze_query : Database.t -> string -> analyze_report
(** EXPLAIN ANALYZE: parse, plan, and execute the query through
    {!execute_profiled} — the [provctl sql --analyze] surface.
    Analyzes the table into the statistics catalog first when its entry
    is missing or stale, so the report's estimates (and the profile's
    per-operator [est_rows]) always come from fresh statistics. *)

val estimate_error : analyze_report -> float
(** Actual/estimated mismatch factor on returned rows, [>= 1.0]
    (1.0 = perfect estimate). *)

val render_analyze : analyze_report -> string
(** The {!render_explain} header (latency taken from the profile root,
    estimate error against the returned-row count) followed by the
    indented operator tree with rows in/out, catalog estimates where
    available, and percent of total per node. *)

val analyze_to_json : analyze_report -> string
(** One JSON object with the header fields and the raw profile tree. *)
