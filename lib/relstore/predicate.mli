(** Row predicates, represented structurally so the executor can spot
    index-friendly shapes (top-level conjunctive equalities and ranges). *)

type cmp = Lt | Le | Gt | Ge | Ne

type t =
  | True
  | Eq of string * Value.t
  | Cmp of cmp * string * Value.t
  | Between of string * Value.t * Value.t  (** inclusive bounds *)
  | Is_null of string
  | Not_null of string
  | Like of string * string
      (** [Like (col, needle)]: case-insensitive substring match on a TEXT
          column; NULL never matches. *)
  | And of t list
  | Or of t list
  | Not of t
  | Custom of string * (Schema.t -> Row.t -> bool)
      (** Named escape hatch for predicates the algebra cannot express. *)

val eval : t -> Schema.t -> Row.t -> bool

val conjunctive_eqs : t -> (string * Value.t) list
(** Column=value pairs guaranteed by the predicate (those at the top
    level of a conjunction), usable for index lookups. *)

val conjunctive_range :
  t -> (string * (Value.t * bool) option * (Value.t * bool) option) option
(** A single-column range implied at the top level of a conjunction, if
    any: [(col, lo, hi)] where each bound carries its boundary value
    and an inclusivity flag ([true] for [Between]/[Le]/[Ge], [false]
    for the strict [Lt]/[Gt]).  When several bounds constrain the same
    column ([ts >= a AND ts <= b], stacked [Between]s, …) they are
    merged to the tightest pair; on equal boundary values the exclusive
    bound wins.  The first constrained column is the one reported. *)

val fingerprint : Buffer.t -> t -> bool
(** Append a deterministic, unambiguous structural encoding of the
    predicate (tagged, length-prefixed) to the buffer, for use in cache
    keys.  Returns [false] — and the buffer contents must be discarded —
    when the predicate contains a [Custom] closure, whose behaviour no
    encoding can capture. *)

val pp : Format.formatter -> t -> unit
