(** Row predicates, represented structurally so the executor can spot
    index-friendly shapes (top-level conjunctive equalities and ranges). *)

type cmp = Lt | Le | Gt | Ge | Ne

type t =
  | True
  | Eq of string * Value.t
  | Cmp of cmp * string * Value.t
  | Between of string * Value.t * Value.t  (** inclusive bounds *)
  | Is_null of string
  | Not_null of string
  | Like of string * string
      (** [Like (col, needle)]: case-insensitive substring match on a TEXT
          column; NULL never matches. *)
  | And of t list
  | Or of t list
  | Not of t
  | Custom of string * (Schema.t -> Row.t -> bool)
      (** Named escape hatch for predicates the algebra cannot express. *)

val eval : t -> Schema.t -> Row.t -> bool

val conjunctive_eqs : t -> (string * Value.t) list
(** Column=value pairs guaranteed by the predicate (those at the top
    level of a conjunction), usable for index lookups. *)

val conjunctive_range : t -> (string * Value.t option * Value.t option) option
(** A single-column inclusive range implied at the top level
    ([Between], [Cmp] with Le/Ge/Lt/Gt is widened to inclusive bounds
    only when exact: Lt/Gt return [None]), if any. *)

val fingerprint : Buffer.t -> t -> bool
(** Append a deterministic, unambiguous structural encoding of the
    predicate (tagged, length-prefixed) to the buffer, for use in cache
    keys.  Returns [false] — and the buffer contents must be discarded —
    when the predicate contains a [Custom] closure, whose behaviour no
    encoding can capture. *)

val pp : Format.formatter -> t -> unit
