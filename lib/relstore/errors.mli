(** Errors raised by the relational storage engine. *)

exception Type_mismatch of string
(** A value did not match the declared column type. *)

exception Constraint_violation of string
(** NOT NULL or UNIQUE violated. *)

exception No_such_table of string
exception No_such_column of string
exception No_such_row of int

exception Arity_mismatch of string
(** A key's length did not match the column list it is matched against
    (e.g. {!Table.find_by} given two columns but one value). *)

exception Corrupt of string
(** Deserialization failed. *)

val type_mismatch : ('a, Format.formatter, unit, 'b) format4 -> 'a
val constraint_violation : ('a, Format.formatter, unit, 'b) format4 -> 'a
val arity_mismatch : ('a, Format.formatter, unit, 'b) format4 -> 'a
val corrupt : ('a, Format.formatter, unit, 'b) format4 -> 'a
