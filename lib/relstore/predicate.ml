type cmp = Lt | Le | Gt | Ge | Ne

type t =
  | True
  | Eq of string * Value.t
  | Cmp of cmp * string * Value.t
  | Between of string * Value.t * Value.t
  | Is_null of string
  | Not_null of string
  | Like of string * string
  | And of t list
  | Or of t list
  | Not of t
  | Custom of string * (Schema.t -> Row.t -> bool)

let rec eval t schema row =
  match t with
  | True -> true
  | Eq (col, v) -> Value.equal (Row.get schema row col) v
  | Cmp (op, col, v) ->
    let cell = Row.get schema row col in
    if Value.is_null cell then false
    else begin
      let c = Value.compare cell v in
      match op with
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
      | Ne -> c <> 0
    end
  | Between (col, lo, hi) ->
    let cell = Row.get schema row col in
    (not (Value.is_null cell))
    && Value.compare cell lo >= 0
    && Value.compare cell hi <= 0
  | Is_null col -> Value.is_null (Row.get schema row col)
  | Not_null col -> not (Value.is_null (Row.get schema row col))
  | Like (col, needle) -> begin
    match Row.get schema row col with
    | Value.Text s ->
      Provkit_util.Strutil.contains_substring
        ~needle:(String.lowercase_ascii needle)
        (String.lowercase_ascii s)
    | _ -> false
  end
  | And ps -> List.for_all (fun p -> eval p schema row) ps
  | Or ps -> List.exists (fun p -> eval p schema row) ps
  | Not p -> not (eval p schema row)
  | Custom (_, f) -> f schema row

let rec conjunctive_eqs = function
  | Eq (col, v) -> [ (col, v) ]
  | And ps -> List.concat_map conjunctive_eqs ps
  | _ -> []

(* Every top-level range constraint, in pre-order.  A bound is the
   boundary value plus whether the boundary itself matches: Le/Ge and
   Between carry inclusive bounds, Lt/Gt exclusive ones. *)
let rec range_constraints acc = function
  | Between (col, lo, hi) -> (col, Some (lo, true), Some (hi, true)) :: acc
  | Cmp (Le, col, v) -> (col, None, Some (v, true)) :: acc
  | Cmp (Lt, col, v) -> (col, None, Some (v, false)) :: acc
  | Cmp (Ge, col, v) -> (col, Some (v, true), None) :: acc
  | Cmp (Gt, col, v) -> (col, Some (v, false), None) :: acc
  | And ps -> List.fold_left range_constraints acc ps
  | _ -> acc

(* On equal boundary values the exclusive bound is the tighter one:
   [x >= v AND x > v] admits exactly what [x > v] does. *)
let tighter_lo a b =
  match (a, b) with
  | None, b -> b
  | a, None -> a
  | Some (va, ia), Some (vb, ib) ->
    let c = Value.compare va vb in
    if c > 0 then a else if c < 0 then b else Some (va, ia && ib)

let tighter_hi a b =
  match (a, b) with
  | None, b -> b
  | a, None -> a
  | Some (va, ia), Some (vb, ib) ->
    let c = Value.compare va vb in
    if c < 0 then a else if c > 0 then b else Some (va, ia && ib)

let conjunctive_range p =
  match List.rev (range_constraints [] p) with
  | [] -> None
  | (col, _, _) :: _ as constraints ->
    (* The first constrained column wins (matching the historical
       planner choice); every bound on that column is merged down to
       the tightest pair, so [ts >= a AND ts <= b] becomes one closed
       interval instead of the lower bound alone. *)
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (c, l, h) ->
          if String.equal c col then (tighter_lo lo l, tighter_hi hi h) else (lo, hi))
        (None, None) constraints
    in
    Some (col, lo, hi)

(* Deterministic structural encoding for cache keys.  Every constructor
   gets a tag byte and its fields are length-prefixed (Codec), so two
   distinct predicates can never encode to the same bytes.  Returns
   false — key unusable — when a [Custom] closure is anywhere in the
   tree: a closure's behaviour is invisible to the encoding. *)
let fingerprint buf p =
  let tag c = Buffer.add_char buf c in
  let cmp_code = function Lt -> 0 | Le -> 1 | Gt -> 2 | Ge -> 3 | Ne -> 4 in
  let rec go = function
    | True ->
      tag '\000';
      true
    | Eq (col, v) ->
      tag '\001';
      Codec.write_string buf col;
      Codec.write_value buf v;
      true
    | Cmp (op, col, v) ->
      tag '\002';
      Varint.write_unsigned buf (cmp_code op);
      Codec.write_string buf col;
      Codec.write_value buf v;
      true
    | Between (col, lo, hi) ->
      tag '\003';
      Codec.write_string buf col;
      Codec.write_value buf lo;
      Codec.write_value buf hi;
      true
    | Is_null col ->
      tag '\004';
      Codec.write_string buf col;
      true
    | Not_null col ->
      tag '\005';
      Codec.write_string buf col;
      true
    | Like (col, needle) ->
      tag '\006';
      Codec.write_string buf col;
      Codec.write_string buf needle;
      true
    | And ps ->
      tag '\007';
      Varint.write_unsigned buf (List.length ps);
      List.for_all go ps
    | Or ps ->
      tag '\008';
      Varint.write_unsigned buf (List.length ps);
      List.for_all go ps
    | Not p ->
      tag '\009';
      go p
    | Custom _ -> false
  in
  go p

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "TRUE"
  | Eq (c, v) -> Format.fprintf ppf "%s = %a" c Value.pp v
  | Cmp (op, c, v) ->
    let sym = match op with Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Ne -> "<>" in
    Format.fprintf ppf "%s %s %a" c sym Value.pp v
  | Between (c, lo, hi) ->
    Format.fprintf ppf "%s BETWEEN %a AND %a" c Value.pp lo Value.pp hi
  | Is_null c -> Format.fprintf ppf "%s IS NULL" c
  | Not_null c -> Format.fprintf ppf "%s IS NOT NULL" c
  | Like (c, s) -> Format.fprintf ppf "%s LIKE %%%s%%" c s
  | And ps ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " AND ") pp)
      ps
  | Or ps ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " OR ") pp)
      ps
  | Not p -> Format.fprintf ppf "NOT %a" pp p
  | Custom (label, _) -> Format.fprintf ppf "<custom:%s>" label
