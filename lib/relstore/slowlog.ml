module Obs = Provkit_obs

type entry = {
  e_fingerprint : int;
  e_table : string;
  e_op : string;
  e_plan : string;
  e_detail : string;
  mutable e_count : int;
  mutable e_total_ns : int;
  mutable e_max_ns : int;
  mutable e_last_ns : int;
  mutable e_rows_scanned : int;
  mutable e_rows_returned : int;
  mutable e_first_ns : int64;
  mutable e_last_ns_seen : int64;
}

let m_notes = Obs.Metrics.counter Obs.Names.slowlog_notes
let m_evictions = Obs.Metrics.counter Obs.Names.slowlog_evictions

let threshold = ref 1_000_000
let cap = ref 128
let ring : (int, entry) Hashtbl.t = Hashtbl.create 64

(* Serializes every structural access to [ring]: under provd the
   executor funnel runs on any reader domain, and concurrent Hashtbl
   mutation is memory-unsafe. *)
let lock = Mutex.create ()

let threshold_ns () = !threshold

(* One hour: a "slow query" threshold beyond that is a typo (most
   likely ms or s pasted where ns belong), not a configuration. *)
let max_threshold_ns = 3_600_000_000_000

let set_threshold_ns n =
  if n < 0 then invalid_arg "Slowlog.set_threshold_ns: must be non-negative";
  if n > max_threshold_ns then
    invalid_arg "Slowlog.set_threshold_ns: above the 1-hour ceiling (expected nanoseconds)";
  threshold := n

(* PROV_SLOWLOG_NS overrides the default threshold at module load, the
   same pattern as PROV_OBS.  Parsing is exposed pure so tests can
   cover it without mutating the process environment: garbage and
   out-of-range values are ignored, not fatal — a bad env var must not
   take the whole CLI down. *)
let threshold_of_env_string s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 && n <= max_threshold_ns -> Some n
  | Some _ | None -> None

let () =
  match Sys.getenv_opt "PROV_SLOWLOG_NS" with
  | None -> ()
  | Some s -> ( match threshold_of_env_string s with Some n -> threshold := n | None -> ())

let capacity () = !cap

let fingerprint ~table ~op ~plan ~detail =
  (* Length-prefixed so ("a","bc") and ("ab","c") cannot collide by
     construction; CRC-32 keeps the key a small printable int. *)
  let buf = Buffer.create 64 in
  List.iter
    (fun s ->
      Buffer.add_string buf (string_of_int (String.length s));
      Buffer.add_char buf ':';
      Buffer.add_string buf s)
    [ table; op; plan; detail ];
  Provkit_util.Crc32.digest (Buffer.contents buf)

let evict_oldest () =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | None -> Some e
        | Some best ->
          if Int64.compare e.e_last_ns_seen best.e_last_ns_seen < 0 then Some e else acc)
      ring None
  in
  match victim with
  | None -> ()
  | Some e ->
    Hashtbl.remove ring e.e_fingerprint;
    Obs.Metrics.incr m_evictions

let set_capacity n =
  if n <= 0 then invalid_arg "Slowlog.set_capacity: must be positive";
  Mutex.protect lock (fun () ->
      cap := n;
      while Hashtbl.length ring > !cap do
        evict_oldest ()
      done)

let note ~table ~op ~plan ~detail ~elapsed_ns ~rows_scanned ~rows_returned =
  let fp = fingerprint ~table ~op ~plan ~detail in
  let now = Provkit_util.Timing.now_ns () in
  Mutex.protect lock (fun () ->
  match Hashtbl.find_opt ring fp with
  | Some e ->
    e.e_count <- e.e_count + 1;
    e.e_total_ns <- e.e_total_ns + elapsed_ns;
    if elapsed_ns > e.e_max_ns then e.e_max_ns <- elapsed_ns;
    e.e_last_ns <- elapsed_ns;
    e.e_rows_scanned <- rows_scanned;
    e.e_rows_returned <- rows_returned;
    e.e_last_ns_seen <- now
  | None ->
    if Hashtbl.length ring >= !cap then evict_oldest ();
    Hashtbl.replace ring fp
      {
        e_fingerprint = fp;
        e_table = table;
        e_op = op;
        e_plan = plan;
        e_detail = detail;
        e_count = 1;
        e_total_ns = elapsed_ns;
        e_max_ns = elapsed_ns;
        e_last_ns = elapsed_ns;
        e_rows_scanned = rows_scanned;
        e_rows_returned = rows_returned;
        e_first_ns = now;
        e_last_ns_seen = now;
      });
  Obs.Metrics.incr m_notes

let entries () =
  Mutex.protect lock (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) ring [])
  |> List.sort (fun a b -> Int.compare b.e_total_ns a.e_total_ns)

let length () = Mutex.protect lock (fun () -> Hashtbl.length ring)
let clear () = Mutex.protect lock (fun () -> Hashtbl.reset ring)

(* --- serialization --- *)

let to_json e =
  Printf.sprintf
    "{\"fingerprint\":%d,\"table\":\"%s\",\"op\":\"%s\",\"plan\":\"%s\",\"detail\":\"%s\",\"count\":%d,\"total_ns\":%d,\"max_ns\":%d,\"last_ns\":%d,\"rows_scanned\":%d,\"rows_returned\":%d,\"first_ns\":%Ld,\"last_seen_ns\":%Ld}"
    e.e_fingerprint
    (Obs.Metrics.json_escape e.e_table)
    (Obs.Metrics.json_escape e.e_op)
    (Obs.Metrics.json_escape e.e_plan)
    (Obs.Metrics.json_escape e.e_detail)
    e.e_count e.e_total_ns e.e_max_ns e.e_last_ns e.e_rows_scanned e.e_rows_returned
    e.e_first_ns e.e_last_ns_seen

(* Minimal flat-object JSON reader, the same discipline as
   Trace.Jsonl_reader: handles exactly the subset to_json emits. *)
module Reader = struct
  type tok = { src : string; mutable pos : int }

  exception Bad

  let peek t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

  let skip_ws t =
    while t.pos < String.length t.src && (t.src.[t.pos] = ' ' || t.src.[t.pos] = '\t') do
      t.pos <- t.pos + 1
    done

  let expect t c =
    skip_ws t;
    match peek t with
    | Some c' when c' = c -> t.pos <- t.pos + 1
    | Some _ | None -> raise Bad

  let string t =
    expect t '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if t.pos >= String.length t.src then raise Bad;
      match t.src.[t.pos] with
      | '"' -> t.pos <- t.pos + 1
      | '\\' ->
        if t.pos + 1 >= String.length t.src then raise Bad;
        (match t.src.[t.pos + 1] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | c -> Buffer.add_char buf c);
        t.pos <- t.pos + 2;
        go ()
      | c ->
        Buffer.add_char buf c;
        t.pos <- t.pos + 1;
        go ()
    in
    go ();
    Buffer.contents buf

  let scalar t =
    skip_ws t;
    let start = t.pos in
    while
      t.pos < String.length t.src
      && match t.src.[t.pos] with '0' .. '9' | '-' | '+' -> true | _ -> false
    do
      t.pos <- t.pos + 1
    done;
    if t.pos = start then raise Bad;
    String.sub t.src start (t.pos - start)

  let fields line =
    let t = { src = line; pos = 0 } in
    let out = ref [] in
    expect t '{';
    let rec members () =
      skip_ws t;
      let key = string t in
      expect t ':';
      skip_ws t;
      (match peek t with
      | Some '"' -> out := (key, string t) :: !out
      | Some _ -> out := (key, scalar t) :: !out
      | None -> raise Bad);
      skip_ws t;
      match peek t with
      | Some ',' ->
        t.pos <- t.pos + 1;
        members ()
      | Some '}' -> t.pos <- t.pos + 1
      | Some _ | None -> raise Bad
    in
    members ();
    !out
end

let of_json line =
  match Reader.fields line with
  | exception Reader.Bad -> None
  | fields -> (
    let str k = List.assoc_opt k fields in
    let num k = Option.bind (str k) int_of_string_opt in
    let num64 k = Option.bind (str k) Int64.of_string_opt in
    match
      ( str "table", str "op", str "plan", str "detail",
        num "fingerprint", num "count", num "total_ns" )
    with
    | Some table, Some op, Some plan, Some detail, Some fp, Some count, Some total ->
      let d k = Option.value ~default:0 (num k) in
      let d64 k = Option.value ~default:0L (num64 k) in
      Some
        {
          e_fingerprint = fp;
          e_table = table;
          e_op = op;
          e_plan = plan;
          e_detail = detail;
          e_count = count;
          e_total_ns = total;
          e_max_ns = d "max_ns";
          e_last_ns = d "last_ns";
          e_rows_scanned = d "rows_scanned";
          e_rows_returned = d "rows_returned";
          e_first_ns = d64 "first_ns";
          e_last_ns_seen = d64 "last_seen_ns";
        }
    | _ -> None)

let dump_jsonl buf =
  List.iter
    (fun e ->
      Buffer.add_string buf (to_json e);
      Buffer.add_char buf '\n')
    (entries ())

let load_jsonl s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line -> if String.trim line = "" then None else of_json line)

let render es =
  Provkit_util.Table_fmt.render
    ~aligns:
      Provkit_util.Table_fmt.[ Left; Left; Left; Left; Right; Right; Right; Right ]
    ~header:[ "table"; "op"; "plan"; "detail"; "count"; "total ms"; "max ms"; "rows" ]
    (List.map
       (fun e ->
         [
           e.e_table;
           e.e_op;
           e.e_plan;
           e.e_detail;
           string_of_int e.e_count;
           Printf.sprintf "%.3f" (float_of_int e.e_total_ns /. 1e6);
           Printf.sprintf "%.3f" (float_of_int e.e_max_ns /. 1e6);
           Printf.sprintf "%d/%d" e.e_rows_scanned e.e_rows_returned;
         ])
       es)
