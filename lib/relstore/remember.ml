(* A bloom filter keyed by strings: O(1) "have I seen this URL before"
   for revisit detection, at the cost of a tunable false-positive rate
   and no deletion.  Sizing follows the standard optimum: for [n]
   expected insertions at target rate [p],
     m = ceil (-n ln p / (ln 2)^2)   bits
     k = round (m/n * ln 2)          hash functions
   and the k probe positions come from double hashing,
   h_i = h1 + i*h2 (mod m), which is as good as k independent hashes
   for bloom purposes (Kirsch & Mitzenmacher). *)

type t = {
  bits : Bytes.t;
  bit_size : int;
  hash_count : int;
  target_rate : float;
  mutable inserted : int;
}

let ln2 = log 2.0

let create ?(false_positive_rate = 0.01) ~expected () =
  let n = max 1 expected in
  let p = min 0.5 (max 1e-9 false_positive_rate) in
  let m =
    max 64
      (int_of_float
         (ceil (-.float_of_int n *. log p /. (ln2 *. ln2))))
  in
  let k = max 1 (int_of_float (Float.round (float_of_int m /. float_of_int n *. ln2))) in
  {
    bits = Bytes.make ((m + 7) / 8) '\000';
    bit_size = m;
    hash_count = k;
    target_rate = p;
    inserted = 0;
  }

(* Two seeded hashes drive the double-hashing probe sequence; [lor 1]
   keeps the stride odd so it never degenerates to a fixed point. *)
let probes t key =
  let h1 = Hashtbl.seeded_hash 0x9e37 key in
  let h2 = Hashtbl.seeded_hash 0x85eb key lor 1 in
  fun i -> abs (h1 + (i * h2)) mod t.bit_size

let set_bit t pos =
  let byte = pos lsr 3 and off = pos land 7 in
  Bytes.set t.bits byte
    (Char.chr (Char.code (Bytes.get t.bits byte) lor (1 lsl off)))

let get_bit t pos =
  let byte = pos lsr 3 and off = pos land 7 in
  Char.code (Bytes.get t.bits byte) land (1 lsl off) <> 0

let add t key =
  let probe = probes t key in
  for i = 0 to t.hash_count - 1 do
    set_bit t (probe i)
  done;
  t.inserted <- t.inserted + 1

let mem t key =
  let probe = probes t key in
  let rec all i = i >= t.hash_count || (get_bit t (probe i) && all (i + 1)) in
  all 0

let remember t key =
  let seen = mem t key in
  add t key;
  seen

let inserted t = t.inserted
let bit_size t = t.bit_size
let hash_count t = t.hash_count
let false_positive_rate t = t.target_rate

let fill_ratio t =
  let set = ref 0 in
  for pos = 0 to t.bit_size - 1 do
    if get_bit t pos then incr set
  done;
  float_of_int !set /. float_of_int t.bit_size
