module Obs = Provkit_obs

type order = Asc of string | Desc of string

type plan =
  | Full_scan
  | Index_eq of string
  | Index_range of string

(* The resolved access path: the plan plus everything needed to run it,
   so planning happens exactly once per query. *)
type access =
  | A_scan
  | A_eq of Index.t * Value.t list
  | A_range of Index.t * (Value.t * bool) option * (Value.t * bool) option
      (* bounds carry an inclusivity flag; see Predicate.conjunctive_range *)

(* Run a possibly-exclusive single-column range over the (inclusive)
   index fold: seek with the boundary values, then skip entries sitting
   exactly on an excluded boundary.  The skip happens inside the fold
   callback, so an excluded boundary key is never counted as a scanned
   candidate — [exec_stats.rows_scanned] reflects the strict range, not
   the widened one. *)
let fold_bound_range idx lo hi ~init ~f =
  let key_of = Option.map (fun (v, _) -> [ v ]) in
  let excluded bound key =
    match (bound, key) with
    | Some (v, false), first :: _ -> Value.compare first v = 0
    | _ -> false
  in
  Index.fold_range ?lo:(key_of lo) ?hi:(key_of hi) idx ~init ~f:(fun acc key rowid ->
      if excluded lo key || excluded hi key then acc else f acc key rowid)

let eq_index table where =
  let eqs = Predicate.conjunctive_eqs where in
  let lookup col = List.assoc_opt col eqs in
  (* Usable when every indexed column is pinned by an equality. *)
  match
    List.find_opt
      (fun idx -> List.for_all (fun c -> lookup c <> None) (Index.column_names idx))
      (Table.indexes table)
  with
  | Some idx ->
    Some (idx, List.map (fun c -> List.assoc c eqs) (Index.column_names idx))
  | None -> None

let range_index table where =
  match Predicate.conjunctive_range where with
  | None -> None
  | Some (col, lo, hi) -> begin
    match Table.find_index_on table [ col ] with
    | None -> None
    | Some idx -> Some (idx, lo, hi)
  end

let access_for table where =
  match eq_index table where with
  | Some (idx, key) -> A_eq (idx, key)
  | None -> begin
    match range_index table where with
    | Some (idx, lo, hi) -> A_range (idx, lo, hi)
    | None -> A_scan
  end

let plan_of_access = function
  | A_scan -> Full_scan
  | A_eq (idx, _) -> Index_eq (Index.name idx)
  | A_range (idx, _, _) -> Index_range (Index.name idx)

let plan_for table where = plan_of_access (access_for table where)

let plan_name = function
  | Full_scan -> "full_scan"
  | Index_eq _ -> "index_eq"
  | Index_range _ -> "index_range"

type plan_detail = {
  chosen : plan;
  estimated_rows : int;
  table_rows : int;
  est_from_stats : bool;
}

(* The pre-catalog heuristic: rows the access path will pull before
   residual filtering.  For the index paths this probes the index
   (cheap: O(log n + k)) without touching the heap, so it is an exact
   candidate count — but it ignores residual predicates entirely, and
   for a scan it is the whole table however selective the predicate. *)
let plan_detail_heuristic table where =
  let access = access_for table where in
  let estimated_rows =
    match access with
    | A_scan -> Table.row_count table
    | A_eq (idx, key) -> List.length (Index.find idx key)
    | A_range (idx, lo, hi) -> fold_bound_range idx lo hi ~init:0 ~f:(fun acc _ _ -> acc + 1)
  in
  { chosen = plan_of_access access; estimated_rows; table_rows = Table.row_count table;
    est_from_stats = false }

let m_estimates = Obs.Metrics.counter Obs.Names.stats_estimates
let m_misestimates = Obs.Metrics.counter Obs.Names.stats_misestimates

let plan_detail table where =
  match Stats.fresh table with
  | None -> plan_detail_heuristic table where
  | Some ts ->
    let est = Stats.estimate_rows ts where in
    if Obs.Metrics.enabled () then Obs.Metrics.incr m_estimates;
    { chosen = plan_of_access (access_for table where);
      estimated_rows = int_of_float (Float.round est);
      table_rows = Table.row_count table;
      est_from_stats = true }

(* Estimated candidate rows an access path yields, from fresh stats:
   the per-operator numbers EXPLAIN ANALYZE shows next to actuals. *)
let estimate_access ts access ~table_rows =
  match access with
  | A_scan -> float_of_int table_rows
  | A_eq (idx, key) ->
    let n = float_of_int ts.Stats.ts_rows in
    if n <= 0.0 then 0.0
    else
      List.fold_left2
        (fun acc col v -> acc *. (Stats.estimate_eq ts col v /. n))
        n (Index.column_names idx) key
  | A_range (idx, lo, hi) -> begin
    match Index.column_names idx with
    (* The estimator works on plain boundary values: dropping the
       inclusivity flag only shifts the estimate by the boundary key's
       own frequency, well inside histogram resolution. *)
    | col :: _ -> Stats.estimate_range ts col (Option.map fst lo) (Option.map fst hi)
    | [] -> float_of_int table_rows
  end

(* Misestimate detector: when a fresh-stats estimate was served and the
   actual row count disagrees by more than the threshold ratio in
   either direction, tick the counter and leave a flight-recorder
   incident pointing at the table (the cue to re-analyze). *)
let misestimate_threshold = ref 10.0

let set_misestimate_threshold r =
  if r < 1.0 then invalid_arg "Query_exec.set_misestimate_threshold: must be >= 1.0";
  misestimate_threshold := r

let note_estimate ~op table where ~actual =
  if Obs.Metrics.enabled () then
    match Stats.fresh table with
    | None -> ()
    | Some ts ->
      let est = Float.max 1.0 (Stats.estimate_rows ts where) in
      let act = Float.max 1.0 (float_of_int actual) in
      let ratio = Float.max (act /. est) (est /. act) in
      if ratio > !misestimate_threshold then begin
        Obs.Metrics.incr m_misestimates;
        Obs.Flight.record "stats.misestimate"
          ~attrs:
            [
              ("op", op);
              ("table", Table.name table);
              ("estimated", Printf.sprintf "%.0f" est);
              ("actual", string_of_int actual);
              ("ratio", Printf.sprintf "%.1f" ratio);
            ]
      end

let rows_of_access table = function
  | A_eq (idx, key) ->
    List.map (fun rowid -> (rowid, Table.get table rowid)) (Index.find idx key)
  | A_range (idx, lo, hi) ->
    let hits =
      fold_bound_range idx lo hi ~init:[] ~f:(fun acc _key rowid ->
          (rowid, Table.get table rowid) :: acc)
    in
    List.rev hits
  | A_scan -> Table.rows table

(* --- instrumentation ------------------------------------------------ *)

type exec_stats = {
  plan : plan;
  rows_scanned : int;
  rows_returned : int;
  elapsed_ns : int;
}

let m_queries = Obs.Metrics.counter Obs.Names.query_count
let m_full_scan = Obs.Metrics.counter Obs.Names.query_full_scan
let m_index_eq = Obs.Metrics.counter Obs.Names.query_index_eq
let m_index_range = Obs.Metrics.counter Obs.Names.query_index_range
let m_rows_scanned = Obs.Metrics.counter Obs.Names.query_rows_scanned
let m_rows_returned = Obs.Metrics.counter Obs.Names.query_rows_returned
let h_latency = Obs.Metrics.histogram Obs.Names.query_latency_ns

(* Every query shape funnels through here: run the thunk (which reports
   the plan it actually used), then record counters, the latency
   histogram, and a trace span.  With the registry off this is the bare
   run plus one branch — no clock reads. *)
let query_span_threshold_ns = ref 100_000

let set_query_span_threshold_ns n = query_span_threshold_ns := n

let executed ~op ~table_name ?(detail = fun () -> "") run =
  if not (Obs.Metrics.enabled ()) then begin
    let result, plan, scanned, returned = run () in
    (result, { plan; rows_scanned = scanned; rows_returned = returned; elapsed_ns = 0 })
  end
  else begin
    let start_ns = Provkit_util.Timing.now_ns () in
    let result, plan, scanned, returned = run () in
    let elapsed = Int64.to_int (Int64.sub (Provkit_util.Timing.now_ns ()) start_ns) in
    Obs.Metrics.incr m_queries;
    Obs.Metrics.incr
      (match plan with
      | Full_scan -> m_full_scan
      | Index_eq _ -> m_index_eq
      | Index_range _ -> m_index_range);
    Obs.Metrics.add m_rows_scanned scanned;
    Obs.Metrics.add m_rows_returned returned;
    Obs.Metrics.observe h_latency elapsed;
    (* Slow-query log: building a span's attribute list costs more than a
       sub-microsecond index probe, so only queries past the threshold
       get one.  Counters and the latency histogram above still see
       every query. *)
    if elapsed >= !query_span_threshold_ns then
      Obs.Trace.record Obs.Names.span_query
        ~attrs:
          [
            ("op", op);
            ("table", table_name);
            ("plan", plan_name plan);
            ("rows_scanned", string_of_int scanned);
            ("rows_returned", string_of_int returned);
          ]
        ~start_ns ~dur_ns:(Int64.of_int elapsed);
    (* The slow-query log has its own (higher) threshold; the predicate
       shape is only rendered for queries that cross it. *)
    if elapsed >= Slowlog.threshold_ns () then
      Slowlog.note ~table:table_name ~op ~plan:(plan_name plan) ~detail:(detail ())
        ~elapsed_ns:elapsed ~rows_scanned:scanned ~rows_returned:returned;
    (result, { plan; rows_scanned = scanned; rows_returned = returned; elapsed_ns = elapsed })
  end

(* --- result cache --------------------------------------------------- *)

(* The plain [select]/[count]/[group_count] entry points consult a
   process-wide LRU keyed by (table uid, op, predicate, order, limit)
   and validated against the table's modification epoch.  The [*_stats]
   and [*_profiled] variants never do: their callers asked to see the
   execution, so they always run it.  Predicates containing a [Custom]
   closure are uncacheable and bypass the cache entirely. *)

let m_cache_hits = Obs.Metrics.counter Obs.Names.query_cache_hits
let m_cache_misses = Obs.Metrics.counter Obs.Names.query_cache_misses
let m_cache_evictions = Obs.Metrics.counter Obs.Names.query_cache_evictions
let m_cache_invalidations = Obs.Metrics.counter Obs.Names.query_cache_invalidations

let cache = Query_cache.create ()
let cache_enabled = ref true

let set_cache_enabled b = cache_enabled := b
let set_cache_capacity n = Query_cache.set_capacity cache n
let cache_capacity () = Query_cache.capacity cache
let cache_length () = Query_cache.length cache
let clear_cache () = Query_cache.clear cache

(* None = this query cannot be keyed (Custom predicate): run cold. *)
let cache_key ~op ?(aux = "") ~order_by ~limit table where =
  let buf = Buffer.create 64 in
  Varint.write_unsigned buf (Table.uid table);
  Codec.write_string buf op;
  Codec.write_string buf aux;
  if not (Predicate.fingerprint buf where) then None
  else begin
    Varint.write_unsigned buf (List.length order_by);
    List.iter
      (fun spec ->
        match spec with
        | Asc c ->
          Buffer.add_char buf 'a';
          Codec.write_string buf c
        | Desc c ->
          Buffer.add_char buf 'd';
          Codec.write_string buf c)
      order_by;
    (match limit with
    | None -> Buffer.add_char buf '\000'
    | Some n ->
      Buffer.add_char buf '\001';
      Varint.write_unsigned buf n);
    Some (Buffer.contents buf)
  end

(* Serve from the cache or run [cold] and fill.  [decode] projects the
   stored payload back out; the op tag inside the key guarantees the
   constructor matches. *)
let with_cache ~key ~table ~decode ~encode cold =
  match key with
  | None -> cold ()
  | Some key ->
    let epoch = Table.epoch table in
    let miss () =
      Obs.Metrics.incr m_cache_misses;
      let result = cold () in
      let evicted = Query_cache.put cache ~key ~epoch (encode result) in
      Obs.Metrics.add m_cache_evictions evicted;
      result
    in
    (match Query_cache.find cache ~key ~epoch with
    | Query_cache.Hit payload ->
      Obs.Metrics.incr m_cache_hits;
      decode payload
    | Query_cache.Stale ->
      Obs.Metrics.incr m_cache_invalidations;
      miss ()
    | Query_cache.Absent -> miss ())

(* --- matview sources ------------------------------------------------ *)

(* A registered materialized view can answer a whole query shape
   without touching the table or the LRU cache.  Sources are keyed by
   (table uid, op, aux) and only match the trivial shape — no residual
   predicate, no ordering, no limit — anything else falls through cold.
   Freshness is the source's own problem: [mv_fresh] typically compares
   a stamped [Table.epoch] against the current one, so a direct table
   mutation that bypassed the view's feed path disqualifies it. *)

let m_matview_serves = Obs.Metrics.counter Obs.Names.matview_serves

type matview_source = {
  mv_table : int;
  mv_op : string;
  mv_aux : string;
  mv_fresh : unit -> bool;
  mv_payload : unit -> Query_cache.payload;
}

let matview_sources : matview_source list ref = ref []

let register_matview_source ~table ~op ~aux ~fresh ~payload =
  let uid = Table.uid table in
  matview_sources :=
    { mv_table = uid; mv_op = op; mv_aux = aux; mv_fresh = fresh; mv_payload = payload }
    :: List.filter
         (fun s ->
           not (s.mv_table = uid && String.equal s.mv_op op && String.equal s.mv_aux aux))
         !matview_sources

let clear_matview_sources () = matview_sources := []
let matview_source_count () = List.length !matview_sources

let matview_lookup ~op ~aux table where ~order_by ~limit =
  match (where, order_by, limit, !matview_sources) with
  | Predicate.True, [], None, (_ :: _ as sources) ->
    let uid = Table.uid table in
    (match
       List.find_opt
         (fun s -> s.mv_table = uid && String.equal s.mv_op op && String.equal s.mv_aux aux)
         sources
     with
    | Some s when s.mv_fresh () ->
      Obs.Metrics.incr m_matview_serves;
      Some (s.mv_payload ())
    | Some _ | None -> None)
  | _ -> None

(* --- execution ------------------------------------------------------ *)

let compare_rows schema order_by (ra_id, ra) (rb_id, rb) =
  let rec go = function
    | [] -> Int.compare ra_id rb_id
    | spec :: rest ->
      let col, flip = match spec with Asc c -> (c, 1) | Desc c -> (c, -1) in
      let c = flip * Value.compare (Row.get schema ra col) (Row.get schema rb col) in
      if c <> 0 then c else go rest
  in
  go order_by

(* Rendered lazily: only queries that cross the slowlog threshold pay
   for pretty-printing their predicate. *)
let pred_detail where () = Format.asprintf "%a" Predicate.pp where

let select_stats ?(where = Predicate.True) ?(order_by = []) ?limit table =
  let schema = Table.schema table in
  executed ~op:"select" ~table_name:(Table.name table) ~detail:(pred_detail where) (fun () ->
      let access = access_for table where in
      let cands = rows_of_access table access in
      let hits =
        List.filter (fun (_, row) -> Predicate.eval where schema row) cands
      in
      let sorted =
        match order_by with
        | [] -> List.sort (fun (a, _) (b, _) -> Int.compare a b) hits
        | _ -> List.sort (compare_rows schema order_by) hits
      in
      let final =
        match limit with
        | None -> sorted
        | Some n -> List.filteri (fun i _ -> i < n) sorted
      in
      (final, plan_of_access access, List.length cands, List.length final))

let select ?(where = Predicate.True) ?(order_by = []) ?limit table =
  if not !cache_enabled then fst (select_stats ~where ~order_by ?limit table)
  else
    with_cache
      ~key:(cache_key ~op:"select" ~order_by ~limit table where)
      ~table
      ~decode:(fun payload ->
        match payload with
        | Query_cache.Rows rows -> rows
        | Query_cache.Count _ | Query_cache.Groups _ -> assert false)
      ~encode:(fun rows -> Query_cache.Rows rows)
      (fun () -> fst (select_stats ~where ~order_by ?limit table))

let count_stats ?(where = Predicate.True) table =
  let schema = Table.schema table in
  executed ~op:"count" ~table_name:(Table.name table) ~detail:(pred_detail where) (fun () ->
      let access = access_for table where in
      let cands = rows_of_access table access in
      let n =
        List.length (List.filter (fun (_, row) -> Predicate.eval where schema row) cands)
      in
      (n, plan_of_access access, List.length cands, 1))

let count ?(where = Predicate.True) table =
  match matview_lookup ~op:"count" ~aux:"" table where ~order_by:[] ~limit:None with
  | Some (Query_cache.Count n) -> n
  | Some (Query_cache.Rows _ | Query_cache.Groups _) -> assert false
  | None ->
  if not !cache_enabled then fst (count_stats ~where table)
  else
    with_cache
      ~key:(cache_key ~op:"count" ~order_by:[] ~limit:None table where)
      ~table
      ~decode:(fun payload ->
        match payload with
        | Query_cache.Count n -> n
        | Query_cache.Rows _ | Query_cache.Groups _ -> assert false)
      ~encode:(fun n -> Query_cache.Count n)
      (fun () -> fst (count_stats ~where table))

let join_stats ?(where_left = Predicate.True) ?(where_right = Predicate.True)
    ~on left right =
  let left_cols = List.map fst on and right_cols = List.map snd on in
  let lschema = Table.schema left in
  let rschema = Table.schema right in
  (* The reported plan is the right side's probe path — the decision
     this executor makes (the left side records its own select).  Rows
     scanned counts the probed/hashed right rows. *)
  let scanned = ref 0 in
  executed ~op:"join" ~table_name:(Table.name right)
    ~detail:(fun () -> "on " ^ String.concat "," (List.map snd on))
    (fun () ->
      let left_rows = select ~where:where_left left in
      let key_of_left (_, row) = List.map (Row.get lschema row) left_cols in
      let plan, right_matches =
        match Table.find_index_on right right_cols with
        | Some idx ->
          ( Index_eq (Index.name idx),
            fun key ->
              List.filter_map
                (fun rowid ->
                  incr scanned;
                  let row = Table.get right rowid in
                  if Predicate.eval where_right rschema row then Some (rowid, row) else None)
                (Index.find idx key) )
        | None ->
          (* Build a one-shot hash join table. *)
          let tbl = Hashtbl.create 256 in
          List.iter
            (fun (rowid, row) ->
              incr scanned;
              let key = List.map (Row.get rschema row) right_cols in
              Hashtbl.add tbl key (rowid, row))
            (select ~where:where_right right);
          (Full_scan, fun key -> List.rev (Hashtbl.find_all tbl key))
      in
      let pairs =
        List.concat_map
          (fun l -> List.map (fun r -> (l, r)) (right_matches (key_of_left l)))
          left_rows
      in
      (pairs, plan, !scanned, List.length pairs))

let join ?where_left ?where_right ~on left right =
  fst (join_stats ?where_left ?where_right ~on left right)

let group_count_stats ~by ?(where = Predicate.True) table =
  let schema = Table.schema table in
  executed ~op:"group_count" ~table_name:(Table.name table) ~detail:(pred_detail where)
    (fun () ->
      let access = access_for table where in
      let cands = rows_of_access table access in
      let counts = Hashtbl.create 64 in
      List.iter
        (fun (_, row) ->
          if Predicate.eval where schema row then begin
            let key = Row.get schema row by in
            let n = Option.value ~default:0 (Hashtbl.find_opt counts key) in
            Hashtbl.replace counts key (n + 1)
          end)
        cands;
      let pairs = Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [] in
      let sorted =
        List.sort
          (fun (ka, na) (kb, nb) ->
            let c = Int.compare nb na in
            if c <> 0 then c else Value.compare ka kb)
          pairs
      in
      (sorted, plan_of_access access, List.length cands, List.length sorted))

let group_count ~by ?(where = Predicate.True) table =
  match matview_lookup ~op:"group_count" ~aux:by table where ~order_by:[] ~limit:None with
  | Some (Query_cache.Groups groups) -> groups
  | Some (Query_cache.Rows _ | Query_cache.Count _) -> assert false
  | None ->
  if not !cache_enabled then fst (group_count_stats ~by ~where table)
  else
    with_cache
      ~key:(cache_key ~op:"group_count" ~aux:by ~order_by:[] ~limit:None table where)
      ~table
      ~decode:(fun payload ->
        match payload with
        | Query_cache.Groups groups -> groups
        | Query_cache.Rows _ | Query_cache.Count _ -> assert false)
      ~encode:(fun groups -> Query_cache.Groups groups)
      (fun () -> fst (group_count_stats ~by ~where table))

(* --- profiling (EXPLAIN ANALYZE) ------------------------------------ *)

type profile = {
  op : string;
  detail : string;
  rows_in : int;
  rows_out : int;
  est_rows : int option;
      (* catalog estimate of rows_out, present when fresh stats existed *)
  dur_ns : int;
  children : profile list;
}

(* Profiled variants re-run the same operator sequence with a clock
   read at every phase boundary.  Consecutive phases share boundary
   timestamps, so leaf durations tile the root interval exactly: the
   sum of leaf dur_ns equals the root dur_ns up to clock monotonicity.
   Unlike [exec_stats.elapsed_ns], profile timing does not depend on
   the observability switch — calling a [*_profiled] entry point is the
   opt-in. *)

let now_ns () = Provkit_util.Timing.now_ns ()

let ns_between a b = Int64.to_int (Int64.sub b a)

let access_detail = function
  | A_scan -> "heap_scan"
  | A_eq (idx, _) -> Printf.sprintf "index_eq(%s)" (Index.name idx)
  | A_range (idx, _, _) -> Printf.sprintf "index_range(%s)" (Index.name idx)

let leaf ?est op detail rows_in rows_out a b =
  { op; detail; rows_in; rows_out; est_rows = est; dur_ns = ns_between a b; children = [] }

(* Per-operator estimates for the profiled variants, all from one
   fresh-stats lookup: the probe phase gets the access-path estimate,
   the filter phase (and the root) the post-predicate estimate. *)
let round_est f = Some (int_of_float (Float.round f))

let profile_estimates table where access =
  match Stats.fresh table with
  | None -> (None, None)
  | Some ts ->
    ( round_est (estimate_access ts access ~table_rows:(Table.row_count table)),
      round_est (Stats.estimate_rows ts where) )

(* Resolve the access path to candidate rowids without touching the row
   heap ([None] = scan: every rowid, enumerated by the fetch phase). *)
let probe_rowids access =
  match access with
  | A_scan -> None
  | A_eq (idx, key) -> Some (Index.find idx key)
  | A_range (idx, lo, hi) ->
      Some (List.rev (fold_bound_range idx lo hi ~init:[] ~f:(fun acc _key rowid -> rowid :: acc)))

let fetch_rows table rowids =
  match rowids with
  | Some ids -> List.map (fun rowid -> (rowid, Table.get table rowid)) ids
  | None -> Table.rows table

let fetch_detail access =
  match access with A_scan -> "heap_scan" | A_eq _ | A_range _ -> "rowid_fetch"

let select_profiled ?(where = Predicate.True) ?(order_by = []) ?limit table =
  let schema = Table.schema table in
  let table_rows = Table.row_count table in
  let profile = ref None in
  let final, stats =
    executed ~op:"select" ~table_name:(Table.name table) ~detail:(pred_detail where)
      (fun () ->
        let t0 = now_ns () in
        let access = access_for table where in
        let probe_est, filter_est = profile_estimates table where access in
        let rowids = probe_rowids access in
        let t1 = now_ns () in
        let cands = fetch_rows table rowids in
        let n_cands = List.length cands in
        let t2 = now_ns () in
        let hits = List.filter (fun (_, row) -> Predicate.eval where schema row) cands in
        let n_hits = List.length hits in
        let t3 = now_ns () in
        let sorted =
          match order_by with
          | [] -> List.sort (fun (a, _) (b, _) -> Int.compare a b) hits
          | _ :: _ -> List.sort (compare_rows schema order_by) hits
        in
        let t4 = now_ns () in
        let final =
          match limit with
          | None -> sorted
          | Some n -> List.filteri (fun i _ -> i < n) sorted
        in
        let t5 = now_ns () in
        let n_final = List.length final in
        let probed = match rowids with Some ids -> List.length ids | None -> table_rows in
        note_estimate ~op:"select" table where ~actual:n_hits;
        profile :=
          Some
            {
              op = "select";
              detail = Table.name table;
              rows_in = table_rows;
              rows_out = n_final;
              est_rows = filter_est;
              dur_ns = ns_between t0 t5;
              children =
                [
                  leaf ?est:probe_est "probe" (access_detail access) table_rows probed t0 t1;
                  leaf "fetch" (fetch_detail access) probed n_cands t1 t2;
                  leaf ?est:filter_est "filter" "residual_predicate" n_cands n_hits t2 t3;
                  leaf "sort"
                    (match order_by with [] -> "rowid_order" | _ :: _ -> "order_by")
                    n_hits n_hits t3 t4;
                  leaf "limit"
                    (match limit with None -> "none" | Some n -> string_of_int n)
                    n_hits n_final t4 t5;
                ];
            };
        (final, plan_of_access access, n_cands, n_final))
  in
  match !profile with Some p -> (final, stats, p) | None -> assert false

let count_profiled ?(where = Predicate.True) table =
  let schema = Table.schema table in
  let table_rows = Table.row_count table in
  let profile = ref None in
  let n, stats =
    executed ~op:"count" ~table_name:(Table.name table) ~detail:(pred_detail where)
      (fun () ->
        let t0 = now_ns () in
        let access = access_for table where in
        let probe_est, filter_est = profile_estimates table where access in
        let rowids = probe_rowids access in
        let t1 = now_ns () in
        let cands = fetch_rows table rowids in
        let n_cands = List.length cands in
        let t2 = now_ns () in
        let n =
          List.length (List.filter (fun (_, row) -> Predicate.eval where schema row) cands)
        in
        let t3 = now_ns () in
        let probed = match rowids with Some ids -> List.length ids | None -> table_rows in
        note_estimate ~op:"count" table where ~actual:n;
        profile :=
          Some
            {
              op = "count";
              detail = Table.name table;
              rows_in = table_rows;
              rows_out = 1;
              est_rows = None;
              dur_ns = ns_between t0 t3;
              children =
                [
                  leaf ?est:probe_est "probe" (access_detail access) table_rows probed t0 t1;
                  leaf "fetch" (fetch_detail access) probed n_cands t1 t2;
                  leaf ?est:filter_est "filter" "residual_predicate" n_cands n t2 t3;
                ];
            };
        (n, plan_of_access access, n_cands, 1))
  in
  match !profile with Some p -> (n, stats, p) | None -> assert false

let group_count_profiled ~by ?(where = Predicate.True) table =
  let schema = Table.schema table in
  let table_rows = Table.row_count table in
  let profile = ref None in
  let pairs, stats =
    executed ~op:"group_count" ~table_name:(Table.name table) ~detail:(pred_detail where)
      (fun () ->
        let t0 = now_ns () in
        let access = access_for table where in
        let probe_est, filter_est = profile_estimates table where access in
        (* The aggregate phase's output is groups, not rows: cap the
           filtered-row estimate by the grouping column's NDV. *)
        let group_est =
          match (Stats.fresh table, filter_est) with
          | Some ts, Some est -> begin
            match List.assoc_opt by ts.Stats.ts_columns with
            | Some cs -> round_est (Float.min cs.Stats.cs_ndv (float_of_int est))
            | None -> None
          end
          | _ -> None
        in
        let rowids = probe_rowids access in
        let t1 = now_ns () in
        let cands = fetch_rows table rowids in
        let n_cands = List.length cands in
        let t2 = now_ns () in
        let counts = Hashtbl.create 64 in
        let matched = ref 0 in
        List.iter
          (fun (_, row) ->
            if Predicate.eval where schema row then begin
              incr matched;
              let key = Row.get schema row by in
              let n = Option.value ~default:0 (Hashtbl.find_opt counts key) in
              Hashtbl.replace counts key (n + 1)
            end)
          cands;
        let groups = Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [] in
        let n_groups = List.length groups in
        let t3 = now_ns () in
        let sorted =
          List.sort
            (fun (ka, na) (kb, nb) ->
              let c = Int.compare nb na in
              if c <> 0 then c else Value.compare ka kb)
            groups
        in
        let t4 = now_ns () in
        let probed = match rowids with Some ids -> List.length ids | None -> table_rows in
        note_estimate ~op:"group_count" table where ~actual:!matched;
        profile :=
          Some
            {
              op = "group_count";
              detail = Table.name table;
              rows_in = table_rows;
              rows_out = n_groups;
              est_rows = None;
              dur_ns = ns_between t0 t4;
              children =
                [
                  leaf ?est:probe_est "probe" (access_detail access) table_rows probed t0 t1;
                  leaf "fetch" (fetch_detail access) probed n_cands t1 t2;
                  leaf ?est:group_est "aggregate" ("group_by(" ^ by ^ ")") n_cands n_groups t2
                    t3;
                  leaf "sort" "count_desc" n_groups n_groups t3 t4;
                ];
            };
        (sorted, plan_of_access access, n_cands, n_groups))
  in
  match !profile with Some p -> (pairs, stats, p) | None -> assert false

let join_profiled ?(where_left = Predicate.True) ?(where_right = Predicate.True) ~on left right =
  let left_cols = List.map fst on and right_cols = List.map snd on in
  let lschema = Table.schema left in
  let rschema = Table.schema right in
  let scanned = ref 0 in
  let profile = ref None in
  let pairs, stats =
    executed ~op:"join" ~table_name:(Table.name right) (fun () ->
        let t0 = now_ns () in
        let left_rows = select ~where:where_left left in
        let n_left = List.length left_rows in
        let t1 = now_ns () in
        let key_of_left (_, row) = List.map (Row.get lschema row) left_cols in
        let plan, build_leaf, probe_detail, right_matches, t2 =
          match Table.find_index_on right right_cols with
          | Some idx ->
              let matches key =
                List.filter_map
                  (fun rowid ->
                    incr scanned;
                    let row = Table.get right rowid in
                    if Predicate.eval where_right rschema row then Some (rowid, row) else None)
                  (Index.find idx key)
              in
              ( Index_eq (Index.name idx),
                None,
                Printf.sprintf "index_eq(%s)" (Index.name idx),
                matches,
                t1 )
          | None ->
              let tbl = Hashtbl.create 256 in
              let built = select ~where:where_right right in
              List.iter
                (fun (rowid, row) ->
                  incr scanned;
                  let key = List.map (Row.get rschema row) right_cols in
                  Hashtbl.add tbl key (rowid, row))
                built;
              let t2 = now_ns () in
              ( Full_scan,
                Some
                  (leaf "build" "hash_table" (List.length built) (Hashtbl.length tbl) t1 t2),
                "hash_probe",
                (fun key -> List.rev (Hashtbl.find_all tbl key)),
                t2 )
        in
        let pairs =
          List.concat_map
            (fun l -> List.map (fun r -> (l, r)) (right_matches (key_of_left l)))
            left_rows
        in
        let t3 = now_ns () in
        let n_pairs = List.length pairs in
        profile :=
          Some
            {
              op = "join";
              detail = Printf.sprintf "%s x %s" (Table.name left) (Table.name right);
              rows_in = n_left;
              rows_out = n_pairs;
              est_rows = None;
              dur_ns = ns_between t0 t3;
              children =
                [ leaf "left_input" (Table.name left) (Table.row_count left) n_left t0 t1 ]
                @ (match build_leaf with None -> [] | Some b -> [ b ])
                @ [ leaf "probe" probe_detail n_left n_pairs t2 t3 ];
            };
        (pairs, plan, !scanned, n_pairs))
  in
  match !profile with Some p -> (pairs, stats, p) | None -> assert false

(* --- profile rendering ---------------------------------------------- *)

let rec profile_to_json p =
  Printf.sprintf
    "{\"op\":\"%s\",\"detail\":\"%s\",\"rows_in\":%d,\"rows_out\":%d,%s\"dur_ns\":%d,\"children\":[%s]}"
    (Obs.Metrics.json_escape p.op)
    (Obs.Metrics.json_escape p.detail)
    p.rows_in p.rows_out
    (match p.est_rows with None -> "" | Some e -> Printf.sprintf "\"est_rows\":%d," e)
    p.dur_ns
    (String.concat "," (List.map profile_to_json p.children))

let render_profile p =
  let total = max p.dur_ns 1 in
  let buf = Buffer.create 256 in
  let rec go depth n =
    let label = String.make (2 * depth) ' ' ^ n.op ^ " " ^ n.detail in
    let est =
      match n.est_rows with
      | None -> String.make 11 ' '
      | Some e -> Printf.sprintf " (est %4d)" e
    in
    Buffer.add_string buf
      (Printf.sprintf "%-44s rows %6d -> %-6d%s %5.1f%% %10.3f ms\n" label n.rows_in
         n.rows_out est
         (100.0 *. float_of_int n.dur_ns /. float_of_int total)
         (float_of_int n.dur_ns /. 1e6));
    List.iter (go (depth + 1)) n.children
  in
  go 0 p;
  Buffer.contents buf

let fold_profile p =
  let rec go prefix n acc =
    let path = match prefix with "" -> n.op | _ -> prefix ^ ";" ^ n.op in
    let child_ns = List.fold_left (fun a c -> a + c.dur_ns) 0 n.children in
    let acc = (path, max 0 (n.dur_ns - child_ns)) :: acc in
    List.fold_left (fun acc c -> go path c acc) acc n.children
  in
  List.rev (go "" p [])
