module Obs = Provkit_obs

type histogram = {
  hb_min : Value.t;
  hb_bounds : Value.t array;
  hb_rows : int;
}

type col_stats = {
  cs_column : string;
  cs_nulls : int;
  cs_null_frac : float;
  cs_min : Value.t;
  cs_max : Value.t;
  cs_ndv : float;
  cs_histogram : histogram option;
}

type table_stats = {
  ts_table : string;
  ts_uid : int;
  ts_epoch : int;
  ts_rows : int;
  ts_sampled : int;
  ts_columns : (string * col_stats) list;
}

let m_analyzes = Obs.Metrics.counter Obs.Names.stats_analyzes
let h_analyze_ns = Obs.Metrics.histogram Obs.Names.stats_analyze_ns

(* --- collection --- *)

let equi_depth ~buckets values =
  let n = Array.length values in
  if n = 0 then None
  else begin
    Array.sort Value.compare values;
    let b = min buckets n in
    (* Bound i is the value at the end of the i-th depth-sized run; a
       value occupying many runs repeats across adjacent bounds, which
       is exactly the signal the equality estimator reads. *)
    let bounds =
      Array.init b (fun i ->
          let idx = (((i + 1) * n) / b) - 1 in
          values.(max 0 (min (n - 1) idx)))
    in
    Some { hb_min = values.(0); hb_bounds = bounds; hb_rows = n }
  end

let summarize_column ~buckets ~indexed schema rows col =
  let ci = Schema.column_index schema col in
  let nulls = ref 0 in
  let vmin = ref Value.Null and vmax = ref Value.Null in
  let hll = Obs.Hyperloglog.create () in
  let non_null = ref [] in
  let examined = ref 0 in
  let buf = Buffer.create 32 in
  List.iter
    (fun (row : Row.t) ->
      incr examined;
      let v = row.(ci) in
      if Value.is_null v then incr nulls
      else begin
        if Value.is_null !vmin || Value.compare v !vmin < 0 then vmin := v;
        if Value.is_null !vmax || Value.compare v !vmax > 0 then vmax := v;
        Buffer.clear buf;
        Codec.write_value buf v;
        Obs.Hyperloglog.add_string hll (Buffer.contents buf);
        if indexed then non_null := v :: !non_null
      end)
    rows;
  let examined = !examined in
  {
    cs_column = col;
    cs_nulls = !nulls;
    cs_null_frac = (if examined = 0 then 0.0 else float_of_int !nulls /. float_of_int examined);
    cs_min = !vmin;
    cs_max = !vmax;
    cs_ndv = (if examined = !nulls then 0.0 else Float.max 1.0 (Obs.Hyperloglog.estimate hll));
    cs_histogram =
      (if indexed then equi_depth ~buckets (Array.of_list !non_null) else None);
  }

let catalog : (int, table_stats) Hashtbl.t = Hashtbl.create 16

(* Serializes structural access to [catalog]: under provd the analyze
   job runs on a background domain while planner lookups come from
   reader domains, and concurrent Hashtbl mutation is memory-unsafe. *)
let catalog_lock = Mutex.create ()

let analyze ?sample ?(buckets = 32) ?(seed = 42) table =
  let t0 = Provkit_util.Timing.now_ns () in
  let stats =
    Obs.Trace.with_span Obs.Names.span_stats_analyze
      ~attrs:[ ("table", Table.name table) ]
      (fun () ->
        let schema = Table.schema table in
        let all_rows = List.map snd (Table.rows table) in
        let total = List.length all_rows in
        let rows =
          match sample with
          | Some n when n < total ->
            Provkit_util.Prng.sample_without_replacement
              (Provkit_util.Prng.create seed)
              n (Array.of_list all_rows)
          | _ -> all_rows
        in
        let indexed_cols =
          List.concat_map Index.column_names (Table.indexes table)
        in
        let columns =
          Array.to_list (Schema.columns schema)
          |> List.map (fun (c : Column.t) ->
                 ( c.Column.name,
                   summarize_column ~buckets
                     ~indexed:(List.mem c.Column.name indexed_cols)
                     schema rows c.Column.name ))
        in
        {
          ts_table = Table.name table;
          ts_uid = Table.uid table;
          ts_epoch = Table.epoch table;
          ts_rows = total;
          ts_sampled = List.length rows;
          ts_columns = columns;
        })
  in
  Mutex.protect catalog_lock (fun () -> Hashtbl.replace catalog stats.ts_uid stats);
  if Obs.Metrics.enabled () then begin
    Obs.Metrics.incr m_analyzes;
    Obs.Metrics.observe h_analyze_ns
      (Int64.to_int (Int64.sub (Provkit_util.Timing.now_ns ()) t0))
  end;
  stats

let analyze_database ?sample ?buckets ?seed db =
  List.map (analyze ?sample ?buckets ?seed) (Database.tables db)

let lookup table =
  Mutex.protect catalog_lock (fun () -> Hashtbl.find_opt catalog (Table.uid table))

let fresh table =
  match lookup table with
  | Some s when s.ts_epoch = Table.epoch table -> Some s
  | _ -> None

let invalidate table =
  Mutex.protect catalog_lock (fun () -> Hashtbl.remove catalog (Table.uid table))

let clear () = Mutex.protect catalog_lock (fun () -> Hashtbl.reset catalog)

(* The freshness health check: the planner only benefits from the
   catalog while every table's entry matches its current epoch.  A
   stale or missing entry is not data loss — the planner falls back to
   heuristics — so the worst this check reports is Degraded. *)
let freshness_check db () =
  let tables = Database.tables db in
  let missing, stale =
    List.fold_left
      (fun (missing, stale) t ->
        match lookup t with
        | None -> (Table.name t :: missing, stale)
        | Some s when s.ts_epoch = Table.epoch t -> (missing, stale)
        | Some _ -> (missing, Table.name t :: stale))
      ([], []) tables
  in
  match (List.rev missing, List.rev stale) with
  | [], [] ->
    (Obs.Health.Ok, Printf.sprintf "all %d table(s) analyzed and fresh" (List.length tables))
  | missing, stale ->
    let part label = function
      | [] -> []
      | names -> [ Printf.sprintf "%s: %s" label (String.concat ", " names) ]
    in
    ( Obs.Health.Degraded,
      String.concat "; " (part "never analyzed" missing @ part "stale" stale) )

let register_health_check db =
  Obs.Health.register Obs.Names.health_stats_fresh (freshness_check db)

(* --- estimation --- *)

let default_eq_sel = 0.1
let default_range_sel = 0.25
let default_like_sel = 0.1
let default_custom_sel = 1.0 /. 3.0

let col ts name = List.assoc_opt name ts.ts_columns

let non_null_frac cs = 1.0 -. cs.cs_null_frac

let as_real v =
  match v with Value.Int i -> Some (float_of_int i) | Value.Real r -> Some r | _ -> None

(* Fraction of a bucket [lo_b, hi_b] lying at or below [v]: numeric
   bounds interpolate linearly, anything else splits the bucket. *)
let within_bucket lo_b hi_b v =
  match (as_real lo_b, as_real hi_b, as_real v) with
  | Some lo, Some hi, Some x when hi > lo -> Float.max 0.0 (Float.min 1.0 ((x -. lo) /. (hi -. lo)))
  | _ -> 0.5

(* Fraction of the histogram's (non-null) values <= v, approximately. *)
let position h v =
  let b = Array.length h.hb_bounds in
  if b = 0 then 0.0
  else if Value.compare v h.hb_min < 0 then 0.0
  else if Value.compare v h.hb_bounds.(b - 1) >= 0 then 1.0
  else begin
    let i = ref 0 in
    while Value.compare h.hb_bounds.(!i) v < 0 do
      incr i
    done;
    let lo_b = if !i = 0 then h.hb_min else h.hb_bounds.(!i - 1) in
    (float_of_int !i +. within_bucket lo_b h.hb_bounds.(!i) v) /. float_of_int b
  end

(* Equality selectivity among the column's non-null values. *)
let eq_frac cs v =
  match cs.cs_histogram with
  | Some h when Array.length h.hb_bounds > 0 ->
    let b = Array.length h.hb_bounds in
    let depth = 1.0 /. float_of_int b in
    if Value.compare v h.hb_min < 0 || Value.compare v h.hb_bounds.(b - 1) > 0 then
      (* Out of the summarized range: call it half a row. *)
      0.5 /. float_of_int (max 1 h.hb_rows)
    else begin
      (* A value frequent enough to fill whole buckets repeats across
         adjacent bounds; count the spanned runs. *)
      let full = ref 0 in
      for i = 0 to b - 1 do
        let lo_b = if i = 0 then h.hb_min else h.hb_bounds.(i - 1) in
        if Value.equal lo_b v && Value.equal h.hb_bounds.(i) v then incr full
      done;
      if !full > 0 then float_of_int (!full + 1) *. depth
      else Float.min depth (1.0 /. Float.max 1.0 cs.cs_ndv)
    end
  | _ -> 1.0 /. Float.max 1.0 cs.cs_ndv

(* Range selectivity among non-null values, inclusive option bounds. *)
let range_frac cs lo hi =
  match cs.cs_histogram with
  | Some h when Array.length h.hb_bounds > 0 ->
    let pos_hi = match hi with None -> 1.0 | Some v -> position h v in
    let pos_lo = match lo with None -> 0.0 | Some v -> position h v in
    let base = Float.max 0.0 (pos_hi -. pos_lo) in
    (* An inclusive range never selects less than a point does. *)
    let floor_eq =
      match (lo, hi) with
      | Some a, Some b when Value.compare a b <= 0 -> eq_frac cs a
      | _ -> 0.0
    in
    Float.max base floor_eq
  | _ -> begin
    (* No histogram: interpolate against min/max when numeric. *)
    match (as_real cs.cs_min, as_real cs.cs_max) with
    | Some mn, Some mx when mx > mn ->
      let clamp x = Float.max mn (Float.min mx x) in
      let lo' = match Option.bind lo as_real with Some x -> clamp x | None -> mn in
      let hi' = match Option.bind hi as_real with Some x -> clamp x | None -> mx in
      Float.max 0.0 ((hi' -. lo') /. (mx -. mn))
    | _ -> default_range_sel
  end

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let sel_eq ts name v =
  if Value.is_null v then 0.0
  else
    match col ts name with
    | None -> default_eq_sel
    | Some cs -> clamp01 (eq_frac cs v *. non_null_frac cs)

let sel_range ts name lo hi =
  match col ts name with
  | None -> default_range_sel
  | Some cs -> clamp01 (range_frac cs lo hi *. non_null_frac cs)

let rec selectivity ts (p : Predicate.t) =
  let s =
    match p with
    | Predicate.True -> 1.0
    | Predicate.Eq (name, v) -> sel_eq ts name v
    | Predicate.Cmp (Predicate.Ne, name, v) -> 1.0 -. sel_eq ts name v
    | Predicate.Cmp (Predicate.Le, name, v) -> sel_range ts name None (Some v)
    | Predicate.Cmp (Predicate.Lt, name, v) ->
      Float.max 0.0 (sel_range ts name None (Some v) -. sel_eq ts name v)
    | Predicate.Cmp (Predicate.Ge, name, v) -> sel_range ts name (Some v) None
    | Predicate.Cmp (Predicate.Gt, name, v) ->
      Float.max 0.0 (sel_range ts name (Some v) None -. sel_eq ts name v)
    | Predicate.Between (name, lo, hi) -> sel_range ts name (Some lo) (Some hi)
    | Predicate.Is_null name -> begin
      match col ts name with None -> default_eq_sel | Some cs -> cs.cs_null_frac
    end
    | Predicate.Not_null name -> begin
      match col ts name with None -> 1.0 -. default_eq_sel | Some cs -> non_null_frac cs
    end
    | Predicate.Like (name, _) -> begin
      match col ts name with
      | None -> default_like_sel
      | Some cs -> default_like_sel *. non_null_frac cs
    end
    | Predicate.And ps -> List.fold_left (fun acc q -> acc *. selectivity ts q) 1.0 ps
    | Predicate.Or ps ->
      1.0 -. List.fold_left (fun acc q -> acc *. (1.0 -. selectivity ts q)) 1.0 ps
    | Predicate.Not q -> 1.0 -. selectivity ts q
    | Predicate.Custom _ -> default_custom_sel
  in
  clamp01 s

let estimate_rows ts p = float_of_int ts.ts_rows *. selectivity ts p
let estimate_eq ts name v = float_of_int ts.ts_rows *. sel_eq ts name v
let estimate_range ts name lo hi = float_of_int ts.ts_rows *. sel_range ts name lo hi

(* --- rendering --- *)

let json_value v =
  match v with
  | Value.Null -> "null"
  | Value.Int i -> string_of_int i
  | Value.Real r -> Printf.sprintf "%g" r
  | Value.Bool b -> string_of_bool b
  | Value.Text _ | Value.Blob _ ->
    Printf.sprintf "\"%s\"" (Obs.Metrics.json_escape (Value.to_string v))

let to_json ts =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"table\":\"%s\",\"uid\":%d,\"epoch\":%d,\"rows\":%d,\"sampled\":%d,\"columns\":["
       (Obs.Metrics.json_escape ts.ts_table)
       ts.ts_uid ts.ts_epoch ts.ts_rows ts.ts_sampled);
  List.iteri
    (fun i (_, cs) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"column\":\"%s\",\"nulls\":%d,\"null_frac\":%.4f,\"min\":%s,\"max\":%s,\"ndv\":%.1f"
           (Obs.Metrics.json_escape cs.cs_column)
           cs.cs_nulls cs.cs_null_frac (json_value cs.cs_min) (json_value cs.cs_max)
           cs.cs_ndv);
      (match cs.cs_histogram with
      | None -> ()
      | Some h ->
        Buffer.add_string buf
          (Printf.sprintf ",\"histogram\":{\"rows\":%d,\"bounds\":[" h.hb_rows);
        Array.iteri
          (fun j b ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (json_value b))
          h.hb_bounds;
        Buffer.add_string buf "]}");
      Buffer.add_char buf '}')
    ts.ts_columns;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let render ts =
  let header = [ "column"; "nulls"; "null%"; "min"; "max"; "ndv"; "histogram" ] in
  let rows =
    List.map
      (fun (_, cs) ->
        [
          cs.cs_column;
          string_of_int cs.cs_nulls;
          Printf.sprintf "%.1f" (cs.cs_null_frac *. 100.0);
          Value.to_string cs.cs_min;
          Value.to_string cs.cs_max;
          Printf.sprintf "%.0f" cs.cs_ndv;
          (match cs.cs_histogram with
          | None -> "-"
          | Some h -> Printf.sprintf "%d buckets/%d rows" (Array.length h.hb_bounds) h.hb_rows);
        ])
      ts.ts_columns
  in
  let title =
    Printf.sprintf "%s: %d rows (%d sampled), epoch %d\n" ts.ts_table ts.ts_rows
      ts.ts_sampled ts.ts_epoch
  in
  title
  ^ Provkit_util.Table_fmt.render
      ~aligns:
        Provkit_util.Table_fmt.[ Left; Right; Right; Right; Right; Right; Left ]
      ~header rows
