(* Bounded LRU for query results: a hash table over an intrusive
   doubly-linked recency list, so find/put are O(1) and eviction drops
   the coldest entry.  Entries carry the table epoch they were computed
   at; validation is a single integer compare, and a stale entry is
   removed on sight (the table moved on, the old result can never
   become valid again). *)

type payload =
  | Rows of (int * Row.t) list
  | Count of int
  | Groups of (Value.t * int) list

type node = {
  key : string;
  mutable epoch : int;
  mutable payload : payload;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  lock : Mutex.t;
      (* every entry point below mutates the table or the recency list
         structurally (find refreshes recency and drops stale entries),
         so concurrent reader domains must serialize on this lock *)
  mutable capacity : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
}

let create ?(capacity = 512) () =
  {
    lock = Mutex.create ();
    capacity = max 0 capacity;
    tbl = Hashtbl.create 256;
    head = None;
    tail = None;
  }

let capacity t = Mutex.protect t.lock (fun () -> t.capacity)
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove t node =
  unlink t node;
  Hashtbl.remove t.tbl node.key

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None)

(* Drop cold entries until the bound holds; returns how many went. *)
let enforce_capacity t =
  let evicted = ref 0 in
  while Hashtbl.length t.tbl > t.capacity do
    match t.tail with
    | Some node ->
      remove t node;
      incr evicted
    | None -> assert false
  done;
  !evicted

let set_capacity t n =
  Mutex.protect t.lock (fun () ->
      t.capacity <- max 0 n;
      ignore (enforce_capacity t))

type lookup = Hit of payload | Stale | Absent

let find t ~key ~epoch =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> Absent
      | Some node when node.epoch = epoch ->
        unlink t node;
        push_front t node;
        Hit node.payload
      | Some node ->
        remove t node;
        Stale)

let put t ~key ~epoch payload =
  Mutex.protect t.lock (fun () ->
      if t.capacity = 0 then 0
      else begin
        (match Hashtbl.find_opt t.tbl key with
        | Some node ->
          node.epoch <- epoch;
          node.payload <- payload;
          unlink t node;
          push_front t node
        | None ->
          let node = { key; epoch; payload; prev = None; next = None } in
          Hashtbl.replace t.tbl key node;
          push_front t node);
        enforce_capacity t
      end)
