(** Binary serialization for values, rows and strings.

    The format is deterministic: the same logical database always encodes
    to the same bytes, which makes storage-overhead measurements exact
    and reproducible. *)

val write_value : Buffer.t -> Value.t -> unit
val read_value : string -> int ref -> Value.t

val write_string : Buffer.t -> string -> unit
(** Length-prefixed. *)

val read_string : string -> int ref -> string

val write_row : Buffer.t -> Value.t array -> unit
(** Arity-prefixed sequence of values. *)

val read_row : string -> int ref -> Value.t array

val row_size : Value.t array -> int
(** Exact encoded byte length of {!write_row}'s output. *)

val read_count : string -> int ref -> int
(** A varint element count, validated against the bytes that remain:
    every encoded element occupies at least one byte, so a larger (or
    negative) count raises {!Errors.Corrupt} before it can size an
    allocation. *)

(** {2 Checksummed frames (storage format v2)}

    A frame is [varint payload-length][CRC-32, 4 bytes LE][payload].
    Framing every journal record lets recovery detect corruption
    anywhere — a flipped byte, a torn write mid-file — rather than only
    a truncated tail, and stop at the last verified prefix. *)

val write_frame : Buffer.t -> string -> unit

val read_frame : string -> int ref -> string
(** Raises {!Errors.Corrupt} if the frame is truncated, overruns the
    input, or fails its checksum; [pos] is advanced only past a fully
    verified frame. *)

val frame_size : int -> int
(** Encoded size of a frame holding an [n]-byte payload. *)
