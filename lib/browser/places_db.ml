module R = Relstore

let vint n = R.Value.Int n
let vtext s = R.Value.Text s
let vreal f = R.Value.Real f
let vbool b = R.Value.Bool b
let vnull = R.Value.Null
let vint_opt = function None -> R.Value.Null | Some n -> R.Value.Int n

type t = { db : R.Database.t }

let places_schema =
  R.Schema.make ~name:"moz_places"
    [
      R.Column.make "url" R.Value.Ttext;
      R.Column.make ~nullable:true "title" R.Value.Ttext;
      R.Column.make "visit_count" R.Value.Tint;
      R.Column.make "frecency" R.Value.Treal;
      R.Column.make ~nullable:true "last_visit_date" R.Value.Tint;
      R.Column.make "hidden" R.Value.Tbool;
    ]

(* Visit and download ids are the rowids (SQLite INTEGER PRIMARY KEY
   aliases the rowid): the engine assigns both contiguously from 1 and
   every event inserts exactly one row, so they coincide — asserted at
   insert time. *)
let visits_schema =
  R.Schema.make ~name:"moz_historyvisits"
    [
      R.Column.make ~nullable:true "from_visit" R.Value.Tint;
      R.Column.make "place_id" R.Value.Tint;
      R.Column.make "visit_date" R.Value.Tint;
      R.Column.make "visit_type" R.Value.Tint;
    ]

let bookmarks_schema =
  R.Schema.make ~name:"moz_bookmarks"
    [
      R.Column.make "place_id" R.Value.Tint;
      R.Column.make "title" R.Value.Ttext;
      R.Column.make "date_added" R.Value.Tint;
    ]

let input_schema =
  R.Schema.make ~name:"moz_inputhistory"
    [
      R.Column.make "place_id" R.Value.Tint;
      R.Column.make "input" R.Value.Ttext;
      R.Column.make "use_count" R.Value.Treal;
    ]

let annos_schema =
  R.Schema.make ~name:"moz_annos"
    [
      R.Column.make "place_id" R.Value.Tint;
      R.Column.make "name" R.Value.Ttext;
      R.Column.make "content" R.Value.Ttext;
    ]

let downloads_schema =
  R.Schema.make ~name:"moz_downloads"
    [
      R.Column.make "name" R.Value.Ttext;
      R.Column.make "source" R.Value.Ttext;
      R.Column.make "target" R.Value.Ttext;
      R.Column.make "start_time" R.Value.Tint;
      R.Column.make ~nullable:true "end_time" R.Value.Tint;
      R.Column.make "state" R.Value.Tint;
    ]

let formhistory_schema =
  R.Schema.make ~name:"moz_formhistory"
    [
      R.Column.make "fieldname" R.Value.Ttext;
      R.Column.make "value" R.Value.Ttext;
      R.Column.make "times_used" R.Value.Tint;
      R.Column.make "last_used" R.Value.Tint;
    ]

let create () =
  let db = R.Database.create ~name:"places" in
  let places = R.Database.create_table db places_schema in
  R.Table.add_index ~unique:true places ~name:"places_url" ~columns:[ "url" ];
  let visits = R.Database.create_table db visits_schema in
  R.Table.add_index visits ~name:"visits_place" ~columns:[ "place_id" ];
  R.Table.add_index visits ~name:"visits_date" ~columns:[ "visit_date" ];
  let bookmarks = R.Database.create_table db bookmarks_schema in
  R.Table.add_index bookmarks ~name:"bookmarks_place" ~columns:[ "place_id" ];
  let input = R.Database.create_table db input_schema in
  R.Table.add_index input ~name:"input_place" ~columns:[ "place_id" ];
  let _annos = R.Database.create_table db annos_schema in
  let _downloads = R.Database.create_table db downloads_schema in
  let form = R.Database.create_table db formhistory_schema in
  R.Table.add_index form ~name:"form_field" ~columns:[ "fieldname" ];
  { db }

let database t = t.db
let table t name = R.Database.table t.db name

(* The moz_places modification epoch: every visit, bookmark or title
   refresh lands in moz_places, so features that snapshot place rows
   (the awesomebar) can validate their snapshot with one integer
   compare. *)
let places_epoch t = R.Table.epoch (table t "moz_places")

type place = {
  place_id : int;
  url : string;
  title : string;
  visit_count : int;
  frecency : float;
  last_visit_date : int option;
  hidden : bool;
}

type visit_row = {
  visit_id : int;
  from_visit : int option;
  place_id : int;
  visit_date : int;
  visit_type : Transition.t;
}

let place_of_row rowid row =
  let s = places_schema in
  {
    place_id = rowid;
    url = R.Row.text s row "url";
    title = Option.value ~default:"" (R.Row.text_opt s row "title");
    visit_count = R.Row.int s row "visit_count";
    frecency = R.Row.real s row "frecency";
    last_visit_date = R.Row.int_opt s row "last_visit_date";
    hidden = R.Row.bool s row "hidden";
  }

let visit_of_row rowid row =
  let s = visits_schema in
  {
    visit_id = rowid;
    from_visit = R.Row.int_opt s row "from_visit";
    place_id = R.Row.int s row "place_id";
    visit_date = R.Row.int s row "visit_date";
    visit_type = Transition.of_code (R.Row.int s row "visit_type");
  }

let place_count t = R.Table.row_count (table t "moz_places")
let visit_count t = R.Table.row_count (table t "moz_historyvisits")

let place t place_id = place_of_row place_id (R.Table.get (table t "moz_places") place_id)

let place_by_url t url =
  Option.map
    (fun (rowid, row) -> place_of_row rowid row)
    (R.Table.find_one_by (table t "moz_places") ~columns:[ "url" ] [ vtext url ])

let places t = List.map (fun (rowid, row) -> place_of_row rowid row) (R.Table.rows (table t "moz_places"))

let visits t =
  List.map (fun (rowid, row) -> visit_of_row rowid row) (R.Table.rows (table t "moz_historyvisits"))

let visits_of_place t place_id =
  List.map
    (fun (rowid, row) -> visit_of_row rowid row)
    (R.Table.find_by (table t "moz_historyvisits") ~columns:[ "place_id" ] [ vint place_id ])

let visit t visit_id =
  Option.map
    (fun row -> visit_of_row visit_id row)
    (R.Table.get_opt (table t "moz_historyvisits") visit_id)

let bookmarks t =
  List.map
    (fun (rowid, row) ->
      (rowid, R.Row.int bookmarks_schema row "place_id", R.Row.text bookmarks_schema row "title"))
    (R.Table.rows (table t "moz_bookmarks"))

let downloads t =
  List.map
    (fun (rowid, row) ->
      ( rowid,
        R.Row.text downloads_schema row "source",
        R.Row.text downloads_schema row "target",
        R.Row.int downloads_schema row "start_time" ))
    (R.Table.rows (table t "moz_downloads"))

let input_history t =
  List.map
    (fun (_, row) ->
      ( R.Row.int input_schema row "place_id",
        R.Row.text input_schema row "input",
        R.Row.real input_schema row "use_count" ))
    (R.Table.rows (table t "moz_inputhistory"))

(* Simplified Places frecency: average (type weight x recency weight)
   over the ten most recent visits, scaled by total visit count. *)
let type_weight = function
  | Transition.Typed -> 2.0
  | Transition.Bookmark -> 1.4
  | Transition.Link -> 1.2
  | Transition.Form_submit -> 1.0
  | Transition.Framed_link -> 0.8
  | Transition.Download -> 0.6
  | Transition.Reload
  | Transition.Embed | Transition.Redirect_permanent | Transition.Redirect_temporary -> 0.0

let recency_weight ~now ~visit_date =
  let days = float_of_int (now - visit_date) /. 86_400.0 in
  if days <= 4.0 then 1.0
  else if days <= 14.0 then 0.7
  else if days <= 31.0 then 0.5
  else if days <= 90.0 then 0.3
  else 0.1

let recompute_frecency t place_id =
  let tbl = table t "moz_places" in
  let row = R.Table.get tbl place_id in
  let p = place_of_row place_id row in
  let now = Option.value ~default:0 p.last_visit_date in
  let recent =
    List.filteri
      (fun i _ -> i < 10)
      (List.sort
         (fun a b -> Int.compare b.visit_date a.visit_date)
         (visits_of_place t place_id))
  in
  match recent with
  | [] -> R.Table.update_field tbl place_id "frecency" (vreal 0.0)
  | _ ->
    let points =
      Provkit_util.Stats.mean
        (List.map
           (fun v ->
             type_weight v.visit_type *. recency_weight ~now ~visit_date:v.visit_date)
           recent)
    in
    R.Table.update_field tbl place_id "frecency"
      (vreal (points *. float_of_int (max 1 p.visit_count)))

let find_or_create_place t ~url ~title ~hidden =
  let tbl = table t "moz_places" in
  match place_by_url t url with
  | Some p ->
    (* A page visited as top-level content stops being hidden, and a
       non-empty title refreshes a stale one — both Places behaviours. *)
    if p.hidden && not hidden then R.Table.update_field tbl p.place_id "hidden" (vbool false);
    if title <> "" && title <> p.title then
      R.Table.update_field tbl p.place_id "title" (vtext title);
    p.place_id
  | None ->
    R.Table.insert_fields tbl
      [
        ("url", vtext url);
        ("title", (if title = "" then vnull else vtext title));
        ("visit_count", vint 0);
        ("frecency", vreal 0.0);
        ("last_visit_date", vnull);
        ("hidden", vbool hidden);
      ]

(* Firefox keeps the causal chain only for transitions the renderer
   itself performs; explicit user navigation (typed, bookmark) loses it.
   This asymmetry is the paper's central §3.2 observation. *)
let firefox_keeps_referrer = function
  | Transition.Link | Transition.Embed | Transition.Framed_link
  | Transition.Redirect_permanent | Transition.Redirect_temporary
  | Transition.Form_submit | Transition.Download | Transition.Reload -> true
  | Transition.Typed | Transition.Bookmark -> false

let record_visit t (v : Event.visit) =
  let url = Webmodel.Url.to_string v.url in
  let hidden =
    match v.transition with
    | Transition.Embed | Transition.Redirect_permanent | Transition.Redirect_temporary -> true
    | Transition.Link | Transition.Typed | Transition.Bookmark | Transition.Download
    | Transition.Framed_link | Transition.Form_submit | Transition.Reload -> false
  in
  let place_id = find_or_create_place t ~url ~title:v.title ~hidden in
  let places_tbl = table t "moz_places" in
  let prow = R.Table.get places_tbl place_id in
  let counted = v.transition <> Transition.Embed in
  if counted then
    R.Table.update_field places_tbl place_id "visit_count"
      (vint (R.Row.int places_schema prow "visit_count" + 1));
  R.Table.update_field places_tbl place_id "last_visit_date" (vint v.time);
  let from_visit = if firefox_keeps_referrer v.transition then v.referrer else None in
  let rowid =
    R.Table.insert_fields (table t "moz_historyvisits")
      [
        ("from_visit", vint_opt from_visit);
        ("place_id", vint place_id);
        ("visit_date", vint v.time);
        ("visit_type", vint (Transition.to_code v.transition));
      ]
  in
  assert (rowid = v.visit_id);
  recompute_frecency t place_id

let record_input t ~place_id ~input ~time:_ =
  let tbl = table t "moz_inputhistory" in
  match
    R.Table.find_one_by tbl ~columns:[ "place_id"; "input" ] [ vint place_id; vtext input ]
  with
  | Some (rowid, row) ->
    R.Table.update_field tbl rowid "use_count"
      (vreal (R.Row.real input_schema row "use_count" +. 1.0))
  | None ->
    ignore
      (R.Table.insert_fields tbl
         [ ("place_id", vint place_id); ("input", vtext input); ("use_count", vreal 1.0) ])

let record_input_choice t ~place_id ~input = record_input t ~place_id ~input ~time:0

let apply_event t event =
  match (event : Event.t) with
  | Event.Visit v -> record_visit t v
  | Event.Close _ -> ()  (* Firefox has no notion of a page close. *)
  | Event.Tab_opened _ | Event.Tab_closed _ -> ()  (* nor of tabs in history *)
  | Event.Bookmark_added { time; bookmark_id = _; visit_id = _; url; title } ->
    let url = Webmodel.Url.to_string url in
    let place_id = find_or_create_place t ~url ~title ~hidden:false in
    ignore
      (R.Table.insert_fields (table t "moz_bookmarks")
         [ ("place_id", vint place_id); ("title", vtext title); ("date_added", vint time) ])
  | Event.Search { time; search_id = _; query; serp_visit } -> begin
    (* The query text lands in input history against the SERP's place —
       present, but disconnected from the result clicks (§3.3). *)
    match visit t serp_visit with
    | Some vr -> record_input t ~place_id:vr.place_id ~input:query ~time
    | None -> ()
  end
  | Event.Download_started { time; download_id; visit_id; source_visit = _; url; target_path } ->
    let source = Webmodel.Url.to_string url in
    let name =
      match List.rev url.Webmodel.Url.path with
      | last :: _ -> last
      | [] -> target_path
    in
    let rowid =
      R.Table.insert_fields (table t "moz_downloads")
         [
           ("name", vtext name);
           ("source", vtext source);
           ("target", vtext target_path);
           ("start_time", vint time);
           ("end_time", vint (time + 2));
           ("state", vint 1);
         ]
    in
    assert (rowid = download_id);
    (match visit t visit_id with
    | Some vr ->
      ignore
        (R.Table.insert_fields (table t "moz_annos")
           [
             ("place_id", vint vr.place_id);
             ("name", vtext "downloads/destinationFileURI");
             ("content", vtext ("file://" ^ target_path));
           ])
    | None -> ())
  | Event.Form_submitted { time; form_id = _; source_visit = _; result_visit = _; fields } ->
    let tbl = table t "moz_formhistory" in
    List.iter
      (fun (field, value) ->
        match
          R.Table.find_by tbl ~columns:[ "fieldname" ] [ vtext field ]
          |> List.find_opt (fun (_, row) -> R.Row.text formhistory_schema row "value" = value)
        with
        | Some (rowid, row) ->
          R.Table.update_field tbl rowid "times_used"
            (vint (R.Row.int formhistory_schema row "times_used" + 1));
          R.Table.update_field tbl rowid "last_used" (vint time)
        | None ->
          ignore
            (R.Table.insert_fields tbl
               [
                 ("fieldname", vtext field);
                 ("value", vtext value);
                 ("times_used", vint 1);
                 ("last_used", vint time);
               ]))
      fields

let apply_events t events = List.iter (apply_event t) events
