(** The baseline history store: a faithful model of Firefox 3's Places
    schema (plus the era's separate downloads table) over {!Relstore}.

    Fidelity notes, all of which the paper calls out and the provenance
    layer fixes:
    - visits store [from_visit] only for link/redirect/embed chains;
      typed and bookmark navigations get NULL — "most browsers will not
      record a relationship" (§3.2);
    - nothing records when a page stopped being displayed — "from the
      perspective of Firefox history, every page is always open" (§3.2);
    - the query behind a SERP visit is not connected to result clicks —
      search terms live in [moz_inputhistory], disconnected from lineage
      (§3.3);
    - bookmarks/downloads live in their own tables, joined to history
      only through URLs — the heterogeneity §3.3 complains about. *)

type t

val create : unit -> t

val apply_event : t -> Event.t -> unit
(** Consume one browser event, updating the tables the way Firefox
    would (including dropping what Firefox drops). *)

val apply_events : t -> Event.t list -> unit
(** {!apply_event} over a whole recorded stream — the batch ingest
    entry point, paired with {!Awesomebar}'s epoch-validated snapshot
    so one rebuild serves the entire batch. *)

val places_epoch : t -> int
(** The [moz_places] table's modification epoch ({!Relstore.Table.epoch}):
    bumped by every visit, bookmark, hidden-flag or title change, so a
    snapshot of place rows can be validated with one integer compare. *)

val database : t -> Relstore.Database.t
(** The underlying relational database (for size accounting and ad-hoc
    queries). *)

(** {2 Typed accessors used by the baseline features} *)

type place = {
  place_id : int;
  url : string;
  title : string;
  visit_count : int;
  frecency : float;
  last_visit_date : int option;
  hidden : bool;  (** embeds and redirect hops, like Firefox *)
}

type visit_row = {
  visit_id : int;
  from_visit : int option;
  place_id : int;
  visit_date : int;
  visit_type : Transition.t;
}

val place_count : t -> int
val visit_count : t -> int
val place : t -> int -> place
val place_by_url : t -> string -> place option
val places : t -> place list
val visits : t -> visit_row list
val visits_of_place : t -> int -> visit_row list
val visit : t -> int -> visit_row option
(** Lookup by the engine-assigned visit id. *)

val bookmarks : t -> (int * int * string) list
(** [(bookmark_id, place_id, title)]. *)

val downloads : t -> (int * string * string * int) list
(** [(download_id, source_url, target_path, start_time)]. *)

val input_history : t -> (int * string * float) list
(** [(place_id, typed_input, use_count)]. *)

val record_input_choice : t -> place_id:int -> input:string -> unit
(** The adaptive awesomebar feedback loop: the user typed [input] and
    chose this place, so bump (or create) the [moz_inputhistory] row —
    what Firefox does when a location-bar suggestion is accepted. *)

val recompute_frecency : t -> int -> unit
(** Recompute one place's frecency from its recent visits (simplified
    Places algorithm: type-weighted, recency-bucketed sample). *)

(** The pieces of that algorithm, exposed so incremental views
    ([Places_views]) can reproduce the stored values bit-for-bit. *)

val type_weight : Transition.t -> float

val recency_weight : now:int -> visit_date:int -> float

val firefox_keeps_referrer : Transition.t -> bool
(** Whether Firefox records [from_visit] for this transition — the
    renderer-performed ones keep the causal chain, explicit user
    navigation (typed, bookmark) drops it (§3.2). *)
