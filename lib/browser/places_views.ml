module R = Relstore
module U = Webmodel.Url

(* The paper's headline queries as incremental materialized views: each
   one folds the capture-side [Event.t] stream into running state whose
   finalize equals the cold recomputation over the Places tables the
   same stream produced.  The equality is exact — including float
   results — because every fold replicates [Places_db.apply_event]'s
   arithmetic and ordering decisions (insertion-order visit lists,
   last-applied [last_visit_date], Embed visits uncounted, sticky first
   resolvable referrer) rather than approximating them.  The
   differential suite in test/test_matview.ml holds this at every
   stream prefix. *)

let seconds_per_day = 86_400

(* --- awesomebar frecency (top-N non-hidden places) ------------------ *)

type place_state = {
  ap_id : int;
  ap_url : string;
  mutable ap_hidden : bool;
  mutable ap_visit_count : int;
  mutable ap_last : int option;
  (* Newest first; reversed before sorting so the stable sort sees the
     same insertion order [Places_db.visits_of_place] returns. *)
  mutable ap_visits : (int * Transition.t) list;
}

type awesome_state = {
  aw_by_url : (string, place_state) Hashtbl.t;
  mutable aw_next_id : int;
}

let frecency_of p =
  match p.ap_visits with
  | [] -> 0.0
  | _ :: _ ->
    let now = Option.value ~default:0 p.ap_last in
    let recent =
      List.filteri
        (fun i _ -> i < 10)
        (List.sort (fun (da, _) (db, _) -> Int.compare db da) (List.rev p.ap_visits))
    in
    let points =
      Provkit_util.Stats.mean
        (List.map
           (fun (date, ty) ->
             Places_db.type_weight ty *. Places_db.recency_weight ~now ~visit_date:date)
           recent)
    in
    points *. float_of_int (max 1 p.ap_visit_count)

let awesome_place st ~url ~hidden =
  match Hashtbl.find_opt st.aw_by_url url with
  | Some p ->
    if p.ap_hidden && not hidden then p.ap_hidden <- false;
    p
  | None ->
    let p =
      {
        ap_id = st.aw_next_id;
        ap_url = url;
        ap_hidden = hidden;
        ap_visit_count = 0;
        ap_last = None;
        ap_visits = [];
      }
    in
    st.aw_next_id <- st.aw_next_id + 1;
    Hashtbl.replace st.aw_by_url url p;
    p

let visit_hidden (transition : Transition.t) =
  match transition with
  | Transition.Embed | Transition.Redirect_permanent | Transition.Redirect_temporary -> true
  | Transition.Link | Transition.Typed | Transition.Bookmark | Transition.Download
  | Transition.Framed_link | Transition.Form_submit | Transition.Reload -> false

let awesome_fold st (ev : Event.t) =
  (match ev with
  | Event.Visit v ->
    let p =
      awesome_place st ~url:(U.to_string v.url) ~hidden:(visit_hidden v.transition)
    in
    if v.transition <> Transition.Embed then p.ap_visit_count <- p.ap_visit_count + 1;
    p.ap_last <- Some v.time;
    p.ap_visits <- (v.time, v.transition) :: p.ap_visits
  | Event.Bookmark_added b ->
    ignore (awesome_place st ~url:(U.to_string b.url) ~hidden:false)
  | Event.Close _ | Event.Tab_opened _ | Event.Tab_closed _ | Event.Search _
  | Event.Download_started _ | Event.Form_submitted _ -> ());
  st

let rank_frecency (ia, _, fa) (ib, _, fb) =
  let c = Float.compare fb fa in
  if c <> 0 then c else Int.compare ia ib

let awesome_finalize ~top_n st =
  let all =
    Hashtbl.fold
      (fun _ p acc -> if p.ap_hidden then acc else (p.ap_id, p.ap_url, frecency_of p) :: acc)
      st.aw_by_url []
  in
  List.filteri (fun i _ -> i < top_n) (List.sort rank_frecency all)

let frecency_spec ~top_n : (Event.t, awesome_state, (int * string * float) list) R.Matview.spec =
  {
    R.Matview.name = "awesomebar_frecency";
    init = (fun () -> { aw_by_url = Hashtbl.create 256; aw_next_id = 1 });
    fold = awesome_fold;
    finalize = awesome_finalize ~top_n;
  }

let cold_frecency_top ~top_n places =
  let all =
    List.filter_map
      (fun (p : Places_db.place) ->
        if p.Places_db.hidden then None
        else Some (p.Places_db.place_id, p.Places_db.url, p.Places_db.frecency))
      (Places_db.places places)
  in
  List.filteri (fun i _ -> i < top_n) (List.sort rank_frecency all)

(* --- per-host visit counts ------------------------------------------ *)

type host_state = (string, int) Hashtbl.t

let rank_counts (ka, na) (kb, nb) =
  let c = Int.compare nb na in
  if c <> 0 then c else String.compare ka kb

let host_fold (st : host_state) (ev : Event.t) =
  (match ev with
  | Event.Visit v ->
    let host = U.host v.url in
    Hashtbl.replace st host (1 + Option.value ~default:0 (Hashtbl.find_opt st host))
  | Event.Close _ | Event.Tab_opened _ | Event.Tab_closed _ | Event.Bookmark_added _
  | Event.Search _ | Event.Download_started _ | Event.Form_submitted _ -> ());
  st

let host_spec : (Event.t, host_state, (string * int) list) R.Matview.spec =
  {
    R.Matview.name = "host_visits";
    init = (fun () -> Hashtbl.create 64);
    fold = host_fold;
    finalize =
      (fun st -> List.sort rank_counts (Hashtbl.fold (fun k n acc -> (k, n) :: acc) st []));
  }

let cold_host_visits places =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (v : Places_db.visit_row) ->
      let url = (Places_db.place places v.Places_db.place_id).Places_db.url in
      let host = U.host (U.of_string url) in
      Hashtbl.replace counts host (1 + Option.value ~default:0 (Hashtbl.find_opt counts host)))
    (Places_db.visits places);
  List.sort rank_counts (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])

(* --- download-chain rollup (downloads per referrer host) ------------ *)

type download_state = {
  (* visit id -> the visited url (its place's url). *)
  dl_visit_url : (int, string) Hashtbl.t;
  (* url -> referrer place url, set by the first visit of [url] whose
     kept referrer resolves — sticky, exactly like the cold query's
     rowid-ordered [find_map] over the place's visits. *)
  dl_url_referrer : (string, string) Hashtbl.t;
  mutable dl_sources : string list;
}

let direct_key = "(direct)"

let download_fold st (ev : Event.t) =
  (match ev with
  | Event.Visit v ->
    let url = U.to_string v.url in
    Hashtbl.replace st.dl_visit_url v.visit_id url;
    let from_visit = if Places_db.firefox_keeps_referrer v.transition then v.referrer else None in
    (match from_visit with
    | Some parent when not (Hashtbl.mem st.dl_url_referrer url) -> begin
      match Hashtbl.find_opt st.dl_visit_url parent with
      | Some parent_url -> Hashtbl.replace st.dl_url_referrer url parent_url
      | None -> ()
    end
    | Some _ | None -> ())
  | Event.Download_started d -> st.dl_sources <- U.to_string d.url :: st.dl_sources
  | Event.Close _ | Event.Tab_opened _ | Event.Tab_closed _ | Event.Bookmark_added _
  | Event.Search _ | Event.Form_submitted _ -> ());
  st

let referrer_host = function
  | None -> direct_key
  | Some url -> U.host (U.of_string url)

let download_finalize st =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun source ->
      let key = referrer_host (Hashtbl.find_opt st.dl_url_referrer source) in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    st.dl_sources;
  List.sort rank_counts (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])

let download_spec : (Event.t, download_state, (string * int) list) R.Matview.spec =
  {
    R.Matview.name = "download_referrers";
    init =
      (fun () ->
        {
          dl_visit_url = Hashtbl.create 256;
          dl_url_referrer = Hashtbl.create 64;
          dl_sources = [];
        });
    fold = download_fold;
    finalize = download_finalize;
  }

let cold_download_referrers places =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (o : Places_queries.download_origin) ->
      let key = referrer_host o.Places_queries.referrer_url in
      Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Places_queries.downloads_with_referrers places);
  List.sort rank_counts (Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [])

(* --- windowed last-7-day visit count -------------------------------- *)

(* A ring of 7 day buckets.  The watermark day only moves forward (on
   any event, via [Event.time]); moving it zeroes the buckets whose day
   slots the window just entered, which is the whole expiry story —
   nothing is ever rescanned.  Clock-skewed (out-of-order) visits land
   in their own day's bucket when that day is still inside the window
   and are dropped when it already expired, matching what the cold
   count over [visit_date] sees. *)
type window_state = {
  wd_buckets : int array;
  mutable wd_day : int;
}

let window_advance st day =
  if day > st.wd_day then begin
    if day - st.wd_day >= 7 then Array.fill st.wd_buckets 0 7 0
    else
      for d = st.wd_day + 1 to day do
        st.wd_buckets.(d mod 7) <- 0
      done;
    st.wd_day <- day
  end

let window_fold st (ev : Event.t) =
  window_advance st (Event.time ev / seconds_per_day);
  (match ev with
  | Event.Visit v ->
    let day = v.time / seconds_per_day in
    if day >= st.wd_day - 6 then st.wd_buckets.(day mod 7) <- st.wd_buckets.(day mod 7) + 1
  | Event.Close _ | Event.Tab_opened _ | Event.Tab_closed _ | Event.Bookmark_added _
  | Event.Search _ | Event.Download_started _ | Event.Form_submitted _ -> ());
  st

let window_spec : (Event.t, window_state, int) R.Matview.spec =
  {
    R.Matview.name = "recent_visits_7d";
    init = (fun () -> { wd_buckets = Array.make 7 0; wd_day = 0 });
    fold = window_fold;
    finalize = (fun st -> Array.fold_left ( + ) 0 st.wd_buckets);
  }

let cold_recent_visits ~now places =
  let day = now / seconds_per_day in
  List.length
    (List.filter
       (fun (v : Places_db.visit_row) ->
         let d = v.Places_db.visit_date / seconds_per_day in
         d >= day - 6 && d <= day)
       (Places_db.visits places))

(* --- per-place visit counts (Query_exec fast-path backing) ---------- *)

(* Mirrors the url -> place_id assignment [Places_db.find_or_create_place]
   makes (creation order, ids from 1; visits and bookmarks create
   places, nothing else does), so the group keys line up with
   moz_historyvisits.place_id without reading the table. *)
type place_visits_state = {
  pv_ids : (string, int) Hashtbl.t;
  mutable pv_next_id : int;
  pv_counts : (int, int) Hashtbl.t;
  mutable pv_total : int;
}

let pv_place st url =
  match Hashtbl.find_opt st.pv_ids url with
  | Some id -> id
  | None ->
    let id = st.pv_next_id in
    st.pv_next_id <- id + 1;
    Hashtbl.replace st.pv_ids url id;
    id

let place_visits_fold st (ev : Event.t) =
  (match ev with
  | Event.Visit v ->
    let id = pv_place st (U.to_string v.url) in
    Hashtbl.replace st.pv_counts id (1 + Option.value ~default:0 (Hashtbl.find_opt st.pv_counts id));
    st.pv_total <- st.pv_total + 1
  | Event.Bookmark_added b -> ignore (pv_place st (U.to_string b.url))
  | Event.Close _ | Event.Tab_opened _ | Event.Tab_closed _ | Event.Search _
  | Event.Download_started _ | Event.Form_submitted _ -> ());
  st

(* The same comparator [Query_exec.group_count] applies to its output. *)
let rank_groups (ka, na) (kb, nb) =
  let c = Int.compare nb na in
  if c <> 0 then c else R.Value.compare ka kb

let place_visits_finalize st =
  ( st.pv_total,
    List.sort rank_groups
      (Hashtbl.fold (fun id n acc -> (R.Value.Int id, n) :: acc) st.pv_counts []) )

let place_visits_spec :
    (Event.t, place_visits_state, int * (R.Value.t * int) list) R.Matview.spec =
  {
    R.Matview.name = "place_visits";
    init =
      (fun () ->
        {
          pv_ids = Hashtbl.create 256;
          pv_next_id = 1;
          pv_counts = Hashtbl.create 256;
          pv_total = 0;
        });
    fold = place_visits_fold;
    finalize = place_visits_finalize;
  }

let cold_place_visits places =
  let counts = Hashtbl.create 256 in
  let total = ref 0 in
  List.iter
    (fun (v : Places_db.visit_row) ->
      incr total;
      let id = v.Places_db.place_id in
      Hashtbl.replace counts id (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
    (Places_db.visits places);
  ( !total,
    List.sort rank_groups
      (Hashtbl.fold (fun id n acc -> (R.Value.Int id, n) :: acc) counts []) )

(* --- the assembled view set ----------------------------------------- *)

type t = {
  places : Places_db.t;
  registry : Event.t R.Matview.t;
  v_frecency : (Event.t, awesome_state, (int * string * float) list) R.Matview.handle;
  v_hosts : (Event.t, host_state, (string * int) list) R.Matview.handle;
  v_downloads : (Event.t, download_state, (string * int) list) R.Matview.handle;
  v_recent : (Event.t, window_state, int) R.Matview.handle;
  v_place_visits : (Event.t, place_visits_state, int * (R.Value.t * int) list) R.Matview.handle;
  seen_urls : R.Remember.t;
  mutable revisits : int;
  mutable first_visits : int;
  mutable now : int;
  (* moz_historyvisits epoch stamped after the last ingest; the
     Query_exec sources compare it against the live epoch so a direct
     table mutation that bypassed [ingest] sends readers back cold. *)
  mutable stamped_epoch : int;
  (* Newest first; [refresh] refolds it and recovery replaces it. *)
  mutable event_log : Event.t list;
}

let visits_table t = R.Database.table (Places_db.database t.places) "moz_historyvisits"

let register_query_sources t =
  let table = visits_table t in
  let fresh () = R.Table.epoch table = t.stamped_epoch in
  R.Query_exec.register_matview_source ~table ~op:"count" ~aux:"" ~fresh
    ~payload:(fun () -> R.Query_cache.Count (fst (R.Matview.value t.v_place_visits)));
  R.Query_exec.register_matview_source ~table ~op:"group_count" ~aux:"place_id" ~fresh
    ~payload:(fun () -> R.Query_cache.Groups (snd (R.Matview.value t.v_place_visits)))

let create ?(top_n = 10) ?(expected_urls = 4096) places =
  let registry = R.Matview.create () in
  let v_frecency = R.Matview.register registry (frecency_spec ~top_n) in
  let v_hosts = R.Matview.register registry host_spec in
  let v_downloads = R.Matview.register registry download_spec in
  let v_recent = R.Matview.register registry window_spec in
  let v_place_visits = R.Matview.register registry place_visits_spec in
  let t =
    {
      places;
      registry;
      v_frecency;
      v_hosts;
      v_downloads;
      v_recent;
      v_place_visits;
      seen_urls = R.Remember.create ~expected:expected_urls ();
      revisits = 0;
      first_visits = 0;
      now = 0;
      stamped_epoch = 0;
      event_log = [];
    }
  in
  t.stamped_epoch <- R.Table.epoch (visits_table t);
  register_query_sources t;
  t

let ingest t ev =
  Places_db.apply_event t.places ev;
  (match ev with
  | Event.Visit v ->
    if R.Remember.remember t.seen_urls (U.to_string v.url) then t.revisits <- t.revisits + 1
    else t.first_visits <- t.first_visits + 1
  | Event.Close _ | Event.Tab_opened _ | Event.Tab_closed _ | Event.Bookmark_added _
  | Event.Search _ | Event.Download_started _ | Event.Form_submitted _ -> ());
  R.Matview.feed t.registry ev;
  t.now <- max t.now (Event.time ev);
  t.event_log <- ev :: t.event_log;
  t.stamped_epoch <- R.Table.epoch (visits_table t)

let ingest_batch t evs = List.iter (ingest t) evs

let refresh t =
  R.Matview.rebuild t.registry (List.rev t.event_log);
  t.stamped_epoch <- R.Table.epoch (visits_table t)

let places t = t.places
let registry t = t.registry
let now t = t.now
let events_ingested t = List.length t.event_log

let frecency_top t = R.Matview.value t.v_frecency
let host_visits t = R.Matview.value t.v_hosts
let download_referrers t = R.Matview.value t.v_downloads
let recent_visits t = R.Matview.value t.v_recent
let place_visit_groups t = R.Matview.value t.v_place_visits

let status t = R.Matview.status t.registry
let revisit_stats t = (t.first_visits, t.revisits)
let seen_urls t = t.seen_urls
