(** The paper's headline queries as incremental materialized views.

    A {!t} bundles a {!Places_db.t} with a {!Relstore.Matview} registry
    holding five views folded from the capture-side event stream:

    - [awesomebar_frecency] — top-N non-hidden places by frecency,
      reproducing the stored [Places_db] frecency bit-for-bit;
    - [host_visits] — visit counts per URL host;
    - [download_referrers] — downloads rolled up by referrer host
      (["(direct)"] when the chain is broken);
    - [recent_visits_7d] — visits inside a sliding 7-day window, with
      ring-buffer expiry;
    - [place_visits] — total and per-place visit counts, registered as
      {!Relstore.Query_exec} matview sources so bare [count] /
      [group_count ~by:"place_id"] over [moz_historyvisits] are served
      incrementally.

    Every view satisfies the differential contract: after any prefix of
    an ingested stream its value equals the matching [cold_*] function
    recomputed from the tables.  A bloom filter ({!Relstore.Remember})
    rides along for O(1) URL revisit detection. *)

type t

val create : ?top_n:int -> ?expected_urls:int -> Places_db.t -> t
(** Registers the five views (empty) and the Query_exec sources.
    [top_n] bounds the frecency view's output (default 10);
    [expected_urls] sizes the revisit bloom filter (default 4096). *)

val ingest : t -> Event.t -> unit
(** Apply the event to the Places tables, fold it into every view,
    update the revisit filter and the freshness stamp. *)

val ingest_batch : t -> Event.t list -> unit

val refresh : t -> unit
(** Rebuild every view by refolding the retained event log — the
    [provctl matview refresh] escape hatch. *)

val places : t -> Places_db.t
val registry : t -> Event.t Relstore.Matview.t
val status : t -> Relstore.Matview.status list

val now : t -> int
(** Watermark: the largest event time ingested. *)

val events_ingested : t -> int

(** {2 View reads (incremental)} *)

val frecency_top : t -> (int * string * float) list
(** [(place_id, url, frecency)], frecency descending, id ascending on
    ties, at most [top_n] rows, hidden places excluded. *)

val host_visits : t -> (string * int) list
(** [(host, visits)], count descending, host ascending on ties. *)

val download_referrers : t -> (string * int) list
(** [(referrer_host, downloads)], same ordering; ["(direct)"] groups
    downloads whose source has no resolvable referrer. *)

val recent_visits : t -> int
(** Visits whose day falls within the last 7 days of the watermark. *)

val place_visit_groups : t -> int * (Relstore.Value.t * int) list
(** Total visit rows, and per-place counts shaped exactly like
    [Query_exec.group_count ~by:"place_id"] output. *)

(** {2 Cold recomputations (differential baselines)} *)

val cold_frecency_top : top_n:int -> Places_db.t -> (int * string * float) list
val cold_host_visits : Places_db.t -> (string * int) list
val cold_download_referrers : Places_db.t -> (string * int) list
val cold_recent_visits : now:int -> Places_db.t -> int
val cold_place_visits : Places_db.t -> int * (Relstore.Value.t * int) list

(** {2 Revisit detection} *)

val revisit_stats : t -> int * int
(** [(first_visits, revisits)] as judged by the bloom filter (a false
    positive misclassifies a first visit as a revisit at the filter's
    configured rate; there are no false negatives). *)

val seen_urls : t -> Relstore.Remember.t
