module Web = Webmodel.Web_graph
module Page = Webmodel.Page_content
module Url = Webmodel.Url

type visit_info = {
  visit_id : int;
  page : int option;
  url : Url.t;
  title : string;
  tab : int;
  time : int;
  transition : Transition.t;
}

type t = {
  web : Web.t;
  search_engine : Webmodel.Search_engine.t;
  places : Places_db.t;
  tabs : Tabs.t;
  visits : (int, visit_info) Hashtbl.t;
  bookmark_list : (int, int option * Url.t * string) Hashtbl.t;
  mutable observers : (Event.t -> unit) list;
  mutable log : Event.t list;  (* newest first *)
  mutable next_visit : int;
  mutable next_bookmark : int;
  mutable next_download : int;
  mutable next_search : int;
  mutable next_form : int;
}

let create ~web ~search () =
  let t =
    {
      web;
      search_engine = search;
      places = Places_db.create ();
      tabs = Tabs.create ();
      visits = Hashtbl.create 1024;
      bookmark_list = Hashtbl.create 32;
      observers = [];
      log = [];
      next_visit = 1;
      next_bookmark = 1;
      next_download = 1;
      next_search = 1;
      next_form = 1;
    }
  in
  t.observers <- [ Places_db.apply_event t.places ];
  t

let subscribe t f = t.observers <- t.observers @ [ f ]

let m_events = Provkit_obs.Metrics.counter Provkit_obs.Names.browser_events

let emit t event =
  Provkit_obs.Metrics.incr m_events;
  t.log <- event :: t.log;
  List.iter (fun f -> f event) t.observers

let web t = t.web
let places t = t.places
let event_log t = List.rev t.log
let visit_info t id = Hashtbl.find t.visits id
let visit_count t = Hashtbl.length t.visits

let fresh_visit t = let id = t.next_visit in t.next_visit <- id + 1; id

let current_visit t tab =
  match Tabs.current_visit t.tabs tab with
  | None -> None
  | Some id -> Some (visit_info t id)

let open_tab t ~time ?opener () =
  let tab = Tabs.open_tab t.tabs ?opener () in
  emit t (Event.Tab_opened { time; tab; opener_tab = opener });
  tab

let close_displayed t ~time tab =
  match Tabs.current_visit t.tabs tab with
  | None -> ()
  | Some visit_id -> emit t (Event.Close { time; tab; visit_id })

let close_tab t ~time tab =
  close_displayed t ~time tab;
  Tabs.close_tab t.tabs tab;
  emit t (Event.Tab_closed { time; tab })

(* Record one visit event and remember its info. *)
let record_visit t ~time ~tab ~page ~url ~title ~transition ~referrer ~via_bookmark =
  let visit_id = fresh_visit t in
  let info = { visit_id; page; url; title; tab; time; transition } in
  Hashtbl.replace t.visits visit_id info;
  emit t
    (Event.Visit
       { Event.visit_id; time; tab; page; url; title; transition; referrer; via_bookmark });
  info

(* Fetch the embedded images of a page as Embed visits.  Embeds are not
   displayed standalone, so they do not become the tab's current visit
   and get no Close events. *)
let load_embeds t ~time ~tab ~(parent : visit_info) page_id =
  let page = Web.page t.web page_id in
  Array.iter
    (fun embed_id ->
      let embed = Web.page t.web embed_id in
      ignore
        (record_visit t ~time ~tab ~page:(Some embed_id) ~url:embed.Page.url
           ~title:embed.Page.title ~transition:Transition.Embed
           ~referrer:(Some parent.visit_id) ~via_bookmark:None))
    page.Page.embeds

(* Navigate a tab to a web page: close what was displayed, follow any
   redirect chain, land on the final page, pull its embeds. *)
let navigate_to_page t ~time ~tab ~transition ~via_bookmark target =
  let referrer = Option.map (fun (v : visit_info) -> v.visit_id) (current_visit t tab) in
  close_displayed t ~time tab;
  let chain = Web.resolve_redirects t.web target in
  let rec walk referrer transition = function
    | [] -> assert false
    | [ final ] ->
      let page = Web.page t.web final in
      let info =
        record_visit t ~time ~tab ~page:(Some final) ~url:page.Page.url
          ~title:page.Page.title ~transition ~referrer ~via_bookmark
      in
      info
    | hop :: rest ->
      let page = Web.page t.web hop in
      let info =
        record_visit t ~time ~tab ~page:(Some hop) ~url:page.Page.url
          ~title:page.Page.title ~transition ~referrer ~via_bookmark
      in
      walk (Some info.visit_id) Transition.Redirect_temporary rest
  in
  let info = walk referrer transition chain in
  Tabs.set_current_visit t.tabs tab info.visit_id;
  (match info.page with
  | Some pid -> load_embeds t ~time ~tab ~parent:info pid
  | None -> ());
  info

let visit_typed t ~time ~tab target =
  navigate_to_page t ~time ~tab ~transition:Transition.Typed ~via_bookmark:None target

let visit_link t ~time ~tab target =
  navigate_to_page t ~time ~tab ~transition:Transition.Link ~via_bookmark:None target

let visit_bookmark t ~time ~tab ~bookmark =
  match Hashtbl.find_opt t.bookmark_list bookmark with
  | None -> raise Not_found
  | Some (page, url, title) -> begin
    match page with
    | Some pid ->
      navigate_to_page t ~time ~tab ~transition:Transition.Bookmark
        ~via_bookmark:(Some bookmark) pid
    | None ->
      (* A bookmarked SERP: revisit the result URL directly. *)
      let referrer = Option.map (fun (v : visit_info) -> v.visit_id) (current_visit t tab) in
      close_displayed t ~time tab;
      let info =
        record_visit t ~time ~tab ~page:None ~url ~title
          ~transition:Transition.Bookmark ~referrer ~via_bookmark:(Some bookmark)
      in
      Tabs.set_current_visit t.tabs tab info.visit_id;
      info
  end

let reload t ~time ~tab =
  match current_visit t tab with
  | Some { page = Some page; _ } ->
    navigate_to_page t ~time ~tab ~transition:Transition.Reload ~via_bookmark:None page
  | Some { page = None; _ } -> invalid_arg "Engine.reload: cannot reload a result page"
  | None -> invalid_arg "Engine.reload: tab has no current page"

let search t ~time ~tab query =
  let url = Webmodel.Search_engine.serp_url query in
  let referrer = Option.map (fun (v : visit_info) -> v.visit_id) (current_visit t tab) in
  close_displayed t ~time tab;
  let info =
    record_visit t ~time ~tab ~page:None ~url
      ~title:(Printf.sprintf "Search: %s" query)
      ~transition:Transition.Typed ~referrer ~via_bookmark:None
  in
  Tabs.set_current_visit t.tabs tab info.visit_id;
  let search_id = t.next_search in
  t.next_search <- search_id + 1;
  emit t (Event.Search { time; search_id; query; serp_visit = info.visit_id });
  (info, Webmodel.Search_engine.search t.search_engine query)

let click_result t ~time ~tab target =
  navigate_to_page t ~time ~tab ~transition:Transition.Link ~via_bookmark:None target

let download t ~time ~tab ~file_page =
  let source =
    match current_visit t tab with
    | Some v -> v
    | None -> invalid_arg "Engine.download: tab has no current page"
  in
  let file = Web.page t.web file_page in
  (* The fetch is its own visit (TRANSITION_DOWNLOAD) but the tab keeps
     displaying the source page, exactly as in Firefox. *)
  let info =
    record_visit t ~time ~tab ~page:(Some file_page) ~url:file.Page.url
      ~title:file.Page.title ~transition:Transition.Download
      ~referrer:(Some source.visit_id) ~via_bookmark:None
  in
  let download_id = t.next_download in
  t.next_download <- download_id + 1;
  let target_path =
    match List.rev file.Page.url.Url.path with
    | name :: _ -> "/home/user/downloads/" ^ name
    | [] -> Printf.sprintf "/home/user/downloads/file%d" download_id
  in
  emit t
    (Event.Download_started
       {
         time;
         download_id;
         visit_id = info.visit_id;
         source_visit = source.visit_id;
         url = file.Page.url;
         target_path;
       });
  (download_id, info)

let add_bookmark t ~time ~tab =
  match current_visit t tab with
  | None -> invalid_arg "Engine.add_bookmark: tab has no current page"
  | Some v ->
    let bookmark_id = t.next_bookmark in
    t.next_bookmark <- bookmark_id + 1;
    Hashtbl.replace t.bookmark_list bookmark_id (v.page, v.url, v.title);
    emit t
      (Event.Bookmark_added
         { time; bookmark_id; visit_id = v.visit_id; url = v.url; title = v.title });
    bookmark_id

let bookmarks t =
  List.sort
    (fun (a, _, _) (b, _, _) -> Int.compare a b)
    (Hashtbl.fold (fun id (page, _, title) acc -> (id, page, title) :: acc) t.bookmark_list [])

let submit_form t ~time ~tab ~fields ~result_page =
  let source =
    match current_visit t tab with
    | Some v -> v
    | None -> invalid_arg "Engine.submit_form: tab has no current page"
  in
  let info =
    navigate_to_page t ~time ~tab ~transition:Transition.Form_submit ~via_bookmark:None
      result_page
  in
  let form_id = t.next_form in
  t.next_form <- form_id + 1;
  emit t
    (Event.Form_submitted
       { time; form_id; source_visit = source.visit_id; result_visit = info.visit_id; fields });
  info

let open_tabs t = Tabs.open_tabs t.tabs
