module V = Relstore.Varint
module C = Relstore.Codec

(* v1: bare event encodings after the magic.  v2 frames every event
   with a length prefix and CRC-32 (Relstore.Codec.write_frame) so a
   damaged byte anywhere ends the readable prefix instead of silently
   garbling the rest of the trace.  Both load; we always write v2. *)
let magic_v1 = "BROWSEVT1"
let magic_v2 = "BROWSEVT2"

let format_version s =
  let probe m = String.length s >= String.length m && String.sub s 0 (String.length m) = m in
  if probe magic_v2 then Some 2 else if probe magic_v1 then Some 1 else None

let write_opt_int buf = function
  | None -> Buffer.add_char buf '\000'
  | Some n ->
    Buffer.add_char buf '\001';
    V.write_signed buf n

let read_byte s pos =
  if !pos >= String.length s then Relstore.Errors.corrupt "event: truncated byte"
  else begin
    let c = s.[!pos] in
    incr pos;
    c
  end

let read_opt_int s pos =
  match read_byte s pos with
  | '\000' -> None
  | '\001' -> Some (V.read_signed s pos)
  | _ -> Relstore.Errors.corrupt "event: bad option tag"

let write_url buf url = C.write_string buf (Webmodel.Url.to_string url)
let read_url s pos = Webmodel.Url.of_string (C.read_string s pos)

let encode_event buf (event : Event.t) =
  match event with
  | Event.Visit v ->
    Buffer.add_char buf '\000';
    V.write_unsigned buf v.Event.visit_id;
    V.write_signed buf v.Event.time;
    V.write_unsigned buf v.Event.tab;
    write_opt_int buf v.Event.page;
    write_url buf v.Event.url;
    C.write_string buf v.Event.title;
    V.write_unsigned buf (Transition.to_code v.Event.transition);
    write_opt_int buf v.Event.referrer;
    write_opt_int buf v.Event.via_bookmark
  | Event.Close { time; tab; visit_id } ->
    Buffer.add_char buf '\001';
    V.write_signed buf time;
    V.write_unsigned buf tab;
    V.write_unsigned buf visit_id
  | Event.Tab_opened { time; tab; opener_tab } ->
    Buffer.add_char buf '\002';
    V.write_signed buf time;
    V.write_unsigned buf tab;
    write_opt_int buf opener_tab
  | Event.Tab_closed { time; tab } ->
    Buffer.add_char buf '\003';
    V.write_signed buf time;
    V.write_unsigned buf tab
  | Event.Bookmark_added { time; bookmark_id; visit_id; url; title } ->
    Buffer.add_char buf '\004';
    V.write_signed buf time;
    V.write_unsigned buf bookmark_id;
    V.write_unsigned buf visit_id;
    write_url buf url;
    C.write_string buf title
  | Event.Search { time; search_id; query; serp_visit } ->
    Buffer.add_char buf '\005';
    V.write_signed buf time;
    V.write_unsigned buf search_id;
    C.write_string buf query;
    V.write_unsigned buf serp_visit
  | Event.Download_started { time; download_id; visit_id; source_visit; url; target_path } ->
    Buffer.add_char buf '\006';
    V.write_signed buf time;
    V.write_unsigned buf download_id;
    V.write_unsigned buf visit_id;
    V.write_unsigned buf source_visit;
    write_url buf url;
    C.write_string buf target_path
  | Event.Form_submitted { time; form_id; source_visit; result_visit; fields } ->
    Buffer.add_char buf '\007';
    V.write_signed buf time;
    V.write_unsigned buf form_id;
    V.write_unsigned buf source_visit;
    V.write_unsigned buf result_visit;
    V.write_unsigned buf (List.length fields);
    List.iter
      (fun (k, v) ->
        C.write_string buf k;
        C.write_string buf v)
      fields

let decode_event s pos : Event.t =
  match read_byte s pos with
  | '\000' ->
    let visit_id = V.read_unsigned s pos in
    let time = V.read_signed s pos in
    let tab = V.read_unsigned s pos in
    let page = read_opt_int s pos in
    let url = read_url s pos in
    let title = C.read_string s pos in
    let transition = Transition.of_code (V.read_unsigned s pos) in
    let referrer = read_opt_int s pos in
    let via_bookmark = read_opt_int s pos in
    Event.Visit
      { Event.visit_id; time; tab; page; url; title; transition; referrer; via_bookmark }
  | '\001' ->
    let time = V.read_signed s pos in
    let tab = V.read_unsigned s pos in
    let visit_id = V.read_unsigned s pos in
    Event.Close { time; tab; visit_id }
  | '\002' ->
    let time = V.read_signed s pos in
    let tab = V.read_unsigned s pos in
    let opener_tab = read_opt_int s pos in
    Event.Tab_opened { time; tab; opener_tab }
  | '\003' ->
    let time = V.read_signed s pos in
    let tab = V.read_unsigned s pos in
    Event.Tab_closed { time; tab }
  | '\004' ->
    let time = V.read_signed s pos in
    let bookmark_id = V.read_unsigned s pos in
    let visit_id = V.read_unsigned s pos in
    let url = read_url s pos in
    let title = C.read_string s pos in
    Event.Bookmark_added { time; bookmark_id; visit_id; url; title }
  | '\005' ->
    let time = V.read_signed s pos in
    let search_id = V.read_unsigned s pos in
    let query = C.read_string s pos in
    let serp_visit = V.read_unsigned s pos in
    Event.Search { time; search_id; query; serp_visit }
  | '\006' ->
    let time = V.read_signed s pos in
    let download_id = V.read_unsigned s pos in
    let visit_id = V.read_unsigned s pos in
    let source_visit = V.read_unsigned s pos in
    let url = read_url s pos in
    let target_path = C.read_string s pos in
    Event.Download_started { time; download_id; visit_id; source_visit; url; target_path }
  | '\007' ->
    let time = V.read_signed s pos in
    let form_id = V.read_unsigned s pos in
    let source_visit = V.read_unsigned s pos in
    let result_visit = V.read_unsigned s pos in
    let n = V.read_unsigned s pos in
    let fields =
      List.init n (fun _ ->
          let k = C.read_string s pos in
          let v = C.read_string s pos in
          (k, v))
    in
    Event.Form_submitted { time; form_id; source_visit; result_visit; fields }
  | c -> Relstore.Errors.corrupt "event: unknown tag %d" (Char.code c)

let to_bytes events =
  let buf = Buffer.create 4096 in
  let scratch = Buffer.create 128 in
  Buffer.add_string buf magic_v2;
  List.iter
    (fun event ->
      Buffer.clear scratch;
      encode_event scratch event;
      C.write_frame buf (Buffer.contents scratch))
    events;
  Buffer.contents buf

let to_bytes_v1 events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic_v1;
  List.iter (encode_event buf) events;
  Buffer.contents buf

let of_bytes ?(tolerate_truncation = true) s =
  let decode_one_v2 s pos =
    let payload = C.read_frame s pos in
    let p = ref 0 in
    let event = decode_event payload p in
    if !p <> String.length payload then
      Relstore.Errors.corrupt "event log: %d trailing bytes inside frame"
        (String.length payload - !p);
    event
  in
  let decode_one =
    match format_version s with
    | Some 2 -> decode_one_v2
    | Some 1 -> decode_event
    | _ -> Relstore.Errors.corrupt "event log: bad magic"
  in
  let pos = ref 9 (* both magics are 9 bytes *) in
  let events = ref [] in
  (try
     while !pos < String.length s do
       let start = !pos in
       match decode_one s pos with
       | event -> events := event :: !events
       | exception Relstore.Errors.Corrupt _ when tolerate_truncation ->
         pos := start;
         raise Exit
     done
   with Exit -> ());
  List.rev !events

let save ~path events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes events))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_bytes (really_input_string ic len))

let replay events consumers =
  List.iter (fun event -> List.iter (fun consume -> consume event) consumers) events
