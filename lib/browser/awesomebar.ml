type t = {
  places : Places_db.t;
  mutable cache : Places_db.place list;
  (* moz_places epoch the snapshot was built at: [suggest] rebuilds
     whenever the store has moved on, so suggestions can never be
     served from a stale snapshot. *)
  mutable cache_epoch : int;
}

type suggestion = {
  place_id : int;
  url : string;
  title : string;
  score : float;
  adaptive : bool;
}

let load places =
  List.filter (fun (p : Places_db.place) -> not p.Places_db.hidden) (Places_db.places places)

let build places = { places; cache = load places; cache_epoch = Places_db.places_epoch places }

let refresh t =
  t.cache <- load t.places;
  t.cache_epoch <- Places_db.places_epoch t.places

let ensure_fresh t = if Places_db.places_epoch t.places <> t.cache_epoch then refresh t

let matches ~needle (p : Places_db.place) =
  let needle = String.lowercase_ascii needle in
  Provkit_util.Strutil.contains_substring ~needle (String.lowercase_ascii p.Places_db.url)
  || Provkit_util.Strutil.contains_substring ~needle (String.lowercase_ascii p.Places_db.title)

(* Adaptive hits: input-history rows whose stored input starts with (or
   equals) what the user has typed so far. *)
let adaptive_scores t ~typed =
  let typed = String.lowercase_ascii typed in
  let scores = Hashtbl.create 8 in
  List.iter
    (fun (place_id, input, uses) ->
      if Provkit_util.Strutil.is_prefix ~prefix:typed (String.lowercase_ascii input) then begin
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt scores place_id) in
        Hashtbl.replace scores place_id (prev +. uses)
      end)
    (Places_db.input_history t.places);
  scores

let suggest ?(limit = 6) t typed =
  if String.trim typed = "" then []
  else begin
    ensure_fresh t;
    let adaptive = adaptive_scores t ~typed in
    let candidates = List.filter (matches ~needle:typed) t.cache in
    let scored =
      List.map
        (fun (p : Places_db.place) ->
          let bonus = Option.value ~default:0.0 (Hashtbl.find_opt adaptive p.Places_db.place_id) in
          {
            place_id = p.Places_db.place_id;
            url = p.Places_db.url;
            title = p.Places_db.title;
            (* Adaptive choices dominate; frecency orders the rest. *)
            score = (1000.0 *. bonus) +. max 0.0 p.Places_db.frecency;
            adaptive = bonus > 0.0;
          })
        candidates
    in
    List.filteri
      (fun i _ -> i < limit)
      (List.sort
         (fun a b ->
           let c = Float.compare b.score a.score in
           if c <> 0 then c else Int.compare a.place_id b.place_id)
         scored)
  end

let accept t ~input ~place_id =
  Places_db.record_input_choice t.places ~place_id ~input
