(** The baseline "smart location bar" (§1): history-search-based
    autocompletion as Firefox 3 shipped it.

    Suggestions are non-hidden places whose URL or title contains the
    typed string (case-insensitive), ranked by the adaptive input
    history first — places the user previously picked for this input —
    then by frecency.  This is the feature whose heavy use, the paper
    notes ironically, makes Firefox's own metadata *sparser* (§3.2);
    the provenance-aware counterpart is {!Core.Suggest}. *)

type t

type suggestion = {
  place_id : int;
  url : string;
  title : string;
  score : float;
  adaptive : bool;  (** matched through input history *)
}

val build : Places_db.t -> t

val refresh : t -> unit
(** Force a snapshot rebuild.  Normally unnecessary: {!suggest}
    validates the snapshot against {!Places_db.places_epoch} and
    rebuilds by itself when the store has changed. *)

val suggest : ?limit:int -> t -> string -> suggestion list
(** Suggestions for the typed string ([limit] defaults to 6, like the
    awesome bar's dropdown).  Empty input yields nothing.  Always
    reflects the current store: a stale snapshot (the store mutated
    since it was built) is rebuilt before matching. *)

val accept : t -> input:string -> place_id:int -> unit
(** Record that the user picked a suggestion: future [suggest] calls for
    the same (or extending) input rank it adaptively. *)
