(** Binary persistence for browser event streams.

    Recording the raw event stream once and replaying it into different
    consumers is how the ablation experiments compare captures on
    identical browsing; this codec makes such traces portable files.
    The format is deterministic and self-delimiting; decoding tolerates
    a damaged tail (crash semantics identical to {!Core.Prov_log}).
    Storage format v2 checksums every event frame (CRC-32) so that a
    flipped byte or torn write anywhere is detected and decoding stops
    at the last verified event; v1 traces still load. *)

val encode_event : Buffer.t -> Event.t -> unit
val decode_event : string -> int ref -> Event.t
(** Raises {!Relstore.Errors.Corrupt} on malformed input. *)

val format_version : string -> int option
(** [Some 1] / [Some 2] from the magic, [None] otherwise. *)

val to_bytes : Event.t list -> string
(** The v2 (framed, checksummed) image. *)

val to_bytes_v1 : Event.t list -> string
(** The legacy unframed image, kept for overhead measurement and the
    compatibility tests. *)

val of_bytes : ?tolerate_truncation:bool -> string -> Event.t list
(** Accepts v1 and v2. [tolerate_truncation] defaults to true: the scan
    ends cleanly at the first record that fails verification. *)

val save : path:string -> Event.t list -> unit
val load : path:string -> Event.t list

val replay : Event.t list -> (Event.t -> unit) list -> unit
(** Feed every event to every consumer, in order — e.g. a fresh
    [Places_db.apply_event] and a [Core.Capture.observer]. *)
