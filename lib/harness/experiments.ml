module Prng = Provkit_util.Prng
module Stats = Provkit_util.Stats
module Timing = Provkit_util.Timing
module Web = Webmodel.Web_graph
module UM = Browser.User_model

let take n l = List.filteri (fun i _ -> i < n) l

let fmt_int = string_of_int

let summarize_ms samples =
  match samples with
  | [] -> ("-", "-", "-", "-", "-")
  | _ ->
    let s = Stats.summarize samples in
    ( Report.fmt_ms s.Stats.p50,
      Report.fmt_ms s.Stats.p90,
      Report.fmt_ms s.Stats.p99,
      Report.fmt_ms s.Stats.max,
      Report.fmt_pct
        (float_of_int (List.length (List.filter (fun ms -> ms < 200.0) samples))
        /. float_of_int (List.length samples)) )

(* ------------------------------------------------------------------ *)
(* E1: history scale                                                    *)
(* ------------------------------------------------------------------ *)

let e1_history_scale (ds : Dataset.t) =
  let store = Dataset.store ds in
  let stats = Core.Prov_store.stats store in
  let places = Dataset.places ds in
  let days = ds.Dataset.trace.UM.span_days in
  let nodes = stats.Core.Prov_store.nodes_total in
  let rows =
    [
      [ "simulated days"; fmt_int days ];
      [ "user actions"; fmt_int ds.Dataset.trace.UM.total_actions ];
      [ "searches"; fmt_int (List.length ds.Dataset.trace.UM.searches) ];
      [ "downloads"; fmt_int (List.length ds.Dataset.trace.UM.downloads) ];
      [ "places (urls)"; fmt_int (Browser.Places_db.place_count places) ];
      [ "places visits"; fmt_int (Browser.Places_db.visit_count places) ];
      [ "provenance nodes"; fmt_int nodes ];
      [ "provenance edges"; fmt_int stats.Core.Prov_store.edges_total ];
      [ "nodes per day"; Printf.sprintf "%.0f" (float_of_int nodes /. float_of_int days) ];
    ]
    @ List.map
        (fun (k, n) -> [ "  node kind " ^ k; fmt_int n ])
        stats.Core.Prov_store.nodes_by_kind
  in
  {
    Report.id = "E1-history-scale";
    title = "History graph scale after simulated browsing";
    paper_claim =
      "\"one author's history has accumulated more than 25,000 nodes over the past 79 days\" (S3)";
    header = [ "metric"; "value" ];
    rows;
    notes =
      [
        Printf.sprintf "claim reproduced: %d nodes over %d days (paper: >25,000 over 79)"
          nodes days;
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2: storage overhead                                                 *)
(* ------------------------------------------------------------------ *)

let e2_storage_overhead (ds : Dataset.t) =
  let places_db = Browser.Places_db.database (Dataset.places ds) in
  let prov_db = Core.Prov_schema.to_database (Dataset.store ds) in
  let p = Relstore.Database.total_size places_db in
  let v = Relstore.Database.total_size prov_db in
  let overhead = (float_of_int v /. float_of_int p) -. 1.0 in
  let breakdown name db =
    List.map
      (fun b ->
        [
          name;
          b.Relstore.Database.table_name;
          fmt_int b.Relstore.Database.rows;
          Report.fmt_bytes b.Relstore.Database.data_bytes;
          Report.fmt_bytes b.Relstore.Database.index_bytes;
        ])
      (Relstore.Database.size_breakdown db)
  in
  let rows =
    breakdown "places" places_db
    @ breakdown "provenance" prov_db
    @ [
        [ "places"; "TOTAL"; ""; Report.fmt_bytes p; "" ];
        [ "provenance"; "TOTAL"; ""; Report.fmt_bytes v; "" ];
      ]
  in
  {
    Report.id = "E2-storage-overhead";
    title = "Provenance schema size vs the Places baseline";
    paper_claim =
      "\"total storage overhead of this schema over Places is 39.5%, ... less than 5MB\" (S4)";
    header = [ "database"; "table"; "rows"; "data"; "indexes" ];
    rows;
    notes =
      [
        Printf.sprintf "measured overhead: %s (paper: 39.5%%)" (Report.fmt_pct overhead);
        Printf.sprintf "absolute provenance store size: %s (paper: <5MB)" (Report.fmt_bytes v);
      ];
  }

(* ------------------------------------------------------------------ *)
(* E3: query latency                                                    *)
(* ------------------------------------------------------------------ *)

let sample_queries (ds : Dataset.t) ~n rng =
  let from_searches =
    List.map (fun (e : UM.search_episode) -> e.UM.query) ds.Dataset.trace.UM.searches
  in
  let topic_names =
    List.init (Web.topic_count ds.Dataset.web) (fun i ->
        Webmodel.Topic.name (Web.topic ds.Dataset.web i))
  in
  let pool = Array.of_list (from_searches @ topic_names) in
  if Array.length pool = 0 then []
  else List.init n (fun _ -> Prng.pick rng pool)

let download_nodes (ds : Dataset.t) =
  List.filter_map
    (fun (d : UM.download_episode) ->
      Core.Prov_store.download_node (Dataset.store ds) d.UM.download_id)
    ds.Dataset.trace.UM.downloads

let e3_query_latency ?(samples = 120) (ds : Dataset.t) =
  let rng = Prng.create (ds.Dataset.seed + 31) in
  let index = Core.Api.text_index ds.Dataset.api in
  let time_index = Dataset.time_index ds in
  let store = Dataset.store ds in
  let queries = sample_queries ds ~n:samples rng in
  let contextual_ms =
    List.map
      (fun q -> snd (Timing.time_ms (fun () -> Core.Contextual_search.search index q)))
      queries
  in
  let personalize_ms =
    List.map
      (fun q -> snd (Timing.time_ms (fun () -> Core.Personalize.expand index q)))
      (take (samples / 2) queries)
  in
  let contexts =
    match ds.Dataset.trace.UM.duals with
    | [] -> List.map (fun q -> (q, "travel")) (take 20 queries)
    | duals ->
      List.map
        (fun (d : UM.dual_episode) ->
          (Webmodel.Topic.name (Web.topic ds.Dataset.web d.UM.focus_topic), d.UM.other_term))
        duals
  in
  let time_ms =
    List.map
      (fun (q, c) ->
        snd
          (Timing.time_ms (fun () ->
               Core.Time_search.search index time_index ~query:q ~context:c)))
      contexts
  in
  let dls = take samples (download_nodes ds) in
  let lineage_ms =
    List.map
      (fun node ->
        snd (Timing.time_ms (fun () -> Core.Lineage.first_recognizable store node)))
      dls
  in
  let descend_roots =
    take (samples / 2)
      (List.concat_map (fun ti -> Web.hubs_of_topic ds.Dataset.web ti)
         (List.init (Web.topic_count ds.Dataset.web) Fun.id))
  in
  let descend_ms =
    List.filter_map
      (fun hub ->
        match Dataset.page_node ds hub with
        | None -> None
        | Some node ->
          Some (snd (Timing.time_ms (fun () -> Core.Lineage.downloads_descending store node))))
      descend_roots
  in
  (* Bounded runs: the paper's "can be bound to that time" mechanism. *)
  let budget = Core.Query_budget.paper_default in
  let bounded =
    List.map
      (fun q ->
        let r = Core.Contextual_search.search ~budget index q in
        (r.Core.Contextual_search.elapsed_ms, r.Core.Contextual_search.truncated))
      queries
  in
  let bounded_ms = List.map fst bounded in
  let truncation_rate =
    float_of_int (List.length (List.filter snd bounded))
    /. float_of_int (max 1 (List.length bounded))
  in
  let row name samples =
    let p50, p90, p99, mx, under = summarize_ms samples in
    [ name; fmt_int (List.length samples); p50; p90; p99; mx; under ]
  in
  {
    Report.id = "E3-query-latency";
    title = "Use-case query latency on the full history";
    paper_claim =
      "\"These queries complete in less than 200ms in the majority of cases and can be bound to that time in the remaining cases\" (S4)";
    header = [ "query"; "n"; "p50"; "p90"; "p99"; "max"; "<200ms" ];
    rows =
      [
        row "contextual history search" contextual_ms;
        row "personalized web search" personalize_ms;
        row "time-contextual search" time_ms;
        row "download lineage (ancestors)" lineage_ms;
        row "downloads-descending" descend_ms;
        row "contextual (200ms budget)" bounded_ms;
      ];
    notes =
      [
        Printf.sprintf "bounded contextual runs truncated in %s of cases"
          (Report.fmt_pct truncation_rate);
      ];
  }

(* ------------------------------------------------------------------ *)
(* E4: contextual history search quality                                *)
(* ------------------------------------------------------------------ *)

type e4_episode = {
  query : string;
  target_node : int;  (* page node in the full store *)
  target_place : int;  (* place id in the Places baseline *)
  opaque : bool;  (* query terms absent from the target's own text *)
}

let e4_episodes ?(max_episodes = 250) (ds : Dataset.t) =
  let store = Dataset.store ds in
  take max_episodes
    (List.filter_map
       (fun (e : UM.search_episode) ->
         match e.UM.clicked_page with
         | None -> None
         | Some page -> begin
           match (Dataset.page_node ds page, Dataset.place_of_web_page ds page) with
           | Some target_node, Some place ->
             let target_terms =
               Core.Prov_node.text_terms (Core.Prov_store.node store target_node)
             in
             let query_terms = Textindex.Tokenizer.terms e.UM.query in
             let opaque =
               query_terms <> []
               && not (List.exists (fun t -> List.mem t target_terms) query_terms)
             in
             Some
               {
                 query = e.UM.query;
                 target_node;
                 target_place = place.Browser.Places_db.place_id;
                 opaque;
               }
           | _ -> None
         end)
       ds.Dataset.trace.UM.searches)

let quality_metrics ranks =
  (Core.Metrics.mrr ranks, Core.Metrics.hit_at 1 ranks, Core.Metrics.hit_at 5 ranks)

let e4_row name ranks =
  let mrr, h1, h5 = quality_metrics ranks in
  [ name; fmt_int (List.length ranks); Report.fmt_f mrr; Report.fmt_pct h1; Report.fmt_pct h5 ]

let e4_contextual_quality ?(max_episodes = 250) (ds : Dataset.t) =
  let episodes = e4_episodes ~max_episodes ds in
  let index = Core.Api.text_index ds.Dataset.api in
  let baseline = Browser.History_search.build (Dataset.places ds) in
  let baseline_rank ep =
    Core.Metrics.rank_of ~equal:Int.equal ep.target_place
      (List.map
         (fun (r : Browser.History_search.result) -> r.Browser.History_search.place_id)
         (Browser.History_search.search ~limit:10 baseline ep.query))
  in
  let contextual_rank ep =
    let resp = Core.Contextual_search.search ~limit:10 index ep.query in
    Core.Metrics.rank_of ~equal:Int.equal ep.target_node
      (List.map (fun r -> r.Core.Contextual_search.page) resp.Core.Contextual_search.results)
  in
  let opaque = List.filter (fun ep -> ep.opaque) episodes in
  let rows =
    [
      e4_row "textual baseline (all)" (List.map baseline_rank episodes);
      e4_row "provenance contextual (all)" (List.map contextual_rank episodes);
      e4_row "textual baseline (opaque)" (List.map baseline_rank opaque);
      e4_row "provenance contextual (opaque)" (List.map contextual_rank opaque);
    ]
  in
  {
    Report.id = "E4-contextual-quality";
    title = "Finding the page the user clicked after a search";
    paper_claim =
      "\"history search for rosebud ... expects ... Citizen Kane, because she found Citizen Kane with that search term\"; textual search \"will not return Citizen Kane\" (S2.1)";
    header = [ "system"; "episodes"; "MRR"; "hit@1"; "hit@5" ];
    rows;
    notes =
      [
        "opaque = the clicked page shares no text with the query (the pure rosebud case)";
        "each episode asks: searching your history later for the same terms, does the page you actually clicked come back?";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E5: personalizing web search                                         *)
(* ------------------------------------------------------------------ *)

let e5_personalization ?(max_episodes = 100) (ds : Dataset.t) =
  let index = Core.Api.text_index ds.Dataset.api in
  let ambiguities = Web.ambiguities ds.Dataset.web in
  let episodes =
    take max_episodes
      (List.filter (fun (e : UM.search_episode) -> e.UM.ambiguous) ds.Dataset.trace.UM.searches)
  in
  let sense_pages (e : UM.search_episode) =
    match List.find_opt (fun a -> a.Web.term = e.UM.query) ambiguities with
    | None -> []
    | Some a ->
      if e.UM.intended_topic = a.Web.topic_a then a.Web.pages_a
      else if e.UM.intended_topic = a.Web.topic_b then a.Web.pages_b
      else []
  in
  let rank_of_sense query pages =
    let results =
      List.map
        (fun (r : Webmodel.Search_engine.result) -> r.Webmodel.Search_engine.page)
        (Webmodel.Search_engine.search ~limit:10 ds.Dataset.search_engine query)
    in
    let ranks = List.filter_map (fun p -> Core.Metrics.rank_of ~equal:Int.equal p results) pages in
    match ranks with [] -> None | _ -> Some (List.fold_left min max_int ranks)
  in
  let evaluated =
    List.filter_map
      (fun e ->
        match sense_pages e with
        | [] -> None
        | pages ->
          let raw = rank_of_sense e.UM.query pages in
          let expansion = Core.Personalize.expand index e.UM.query in
          let expanded = rank_of_sense expansion.Core.Personalize.expanded pages in
          Some (e.UM.query, raw, expanded, expansion.Core.Personalize.added_terms))
      episodes
  in
  let raw_ranks = List.map (fun (_, r, _, _) -> r) evaluated in
  let exp_ranks = List.map (fun (_, _, r, _) -> r) evaluated in
  let sample_terms =
    match evaluated with
    | (_, _, _, terms) :: _ -> String.concat ", " (List.map fst terms)
    | [] -> "-"
  in
  {
    Report.id = "E5-personalization-quality";
    title = "Rank of the user's intended sense in web search";
    paper_claim =
      "\"it could supplement a rosebud web search with flower as an additional search term\" ... \"without giving information about the user to the search engine\" (S2.2)";
    header = [ "system"; "queries"; "MRR"; "hit@1"; "hit@5" ];
    rows =
      [ e4_row "raw ambiguous query" raw_ranks; e4_row "provenance-expanded query" exp_ranks ];
    notes =
      [
        Printf.sprintf "example expansion terms chosen from history: %s" sample_terms;
        "the search engine sees only the expanded string, never the history (privacy argument of S2.2)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E6: time-contextual search                                           *)
(* ------------------------------------------------------------------ *)

let e6_time_context (ds : Dataset.t) =
  let index = Core.Api.text_index ds.Dataset.api in
  let time_index = Dataset.time_index ds in
  let episodes =
    List.filter_map
      (fun (d : UM.dual_episode) ->
        match Dataset.page_node ds d.UM.focus_page with
        | None -> None
        | Some target ->
          Some
            ( Webmodel.Topic.name (Web.topic ds.Dataset.web d.UM.focus_topic),
              d.UM.other_term,
              target ))
      ds.Dataset.trace.UM.duals
  in
  let plain_rank (query, _, target) =
    Core.Metrics.rank_of ~equal:Int.equal target
      (List.map
         (fun (r : Core.Contextual_search.result) -> r.Core.Contextual_search.page)
         (Core.Contextual_search.textual_only ~limit:10 index query))
  in
  let time_rank (query, context, target) =
    let resp = Core.Time_search.search ~limit:10 index time_index ~query ~context in
    Core.Metrics.rank_of ~equal:Int.equal target
      (List.map (fun (r : Core.Time_search.result) -> r.Core.Time_search.page) resp.Core.Time_search.results)
  in
  {
    Report.id = "E6-time-context-quality";
    title = "\"wine associated with plane tickets\": narrowing a broad search";
    paper_claim =
      "\"A history search for 'wine associated with plane tickets' is both natural to the user and likely to return the desired result\" (S2.3)";
    header = [ "system"; "episodes"; "MRR"; "hit@1"; "hit@5" ];
    rows =
      [
        e4_row "plain textual search (topic only)" (List.map plain_rank episodes);
        e4_row "time-contextual search" (List.map time_rank episodes);
      ];
    notes =
      [
        "episodes are dual-topic sessions: reading topic A in one tab while searching topic B in another";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E7: download lineage                                                 *)
(* ------------------------------------------------------------------ *)

let e7_download_lineage ?(max_episodes = 150) (ds : Dataset.t) =
  let store = Dataset.store ds in
  let episodes = take max_episodes ds.Dataset.trace.UM.downloads in
  let lineage_results =
    List.filter_map
      (fun (d : UM.download_episode) ->
        match Core.Prov_store.download_node store d.UM.download_id with
        | None -> None
        | Some node -> Some (d, node, Core.Lineage.first_recognizable store node))
      episodes
  in
  let found = List.filter (fun (_, _, o) -> o <> None) lineage_results in
  let distances =
    List.filter_map
      (fun (_, _, o) -> Option.map (fun (r : Core.Lineage.origin) -> float_of_int r.Core.Lineage.distance) o)
      lineage_results
  in
  let descend_recall =
    List.map
      (fun (d, node, _) ->
        match Dataset.page_node ds d.UM.host_page with
        | None -> 0.0
        | Some host ->
          let r = Core.Lineage.downloads_descending store host in
          if List.mem node r.Core.Lineage.downloads then 1.0 else 0.0)
      lineage_results
  in
  let mean l = Stats.mean l in
  let dist_stats =
    match distances with
    | [] -> "-"
    | _ ->
      let s = Stats.summarize distances in
      Printf.sprintf "mean %.1f / p90 %.0f / max %.0f" s.Stats.mean s.Stats.p90 s.Stats.max
  in
  {
    Report.id = "E7-download-lineage";
    title = "First recognizable ancestor and descendant downloads";
    paper_claim =
      "\"Find the first ancestor of this file that the user is likely to recognize\"; \"Find all descendants of this page that are downloads\" (S2.4)";
    header = [ "metric"; "value" ];
    rows =
      [
        [ "downloads evaluated"; fmt_int (List.length lineage_results) ];
        [
          "recognizable origin found";
          Report.fmt_pct
            (float_of_int (List.length found) /. float_of_int (max 1 (List.length lineage_results)));
        ];
        [ "hops to origin"; dist_stats ];
        [ "descendant query recalls the download"; Report.fmt_pct (mean descend_recall) ];
      ];
    notes =
      [
        "recognizable = page visited >=3 times, ever typed, a bookmark, or one of the user's own search terms";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E8: scaling sweep                                                    *)
(* ------------------------------------------------------------------ *)

let e8_scaling ?(days_list = [ 10; 20; 40; 79 ]) ~seed () =
  let rows =
    List.map
      (fun days ->
        let ds = Dataset.with_days ~seed days in
        let store = Dataset.store ds in
        let index = Core.Api.text_index ds.Dataset.api in
        let rng = Prng.create (seed + days) in
        let queries = sample_queries ds ~n:12 rng in
        let ctx_ms =
          List.map
            (fun q -> snd (Timing.time_ms (fun () -> Core.Contextual_search.search index q)))
            queries
        in
        let lineage_ms =
          List.map
            (fun node ->
              snd (Timing.time_ms (fun () -> Core.Lineage.first_recognizable store node)))
            (take 20 (download_nodes ds))
        in
        let prov_bytes =
          Relstore.Database.total_size (Core.Prov_schema.to_database store)
        in
        [
          fmt_int days;
          fmt_int (Core.Prov_store.node_count store);
          fmt_int (Core.Prov_store.edge_count store);
          Report.fmt_bytes prov_bytes;
          (match ctx_ms with [] -> "-" | _ -> Report.fmt_ms (Stats.percentile 50.0 ctx_ms));
          (match lineage_ms with [] -> "-" | _ -> Report.fmt_ms (Stats.percentile 50.0 lineage_ms));
        ])
      days_list
  in
  {
    Report.id = "E8-scaling-sweep";
    title = "Store size and query latency vs history size";
    paper_claim =
      "\"interesting graph algorithms on browser metadata are feasible for browsers to compute locally\" (S4)";
    header = [ "days"; "nodes"; "edges"; "store size"; "contextual p50"; "lineage p50" ];
    rows;
    notes = [];
  }

(* ------------------------------------------------------------------ *)
(* E9: versioning ablation                                              *)
(* ------------------------------------------------------------------ *)

let e9_versioning (ds : Dataset.t) =
  let c = Core.Versioning.compare_strategies (Dataset.store ds) in
  {
    Report.id = "E9-versioning-ablation";
    title = "Visit-instance versioning vs page nodes with time-stamped edges";
    paper_claim =
      "\"Versioning nodes (pages) is a common cycle-breaking technique ... However, time stamping edges (links) can also break cycles\" (S3.1)";
    header = [ "strategy"; "nodes"; "edges"; "acyclic"; "store size" ];
    rows =
      [
        [
          "visit instances (PASS-style)";
          fmt_int c.Core.Versioning.versioned_nodes;
          fmt_int c.Core.Versioning.versioned_edges;
          string_of_bool c.Core.Versioning.versioned_acyclic;
          Report.fmt_bytes c.Core.Versioning.versioned_bytes;
        ];
        [
          "page projection (timestamped edges)";
          fmt_int c.Core.Versioning.projected_nodes;
          fmt_int c.Core.Versioning.projected_edges;
          string_of_bool c.Core.Versioning.projected_acyclic;
          Report.fmt_bytes c.Core.Versioning.projected_bytes;
        ];
      ];
    notes =
      [
        "the projection stays cyclic (the S3.1 problem) but is far smaller; the versioned store buys acyclicity with instance nodes";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E10: redirect / time edge ablation                                   *)
(* ------------------------------------------------------------------ *)

let e10_redirect_ablation ?(max_episodes = 150) (ds : Dataset.t) =
  let episodes = e4_episodes ~max_episodes ds in
  let index = Core.Api.text_index ds.Dataset.api in
  let rank_with config ep =
    let resp = Core.Contextual_search.search ~config ~limit:10 index ep.query in
    Core.Metrics.rank_of ~equal:Int.equal ep.target_node
      (List.map (fun r -> r.Core.Contextual_search.page) resp.Core.Contextual_search.results)
  in
  let base = Core.Contextual_search.default_config in
  let variants =
    [
      ("redirect/embed followed (default)", base);
      ( "redirect/embed excluded",
        { base with Core.Contextual_search.follow_non_user_edges = false } );
      ("time edges added", { base with Core.Contextual_search.follow_time_edges = true });
      ( "time edges only causal off",
        {
          base with
          Core.Contextual_search.follow_non_user_edges = false;
          follow_time_edges = true;
        } );
    ]
  in
  let opaque = List.filter (fun ep -> ep.opaque) episodes in
  {
    Report.id = "E10-redirect-ablation";
    title = "Edge-class choices in contextual expansion";
    paper_claim =
      "\"Redirects and inner content are a special case ... personalization algorithms may wish to exclude or otherwise ignore them\" (S3.2)";
    header = [ "variant"; "episodes"; "MRR"; "hit@1"; "hit@5" ];
    rows =
      List.map
        (fun (name, config) -> e4_row name (List.map (rank_with config) episodes))
        variants
      @ List.map
          (fun (name, config) ->
            e4_row (name ^ " [opaque]") (List.map (rank_with config) opaque))
          variants;
    notes =
      [
        "opaque rows restrict to episodes whose target shares no text with the query (graph signal only)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E11: capture ablation                                                *)
(* ------------------------------------------------------------------ *)

let connectivity store =
  let g = Core.Prov_store.graph store in
  let displayed = ref 0 and connected = ref 0 in
  Provgraph.Digraph.iter_nodes g (fun id n ->
      if Core.Time_edges.displayed_visit n then begin
        incr displayed;
        let has_causal_in =
          List.exists
            (fun (_, (e : Core.Prov_edge.t)) -> Core.Prov_edge.is_traversal e.Core.Prov_edge.kind)
            (Provgraph.Digraph.in_edges g id)
        in
        if has_causal_in then incr connected
      end);
  if !displayed = 0 then 0.0 else float_of_int !connected /. float_of_int !displayed

let visit_components store =
  let g = Core.Prov_store.graph store in
  let visits =
    Provgraph.Digraph.filter_nodes g (fun _ n -> Core.Prov_node.is_visit n)
  in
  let visit_set = Hashtbl.create (List.length visits) in
  List.iter (fun v -> Hashtbl.replace visit_set v ()) visits;
  let seen = Hashtbl.create (List.length visits) in
  let traversal_edge (e : Core.Prov_edge.t) =
    Core.Prov_edge.is_traversal e.Core.Prov_edge.kind
  in
  let components = ref 0 in
  List.iter
    (fun root ->
      if not (Hashtbl.mem seen root) then begin
        incr components;
        let queue = Queue.create () in
        Queue.push root queue;
        Hashtbl.replace seen root ();
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          let neighbors =
            List.filter_map
              (fun (other, e) -> if traversal_edge e then Some other else None)
              (Provgraph.Digraph.out_edges g v @ Provgraph.Digraph.in_edges g v)
          in
          List.iter
            (fun other ->
              if Hashtbl.mem visit_set other && not (Hashtbl.mem seen other) then begin
                Hashtbl.replace seen other ();
                Queue.push other queue
              end)
            neighbors
        done
      end)
    visits;
  !components

let e11_capture_ablation ?(max_episodes = 150) (ds : Dataset.t) =
  let full_store = Dataset.store ds in
  let ff_store = Core.Capture.store ds.Dataset.ff_capture in
  let episodes = take max_episodes ds.Dataset.trace.UM.downloads in
  (* What richer capture buys is *reach*: how much of the causal past of
     a download is still connected once Firefox drops the typed/bookmark
     relationships.  For each download, walk its ancestry and check
     whether it still reaches the session's entry page. *)
  let eval_store store =
    let per_download =
      List.filter_map
        (fun (d : UM.download_episode) ->
          match Core.Prov_store.download_node store d.UM.download_id with
          | None -> None
          | Some node ->
            let anc = Core.Lineage.ancestors store node in
            let ancestors = List.map fst anc.Core.Lineage.ancestors in
            let entry_url =
              Webmodel.Url.to_string
                (Web.page ds.Dataset.web d.UM.session_entry_page).Webmodel.Page_content.url
            in
            let reaches_entry =
              match Core.Prov_store.page_of_url store entry_url with
              | None -> false
              | Some entry -> List.mem entry ancestors
            in
            Some (List.length ancestors, reaches_entry))
        episodes
    in
    let counts = List.map (fun (n, _) -> float_of_int n) per_download in
    let reach =
      float_of_int (List.length (List.filter snd per_download))
      /. float_of_int (max 1 (List.length per_download))
    in
    (Stats.mean counts, reach)
  in
  let row name store =
    let mean_ancestors, reach = eval_store store in
    [
      name;
      fmt_int (Core.Prov_store.node_count store);
      fmt_int (Core.Prov_store.edge_count store);
      Report.fmt_pct (connectivity store);
      fmt_int (visit_components store);
      Printf.sprintf "%.0f" mean_ancestors;
      Report.fmt_pct reach;
    ]
  in
  {
    Report.id = "E11-capture-ablation";
    title = "Full provenance capture vs Firefox-fidelity capture";
    paper_claim =
      "\"if a user often takes advantage of advanced navigation features ... she will generate sparsely connected metadata\" (S3.2)";
    header =
      [
        "capture"; "nodes"; "edges"; "visits w/ causal parent"; "components";
        "ancestors/download"; "lineage reaches session entry";
      ];
    rows = [ row "full provenance" full_store; row "firefox-fidelity" ff_store ];
    notes =
      [
        "both captures observed the identical event stream; the Firefox one drops typed/bookmark/search/form/close/time relationships";
        "download ancestry that cannot cross a typed navigation is exactly the forensics gap of S2.4";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12: ranking-algorithm ablation                                      *)
(* ------------------------------------------------------------------ *)

let e12_algorithm_ablation ?(max_episodes = 120) (ds : Dataset.t) =
  let episodes = e4_episodes ~max_episodes ds in
  let index = Core.Api.text_index ds.Dataset.api in
  let normalized =
    { Core.Contextual_search.default_config with Core.Contextual_search.degree_normalize = true }
  in
  let systems =
    [
      ("decayed expansion (Shah-style)",
        fun q -> Core.Contextual_search.search ~limit:10 index q);
      ("decayed expansion, degree-normalized",
        fun q -> Core.Contextual_search.search ~config:normalized ~limit:10 index q);
      ("personalized PageRank",
        fun q -> Core.Contextual_search.search_pagerank ~limit:10 index q);
      ("HITS on focused subgraph",
        fun q -> Core.Contextual_search.search_hits ~limit:10 index q);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, run) ->
        let latencies = ref [] in
        let rank ep =
          let resp, ms = Timing.time_ms (fun () -> run ep.query) in
          latencies := ms :: !latencies;
          Core.Metrics.rank_of ~equal:Int.equal ep.target_node
            (List.map
               (fun (r : Core.Contextual_search.result) -> r.Core.Contextual_search.page)
               resp.Core.Contextual_search.results)
        in
        let all = List.map rank episodes in
        let opaque =
          List.filter_map
            (fun ep -> if ep.opaque then Some (rank ep) else None)
            episodes
        in
        let mrr, h1, h5 = quality_metrics all in
        let omrr, _, oh5 = quality_metrics opaque in
        [
          [
            name;
            fmt_int (List.length all);
            Report.fmt_f mrr;
            Report.fmt_pct h1;
            Report.fmt_pct h5;
            Report.fmt_f omrr;
            Report.fmt_pct oh5;
            (match !latencies with [] -> "-" | l -> Report.fmt_ms (Stats.percentile 50.0 l));
          ];
        ])
      systems
  in
  {
    Report.id = "E12-algorithm-ablation";
    title = "Graph-ranking algorithms for contextual history search";
    paper_claim =
      "\"our purpose at this time is not to find the best algorithms for browser provenance, but rather to show such algorithms are feasible\"; \"We must now develop more intelligent algorithms\" (S4)";
    header =
      [ "algorithm"; "episodes"; "MRR"; "hit@1"; "hit@5"; "MRR(opaque)"; "hit@5(opaque)"; "p50" ];
    rows;
    notes = [];
  }

(* ------------------------------------------------------------------ *)
(* E13: the tree structure of versioned history (S3.1)                  *)
(* ------------------------------------------------------------------ *)

let e13_history_tree (ds : Dataset.t) =
  let store = Dataset.store ds in
  let tree, build_ms = Timing.time_ms (fun () -> Core.History_tree.build store) in
  let c = Core.History_tree.storage_comparison store tree in
  let depths =
    List.map
      (fun root ->
        List.fold_left
          (fun acc v -> max acc (Core.History_tree.depth tree v))
          0
          (Core.History_tree.subtree tree root))
      (Core.History_tree.roots tree)
  in
  let max_depth = List.fold_left max 0 depths in
  {
    Report.id = "E13-history-tree";
    title = "Versioned navigation history forms a forest (S3.1)";
    paper_claim =
      "\"if both pages and links are versioned as new instances, and only link relationships are considered, the result is a tree structure ... we believe it could also be used for efficient storage\" (S3.1)";
    header = [ "metric"; "value" ];
    rows =
      [
        [ "displayed visits"; fmt_int c.Core.History_tree.visits ];
        [ "is a forest"; string_of_bool (Core.History_tree.is_forest tree) ];
        [ "sessions (roots)"; fmt_int (List.length (Core.History_tree.roots tree)) ];
        [ "max navigation depth"; fmt_int max_depth ];
        [ "parent-pointer encoding"; Report.fmt_bytes c.Core.History_tree.parent_pointer_bytes ];
        [ "edge-table encoding"; Report.fmt_bytes c.Core.History_tree.edge_table_bytes ];
        [
          "tree encoding saves";
          Report.fmt_pct
            (1.0
            -. (float_of_int c.Core.History_tree.parent_pointer_bytes
               /. float_of_int (max 1 c.Core.History_tree.edge_table_bytes)));
        ];
        [ "build time"; Report.fmt_ms build_ms ];
      ];
    notes = [];
  }

(* ------------------------------------------------------------------ *)
(* E14: incremental persistence                                         *)
(* ------------------------------------------------------------------ *)

let e14_incremental_persistence (ds : Dataset.t) =
  (* Re-run the dataset's recorded event stream through a fresh capture
     whose store mirrors every mutation into an append-only journal —
     the write path a real browser would use. *)
  let capture, feed = Core.Capture.observer () in
  let journal = Core.Prov_log.create () in
  Core.Prov_store.set_observer (Core.Capture.store capture) (fun m ->
      Core.Prov_log.append journal
        (match m with
        | Core.Prov_store.M_node n -> Core.Prov_log.Add_node n
        | Core.Prov_store.M_edge (src, dst, edge) -> Core.Prov_log.Add_edge { src; dst; edge }
        | Core.Prov_store.M_close (id, time) -> Core.Prov_log.Close_node { id; time }));
  let events = Browser.Engine.event_log ds.Dataset.engine in
  let (), log_ms = Timing.time_ms (fun () -> List.iter feed events) in
  let store = Core.Capture.store capture in
  let snapshot, snapshot_ms =
    Timing.time_ms (fun () -> Relstore.Database.to_bytes (Core.Prov_schema.to_database store))
  in
  let replayed, replay_ms = Timing.time_ms (fun () -> Core.Prov_log.replay journal) in
  (* Crash tolerance: drop the journal's final bytes mid-record. *)
  let bytes = Core.Prov_log.to_bytes journal in
  let truncated_journal =
    Core.Prov_log.of_bytes (String.sub bytes 0 (String.length bytes - 3))
  in
  let recovered = Core.Prov_log.replay truncated_journal in
  let ops = Core.Prov_log.length journal in
  {
    Report.id = "E14-incremental-persistence";
    title = "Append-only provenance journal vs full snapshot rewrite";
    paper_claim =
      "\"We have implemented a model browser provenance schema ... as a SQLite relational database\" (S4) - i.e. a store with cheap incremental writes";
    header = [ "metric"; "value" ];
    rows =
      [
        [ "browser events"; fmt_int (List.length events) ];
        [ "journal operations"; fmt_int ops ];
        [ "journal size"; Report.fmt_bytes (Core.Prov_log.byte_size journal) ];
        [
          "bytes per operation";
          Printf.sprintf "%.1f" (float_of_int (Core.Prov_log.byte_size journal) /. float_of_int (max 1 ops));
        ];
        [ "journal write time (all events)"; Report.fmt_ms log_ms ];
        [ "one full snapshot rewrite"; Report.fmt_ms snapshot_ms ];
        [ "snapshot size"; Report.fmt_bytes (String.length snapshot) ];
        [ "journal replay time"; Report.fmt_ms replay_ms ];
        [
          "replay reproduces store";
          string_of_bool
            (Core.Prov_store.node_count replayed = Core.Prov_store.node_count store
            && Core.Prov_store.edge_count replayed = Core.Prov_store.edge_count store);
        ];
        [
          "crash-truncated replay loses";
          Printf.sprintf "%d of %d operations (%d nodes, %d edges)"
            (ops - Core.Prov_log.length truncated_journal)
            ops
            (Core.Prov_store.node_count store - Core.Prov_store.node_count recovered)
            (Core.Prov_store.edge_count store - Core.Prov_store.edge_count recovered);
        ];
      ];
    notes =
      [
        "snapshotting after every event would cost (events x snapshot time); the journal costs microseconds per event";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E16: durability under crashes and corruption                         *)
(* ------------------------------------------------------------------ *)

(* E14 shows the journal is cheap; this experiment shows it is *safe*:
   what does v2 framing cost over v1, and what does recovery salvage
   when the file is cut at an arbitrary byte or a byte is flipped? *)

let is_op_prefix prefix full =
  let rec go p f =
    match (p, f) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: f' -> x = y && go p' f'
  in
  go prefix full

let e16_crash_recovery ?(crash_points = 400) ?(flip_points = 400) (ds : Dataset.t) =
  let capture, feed = Core.Capture.observer () in
  let journal = Core.Prov_log.create () in
  Core.Prov_store.set_observer (Core.Capture.store capture) (fun m ->
      Core.Prov_log.append journal (Core.Prov_log.op_of_mutation m));
  let events = Browser.Engine.event_log ds.Dataset.engine in
  List.iter feed events;
  let full_ops = Core.Prov_log.ops journal in
  let n_ops = List.length full_ops in
  let v2 = Core.Prov_log.to_bytes journal in
  let v1 = Core.Prov_log.to_bytes_v1 journal in
  let v2_len = String.length v2 and v1_len = String.length v1 in
  let overhead = (float_of_int v2_len /. float_of_int (max 1 v1_len)) -. 1.0 in
  let rng = Prng.create (ds.Dataset.seed + 16) in
  (* Crash sweep: cut the image at an arbitrary byte; the recovered op
     sequence must be a prefix of what was logged. *)
  let crash_consistent = ref 0 and ops_lost = ref [] in
  let crash_ms =
    List.map
      (fun cut ->
        let img = String.sub v2 0 cut in
        let recovered, ms =
          (* Catch-all is deliberate: a truncated v1 image can surface as
             Corrupt, Invalid_argument or Failure depending on where the
             cut landed, and this probe only asks "did it load". *)
          Timing.time_ms (fun () ->
              (try Some (Core.Prov_log.of_bytes img) with _ -> None)
              [@provlint.allow "banned-constructs"])
        in
        (match recovered with
        | Some r ->
          let rops = Core.Prov_log.ops r in
          if is_op_prefix rops full_ops then incr crash_consistent;
          ops_lost := float_of_int (n_ops - List.length rops) :: !ops_lost
        | None -> ());
        ms)
      (List.init crash_points (fun _ -> Prng.int rng (String.length v2 + 1)))
  in
  (* Flip sweep: complement one byte inside the framed region; v2 must
     either raise Corrupt or recover a strict prefix (detection = the
     damage never goes unnoticed). *)
  let flips_detected = ref 0 in
  List.iter
    (fun k ->
      let img = String.mapi (fun i c -> if i = k then Char.chr (Char.code c lxor 0xFF) else c) v2 in
      match Core.Prov_log.of_bytes img with
      | recovered ->
        let rops = Core.Prov_log.ops recovered in
        if List.length rops < n_ops && is_op_prefix rops full_ops then incr flips_detected
      | exception Relstore.Errors.Corrupt _ -> incr flips_detected)
    (List.init flip_points (fun _ -> Prng.int rng (String.length v2)));
  let lost = !ops_lost in
  {
    Report.id = "E16-crash-recovery";
    title = "Checksummed framing (v2): overhead, crash sweep, corruption detection";
    paper_claim =
      "\"We have implemented a model browser provenance schema ... as a SQLite relational database\" (S4) - durability of the incremental path is assumed; here it is tested";
    header = [ "metric"; "value" ];
    rows =
      [
        [ "journal operations"; fmt_int n_ops ];
        [ "v1 (unframed) size"; Report.fmt_bytes v1_len ];
        [ "v2 (framed) size"; Report.fmt_bytes v2_len ];
        [
          "bytes per op (v1 -> v2)";
          Printf.sprintf "%.1f -> %.1f"
            (float_of_int v1_len /. float_of_int (max 1 n_ops))
            (float_of_int v2_len /. float_of_int (max 1 n_ops));
        ];
        [ "v2 framing overhead"; Report.fmt_pct overhead ];
        [ "crash points tried"; fmt_int crash_points ];
        [
          "recovered prefix consistent";
          Report.fmt_pct (float_of_int !crash_consistent /. float_of_int (max 1 crash_points));
        ];
        [
          "ops lost at a random crash";
          (match lost with
          | [] -> "-"
          | _ ->
            let s = Stats.summarize lost in
            Printf.sprintf "mean %.1f / p90 %.0f / max %.0f of %d" s.Stats.mean s.Stats.p90
              s.Stats.max n_ops);
        ];
        [
          "recovery time (full image prefix)";
          (match crash_ms with [] -> "-" | _ -> Report.fmt_ms (Stats.percentile 50.0 crash_ms));
        ];
        [ "single-byte flips tried"; fmt_int flip_points ];
        [
          "flips detected";
          Report.fmt_pct (float_of_int !flips_detected /. float_of_int (max 1 flip_points));
        ];
      ];
    notes =
      [
        "detection = decoding raises Corrupt or stops cleanly at the last verified frame (never a garbled suffix applied)";
        "v1 can only detect a truncated tail; a mid-file flip silently corrupts every later record";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E15: heterogeneous joins vs the homogeneous graph (S3.3)             *)
(* ------------------------------------------------------------------ *)

(* Graph-side counterpart of Places_queries.bookmarks_reached_from_search:
   one lineage walk per bookmark node. *)
let graph_bookmarks_from_search store =
  let bookmarks =
    Core.Prov_store.nodes_of_kind store (fun n ->
        match n.Core.Prov_node.kind with Core.Prov_node.Bookmark _ -> true | _ -> false)
  in
  List.filter_map
    (fun b ->
      let anc = Core.Lineage.ancestors store b in
      List.find_map
        (fun (node, _) ->
          match (Core.Prov_store.node store node).Core.Prov_node.kind with
          | Core.Prov_node.Search_term { query } -> Some query
          | _ -> None)
        anc.Core.Lineage.ancestors)
    bookmarks

(* Graph-side counterpart of downloads_with_referrers: the referrer is
   one in-edge away (Download_source -> source visit -> its page). *)
let graph_downloads_with_referrer store =
  let downloads = Core.Prov_store.nodes_of_kind store Core.Prov_node.is_download in
  List.filter_map
    (fun d ->
      List.find_map
        (fun (src, (e : Core.Prov_edge.t)) ->
          if e.Core.Prov_edge.kind = Core.Prov_edge.Download_source then
            Core.Prov_store.page_of_visit store src
          else None)
        (Provgraph.Digraph.in_edges (Core.Prov_store.graph store) d))
    downloads

let graph_downloads_with_origin store =
  let downloads = Core.Prov_store.nodes_of_kind store Core.Prov_node.is_download in
  List.filter (fun d -> Core.Lineage.first_recognizable store d <> None) downloads

let e15_heterogeneous_joins (ds : Dataset.t) =
  let places = Dataset.places ds in
  let store = Dataset.store ds in
  let places_bookmarks, p_bm_ms =
    Timing.time_ms (fun () -> Browser.Places_queries.bookmarks_reached_from_search places)
  in
  let graph_bookmarks, g_bm_ms = Timing.time_ms (fun () -> graph_bookmarks_from_search store) in
  let places_found =
    List.length
      (List.filter
         (fun (b : Browser.Places_queries.bookmark_origin) ->
           b.Browser.Places_queries.reached_from_search <> None)
         places_bookmarks)
  in
  let places_downloads, p_dl_ms =
    Timing.time_ms (fun () -> Browser.Places_queries.downloads_with_referrers places)
  in
  let graph_referrers, g_ref_ms =
    Timing.time_ms (fun () -> graph_downloads_with_referrer store)
  in
  let graph_downloads, g_dl_ms = Timing.time_ms (fun () -> graph_downloads_with_origin store) in
  let places_dl_found =
    List.length
      (List.filter
         (fun (d : Browser.Places_queries.download_origin) ->
           d.Browser.Places_queries.referrer_url <> None)
         places_downloads)
  in
  let dead_places = Browser.Places_queries.dead_end_rate places in
  let dead_graph = 1.0 -. connectivity store in
  {
    Report.id = "E15-heterogeneous-joins";
    title = "Heterogeneous table joins (Places) vs one homogeneous graph";
    paper_claim =
      "\"querying a bookmark relationship may require the user to join heterogeneous tables or even databases\" (S3.3); the vision is \"a single, homogeneous provenance graph store\" (S3.4)";
    header = [ "question"; "system"; "answered"; "of"; "latency" ];
    rows =
      [
        [
          "bookmark found via which search?"; "places (5-table join)";
          fmt_int places_found; fmt_int (List.length places_bookmarks); Report.fmt_ms p_bm_ms;
        ];
        [
          "bookmark found via which search?"; "provenance graph";
          fmt_int (List.length graph_bookmarks); fmt_int (List.length places_bookmarks);
          Report.fmt_ms g_bm_ms;
        ];
        [
          "download's referrer page?"; "places (3-table join)";
          fmt_int places_dl_found; fmt_int (List.length places_downloads); Report.fmt_ms p_dl_ms;
        ];
        [
          "download's referrer page?"; "provenance graph";
          fmt_int (List.length graph_referrers); fmt_int (List.length places_downloads);
          Report.fmt_ms g_ref_ms;
        ];
        [
          "download's recognizable origin?"; "provenance graph (lineage walk)";
          fmt_int (List.length graph_downloads); fmt_int (List.length places_downloads);
          Report.fmt_ms g_dl_ms;
        ];
        [
          "dead-end visits (no causal parent)"; "places";
          Report.fmt_pct dead_places; ""; "";
        ];
        [
          "dead-end visits (no causal parent)"; "provenance graph";
          Report.fmt_pct dead_graph; ""; "";
        ];
      ];
    notes =
      [
        "the Places joins also answer *less*: they dead-end wherever Firefox dropped the relationship (typed and bookmark navigations)";
        "the recognizable-origin question has no Places formulation at all - it is the recursive forensics S2.4 says users are forced into";
      ];
  }

(* ------------------------------------------------------------------ *)

let run_all ?(quick = false) ~seed () =
  let ds = if quick then Dataset.with_days ~seed 12 else Dataset.default ~seed () in
  let samples = if quick then 20 else 120 in
  let max_episodes = if quick then 40 else 250 in
  let days_list = if quick then [ 4; 8 ] else [ 10; 20; 40; 79 ] in
  [
    e1_history_scale ds;
    e2_storage_overhead ds;
    e3_query_latency ~samples ds;
    e4_contextual_quality ~max_episodes ds;
    e5_personalization ~max_episodes:(max_episodes / 2) ds;
    e6_time_context ds;
    e7_download_lineage ~max_episodes ds;
    e8_scaling ~days_list ~seed ();
    e9_versioning ds;
    e10_redirect_ablation ~max_episodes:(max_episodes / 2) ds;
    e11_capture_ablation ~max_episodes:(max_episodes / 2) ds;
    e12_algorithm_ablation ~max_episodes:(max_episodes / 2) ds;
    e13_history_tree ds;
    e14_incremental_persistence ds;
    e15_heterogeneous_joins ds;
    e16_crash_recovery ~crash_points:(if quick then 60 else 400)
      ~flip_points:(if quick then 60 else 400) ds;
  ]
