type t = {
  id : string;
  title : string;
  paper_claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

(* Each printed report carries the cumulative instrumentation headline
   at the moment it was produced, so every number EXPERIMENTS.md quotes
   names the events/WAL/query activity that generated it.  A non-zero
   flight-recorder incident count is appended — a report produced after
   an abnormal event should say so. *)
let metrics_line () =
  if Provkit_obs.Metrics.enabled () then begin
    let head = Provkit_obs.Metrics.headline (Provkit_obs.Metrics.snapshot ()) in
    let incidents = Provkit_obs.Flight.recorded () in
    Some (if incidents > 0 then Printf.sprintf "%s incidents=%d" head incidents else head)
  end
  else None

(* Printing to stdout is this module's entire purpose — it renders the
   experiment tables EXPERIMENTS.md quotes — so the lib/-wide printf ban
   is lifted for exactly this binding. *)
let print t =
  Printf.printf "\n=== %s: %s ===\n" t.id t.title;
  Printf.printf "paper: %s\n\n" t.paper_claim;
  Provkit_util.Table_fmt.print ~header:t.header t.rows;
  List.iter (fun note -> Printf.printf "note: %s\n" note) t.notes;
  Option.iter (Printf.printf "instrumentation: %s\n") (metrics_line ());
  print_newline ()
[@@provlint.allow "banned-constructs"]

let fmt_ms ms = Printf.sprintf "%.2f ms" ms

let fmt_bytes b =
  if b >= 1_048_576 then Printf.sprintf "%.2f MB" (float_of_int b /. 1_048_576.0)
  else if b >= 1024 then Printf.sprintf "%.1f KB" (float_of_int b /. 1024.0)
  else Printf.sprintf "%d B" b

let fmt_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let fmt_f f = Printf.sprintf "%.3f" f
