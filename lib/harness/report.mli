(** Experiment reports: a paper claim, a measured table, and notes. *)

type t = {
  id : string;  (** e.g. "E2-storage-overhead" *)
  title : string;
  paper_claim : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val print : t -> unit
(** Render to stdout in the format EXPERIMENTS.md quotes.  When the
    {!Provkit_obs} registry is enabled, an [instrumentation:] line with
    the cumulative metrics headline ({!Provkit_obs.Metrics.headline}) is
    appended, so published numbers carry their instrumentation
    provenance. *)

val metrics_line : unit -> string option
(** The headline embedded by {!print}; [None] when observability is
    off. *)

val fmt_ms : float -> string
val fmt_bytes : int -> string
(** "1.23 MB" style. *)

val fmt_pct : float -> string
(** [fmt_pct 0.395] is ["39.5%"]. *)

val fmt_f : float -> string
(** Three decimals. *)
