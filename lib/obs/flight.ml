(* The flight recorder: an always-on, bounded incident log.  When
   something abnormal happens — an injected I/O fault fires, WAL
   recovery truncates, provctl dies on an uncaught exception — the
   recorder captures the state needed to explain it after the fact: the
   open-span ancestry at the moment of failure, the recent span tree,
   the full metrics snapshot and headline, and whatever context
   (seed, argv) the process registered.

   Unlike metrics and traces, recording is NOT gated on the PROV_OBS
   switch: incidents are rare by definition, so there is no hot path to
   protect, and a crash with observability off should still leave a
   postmortem. *)

type incident = {
  seq : int;  (** 1-based, monotonic across the process *)
  reason : string;
  attrs : (string * string) list;
  ancestry : Trace.open_span list;  (** innermost first *)
  spans : Trace.span list;  (** recent closed spans, oldest first, capped *)
  snapshot : Metrics.snapshot;
  headline : string;
  context : (string * string) list;
  dedup : string option;  (** merge key: repeats fold into one slot *)
  mutable repeats : int;  (** occurrences merged beyond the first *)
}

let m_incidents = Metrics.counter Names.flight_incidents

(* Bounded ring of kept incidents; [total] keeps counting past it so
   tests can assert on deltas even when old incidents have rolled off. *)
let keep = 16
let span_cap = 64
let ring : incident list ref = ref [] (* newest first *)
let total = ref 0
let context : (string * string) list ref = ref []

(* One lock for ring/total/context: incidents can fire from any domain
   under provd (an alert rule tripping on the background domain while a
   fault hook fires on the ingest domain).  Nests over the Trace lock
   (record captures ancestry and recent spans) — Trace never calls back
   into Flight, so the order is acyclic. *)
let lock = Mutex.create ()

let set_context kvs =
  Mutex.protect lock (fun () ->
      List.iter (fun (k, v) -> context := (k, v) :: List.remove_assoc k !context) kvs)

let take_last n l =
  let rec drop k = function xs when k <= 0 -> xs | [] -> [] | _ :: rest -> drop (k - 1) rest in
  drop (List.length l - n) l

let rec take_first n l =
  match l with [] -> [] | x :: rest -> if n <= 0 then [] else x :: take_first (n - 1) rest

let record ?(attrs = []) ?dedup reason =
  (* A repeated occurrence of a deduplicated incident (the same alert
     rule firing again, the same fault re-injected) must not consume
     another of the 16 ring slots: the first capture already holds the
     interesting state, so later ones just bump its repeat count.
     [total] and the metric still count every occurrence. *)
  Mutex.protect lock (fun () ->
      let existing =
        match dedup with
        | None -> None
        | Some key -> List.find_opt (fun i -> i.dedup = Some key) !ring
      in
      (match existing with
      | Some i -> i.repeats <- i.repeats + 1
      | None ->
        let snap = Metrics.snapshot () in
        let i =
          {
            seq = !total + 1;
            reason;
            attrs;
            ancestry = Trace.open_spans ();
            spans = take_last span_cap (Trace.recent ());
            snapshot = snap;
            headline = Metrics.headline snap;
            context = List.rev !context;
            dedup;
            repeats = 0;
          }
        in
        ring := i :: take_first (keep - 1) !ring);
      total := !total + 1);
  Metrics.incr m_incidents

let recorded () = Mutex.protect lock (fun () -> !total)

let incidents () = Mutex.protect lock (fun () -> List.rev !ring)

let latest () =
  Mutex.protect lock (fun () -> match !ring with [] -> None | i :: _ -> Some i)

let clear () = Mutex.protect lock (fun () -> ring := [])

(* --- postmortem JSON --- *)

let kvs_json kvs =
  let buf = Buffer.create 64 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v)))
    kvs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_json i =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"postmortem\":1,\"seq\":%d,\"reason\":\"%s\",\"repeats\":%d,\"attrs\":%s,\"context\":%s"
       i.seq (Metrics.json_escape i.reason) i.repeats (kvs_json i.attrs) (kvs_json i.context));
  Buffer.add_string buf ",\"open_spans\":[";
  List.iteri
    (fun k (o : Trace.open_span) ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"trace_id\":\"%Lx\",\"span_id\":\"%Lx\",\"parent_id\":%s,\"start_ns\":%Ld}"
           (Metrics.json_escape o.o_name) o.o_trace_id o.o_span_id
           (match o.o_parent_id with None -> "null" | Some p -> Printf.sprintf "\"%Lx\"" p)
           o.o_start_ns))
    i.ancestry;
  Buffer.add_string buf "],\"spans\":[";
  List.iteri
    (fun k s ->
      if k > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Trace.span_to_json s))
    i.spans;
  Buffer.add_string buf "],\"headline\":\"";
  Buffer.add_string buf (Metrics.json_escape i.headline);
  Buffer.add_string buf "\",\"metrics\":";
  Buffer.add_string buf (Metrics.to_json i.snapshot);
  Buffer.add_char buf '}';
  Buffer.contents buf

let dump i ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json i);
      output_char oc '\n')

(* --- standard triggers --- *)

let install_fault_hook () =
  Provkit_util.Faulty_io.set_fault_hook
    (Some
       (fun fault ->
         record "io.fault.injected"
           ~attrs:[ ("fault", Provkit_util.Faulty_io.fault_to_string fault) ]))

let uninstall_fault_hook () = Provkit_util.Faulty_io.set_fault_hook None
