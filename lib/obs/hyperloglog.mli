(** HyperLogLog cardinality sketches — the NDV (number of distinct
    values) estimator behind the statistics catalog, sibling to the
    HDR histograms in {!Metrics}.

    A sketch with precision [p] keeps [2^p] one-byte registers and
    estimates the number of distinct items added with a relative
    standard error of about [1.04 / sqrt (2^p)] — ~1.6 % at the
    default [p = 12] (4 KiB), independent of the true cardinality.
    Adding is O(1) and allocation-free; estimating is O(2^p). *)

type t

val create : ?precision:int -> unit -> t
(** [create ~precision ()] builds an empty sketch with [2^precision]
    registers.  [precision] defaults to 12 and must be in \[4, 18\]
    (raises [Invalid_argument] otherwise). *)

val precision : t -> int

val registers : t -> int
(** [2^precision]. *)

val add_hash : t -> int64 -> unit
(** Feed one pre-hashed item.  The hash must be uniform over 64 bits —
    use {!hash_string} (or any mixer of splitmix64 quality); feeding
    raw small integers will wreck the estimate. *)

val add_string : t -> string -> unit
(** [add_hash t (hash_string s)]. *)

val hash_string : string -> int64
(** FNV-1a over the bytes, finalized with the splitmix64 mixer —
    deterministic across runs and platforms. *)

val estimate : t -> float
(** Estimated number of distinct items added.  Uses the standard
    HyperLogLog estimator with the linear-counting correction for
    small cardinalities, so the estimate is usable from 0 upward. *)

val error_bound : t -> float
(** The sketch's relative standard error, [1.04 / sqrt (registers t)].
    Tests assert estimates within a few multiples of this. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst] (pointwise register max).
    Raises [Invalid_argument] when precisions differ.  The result
    estimates the cardinality of the union of both streams. *)

val reset : t -> unit

val serialized : t -> string
(** Compact register image (1 byte per register, precision header),
    for embedding sketches in artifacts. *)
