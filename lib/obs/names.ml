(* The single source of truth for metric names.  Every counter, gauge
   and histogram recorded anywhere in the tree must use a constant from
   this module; the @obs-check dune alias greps the sources for
   "prov.x.y"-shaped string literals and rejects any that this file does
   not declare.  Names are dotted, lower-case, and have at least two
   dots (so unrelated literals like "prov.db" never collide with the
   lint). *)

(* --- browser engine --- *)

let browser_events = "prov.browser.events.emitted"

(* --- provenance capture --- *)

let capture_events = "prov.capture.events.total"
let capture_visit = "prov.capture.events.visit"
let capture_close = "prov.capture.events.close"
let capture_tab_opened = "prov.capture.events.tab_opened"
let capture_tab_closed = "prov.capture.events.tab_closed"
let capture_bookmark = "prov.capture.events.bookmark"
let capture_search = "prov.capture.events.search"
let capture_download = "prov.capture.events.download"
let capture_form = "prov.capture.events.form"

(* --- in-memory journal --- *)

let journal_appends = "prov.journal.appends.total"

(* --- segmented WAL --- *)

let wal_appends = "prov.wal.appends.total"
let wal_fsyncs = "prov.wal.fsyncs.total"
let wal_rotations = "prov.wal.rotations.total"
let wal_compactions = "prov.wal.compactions.total"
let wal_snapshots = "prov.wal.snapshots.total"
let wal_bytes_written = "prov.wal.bytes.written"
let wal_recoveries = "prov.wal.recoveries.total"
let wal_recovered_ops = "prov.wal.recoveries.ops"
let wal_recovered_segments = "prov.wal.recoveries.segments"
let wal_recoveries_truncated = "prov.wal.recoveries.truncated"
let wal_batch_ops = "prov.wal.batch.ops"
let wal_fsyncs_per_append = "prov.wal.fsyncs.per_append"

(* --- query execution --- *)

let query_count = "prov.query.exec.total"
let query_full_scan = "prov.query.plan.full_scan"
let query_index_eq = "prov.query.plan.index_eq"
let query_index_range = "prov.query.plan.index_range"
let query_rows_scanned = "prov.query.rows.scanned"
let query_rows_returned = "prov.query.rows.returned"
let query_latency_ns = "prov.query.latency.ns"
let query_cache_hits = "prov.query.cache.hits"
let query_cache_misses = "prov.query.cache.misses"
let query_cache_evictions = "prov.query.cache.evictions"
let query_cache_invalidations = "prov.query.cache.invalidations"

(* --- tracer --- *)

let trace_spans = "prov.trace.spans.recorded"
let trace_dropped = "prov.trace.spans.dropped"

(* --- flight recorder --- *)

let flight_incidents = "prov.flight.incidents.total"

(* --- materialized views --- *)

let matview_updates = "prov.matview.updates.total"
let matview_refreshes = "prov.matview.refreshes.total"
let matview_staleness = "prov.matview.staleness.events"
let matview_update_ns = "prov.matview.update.ns"
let matview_serves = "prov.matview.serves.total"

(* --- statistics catalog --- *)

let stats_analyzes = "prov.stats.analyzes.total"
let stats_analyze_ns = "prov.stats.analyze.ns"
let stats_estimates = "prov.stats.estimates.total"
let stats_misestimates = "prov.stats.misestimates.total"

(* --- slow-query log --- *)

let slowlog_notes = "prov.slowlog.notes.total"
let slowlog_evictions = "prov.slowlog.evictions.total"

(* --- telemetry time-series --- *)

let timeseries_points = "prov.timeseries.points.total"

(* --- alert engine --- *)

let alert_fires = "prov.alert.fires.total"
let alert_resolves = "prov.alert.resolves.total"
let alert_evaluations = "prov.alert.evaluations.total"
let alert_firing_open = "prov.alert.firing.open"

(* --- durable telemetry journal --- *)

let telemetry_journal_appends = "prov.telemetry.journal.appends"
let telemetry_journal_replays = "prov.telemetry.journal.replays"
let telemetry_journal_truncations = "prov.telemetry.journal.truncations"

(* --- provd serving daemon --- *)

let daemon_events_ingested = "prov.daemon.events.ingested"
let daemon_batches = "prov.daemon.batches.total"
let daemon_queue_depth = "prov.daemon.queue.depth"
let daemon_snapshots = "prov.daemon.snapshots.published"
let daemon_reads = "prov.daemon.reads.served"
let daemon_read_ns = "prov.daemon.read.latency_ns"
let daemon_jobs = "prov.daemon.jobs.total"

let all =
  [
    browser_events;
    capture_events;
    capture_visit;
    capture_close;
    capture_tab_opened;
    capture_tab_closed;
    capture_bookmark;
    capture_search;
    capture_download;
    capture_form;
    journal_appends;
    wal_appends;
    wal_fsyncs;
    wal_rotations;
    wal_compactions;
    wal_snapshots;
    wal_bytes_written;
    wal_recoveries;
    wal_recovered_ops;
    wal_recovered_segments;
    wal_recoveries_truncated;
    wal_batch_ops;
    wal_fsyncs_per_append;
    query_count;
    query_full_scan;
    query_index_eq;
    query_index_range;
    query_rows_scanned;
    query_rows_returned;
    query_latency_ns;
    query_cache_hits;
    query_cache_misses;
    query_cache_evictions;
    query_cache_invalidations;
    trace_spans;
    trace_dropped;
    flight_incidents;
    matview_updates;
    matview_refreshes;
    matview_staleness;
    matview_update_ns;
    matview_serves;
    stats_analyzes;
    stats_analyze_ns;
    stats_estimates;
    stats_misestimates;
    slowlog_notes;
    slowlog_evictions;
    timeseries_points;
    alert_fires;
    alert_resolves;
    alert_evaluations;
    alert_firing_open;
    telemetry_journal_appends;
    telemetry_journal_replays;
    telemetry_journal_truncations;
    daemon_events_ingested;
    daemon_batches;
    daemon_queue_depth;
    daemon_snapshots;
    daemon_reads;
    daemon_read_ns;
    daemon_jobs;
  ]

let registered name = List.mem name all

(* --- trace span names --- *)

(* Span names are dotted lower-case constants, registered here for the
   same reason metric names are: the obs-names lint requires every name
   literal passed to [Trace.record]/[Trace.with_span] in lib/ to be one
   of these bindings, and flags any binding below that is never recorded
   anywhere in lib/ or bin/.  (They are distinguished from metric names
   by shape: no "prov." prefix with two further dotted segments.) *)

let span_query = "query"
let span_wal_compact = "wal.compact"
let span_wal_recover = "wal.recover"
let span_wal_flush = "wal.flush"
let span_stats_analyze = "stats.analyze"
let span_daemon_batch = "daemon.batch"
let span_daemon_snapshot = "daemon.snapshot"

(* --- alert rule ids --- *)

(* Rule identities are dotted "alert.<subsystem>.<what>" constants,
   registered here under the same two-way contract as metric names: an
   unregistered alert-id-shaped literal anywhere in lib/ or bin/ fails
   the obs-names lint, and so does a registered id no rule ever uses.
   The id doubles as the flight-recorder dedup key when a rule fires. *)

let alert_query_p99 = "alert.query.p99_latency"
let alert_wal_fsync_per_append = "alert.wal.fsync_per_append"
let alert_cache_hit_ratio = "alert.cache.hit_ratio"
let alert_matview_staleness = "alert.matview.staleness"
let alert_stats_misestimate_burn = "alert.stats.misestimate_burn"
let alert_capture_stalled = "alert.capture.stalled"

let alert_ids =
  [
    alert_query_p99;
    alert_wal_fsync_per_append;
    alert_cache_hit_ratio;
    alert_matview_staleness;
    alert_stats_misestimate_burn;
    alert_capture_stalled;
  ]

let alert_registered id = List.mem id alert_ids

(* --- health check names --- *)

(* Health checks compose into the provd readiness verdict; their names
   follow the alert-id discipline ("health.<subsystem>.<what>") and are
   linted both ways too. *)

let health_wal_manifest = "health.wal.manifest"
let health_stats_fresh = "health.stats.fresh"
let health_alerts_clear = "health.alerts.clear"
let health_epochs_consistent = "health.epochs.consistent"
let health_daemon_queue = "health.daemon.queue"

let health_names =
  [
    health_wal_manifest;
    health_stats_fresh;
    health_alerts_clear;
    health_epochs_consistent;
    health_daemon_queue;
  ]

let health_registered name = List.mem name health_names
