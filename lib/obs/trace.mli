(** Span-based tracing: structured [(name, attrs, start_ns, dur_ns)]
    events in a bounded in-memory ring buffer, with an optional sink
    invoked as each span closes (use {!jsonl_sink_to_channel} to stream
    JSONL).  Recording obeys {!Metrics.enabled}; a traced path costs one
    branch when observability is off.

    Spans form trees: {!with_span} keeps an ambient stack of open
    frames, so nested calls link automatically through [trace_id] /
    [span_id] / [parent_id].  Ids come from a seeded deterministic
    stream ({!seed_ids}), never from wall clock. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
  trace_id : int64;  (** shared by every span of one root {!with_span} *)
  span_id : int64;  (** unique per span; [0] only on deserialized v1 lines *)
  parent_id : int64 option;  (** [None] for roots *)
}

type open_span = {
  o_name : string;
  o_trace_id : int64;
  o_span_id : int64;
  o_parent_id : int64 option;
  o_start_ns : int64;
}
(** A frame still on the ambient stack (its duration is unknown). *)

type tree = { node : span; children : tree list }

val record : ?attrs:(string * string) list -> string -> start_ns:int64 -> dur_ns:int64 -> unit
(** Append a finished span to the ring (overwriting the oldest when
    full, counted by {!Names.trace_dropped}) and pass it to the sink.
    The span attaches under the innermost open {!with_span} frame, if
    any; its [start_ns] is clamped to that frame's start so the
    enclosure invariant holds. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span, recording it even if the thunk raises.
    Nested calls become children.  When disabled, runs the thunk with no
    clock reads. *)

val open_spans : unit -> open_span list
(** The ambient stack of not-yet-closed {!with_span} frames, innermost
    first — the "ancestry" of whatever is executing right now. *)

val recent : unit -> span list
(** Current ring contents, oldest first (at most [capacity ()] spans). *)

val recorded : unit -> int
(** Spans recorded since the last {!clear}/{!set_capacity}, including
    ones already overwritten. *)

val assemble : span list -> tree list
(** Link an oldest-first span list (e.g. {!recent}) into trees by
    parent id.  Spans whose parent was overwritten in the ring surface
    as additional roots. *)

val enclosure_violations : span list -> string list
(** Parent/child pairs whose time intervals violate enclosure (child
    not contained in parent).  Always empty for spans produced by this
    tracer; exposed so tests can state the invariant. *)

val folded : span list -> (string * int64) list
(** Folded-stack aggregation ["root;child;leaf", self_ns] in the format
    flamegraph tooling consumes.  Self time is duration minus the summed
    durations of direct children, clamped at zero. *)

val render_trees : tree list -> string
(** Indented per-span listing of assembled trees, durations in ms. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Replace the ring with an empty one of the given size (default
    1024).  Raises [Invalid_argument] when non-positive. *)

val clear : unit -> unit
(** Empty the ring.  Open {!with_span} frames are unaffected. *)

val seed_ids : int -> unit
(** Reseed the id stream; two runs with the same seed and the same
    record sequence produce identical ids. *)

val set_sink : (span -> unit) option -> unit

val span_to_json : span -> string
(** One-line v2 JSON object:
    [{"v":2,"name":..,"trace_id":"<hex>","span_id":"<hex>",
      "parent_id":"<hex>"|null,"start_ns":..,"dur_ns":..,"attrs":{..}}]. *)

val span_of_json : string -> span option
(** Parse one JSONL span line.  Accepts both the v2 layout above and
    the v1 layout (no ["v"] marker, no id fields — ids deserialize as
    [0]/[None]).  [None] on malformed input. *)

val dump_jsonl : out_channel -> unit
(** Write {!recent} to the channel, one {!span_to_json} line per span. *)

val jsonl_sink_to_channel : out_channel -> (span -> unit) option
(** A sink streaming each span as a JSONL line, for {!set_sink}. *)
