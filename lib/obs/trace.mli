(** Span-based tracing: structured [(name, attrs, start_ns, dur_ns)]
    events in a bounded in-memory ring buffer, with an optional sink
    invoked as each span closes (use {!jsonl_sink_to_channel} to stream
    JSONL).  Recording obeys {!Metrics.enabled}; a traced path costs one
    branch when observability is off. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
}

val record : ?attrs:(string * string) list -> string -> start_ns:int64 -> dur_ns:int64 -> unit
(** Append a finished span to the ring (overwriting the oldest when
    full, counted by {!Names.trace_dropped}) and pass it to the sink. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span, recording it even if the thunk raises.
    When disabled, runs the thunk with no clock reads. *)

val recent : unit -> span list
(** Current ring contents, oldest first (at most [capacity ()] spans). *)

val recorded : unit -> int
(** Spans recorded since the last {!clear}/{!set_capacity}, including
    ones already overwritten. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Replace the ring with an empty one of the given size (default
    1024).  Raises [Invalid_argument] when non-positive. *)

val clear : unit -> unit

val set_sink : (span -> unit) option -> unit

val span_to_json : span -> string
(** One-line JSON object:
    [{"name":..,"start_ns":..,"dur_ns":..,"attrs":{..}}]. *)

val dump_jsonl : out_channel -> unit
(** Write {!recent} to the channel, one {!span_to_json} line per span. *)

val jsonl_sink_to_channel : out_channel -> (span -> unit) option
(** A sink streaming each span as a JSONL line, for {!set_sink}. *)
