(** Live telemetry time-series: a bounded ring of timestamped metric
    snapshots, and the arithmetic that turns two point-in-time
    snapshots into deltas and rates.

    {!Metrics} answers "what has this process done since it started";
    this module answers "what is it doing {e right now}".  A {!record}
    call captures [(now_ns, Metrics.snapshot ())] into the ring;
    {!deltas_between} subtracts two points, producing per-metric deltas
    and per-second rates that a live display ([provctl top]) or an
    exposition scrape can render.

    The capture and WAL layers drive the default ring through
    {!pulse}: every ingest event ticks a counter, and every
    [pulse_interval]-th tick records a point — so sustained-load runs
    leave an evenly spaced series without any timer thread. *)

type point = {
  pt_ns : int64;  (** monotonic capture time ({!Provkit_util.Timing.now_ns}) *)
  pt_snap : Metrics.snapshot;
}

type kind = Counter | Gauge | Hist_count

type series = {
  s_name : string;
  s_kind : kind;
  s_prev : float;
  s_cur : float;
  s_delta : float;  (** [cur - prev]; counters clamp at 0 (a reset reads as idle) *)
  s_rate : float;  (** delta per second over the points' interval; 0 when dt = 0 *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 240 points.  Raises [Invalid_argument]
    when non-positive. *)

val capacity : t -> int

val record : ?now_ns:int64 -> t -> point
(** Snapshot every registered metric into a new point (evicting the
    oldest beyond capacity) and return it.  Ticks
    {!Names.timeseries_points} and notifies every registered point
    observer. *)

val push : t -> point -> unit
(** Insert an already-built point (evicting beyond capacity) without
    snapshotting, ticking, or notifying observers — the journal-replay
    path, which must not re-trigger the hooks that wrote the journal. *)

val add_observer : (point -> unit) -> unit
(** Register a callback invoked (in registration order) with every
    point {!record} captures, into any ring.  The alert engine and the
    durable telemetry journal attach here. *)

val clear_observers : unit -> unit
(** Drop every registered observer (test teardown). *)

val points : t -> point list
(** Ring contents, oldest first. *)

val length : t -> int
val clear : t -> unit

val deltas_between : point -> point -> series list
(** Per-metric deltas and rates from the older to the newer point:
    one [Counter] row per counter, one [Gauge] row per gauge, one
    [Hist_count] row per histogram (its sample-count delta).  Metrics
    absent from the older point get [s_prev = 0].  Sorted by name. *)

val last_deltas : t -> series list option
(** {!deltas_between} over the ring's two newest points; [None] until
    the ring holds at least two. *)

val render : series list -> string
(** Aligned name/value/delta/rate table for terminal display. *)

(** {2 The default ring and the pulse hook} *)

val default : t
(** The process-wide ring the ingest layers feed. *)

val pulse : unit -> unit
(** Tick the pulse counter; every [pulse_interval]-th tick records a
    point into {!default}.  One branch when {!Metrics.enabled} is
    false.  Capture calls this per ingested event, the segmented WAL
    per appended op. *)

val pulse_interval : unit -> int

val set_pulse_interval : int -> unit
(** Default 1024 pulses per point.  Raises [Invalid_argument] when
    non-positive. *)

val pulses : unit -> int
(** Total pulses seen (independent of the recording interval). *)

(** {2 Prometheus text exposition} *)

val prometheus : Metrics.snapshot -> string
(** The snapshot in Prometheus text exposition format: counters as
    [counter], gauges as [gauge], histograms as [summary] (quantile
    series plus [_sum]/[_count]).  Metric names have their dots
    mangled to underscores ([prov.wal.appends.total] →
    [prov_wal_appends_total]). *)
