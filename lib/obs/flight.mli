(** The flight recorder: an always-on, bounded incident log that turns
    crash tests into explainable postmortems.

    {!record} captures, at the moment of failure, the open-span
    ancestry, the recent closed spans, the full metrics snapshot and
    headline, and any registered process context.  Standard triggers:
    an injected [Faulty_io] fault firing ({!install_fault_hook}), a WAL
    recovery truncation ([Prov_log]), and an uncaught [provctl]
    exception.

    Recording is deliberately {b not} gated on the [PROV_OBS] switch:
    incidents are rare, so there is no hot path, and a crash with
    observability off should still leave a postmortem. *)

type incident = {
  seq : int;  (** 1-based, monotonic across the process *)
  reason : string;
  attrs : (string * string) list;
  ancestry : Trace.open_span list;  (** open frames at capture, innermost first *)
  spans : Trace.span list;  (** recent closed spans, oldest first, capped at 64 *)
  snapshot : Metrics.snapshot;
  headline : string;
  context : (string * string) list;
  dedup : string option;  (** merge key: repeats fold into one ring slot *)
  mutable repeats : int;  (** occurrences merged beyond the first *)
}

val record : ?attrs:(string * string) list -> ?dedup:string -> string -> unit
(** Capture an incident.  Also ticks {!Names.flight_incidents}.

    With [dedup], a repeated occurrence whose key matches an incident
    still in the ring bumps that incident's [repeats] instead of
    consuming another of the 16 slots — so an alert rule firing on
    every evaluation cannot wash the rest of a postmortem away.
    {!recorded} and the metric still count every occurrence. *)

val recorded : unit -> int
(** Total incidents recorded by this process, including ones that have
    rolled off the bounded ring (tests assert on deltas of this). *)

val incidents : unit -> incident list
(** Kept incidents, oldest first (at most 16). *)

val latest : unit -> incident option

val clear : unit -> unit
(** Drop kept incidents.  {!recorded} keeps counting. *)

val set_context : (string * string) list -> unit
(** Merge key/value context (seed, argv, config) into every future
    incident; later values for the same key win. *)

val to_json : incident -> string
(** One JSON object:
    [{"postmortem":1,"seq":..,"reason":..,"attrs":{..},"context":{..},
      "open_spans":[..],"spans":[<v2 span lines>..],"headline":..,
      "metrics":<Metrics.to_json>}]. *)

val dump : incident -> path:string -> unit
(** Write {!to_json} (newline-terminated) to a file. *)

val install_fault_hook : unit -> unit
(** Route [Provkit_util.Faulty_io] fault applications into {!record}
    (reason ["io.fault.injected"], attr [fault=<spec>]). *)

val uninstall_fault_hook : unit -> unit
