(** The declarative alert-rule engine over the telemetry ring.

    Rules read derived {!signal}s from pairs of consecutive
    {!Timeseries.point}s — counter rates, gauge levels, histogram
    quantiles, ratios — and apply one {!condition}.  Evaluation happens
    on pulse points (via a {!Timeseries} observer installed by
    {!install}), never per captured record, so the ingest hot path pays
    nothing.

    {b Hysteresis}: a condition must hold continuously for the rule's
    [r_for_ns] before it fires, and must stay clear for the same
    duration before it resolves.  A signal oscillating across the
    threshold faster than the window never fires; a sustained breach
    fires exactly once and, once sustainedly clear, resolves exactly
    once.

    A fire appends to a bounded transition log, ticks
    {!Names.alert_fires}, notifies registered transition hooks (the
    durable telemetry journal attaches here), and records a flight
    incident deduplicated by rule id so repeated fires cannot wash the
    16-slot incident ring away. *)

type severity = Info | Warning | Critical

(** Derived reading of a point pair. *)
type signal =
  | Counter_rate of string  (** counter delta per second *)
  | Counter_delta of string  (** raw counter delta between the points *)
  | Gauge_value of string  (** gauge level at the newer point *)
  | Hist_p99 of string  (** p99 at the newer point; no value when empty *)
  | Hist_count_rate of string  (** histogram sample-count delta per second *)
  | Ratio of signal * signal  (** [a / b]; no value when [b = 0] *)
  | Sum of signal * signal

type condition =
  | Above of float
  | Below of float
  | Roc_above of float  (** signal change per second above threshold *)
  | Absent  (** the signal produced no data (or exactly zero) *)
  | Burn_rate of { budget : float; factor : float }
      (** the signal (a failure ratio) exceeds [budget *. factor] *)

type rule = {
  r_id : string;
      (** dotted ["alert.<subsystem>.<what>"]; lib/bin ids must be
          registered in {!Names.alert_ids} (enforced by the obs-names
          lint).  Doubles as the flight-recorder dedup key. *)
  r_signal : signal;
  r_condition : condition;
  r_for_ns : int64;  (** hysteresis window, both to fire and to resolve *)
  r_severity : severity;
  r_describe : string;
}

type state = {
  st_rule : rule;
  mutable st_firing : bool;
  mutable st_breach_since : int64 option;
  mutable st_clear_since : int64 option;
  mutable st_last_value : float option;
  mutable st_last_ns : int64;
  mutable st_fires : int;
  mutable st_resolves : int;
}

type kind = Fire | Resolve

type transition = {
  tr_seq : int;  (** 1-based, monotonic across the process *)
  tr_rule : string;
  tr_kind : kind;
  tr_ns : int64;
  tr_value : float;
  tr_severity : severity;
}

val severity_name : severity -> string
val kind_name : kind -> string

(** {2 Registry} *)

val register : rule -> unit
(** Add (or replace, resetting its state) a rule. *)

val unregister : string -> unit
val find : string -> state option
val states : unit -> state list
(** All rule states, registration order. *)

val firing : unit -> state list

val defaults : rule list
(** The built-in catalog: query p99 latency vs the 200 ms budget, WAL
    fsyncs per append, query-cache hit ratio, matview staleness,
    planner misestimate burn rate, capture stall. *)

val install_defaults : unit -> unit
(** {!register} every default rule and {!install} the observer. *)

val reset : unit -> unit
(** Drop all rules, the transition log, and the previous point
    (test teardown).  Hooks survive; see {!clear_transition_hooks}. *)

(** {2 Evaluation} *)

val feed : Timeseries.point -> unit
(** Evaluate every rule against (previous point, this point), then
    remember this point.  The first point only primes the engine.
    Out-of-order points (older than the previous) only re-prime. *)

val install : unit -> unit
(** Attach {!feed} as a {!Timeseries} observer (idempotent). *)

val replay_history : Timeseries.point list -> unit
(** {!feed} each point with side effects quieted: transitions land in
    the in-memory log and rule states, but metrics, flight incidents,
    and transition hooks are suppressed — replaying a journal must not
    re-journal or re-page. *)

val evaluate : older:Timeseries.point -> newer:Timeseries.point -> unit
(** One evaluation pass over an explicit pair (benchmarks, tests). *)

val eval_signal :
  older:Timeseries.point -> newer:Timeseries.point -> signal -> float option
(** The signal algebra itself; [None] means no data (empty histogram,
    zero-denominator ratio, non-finite gauge, zero-width interval). *)

(** {2 Transition log} *)

val transitions : unit -> transition list
(** Kept transitions, oldest first (bounded at 64). *)

val transitions_recorded : unit -> int
(** Total transitions, including ones rolled off the bounded log. *)

val clear_log : unit -> unit

val add_transition_hook : (transition -> unit) -> unit
(** Called (in registration order) on every live fire/resolve; not
    called during {!replay_history}. *)

val clear_transition_hooks : unit -> unit

(** {2 Rendering} *)

val render : unit -> string
(** Aligned rule/severity/state/fires/resolves table. *)

val prometheus_states : unit -> string
(** One [prov_alert_state{rule="<id>"} 0|1] gauge sample per registered
    rule, sorted by id; empty string when no rules are registered. *)

val to_json : unit -> string
(** [{"rules":[..],"transitions":[..]}]. *)

val transition_to_json : transition -> string
