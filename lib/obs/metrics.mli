(** The metrics registry: monotonic counters, gauges, and log-linear
    latency histograms with O(1), allocation-free recording.

    Instrumented modules intern a handle once ([counter], [gauge],
    [histogram] — idempotent per name) and record through it; with the
    registry disabled every record is a single branch.  The [PROV_OBS]
    environment variable ([off]/[0]/[false] to disable; default on)
    sets the initial switch; {!set_enabled} overrides it at run time. *)

val enabled : unit -> bool

val set_enabled : bool -> unit

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Intern the counter named [name], creating it at zero.  Use names
    from {!Names} — the [@obs-check] lint rejects unregistered ones. *)

val add : counter -> int -> unit
(** Add a positive delta.  Saturates at [max_int] instead of wrapping;
    non-positive deltas are ignored (counters are monotonic). *)

val incr : counter -> unit

val value : counter -> int

val counter_value : string -> int
(** Current value by name; [0] when the counter was never interned. *)

(** {2 Gauges} *)

type gauge

val gauge : string -> gauge

val set_gauge : gauge -> float -> unit

val gauge_value : string -> float

(** {2 Histograms}

    HDR-style log-linear buckets: 16 linear sub-buckets per power of
    two, so any quantile estimate is within a factor [1 + 1/16] of the
    true order statistic, using a fixed ~1k-slot array per histogram. *)

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record one sample (negative samples clamp to zero).  Latency
    samples are conventionally nanoseconds. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and record its elapsed wall time in nanoseconds; when
    the registry is disabled the thunk runs without any clock reads. *)

val quantile : histogram -> float -> float
(** [quantile h q] is the inclusive upper bound of the bucket holding
    the rank-⌈q·n⌉ order statistic, i.e. an estimate [e] with
    [true_q <= e <= true_q * (1 + 1/16) + 1].  [0.0] when empty. *)

val hist_count : histogram -> int

val bucket_of_value : int -> int
(** The bucket index a sample maps to (exposed for the property tests). *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] sample range of a bucket index. *)

(** {2 Snapshots} *)

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : int;
  hs_max : int;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_summary) list;
}

val snapshot : unit -> snapshot
(** Every registered metric, each section sorted by name — so two
    processes that performed the same work render identical snapshots. *)

val reset : unit -> unit
(** Zero every metric in place.  Interned handles remain valid and
    registered (they reappear in the next snapshot at zero). *)

val render : snapshot -> string
(** Aligned text tables (counters, gauges, histograms). *)

val to_json : snapshot -> string
(** One JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,min,max,p50,p95,p99}}}]. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (shared with
    the tracer's JSONL encoder). *)

val headline : snapshot -> string
(** One compact line of the headline counters (events ingested, WAL
    appends, queries, query latency quantiles) for embedding in
    experiment reports. *)
