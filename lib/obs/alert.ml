(* The alert-rule engine: declarative rules evaluated against pairs of
   consecutive Timeseries points.  Evaluation happens on pulse points
   (a few hundred per run), never per record — the hot ingest path pays
   nothing for alerting.

   Each rule reads one derived signal (a counter rate, a gauge level, a
   histogram quantile, or a ratio of those) and applies one condition
   (threshold, rate-of-change, absence, SLO burn rate).  Transitions
   have hysteresis: the condition must hold continuously for [r_for_ns]
   before the rule fires, and must stay clear for the same duration
   before it resolves — a signal oscillating across the threshold
   faster than the window never fires at all.

   A fire appends to the bounded transition log, ticks
   {!Names.alert_fires}, and records a flight incident deduplicated by
   rule id, so a rule that fires on every evaluation cannot wash the
   16-slot incident ring away. *)

type severity = Info | Warning | Critical

type signal =
  | Counter_rate of string  (* counter delta per second *)
  | Counter_delta of string  (* raw counter delta between the points *)
  | Gauge_value of string  (* gauge level at the newer point *)
  | Hist_p99 of string  (* p99 of a histogram at the newer point *)
  | Hist_count_rate of string  (* histogram sample-count delta per second *)
  | Ratio of signal * signal  (* a / b; no value when b = 0 *)
  | Sum of signal * signal

type condition =
  | Above of float
  | Below of float
  | Roc_above of float  (* signal change per second above threshold *)
  | Absent  (* the signal produced nothing (or no data at all) *)
  | Burn_rate of { budget : float; factor : float }
      (* the signal (a failure ratio) exceeds budget * factor *)

type rule = {
  r_id : string;
  r_signal : signal;
  r_condition : condition;
  r_for_ns : int64;
  r_severity : severity;
  r_describe : string;
}

type state = {
  st_rule : rule;
  mutable st_firing : bool;
  mutable st_breach_since : int64 option;
  mutable st_clear_since : int64 option;
  mutable st_last_value : float option;
  mutable st_last_ns : int64;
  mutable st_fires : int;
  mutable st_resolves : int;
}

type kind = Fire | Resolve

type transition = {
  tr_seq : int;  (* 1-based, monotonic across the process *)
  tr_rule : string;
  tr_kind : kind;
  tr_ns : int64;
  tr_value : float;
  tr_severity : severity;
}

let m_fires = Metrics.counter Names.alert_fires
let m_resolves = Metrics.counter Names.alert_resolves
let m_evaluations = Metrics.counter Names.alert_evaluations
let g_firing = Metrics.gauge Names.alert_firing_open

let log_cap = 64

(* Engine state: the rule registry (insertion-ordered), the bounded
   transition log (newest first; [log_total] keeps counting past the
   cap), the previous point fed, and the installed/replaying flags. *)
let rules : (string * state) list ref = ref []
let log : transition list ref = ref []
let log_total = ref 0
let prev_point : Timeseries.point option ref = ref None
let installed = ref false
let replaying = ref false
let transition_hooks : (transition -> unit) list ref = ref []

let severity_name = function Info -> "info" | Warning -> "warning" | Critical -> "critical"
let kind_name = function Fire -> "fire" | Resolve -> "resolve"

let register rule =
  let st =
    {
      st_rule = rule;
      st_firing = false;
      st_breach_since = None;
      st_clear_since = None;
      st_last_value = None;
      st_last_ns = 0L;
      st_fires = 0;
      st_resolves = 0;
    }
  in
  rules := List.filter (fun (id, _) -> id <> rule.r_id) !rules @ [ (rule.r_id, st) ]

let unregister id = rules := List.filter (fun (id', _) -> id' <> id) !rules
let states () = List.map snd !rules
let firing () = List.filter (fun st -> st.st_firing) (states ())
let find id = List.assoc_opt id !rules

let transitions () = List.rev !log
let transitions_recorded () = !log_total

let add_transition_hook f = transition_hooks := !transition_hooks @ [ f ]
let clear_transition_hooks () = transition_hooks := []

let clear_log () =
  log := [];
  log_total := 0

let reset () =
  rules := [];
  clear_log ();
  prev_point := None

(* --- signal evaluation --- *)

let counter_of (snap : Metrics.snapshot) name =
  match List.assoc_opt name snap.Metrics.snap_counters with
  | Some v -> float_of_int v
  | None -> 0.0

let gauge_of (snap : Metrics.snapshot) name =
  Option.value ~default:0.0 (List.assoc_opt name snap.Metrics.snap_gauges)

let hist_of (snap : Metrics.snapshot) name = List.assoc_opt name snap.Metrics.snap_histograms

(* Counter deltas clamp at zero across a registry reset, the same rule
   {!Timeseries.deltas_between} applies. *)
let delta older newer = if newer < older then 0.0 else newer -. older

let rec eval_signal ~(older : Timeseries.point) ~(newer : Timeseries.point) signal =
  let dt_s =
    let dt = Int64.to_float (Int64.sub newer.Timeseries.pt_ns older.Timeseries.pt_ns) /. 1e9 in
    if dt > 0.0 then dt else 0.0
  in
  let per_second d = if dt_s > 0.0 then Some (d /. dt_s) else None in
  match signal with
  | Counter_rate name ->
    per_second
      (delta
         (counter_of older.Timeseries.pt_snap name)
         (counter_of newer.Timeseries.pt_snap name))
  | Counter_delta name ->
    Some
      (delta
         (counter_of older.Timeseries.pt_snap name)
         (counter_of newer.Timeseries.pt_snap name))
  | Gauge_value name ->
    let v = gauge_of newer.Timeseries.pt_snap name in
    if Float.is_finite v then Some v else None
  | Hist_p99 name -> (
    match hist_of newer.Timeseries.pt_snap name with
    | Some s when s.Metrics.hs_count > 0 -> Some s.Metrics.hs_p99
    | _ -> None)
  | Hist_count_rate name ->
    let count snap =
      match hist_of snap name with
      | Some s -> float_of_int s.Metrics.hs_count
      | None -> 0.0
    in
    per_second (delta (count older.Timeseries.pt_snap) (count newer.Timeseries.pt_snap))
  | Ratio (a, b) -> (
    match (eval_signal ~older ~newer a, eval_signal ~older ~newer b) with
    | Some va, Some vb when vb <> 0.0 ->
      let r = va /. vb in
      if Float.is_finite r then Some r else None
    | _ -> None)
  | Sum (a, b) -> (
    match (eval_signal ~older ~newer a, eval_signal ~older ~newer b) with
    | Some va, Some vb -> Some (va +. vb)
    | _ -> None)

(* [Some true]: condition breached; [Some false]: clear; [None]: no
   data, leave the hysteresis timers untouched. *)
let eval_condition st value ~dt_s =
  match st.st_rule.r_condition with
  | Absent -> Some (match value with None -> true | Some v -> v = 0.0)
  | _ -> (
    match value with
    | None -> None
    | Some v -> (
      match st.st_rule.r_condition with
      | Above t -> Some (v > t)
      | Below t -> Some (v < t)
      | Burn_rate { budget; factor } -> Some (v > budget *. factor)
      | Roc_above t -> (
        match st.st_last_value with
        | Some prev when dt_s > 0.0 -> Some ((v -. prev) /. dt_s > t)
        | _ -> None)
      | Absent -> assert false))

(* --- transitions --- *)

let note_transition st kind now value =
  log_total := !log_total + 1;
  let tr =
    {
      tr_seq = !log_total;
      tr_rule = st.st_rule.r_id;
      tr_kind = kind;
      tr_ns = now;
      tr_value = value;
      tr_severity = st.st_rule.r_severity;
    }
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  log := tr :: take (log_cap - 1) !log;
  if not !replaying then begin
    (match kind with Fire -> Metrics.incr m_fires | Resolve -> Metrics.incr m_resolves);
    Metrics.set_gauge g_firing (float_of_int (List.length (firing ())));
    if kind = Fire then
      Flight.record ~dedup:st.st_rule.r_id
        ~attrs:
          [
            ("rule", st.st_rule.r_id);
            ("severity", severity_name st.st_rule.r_severity);
            ("value", Printf.sprintf "%g" value);
            ("describe", st.st_rule.r_describe);
          ]
        "alert.fired";
    List.iter (fun f -> f tr) !transition_hooks
  end

(* --- the hysteresis state machine --- *)

let step st ~now ~value ~dt_s =
  if not !replaying then Metrics.incr m_evaluations;
  let breach = eval_condition st value ~dt_s in
  (match breach with
  | None -> ()
  | Some true ->
    st.st_clear_since <- None;
    (match st.st_breach_since with None -> st.st_breach_since <- Some now | Some _ -> ());
    if not st.st_firing then begin
      match st.st_breach_since with
      | Some t0 when Int64.sub now t0 >= st.st_rule.r_for_ns ->
        st.st_firing <- true;
        st.st_fires <- st.st_fires + 1;
        note_transition st Fire now (Option.value ~default:0.0 value)
      | _ -> ()
    end
  | Some false ->
    st.st_breach_since <- None;
    if st.st_firing then begin
      (match st.st_clear_since with None -> st.st_clear_since <- Some now | Some _ -> ());
      match st.st_clear_since with
      | Some t0 when Int64.sub now t0 >= st.st_rule.r_for_ns ->
        st.st_firing <- false;
        st.st_resolves <- st.st_resolves + 1;
        st.st_clear_since <- None;
        note_transition st Resolve now (Option.value ~default:0.0 value)
      | _ -> ()
    end
    else st.st_clear_since <- None);
  (match value with Some v -> st.st_last_value <- Some v | None -> ());
  st.st_last_ns <- now

let evaluate ~older ~newer =
  let dt_s =
    let dt = Int64.to_float (Int64.sub newer.Timeseries.pt_ns older.Timeseries.pt_ns) /. 1e9 in
    if dt > 0.0 then dt else 0.0
  in
  List.iter
    (fun (_, st) ->
      let value = eval_signal ~older ~newer st.st_rule.r_signal in
      step st ~now:newer.Timeseries.pt_ns ~value ~dt_s)
    !rules

let feed point =
  (match !prev_point with
  | Some older when older.Timeseries.pt_ns <= point.Timeseries.pt_ns ->
    evaluate ~older ~newer:point
  | _ -> ());
  prev_point := Some point

let install () =
  if not !installed then begin
    installed := true;
    Timeseries.add_observer feed
  end

let replay_history points =
  replaying := true;
  Fun.protect ~finally:(fun () -> replaying := false) @@ fun () -> List.iter feed points

(* --- the default rule catalog --- *)

let defaults =
  [
    {
      r_id = Names.alert_query_p99;
      r_signal = Hist_p99 Names.query_latency_ns;
      r_condition = Above 200e6;
      r_for_ns = 1_000_000L;
      r_severity = Critical;
      r_describe = "query p99 latency above the paper's 200 ms budget";
    };
    {
      r_id = Names.alert_wal_fsync_per_append;
      r_signal = Gauge_value Names.wal_fsyncs_per_append;
      r_condition = Above 1.5;
      r_for_ns = 1_000_000L;
      r_severity = Warning;
      r_describe = "WAL issuing more fsyncs than appends (group commit not amortizing)";
    };
    {
      r_id = Names.alert_cache_hit_ratio;
      r_signal =
        Ratio
          ( Counter_delta Names.query_cache_hits,
            Sum (Counter_delta Names.query_cache_hits, Counter_delta Names.query_cache_misses)
          );
      r_condition = Below 0.1;
      r_for_ns = 1_000_000L;
      r_severity = Warning;
      r_describe = "query-cache hit ratio below 10% over the window";
    };
    {
      r_id = Names.alert_matview_staleness;
      r_signal = Gauge_value Names.matview_staleness;
      r_condition = Above 512.0;
      r_for_ns = 1_000_000L;
      r_severity = Warning;
      r_describe = "a materialized view lags the capture stream by >512 events";
    };
    {
      r_id = Names.alert_stats_misestimate_burn;
      r_signal =
        Ratio (Counter_delta Names.stats_misestimates, Counter_delta Names.stats_estimates);
      r_condition = Burn_rate { budget = 0.05; factor = 2.0 };
      r_for_ns = 1_000_000L;
      r_severity = Warning;
      r_describe = "planner misestimate ratio burning >2x its 5% budget";
    };
    {
      r_id = Names.alert_capture_stalled;
      r_signal = Counter_delta Names.capture_events;
      r_condition = Absent;
      r_for_ns = 1_000_000L;
      r_severity = Info;
      r_describe = "no capture events between telemetry points (ingest stalled)";
    };
  ]

let install_defaults () =
  List.iter register defaults;
  install ()

(* --- rendering --- *)

let prometheus_states () =
  let buf = Buffer.create 256 in
  if !rules <> [] then begin
    Buffer.add_string buf "# TYPE prov_alert_state gauge\n";
    List.iter
      (fun (_, st) ->
        Buffer.add_string buf
          (Printf.sprintf "prov_alert_state{rule=\"%s\"} %d\n" st.st_rule.r_id
             (if st.st_firing then 1 else 0)))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) !rules)
  end;
  Buffer.contents buf

let render () =
  Provkit_util.Table_fmt.render
    ~aligns:Provkit_util.Table_fmt.[ Left; Left; Left; Right; Right; Right ]
    ~header:[ "rule"; "severity"; "state"; "fires"; "resolves"; "last value" ]
    (List.map
       (fun st ->
         [
           st.st_rule.r_id;
           severity_name st.st_rule.r_severity;
           (if st.st_firing then "FIRING" else "ok");
           string_of_int st.st_fires;
           string_of_int st.st_resolves;
           (match st.st_last_value with None -> "-" | Some v -> Printf.sprintf "%g" v);
         ])
       (states ()))

let transition_to_json tr =
  Printf.sprintf
    "{\"seq\":%d,\"rule\":\"%s\",\"kind\":\"%s\",\"ns\":%Ld,\"value\":%g,\"severity\":\"%s\"}"
    tr.tr_seq (Metrics.json_escape tr.tr_rule) (kind_name tr.tr_kind) tr.tr_ns tr.tr_value
    (severity_name tr.tr_severity)

let to_json () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"rules\":[";
  List.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":\"%s\",\"severity\":\"%s\",\"firing\":%b,\"fires\":%d,\"resolves\":%d,\"describe\":\"%s\"}"
           (Metrics.json_escape st.st_rule.r_id)
           (severity_name st.st_rule.r_severity)
           st.st_firing st.st_fires st.st_resolves
           (Metrics.json_escape st.st_rule.r_describe)))
    (states ());
  Buffer.add_string buf "],\"transitions\":[";
  List.iteri
    (fun i tr ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (transition_to_json tr))
    (transitions ());
  Buffer.add_string buf "]}";
  Buffer.contents buf
