(** The durable telemetry journal: CRC-framed records appended on every
    {!Timeseries} point and every {!Alert} transition, replayable so
    [provctl top --since <file>] and the alert engine see history
    across restarts.

    On-disk format: a [PTJ1] magic header, then per record a 4-byte LE
    payload length, a 4-byte LE CRC-32 of the payload, and the payload
    (tag byte, then the point snapshot or the transition).  The framing
    discipline is the WAL v2 codec's: {!replay} verifies every frame
    and keeps the longest clean prefix, so a crash-truncated or
    corrupted tail is detected (flight incident, deduplicated per path,
    plus {!Names.telemetry_journal_truncations}) and {!open_} cuts it
    away before appending — recovery semantics identical to a torn WAL
    segment. *)

type t
(** An open journal (append handle). *)

type replay = {
  rp_points : Timeseries.point list;  (** oldest first *)
  rp_transitions : Alert.transition list;  (** oldest first *)
  rp_records : int;  (** frames decoded from the clean prefix *)
  rp_truncated : bool;  (** a torn or corrupt tail was cut away *)
  rp_clean_bytes : int;  (** verified prefix length, magic included *)
}

val open_ : path:string -> t
(** Open for appending, creating the file (with its magic header) if
    missing.  An existing file is recovered first: the torn tail, if
    any, is truncated back to the clean prefix, exactly once. *)

val path : t -> string

val append_point : t -> Timeseries.point -> unit
(** Append one snapshot frame and flush.  Ticks
    {!Names.telemetry_journal_appends}.  No-op after {!close}. *)

val append_transition : t -> Alert.transition -> unit

val close : t -> unit
(** Idempotent. *)

val attach : t -> unit
(** Wire the journal into the live stream: a {!Timeseries} observer
    appending every recorded point, and an {!Alert} transition hook
    appending every fire/resolve.  Detach by
    {!Timeseries.clear_observers} / {!Alert.clear_transition_hooks}. *)

val replay : path:string -> replay
(** Decode the journal's clean prefix (a missing file reads as empty).
    Ticks {!Names.telemetry_journal_replays}; a torn tail additionally
    ticks {!Names.telemetry_journal_truncations} and records a flight
    incident (deduplicated by path). *)

val replay_into : Timeseries.t -> path:string -> replay
(** {!replay}, then {!Timeseries.push} each recovered point into the
    ring — push, not record, so replay never re-triggers the observers
    that wrote the journal. *)
