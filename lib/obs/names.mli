(** Metric-name registry: the single source of truth checked by the
    [@obs-check] lint.  Use these constants — never a raw string — when
    recording a metric; an unregistered "prov.x.y" literal anywhere under
    [lib/] or [bin/] fails the build's lint alias. *)

val browser_events : string
(** Events the browser engine broadcast to its observers. *)

val capture_events : string
(** Events the provenance capture layer ingested (all kinds). *)

val capture_visit : string

val capture_close : string

val capture_tab_opened : string

val capture_tab_closed : string

val capture_bookmark : string

val capture_search : string

val capture_download : string

val capture_form : string

val journal_appends : string
(** Ops appended to an in-memory [Prov_log.t] journal. *)

val wal_appends : string
(** Ops appended to a segmented WAL. *)

val wal_fsyncs : string
(** Sink flushes issued by the segmented WAL. *)

val wal_rotations : string

val wal_compactions : string

val wal_snapshots : string

val wal_bytes_written : string

val wal_recoveries : string
(** Completed [Segmented.recover] runs. *)

val wal_recovered_ops : string

val wal_recovered_segments : string

val wal_recoveries_truncated : string
(** Recoveries that stopped at a damaged frame. *)

val wal_batch_ops : string
(** Histogram of ops persisted per group-commit flush. *)

val wal_fsyncs_per_append : string
(** Gauge: fsyncs issued per op appended over a handle's lifetime; 1.0
    means one fsync for every append, lower means group-commit is
    amortizing. *)

val query_count : string
(** Query_exec operations executed (select/count/join/group_count). *)

val query_full_scan : string

val query_index_eq : string

val query_index_range : string

val query_rows_scanned : string
(** Rows the chosen access path examined. *)

val query_rows_returned : string

val query_latency_ns : string
(** Histogram of per-query latency in nanoseconds. *)

val query_cache_hits : string
(** Query results served from the epoch-validated cache. *)

val query_cache_misses : string
(** Cacheable queries that had to execute (absent or stale entry). *)

val query_cache_evictions : string
(** Entries dropped by the LRU bound. *)

val query_cache_invalidations : string
(** Entries found stale (table epoch moved) and removed. *)

val trace_spans : string

val trace_dropped : string
(** Spans overwritten in the ring before being drained. *)

val flight_incidents : string
(** Incidents captured by the flight recorder. *)

val matview_updates : string
(** Per-view incremental folds applied by a matview registry. *)

val matview_refreshes : string
(** Full view rebuilds (WAL replay or an explicit refresh). *)

val matview_staleness : string
(** Gauge: events seen by a registry minus the laggiest view's folds. *)

val matview_update_ns : string
(** Histogram of per-view incremental update latency in nanoseconds. *)

val matview_serves : string
(** Queries answered from a registered matview source instead of a
    table scan or the LRU cache. *)

val stats_analyzes : string
(** Statistics-catalog analyze passes completed (per table). *)

val stats_analyze_ns : string
(** Histogram of per-table analyze latency in nanoseconds. *)

val stats_estimates : string
(** Row-count estimates served from a fresh statistics catalog. *)

val stats_misestimates : string
(** Stats-guided estimates whose actual/estimated ratio exceeded the
    misestimate threshold (each also records a flight-recorder event). *)

val slowlog_notes : string
(** Queries recorded into the slow-query ring (new or deduplicated). *)

val slowlog_evictions : string
(** Slow-query fingerprints evicted by the ring's capacity bound. *)

val timeseries_points : string
(** Metric snapshots captured into a telemetry time-series ring. *)

val all : string list
(** Every registered metric name, in declaration order (span names are
    not metrics and are not listed). *)

val registered : string -> bool

(** {2 Trace span names}

    Registered here for the same reason metric names are: the
    [obs-names] lint requires every name literal passed to
    [Trace.record]/[Trace.with_span] under [lib/] to be one of these
    constants, and flags any constant that is never recorded. *)

val span_query : string
(** Slow-query spans emitted by [Query_exec]. *)

val span_wal_compact : string

val span_wal_recover : string

val span_wal_flush : string
(** Group-commit flushes of the segmented WAL's pending batch. *)

val span_stats_analyze : string
(** Statistics-catalog analyze passes ([Relstore.Stats.analyze]). *)
