(** Metric-name registry: the single source of truth checked by the
    [@obs-check] lint.  Use these constants — never a raw string — when
    recording a metric; an unregistered "prov.x.y" literal anywhere under
    [lib/] or [bin/] fails the build's lint alias. *)

val browser_events : string
(** Events the browser engine broadcast to its observers. *)

val capture_events : string
(** Events the provenance capture layer ingested (all kinds). *)

val capture_visit : string

val capture_close : string

val capture_tab_opened : string

val capture_tab_closed : string

val capture_bookmark : string

val capture_search : string

val capture_download : string

val capture_form : string

val journal_appends : string
(** Ops appended to an in-memory [Prov_log.t] journal. *)

val wal_appends : string
(** Ops appended to a segmented WAL. *)

val wal_fsyncs : string
(** Sink flushes issued by the segmented WAL. *)

val wal_rotations : string

val wal_compactions : string

val wal_snapshots : string

val wal_bytes_written : string

val wal_recoveries : string
(** Completed [Segmented.recover] runs. *)

val wal_recovered_ops : string

val wal_recovered_segments : string

val wal_recoveries_truncated : string
(** Recoveries that stopped at a damaged frame. *)

val wal_batch_ops : string
(** Histogram of ops persisted per group-commit flush. *)

val wal_fsyncs_per_append : string
(** Gauge: fsyncs issued per op appended over a handle's lifetime; 1.0
    means one fsync for every append, lower means group-commit is
    amortizing. *)

val query_count : string
(** Query_exec operations executed (select/count/join/group_count). *)

val query_full_scan : string

val query_index_eq : string

val query_index_range : string

val query_rows_scanned : string
(** Rows the chosen access path examined. *)

val query_rows_returned : string

val query_latency_ns : string
(** Histogram of per-query latency in nanoseconds. *)

val query_cache_hits : string
(** Query results served from the epoch-validated cache. *)

val query_cache_misses : string
(** Cacheable queries that had to execute (absent or stale entry). *)

val query_cache_evictions : string
(** Entries dropped by the LRU bound. *)

val query_cache_invalidations : string
(** Entries found stale (table epoch moved) and removed. *)

val trace_spans : string

val trace_dropped : string
(** Spans overwritten in the ring before being drained. *)

val flight_incidents : string
(** Incidents captured by the flight recorder. *)

val matview_updates : string
(** Per-view incremental folds applied by a matview registry. *)

val matview_refreshes : string
(** Full view rebuilds (WAL replay or an explicit refresh). *)

val matview_staleness : string
(** Gauge: events seen by a registry minus the laggiest view's folds. *)

val matview_update_ns : string
(** Histogram of per-view incremental update latency in nanoseconds. *)

val matview_serves : string
(** Queries answered from a registered matview source instead of a
    table scan or the LRU cache. *)

val stats_analyzes : string
(** Statistics-catalog analyze passes completed (per table). *)

val stats_analyze_ns : string
(** Histogram of per-table analyze latency in nanoseconds. *)

val stats_estimates : string
(** Row-count estimates served from a fresh statistics catalog. *)

val stats_misestimates : string
(** Stats-guided estimates whose actual/estimated ratio exceeded the
    misestimate threshold (each also records a flight-recorder event). *)

val slowlog_notes : string
(** Queries recorded into the slow-query ring (new or deduplicated). *)

val slowlog_evictions : string
(** Slow-query fingerprints evicted by the ring's capacity bound. *)

val timeseries_points : string
(** Metric snapshots captured into a telemetry time-series ring. *)

val alert_fires : string
(** Alert-rule fire transitions (a sustained breach crossed its [for_]
    hysteresis window). *)

val alert_resolves : string
(** Alert-rule resolve transitions (a firing rule stayed clear for its
    [for_] window). *)

val alert_evaluations : string
(** Rule evaluations performed against telemetry points (one per rule
    per point pair). *)

val alert_firing_open : string
(** Gauge: alert rules currently in the firing state. *)

val telemetry_journal_appends : string
(** Records (points and alert transitions) appended to a durable
    telemetry journal. *)

val telemetry_journal_replays : string
(** Completed telemetry-journal replay passes. *)

val telemetry_journal_truncations : string
(** Replays that stopped at a damaged frame and kept a clean prefix. *)

val daemon_events_ingested : string
(** Events drained from the provd session queue into the store. *)

val daemon_batches : string
(** Group-commit batches the provd ingest loop has applied. *)

val daemon_queue_depth : string
(** Gauge: events waiting in the provd session queue. *)

val daemon_snapshots : string
(** Read snapshots published by the provd ingest loop. *)

val daemon_reads : string
(** Queries served from provd read snapshots. *)

val daemon_read_ns : string
(** Histogram: per-read latency against the published snapshot. *)

val daemon_jobs : string
(** Background maintenance jobs (analyze, pulse, compaction, matview
    rebuild) completed by provd. *)

val all : string list
(** Every registered metric name, in declaration order (span names are
    not metrics and are not listed). *)

val registered : string -> bool

(** {2 Trace span names}

    Registered here for the same reason metric names are: the
    [obs-names] lint requires every name literal passed to
    [Trace.record]/[Trace.with_span] under [lib/] to be one of these
    constants, and flags any constant that is never recorded. *)

val span_query : string
(** Slow-query spans emitted by [Query_exec]. *)

val span_wal_compact : string

val span_wal_recover : string

val span_wal_flush : string
(** Group-commit flushes of the segmented WAL's pending batch. *)

val span_stats_analyze : string
(** Statistics-catalog analyze passes ([Relstore.Stats.analyze]). *)

val span_daemon_batch : string
(** One provd ingest batch: drain, capture, WAL group commit. *)

val span_daemon_snapshot : string
(** Publication of a fresh provd read snapshot. *)

(** {2 Alert rule ids}

    Dotted ["alert.<subsystem>.<what>"] constants.  The obs-names lint
    enforces the same two-way contract as for metrics: an unregistered
    alert-id-shaped literal under [lib/] or [bin/] fails the build, and
    so does a registered id no rule ever uses.  A rule's id is also its
    flight-recorder dedup key. *)

val alert_query_p99 : string
(** Query p99 latency above threshold. *)

val alert_wal_fsync_per_append : string
(** WAL fsyncs-per-append gauge above threshold (group commit not
    amortizing). *)

val alert_cache_hit_ratio : string
(** Query-cache hit ratio below threshold. *)

val alert_matview_staleness : string
(** Matview staleness gauge above threshold. *)

val alert_stats_misestimate_burn : string
(** SLO burn rate on the planner misestimate ratio. *)

val alert_capture_stalled : string
(** Capture-event signal absent (ingest stalled mid-run). *)

val alert_ids : string list
(** Every registered alert rule id, in declaration order. *)

val alert_registered : string -> bool

(** {2 Health check names}

    Dotted ["health.<subsystem>.<what>"] constants, linted both ways
    like alert ids.  These name the checks {!Health} aggregates into
    the provd readiness verdict. *)

val health_wal_manifest : string
(** The segmented WAL's manifest parses and names only existing files. *)

val health_stats_fresh : string
(** Every analyzed table's statistics are epoch-fresh. *)

val health_alerts_clear : string
(** No alert rule is currently firing (critical = failing). *)

val health_epochs_consistent : string
(** Cache/matview epochs agree with their tables (no stale serve). *)

val health_daemon_queue : string
(** The provd session queue is accepting events and not saturated. *)

val health_names : string list
(** Every registered health check name, in declaration order. *)

val health_registered : string -> bool
