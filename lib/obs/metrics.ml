(* The metrics registry: monotonic counters, gauges, and log-linear
   latency histograms.  Everything is designed around two constraints:

   - recording must be O(1) and allocation-free on the hot path, so the
     instrumented layers (query executor, WAL) pay nanoseconds, not
     microseconds; callers intern a handle once at module init and the
     record itself is a couple of array/field writes;
   - a single global switch (the PROV_OBS environment variable, or
     [set_enabled]) turns every record into one branch, so tier-1
     benchmarks can run with instrumentation compiled in but off.

   Histograms are HDR-style log-linear: 16 linear sub-buckets per power
   of two, giving a worst-case relative error of 1/16 on any quantile
   while using a fixed ~1k-slot array per histogram regardless of the
   sample range. *)

let on =
  ref
    (match Sys.getenv_opt "PROV_OBS" with
    | Some ("off" | "0" | "false" | "OFF") -> false
    | _ -> true)

let enabled () = !on
let set_enabled b = on := b

(* --- counters --- *)

type counter = { c_name : string; mutable c_value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace counters name c;
    c

(* Counters saturate at [max_int] rather than wrapping negative: a
   64-bit count of anything this process can do will not get there, but
   the guarantee keeps downstream arithmetic (rates, deltas) sane even
   under adversarial [add]s. *)
let add c by =
  if !on && by > 0 then begin
    let s = c.c_value + by in
    c.c_value <- (if s < c.c_value then max_int else s)
  end

let incr c = add c 1
let value c = c.c_value
let counter_value name = match Hashtbl.find_opt counters name with Some c -> c.c_value | None -> 0

(* --- gauges --- *)

type gauge = { g_name : string; mutable g_value : float }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace gauges name g;
    g

let set_gauge g v = if !on then g.g_value <- v
let gauge_value name = match Hashtbl.find_opt gauges name with Some g -> g.g_value | None -> 0.0

(* --- histograms --- *)

(* Log-linear bucket mapping with [sub_bits] = 4: values below 16 map to
   themselves (exact); above that, a value with highest set bit [e] lands
   in one of 16 linear sub-buckets of the octave [2^e, 2^(e+1)). *)

let sub_bits = 4
let sub_count = 1 lsl sub_bits
let bucket_count = 960 (* covers every non-negative OCaml int *)

let msb v =
  let v, acc = if v lsr 32 <> 0 then (v lsr 32, 32) else (v, 0) in
  let v, acc = if v lsr 16 <> 0 then (v lsr 16, acc + 16) else (v, acc) in
  let v, acc = if v lsr 8 <> 0 then (v lsr 8, acc + 8) else (v, acc) in
  let v, acc = if v lsr 4 <> 0 then (v lsr 4, acc + 4) else (v, acc) in
  let v, acc = if v lsr 2 <> 0 then (v lsr 2, acc + 2) else (v, acc) in
  if v lsr 1 <> 0 then acc + 1 else acc

let bucket_of_value v =
  let v = if v < 0 then 0 else v in
  if v < sub_count then v
  else begin
    let e = msb v in
    ((e - sub_bits + 1) * sub_count) + ((v lsr (e - sub_bits)) land (sub_count - 1))
  end

let bucket_bounds i =
  if i < sub_count then (i, i)
  else begin
    let block = i lsr sub_bits and off = i land (sub_count - 1) in
    let e = block + sub_bits - 1 in
    let lo = (sub_count + off) lsl (e - sub_bits) in
    (lo, lo + (1 lsl (e - sub_bits)) - 1)
  end

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : int;
  mutable h_max : int;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        buckets = Array.make bucket_count 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = max_int;
        h_max = 0;
      }
    in
    Hashtbl.replace histograms name h;
    h

let observe h v =
  if !on then begin
    let v = if v < 0 then 0 else v in
    let b = bucket_of_value v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. float_of_int v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let time h f =
  if !on then begin
    let t0 = Provkit_util.Timing.now_ns () in
    let result = f () in
    observe h (Int64.to_int (Int64.sub (Provkit_util.Timing.now_ns ()) t0));
    result
  end
  else f ()

let hist_count h = h.h_count

(* The estimate for quantile [q] is the inclusive upper bound of the
   bucket holding the rank-⌈q·n⌉ order statistic, so it brackets the true
   quantile from above within the bucket's 1/16 relative width — the
   property the test suite checks against exact order statistics. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
      if r < 1 then 1 else if r > h.h_count then h.h_count else r
    in
    let result = ref (float_of_int h.h_max) in
    (try
       let cum = ref 0 in
       for i = 0 to bucket_count - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= rank then begin
           let _, hi = bucket_bounds i in
           result := float_of_int hi;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

(* --- snapshots --- *)

type hist_summary = {
  hs_count : int;
  hs_sum : float;
  hs_min : int;
  hs_max : int;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type snapshot = {
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : (string * hist_summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let summarize h =
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_min = (if h.h_count = 0 then 0 else h.h_min);
    hs_max = h.h_max;
    hs_p50 = quantile h 0.50;
    hs_p95 = quantile h 0.95;
    hs_p99 = quantile h 0.99;
  }

let snapshot () =
  {
    snap_counters =
      List.sort by_name (Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) counters []);
    snap_gauges =
      List.sort by_name (Hashtbl.fold (fun k g acc -> (k, g.g_value) :: acc) gauges []);
    snap_histograms =
      List.sort by_name (Hashtbl.fold (fun k h acc -> (k, summarize h) :: acc) histograms []);
  }

(* Reset zeroes values in place: interned handles held by instrumented
   modules stay live and registered. *)
let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.buckets 0 bucket_count 0;
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- max_int;
      h.h_max <- 0)
    histograms

(* --- rendering --- *)

let ns_to_ms ns = ns /. 1e6

let render snap =
  let buf = Buffer.create 1024 in
  if snap.snap_counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    Buffer.add_string buf
      (Provkit_util.Table_fmt.render
         ~aligns:[ Provkit_util.Table_fmt.Left; Provkit_util.Table_fmt.Right ]
         ~header:[ "name"; "value" ]
         (List.map (fun (k, v) -> [ k; string_of_int v ]) snap.snap_counters))
  end;
  if snap.snap_gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    Buffer.add_string buf
      (Provkit_util.Table_fmt.render
         ~aligns:[ Provkit_util.Table_fmt.Left; Provkit_util.Table_fmt.Right ]
         ~header:[ "name"; "value" ]
         (List.map (fun (k, v) -> [ k; Printf.sprintf "%.3f" v ]) snap.snap_gauges))
  end;
  if snap.snap_histograms <> [] then begin
    Buffer.add_string buf "histograms (ns):\n";
    Buffer.add_string buf
      (Provkit_util.Table_fmt.render
         ~aligns:
           Provkit_util.Table_fmt.
             [ Left; Right; Right; Right; Right; Right; Right ]
         ~header:[ "name"; "count"; "min"; "p50"; "p95"; "p99"; "max" ]
         (List.map
            (fun (k, s) ->
              [
                k;
                string_of_int s.hs_count;
                string_of_int s.hs_min;
                Printf.sprintf "%.0f" s.hs_p50;
                Printf.sprintf "%.0f" s.hs_p95;
                Printf.sprintf "%.0f" s.hs_p99;
                string_of_int s.hs_max;
              ])
            snap.snap_histograms))
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 1024 in
  let obj fields =
    "{" ^ String.concat "," fields ^ "}"
  in
  let kv_int (k, v) = Printf.sprintf "\"%s\":%d" (json_escape k) v in
  let kv_float (k, v) = Printf.sprintf "\"%s\":%g" (json_escape k) v in
  let kv_hist (k, s) =
    Printf.sprintf
      "\"%s\":{\"count\":%d,\"sum\":%g,\"min\":%d,\"max\":%d,\"p50\":%g,\"p95\":%g,\"p99\":%g}"
      (json_escape k) s.hs_count s.hs_sum s.hs_min s.hs_max s.hs_p50 s.hs_p95 s.hs_p99
  in
  Buffer.add_string buf
    (obj
       [
         "\"counters\":" ^ obj (List.map kv_int snap.snap_counters);
         "\"gauges\":" ^ obj (List.map kv_float snap.snap_gauges);
         "\"histograms\":" ^ obj (List.map kv_hist snap.snap_histograms);
       ]);
  Buffer.contents buf

let headline snap =
  let c name = Option.value ~default:0 (List.assoc_opt name snap.snap_counters) in
  let parts =
    [
      Printf.sprintf "events=%d" (c Names.capture_events);
      Printf.sprintf "wal.appends=%d" (c Names.wal_appends);
      Printf.sprintf "queries=%d" (c Names.query_count);
    ]
  in
  let parts =
    match List.assoc_opt Names.query_latency_ns snap.snap_histograms with
    | Some s when s.hs_count > 0 ->
      parts
      @ [
          Printf.sprintf "q.p50=%.3fms" (ns_to_ms s.hs_p50);
          Printf.sprintf "q.p95=%.3fms" (ns_to_ms s.hs_p95);
        ]
    | _ -> parts
  in
  String.concat " " parts
