(* Span-based tracing: structured (name, attrs, start, duration) events
   kept in a bounded in-memory ring, with an optional sink for streaming
   each span out (e.g. as JSONL) the moment it closes.  Recording obeys
   the same global switch as the metrics registry, so traced hot paths
   cost one branch when observability is off. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
}

let m_spans = Metrics.counter Names.trace_spans
let m_dropped = Metrics.counter Names.trace_dropped

let default_capacity = 1024

type ring = { mutable slots : span option array; mutable next : int; mutable written : int }

let ring = { slots = Array.make default_capacity None; next = 0; written = 0 }

let sink : (span -> unit) option ref = ref None

let set_sink f = sink := f

let capacity () = Array.length ring.slots

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  ring.slots <- Array.make n None;
  ring.next <- 0;
  ring.written <- 0

let clear () =
  Array.fill ring.slots 0 (Array.length ring.slots) None;
  ring.next <- 0;
  ring.written <- 0

let record ?(attrs = []) name ~start_ns ~dur_ns =
  if Metrics.enabled () then begin
    let s = { name; attrs; start_ns; dur_ns } in
    let cap = Array.length ring.slots in
    if ring.written >= cap && ring.slots.(ring.next) <> None then Metrics.incr m_dropped;
    ring.slots.(ring.next) <- Some s;
    ring.next <- (ring.next + 1) mod cap;
    ring.written <- ring.written + 1;
    Metrics.incr m_spans;
    match !sink with None -> () | Some f -> f s
  end

let with_span ?attrs name f =
  if Metrics.enabled () then begin
    let start_ns = Provkit_util.Timing.now_ns () in
    let finally () =
      let dur_ns = Int64.sub (Provkit_util.Timing.now_ns ()) start_ns in
      record ?attrs name ~start_ns ~dur_ns
    in
    Fun.protect ~finally f
  end
  else f ()

(* Oldest-first contents of the ring. *)
let recent () =
  let cap = Array.length ring.slots in
  let spans = ref [] in
  (* slot [next] holds the oldest span; walking down from [next+cap-1]
     and prepending yields oldest-first *)
  for i = cap - 1 downto 0 do
    match ring.slots.((ring.next + i) mod cap) with
    | Some s -> spans := s :: !spans
    | None -> ()
  done;
  !spans

let recorded () = ring.written

let span_to_json s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"start_ns\":%Ld,\"dur_ns\":%Ld,\"attrs\":{"
       (Metrics.json_escape s.name) s.start_ns s.dur_ns);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v)))
    s.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let dump_jsonl oc = List.iter (fun s -> output_string oc (span_to_json s ^ "\n")) (recent ())

let jsonl_sink_to_channel oc = Some (fun s -> output_string oc (span_to_json s ^ "\n"))
