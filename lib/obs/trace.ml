(* Span-based tracing: structured (name, attrs, start, duration) events
   kept in a bounded in-memory ring, with an optional sink for streaming
   each span out (e.g. as JSONL) the moment it closes.  Recording obeys
   the same global switch as the metrics registry, so traced hot paths
   cost one branch when observability is off.

   Spans form trees: [with_span] maintains an ambient stack of open
   frames, so nested calls link automatically via trace_id / span_id /
   parent_id.  Ids come from a seeded splitmix64 stream
   ([Provkit_util.Prng]), never from wall clock, so a seeded run yields
   a reproducible id sequence. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_ns : int64;
  dur_ns : int64;
  trace_id : int64;
  span_id : int64;
  parent_id : int64 option;
}

type open_span = {
  o_name : string;
  o_trace_id : int64;
  o_span_id : int64;
  o_parent_id : int64 option;
  o_start_ns : int64;
}

type tree = { node : span; children : tree list }

let m_spans = Metrics.counter Names.trace_spans
let m_dropped = Metrics.counter Names.trace_dropped

let default_capacity = 1024

type ring = { mutable slots : span option array; mutable next : int; mutable written : int }

let ring = { slots = Array.make default_capacity None; next = 0; written = 0 }

(* Serializes the ring and the id stream: under provd spans close on
   every domain, and an unguarded slot/next update pair would tear. *)
let lock = Mutex.create ()

let sink : (span -> unit) option ref = ref None

let set_sink f = sink := f

let capacity () = Array.length ring.slots

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be positive";
  Mutex.protect lock (fun () ->
      ring.slots <- Array.make n None;
      ring.next <- 0;
      ring.written <- 0)

let clear () =
  Mutex.protect lock (fun () ->
      Array.fill ring.slots 0 (Array.length ring.slots) None;
      ring.next <- 0;
      ring.written <- 0)

(* --- span ids --- *)

let id_rng = ref (Provkit_util.Prng.create 0x0b5)

let seed_ids seed = Mutex.protect lock (fun () -> id_rng := Provkit_util.Prng.create seed)

(* 0 is reserved to mean "no id" (v1 JSONL lines deserialize to it). *)
let fresh_id () =
  Mutex.protect lock (fun () ->
      let rec go () =
        let v = Provkit_util.Prng.bits64 !id_rng in
        if Int64.equal v 0L then go () else v
      in
      go ())

(* --- ambient open-span stack --- *)

type frame = { f_name : string; f_trace_id : int64; f_span_id : int64; f_start_ns : int64 }

(* The open-frame stack is ambient *per domain*: a span opened on the
   ingest domain must never become the parent of a span recorded on a
   reader domain, so each domain gets its own stack via DLS. *)
let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let open_spans () =
  let rec build = function
    | [] -> []
    | f :: rest ->
        let parent = match rest with [] -> None | p :: _ -> Some p.f_span_id in
        {
          o_name = f.f_name;
          o_trace_id = f.f_trace_id;
          o_span_id = f.f_span_id;
          o_parent_id = parent;
          o_start_ns = f.f_start_ns;
        }
        :: build rest
  in
  build !(stack ())

let push s =
  Mutex.protect lock (fun () ->
      let cap = Array.length ring.slots in
      if ring.written >= cap && ring.slots.(ring.next) <> None then Metrics.incr m_dropped;
      ring.slots.(ring.next) <- Some s;
      ring.next <- (ring.next + 1) mod cap;
      ring.written <- ring.written + 1);
  Metrics.incr m_spans;
  match !sink with None -> () | Some f -> f s

let record ?(attrs = []) name ~start_ns ~dur_ns =
  if Metrics.enabled () then begin
    let trace_id, parent_id, start_ns =
      match !(stack ()) with
      | [] -> (fresh_id (), None, start_ns)
      | f :: _ ->
          (* enclosure invariant: a child cannot start before the frame
             it is recorded under *)
          let start_ns = if Int64.compare start_ns f.f_start_ns < 0 then f.f_start_ns else start_ns in
          (f.f_trace_id, Some f.f_span_id, start_ns)
    in
    push { name; attrs; start_ns; dur_ns; trace_id; span_id = fresh_id (); parent_id }
  end

let with_span ?(attrs = []) name f =
  if Metrics.enabled () then begin
    let start_ns = Provkit_util.Timing.now_ns () in
    let stack = stack () in
    let trace_id, parent_id =
      match !stack with [] -> (fresh_id (), None) | fr :: _ -> (fr.f_trace_id, Some fr.f_span_id)
    in
    let span_id = fresh_id () in
    stack := { f_name = name; f_trace_id = trace_id; f_span_id = span_id; f_start_ns = start_ns } :: !stack;
    let finally () =
      (match !stack with [] -> () | _ :: rest -> stack := rest);
      let dur_ns = Int64.sub (Provkit_util.Timing.now_ns ()) start_ns in
      push { name; attrs; start_ns; dur_ns; trace_id; span_id; parent_id }
    in
    Fun.protect ~finally f
  end
  else f ()

(* Oldest-first contents of the ring. *)
let recent () =
  Mutex.protect lock (fun () ->
      let cap = Array.length ring.slots in
      let spans = ref [] in
      (* slot [next] holds the oldest span; walking down from [next+cap-1]
         and prepending yields oldest-first *)
      for i = cap - 1 downto 0 do
        match ring.slots.((ring.next + i) mod cap) with
        | Some s -> spans := s :: !spans
        | None -> ()
      done;
      !spans)

let recorded () = Mutex.protect lock (fun () -> ring.written)

(* --- tree assembly --- *)

(* Children close before their parents, so in an oldest-first list every
   span's children precede it.  One pass with a pending-children table
   keyed by parent id therefore assembles all trees; spans whose parent
   was overwritten in the ring surface as extra roots. *)
let assemble spans =
  let pending : (int64, tree list) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  List.iter
    (fun s ->
      let children =
        match Hashtbl.find_opt pending s.span_id with
        | None -> []
        | Some ts ->
            Hashtbl.remove pending s.span_id;
            List.rev ts
      in
      let t = { node = s; children } in
      match s.parent_id with
      | None -> roots := t :: !roots
      | Some p ->
          let siblings = match Hashtbl.find_opt pending p with None -> [] | Some ts -> ts in
          Hashtbl.replace pending p (t :: siblings))
    spans;
  let orphans = Hashtbl.fold (fun _ ts acc -> List.rev_append ts acc) pending [] in
  List.rev_append !roots orphans

(* Parent/child pairs where the child's [start, start+dur] interval is
   not contained in the parent's.  Empty on anything the tracer itself
   produced; exposed so tests can state the invariant. *)
let enclosure_violations spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.span_id s) spans;
  List.filter_map
    (fun s ->
      match s.parent_id with
      | None -> None
      | Some pid -> (
          match Hashtbl.find_opt by_id pid with
          | None -> None
          | Some p ->
              let end_ns x = Int64.add x.start_ns x.dur_ns in
              if Int64.compare s.start_ns p.start_ns < 0 || Int64.compare (end_ns s) (end_ns p) > 0
              then
                Some
                  (Printf.sprintf "span %S [%Ld,%Ld] not enclosed by parent %S [%Ld,%Ld]" s.name
                     s.start_ns (end_ns s) p.name p.start_ns (end_ns p))
              else None))
    spans

(* --- folded stacks --- *)

(* "root;child;leaf self_ns" aggregation in the format flamegraph
   tooling consumes.  Self time is a span's duration minus the summed
   durations of its direct children (clamped at zero against clock
   jitter). *)
let folded spans =
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.span_id s) spans;
  let child_ns = Hashtbl.create 64 in
  List.iter
    (fun s ->
      match s.parent_id with
      | None -> ()
      | Some pid ->
          if Hashtbl.mem by_id pid then
            let prev = match Hashtbl.find_opt child_ns pid with None -> 0L | Some v -> v in
            Hashtbl.replace child_ns pid (Int64.add prev s.dur_ns))
    spans;
  let rec path s =
    match s.parent_id with
    | None -> [ s.name ]
    | Some pid -> (
        match Hashtbl.find_opt by_id pid with None -> [ s.name ] | Some p -> path p @ [ s.name ])
  in
  let acc = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun s ->
      let consumed = match Hashtbl.find_opt child_ns s.span_id with None -> 0L | Some v -> v in
      let self = Int64.sub s.dur_ns consumed in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      let key = String.concat ";" (path s) in
      match Hashtbl.find_opt acc key with
      | None ->
          Hashtbl.replace acc key self;
          order := key :: !order
      | Some prev -> Hashtbl.replace acc key (Int64.add prev self))
    spans;
  List.rev_map (fun key -> (key, Hashtbl.find acc key)) !order

(* --- rendering --- *)

let render_trees trees =
  let buf = Buffer.create 256 in
  let rec go depth t =
    Buffer.add_string buf
      (Printf.sprintf "%s%s  %.3f ms\n" (String.make (2 * depth) ' ') t.node.name
         (Int64.to_float t.node.dur_ns /. 1e6));
    List.iter (go (depth + 1)) t.children
  in
  List.iter (go 0) trees;
  Buffer.contents buf

(* --- JSONL (v2, with a v1-compatible reader) --- *)

let span_to_json s =
  let buf = Buffer.create 160 in
  Buffer.add_string buf
    (Printf.sprintf "{\"v\":2,\"name\":\"%s\",\"trace_id\":\"%Lx\",\"span_id\":\"%Lx\",\"parent_id\":%s,\"start_ns\":%Ld,\"dur_ns\":%Ld,\"attrs\":{"
       (Metrics.json_escape s.name) s.trace_id s.span_id
       (match s.parent_id with None -> "null" | Some p -> Printf.sprintf "\"%Lx\"" p)
       s.start_ns s.dur_ns);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v)))
    s.attrs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* Minimal JSON-object reader for span lines.  Handles exactly the
   subset span_to_json emits (flat object, string/number/null values,
   one nested "attrs" object) plus the v1 layout, which had no "v"
   marker and no id fields. *)
module Jsonl_reader = struct
  type tok = { src : string; mutable pos : int }

  exception Bad

  let peek t = if t.pos < String.length t.src then Some t.src.[t.pos] else None

  let skip_ws t =
    while t.pos < String.length t.src && (t.src.[t.pos] = ' ' || t.src.[t.pos] = '\t') do
      t.pos <- t.pos + 1
    done

  let expect t c =
    skip_ws t;
    match peek t with
    | Some c' when c' = c -> t.pos <- t.pos + 1
    | Some _ | None -> raise Bad

  let string t =
    expect t '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if t.pos >= String.length t.src then raise Bad;
      match t.src.[t.pos] with
      | '"' -> t.pos <- t.pos + 1
      | '\\' ->
          if t.pos + 1 >= String.length t.src then raise Bad;
          (match t.src.[t.pos + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | c -> Buffer.add_char buf c);
          t.pos <- t.pos + 2;
          go ()
      | c ->
          Buffer.add_char buf c;
          t.pos <- t.pos + 1;
          go ()
    in
    go ();
    Buffer.contents buf

  let scalar t =
    skip_ws t;
    let start = t.pos in
    while
      t.pos < String.length t.src
      &&
      match t.src.[t.pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | 'a' .. 'd' | 'f' .. 'z' -> true
      | _ -> false
    do
      t.pos <- t.pos + 1
    done;
    if t.pos = start then raise Bad;
    String.sub t.src start (t.pos - start)

  (* Parse one span line; returns the field map.  Attrs come back in
     emission order. *)
  let fields line =
    let t = { src = line; pos = 0 } in
    let scalars = ref [] and attrs = ref [] in
    expect t '{';
    let rec members () =
      skip_ws t;
      let key = string t in
      expect t ':';
      skip_ws t;
      (if key = "attrs" then begin
         expect t '{';
         skip_ws t;
         (if peek t = Some '}' then t.pos <- t.pos + 1
          else
            let rec attr_members () =
              let k = string t in
              expect t ':';
              let v = string t in
              attrs := (k, v) :: !attrs;
              skip_ws t;
              match peek t with
              | Some ',' ->
                  t.pos <- t.pos + 1;
                  skip_ws t;
                  attr_members ()
              | Some '}' -> t.pos <- t.pos + 1
              | Some _ | None -> raise Bad
            in
            attr_members ())
       end
       else
         match peek t with
         | Some '"' -> scalars := (key, string t) :: !scalars
         | Some _ -> scalars := (key, scalar t) :: !scalars
         | None -> raise Bad);
      skip_ws t;
      match peek t with
      | Some ',' ->
          t.pos <- t.pos + 1;
          members ()
      | Some '}' -> t.pos <- t.pos + 1
      | Some _ | None -> raise Bad
    in
    members ();
    (!scalars, List.rev !attrs)
end

let span_of_json line =
  match Jsonl_reader.fields line with
  | exception Jsonl_reader.Bad -> None
  | scalars, attrs -> (
      let find k = List.assoc_opt k scalars in
      let id_of s = Int64.of_string ("0x" ^ s) in
      match (find "name", find "start_ns", find "dur_ns") with
      | Some name, Some start_ns, Some dur_ns -> (
          try
            let trace_id = match find "trace_id" with None -> 0L | Some s -> id_of s in
            let span_id = match find "span_id" with None -> 0L | Some s -> id_of s in
            let parent_id =
              match find "parent_id" with None | Some "null" -> None | Some s -> Some (id_of s)
            in
            Some
              {
                name;
                attrs;
                start_ns = Int64.of_string start_ns;
                dur_ns = Int64.of_string dur_ns;
                trace_id;
                span_id;
                parent_id;
              }
          with Failure _ -> None)
      | _, _, _ -> None)

let dump_jsonl oc = List.iter (fun s -> output_string oc (span_to_json s ^ "\n")) (recent ())

let jsonl_sink_to_channel oc = Some (fun s -> output_string oc (span_to_json s ^ "\n"))
