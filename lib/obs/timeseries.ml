(* The metrics-snapshot ring.  Points are full Metrics.snapshot values:
   at a few hundred registered metrics and a default capacity of 240
   points the ring tops out around a megabyte, and keeping the whole
   snapshot means delta arithmetic never loses a metric that appeared
   mid-series. *)

type point = { pt_ns : int64; pt_snap : Metrics.snapshot }

type kind = Counter | Gauge | Hist_count

type series = {
  s_name : string;
  s_kind : kind;
  s_prev : float;
  s_cur : float;
  s_delta : float;
  s_rate : float;
}

type t = { cap : int; lock : Mutex.t; q : point Queue.t }

let create ?(capacity = 240) () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  (* The per-ring lock serializes Queue mutation (structurally unsafe
     under domains) and, by running observers inside it, the alert
     engine's state transitions when provd pulses from a background
     domain. *)
  { cap = capacity; lock = Mutex.create (); q = Queue.create () }

let capacity t = t.cap

let m_points = Metrics.counter Names.timeseries_points

(* Point observers: the alert engine and the telemetry journal react to
   every recorded point without this module depending on either.
   Installed once at startup (or test setup), then only read. *)
let observers : (point -> unit) list ref = ref []

let add_observer f = observers := !observers @ [ f ]
let clear_observers () = observers := []

let push t pt =
  Queue.push pt t.q;
  while Queue.length t.q > t.cap do
    ignore (Queue.pop t.q)
  done

let record ?now_ns t =
  let now = match now_ns with Some n -> n | None -> Provkit_util.Timing.now_ns () in
  let pt = { pt_ns = now; pt_snap = Metrics.snapshot () } in
  Mutex.protect t.lock (fun () ->
      push t pt;
      List.iter (fun f -> f pt) !observers);
  Metrics.incr m_points;
  pt

let points t = Mutex.protect t.lock (fun () -> List.of_seq (Queue.to_seq t.q))
let length t = Mutex.protect t.lock (fun () -> Queue.length t.q)
let clear t = Mutex.protect t.lock (fun () -> Queue.clear t.q)

(* --- deltas and rates --- *)

let deltas_between older newer =
  let dt_s =
    let dt = Int64.to_float (Int64.sub newer.pt_ns older.pt_ns) /. 1e9 in
    if dt > 0.0 then dt else 0.0
  in
  (* A NaN or infinite gauge delta would poison the rate column (and
     any alert rule reading it); report idle instead. *)
  let rate d = if dt_s > 0.0 && Float.is_finite d then d /. dt_s else 0.0 in
  let row kind name prev cur ~monotonic =
    let delta = cur -. prev in
    (* A counter going backwards means the registry was reset between
       the points; report idle rather than a negative rate. *)
    let delta = if monotonic && delta < 0.0 then 0.0 else delta in
    { s_name = name; s_kind = kind; s_prev = prev; s_cur = cur; s_delta = delta;
      s_rate = rate delta }
  in
  let counters =
    List.map
      (fun (name, cur) ->
        let prev =
          match List.assoc_opt name older.pt_snap.Metrics.snap_counters with
          | Some v -> float_of_int v
          | None -> 0.0
        in
        row Counter name prev (float_of_int cur) ~monotonic:true)
      newer.pt_snap.Metrics.snap_counters
  in
  let gauges =
    List.map
      (fun (name, cur) ->
        let prev =
          Option.value ~default:0.0 (List.assoc_opt name older.pt_snap.Metrics.snap_gauges)
        in
        row Gauge name prev cur ~monotonic:false)
      newer.pt_snap.Metrics.snap_gauges
  in
  let hists =
    List.map
      (fun (name, (s : Metrics.hist_summary)) ->
        let prev =
          match List.assoc_opt name older.pt_snap.Metrics.snap_histograms with
          | Some (p : Metrics.hist_summary) -> float_of_int p.Metrics.hs_count
          | None -> 0.0
        in
        row Hist_count name prev (float_of_int s.Metrics.hs_count) ~monotonic:true)
      newer.pt_snap.Metrics.snap_histograms
  in
  List.sort (fun a b -> String.compare a.s_name b.s_name) (counters @ gauges @ hists)

let last_deltas t =
  match List.rev (points t) with
  | newer :: older :: _ -> Some (deltas_between older newer)
  | _ -> None

let render rows =
  let fmt_num v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3f" v
  in
  let kind_name = function Counter -> "counter" | Gauge -> "gauge" | Hist_count -> "hist" in
  Provkit_util.Table_fmt.render
    ~aligns:
      Provkit_util.Table_fmt.[ Left; Left; Right; Right; Right ]
    ~header:[ "name"; "kind"; "value"; "delta"; "rate/s" ]
    (List.map
       (fun r ->
         [ r.s_name; kind_name r.s_kind; fmt_num r.s_cur; fmt_num r.s_delta;
           Printf.sprintf "%.1f" r.s_rate ])
       rows)

(* --- default ring + pulse --- *)

let default = create ()

let interval = ref 1024
let pulse_count = ref 0

let pulse_interval () = !interval

let set_pulse_interval n =
  if n <= 0 then invalid_arg "Timeseries.set_pulse_interval: must be positive";
  interval := n

let pulses () = !pulse_count

(* Guards only the pulse counter: the recorded point itself is covered
   by [default]'s own lock inside [record]. *)
let pulse_lock = Mutex.create ()

let pulse () =
  if Metrics.enabled () then begin
    let due =
      Mutex.protect pulse_lock (fun () ->
          incr pulse_count;
          !pulse_count mod !interval = 0)
    in
    if due then ignore (record default)
  end

(* --- Prometheus text exposition --- *)

let mangle name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

(* NaN and infinities are valid Prometheus sample tokens, but only as
   "NaN"/"+Inf"/"-Inf" — OCaml's %g would print "nan"/"inf", which
   scrapers reject. *)
let fmt_float v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus (snap : Metrics.snapshot) =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let n = mangle name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    snap.Metrics.snap_counters;
  List.iter
    (fun (name, v) ->
      let n = mangle name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n%s %s\n" n n (fmt_float v)))
    snap.Metrics.snap_gauges;
  List.iter
    (fun (name, (s : Metrics.hist_summary)) ->
      let n = mangle name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (fmt_float v)))
        [ ("0.5", s.Metrics.hs_p50); ("0.95", s.Metrics.hs_p95); ("0.99", s.Metrics.hs_p99) ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (fmt_float s.Metrics.hs_sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n s.Metrics.hs_count))
    snap.Metrics.snap_histograms;
  Buffer.contents buf
