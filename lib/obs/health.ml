(* The health aggregator: named checks composed into one Ok / Degraded
   / Failing verdict.  Checks are registered by the subsystems that can
   judge themselves — the segmented WAL contributes a manifest-sanity
   check, the stats catalog a freshness check, provctl an
   epoch-consistency check — and this module contributes the built-in
   "no open alerts" check over the alert engine.

   Check names are dotted "health.<subsystem>.<what>" constants from
   Names (the obs-names lint enforces registration), so `provctl
   health --json` output is greppable against a fixed vocabulary. *)

type verdict = Ok | Degraded | Failing

type check_result = { cr_name : string; cr_verdict : verdict; cr_detail : string }

type report = { h_verdict : verdict; h_checks : check_result list }

let verdict_name = function Ok -> "ok" | Degraded -> "degraded" | Failing -> "failing"

let rank = function Ok -> 0 | Degraded -> 1 | Failing -> 2

let worst a b = if rank a >= rank b then a else b

(* Registered checks, kept in registration order so the report reads
   in the order subsystems were wired.  Re-registering a name replaces
   it in place. *)
let checks : (string * (unit -> verdict * string)) list ref = ref []

let register name f =
  if List.mem_assoc name !checks then
    checks := List.map (fun (n, g) -> if n = name then (n, f) else (n, g)) !checks
  else checks := !checks @ [ (name, f) ]

let unregister name = checks := List.filter (fun (n, _) -> n <> name) !checks
let registered () = List.map fst !checks

let run () =
  let results =
    List.map
      (fun (name, f) ->
        let verdict, detail =
          (* Catch-all is deliberate: a check that raises — whatever it
             raises — must read as a failing check, never crash the
             health report that exists to explain failures. *)
          (try f ()
           with exn -> (Failing, Printf.sprintf "check raised: %s" (Printexc.to_string exn)))
          [@provlint.allow "banned-constructs"]
        in
        { cr_name = name; cr_verdict = verdict; cr_detail = detail })
      !checks
  in
  let overall = List.fold_left (fun acc r -> worst acc r.cr_verdict) Ok results in
  { h_verdict = overall; h_checks = results }

(* The built-in check: open critical alerts fail the process, open
   warnings degrade it, info-level firing is reported but healthy. *)
let alerts_check () =
  let firing = Alert.firing () in
  let by sev = List.filter (fun st -> st.Alert.st_rule.Alert.r_severity = sev) firing in
  let ids sts = String.concat ", " (List.map (fun st -> st.Alert.st_rule.Alert.r_id) sts) in
  match (by Alert.Critical, by Alert.Warning) with
  | [], [] ->
    let n = List.length (Alert.states ()) in
    ( Ok,
      if firing = [] then Printf.sprintf "no open alerts (%d rules)" n
      else Printf.sprintf "info-level only: %s" (ids firing) )
  | [], warns -> (Degraded, Printf.sprintf "warning alerts open: %s" (ids warns))
  | crits, _ -> (Failing, Printf.sprintf "critical alerts open: %s" (ids crits))

let () = register Names.health_alerts_clear alerts_check

let render report =
  let table =
    Provkit_util.Table_fmt.render
      ~aligns:Provkit_util.Table_fmt.[ Left; Left; Left ]
      ~header:[ "check"; "verdict"; "detail" ]
      (List.map (fun r -> [ r.cr_name; verdict_name r.cr_verdict; r.cr_detail ]) report.h_checks)
  in
  Printf.sprintf "%s\noverall: %s\n" table (verdict_name report.h_verdict)

let to_json report =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"verdict\":\"%s\",\"checks\":[" (verdict_name report.h_verdict));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"verdict\":\"%s\",\"detail\":\"%s\"}"
           (Metrics.json_escape r.cr_name) (verdict_name r.cr_verdict)
           (Metrics.json_escape r.cr_detail)))
    report.h_checks;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let exit_code report = match report.h_verdict with Failing -> 1 | Ok | Degraded -> 0
