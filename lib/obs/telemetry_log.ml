(* The durable telemetry journal: CRC-framed snapshot records appended
   on every recorded Timeseries point and on every alert transition, so
   `provctl top --since` and the alert engine can see history across
   restarts.

   The framing discipline mirrors the WAL's v2 codec: a magic header,
   then per record a 4-byte LE payload length, a 4-byte LE CRC-32 of
   the payload, and the payload itself.  Replay verifies every frame
   and keeps the longest clean prefix — a crash-truncated or corrupted
   tail is detected, reported (flight incident +
   {!Names.telemetry_journal_truncations}), and cut away on the next
   {!open_} exactly like WAL recovery truncates a torn segment.

   This lives in lib/obs, which cannot depend on the relstore codec, so
   the framing is implemented here against {!Provkit_util.Crc32}
   directly; the discipline (length, checksum, clean-prefix recovery)
   is the same. *)

let magic = "PTJ1\n"

type t = { tj_path : string; tj_oc : out_channel; mutable tj_closed : bool }

type replay = {
  rp_points : Timeseries.point list;  (** oldest first *)
  rp_transitions : Alert.transition list;  (** oldest first *)
  rp_records : int;
  rp_truncated : bool;  (** a torn or corrupt tail was cut away *)
  rp_clean_bytes : int;  (** length of the verified prefix, magic included *)
}

let m_appends = Metrics.counter Names.telemetry_journal_appends
let m_replays = Metrics.counter Names.telemetry_journal_replays
let m_truncations = Metrics.counter Names.telemetry_journal_truncations

(* --- payload encoding --- *)

let tag_point = 1
let tag_transition = 2

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_u32 buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let w_i64 buf v =
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

let w_f64 buf v = w_i64 buf (Int64.bits_of_float v)

let w_str buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let encode_point (pt : Timeseries.point) =
  let buf = Buffer.create 512 in
  w_u8 buf tag_point;
  w_i64 buf pt.Timeseries.pt_ns;
  let snap = pt.Timeseries.pt_snap in
  w_u32 buf (List.length snap.Metrics.snap_counters);
  List.iter
    (fun (name, v) ->
      w_str buf name;
      w_i64 buf (Int64.of_int v))
    snap.Metrics.snap_counters;
  w_u32 buf (List.length snap.Metrics.snap_gauges);
  List.iter
    (fun (name, v) ->
      w_str buf name;
      w_f64 buf v)
    snap.Metrics.snap_gauges;
  w_u32 buf (List.length snap.Metrics.snap_histograms);
  List.iter
    (fun (name, (s : Metrics.hist_summary)) ->
      w_str buf name;
      w_i64 buf (Int64.of_int s.Metrics.hs_count);
      w_f64 buf s.Metrics.hs_sum;
      w_i64 buf (Int64.of_int s.Metrics.hs_min);
      w_i64 buf (Int64.of_int s.Metrics.hs_max);
      w_f64 buf s.Metrics.hs_p50;
      w_f64 buf s.Metrics.hs_p95;
      w_f64 buf s.Metrics.hs_p99)
    snap.Metrics.snap_histograms;
  Buffer.contents buf

let encode_transition (tr : Alert.transition) =
  let buf = Buffer.create 64 in
  w_u8 buf tag_transition;
  w_u32 buf tr.Alert.tr_seq;
  w_str buf tr.Alert.tr_rule;
  w_u8 buf (match tr.Alert.tr_kind with Alert.Fire -> 1 | Alert.Resolve -> 2);
  w_i64 buf tr.Alert.tr_ns;
  w_f64 buf tr.Alert.tr_value;
  w_u8 buf
    (match tr.Alert.tr_severity with
    | Alert.Info -> 0
    | Alert.Warning -> 1
    | Alert.Critical -> 2);
  Buffer.contents buf

(* --- payload decoding --- *)

exception Bad_frame

type cursor = { src : string; mutable pos : int }

let r_u8 c =
  if c.pos + 1 > String.length c.src then raise Bad_frame;
  let v = Char.code c.src.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  if c.pos + 4 > String.length c.src then raise Bad_frame;
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code c.src.[c.pos + i]
  done;
  c.pos <- c.pos + 4;
  !v

let r_i64 c =
  if c.pos + 8 > String.length c.src then raise Bad_frame;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.src.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let r_f64 c = Int64.float_of_bits (r_i64 c)

let r_str c =
  let len = r_u32 c in
  if len < 0 || c.pos + len > String.length c.src then raise Bad_frame;
  let s = String.sub c.src c.pos len in
  c.pos <- c.pos + len;
  s

let r_list c read_one =
  let n = r_u32 c in
  if n < 0 || n > 1_000_000 then raise Bad_frame;
  List.init n (fun _ -> read_one c)

let decode_point c =
  let ns = r_i64 c in
  let counters = r_list c (fun c ->
      let name = r_str c in
      (name, Int64.to_int (r_i64 c)))
  in
  let gauges = r_list c (fun c ->
      let name = r_str c in
      (name, r_f64 c))
  in
  let hists = r_list c (fun c ->
      let name = r_str c in
      let hs_count = Int64.to_int (r_i64 c) in
      let hs_sum = r_f64 c in
      let hs_min = Int64.to_int (r_i64 c) in
      let hs_max = Int64.to_int (r_i64 c) in
      let hs_p50 = r_f64 c in
      let hs_p95 = r_f64 c in
      let hs_p99 = r_f64 c in
      ( name,
        { Metrics.hs_count; hs_sum; hs_min; hs_max; hs_p50; hs_p95; hs_p99 } ))
  in
  {
    Timeseries.pt_ns = ns;
    pt_snap =
      { Metrics.snap_counters = counters; snap_gauges = gauges; snap_histograms = hists };
  }

let decode_transition c =
  let seq = r_u32 c in
  let rule = r_str c in
  let kind = match r_u8 c with 1 -> Alert.Fire | 2 -> Alert.Resolve | _ -> raise Bad_frame in
  let ns = r_i64 c in
  let value = r_f64 c in
  let severity =
    match r_u8 c with
    | 0 -> Alert.Info
    | 1 -> Alert.Warning
    | 2 -> Alert.Critical
    | _ -> raise Bad_frame
  in
  {
    Alert.tr_seq = seq;
    tr_rule = rule;
    tr_kind = kind;
    tr_ns = ns;
    tr_value = value;
    tr_severity = severity;
  }

(* --- replay --- *)

let read_file path =
  if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all else ""

(* Walk frames from the raw bytes, stopping at the first frame that is
   short, fails its CRC, or does not decode.  Everything before the
   stop point is the clean prefix. *)
let parse raw =
  let len = String.length raw in
  let points = ref [] and transitions = ref [] and records = ref 0 in
  let truncated = ref false in
  let clean = ref 0 in
  if len = 0 then ()
  else if len < String.length magic || String.sub raw 0 (String.length magic) <> magic then
    (* Not even a valid header: the whole file is a torn/foreign tail. *)
    truncated := true
  else begin
    clean := String.length magic;
    let pos = ref !clean in
    let stop ~torn = if torn then truncated := true in
    (try
       while !pos < len do
         if !pos + 8 > len then begin
           stop ~torn:true;
           raise Exit
         end;
         let plen =
           let v = ref 0 in
           for i = 3 downto 0 do
             v := (!v lsl 8) lor Char.code raw.[!pos + i]
           done;
           !v
         in
         let crc = Provkit_util.Crc32.of_le_bytes raw (!pos + 4) in
         if plen <= 0 || plen > 16_777_216 || !pos + 8 + plen > len then begin
           stop ~torn:true;
           raise Exit
         end;
         if Provkit_util.Crc32.digest ~pos:(!pos + 8) ~len:plen raw <> crc then begin
           stop ~torn:true;
           raise Exit
         end;
         let c = { src = String.sub raw (!pos + 8) plen; pos = 0 } in
         (match r_u8 c with
         | t when t = tag_point -> points := decode_point c :: !points
         | t when t = tag_transition -> transitions := decode_transition c :: !transitions
         | _ -> raise Bad_frame);
         incr records;
         pos := !pos + 8 + plen;
         clean := !pos
       done
     with
    | Exit -> ()
    | Bad_frame -> stop ~torn:true)
  end;
  {
    rp_points = List.rev !points;
    rp_transitions = List.rev !transitions;
    rp_records = !records;
    rp_truncated = !truncated;
    rp_clean_bytes = !clean;
  }

let replay ~path =
  let rp = parse (read_file path) in
  Metrics.incr m_replays;
  if rp.rp_truncated then begin
    Metrics.incr m_truncations;
    Flight.record "telemetry.journal.truncated"
      ~dedup:("telemetry.journal.truncated:" ^ path)
      ~attrs:
        [
          ("path", path);
          ("clean_bytes", string_of_int rp.rp_clean_bytes);
          ("records", string_of_int rp.rp_records);
        ]
  end;
  rp

let replay_into ring ~path =
  let rp = replay ~path in
  (* Timeseries.push, not record: replay must not re-snapshot, re-tick,
     or re-notify the observers that wrote this journal. *)
  List.iter (fun pt -> Timeseries.push ring pt) rp.rp_points;
  rp

(* --- the writer --- *)

let write_frame oc payload =
  let hdr = Buffer.create 8 in
  w_u32 hdr (String.length payload);
  Buffer.add_string hdr (Provkit_util.Crc32.to_le_bytes (Provkit_util.Crc32.digest payload));
  output_string oc (Buffer.contents hdr);
  output_string oc payload;
  flush oc

let open_ ~path =
  (* Recover first: cut any torn tail back to the clean prefix (the
     same discipline as WAL segment recovery), then append after it. *)
  let raw = read_file path in
  let rp = if raw = "" then parse "" else replay ~path in
  let clean =
    if raw = "" then magic
    else if rp.rp_truncated then (if rp.rp_clean_bytes = 0 then magic
                                  else String.sub raw 0 rp.rp_clean_bytes)
    else raw
  in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  output_string oc clean;
  flush oc;
  { tj_path = path; tj_oc = oc; tj_closed = false }

let path t = t.tj_path

let append_point t pt =
  if not t.tj_closed then begin
    write_frame t.tj_oc (encode_point pt);
    Metrics.incr m_appends
  end

let append_transition t tr =
  if not t.tj_closed then begin
    write_frame t.tj_oc (encode_transition tr);
    Metrics.incr m_appends
  end

let close t =
  if not t.tj_closed then begin
    t.tj_closed <- true;
    close_out t.tj_oc
  end

let attach t =
  Timeseries.add_observer (fun pt -> append_point t pt);
  Alert.add_transition_hook (fun tr -> append_transition t tr)
