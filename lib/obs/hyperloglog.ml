(* HyperLogLog (Flajolet et al. 2007).  The first [p] bits of a 64-bit
   hash pick a register; the register keeps the maximum over items of
   (position of the first set bit in the remaining 64-p bits).  The
   harmonic mean of 2^register across all registers, scaled by the
   alpha_m bias constant, estimates cardinality; for small estimates
   the sketch degrades gracefully into linear counting over the
   zero-register count. *)

type t = {
  p : int;
  m : int; (* 2^p registers *)
  regs : Bytes.t;
}

let create ?(precision = 12) () =
  if precision < 4 || precision > 18 then
    invalid_arg "Hyperloglog.create: precision must be in [4, 18]";
  { p = precision; m = 1 lsl precision; regs = Bytes.make (1 lsl precision) '\000' }

let precision t = t.p
let registers t = t.m

(* FNV-1a 64-bit, then the splitmix64 finalizer: FNV alone has poor
   high-bit avalanche, and HLL reads both ends of the word (the top p
   bits index, the rest is rank material). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  mix64 !h

(* Rank: 1 + number of leading zeros of the (64-p)-bit remainder,
   capped so it always fits the register byte. *)
let rank_of t hash =
  let rest = Int64.shift_left hash t.p in
  if Int64.equal rest 0L then 64 - t.p + 1
  else begin
    let r = ref 1 in
    let v = ref rest in
    while Int64.equal (Int64.logand !v Int64.min_int) 0L do
      incr r;
      v := Int64.shift_left !v 1
    done;
    !r
  end

let add_hash t hash =
  let idx = Int64.to_int (Int64.shift_right_logical hash (64 - t.p)) in
  let rank = rank_of t hash in
  if rank > Char.code (Bytes.get t.regs idx) then
    Bytes.set t.regs idx (Char.chr rank)

let add_string t s = add_hash t (hash_string s)

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let estimate t =
  let m = float_of_int t.m in
  let sum = ref 0.0 and zeros = ref 0 in
  for i = 0 to t.m - 1 do
    let r = Char.code (Bytes.get t.regs i) in
    if r = 0 then incr zeros;
    sum := !sum +. (1.0 /. float_of_int (1 lsl r))
  done;
  let raw = alpha t.m *. m *. m /. !sum in
  (* Small-range correction: below 2.5m the raw estimator is biased;
     linear counting over the empty-register fraction is exact-ish
     there.  No large-range correction — 64-bit hashes don't saturate. *)
  if raw <= 2.5 *. m && !zeros > 0 then m *. log (m /. float_of_int !zeros) else raw

let error_bound t = 1.04 /. sqrt (float_of_int t.m)

let merge dst src =
  if dst.p <> src.p then invalid_arg "Hyperloglog.merge: precision mismatch";
  for i = 0 to dst.m - 1 do
    if Char.code (Bytes.get src.regs i) > Char.code (Bytes.get dst.regs i) then
      Bytes.set dst.regs i (Bytes.get src.regs i)
  done

let reset t = Bytes.fill t.regs 0 t.m '\000'

let serialized t =
  let buf = Buffer.create (t.m + 1) in
  Buffer.add_char buf (Char.chr t.p);
  Buffer.add_bytes buf t.regs;
  Buffer.contents buf
