(** The health aggregator: named checks composed into one
    [Ok]/[Degraded]/[Failing] verdict with per-check detail, surfaced
    as [provctl health].

    Subsystems register the checks only they can judge — the segmented
    WAL its manifest sanity, the stats catalog its freshness, provctl
    the cache/matview epoch consistency — and this module itself
    contributes the built-in {!Names.health_alerts_clear} check over
    the alert engine (open critical alert → [Failing], open warning →
    [Degraded]).

    Check names are dotted ["health.<subsystem>.<what>"] constants from
    {!Names}; the obs-names lint enforces registration for lib/bin
    call sites. *)

type verdict = Ok | Degraded | Failing

type check_result = {
  cr_name : string;
  cr_verdict : verdict;
  cr_detail : string;  (** one human-readable line of evidence *)
}

type report = {
  h_verdict : verdict;  (** worst verdict across all checks *)
  h_checks : check_result list;  (** registration order *)
}

val verdict_name : verdict -> string
val worst : verdict -> verdict -> verdict

val register : string -> (unit -> verdict * string) -> unit
(** Register (or replace in place) a named check.  The function runs on
    every {!run}; an exception it raises reads as [Failing] with the
    exception text as detail. *)

val unregister : string -> unit

val registered : unit -> string list
(** Registered check names, registration order. *)

val run : unit -> report

val render : report -> string
(** Aligned check/verdict/detail table plus an [overall:] line. *)

val to_json : report -> string
(** [{"verdict":"ok","checks":[{"name":..,"verdict":..,"detail":..}..]}]. *)

val exit_code : report -> int
(** 1 on [Failing], 0 otherwise — the [provctl health] exit status. *)
