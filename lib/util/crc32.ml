(* Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
   OCaml's 63-bit native int comfortably holds the 32-bit state, so the
   implementation is allocation-free per byte. *)

let polynomial = 0xEDB88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: range out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor mask32) in
  for i = pos to pos + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor mask32

let digest ?(pos = 0) ?len s =
  let len = match len with Some n -> n | None -> String.length s - pos in
  update 0 s pos len

let to_le_bytes crc =
  String.init 4 (fun i -> Char.chr ((crc lsr (8 * i)) land 0xFF))

let of_le_bytes s pos =
  if pos < 0 || pos + 4 > String.length s then
    invalid_arg "Crc32.of_le_bytes: range out of bounds";
  let b i = Char.code s.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
