(** Pure-OCaml CRC-32 (IEEE 802.3, the zlib/Ethernet polynomial).

    Used by the storage layer to checksum every journal frame so that
    corruption anywhere in a file — not just a truncated tail — is
    detected during recovery.  Checksums are plain ints in
    \[0, 2{^32}). *)

val digest : ?pos:int -> ?len:int -> string -> int
(** CRC-32 of a substring (default: the whole string).  The canonical
    check value: [digest "123456789" = 0xCBF43926]. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum, so
    [update (digest a) b 0 (String.length b) = digest (a ^ b)]. *)

val to_le_bytes : int -> string
(** Four little-endian bytes, the on-disk form. *)

val of_le_bytes : string -> int -> int
(** Read four little-endian bytes at an offset.  Raises
    [Invalid_argument] if fewer than four bytes remain. *)
