(* Clock-source order (see timing.mli):

   1. CLOCK_MONOTONIC via the Monotonic_clock C stub — immune to
      wall-clock adjustment, the right base for latency histograms.
      The stub returns 0 on platforms where clock_gettime failed, which
      we treat as "unavailable" once at startup.
   2. Unix.gettimeofday, monotonized: the last returned value is
      remembered and never exceeded backwards, so an NTP step can stall
      this clock momentarily but never run it in reverse.  Intervals
      measured across an adjustment are distorted either way; they can
      no longer be negative. *)

let monotonic_available =
  match Monotonic_clock.now () with 0L -> false | _ -> true | exception _ -> false

let gtod_last = ref 0L

let gtod_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  if Int64.compare t !gtod_last > 0 then gtod_last := t;
  !gtod_last

let now_ns () = if monotonic_available then Monotonic_clock.now () else gtod_ns ()

let time_ms f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.to_float (Int64.sub t1 t0) /. 1e6)

let repeat_time_ms n f =
  List.init n (fun _ ->
      let _, ms = time_ms f in
      ms)
