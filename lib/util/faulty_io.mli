(** Fault-injecting byte sinks for crash-recovery testing.

    A {!sink} looks like a file opened for writing — {!write}, {!flush},
    {!close} — but can be configured to corrupt the byte image the way
    real storage stacks do under failure: die mid-stream, tear the final
    write, flip a byte, or replay an unsynced buffer.  The durability
    tests and [provctl wal --inject-fault] drive the journal through one
    of these and then measure what recovery salvages. *)

type fault =
  | Crash_after_bytes of int
      (** Everything past the first [n] bytes never reaches storage. *)
  | Torn_final_write of int
      (** The final [write] call persists only its first [n] bytes. *)
  | Flip_byte of int
      (** The byte at this offset is complemented (bit-level rot). *)
  | Duplicate_flush
      (** The bytes written since the last [flush] are emitted twice. *)

type sink

val to_file : ?faults:fault list -> string -> sink
(** A sink whose image is persisted to a file on every {!flush} and on
    {!close}. *)

val to_buffer : ?faults:fault list -> Buffer.t -> sink
(** A sink that materializes into a caller-owned buffer instead of the
    filesystem (the buffer is overwritten on each flush/close). *)

val arm : sink -> fault list -> unit
(** Add faults to an open sink — lets a caller decide *after* writing
    which file to hurt (e.g. the active WAL segment). *)

val write : sink -> string -> unit
val flush : sink -> unit
(** Persist the current (fault-adjusted) prefix.  Close-time faults —
    torn final write, duplicated flush tail — are not yet applied. *)

val close : sink -> unit
(** Apply close-time faults, persist the final image.  Idempotent. *)

val contents : sink -> string
(** The byte image the destination currently holds (final image once
    closed). *)

val bytes_written : sink -> int
(** Total bytes offered by [write] calls, before any fault. *)

val set_fault_hook : (fault -> unit) option -> unit
(** Register an observer called once per armed fault when a sink
    carrying faults is closed (the moment the corruption is actually
    applied).  Used by the flight recorder; [None] unregisters. *)

val parse_fault : string -> fault option
(** Command-line spec: ["crash@N"], ["tear@N"], ["flip@N"],
    ["dup-flush"]. *)

val fault_to_string : fault -> string
