(** Monotonic timing for query budgets, latency histograms and
    experiment measurements.

    Clock-source fallback order:
    + [CLOCK_MONOTONIC] (via the [Monotonic_clock] C stub) — a truly
      monotonic clock, immune to NTP steps and manual clock changes;
    + [Unix.gettimeofday], monotonized by clamping to the last value
      returned — a wall clock that can pause under a backwards
      adjustment but can never run in reverse, so interval measurements
      (and the histogram samples built from them) are never negative.

    The source is chosen once at startup; all of the repository's
    timing flows through {!now_ns} so every consumer gets the same
    guarantee. *)

val now_ns : unit -> int64
(** Nanoseconds on a monotonic (never-decreasing) clock.  The absolute
    epoch is unspecified — only differences are meaningful. *)

val time_ms : (unit -> 'a) -> 'a * float
(** [time_ms f] runs [f ()] and returns its result with elapsed
    milliseconds. *)

val repeat_time_ms : int -> (unit -> 'a) -> float list
(** [repeat_time_ms n f] runs [f] [n] times and returns each elapsed
    duration in milliseconds. *)
