type fault =
  | Crash_after_bytes of int
  | Torn_final_write of int
  | Flip_byte of int
  | Duplicate_flush

type dest = To_file of string | To_buffer of Buffer.t

type sink = {
  dest : dest;
  mutable faults : fault list;
  (* Write/flush calls in order (kept reversed); the byte image is
     materialized from this record so write-granular faults (torn final
     write, duplicated flush buffer) stay expressible. *)
  mutable ops : [ `Write of string | `Flush ] list;
  mutable closed : bool;
}

let create ?(faults = []) dest = { dest; faults; ops = []; closed = false }
let to_file ?faults path = create ?faults (To_file path)
let to_buffer ?faults buf = create ?faults (To_buffer buf)
let arm t faults = t.faults <- t.faults @ faults

let fail_closed t op = if t.closed then invalid_arg ("Faulty_io." ^ op ^ ": sink is closed")

(* Materialize the byte image the destination would hold.  Close-time
   faults (torn final write, duplicated flush tail) only apply when
   [closing]; a mid-stream flush persists the honest prefix. *)
let image ?(closing = false) t =
  let ops = List.rev t.ops in
  let writes =
    if closing then begin
      match
        List.fold_left
          (fun k f -> match f with Torn_final_write n -> Some n | _ -> k)
          None t.faults
      with
      | None -> ops
      | Some keep ->
        (* Truncate the final write call to its first [keep] bytes; on
           the reversed op list the first `Write is the final one. *)
        let rec tear_rev = function
          | [] -> []
          | `Write s :: rest -> `Write (String.sub s 0 (min keep (String.length s))) :: rest
          | `Flush :: rest -> `Flush :: tear_rev rest
        in
        List.rev (tear_rev t.ops)
    end
    else ops
  in
  let buf = Buffer.create 1024 in
  let since_flush = Buffer.create 256 in
  List.iter
    (fun op ->
      match op with
      | `Write s ->
        Buffer.add_string buf s;
        Buffer.add_string since_flush s
      | `Flush -> Buffer.clear since_flush)
    writes;
  if closing && List.mem Duplicate_flush t.faults then
    (* The unsynced tail is replayed once more, as if a buffered write
       were issued twice around a confused flush. *)
    Buffer.add_buffer buf since_flush;
  let s = Buffer.contents buf in
  let s =
    List.fold_left
      (fun s f ->
        match f with
        | Crash_after_bytes n when n < String.length s -> String.sub s 0 (max 0 n)
        | _ -> s)
      s t.faults
  in
  List.fold_left
    (fun s f ->
      match f with
      | Flip_byte k when k >= 0 && k < String.length s ->
        String.mapi (fun i c -> if i = k then Char.chr (Char.code c lxor 0xFF) else c) s
      | _ -> s)
    s t.faults

let persist t s =
  match t.dest with
  | To_buffer buf ->
    Buffer.clear buf;
    Buffer.add_string buf s
  | To_file path ->
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write t s =
  fail_closed t "write";
  t.ops <- `Write s :: t.ops

let flush t =
  fail_closed t "flush";
  t.ops <- `Flush :: t.ops;
  persist t (image t)

(* Observers (e.g. the flight recorder) register here to learn that an
   armed fault was actually applied.  A plain hook keeps the dependency
   arrow pointing the right way: util knows nothing about obs. *)
let fault_hook : (fault -> unit) option ref = ref None

let set_fault_hook f = fault_hook := f

let close t =
  if not t.closed then begin
    persist t (image ~closing:true t);
    t.closed <- true;
    match !fault_hook with None -> () | Some h -> List.iter h t.faults
  end

let contents t = image ~closing:t.closed t

let bytes_written t =
  List.fold_left
    (fun acc op -> match op with `Write s -> acc + String.length s | `Flush -> acc)
    0 t.ops

let parse_fault spec =
  let at prefix =
    let lp = String.length prefix in
    if String.length spec > lp && String.sub spec 0 lp = prefix then
      int_of_string_opt (String.sub spec lp (String.length spec - lp))
    else None
  in
  match spec with
  | "dup-flush" -> Some Duplicate_flush
  | _ -> begin
    match (at "crash@", at "tear@", at "flip@") with
    | Some n, _, _ -> Some (Crash_after_bytes n)
    | _, Some n, _ -> Some (Torn_final_write n)
    | _, _, Some n -> Some (Flip_byte n)
    | None, None, None -> None
  end

let fault_to_string = function
  | Crash_after_bytes n -> Printf.sprintf "crash@%d" n
  | Torn_final_write n -> Printf.sprintf "tear@%d" n
  | Flip_byte n -> Printf.sprintf "flip@%d" n
  | Duplicate_flush -> "dup-flush"
