(** Bounded multi-producer single-consumer queue: the hand-off between
    simulated client sessions and the provd ingest loop.

    Producers block in {!push} when the queue is at capacity
    (back-pressure), the consumer drains up to a batch at a time in
    {!pop_batch}, and {!close} ends the stream: late pushes raise
    {!Closed}, and a drained, closed queue makes [pop_batch] return
    [[]]. *)

type 'a t

type stats = {
  pushed : int;  (** accepted by {!push} over the queue's lifetime *)
  popped : int;  (** drained by {!pop_batch} *)
  max_depth : int;  (** high-water mark of the backlog *)
  depth : int;  (** backlog at the moment of the call *)
}

exception Closed
(** Raised by {!push} once the queue is closed. *)

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] unless [capacity > 0]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Enqueue, blocking while the queue is full.  Raises {!Closed} if the
    queue is (or becomes, while blocked) closed. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Drain up to [max] items in FIFO order, blocking while the queue is
    open and empty.  Returns [[]] only when the queue is closed and
    fully drained. *)

val close : 'a t -> unit
(** Idempotent; wakes every blocked producer and the consumer. *)

val is_closed : 'a t -> bool
val depth : 'a t -> int
val stats : 'a t -> stats
