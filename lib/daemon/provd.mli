(** provd: concurrent serving front-end with snapshot-isolated reads.

    {!start} spawns, on OCaml domains: N deterministic producer
    sessions feeding a bounded queue; one ingest loop that owns the
    store, drains the queue in batches through [Capture.handle_batch]
    and the WAL group-commit path, and publishes immutable read
    snapshots at batch boundaries; M read workers querying the latest
    snapshot lock-free; and a background job runner (stats analyze on
    the snapshot, telemetry pulse) that requests owner jobs (WAL
    compaction, matview rebuild) instead of touching owner state.

    {!wait} runs the clean shutdown: sessions finish, the queue closes,
    the ingest loop drains every remaining event and makes the WAL
    durable, then background and readers stop.  Nothing is dropped. *)

type config = {
  sessions : int;
  events_per_session : int;
  queue_capacity : int;
  batch_size : int;
  snapshot_every : int;  (** publish a read snapshot every N batches *)
  read_workers : int;
  read_mix : float;  (** per pushed event, probability a session also reads *)
  analyze_every : int;  (** background stats analyze every N batches; 0 = never *)
  compact_every : int;  (** request WAL compaction every N batches; 0 = never *)
  seed : int;
  wal_dir : string option;
}

val default : config
(** 4 sessions x 200 events, batches of 32, snapshot every 4 batches,
    2 read workers, 25% read mix, no WAL. *)

type snapshot = {
  db : Relstore.Database.t;  (** immutable once published *)
  seq : int;  (** events applied when it was built — always a batch boundary *)
  generation : int;  (** publish count, strictly increasing *)
}

type report = {
  r_events : int;
  r_batches : int;
  r_snapshots : int;
  r_reads : int;
  r_read_p99_ns : int;  (** 0 when no reads were served *)
  r_elapsed_ns : int;
  r_queue : Event_queue.stats;
  r_jobs : int;
  r_wal_appended : int;
  r_applied : Browser.Event.t list;  (** every ingested event, in applied order *)
  r_batch_seqs : int list;  (** cumulative applied count at each batch boundary *)
  r_node_kinds : (int * int) list;  (** final matview values *)
  r_edge_kinds : (int * int) list;
}

type t

val start : config -> t
(** Spawn the fleet.  Raises [Invalid_argument] on a nonsensical
    config. *)

val wait : t -> report
(** Join everything in shutdown order.  Call exactly once. *)

val run : config -> report
(** [wait (start cfg)]. *)

val current_snapshot : t -> snapshot option
(** The latest published snapshot — callable from any domain while the
    daemon runs (the property tests sample it mid-flight). *)

val register_health_check : t -> unit
(** Register the [health.daemon.queue] admission check with
    {!Provkit_obs.Health}. *)
