(* Deterministic per-session event generators for the provd load
   driver.  Each simulated session owns one tab and a disjoint id
   space, so any interleaving of complete sessions is a valid browser
   event stream: visit ids never collide across sessions, referrers
   point only at the session's own earlier visits, and every session
   opens its tab before visiting in it.  Content depends only on
   [seed] and [session] — the same pair always yields the same
   events, which is what makes the daemon's applied order replayable
   serially for the equivalence tests. *)

module Event = Browser.Event
module Transition = Browser.Transition
module Url = Webmodel.Url

(* Ids are partitioned per session so streams can interleave freely. *)
let id_base = 1_000_000

let session_events ~seed ~session ~events =
  if events <= 0 then []
  else begin
    let rng = Provkit_util.Prng.create (seed lxor ((session + 1) * 0x9e3779b9)) in
    let tab = session in
    let base_time = 1_000_000 + (session * 100_000) in
    let vid i = (session * id_base) + i in
    let url () =
      Url.make
        ~path:[ Printf.sprintf "page%d" (Provkit_util.Prng.int rng 50) ]
        (Printf.sprintf "site%d-s%d.example" (Provkit_util.Prng.int rng 12) session)
    in
    let opened = Event.Tab_opened { time = base_time; tab; opener_tab = None } in
    let last_visit = ref None in
    let rest =
      List.init events (fun i ->
          let time = base_time + ((i + 1) * 7) in
          let roll = Provkit_util.Prng.int rng 100 in
          match (!last_visit, roll) with
          | Some prev, r when r < 6 ->
            (* occasional search attached to the latest page *)
            Event.Search
              {
                time;
                search_id = vid i;
                query = Printf.sprintf "query %d of s%d" i session;
                serp_visit = prev;
              }
          | Some prev, r when r < 12 ->
            Event.Bookmark_added
              {
                time;
                bookmark_id = vid i;
                visit_id = prev;
                url = url ();
                title = Printf.sprintf "bookmark %d" i;
              }
          | Some prev, r when r < 18 ->
            last_visit := None;
            Event.Close { time; tab; visit_id = prev }
          | _ ->
            let referrer = !last_visit in
            let transition =
              match referrer with
              | None -> Transition.Typed
              | Some _ -> if Provkit_util.Prng.bool rng then Transition.Link else Transition.Reload
            in
            last_visit := Some (vid i);
            Event.Visit
              {
                Event.visit_id = vid i;
                time;
                tab;
                page = (if Provkit_util.Prng.bool rng then Some (vid i) else None);
                url = url ();
                title = Printf.sprintf "page %d of s%d" i session;
                transition;
                referrer;
                via_bookmark = None;
              })
    in
    opened :: rest
  end

let total_events ~sessions ~events = sessions * (events + 1)
