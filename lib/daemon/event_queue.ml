(* The bounded MPSC hand-off between simulated client sessions and the
   provd ingest loop.  N producer domains block in [push] when the
   queue is full (back-pressure, not drop); the single consumer drains
   up to a batch at a time in [pop_batch].  [close] ends the stream:
   producers may no longer push, and once the backlog is drained
   [pop_batch] returns [] exactly once per caller, forever after. *)

type 'a t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable pushed : int;
  mutable popped : int;
  mutable max_depth : int;
}

type stats = { pushed : int; popped : int; max_depth : int; depth : int }

exception Closed

let create ~capacity =
  if capacity <= 0 then invalid_arg "Event_queue.create: capacity must be positive";
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    q = Queue.create ();
    capacity;
    closed = false;
    pushed = 0;
    popped = 0;
    max_depth = 0;
  }

let capacity t = t.capacity

let push t x =
  Mutex.protect t.lock (fun () ->
      while (not t.closed) && Queue.length t.q >= t.capacity do
        Condition.wait t.not_full t.lock
      done;
      if t.closed then raise Closed;
      Queue.push x t.q;
      t.pushed <- t.pushed + 1;
      let depth = Queue.length t.q in
      if depth > t.max_depth then t.max_depth <- depth;
      Condition.signal t.not_empty)

(* Drain up to [max] queued items.  Blocks while the queue is open and
   empty; an empty return means the stream is over. *)
let pop_batch t ~max =
  if max <= 0 then invalid_arg "Event_queue.pop_batch: max must be positive";
  Mutex.protect t.lock (fun () ->
      while (not t.closed) && Queue.is_empty t.q do
        Condition.wait t.not_empty t.lock
      done;
      let batch = ref [] in
      let n = ref 0 in
      while !n < max && not (Queue.is_empty t.q) do
        batch := Queue.pop t.q :: !batch;
        incr n
      done;
      t.popped <- t.popped + !n;
      (* Every producer parked on a full queue can make progress now;
         broadcast rather than chain [signal]s through [push]. *)
      Condition.broadcast t.not_full;
      List.rev !batch)

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)

let is_closed t = Mutex.protect t.lock (fun () -> t.closed)
let depth t = Mutex.protect t.lock (fun () -> Queue.length t.q)

let stats t =
  Mutex.protect t.lock (fun () ->
      { pushed = t.pushed; popped = t.popped; max_depth = t.max_depth;
        depth = Queue.length t.q })
