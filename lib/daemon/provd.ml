(* provd: the concurrent serving front-end over the capture/WAL/query
   stack.

   One supervisor ([start]/[wait]) runs, on OCaml domains:

   - N producer sessions pushing deterministic browsing events into a
     bounded {!Event_queue} (back-pressure, never drop), interleaved
     with snapshot reads according to the configured mix;
   - ONE ingest loop — the sole owner of the store, the WAL handle and
     the matview registry — draining the queue in batches through
     [Capture.handle_batch] and the WAL group-commit path
     ([Segmented.append_batch]), and publishing immutable read
     snapshots at a batch-boundary cadence;
   - M read workers serving queries against the latest published
     snapshot (epoch-pinned: a reader holds one [snapshot] value for a
     whole query, so it never observes torn mid-batch state);
   - one background job runner (stats analyze over the snapshot,
     telemetry pulse) that never touches owner state: jobs needing the
     store (WAL compaction, matview rebuild) are *requested* via flags
     and executed by the ingest loop at a batch boundary.

   Snapshots are whole [Relstore.Database.t] values built by
   [Prov_schema.to_database] and published through an [Atomic.t];
   readers pay one atomic load, no lock, and every snapshot's [seq] is
   a batch boundary — the isolation property the property tests pin
   bit-for-bit. *)

module Obs = Provkit_obs
module Event = Browser.Event
module PL = Core.Prov_log
module P = Relstore.Predicate
module Q = Relstore.Query_exec
module Value = Relstore.Value

let m_events = Obs.Metrics.counter Obs.Names.daemon_events_ingested
let m_batches = Obs.Metrics.counter Obs.Names.daemon_batches
let g_depth = Obs.Metrics.gauge Obs.Names.daemon_queue_depth
let m_snapshots = Obs.Metrics.counter Obs.Names.daemon_snapshots
let m_reads = Obs.Metrics.counter Obs.Names.daemon_reads
let h_read_ns = Obs.Metrics.histogram Obs.Names.daemon_read_ns
let m_jobs = Obs.Metrics.counter Obs.Names.daemon_jobs

type config = {
  sessions : int;
  events_per_session : int;
  queue_capacity : int;
  batch_size : int;
  snapshot_every : int;  (** publish a read snapshot every N batches *)
  read_workers : int;
  read_mix : float;  (** per pushed event, probability a session also reads *)
  analyze_every : int;  (** background stats analyze every N batches; 0 = never *)
  compact_every : int;  (** request WAL compaction every N batches; 0 = never *)
  seed : int;
  wal_dir : string option;
}

let default =
  {
    sessions = 4;
    events_per_session = 200;
    queue_capacity = 512;
    batch_size = 32;
    snapshot_every = 4;
    read_workers = 2;
    read_mix = 0.25;
    analyze_every = 8;
    compact_every = 0;
    seed = 42;
    wal_dir = None;
  }

type snapshot = { db : Relstore.Database.t; seq : int; generation : int }

type report = {
  r_events : int;
  r_batches : int;
  r_snapshots : int;
  r_reads : int;
  r_read_p99_ns : int;  (** 0 when no reads were served *)
  r_elapsed_ns : int;
  r_queue : Event_queue.stats;
  r_jobs : int;
  r_wal_appended : int;
  r_applied : Event.t list;  (** every ingested event, in applied order *)
  r_batch_seqs : int list;  (** cumulative applied count at each batch boundary *)
  r_node_kinds : (int * int) list;  (** final matview values *)
  r_edge_kinds : (int * int) list;
}

(* Everything the worker domains share.  Spawned closures capture this
   record directly — the supervisor record [t] below exists only for
   the joining side. *)
type ctl = {
  c_cfg : config;
  c_queue : Event.t Event_queue.t;
  c_published : snapshot option Atomic.t;
  c_readers_stop : bool Atomic.t;
  c_compact_req : bool Atomic.t;
  c_rebuild_req : bool Atomic.t;
  (* background wake-up: the ingest loop bumps [c_bg_batches] and
     signals after every batch; [c_bg_done] ends the job runner. *)
  c_bg_lock : Mutex.t;
  c_bg_cond : Condition.t;
  mutable c_bg_batches : int;
  mutable c_bg_done : bool;
}

(* Owner-side mutable state.  Only the ingest domain writes it; the
   supervisor reads it after joining that domain, so the join is the
   publication barrier and no lock is needed. *)
type ingest_state = {
  mutable seq : int;
  mutable batches : int;
  mutable applied_rev : Event.t list;
  mutable batch_seqs_rev : int list;
  mutable generation : int;
  mutable owner_jobs : int;
}

type t = {
  ctl : ctl;
  started_ns : int64;
  producers : int list Domain.t list;  (** each returns its read latencies *)
  readers : int list Domain.t list;
  ingest : (ingest_state * int * (int * int) list * (int * int) list) Domain.t;
  background : int Domain.t;
}

let current_snapshot t = Atomic.get t.ctl.c_published

(* --- reads ------------------------------------------------------------ *)

(* One query against a pinned snapshot.  Rotates across the provenance
   tables; the strict-range shapes on [prov_edge.src] go through the
   planner's (fixed) Lt/Gt and merged-bounds index paths. *)
let serve_read rng snap =
  let t0 = Provkit_util.Timing.now_ns () in
  let db = snap.db in
  let nodes = Relstore.Database.table db Core.Prov_schema.node_table in
  let edges = Relstore.Database.table db Core.Prov_schema.edge_table in
  (match Provkit_util.Prng.int rng 4 with
  | 0 -> ignore (Q.group_count ~by:"kind" nodes)
  | 1 ->
    let cut = 1 + Provkit_util.Prng.int rng (max 1 snap.seq) in
    ignore (Q.count ~where:(P.Cmp (P.Lt, "src", Value.Int cut)) edges)
  | 2 ->
    let lo = Provkit_util.Prng.int rng (max 1 snap.seq) in
    ignore
      (Q.count
         ~where:
           (P.And
              [
                P.Cmp (P.Gt, "src", Value.Int lo);
                P.Cmp (P.Le, "src", Value.Int (lo + 64));
              ])
         edges)
  | _ -> ignore (Q.count ~where:(P.Cmp (P.Ge, "time", Value.Int 0)) nodes));
  let dt = Int64.to_int (Int64.sub (Provkit_util.Timing.now_ns ()) t0) in
  Obs.Metrics.incr m_reads;
  Obs.Metrics.observe h_read_ns dt;
  dt

let reader_loop ctl seed =
  let rng = Provkit_util.Prng.create seed in
  let lats = ref [] in
  while not (Atomic.get ctl.c_readers_stop) do
    match Atomic.get ctl.c_published with
    | None -> Domain.cpu_relax ()
    | Some snap -> lats := serve_read rng snap :: !lats
  done;
  !lats

(* --- producers -------------------------------------------------------- *)

let producer_loop ctl ~session =
  let cfg = ctl.c_cfg in
  let events =
    Loadgen.session_events ~seed:cfg.seed ~session ~events:cfg.events_per_session
  in
  (* Mix decisions come from a separate stream so read volume never
     perturbs the event content. *)
  let rng = Provkit_util.Prng.create (cfg.seed + 0x5e55 + session) in
  let lats = ref [] in
  List.iter
    (fun ev ->
      Event_queue.push ctl.c_queue ev;
      if Provkit_util.Prng.bernoulli rng cfg.read_mix then
        match Atomic.get ctl.c_published with
        | None -> ()
        | Some snap -> lats := serve_read rng snap :: !lats)
    events;
  !lats

(* --- ingest ----------------------------------------------------------- *)

let publish state ctl store =
  Obs.Trace.with_span Obs.Names.span_daemon_snapshot
    ~attrs:[ ("seq", string_of_int state.seq) ]
    (fun () ->
      let db = Core.Prov_schema.to_database store in
      state.generation <- state.generation + 1;
      Atomic.set ctl.c_published
        (Some { db; seq = state.seq; generation = state.generation });
      Obs.Metrics.incr m_snapshots)

let ingest_loop ctl =
  let cfg = ctl.c_cfg in
  let capture, _feed = Core.Capture.observer () in
  let store = Core.Capture.store capture in
  let views, v_nodes, v_edges = Core.Store_views.standard () in
  let wal =
    match cfg.wal_dir with
    | None -> None
    | Some dir ->
      let wcfg =
        {
          PL.Segmented.default_config with
          PL.Segmented.group_commit_ops = max 1 cfg.batch_size;
        }
      in
      Some (PL.Segmented.open_ ~config:wcfg dir)
  in
  let pending = ref [] in
  Core.Prov_store.set_observer store (fun m ->
      pending := PL.op_of_mutation m :: !pending);
  let state =
    {
      seq = 0;
      batches = 0;
      applied_rev = [];
      batch_seqs_rev = [];
      generation = 0;
      owner_jobs = 0;
    }
  in
  let rec loop () =
    match Event_queue.pop_batch ctl.c_queue ~max:cfg.batch_size with
    | [] -> ()
    | batch ->
      Obs.Trace.with_span Obs.Names.span_daemon_batch
        ~attrs:[ ("events", string_of_int (List.length batch)) ]
        (fun () ->
          pending := [];
          Core.Capture.handle_batch capture batch;
          let ops = List.rev !pending in
          Relstore.Matview.feed_batch views ops;
          match wal with
          | Some h -> PL.Segmented.append_batch h ops
          | None -> ());
      state.applied_rev <- List.rev_append batch state.applied_rev;
      state.seq <- state.seq + List.length batch;
      state.batches <- state.batches + 1;
      state.batch_seqs_rev <- state.seq :: state.batch_seqs_rev;
      Obs.Metrics.add m_events (List.length batch);
      Obs.Metrics.incr m_batches;
      Obs.Metrics.set_gauge g_depth (float_of_int (Event_queue.depth ctl.c_queue));
      (* Owner jobs requested by the background runner run here, at a
         batch boundary, so they can never interleave with a batch. *)
      (if Atomic.exchange ctl.c_compact_req false then
         match wal with
         | Some h ->
           PL.Segmented.compact h store;
           state.owner_jobs <- state.owner_jobs + 1;
           Obs.Metrics.incr m_jobs
         | None -> ());
      if Atomic.exchange ctl.c_rebuild_req false then begin
        Relstore.Matview.rebuild views (PL.ops_of_store store);
        state.owner_jobs <- state.owner_jobs + 1;
        Obs.Metrics.incr m_jobs
      end;
      if state.batches mod cfg.snapshot_every = 0 then publish state ctl store;
      Mutex.protect ctl.c_bg_lock (fun () ->
          ctl.c_bg_batches <- state.batches;
          Condition.signal ctl.c_bg_cond);
      loop ()
  in
  loop ();
  (* The queue is closed and drained: publish the final snapshot (so
     readers and the equivalence tests see every event), make the WAL
     durable, and hand the owner state to the supervisor. *)
  publish state ctl store;
  Obs.Metrics.set_gauge g_depth 0.0;
  let wal_appended =
    match wal with
    | None -> 0
    | Some h ->
      PL.Segmented.durable h;
      let n = PL.Segmented.appended h in
      PL.Segmented.close h;
      n
  in
  (state, wal_appended, Relstore.Matview.value v_nodes, Relstore.Matview.value v_edges)

(* --- background jobs -------------------------------------------------- *)

let background_loop ctl =
  let cfg = ctl.c_cfg in
  let jobs = ref 0 in
  let last_seen = ref 0 in
  let last_analyze = ref 0 in
  let last_compact = ref 0 in
  let running = ref true in
  while !running do
    let batches =
      Mutex.protect ctl.c_bg_lock (fun () ->
          while (not ctl.c_bg_done) && ctl.c_bg_batches = !last_seen do
            Condition.wait ctl.c_bg_cond ctl.c_bg_lock
          done;
          if ctl.c_bg_done then running := false;
          ctl.c_bg_batches)
    in
    last_seen := batches;
    if !running then begin
      (* Telemetry pulse: cheap, every wake-up. *)
      Obs.Timeseries.pulse ();
      incr jobs;
      Obs.Metrics.incr m_jobs;
      (* Stats analyze runs against the *snapshot*, never the live
         store: the ingest loop keeps mutating the store, but a
         published database is immutable. *)
      (if cfg.analyze_every > 0 && batches - !last_analyze >= cfg.analyze_every then begin
         last_analyze := batches;
         match Atomic.get ctl.c_published with
         | None -> ()
         | Some snap ->
           ignore (Relstore.Stats.analyze_database snap.db);
           incr jobs;
           Obs.Metrics.incr m_jobs
       end);
      if cfg.compact_every > 0 && batches - !last_compact >= cfg.compact_every then begin
        last_compact := batches;
        Atomic.set ctl.c_compact_req true;
        Atomic.set ctl.c_rebuild_req true
      end
    end
  done;
  !jobs

(* --- supervisor ------------------------------------------------------- *)

let validate cfg =
  if cfg.sessions < 1 then invalid_arg "Provd: sessions must be >= 1";
  if cfg.events_per_session < 0 then invalid_arg "Provd: events_per_session must be >= 0";
  if cfg.queue_capacity < 1 then invalid_arg "Provd: queue_capacity must be >= 1";
  if cfg.batch_size < 1 then invalid_arg "Provd: batch_size must be >= 1";
  if cfg.snapshot_every < 1 then invalid_arg "Provd: snapshot_every must be >= 1";
  if cfg.read_workers < 0 then invalid_arg "Provd: read_workers must be >= 0";
  if not (cfg.read_mix >= 0.0 && cfg.read_mix <= 1.0) then
    invalid_arg "Provd: read_mix must be within [0, 1]"

let start cfg =
  validate cfg;
  let ctl =
    {
      c_cfg = cfg;
      c_queue = Event_queue.create ~capacity:cfg.queue_capacity;
      c_published = Atomic.make None;
      c_readers_stop = Atomic.make false;
      c_compact_req = Atomic.make false;
      c_rebuild_req = Atomic.make false;
      c_bg_lock = Mutex.create ();
      c_bg_cond = Condition.create ();
      c_bg_batches = 0;
      c_bg_done = false;
    }
  in
  let started_ns = Provkit_util.Timing.now_ns () in
  (* The ingest loop must exist before producers can make progress past
     one queue's worth of events, but spawn order is immaterial: the
     queue is the only coupling. *)
  let ingest = Domain.spawn (fun () -> ingest_loop ctl) in
  let background = Domain.spawn (fun () -> background_loop ctl) in
  let producers =
    List.init cfg.sessions (fun session ->
        Domain.spawn (fun () -> producer_loop ctl ~session))
  in
  let readers =
    List.init cfg.read_workers (fun i ->
        Domain.spawn (fun () -> reader_loop ctl (cfg.seed + 0xead + i)))
  in
  { ctl; started_ns; producers; readers; ingest; background }

let percentile_ns p lats =
  match List.sort compare lats with
  | [] -> 0
  | sorted ->
    let n = List.length sorted in
    let idx = min (n - 1) (int_of_float (Float.of_int n *. p)) in
    List.nth sorted idx

let wait t =
  (* Shutdown protocol: sessions finish pushing -> close the queue ->
     the ingest loop drains whatever is left and exits on the empty
     batch -> background runner is told it is done -> readers stop.
     Nothing is dropped: close-then-drain, never drain-then-close. *)
  let producer_lats = List.concat_map Domain.join t.producers in
  Event_queue.close t.ctl.c_queue;
  let state, wal_appended, node_kinds, edge_kinds = Domain.join t.ingest in
  Mutex.protect t.ctl.c_bg_lock (fun () ->
      t.ctl.c_bg_done <- true;
      Condition.broadcast t.ctl.c_bg_cond);
  let bg_jobs = Domain.join t.background in
  Atomic.set t.ctl.c_readers_stop true;
  let reader_lats = List.concat_map Domain.join t.readers in
  let lats = List.rev_append producer_lats reader_lats in
  {
    r_events = state.seq;
    r_batches = state.batches;
    r_snapshots = state.generation;
    r_reads = List.length lats;
    r_read_p99_ns = percentile_ns 0.99 lats;
    r_elapsed_ns = Int64.to_int (Int64.sub (Provkit_util.Timing.now_ns ()) t.started_ns);
    r_queue = Event_queue.stats t.ctl.c_queue;
    r_jobs = state.owner_jobs + bg_jobs;
    r_wal_appended = wal_appended;
    r_applied = List.rev state.applied_rev;
    r_batch_seqs = List.rev state.batch_seqs_rev;
    r_node_kinds = node_kinds;
    r_edge_kinds = edge_kinds;
  }

let run cfg = wait (start cfg)

(* --- health ----------------------------------------------------------- *)

(* Queue admission judgment: saturated-and-open reads as degraded (the
   producers are stalled on back-pressure), closed with a backlog as
   failing (nothing will ever drain it — the ingest loop is gone). *)
let queue_check t () =
  let s = Event_queue.stats t.ctl.c_queue in
  let closed = Event_queue.is_closed t.ctl.c_queue in
  let cap = Event_queue.capacity t.ctl.c_queue in
  if closed && s.Event_queue.depth > 0 then
    ( Obs.Health.Failing,
      Printf.sprintf "closed with %d event(s) stranded" s.Event_queue.depth )
  else if s.Event_queue.depth >= cap then
    (Obs.Health.Degraded, Printf.sprintf "saturated at %d/%d" s.Event_queue.depth cap)
  else
    ( Obs.Health.Ok,
      Printf.sprintf "%d/%d queued, %d pushed, %d drained" s.Event_queue.depth cap
        s.Event_queue.pushed s.Event_queue.popped )

let register_health_check t =
  Obs.Health.register Obs.Names.health_daemon_queue (queue_check t)
