(** Deterministic session event streams for the provd load driver.

    A session's stream depends only on [(seed, session)], owns one tab
    and a disjoint visit-id space, and opens its tab before anything
    else — so any FIFO interleaving of complete sessions is a valid
    browser event stream, and the order the daemon actually applied can
    be replayed serially for the equivalence tests. *)

val session_events :
  seed:int -> session:int -> events:int -> Browser.Event.t list
(** [events] browsing events preceded by one [Tab_opened]; [[]] when
    [events <= 0]. *)

val total_events : sessions:int -> events:int -> int
(** Events the whole fleet will push: [sessions * (events + 1)]. *)
