
let () = ignore Obs.Names.used
let stray = "prov.fixture.stray"
