
let used = "prov.fixture.used"
let unused = "prov.fixture.unused"
