(* provctl: command-line front end for the browser-provenance library.

   Subcommands:
     generate     simulate browsing; save provenance/places DBs + event log
     replay       rebuild a provenance store from a recorded event stream
     stats        metrics snapshot of an instrumented ingest+query run
                  (or, with --db, node/edge statistics of a saved DB)
     search       contextual history search over a saved DB
     time-search  "X associated with Y" over a saved DB
     lineage      first recognizable ancestor of a downloaded file
     suggest      provenance-aware location-bar suggestions
     sessions     gap-based session segmentation
     tree         the Ayers-Stasko navigation forest
     sql          ad-hoc SQL over any saved database
     wal          segmented write-ahead journal + crash/corruption injection
     matview      incremental materialized views: status, values, refresh
     serve        multi-domain daemon: ingest + snapshot reads + background jobs
     loadgen      deterministic load driver for the daemon ingest path
     experiments  regenerate every paper experiment table *)

open Cmdliner

let days_arg =
  Arg.(value & opt int 79 & info [ "days" ] ~docv:"DAYS" ~doc:"Simulated days of browsing.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let db_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "db" ] ~docv:"FILE" ~doc:"Path to a saved provenance database.")

let limit_arg =
  Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc:"Maximum results.")

let budget_arg =
  Arg.(
    value & opt (some float) None
    & info [ "budget-ms" ] ~docv:"MS" ~doc:"Bound the query to this many milliseconds.")

let budget_of = function
  | None -> Core.Query_budget.unlimited
  | Some ms -> Core.Query_budget.deadline ms

let load_store path =
  let db = Relstore.Database.load ~path in
  Core.Prov_schema.of_database db

(* --- generate ------------------------------------------------------- *)

let generate days seed out places_out events_out =
  let ds =
    Harness.Dataset.build
      ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
      ~seed ()
  in
  let store = Harness.Dataset.store ds in
  Printf.printf "simulated %d days (seed %d): %d nodes, %d edges\n" days seed
    (Core.Prov_store.node_count store)
    (Core.Prov_store.edge_count store);
  let prov_db = Core.Prov_schema.to_database store in
  Relstore.Database.save prov_db ~path:out;
  Printf.printf "provenance db -> %s (%s)\n" out
    (Harness.Report.fmt_bytes (Relstore.Database.total_size prov_db));
  (match places_out with
  | None -> ()
  | Some path ->
    let places_db = Browser.Places_db.database (Harness.Dataset.places ds) in
    Relstore.Database.save places_db ~path;
    Printf.printf "places db -> %s (%s)\n" path
      (Harness.Report.fmt_bytes (Relstore.Database.total_size places_db)));
  match events_out with
  | None -> ()
  | Some path ->
    let events = Browser.Engine.event_log ds.Harness.Dataset.engine in
    Browser.Event_codec.save ~path events;
    Printf.printf "event log -> %s (%d events)\n" path (List.length events)

let generate_cmd =
  let out =
    Arg.(
      value & opt string "prov.db"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Provenance database output path.")
  in
  let places_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "places-out" ] ~docv:"FILE" ~doc:"Also save the Places baseline here.")
  in
  let events_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "events-out" ] ~docv:"FILE" ~doc:"Also save the raw browser event stream.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Simulate browsing and save the provenance store")
    Term.(const generate $ days_arg $ seed_arg $ out $ places_out $ events_out)

(* --- replay ----------------------------------------------------------- *)

let replay events_path out =
  let events = Browser.Event_codec.load ~path:events_path in
  let capture, feed = Core.Capture.observer () in
  Browser.Event_codec.replay events [ feed ];
  let store = Core.Capture.store capture in
  Printf.printf "replayed %d events: %d nodes, %d edges\n" (List.length events)
    (Core.Prov_store.node_count store)
    (Core.Prov_store.edge_count store);
  let db = Core.Prov_schema.to_database store in
  Relstore.Database.save db ~path:out;
  Printf.printf "provenance db -> %s (%s)\n" out
    (Harness.Report.fmt_bytes (Relstore.Database.total_size db))

let events_path_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"EVENTS" ~doc:"An event stream saved by generate --events-out.")

let replay_out_arg =
  Arg.(
    value & opt string "replayed.db"
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Provenance database output path.")

let replay_cmd =
  Cmd.v
    (Cmd.info "replay" ~doc:"Rebuild a provenance store from a recorded event stream")
    Term.(const replay $ events_path_arg $ replay_out_arg)

(* --- stats ---------------------------------------------------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Metrics live in the process that did the work, so the default stats
   mode runs a self-contained instrumented workload: simulate browsing,
   ingest the event stream through the capture observer backed by a
   segmented WAL (with a compaction and a recovery), then exercise every
   query plan kind — and report the registry's snapshot of all of it. *)
let workload_snapshot ?(group_commit = 1) ?(cache_capacity = 512) days seed =
  Provkit_obs.Metrics.set_enabled true;
  Provkit_obs.Flight.set_context
    [ ("seed", string_of_int seed); ("days", string_of_int days) ];
  Relstore.Query_exec.set_cache_capacity cache_capacity;
  Relstore.Query_exec.clear_cache ();
  let dir = Filename.temp_file "provctl-stats" ".wal" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Provkit_obs.Trace.with_span "workload" ~attrs:[ ("seed", string_of_int seed) ]
  @@ fun () ->
  let ds =
    Provkit_obs.Trace.with_span "workload.simulate" (fun () ->
        Harness.Dataset.build
          ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
          ~seed ())
  in
  let events = Browser.Engine.event_log ds.Harness.Dataset.engine in
  let store =
    Provkit_obs.Trace.with_span "workload.ingest" (fun () ->
        let handle =
          Core.Prov_log.Segmented.open_
            ~config:
              {
                Core.Prov_log.Segmented.default_config with
                Core.Prov_log.Segmented.max_segment_bytes = 16384;
                Core.Prov_log.Segmented.group_commit_ops = max 1 group_commit;
              }
            dir
        in
        let capture, feed = Core.Capture.observer () in
        let store = Core.Capture.store capture in
        Core.Prov_log.Segmented.attach handle store;
        List.iter feed events;
        Core.Prov_log.Segmented.compact handle store;
        Core.Prov_log.Segmented.close handle;
        ignore (Core.Prov_log.Segmented.recover ~dir ());
        store)
  in
  Provkit_obs.Trace.with_span "workload.query" (fun () ->
      let db = Core.Prov_schema.to_database store in
      let nodes = Relstore.Database.table db "prov_node" in
      let schema = Relstore.Table.schema nodes in
      let urls =
        Relstore.Table.fold nodes ~init:[] ~f:(fun acc _ row ->
            if List.length acc >= 8 then acc
            else
              match Relstore.Row.text_opt schema row "url" with
              | Some u when (not (List.mem u acc)) && not (String.contains u '\'') ->
                u :: acc
              | _ -> acc)
      in
      let q s = ignore (Relstore.Sql.query db s) in
      q "SELECT COUNT(*) FROM prov_node";
      q "SELECT kind, COUNT(*) FROM prov_node GROUP BY kind";
      q "SELECT * FROM prov_node WHERE kind = 1 LIMIT 20";
      q "SELECT * FROM prov_edge WHERE src BETWEEN 1 AND 64";
      List.iter
        (fun u -> q (Printf.sprintf "SELECT * FROM prov_node WHERE url = '%s'" u))
        urls;
      (* Awesomebar-style repetition: the same lookups re-run keystroke
         after keystroke.  Round one is cold, later rounds are served by
         the epoch-validated result cache — the prov.query.cache.*
         counters in the snapshot are this loop's ground truth. *)
      let kind_eq = Relstore.Predicate.Eq ("kind", Relstore.Value.Int 1) in
      for _ = 1 to 3 do
        ignore (Relstore.Query_exec.select ~where:kind_eq nodes);
        ignore (Relstore.Query_exec.count nodes);
        ignore (Relstore.Query_exec.group_count ~by:"kind" nodes)
      done);
  Provkit_obs.Metrics.snapshot ()

let stats db json prom trace_out days seed group_commit cache_capacity =
  (match db with
  | Some path ->
    let store = load_store path in
    Format.printf "%a" Core.Prov_store.pp_stats store;
    Printf.printf "causal graph acyclic: %b\n" (Core.Versioning.is_acyclic store)
  | None ->
    (* The exposition includes one prov_alert_state gauge per default
       rule, so install the catalog before the workload's pulse points
       start flowing. *)
    if prom then Provkit_obs.Alert.install_defaults ();
    let snap = workload_snapshot ~group_commit ~cache_capacity days seed in
    if prom then begin
      print_string (Provkit_obs.Timeseries.prometheus snap);
      print_string (Provkit_obs.Alert.prometheus_states ())
    end
    else if json then print_endline (Provkit_obs.Metrics.to_json snap)
    else begin
      print_string (Provkit_obs.Metrics.render snap);
      Printf.printf "\nheadline: %s\n" (Provkit_obs.Metrics.headline snap)
    end);
  match trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Provkit_obs.Trace.dump_jsonl oc;
    close_out oc;
    Printf.eprintf "trace -> %s\n" path

let db_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "db" ] ~docv:"FILE"
        ~doc:
          "Report node/edge statistics of this saved database instead of running the \
           instrumented workload.")

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable metrics snapshot.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE" ~doc:"Dump recorded spans here, one JSON per line.")

let group_commit_arg =
  Arg.(
    value & opt int 1
    & info [ "group-commit" ] ~docv:"N"
        ~doc:"Flush the WAL once N appends are pending (1 = fsync every append).")

let cache_capacity_arg =
  Arg.(
    value & opt int 512
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Query result cache capacity in entries (0 caches nothing).")

let prom_flag =
  Arg.(
    value & flag
    & info [ "prom" ]
        ~doc:"Emit the snapshot in Prometheus text exposition format instead.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Metrics snapshot of an instrumented ingest+query run (with --db: statistics of \
          a saved provenance database)")
    Term.(
      const stats $ db_opt_arg $ json_flag $ prom_flag $ trace_out_arg $ days_arg
      $ seed_arg $ group_commit_arg $ cache_capacity_arg)

(* --- analyze: the statistics catalog --------------------------------- *)

(* Simulate + ingest only — no WAL, no query mix — for the commands
   that need a populated relational database rather than a metrics
   story. *)
let build_database days seed =
  let ds =
    Harness.Dataset.build
      ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
      ~seed ()
  in
  let events = Browser.Engine.event_log ds.Harness.Dataset.engine in
  let capture, feed = Core.Capture.observer () in
  List.iter feed events;
  Core.Prov_schema.to_database (Core.Capture.store capture)

let analyze db days seed sample buckets json =
  Provkit_obs.Metrics.set_enabled true;
  let database =
    match db with
    | Some path -> Core.Prov_schema.to_database (load_store path)
    | None -> build_database days seed
  in
  let all = Relstore.Stats.analyze_database ?sample ~buckets database in
  List.iter
    (fun ts ->
      if json then print_endline (Relstore.Stats.to_json ts)
      else begin
        print_string (Relstore.Stats.render ts);
        print_newline ()
      end)
    all

let sample_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample" ] ~docv:"N"
        ~doc:"Examine at most N rows per table (deterministic sample; default: all).")

let buckets_arg =
  Arg.(
    value & opt int 32
    & info [ "buckets" ] ~docv:"B" ~doc:"Equi-depth histogram buckets per indexed column.")

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Collect per-table/per-column statistics (row counts, null fractions, min/max, \
          HyperLogLog distinct counts, equi-depth histograms) into the planner's catalog \
          and print them")
    Term.(const analyze $ db_opt_arg $ days_arg $ seed_arg $ sample_arg $ buckets_arg
          $ json_flag)

(* --- slowlog --------------------------------------------------------- *)

let slowlog load threshold_ns days seed json out =
  (match load with
  | Some path ->
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    let entries = Relstore.Slowlog.load_jsonl content in
    if json then
      List.iter (fun e -> print_endline (Relstore.Slowlog.to_json e)) entries
    else print_string (Relstore.Slowlog.render entries)
  | None ->
    (match Relstore.Slowlog.set_threshold_ns threshold_ns with
    | () -> ()
    | exception Invalid_argument msg ->
      Printf.eprintf "provctl slowlog: %s\n" msg;
      exit 2);
    ignore (workload_snapshot days seed);
    let entries = Relstore.Slowlog.entries () in
    if json then
      List.iter (fun e -> print_endline (Relstore.Slowlog.to_json e)) entries
    else print_string (Relstore.Slowlog.render entries));
  match out with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 1024 in
    Relstore.Slowlog.dump_jsonl buf;
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.eprintf "slowlog -> %s\n" path

let slowlog_load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Render a previously dumped JSONL slow-query log instead of running the \
              workload.")

let slowlog_threshold_arg =
  let default =
    (* PROV_SLOWLOG_NS (already applied at Slowlog load when valid)
       also becomes the flag default, so env < flag in precedence. *)
    match Sys.getenv_opt "PROV_SLOWLOG_NS" with
    | Some s -> (
      match Relstore.Slowlog.threshold_of_env_string s with Some n -> n | None -> 100_000)
    | None -> 100_000
  in
  Arg.(
    value & opt int default
    & info
        [ "threshold-ns"; "threshold" ]
        ~docv:"NS"
        ~doc:
          "Slow-query threshold in nanoseconds (0 logs every query; at most one hour).  \
           Defaults to $(b,PROV_SLOWLOG_NS) when that is set to a valid value.")

let slowlog_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Also dump the log as JSONL here.")

let slowlog_cmd =
  Cmd.v
    (Cmd.info "slowlog"
       ~doc:
         "Run the instrumented workload with a slow-query threshold and print the \
          deduplicated slow-query log (worst first)")
    Term.(
      const slowlog $ slowlog_load_arg $ slowlog_threshold_arg $ days_arg $ seed_arg
      $ json_flag $ slowlog_out_arg)

(* --- top: live telemetry --------------------------------------------- *)

(* A one-shot process has no daemon to scrape, so [top] drives its own
   load: the simulated event stream is ingested in chunks, each chunk
   records a time-series point, and every refresh prints the
   delta/rate table between the two newest points. *)
let top days seed refreshes no_clear since journal =
  Provkit_obs.Metrics.set_enabled true;
  let ring = Provkit_obs.Timeseries.default in
  (* --since preloads the ring with a previous run's journaled points,
     so the first refresh already has history to diff against. *)
  (match since with
  | None -> ()
  | Some path ->
    let rp = Provkit_obs.Telemetry_log.replay_into ring ~path in
    Printf.eprintf "top: replayed %d point(s) from %s%s\n"
      (List.length rp.Provkit_obs.Telemetry_log.rp_points)
      path
      (if rp.Provkit_obs.Telemetry_log.rp_truncated then " (torn tail ignored)" else ""));
  let tj =
    match journal with
    | None -> None
    | Some path ->
      let t = Provkit_obs.Telemetry_log.open_ ~path in
      Provkit_obs.Telemetry_log.attach t;
      Some t
  in
  let ds =
    Harness.Dataset.build
      ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
      ~seed ()
  in
  let events = Browser.Engine.event_log ds.Harness.Dataset.engine in
  let capture, feed = Core.Capture.observer () in
  let store = Core.Capture.store capture in
  let total = List.length events in
  let refreshes = max 1 refreshes in
  let chunk = max 1 ((total + refreshes - 1) / refreshes) in
  ignore (Provkit_obs.Timeseries.record ring);
  let rec take n = function
    | [] -> ([], [])
    | x :: rest when n > 0 ->
      let batch, remaining = take (n - 1) rest in
      (x :: batch, remaining)
    | rest -> ([], rest)
  in
  let rec go i fed remaining =
    match remaining with
    | [] -> ()
    | _ ->
      let batch, rest = take chunk remaining in
      List.iter feed batch;
      (* A couple of queries per refresh so the query counters move on
         screen, not just the ingest ones. *)
      let db = Core.Prov_schema.to_database store in
      ignore (Relstore.Sql.query db "SELECT COUNT(*) FROM prov_node");
      ignore (Relstore.Sql.query db "SELECT kind, COUNT(*) FROM prov_node GROUP BY kind");
      ignore (Provkit_obs.Timeseries.record ring);
      let fed = fed + List.length batch in
      (match Provkit_obs.Timeseries.last_deltas ring with
      | None -> ()
      | Some rows ->
        if not no_clear then print_string "\027[2J\027[H";
        Printf.printf "provctl top — refresh %d/%d, %d/%d events ingested\n\n" i refreshes
          fed total;
        let live =
          List.filter (fun r -> r.Provkit_obs.Timeseries.s_cur > 0.0) rows
        in
        print_string (Provkit_obs.Timeseries.render live);
        flush stdout);
      go (i + 1) fed rest
  in
  go 1 0 events;
  match tj with
  | None -> ()
  | Some t ->
    Provkit_obs.Telemetry_log.close t;
    Printf.eprintf "top: telemetry journal -> %s\n" (Provkit_obs.Telemetry_log.path t)

let refreshes_arg =
  Arg.(
    value & opt int 5
    & info [ "refreshes" ] ~docv:"N" ~doc:"Number of screen refreshes over the run.")

let no_clear_flag =
  Arg.(
    value & flag
    & info [ "no-clear" ]
        ~doc:"Do not clear the terminal between refreshes (append instead).")

let since_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "since" ] ~docv:"FILE"
        ~doc:
          "Replay a telemetry journal into the ring first, so this run's deltas continue \
           a previous run's history (a torn tail is truncated to the clean prefix).")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append every recorded telemetry point (and alert transition) to this durable \
           CRC-framed journal, replayable with --since.")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live telemetry: ingest the simulated event stream in chunks and refresh a \
          per-metric value/delta/rate display after each chunk")
    Term.(
      const top $ days_arg $ seed_arg $ refreshes_arg $ no_clear_flag $ since_arg
      $ journal_arg)

(* --- alerts + health ------------------------------------------------- *)

(* The alert engine watches the telemetry ring, so this command just
   installs the default rule catalog, optionally replays a journal
   (history first: the engine's hysteresis state continues across
   restarts), runs the instrumented workload, and reports what fired. *)
let alerts journal days seed json group_commit cache_capacity =
  Provkit_obs.Alert.install_defaults ();
  let tj =
    match journal with
    | None -> None
    | Some path ->
      (* open_ first: it truncates any torn tail, so the replay below
         reads a clean file. *)
      let t = Provkit_obs.Telemetry_log.open_ ~path in
      let rp =
        Provkit_obs.Telemetry_log.replay_into Provkit_obs.Timeseries.default ~path
      in
      Provkit_obs.Alert.replay_history rp.Provkit_obs.Telemetry_log.rp_points;
      Printf.eprintf "alerts: replayed %d point(s), %d transition(s) from %s\n"
        (List.length rp.Provkit_obs.Telemetry_log.rp_points)
        (List.length rp.Provkit_obs.Telemetry_log.rp_transitions)
        path;
      Provkit_obs.Telemetry_log.attach t;
      Some t
  in
  ignore (workload_snapshot ~group_commit ~cache_capacity days seed);
  (match tj with Some t -> Provkit_obs.Telemetry_log.close t | None -> ());
  if json then print_endline (Provkit_obs.Alert.to_json ())
  else begin
    print_string (Provkit_obs.Alert.render ());
    let trs = Provkit_obs.Alert.transitions () in
    if trs <> [] then begin
      Printf.printf "\ntransitions (%d total):\n" (Provkit_obs.Alert.transitions_recorded ());
      List.iter
        (fun tr ->
          Printf.printf "  #%d %s %s (%s) value %g\n" tr.Provkit_obs.Alert.tr_seq
            (Provkit_obs.Alert.kind_name tr.Provkit_obs.Alert.tr_kind)
            tr.Provkit_obs.Alert.tr_rule
            (Provkit_obs.Alert.severity_name tr.Provkit_obs.Alert.tr_severity)
            tr.Provkit_obs.Alert.tr_value)
        trs
    end
  end

let alerts_cmd =
  Cmd.v
    (Cmd.info "alerts"
       ~doc:
         "Run the instrumented workload with the default alert-rule catalog armed and \
          report rule states and fire/resolve transitions")
    Term.(
      const alerts $ journal_arg $ days_arg $ seed_arg $ json_flag $ group_commit_arg
      $ cache_capacity_arg)

(* Health composes the judgments only the subsystems can make: the WAL
   checks its own manifest, the stats catalog its freshness, the alert
   engine contributes its built-in open-alerts check, and the epoch
   cross-check below ties tables to their catalog entries. *)
let health days seed json =
  Provkit_obs.Metrics.set_enabled true;
  Provkit_obs.Alert.install_defaults ();
  let dir = Filename.temp_file "provctl-health" ".wal" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let ds =
    Harness.Dataset.build
      ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
      ~seed ()
  in
  let events = Browser.Engine.event_log ds.Harness.Dataset.engine in
  let handle = Core.Prov_log.Segmented.open_ dir in
  let capture, feed = Core.Capture.observer () in
  let store = Core.Capture.store capture in
  Core.Prov_log.Segmented.attach handle store;
  List.iter feed events;
  Core.Prov_log.Segmented.close handle;
  let db = Core.Prov_schema.to_database store in
  ignore (Relstore.Stats.analyze_database db);
  Core.Prov_log.Segmented.register_manifest_check ~dir;
  Relstore.Stats.register_health_check db;
  Provkit_obs.Health.register Provkit_obs.Names.health_epochs_consistent (fun () ->
      (* A catalog entry stamped with an epoch the table has not reached
         yet means the epoch discipline broke somewhere — the staleness
         rule every cache layer relies on is no longer trustworthy. *)
      let tables = Relstore.Database.tables db in
      let from_future =
        List.filter
          (fun t ->
            match Relstore.Stats.lookup t with
            | Some s -> s.Relstore.Stats.ts_epoch > Relstore.Table.epoch t
            | None -> false)
          tables
      in
      if from_future = [] then
        ( Provkit_obs.Health.Ok,
          Printf.sprintf "catalog epochs consistent across %d table(s)" (List.length tables)
        )
      else
        ( Provkit_obs.Health.Failing,
          Printf.sprintf "catalog epoch ahead of table epoch: %s"
            (String.concat ", " (List.map Relstore.Table.name from_future)) ));
  let report = Provkit_obs.Health.run () in
  if json then print_endline (Provkit_obs.Health.to_json report)
  else print_string (Provkit_obs.Health.render report);
  if Provkit_obs.Health.exit_code report <> 0 then exit 1

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run a small instrumented workload, compose the registered health checks (WAL \
          manifest, stats freshness, open alerts, epoch consistency) and exit non-zero \
          when failing")
    Term.(const health $ days_arg $ seed_arg $ json_flag)

(* --- profile --------------------------------------------------------- *)

(* The stats workload again, but aimed at the tracer: every query gets a
   span (threshold zero), span ids are seeded for reproducibility, and
   the resulting tree is printed — or folded into flamegraph input. *)
let profile days seed folded json =
  Provkit_obs.Trace.clear ();
  Provkit_obs.Trace.seed_ids seed;
  Relstore.Query_exec.set_query_span_threshold_ns 0;
  ignore (workload_snapshot days seed);
  let spans = Provkit_obs.Trace.recent () in
  (match folded with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    List.iter
      (fun (stack, self_ns) -> Printf.fprintf oc "%s %Ld\n" stack self_ns)
      (Provkit_obs.Trace.folded spans);
    close_out oc;
    Printf.eprintf "folded stacks -> %s (flamegraph.pl %s > flame.svg)\n" path path);
  if json then List.iter (fun s -> print_endline (Provkit_obs.Trace.span_to_json s)) spans
  else print_string (Provkit_obs.Trace.render_trees (Provkit_obs.Trace.assemble spans))

let folded_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "folded" ] ~docv:"FILE"
        ~doc:"Write folded stacks (\"root;child self_ns\" lines) for flamegraph tooling.")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the instrumented workload with per-query spans and print the span tree \
          (--folded FILE for flamegraph input, --json for raw v2 JSONL spans)")
    Term.(const profile $ days_arg $ seed_arg $ folded_arg $ json_flag)

(* --- search --------------------------------------------------------- *)

let print_pages store results =
  List.iteri
    (fun i (page, score) ->
      match (Core.Prov_store.node store page).Core.Prov_node.kind with
      | Core.Prov_node.Page { url; title } ->
        Printf.printf "%2d. %-50s %s  (%.2f)\n" (i + 1)
          (Provkit_util.Strutil.truncate 50 title)
          url score
      | _ -> ())
    results

let search db query limit budget_ms =
  let store = load_store db in
  let index = Core.Prov_text_index.build store in
  let response =
    Core.Contextual_search.search ~budget:(budget_of budget_ms) ~limit index query
  in
  print_pages store
    (List.map
       (fun (r : Core.Contextual_search.result) ->
         (r.Core.Contextual_search.page, r.Core.Contextual_search.score))
       response.Core.Contextual_search.results);
  Printf.printf "(%.1f ms%s)\n" response.Core.Contextual_search.elapsed_ms
    (if response.Core.Contextual_search.truncated then ", truncated" else "")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Search terms.")

let search_cmd =
  Cmd.v
    (Cmd.info "search" ~doc:"Contextual history search over a saved database")
    Term.(const search $ db_arg $ query_arg $ limit_arg $ budget_arg)

(* --- time-search ----------------------------------------------------- *)

let time_search db query context limit budget_ms =
  let store = load_store db in
  let index = Core.Prov_text_index.build store in
  let time_index = Core.Time_edges.rebuild_time_index store in
  let response =
    Core.Time_search.search ~budget:(budget_of budget_ms) ~limit index time_index ~query
      ~context
  in
  print_pages store
    (List.map
       (fun (r : Core.Time_search.result) -> (r.Core.Time_search.page, r.Core.Time_search.score))
       response.Core.Time_search.results);
  Printf.printf "(%.1f ms)\n" response.Core.Time_search.elapsed_ms

let context_arg =
  Arg.(
    required & pos 1 (some string) None
    & info [] ~docv:"CONTEXT" ~doc:"What else was on screen at the time.")

let time_search_cmd =
  Cmd.v
    (Cmd.info "time-search" ~doc:"\"QUERY associated with CONTEXT\" history search")
    Term.(const time_search $ db_arg $ query_arg $ context_arg $ limit_arg $ budget_arg)

(* --- lineage --------------------------------------------------------- *)

let lineage db path_fragment dot_out =
  let store = load_store db in
  let downloads =
    Core.Prov_store.nodes_of_kind store (fun n ->
        match n.Core.Prov_node.kind with
        | Core.Prov_node.Download { target_path; _ } ->
          Provkit_util.Strutil.contains_substring ~needle:path_fragment target_path
        | _ -> false)
  in
  match downloads with
  | [] -> Printf.printf "no download matching %S\n" path_fragment
  | node :: _ -> begin
    Printf.printf "download: %s\n"
      (Core.Prov_node.display (Core.Prov_store.node store node));
    match Core.Lineage.first_recognizable store node with
    | None -> print_endline "no recognizable ancestor found"
    | Some origin ->
      Printf.printf "recognized origin (%d hops):\n" origin.Core.Lineage.distance;
      List.iter
        (fun line -> Printf.printf "  %s\n" line)
        (Core.Lineage.describe_path store origin.Core.Lineage.path);
      match dot_out with
      | None -> ()
      | Some path ->
        Core.Dot_export.save ~path (Core.Dot_export.export_lineage store origin);
        Printf.printf "lineage graph -> %s (render with: dot -Tsvg %s)\n" path path
  end

let fragment_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Substring of the downloaded file's path.")

let dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Also write the lineage as a GraphViz file.")

let lineage_cmd =
  Cmd.v
    (Cmd.info "lineage" ~doc:"Where did this download come from?")
    Term.(const lineage $ db_arg $ fragment_arg $ dot_arg)

(* --- sessions ---------------------------------------------------------- *)

let sessions db about =
  let store = load_store db in
  let sessions = Sys.opaque_identity (Core.Sessions.detect store) in
  match about with
  | None ->
    Printf.printf "%d sessions\n" (List.length sessions);
    List.iter (fun s -> print_endline (Core.Sessions.describe store s)) sessions
  | Some query ->
    let index = Core.Prov_text_index.build store in
    List.iter
      (fun (s, score) ->
        Printf.printf "%.2f  %s\n" score (Core.Sessions.describe store s))
      (Core.Sessions.matching index sessions query)

let about_arg =
  Arg.(
    value & opt (some string) None
    & info [ "about" ] ~docv:"TEXT" ~doc:"Only sessions matching this text, best first.")

let sessions_cmd =
  Cmd.v
    (Cmd.info "sessions" ~doc:"Segment history into browsing sessions")
    Term.(const sessions $ db_arg $ about_arg)

(* --- sql -------------------------------------------------------------- *)

let sql db statement explain_only analyze json =
  let database = Relstore.Database.load ~path:db in
  if analyze then begin
    match Relstore.Sql.analyze_query database statement with
    | report ->
      if json then print_endline (Relstore.Sql.analyze_to_json report)
      else print_endline (Relstore.Sql.render_analyze report)
    | exception Relstore.Sql.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  end
  else if explain_only then begin
    match Relstore.Sql.explain_query database statement with
    | report -> print_endline (Relstore.Sql.render_explain report)
    | exception Relstore.Sql.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  end
  else begin
    match Relstore.Sql.query database statement with
    | result ->
      print_string (Relstore.Sql.render result);
      Printf.printf "(%d rows)\n" (List.length result.Relstore.Sql.rows)
    | exception Relstore.Sql.Parse_error msg -> Printf.eprintf "parse error: %s\n" msg
  end

let statement_arg =
  Arg.(
    required & pos 0 (some string) None
    & info [] ~docv:"SQL" ~doc:"e.g. \"SELECT label FROM prov_node WHERE kind = 4 LIMIT 10\".")

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Run the query and report the planner's access path, estimated vs. scanned vs. \
           returned rows, and latency instead of the result rows.")

let analyze_flag =
  Arg.(
    value & flag
    & info [ "analyze" ]
        ~doc:
          "EXPLAIN ANALYZE: run the query and print a per-operator profile tree (probe, \
           fetch, filter, sort, limit, join build/probe) with rows in/out, duration and \
           percent of total per node.  With --json, emit the raw profile tree.")

let sql_json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"With --analyze: emit the raw profile as JSON.")

let sql_cmd =
  Cmd.v
    (Cmd.info "sql" ~doc:"Run a SQL query against a saved database (provenance or places)")
    Term.(const sql $ db_arg $ statement_arg $ explain_flag $ analyze_flag $ sql_json_flag)

(* --- suggest ----------------------------------------------------------- *)

let suggest db typed context_terms =
  let store = load_store db in
  (* Resolve a textual context into store nodes: the best-matching pages. *)
  let context =
    match context_terms with
    | None -> []
    | Some text ->
      let index = Core.Prov_text_index.build store in
      List.map fst (Core.Prov_text_index.search ~limit:3 index text)
  in
  List.iteri
    (fun i s ->
      Printf.printf "%d. %-48s %s  (base %.2f + context %.2f)\n" (i + 1)
        (Provkit_util.Strutil.truncate 48 s.Core.Suggest.title)
        s.Core.Suggest.url s.Core.Suggest.base_score s.Core.Suggest.context_score)
    (Core.Suggest.suggest ~context store typed)

let typed_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TYPED" ~doc:"What the user typed.")

let context_arg_opt =
  Arg.(
    value & opt (some string) None
    & info [ "context" ] ~docv:"TEXT" ~doc:"What the user is currently looking at.")

let suggest_cmd =
  Cmd.v
    (Cmd.info "suggest" ~doc:"Provenance-aware location-bar suggestions")
    Term.(const suggest $ db_arg $ typed_arg $ context_arg_opt)

(* --- tree ------------------------------------------------------------ *)

let tree db since max_nodes =
  let store = load_store db in
  let t = Core.History_tree.build store in
  Printf.printf "%d visits in %d sessions (forest: %b)\n\n"
    (Core.History_tree.size t)
    (List.length (Core.History_tree.roots t))
    (Core.History_tree.is_forest t);
  print_string (Core.History_tree.render ~max_nodes ?since store t)

let since_arg =
  Arg.(
    value & opt (some int) None
    & info [ "since" ] ~docv:"TIME" ~doc:"Only sessions starting at or after this time.")

let max_nodes_arg =
  Arg.(value & opt int 120 & info [ "max-nodes" ] ~docv:"N" ~doc:"Output size cap.")

let tree_cmd =
  Cmd.v
    (Cmd.info "tree" ~doc:"Render the navigation-history forest (Ayers-Stasko view)")
    Term.(const tree $ db_arg $ since_arg $ max_nodes_arg)

(* --- expire ------------------------------------------------------------ *)

let expire db cutoff out =
  let store = load_store db in
  let before = Relstore.Database.total_size (Relstore.Database.load ~path:db) in
  let r = Core.Retention.expire ~cutoff store in
  let out_db = Core.Prov_schema.to_database r.Core.Retention.store in
  Relstore.Database.save out_db ~path:out;
  Printf.printf
    "expired %d visit instances before t=%d; %d summary edges added; %d nodes kept\n"
    r.Core.Retention.expired_visits cutoff r.Core.Retention.summary_edges
    r.Core.Retention.kept_nodes;
  Printf.printf "%s -> %s (%s -> %s)\n" db out
    (Harness.Report.fmt_bytes before)
    (Harness.Report.fmt_bytes (Relstore.Database.total_size out_db))

let cutoff_arg =
  Arg.(
    required & pos 0 (some int) None
    & info [] ~docv:"CUTOFF" ~doc:"Expire visit instances opened before this time.")

let expire_out_arg =
  Arg.(
    value & opt string "expired.db"
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output database path.")

let expire_cmd =
  Cmd.v
    (Cmd.info "expire"
       ~doc:"Provenance-preserving history expiration (old visits become page summaries)")
    Term.(const expire $ db_arg $ cutoff_arg $ expire_out_arg)

(* --- wal --------------------------------------------------------------- *)

(* Record simulated browsing into a segmented, checksummed WAL, then
   (optionally) hurt the active segment the way a crashing machine
   would, and report what recovery salvages. *)
let wal days seed dir max_segment_bytes compact_every fault_spec group_commit =
  let fault =
    match fault_spec with
    | None -> None
    | Some spec -> begin
      match Provkit_util.Faulty_io.parse_fault spec with
      | Some f -> Some f
      | None ->
        Printf.eprintf
          "bad --inject-fault %S (want crash@N, tear@N, flip@N or dup-flush)\n" spec;
        exit 2
    end
  in
  Provkit_obs.Flight.set_context
    [ ("seed", string_of_int seed); ("days", string_of_int days); ("wal_dir", dir) ];
  let incidents_before = Provkit_obs.Flight.recorded () in
  let ds =
    Harness.Dataset.build
      ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
      ~seed ()
  in
  let events = Browser.Engine.event_log ds.Harness.Dataset.engine in
  let handle =
    Core.Prov_log.Segmented.open_
      ~config:
        {
          Core.Prov_log.Segmented.default_config with
          Core.Prov_log.Segmented.max_segment_bytes;
          Core.Prov_log.Segmented.group_commit_ops = max 1 group_commit;
        }
      dir
  in
  let capture, feed = Core.Capture.observer () in
  let store = Core.Capture.store capture in
  Core.Prov_log.Segmented.attach handle store;
  List.iteri
    (fun i event ->
      feed event;
      match compact_every with
      | Some n when n > 0 && (i + 1) mod n = 0 -> Core.Prov_log.Segmented.compact handle store
      | _ -> ())
    events;
  (match fault with
  | None -> ()
  | Some f ->
    Printf.printf "injecting fault on active segment: %s\n"
      (Provkit_util.Faulty_io.fault_to_string f);
    Provkit_util.Faulty_io.arm (Core.Prov_log.Segmented.active_sink handle) [ f ]);
  (* The armed fault fires inside this close; the shutdown span gives
     the flight recorder an ancestry to blame. *)
  Provkit_obs.Trace.with_span "wal.shutdown"
    ~attrs:
      [
        ( "fault",
          match fault with
          | None -> "none"
          | Some f -> Provkit_util.Faulty_io.fault_to_string f );
      ]
    (fun () -> Core.Prov_log.Segmented.close handle);
  Printf.printf "logged %d events as %d ops into %s (generation %d, %d live segments)\n"
    (List.length events)
    (Core.Prov_log.Segmented.appended handle)
    dir
    (Core.Prov_log.Segmented.generation handle)
    (List.length (Core.Prov_log.Segmented.segments handle));
  let r = Core.Prov_log.Segmented.recover ~dir () in
  let rs = r.Core.Prov_log.Segmented.store in
  Printf.printf "recovery: %d tail ops over %d segments%s\n"
    r.Core.Prov_log.Segmented.ops_applied r.Core.Prov_log.Segmented.segments_read
    (if r.Core.Prov_log.Segmented.truncated then " (stopped at a damaged frame)" else " (clean)");
  Printf.printf "live store:      %d nodes, %d edges\n"
    (Core.Prov_store.node_count store) (Core.Prov_store.edge_count store);
  Printf.printf "recovered store: %d nodes, %d edges\n"
    (Core.Prov_store.node_count rs) (Core.Prov_store.edge_count rs);
  (* Anything abnormal (the injected fault firing, a truncated
     recovery) landed in the flight recorder — leave the postmortem
     next to the WAL it explains. *)
  List.iter
    (fun (i : Provkit_obs.Flight.incident) ->
      if i.Provkit_obs.Flight.seq > incidents_before then begin
        let path =
          Filename.concat dir (Printf.sprintf "postmortem-%d.json" i.Provkit_obs.Flight.seq)
        in
        Provkit_obs.Flight.dump i ~path;
        Printf.printf "postmortem -> %s (%s)\n" path i.Provkit_obs.Flight.reason
      end)
    (Provkit_obs.Flight.incidents ())

let dir_arg =
  Arg.(
    value & opt string "wal.d"
    & info [ "dir" ] ~docv:"DIR" ~doc:"WAL directory (created if missing).")

let max_segment_arg =
  Arg.(
    value & opt int 65536
    & info [ "max-segment-bytes" ] ~docv:"BYTES" ~doc:"Rotate segments beyond this size.")

let compact_every_arg =
  Arg.(
    value & opt (some int) None
    & info [ "compact-every" ] ~docv:"N" ~doc:"Compact the WAL after every N events.")

let fault_arg =
  Arg.(
    value & opt (some string) None
    & info [ "inject-fault" ] ~docv:"SPEC"
        ~doc:
          "Hurt the active segment before recovery: crash@N (drop bytes past N), tear@N \
           (truncate the final write to N bytes), flip@N (complement the byte at offset N), \
           dup-flush (replay the unsynced tail).")

let wal_cmd =
  Cmd.v
    (Cmd.info "wal"
       ~doc:"Write browsing into a segmented checksummed journal, optionally inject a fault, \
             and measure recovery")
    Term.(
      const wal $ days_arg $ seed_arg $ dir_arg $ max_segment_arg $ compact_every_arg
      $ fault_arg $ group_commit_arg)

(* --- matview --------------------------------------------------------- *)

(* Build the five Places matviews over an event stream (a recorded one
   via --events, otherwise a fresh simulation) and report on them.
   Actions: list (registry status), status (status + current values),
   refresh (force a rebuild first — the counters show it). *)

let matview action days seed events_path top json =
  let events =
    match events_path with
    | Some path -> Browser.Event_codec.load ~path
    | None ->
      let ds =
        Harness.Dataset.build
          ~user_config:{ Browser.User_model.default_config with Browser.User_model.days }
          ~seed ()
      in
      Browser.Engine.event_log ds.Harness.Dataset.engine
  in
  let places = Browser.Places_db.create () in
  let mv = Browser.Places_views.create ~top_n:top places in
  Browser.Places_views.ingest_batch mv events;
  if action = `Refresh then Browser.Places_views.refresh mv;
  let status = Browser.Places_views.status mv in
  let first, revisits = Browser.Places_views.revisit_stats mv in
  if json then begin
    List.iter
      (fun s ->
        Printf.printf
          "{\"view\":\"%s\",\"folded\":%d,\"updates\":%d,\"refreshes\":%d,\"staleness\":%d}\n"
          (Provkit_obs.Metrics.json_escape s.Relstore.Matview.st_name)
          s.Relstore.Matview.st_folded s.Relstore.Matview.st_updates
          s.Relstore.Matview.st_refreshes s.Relstore.Matview.st_staleness)
      status;
    Printf.printf
      "{\"events\":%d,\"recent_visits_7d\":%d,\"first_visits\":%d,\"revisits\":%d}\n"
      (Browser.Places_views.events_ingested mv)
      (Browser.Places_views.recent_visits mv)
      first revisits
  end
  else begin
    Printf.printf "%d events folded into %d views\n\n"
      (Browser.Places_views.events_ingested mv)
      (List.length status);
    Printf.printf "%-24s %8s %8s %9s %9s\n" "view" "folded" "updates" "refreshes" "staleness";
    List.iter
      (fun s ->
        Printf.printf "%-24s %8d %8d %9d %9d\n" s.Relstore.Matview.st_name
          s.Relstore.Matview.st_folded s.Relstore.Matview.st_updates
          s.Relstore.Matview.st_refreshes s.Relstore.Matview.st_staleness)
      status;
    if action <> `List then begin
      Printf.printf "\nawesomebar frecency (top %d):\n" top;
      List.iter
        (fun (id, url, f) -> Printf.printf "  %6.1f  #%-4d %s\n" f id url)
        (Browser.Places_views.frecency_top mv);
      Printf.printf "\nvisits per host:\n";
      List.iteri
        (fun i (host, n) -> if i < top then Printf.printf "  %6d  %s\n" n host)
        (Browser.Places_views.host_visits mv);
      Printf.printf "\ndownloads per referrer host:\n";
      List.iter
        (fun (host, n) -> Printf.printf "  %6d  %s\n" n host)
        (Browser.Places_views.download_referrers mv);
      Printf.printf "\nvisits in the last 7 days: %d\n"
        (Browser.Places_views.recent_visits mv);
      Printf.printf "revisit detection (bloom): %d first visits, %d revisits\n" first
        revisits
    end
  end

let matview_action_arg =
  let actions = [ ("list", `List); ("status", `Status); ("refresh", `Refresh) ] in
  Arg.(
    value
    & pos 0 (enum actions) `Status
    & info [] ~docv:"ACTION" ~doc:"One of: list, status, refresh.")

let matview_events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:"Fold a recorded event stream (generate --events-out) instead of simulating.")

let matview_top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Rows kept by the frecency view.")

let matview_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit view status as JSON, one object per line.")

let matview_cmd =
  Cmd.v
    (Cmd.info "matview"
       ~doc:
         "Incremental materialized views over the capture stream: list them, show their \
          values, or force a refresh")
    Term.(
      const matview $ matview_action_arg $ days_arg $ seed_arg $ matview_events_arg
      $ matview_top_arg $ matview_json_arg)

(* --- experiments ----------------------------------------------------- *)

let experiments seed quick =
  List.iter Harness.Report.print (Harness.Experiments.run_all ~quick ~seed ())

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Small dataset, fewer samples.")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate every paper experiment table")
    Term.(const experiments $ seed_arg $ quick_arg)

(* --- serve / loadgen -------------------------------------------------- *)

let daemon_config sessions events queue batch snapshot_every readers read_mix
    analyze_every compact_every seed wal_dir =
  {
    Daemon.Provd.sessions;
    events_per_session = events;
    queue_capacity = queue;
    batch_size = batch;
    snapshot_every;
    read_workers = readers;
    read_mix;
    analyze_every;
    compact_every;
    seed;
    wal_dir;
  }

let print_report ~json (r : Daemon.Provd.report) =
  let elapsed_s = float_of_int r.Daemon.Provd.r_elapsed_ns /. 1e9 in
  let rate =
    if elapsed_s > 0. then float_of_int r.Daemon.Provd.r_events /. elapsed_s else 0.
  in
  let q = r.Daemon.Provd.r_queue in
  if json then
    Printf.printf
      "{\"events\":%d,\"batches\":%d,\"snapshots\":%d,\"reads\":%d,\"read_p99_ns\":%d,\"elapsed_ns\":%d,\"events_per_sec\":%.1f,\"queue_max_depth\":%d,\"jobs\":%d,\"wal_appended\":%d}\n"
      r.Daemon.Provd.r_events r.Daemon.Provd.r_batches r.Daemon.Provd.r_snapshots
      r.Daemon.Provd.r_reads r.Daemon.Provd.r_read_p99_ns r.Daemon.Provd.r_elapsed_ns rate
      q.Daemon.Event_queue.max_depth r.Daemon.Provd.r_jobs r.Daemon.Provd.r_wal_appended
  else begin
    Printf.printf "ingested %d events in %d batches over %.3fs (%.0f events/sec)\n"
      r.Daemon.Provd.r_events r.Daemon.Provd.r_batches elapsed_s rate;
    Printf.printf "queue: %d pushed, %d popped, high-water %d, residual %d\n"
      q.Daemon.Event_queue.pushed q.Daemon.Event_queue.popped
      q.Daemon.Event_queue.max_depth q.Daemon.Event_queue.depth;
    Printf.printf "snapshots published: %d; reads served: %d (p99 %.3f ms)\n"
      r.Daemon.Provd.r_snapshots r.Daemon.Provd.r_reads
      (float_of_int r.Daemon.Provd.r_read_p99_ns /. 1e6);
    Printf.printf "background jobs: %d; WAL ops appended: %d\n" r.Daemon.Provd.r_jobs
      r.Daemon.Provd.r_wal_appended;
    let nodes = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Daemon.Provd.r_node_kinds in
    let edges = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Daemon.Provd.r_edge_kinds in
    Printf.printf "matviews: %d nodes, %d edges across kinds\n" nodes edges
  end

let serve sessions events queue batch snapshot_every readers read_mix analyze_every
    compact_every seed wal_dir json =
  let cfg =
    daemon_config sessions events queue batch snapshot_every readers read_mix
      analyze_every compact_every seed wal_dir
  in
  let t = Daemon.Provd.start cfg in
  Daemon.Provd.register_health_check t;
  let report = Daemon.Provd.wait t in
  print_report ~json report;
  let h = Provkit_obs.Health.run () in
  let verdict =
    match h.Provkit_obs.Health.h_verdict with
    | Provkit_obs.Health.Ok -> "ok"
    | Provkit_obs.Health.Degraded -> "degraded"
    | Provkit_obs.Health.Failing -> "failing"
  in
  if json then Printf.printf "{\"health\":\"%s\"}\n" verdict
  else Printf.printf "health: %s\n" verdict

let loadgen sessions events read_mix seed json =
  (* Memory-only throughput probe: same engine as serve, no WAL, no
     background jobs — what the bench's daemon-ingest row measures. *)
  let cfg =
    {
      Daemon.Provd.default with
      Daemon.Provd.sessions;
      events_per_session = events;
      read_mix;
      seed;
    }
  in
  print_report ~json (Daemon.Provd.run cfg)

let serve_sessions_arg =
  Arg.(
    value & opt int 4
    & info [ "sessions" ] ~docv:"N" ~doc:"Concurrent producer sessions (one domain each).")

let serve_events_arg =
  Arg.(value & opt int 500 & info [ "events" ] ~docv:"N" ~doc:"Events per session.")

let serve_queue_arg =
  Arg.(value & opt int 512 & info [ "queue" ] ~docv:"N" ~doc:"Bounded ingest queue capacity.")

let serve_batch_arg =
  Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N" ~doc:"Max events per ingest batch.")

let serve_snapshot_arg =
  Arg.(
    value & opt int 4
    & info [ "snapshot-every" ] ~docv:"N" ~doc:"Publish a read snapshot every N batches.")

let serve_readers_arg =
  Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc:"Concurrent read-worker domains.")

let serve_read_mix_arg =
  Arg.(
    value & opt float 0.25
    & info [ "read-mix" ] ~docv:"P"
        ~doc:"Per pushed event, probability the session also issues a read.")

let serve_analyze_arg =
  Arg.(
    value & opt int 8
    & info [ "analyze-every" ] ~docv:"N"
        ~doc:"Background stats analyze every N batches (0 disables).")

let serve_compact_arg =
  Arg.(
    value & opt int 0
    & info [ "compact-every" ] ~docv:"N"
        ~doc:"Request WAL compaction every N batches (0 disables).")

let serve_wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR" ~doc:"Journal every batch to a segmented WAL here.")

let serve_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the run report as JSON.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the provd fleet: concurrent sessions feeding a bounded queue, one ingest \
          owner group-committing to the WAL, snapshot-isolated read workers, and \
          non-blocking background jobs")
    Term.(
      const serve $ serve_sessions_arg $ serve_events_arg $ serve_queue_arg
      $ serve_batch_arg $ serve_snapshot_arg $ serve_readers_arg $ serve_read_mix_arg
      $ serve_analyze_arg $ serve_compact_arg $ seed_arg $ serve_wal_arg $ serve_json_arg)

let loadgen_cmd =
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive the provd ingest path with deterministic sessions (no WAL, no background \
          jobs) and report throughput and read latency")
    Term.(
      const loadgen $ serve_sessions_arg $ serve_events_arg $ serve_read_mix_arg $ seed_arg
      $ serve_json_arg)

(* --- lint ------------------------------------------------------------ *)

let lint root checks json =
  let module L = Provkit_lint.Driver in
  let checks = match checks with [] -> L.check_ids | cs -> cs in
  let findings = L.lint_tree ~checks ~root () in
  if json then print_endline (L.render_json findings)
  else begin
    if findings <> [] then print_endline (L.render_text findings);
    Printf.eprintf "provlint: %d finding(s) in %d file(s)\n" (List.length findings)
      (List.length (L.tree_files ~root))
  end;
  if findings <> [] then exit 1

let lint_root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root containing lib/ and bin/.")

let lint_check_arg =
  let check_conv =
    Arg.enum (List.map (fun (id, _) -> (id, id)) Provkit_lint.Driver.all_checks)
  in
  Arg.(
    value & opt_all check_conv []
    & info [ "check" ] ~docv:"ID" ~doc:"Run only this check (repeatable; default: all).")

let lint_json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as JSON, one object per line.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the provlint static checks over lib/ and bin/ (see LINTING.md)")
    Term.(const lint $ lint_root_arg $ lint_check_arg $ lint_json_arg)

let () =
  (* Flight-recorder wiring: injected faults and uncaught exceptions
     both leave a postmortem. *)
  Provkit_obs.Flight.install_fault_hook ();
  Provkit_obs.Flight.set_context [ ("argv", String.concat " " (Array.to_list Sys.argv)) ];
  let doc = "browser provenance: capture, store and query (TaPP '09 reproduction)" in
  let info = Cmd.info "provctl" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd; replay_cmd; stats_cmd; analyze_cmd; slowlog_cmd; top_cmd;
        alerts_cmd; health_cmd; profile_cmd; search_cmd; time_search_cmd; lineage_cmd;
        tree_cmd; sql_cmd; suggest_cmd; sessions_cmd; expire_cmd; wal_cmd; matview_cmd;
        serve_cmd; loadgen_cmd; experiments_cmd; lint_cmd;
      ]
  in
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Provkit_obs.Flight.record "provctl.uncaught" ~attrs:[ ("exn", Printexc.to_string e) ];
    (match Provkit_obs.Flight.latest () with
    | None -> ()
    | Some i ->
      let path = "provctl-postmortem.json" in
      Provkit_obs.Flight.dump i ~path;
      Printf.eprintf "provctl: uncaught exception; postmortem -> %s\n" path);
    Printexc.raise_with_backtrace e bt
