(* provlint: AST-accurate static analysis over this repository's own
   sources (lib/ and bin/).  See LINTING.md for the check catalogue and
   the [@provlint.allow "check-id"] suppression attribute.

   Exit status: 0 clean, 1 findings, 124 usage error (cmdliner). *)

open Cmdliner

let root_arg =
  Arg.(
    value & opt string "."
    & info [ "root" ] ~docv:"DIR" ~doc:"Repository root containing lib/ and bin/.")

let check_arg =
  let check_conv = Arg.enum (List.map (fun (id, _) -> (id, id)) Provkit_lint.Driver.all_checks) in
  Arg.(
    value & opt_all check_conv []
    & info [ "check" ] ~docv:"ID" ~doc:"Run only this check (repeatable; default: all).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as JSON, one object per line.")

let sarif_arg =
  Arg.(
    value & flag
    & info [ "sarif" ] ~doc:"Emit findings as SARIF 2.1.0, one result object per line.")

let timing_arg =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:"Report per-check wall time on stderr (stdout stays parseable).")

let list_arg = Arg.(value & flag & info [ "list-checks" ] ~doc:"List check ids and exit.")

let run root checks json sarif timing list_checks =
  if list_checks then begin
    List.iter
      (fun (id, doc) -> Printf.printf "%-20s %s\n" id doc)
      Provkit_lint.Driver.all_checks;
    0
  end
  else begin
    let checks = match checks with [] -> Provkit_lint.Driver.check_ids | cs -> cs in
    let findings, timings = Provkit_lint.Driver.lint_tree_timed ~checks ~root () in
    if sarif then print_endline (Provkit_lint.Driver.render_sarif findings)
    else if json then print_endline (Provkit_lint.Driver.render_json findings)
    else begin
      if findings <> [] then print_endline (Provkit_lint.Driver.render_text findings);
      Printf.eprintf "provlint: %d finding(s) in %d file(s)\n" (List.length findings)
        (List.length (Provkit_lint.Driver.tree_files ~root))
    end;
    if timing then Printf.eprintf "%s\n" (Provkit_lint.Driver.render_timings timings);
    if findings = [] then 0 else 1
  end

let cmd =
  Cmd.v
    (Cmd.info "provlint" ~version:"1.0.0"
       ~doc:"AST-accurate static analysis for the browser-provenance tree")
    Term.(const run $ root_arg $ check_arg $ json_arg $ sarif_arg $ timing_arg $ list_arg)

let () = exit (Cmd.eval' cmd)
