
let () = ignore Obs.Names.used
let () = ignore Obs.Names.unused
let a = "prov.fixture.stray"
let b = "prov.fixture.also_stray"
