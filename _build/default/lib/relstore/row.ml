type t = Value.t array

let of_alist schema fields =
  let row = Array.make (Schema.arity schema) Value.Null in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      if Hashtbl.mem seen name then
        invalid_arg ("Row.of_alist: duplicate field " ^ name);
      Hashtbl.add seen name ();
      row.(Schema.column_index schema name) <- v)
    fields;
  row

let get schema row name = row.(Schema.column_index schema name)
let int schema row name = Value.to_int (get schema row name)
let int_opt schema row name = Value.to_int_opt (get schema row name)
let real schema row name = Value.to_real (get schema row name)
let text schema row name = Value.to_text (get schema row name)
let text_opt schema row name = Value.to_text_opt (get schema row name)
let bool schema row name = Value.to_bool (get schema row name)

let set schema row name v =
  let row' = Array.copy row in
  row'.(Schema.column_index schema name) <- v;
  row'

let pp schema ppf row =
  Format.fprintf ppf "{";
  Array.iteri
    (fun i v ->
      let c = (Schema.columns schema).(i) in
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%s=%a" c.Column.name Value.pp v)
    row;
  Format.fprintf ppf "}"
