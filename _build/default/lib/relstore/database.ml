type t = { name : string; tables : (string, Table.t) Hashtbl.t }

let magic = "RELSTORE1"

let create ~name = { name; tables = Hashtbl.create 16 }
let name t = t.name

let create_table t schema =
  let tname = Schema.name schema in
  if Hashtbl.mem t.tables tname then
    invalid_arg ("Database.create_table: duplicate table " ^ tname);
  let table = Table.create schema in
  Hashtbl.replace t.tables tname table;
  table

let table_opt t tname = Hashtbl.find_opt t.tables tname

let table t tname =
  match table_opt t tname with
  | Some tbl -> tbl
  | None -> raise (Errors.No_such_table tname)

let tables t =
  let all = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables [] in
  List.sort (fun a b -> String.compare (Table.name a) (Table.name b)) all

let drop_table t tname =
  if not (Hashtbl.mem t.tables tname) then raise (Errors.No_such_table tname);
  Hashtbl.remove t.tables tname

let to_bytes t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Codec.write_string buf t.name;
  let tbls = tables t in
  Varint.write_unsigned buf (List.length tbls);
  List.iter (fun tbl -> Table.serialize buf tbl) tbls;
  Buffer.contents buf

(* Deserialization is a trust boundary: damaged bytes may decode into
   *structurally* invalid content (duplicate columns, rows violating the
   schema, indexes on unknown columns) whose constructors raise their
   own exceptions.  Surface every such failure as [Corrupt] so callers
   need handle exactly one exception for "this file is bad". *)
let of_bytes s =
  try
    let pos = ref 0 in
    let lm = String.length magic in
    if String.length s < lm || String.sub s 0 lm <> magic then
      Errors.corrupt "database: bad magic";
    pos := lm;
    let dbname = Codec.read_string s pos in
    let n = Codec.read_count s pos in
    let db = create ~name:dbname in
    for _ = 1 to n do
      let tbl = Table.deserialize s pos in
      Hashtbl.replace db.tables (Table.name tbl) tbl
    done;
    db
  with
  | Errors.Corrupt _ as e -> raise e
  | Errors.Type_mismatch m | Errors.Constraint_violation m ->
    Errors.corrupt "database: invalid content: %s" m
  | Errors.No_such_column m -> Errors.corrupt "database: index on unknown column %s" m
  | Invalid_argument m | Failure m -> Errors.corrupt "database: malformed image: %s" m

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes t))

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_bytes (really_input_string ic len))

type size_breakdown = {
  table_name : string;
  rows : int;
  data_bytes : int;
  index_bytes : int;
}

let size_breakdown t =
  List.map
    (fun tbl ->
      {
        table_name = Table.name tbl;
        rows = Table.row_count tbl;
        data_bytes = Table.data_size tbl;
        index_bytes = Table.index_size tbl;
      })
    (tables t)

let header_size t =
  String.length magic
  + Varint.size_unsigned (String.length t.name)
  + String.length t.name
  + Varint.size_unsigned (Hashtbl.length t.tables)

let data_size t =
  List.fold_left (fun acc tbl -> acc + Table.data_size tbl) (header_size t) (tables t)

let total_size t =
  List.fold_left (fun acc tbl -> acc + Table.total_size tbl) (header_size t) (tables t)

let pp_stats ppf t =
  Format.fprintf ppf "database %s: %d tables, %d bytes total@." t.name
    (Hashtbl.length t.tables) (total_size t);
  List.iter
    (fun b ->
      Format.fprintf ppf "  %-24s %8d rows %10d data B %10d index B@." b.table_name
        b.rows b.data_bytes b.index_bytes)
    (size_breakdown t)
