(** Column definitions. *)

type t = { name : string; ty : Value.ty; nullable : bool }

val make : ?nullable:bool -> string -> Value.ty -> t
(** [nullable] defaults to [false]. *)

val accepts : t -> Value.t -> bool
(** Type/nullability check for one cell. *)

val pp : Format.formatter -> t -> unit
