(** Row construction and field access helpers.

    A row is a [Value.t array] positionally matching its table's schema.
    The helpers here let call sites build and read rows by column name,
    which keeps schema evolution from silently shifting fields. *)

type t = Value.t array

val of_alist : Schema.t -> (string * Value.t) list -> t
(** Build a row from name/value pairs.  Missing columns become [Null]
    (validation will reject them if NOT NULL); unknown names raise
    {!Errors.No_such_column}; duplicates raise [Invalid_argument]. *)

val get : Schema.t -> t -> string -> Value.t
val int : Schema.t -> t -> string -> int
val int_opt : Schema.t -> t -> string -> int option
val real : Schema.t -> t -> string -> float
val text : Schema.t -> t -> string -> string
val text_opt : Schema.t -> t -> string -> string option
val bool : Schema.t -> t -> string -> bool

val set : Schema.t -> t -> string -> Value.t -> t
(** Functional update by column name. *)

val pp : Schema.t -> Format.formatter -> t -> unit
