lib/relstore/query_exec.mli: Predicate Row Table Value
