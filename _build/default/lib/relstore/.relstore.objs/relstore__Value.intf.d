lib/relstore/value.mli: Format
