lib/relstore/predicate.mli: Format Row Schema Value
