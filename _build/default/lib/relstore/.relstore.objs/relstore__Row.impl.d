lib/relstore/row.ml: Array Column Format Hashtbl List Schema Value
