lib/relstore/value.ml: Bool Bytes Errors Float Format Int String Varint
