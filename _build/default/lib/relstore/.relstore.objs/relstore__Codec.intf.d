lib/relstore/codec.mli: Buffer Value
