lib/relstore/column.ml: Format Value
