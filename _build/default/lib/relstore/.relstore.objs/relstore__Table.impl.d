lib/relstore/table.ml: Array Buffer Codec Errors Hashtbl Index Int List Row Schema String Value Varint
