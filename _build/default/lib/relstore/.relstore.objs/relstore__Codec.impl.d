lib/relstore/codec.ml: Array Buffer Bytes Char Errors Int64 Provkit_util String Value Varint
