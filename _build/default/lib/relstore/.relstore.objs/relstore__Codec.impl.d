lib/relstore/codec.ml: Array Buffer Bytes Char Errors Int64 String Value Varint
