lib/relstore/predicate.ml: Format List Provkit_util Row Schema String Value
