lib/relstore/column.mli: Format Value
