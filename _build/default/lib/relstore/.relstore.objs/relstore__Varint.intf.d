lib/relstore/varint.mli: Buffer
