lib/relstore/database.mli: Format Schema Table
