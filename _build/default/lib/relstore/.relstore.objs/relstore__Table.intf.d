lib/relstore/table.mli: Buffer Index Row Schema Value
