lib/relstore/schema.ml: Array Buffer Codec Column Errors Format Hashtbl List String Value Varint
