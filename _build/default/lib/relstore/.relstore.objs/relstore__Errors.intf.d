lib/relstore/errors.mli: Format
