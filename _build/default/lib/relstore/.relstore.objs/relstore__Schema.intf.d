lib/relstore/schema.mli: Buffer Column Format Value
