lib/relstore/database.ml: Buffer Codec Errors Format Fun Hashtbl List Schema String Table Varint
