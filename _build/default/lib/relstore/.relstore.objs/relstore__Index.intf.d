lib/relstore/index.mli: Row Schema Value
