lib/relstore/query_exec.ml: Hashtbl Index Int List Option Predicate Row Table Value
