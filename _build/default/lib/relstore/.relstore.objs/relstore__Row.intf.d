lib/relstore/row.mli: Format Schema Value
