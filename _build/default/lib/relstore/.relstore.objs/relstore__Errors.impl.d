lib/relstore/errors.ml: Format
