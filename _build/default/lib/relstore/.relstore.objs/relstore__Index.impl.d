lib/relstore/index.ml: Array Errors Int List Map Option Schema Seq Set Value Varint
