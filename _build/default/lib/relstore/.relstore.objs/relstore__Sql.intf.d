lib/relstore/sql.mli: Database Predicate Query_exec Value
