lib/relstore/sql.ml: Array Buffer Column Database Format List Predicate Printf Provkit_util Query_exec Row Schema String Table Value
