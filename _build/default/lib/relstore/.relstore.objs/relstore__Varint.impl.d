lib/relstore/varint.ml: Buffer Char Errors String
