type ty = Tint | Treal | Ttext | Tblob | Tbool

type t =
  | Null
  | Int of int
  | Real of float
  | Text of string
  | Blob of bytes
  | Bool of bool

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Real _ -> Some Treal
  | Text _ -> Some Ttext
  | Blob _ -> Some Tblob
  | Bool _ -> Some Tbool

let ty_name = function
  | Tint -> "INT"
  | Treal -> "REAL"
  | Ttext -> "TEXT"
  | Tblob -> "BLOB"
  | Tbool -> "BOOL"

(* Rank groups for the total order; Int and Real share a group so they
   compare numerically against each other. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Real _ -> 2
  | Text _ -> 3
  | Blob _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Real x, Real y -> Float.compare x y
  | Int x, Real y -> Float.compare (float_of_int x) y
  | Real x, Int y -> Float.compare x (float_of_int y)
  | Text x, Text y -> String.compare x y
  | Blob x, Blob y -> Bytes.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0
let is_null = function Null -> true | _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int n -> Format.pp_print_int ppf n
  | Real f -> Format.fprintf ppf "%g" f
  | Text s -> Format.fprintf ppf "%S" s
  | Blob b -> Format.fprintf ppf "x'%d bytes'" (Bytes.length b)
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v

let to_int = function
  | Int n -> n
  | v -> Errors.type_mismatch "expected INT, got %a" pp v

let to_real = function
  | Real f -> f
  | Int n -> float_of_int n
  | v -> Errors.type_mismatch "expected REAL, got %a" pp v

let to_text = function
  | Text s -> s
  | v -> Errors.type_mismatch "expected TEXT, got %a" pp v

let to_blob = function
  | Blob b -> b
  | v -> Errors.type_mismatch "expected BLOB, got %a" pp v

let to_bool = function
  | Bool b -> b
  | v -> Errors.type_mismatch "expected BOOL, got %a" pp v

let to_int_opt = function
  | Null -> None
  | Int n -> Some n
  | v -> Errors.type_mismatch "expected INT or NULL, got %a" pp v

let to_text_opt = function
  | Null -> None
  | Text s -> Some s
  | v -> Errors.type_mismatch "expected TEXT or NULL, got %a" pp v

let serialized_size = function
  | Null -> 1
  | Bool _ -> 1
  | Int n -> 1 + Varint.size_signed n
  | Real _ -> 9
  | Text s -> 1 + Varint.size_unsigned (String.length s) + String.length s
  | Blob b -> 1 + Varint.size_unsigned (Bytes.length b) + Bytes.length b
