(** A named collection of tables with whole-database persistence and
    exact size accounting.

    The serialized form is what the storage-overhead experiments measure:
    a deterministic binary image containing every table's schema, rows
    and index definitions, plus (in {!total_size}) the materialized index
    entries, mirroring how SQLite charges file pages to both tables and
    their indexes. *)

type t

val create : name:string -> t
val name : t -> string

val create_table : t -> Schema.t -> Table.t
(** Raises [Invalid_argument] if the table already exists. *)

val table : t -> string -> Table.t
(** Raises {!Errors.No_such_table}. *)

val table_opt : t -> string -> Table.t option
val tables : t -> Table.t list
(** Sorted by table name. *)

val drop_table : t -> string -> unit
(** Raises {!Errors.No_such_table}. *)

(** {2 Persistence} *)

val to_bytes : t -> string
val of_bytes : string -> t
(** Raises {!Errors.Corrupt} on malformed input. *)

val save : t -> path:string -> unit
val load : path:string -> t

(** {2 Size accounting} *)

type size_breakdown = {
  table_name : string;
  rows : int;
  data_bytes : int;
  index_bytes : int;
}

val total_size : t -> int
(** Data plus index bytes across all tables (plus the catalog header). *)

val data_size : t -> int
val size_breakdown : t -> size_breakdown list

val pp_stats : Format.formatter -> t -> unit
