(** Table schemas.

    Every table has an implicit integer row id (like SQLite's rowid) that
    is not part of the declared columns. *)

type t

val make : name:string -> Column.t list -> t
(** Raises [Invalid_argument] on duplicate column names or an empty
    column list. *)

val name : t -> string
val columns : t -> Column.t array
val arity : t -> int

val column_index : t -> string -> int
(** Raises {!Errors.No_such_column}. *)

val column : t -> string -> Column.t
(** Raises {!Errors.No_such_column}. *)

val has_column : t -> string -> bool

val validate_row : t -> Value.t array -> unit
(** Checks arity and per-cell type/nullability; raises
    {!Errors.Type_mismatch} or {!Errors.Constraint_violation}. *)

val serialize : Buffer.t -> t -> unit
val deserialize : string -> int ref -> t
val serialized_size : t -> int

val pp : Format.formatter -> t -> unit
