(** Ordered secondary indexes over one or more columns.

    An index maps a composite key (the indexed columns' values, in order)
    to the set of row ids holding that key.  Lookups are O(log n);
    range scans stream keys in order. *)

type t

val create : ?unique:bool -> name:string -> columns:string list -> Schema.t -> t
(** Raises {!Errors.No_such_column} if a column does not exist.
    [unique] (default false) enforces at-most-one row id per key. *)

val name : t -> string
val column_names : t -> string list
val is_unique : t -> bool

val key_of_row : t -> Row.t -> Value.t list
(** Extract this index's key from a full row. *)

val add : t -> int -> Row.t -> unit
(** [add t rowid row] indexes [row].  Raises
    {!Errors.Constraint_violation} when a unique index already holds the
    key for a different row id. *)

val remove : t -> int -> Row.t -> unit

val find : t -> Value.t list -> int list
(** Row ids with exactly this key, ascending. *)

val find_one : t -> Value.t list -> int option
(** Any single row id for the key (the smallest). *)

val mem : t -> Value.t list -> bool

val fold_range :
  ?lo:Value.t list -> ?hi:Value.t list -> t -> init:'a -> f:('a -> Value.t list -> int -> 'a) -> 'a
(** Fold over entries with keys in \[lo, hi\] (inclusive, lexicographic);
    omitted bounds are unbounded.  Visits keys in ascending order and row
    ids ascending within a key. *)

val cardinal : t -> int
(** Number of (key, rowid) entries. *)

val entry_count : t -> int
(** Alias of {!cardinal}. *)

val serialized_size : t -> int
(** Exact byte cost of persisting this index: per entry, the encoded key
    plus a varint row id.  Counted in database size accounting because a
    SQLite index occupies file pages the same way. *)
