(** Dynamically typed cell values, in the style of SQLite's storage
    classes. *)

type ty = Tint | Treal | Ttext | Tblob | Tbool

type t =
  | Null
  | Int of int
  | Real of float
  | Text of string
  | Blob of bytes
  | Bool of bool

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string

val compare : t -> t -> int
(** Total order: Null < Bool < Int/Real (numerically interleaved) < Text
    < Blob.  Int and Real compare numerically against each other so an
    index over a numeric column behaves sensibly. *)

val equal : t -> t -> bool
val is_null : t -> bool

(** Checked projections; raise {!Errors.Type_mismatch} on the wrong
    constructor.  [Null] also raises — use {!is_null} first when a column
    is nullable. *)

val to_int : t -> int
val to_real : t -> float
(** Accepts [Int] too, widening. *)

val to_text : t -> string
val to_blob : t -> bytes
val to_bool : t -> bool

(** Optional projections returning [None] on [Null]. *)

val to_int_opt : t -> int option
val to_text_opt : t -> string option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val serialized_size : t -> int
(** Exact number of bytes {!Codec.write_value} will emit for this value;
    used for storage accounting. *)
