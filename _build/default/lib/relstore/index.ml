module Key = struct
  type t = Value.t list

  let compare a b =
    let rec go a b =
      match (a, b) with
      | [], [] -> 0
      | [], _ -> -1
      | _, [] -> 1
      | x :: a', y :: b' ->
        let c = Value.compare x y in
        if c <> 0 then c else go a' b'
    in
    go a b
end

module Kmap = Map.Make (Key)
module Iset = Set.Make (Int)

type t = {
  name : string;
  columns : string list;
  positions : int array;
  unique : bool;
  mutable entries : Iset.t Kmap.t;
  mutable cardinal : int;
}

let create ?(unique = false) ~name ~columns schema =
  if columns = [] then invalid_arg "Index.create: no columns";
  let positions =
    Array.of_list (List.map (Schema.column_index schema) columns)
  in
  { name; columns; positions; unique; entries = Kmap.empty; cardinal = 0 }

let name t = t.name
let column_names t = t.columns
let is_unique t = t.unique

let key_of_row t row = Array.to_list (Array.map (fun i -> row.(i)) t.positions)

let add t rowid row =
  let key = key_of_row t row in
  let existing = Option.value ~default:Iset.empty (Kmap.find_opt key t.entries) in
  if t.unique && (not (Iset.is_empty existing)) && not (Iset.mem rowid existing)
  then
    Errors.constraint_violation "index %s: duplicate key for unique index" t.name;
  if not (Iset.mem rowid existing) then begin
    t.entries <- Kmap.add key (Iset.add rowid existing) t.entries;
    t.cardinal <- t.cardinal + 1
  end

let remove t rowid row =
  let key = key_of_row t row in
  match Kmap.find_opt key t.entries with
  | None -> ()
  | Some set ->
    if Iset.mem rowid set then begin
      let set' = Iset.remove rowid set in
      t.entries <-
        (if Iset.is_empty set' then Kmap.remove key t.entries
         else Kmap.add key set' t.entries);
      t.cardinal <- t.cardinal - 1
    end

let find t key =
  match Kmap.find_opt key t.entries with
  | None -> []
  | Some set -> Iset.elements set

let find_one t key =
  match Kmap.find_opt key t.entries with
  | None -> None
  | Some set -> Iset.min_elt_opt set

let mem t key = Kmap.mem key t.entries

let fold_range ?lo ?hi t ~init ~f =
  let in_lo key = match lo with None -> true | Some l -> Key.compare key l >= 0 in
  let in_hi key = match hi with None -> true | Some h -> Key.compare key h <= 0 in
  (* Seek to the lower bound, then stream until past the upper bound. *)
  let seq =
    match lo with
    | None -> Kmap.to_seq t.entries
    | Some l -> Kmap.to_seq_from l t.entries
  in
  let rec go acc seq =
    match seq () with
    | Seq.Nil -> acc
    | Seq.Cons ((key, set), rest) ->
      if not (in_hi key) then acc
      else begin
        let acc =
          if in_lo key then Iset.fold (fun rowid acc -> f acc key rowid) set acc
          else acc
        in
        go acc rest
      end
  in
  go init seq

let cardinal t = t.cardinal
let entry_count = cardinal

let serialized_size t =
  Kmap.fold
    (fun key set acc ->
      let key_size =
        List.fold_left (fun s v -> s + Value.serialized_size v) 0 key
      in
      Iset.fold (fun rowid acc -> acc + key_size + Varint.size_unsigned rowid) set acc)
    t.entries 0
