(** A small SQL-ish query language over the storage engine.

    Grammar (case-insensitive keywords):

    {v
    query   := SELECT cols FROM table [WHERE cond] [GROUP BY col]
               [ORDER BY col [ASC|DESC] {, col [ASC|DESC]}] [LIMIT n]
    cols    := '*' | agg | col ',' COUNT( '*' )   (with GROUP BY)
             | col {',' col}
    agg     := COUNT( '*' ) | SUM(col) | AVG(col) | MIN(col) | MAX(col)
    cond    := or-expr;  OR < AND < NOT in binding strength; parentheses ok
    atom    := col op literal
             | col IS [NOT] NULL
             | col LIKE 'substring'        (case-insensitive contains)
             | col BETWEEN literal AND literal
    op      := = | <> | != | < | <= | > | >=
    literal := integer | float | 'string' | TRUE | FALSE | NULL
    v}

    Queries compile to {!Predicate} trees and run through {!Query_exec},
    so the index planner applies exactly as for programmatic queries. *)

type aggregate = Count_star | Sum of string | Avg of string | Min of string | Max of string

type ast = {
  projection : [ `All | `Aggregate of aggregate | `Columns of string list ];
  table : string;
  where : Predicate.t;
  group_by : string option;
      (** with GROUP BY, the projection must be [`Columns [group_col]]
          plus an implicit count — i.e. [SELECT col, COUNT( '*' ) FROM t
          GROUP BY col] *)
  order_by : Query_exec.order list;
  limit : int option;
}

exception Parse_error of string

val parse : string -> ast
(** Raises {!Parse_error} with a human-readable message. *)

type result = { columns : string list; rows : Value.t list list }

val execute : Database.t -> ast -> result
(** Raises {!Errors.No_such_table} / {!Errors.No_such_column} for
    references the schema cannot satisfy. *)

val query : Database.t -> string -> result
(** [parse] + [execute]. *)

val render : result -> string
(** Aligned table with a header, for CLI display. *)

val explain : Database.t -> string -> string
(** The access path the planner chose: ["full scan"] or
    ["index <name> (eq|range)"]. *)
