type order = Asc of string | Desc of string

type plan =
  | Full_scan
  | Index_eq of string
  | Index_range of string

let eq_index table where =
  let eqs = Predicate.conjunctive_eqs where in
  let lookup col = List.assoc_opt col eqs in
  (* Usable when every indexed column is pinned by an equality. *)
  List.find_opt
    (fun idx -> List.for_all (fun c -> lookup c <> None) (Index.column_names idx))
    (Table.indexes table)

let range_index table where =
  match Predicate.conjunctive_range where with
  | None -> None
  | Some (col, lo, hi) -> begin
    match Table.find_index_on table [ col ] with
    | None -> None
    | Some idx -> Some (idx, lo, hi)
  end

let plan_for table where =
  match eq_index table where with
  | Some idx -> Index_eq (Index.name idx)
  | None -> begin
    match range_index table where with
    | Some (idx, _, _) -> Index_range (Index.name idx)
    | None -> Full_scan
  end

let candidates table where =
  match eq_index table where with
  | Some idx ->
    let eqs = Predicate.conjunctive_eqs where in
    let key = List.map (fun c -> List.assoc c eqs) (Index.column_names idx) in
    List.map (fun rowid -> (rowid, Table.get table rowid)) (Index.find idx key)
  | None -> begin
    match range_index table where with
    | Some (idx, lo, hi) ->
      let lo = Option.map (fun v -> [ v ]) lo in
      let hi = Option.map (fun v -> [ v ]) hi in
      let hits =
        Index.fold_range ?lo ?hi idx ~init:[] ~f:(fun acc _key rowid ->
            (rowid, Table.get table rowid) :: acc)
      in
      List.rev hits
    | None -> Table.rows table
  end

let compare_rows schema order_by (ra_id, ra) (rb_id, rb) =
  let rec go = function
    | [] -> Int.compare ra_id rb_id
    | spec :: rest ->
      let col, flip = match spec with Asc c -> (c, 1) | Desc c -> (c, -1) in
      let c = flip * Value.compare (Row.get schema ra col) (Row.get schema rb col) in
      if c <> 0 then c else go rest
  in
  go order_by

let select ?(where = Predicate.True) ?(order_by = []) ?limit table =
  let schema = Table.schema table in
  let hits =
    List.filter (fun (_, row) -> Predicate.eval where schema row) (candidates table where)
  in
  let sorted =
    match order_by with
    | [] -> List.sort (fun (a, _) (b, _) -> Int.compare a b) hits
    | _ -> List.sort (compare_rows schema order_by) hits
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let count ?(where = Predicate.True) table =
  let schema = Table.schema table in
  List.length
    (List.filter (fun (_, row) -> Predicate.eval where schema row) (candidates table where))

let join ?(where_left = Predicate.True) ?(where_right = Predicate.True)
    ~on left right =
  let left_cols = List.map fst on and right_cols = List.map snd on in
  let lschema = Table.schema left in
  let left_rows = select ~where:where_left left in
  let key_of_left (_, row) = List.map (Row.get lschema row) left_cols in
  let rschema = Table.schema right in
  let right_matches =
    match Table.find_index_on right right_cols with
    | Some idx ->
      fun key ->
        List.filter_map
          (fun rowid ->
            let row = Table.get right rowid in
            if Predicate.eval where_right rschema row then Some (rowid, row) else None)
          (Index.find idx key)
    | None ->
      (* Build a one-shot hash join table. *)
      let tbl = Hashtbl.create 256 in
      List.iter
        (fun (rowid, row) ->
          let key = List.map (Row.get rschema row) right_cols in
          Hashtbl.add tbl key (rowid, row))
        (select ~where:where_right right);
      fun key -> List.rev (Hashtbl.find_all tbl key)
  in
  List.concat_map
    (fun l -> List.map (fun r -> (l, r)) (right_matches (key_of_left l)))
    left_rows

let group_count ~by ?(where = Predicate.True) table =
  let schema = Table.schema table in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (_, row) ->
      if Predicate.eval where schema row then begin
        let key = Row.get schema row by in
        let n = Option.value ~default:0 (Hashtbl.find_opt counts key) in
        Hashtbl.replace counts key (n + 1)
      end)
    (candidates table where);
  let pairs = Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts [] in
  List.sort
    (fun (ka, na) (kb, nb) ->
      let c = Int.compare nb na in
      if c <> 0 then c else Value.compare ka kb)
    pairs
