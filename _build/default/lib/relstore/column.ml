type t = { name : string; ty : Value.ty; nullable : bool }

let make ?(nullable = false) name ty = { name; ty; nullable }

let accepts t v =
  match Value.type_of v with
  | None -> t.nullable
  | Some ty -> ty = t.ty

let pp ppf t =
  Format.fprintf ppf "%s %s%s" t.name (Value.ty_name t.ty)
    (if t.nullable then "" else " NOT NULL")
