(** Tables: a heap of rows addressed by integer row id, plus secondary
    indexes kept in sync on every mutation. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t
val name : t -> string
val row_count : t -> int

val insert : t -> Row.t -> int
(** Validates against the schema, assigns a fresh row id, updates all
    indexes, returns the row id. *)

val insert_fields : t -> (string * Value.t) list -> int
(** {!Row.of_alist} followed by {!insert}. *)

val get : t -> int -> Row.t
(** Raises {!Errors.No_such_row}. *)

val get_opt : t -> int -> Row.t option
val mem : t -> int -> bool

val update : t -> int -> Row.t -> unit
(** Replace a row wholesale; indexes are maintained.  Raises
    {!Errors.No_such_row}. *)

val update_field : t -> int -> string -> Value.t -> unit
(** Point update of one column. *)

val delete : t -> int -> unit
(** Raises {!Errors.No_such_row}. *)

val iter : t -> (int -> Row.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> int -> Row.t -> 'a) -> 'a
val rows : t -> (int * Row.t) list
(** All rows, ascending row id. *)

(** {2 Indexes} *)

val add_index : ?unique:bool -> t -> name:string -> columns:string list -> unit
(** Builds the index over existing rows.  Raises [Invalid_argument] on a
    duplicate index name. *)

val index : t -> string -> Index.t
(** Raises [Not_found]. *)

val indexes : t -> Index.t list

val find_index_on : t -> string list -> Index.t option
(** An index whose columns are exactly this list, if any. *)

val find_by : t -> columns:string list -> Value.t list -> (int * Row.t) list
(** Equality lookup.  Uses an index when one covers [columns] exactly;
    otherwise falls back to a scan. *)

val find_one_by : t -> columns:string list -> Value.t list -> (int * Row.t) option

(** {2 Persistence and size accounting} *)

val serialize : Buffer.t -> t -> unit
val deserialize : string -> int ref -> t

val data_size : t -> int
(** Exact encoded byte size of {!serialize}'s output: schema, rows and
    index definitions (not materialized index entries). *)

val index_size : t -> int
(** Total {!Index.serialized_size} across this table's indexes. *)

val total_size : t -> int
(** [data_size + index_size]. *)
