(** Query execution over tables: selection with index acceleration,
    ordering, limits, and equi-joins. *)

type order = Asc of string | Desc of string

type plan =
  | Full_scan
  | Index_eq of string  (** index name used for an equality probe *)
  | Index_range of string

val plan_for : Table.t -> Predicate.t -> plan
(** The access path {!select} will use for this predicate: an exact-match
    index over a prefix of the predicate's conjunctive equalities, else a
    range index, else a scan. *)

val select :
  ?where:Predicate.t ->
  ?order_by:order list ->
  ?limit:int ->
  Table.t ->
  (int * Row.t) list
(** Rows satisfying [where] (default all), ordered by [order_by] (default
    row id), truncated to [limit]. *)

val count : ?where:Predicate.t -> Table.t -> int

val join :
  ?where_left:Predicate.t ->
  ?where_right:Predicate.t ->
  on:(string * string) list ->
  Table.t ->
  Table.t ->
  ((int * Row.t) * (int * Row.t)) list
(** Equi-join: pairs where each [on] column of the left row equals the
    matching column of the right row.  Probes a right-table index when
    one covers the join columns, else builds a hash table on the fly. *)

val group_count : by:string -> ?where:Predicate.t -> Table.t -> (Value.t * int) list
(** Row counts grouped by a column's value, sorted descending by count. *)
